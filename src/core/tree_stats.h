// Copyright (c) FPTree reproduction authors.
//
// Operation counters shared by all single-threaded tree implementations;
// the benchmarks read these (e.g. in-leaf key probes for Fig. 4).
//
// Per-instance counters stay plain (single-writer); tree destructors fold
// them into a process-wide atomic total via FlushTreeStats() so registry
// snapshots (src/obs) can report splits/probes after trees are gone.

#pragma once

#include <atomic>
#include <cstdint>

namespace fptree {
namespace core {

struct TreeOpStats {
  uint64_t finds = 0;
  uint64_t key_probes = 0;  ///< in-leaf key probes during search (Fig. 4)
  uint64_t leaf_splits = 0;
  uint64_t leaf_deletes = 0;
  uint64_t rebuilds = 0;    ///< NV-Tree inner-node rebuilds (§6.4)

  void Clear() { *this = TreeOpStats{}; }
};

/// Process-wide totals accumulated from retired (and explicitly flushed)
/// tree instances. Monotonic, relaxed.
class GlobalTreeCounters {
 public:
  void Add(const TreeOpStats& s) {
    finds_.fetch_add(s.finds, std::memory_order_relaxed);
    key_probes_.fetch_add(s.key_probes, std::memory_order_relaxed);
    leaf_splits_.fetch_add(s.leaf_splits, std::memory_order_relaxed);
    leaf_deletes_.fetch_add(s.leaf_deletes, std::memory_order_relaxed);
    rebuilds_.fetch_add(s.rebuilds, std::memory_order_relaxed);
  }

  TreeOpStats Snapshot() const {
    TreeOpStats s;
    s.finds = finds_.load(std::memory_order_relaxed);
    s.key_probes = key_probes_.load(std::memory_order_relaxed);
    s.leaf_splits = leaf_splits_.load(std::memory_order_relaxed);
    s.leaf_deletes = leaf_deletes_.load(std::memory_order_relaxed);
    s.rebuilds = rebuilds_.load(std::memory_order_relaxed);
    return s;
  }

  void Clear() {
    finds_.store(0, std::memory_order_relaxed);
    key_probes_.store(0, std::memory_order_relaxed);
    leaf_splits_.store(0, std::memory_order_relaxed);
    leaf_deletes_.store(0, std::memory_order_relaxed);
    rebuilds_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> finds_{0};
  std::atomic<uint64_t> key_probes_{0};
  std::atomic<uint64_t> leaf_splits_{0};
  std::atomic<uint64_t> leaf_deletes_{0};
  std::atomic<uint64_t> rebuilds_{0};
};

inline GlobalTreeCounters& GlobalTreeStats() {
  static GlobalTreeCounters g;
  return g;
}

/// Folds a per-instance counter block into the process-wide total. Called by
/// tree destructors; safe to call more than once only with disjoint deltas.
inline void FlushTreeStats(const TreeOpStats& s) { GlobalTreeStats().Add(s); }

}  // namespace core
}  // namespace fptree
