// Copyright (c) FPTree reproduction authors.
//
// Per-connection state for the epoll server (DESIGN.md §9). A connection is
// owned by exactly one IO worker for its whole life, so none of this needs
// locking; cross-worker interaction happens only at accept time (fd handoff
// through the worker's inbox).

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace fptree {
namespace net {

/// \brief One client connection: receive buffer, parse cursor, bounded
/// output queue and backpressure / drain flags.
struct Conn {
  int fd = -1;

  /// Bytes received but not yet parsed. `in_pos` is the parse cursor;
  /// consumed prefixes are compacted away once the cursor passes 64 KiB so
  /// pipelined bursts do not re-copy on every frame.
  std::string in;
  size_t in_pos = 0;

  /// Encoded responses not yet written to the socket. `out_pos` is the
  /// write cursor, compacted on the same policy as `in`.
  std::string out;
  size_t out_pos = 0;

  /// EPOLLOUT is armed (the socket rejected a partial write).
  bool want_write = false;

  /// Backpressure: the output queue crossed Options::max_output_bytes, so
  /// EPOLLIN is disarmed and request processing is paused until the peer
  /// drains the queue below the resume watermark.
  bool paused_read = false;

  /// The peer half-closed (read returned 0) — flush and close.
  bool peer_closed = false;

  /// A protocol error was answered with BAD_REQUEST; close once the
  /// response has been flushed.
  bool close_after_flush = false;

  /// Drain mode: bytes already received at drain time are served, newly
  /// arriving bytes are discarded (their requests were never acked).
  bool draining = false;
  /// Parse cutoff at drain time: frames that were fully received when the
  /// drain began; nothing past this offset is processed.
  size_t drain_cutoff = 0;
  /// Drain sent shutdown(SHUT_WR) after the final flush; the connection
  /// now only waits for the peer's EOF (or the grace deadline).
  bool half_closed = false;

  /// Current epoll interest mask (EPOLLIN/EPOLLOUT), to skip no-op MODs.
  uint32_t events = 0;

  /// Responses encoded but not yet known-flushed; folded into the server's
  /// acked-operation counter whenever the output queue fully drains.
  uint64_t unflushed_responses = 0;

  size_t pending_out() const { return out.size() - out_pos; }
  size_t pending_in() const { return in.size() - in_pos; }

  /// Reclaims consumed buffer prefixes (amortized O(1) per byte).
  void Compact() {
    constexpr size_t kCompactAt = 64 * 1024;
    if (in_pos > kCompactAt) {
      in.erase(0, in_pos);
      if (draining) drain_cutoff -= in_pos;
      in_pos = 0;
    }
    if (out_pos > kCompactAt) {
      out.erase(0, out_pos);
      out_pos = 0;
    }
  }
};

}  // namespace net
}  // namespace fptree
