// Copyright (c) FPTree reproduction authors.
//
// Zipfian-distributed key generator, used for skewed workloads (the paper's
// TATP warm-up creates a highly skewed, near-sequential insertion pattern;
// skewed reads exercise the NV-Tree rebuild pathology described in §6.4).

#pragma once

#include <cmath>
#include <cstdint>

#include "util/random.h"

namespace fptree {

/// \brief Zipf(theta) generator over [0, n) using the Gray et al. (SIGMOD'94)
/// incremental method — O(1) per draw after O(1) setup, no n-sized tables.
class ZipfGenerator {
 public:
  /// \param n      universe size (> 0)
  /// \param theta  skew in [0, 1); 0 = uniform-ish, 0.99 = highly skewed
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42)
      : n_(n), theta_(theta), rng_(seed) {
    zetan_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  /// Draws the next Zipf-distributed value in [0, n). Rank 0 is hottest.
  uint64_t Next() {
    double u = rng_.NextDouble();
    double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    uint64_t v = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    // Exact up to a cutoff, then integral approximation: adequate for
    // workload generation and keeps construction O(1)-ish for large n.
    const uint64_t kExact = 10000;
    uint64_t limit = n < kExact ? n : kExact;
    for (uint64_t i = 1; i <= limit; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    if (n > limit) {
      // integral of x^-theta from limit to n
      sum += (std::pow(static_cast<double>(n), 1.0 - theta) -
              std::pow(static_cast<double>(limit), 1.0 - theta)) /
             (1.0 - theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  Random64 rng_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

}  // namespace fptree
