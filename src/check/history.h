// Copyright (c) FPTree reproduction authors.
//
// History capture for linearizability checking (DESIGN.md §13).
//
// A HistoryRecorder owns one ThreadLog per participating thread. Logs are
// strictly single-writer: the owning thread appends invocation/response
// events with no synchronization at all (the recorder mutex is only taken
// on first registration and at drain time). Each log keeps a bounded
// in-place ring of events; full rings spill to an overflow list so long
// stress runs never drop history, and drain stitches all per-thread logs
// into one flat History.
//
// Timestamps come from the process-wide monotonic clock (util::NowNanos).
// Two events overlap iff neither's response strictly precedes the other's
// invocation; the checker compares with strict `<`, so equal stamps are
// treated as overlapping — permissive, never unsound.
//
// The Begin/End slot protocol is crash-tolerant by construction: Begin
// publishes the invocation into the log's open-op table *before* the
// wrapped index is called, so an operation interrupted by a simulated
// crash (CrashException unwinds past End) drains as a *pending* event —
// exactly the "effect may or may not survive" shape the durable checker
// needs.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "util/timer.h"

namespace fptree {
namespace check {

/// Response stamp of an operation that never returned (in flight at a
/// crash, or abandoned on a dead connection). Larger than any real stamp.
constexpr uint64_t kPendingTime = ~uint64_t{0};

/// Monotonic global clock shared by every thread and every recorder.
/// Capture stamps are only ever *compared*, so units don't matter: on
/// x86-64 this reads the invariant TSC directly — about half the cost of
/// the vDSO clock_gettime path, which matters at two reads per op. The
/// kernel's own choice of `tsc` as clocksource certifies cross-core
/// synchronization; the instruction is deliberately unfenced (out-of-
/// order skew is bounded well below the cache-coherence latency any
/// cross-thread observation needs, and within a thread Drain clamps the
/// rare t_resp < t_inv inversion). Elsewhere, fall back to the steady
/// clock.
#if defined(__x86_64__)
inline uint64_t ClockNow() { return __builtin_ia32_rdtsc(); }
#else
inline uint64_t ClockNow() { return NowNanos(); }
#endif

/// The KV object model's operations. Scans decompose into per-key reads
/// inside the checker; everything else is a single-key register op.
enum class OpKind : uint8_t {
  kGet = 0,     // Find: reads the register
  kInsert,      // Insert: succeeds iff absent
  kUpdate,      // Update: succeeds iff present
  kErase,       // Erase: succeeds iff present
  kUpsert,      // Upsert: unconditional write (result: inserted flag)
  kScan,        // RangeScan / cursor scan: atomic multi-key read
};

enum class Outcome : uint8_t {
  kFalse = 0,    // returned false / not-found / replaced
  kTrue = 1,     // returned true / found / inserted
  kUnknown = 2,  // completed, but the boolean answer was not observable
                 // (e.g. the wire PUT acks without the inserted flag)
  kPending = 3,  // never returned: effect may or may not have applied
  kNoop = 4,     // completed with a hard error that left the key untouched
                 // (e.g. NO_SPACE) — carries no constraint, checker drops it
};

/// One operation in the flattened history. Fixed-key ops use `key`;
/// var-key ops intern their bytes in History::chars (key_off/key_len).
/// Scan rows live in History::words: fixed scans store (key, value) pairs,
/// var scans store (char_off, key_len, value) triples.
///
/// Deliberately packed and aligned to exactly one cache line: capture
/// streams one Event per op through the per-thread ring, and a 64-byte
/// event dirties half the lines a straddling layout would (measurable in
/// bench_check_overhead). The 32-bit arena offsets cap one drained
/// history at 4 GiB of interned keys / 512M scan-row words — far beyond
/// any test run; Drain aborts loudly if a history ever gets there.
struct alignas(64) Event {
  uint64_t t_inv = 0;
  uint64_t t_resp = kPendingTime;
  uint64_t key = 0;       // fixed-key operand / scan start key
  uint64_t arg = 0;       // value written (writes), limit (scans)
  uint64_t result = 0;    // value read (Get), inserted flag (Upsert)
  uint32_t key_off = 0;   // var-key bytes in History::chars
  uint32_t rows_off = 0;  // scan rows in History::words
  uint32_t key_len = 0;
  uint32_t rows_n = 0;  // delivered row count
  uint16_t tid = 0;     // recorder-local thread id
  OpKind kind = OpKind::kGet;
  Outcome outcome = Outcome::kPending;
  bool var_key = false;
  // True when the scan ended because the index ran out of keys *below its
  // limit*: every universe key in [start, last row] — or [start, +inf) if
  // rows were delivered to exhaustion — not listed was witnessed absent.
  bool scan_exhausted = false;
};
static_assert(sizeof(Event) == 64, "Event must stay one cache line");

/// A drained, self-contained history: events plus the two arenas the
/// events index into. Event order carries no meaning — only timestamps do.
struct History {
  std::vector<Event> events;
  std::string chars;            // interned var keys + var scan row keys
  std::vector<uint64_t> words;  // scan rows

  std::string_view KeyOf(const Event& e) const {
    return std::string_view(chars.data() + e.key_off, e.key_len);
  }
  size_t size() const { return events.size(); }
  bool empty() const { return events.empty(); }
};

class HistoryRecorder;

/// One ring chunk's worth of events held in place before spilling.
inline constexpr size_t kRingEvents = 4096;

/// Recycles retired ring chunks across all threads of one recorder.
/// Worker threads are often short-lived (stress rounds and bench reps
/// spawn fresh threads per round); a per-thread freelist dies with its
/// thread, so every new worker would pay a first-touch page fault per
/// ring page (~64 faults per 256 KB chunk), which reads as capture
/// overhead. Take/Put run once per kRingEvents captures, so a mutex is
/// fine. Unbounded by design: the pool's high-water mark is the peak
/// number of simultaneously live chunks, which Drain/Clear reclaim.
class ChunkPool {
 public:
  std::vector<Event> Take() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!chunks_.empty()) {
        std::vector<Event> c = std::move(chunks_.back());
        chunks_.pop_back();
        return c;
      }
    }
    return std::vector<Event>(kRingEvents);
  }
  void Put(std::vector<Event> chunk) {
    std::lock_guard<std::mutex> lock(mu_);
    chunks_.push_back(std::move(chunk));
  }

 private:
  std::mutex mu_;
  std::vector<std::vector<Event>> chunks_;
};

/// Per-thread, single-writer event log. Obtain via HistoryRecorder::Log();
/// never share a ThreadLog across threads.
class ThreadLog {
 public:
  /// Opens a slot for an in-flight fixed-key op. `proto` must carry
  /// t_inv/kind/key/arg; outcome and t_resp are filled by End. The slot
  /// index stays valid until End or drain.
  uint32_t Begin(const Event& proto);
  /// Same, for a var-key op (key bytes are copied).
  uint32_t BeginVar(const Event& proto, std::string_view key);

  /// Appends one delivered scan row to an open scan slot.
  void AddRowFixed(uint32_t slot, uint64_t key, uint64_t value);
  void AddRowVar(uint32_t slot, std::string_view key, uint64_t value);

  /// Mutable view of an open slot's event (e.g. to set scan_exhausted).
  Event* open_event(uint32_t slot) { return &open_[slot].ev; }

  /// Closes a slot: stamps t_resp (kPendingTime when outcome is kPending)
  /// and moves the finished event into the log.
  void End(uint32_t slot, Outcome outcome, uint64_t result = 0);

  /// Closes a slot whose operation *completed* with an ambiguous effect
  /// (e.g. one MPUT element under NO_SPACE: some strict prefix applied).
  /// The event stays optional for the checker like any pending op, but
  /// its finite response still pins real-time order: once a later op is
  /// known to have started after this response, the ambiguous effect can
  /// no longer materialize.
  void EndAmbiguous(uint32_t slot);

  /// Appends an already-complete event (caller stamped t_inv/t_resp —
  /// used by the wire client, which learns reads' results in batches,
  /// and by the point-op fast path, which skips the slot table). Defined
  /// inline: this IS the capture hot path, and an out-of-line call per
  /// op is measurable against a DRAM-speed tree.
  void Commit(const Event& ev) {
    if (pos_ == kRingEvents) Spill();
    Event* slot = &ring_[pos_++];
    *slot = ev;
    slot->tid = tid_;
    ++logged_;
    if (ev.t_resp != kPendingTime && ev.t_resp > last_resp_) {
      last_resp_ = ev.t_resp;
    }
  }
  void CommitVar(Event ev, std::string_view key) {
    ev.tid = tid_;
    ev.var_key = true;
    ev.key_off = static_cast<uint32_t>(chars_.size());
    ev.key_len = static_cast<uint32_t>(key.size());
    chars_.append(key.data(), key.size());
    Push(ev);
  }

  /// Point-op fast path: reserves the next ring slot and returns a
  /// pointer the caller fills in place — no stack Event, no copy. The
  /// reserved slot is re-armed as a pending kGet (t_resp = kPendingTime,
  /// outcome = kPending, no rows), so an operation that unwinds mid-call
  /// (CrashSim's CrashException) needs no cleanup: the slot already
  /// records "effect may or may not have survived", and a pending kGet
  /// that never got its kind overwritten is simply dropped by the
  /// checker. Fields the pending shape never reads (key, arg, result,
  /// arena offsets) keep whatever the recycled chunk held — the caller
  /// overwrites the ones its op kind uses. The pointer is valid until
  /// the next capture call on this thread.
  Event* Reserve() {
    if (pos_ == kRingEvents) Spill();
    Event* ev = &ring_[pos_++];
    ++logged_;
    // The ring advances one 64-byte line per op; pull the line a few slots
    // ahead into cache with write intent so the stores below do not eat a
    // demand read-for-ownership miss on the hot path.
    __builtin_prefetch(ev + 16, /*rw=*/1, /*locality=*/0);
    // Invocation stamp on the cheap: one past this thread's previous
    // response. The true invocation is never earlier (same thread,
    // program order), so the interval only widens — permissive for the
    // checker, never unsound — while same-thread ops keep their strict
    // real-time order. Saves one of the two clock reads per op.
    ev->t_inv = last_resp_ + 1;
    ev->t_resp = kPendingTime;
    ev->rows_n = 0;
    ev->tid = tid_;
    ev->kind = OpKind::kGet;
    ev->outcome = Outcome::kPending;
    ev->var_key = false;
    ev->scan_exhausted = false;
    return ev;
  }
  /// Closes a reserved slot: stamps the response and advances the
  /// thread's response watermark that the next Reserve derives t_inv
  /// from. The single ClockNow() here is the only clock read a point op
  /// pays.
  void Finish(Event* ev) {
    uint64_t t = ClockNow();
    ev->t_resp = t;
    last_resp_ = t;
  }
  /// Var-key flavor: interns the key up front so the pending shape is
  /// complete before the inner call runs.
  Event* ReserveVar(std::string_view key) {
    Event* ev = Reserve();
    ev->var_key = true;
    ev->key_off = static_cast<uint32_t>(chars_.size());
    ev->key_len = static_cast<uint32_t>(key.size());
    chars_.append(key.data(), key.size());
    return ev;
  }

  uint64_t events_logged() const { return logged_; }

 private:
  friend class HistoryRecorder;

  struct OpenOp {
    Event ev;
    std::string key;              // var key (empty for fixed-key ops)
    std::string row_chars;        // var scan row keys, local offsets
    std::vector<uint64_t> row_words;
    bool used = false;
  };

  ThreadLog(uint32_t tid, ChunkPool* pool)
      : tid_(static_cast<uint16_t>(tid)), pool_(pool), ring_(pool->Take()) {}
  void Emit(OpenOp* op, Outcome outcome, uint64_t result, bool stamp_now);
  // Ring size invariant: ring_ always holds kRingEvents slots and pos_ is
  // the write cursor; Spill/Drain/Clear preserve the size, so the hot
  // paths never bounds-check beyond the cursor compare. Slots past pos_
  // (and recycled chunks' contents) are stale garbage by design — only
  // [0, pos_) is ever drained.
  void Push(const Event& ev) {
    if (pos_ == kRingEvents) Spill();
    ring_[pos_++] = ev;
    ++logged_;
  }
  void Spill();
  /// Publishes logged-but-uncounted events to the check.events_captured
  /// counter. Amortized: Spill flushes once per ring, Drain flushes the
  /// remainder, so the hot path never touches the shared atomic.
  void FlushCounter() {
    if (logged_ > counted_) {
      counter_->Add(logged_ - counted_);
      counted_ = logged_;
    }
  }

  uint16_t tid_ = 0;
  uint64_t logged_ = 0;
  uint64_t last_resp_ = 0;  // response watermark; Reserve derives t_inv
  uint64_t counted_ = 0;  // events already flushed to the obs counter
  obs::Counter* counter_ = nullptr;  // check.events_captured (set at reg.)
  ChunkPool* pool_ = nullptr;  // recorder-wide chunk recycler
  size_t pos_ = 0;                           // ring write cursor
  std::vector<Event> ring_;                  // current chunk (always full-size)
  std::vector<std::vector<Event>> spilled_;  // full chunks
  std::string chars_;
  std::vector<uint64_t> words_;
  std::vector<OpenOp> open_;
  std::vector<uint32_t> free_;
};

/// A history-recording domain. Threads self-register on first Log() call;
/// Drain() (quiescent: no thread may be mid-operation) merges all logs
/// into one History, converting still-open slots into pending events, and
/// resets the recorder for the next round.
class HistoryRecorder {
 public:
  HistoryRecorder();
  ~HistoryRecorder();

  HistoryRecorder(const HistoryRecorder&) = delete;
  HistoryRecorder& operator=(const HistoryRecorder&) = delete;

  /// The calling thread's log (registered on first use). Lock-free after
  /// the first call per (thread, recorder) pair; the fast path is one
  /// thread-local compare, inlined into the capture wrappers.
  ThreadLog* Log() {
    if (tl_cached.id == id_) return tl_cached.log;
    return LogSlow();
  }

  /// Capture switch. Checked wrappers pass through without recording when
  /// off. Flip only at a quiescent point.
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Merges and resets all thread logs. Caller must guarantee quiescence
  /// (all worker threads joined or between requests).
  History Drain();
  /// Discards all captured events without building a History.
  void Clear();

  size_t threads_seen() const;
  uint64_t id() const { return id_; }

 private:
  struct Cached {
    uint64_t id;
    ThreadLog* log;
  };
  // One (recorder id -> log) pair cached per thread; LogSlow's map handles
  // threads that alternate between live recorders. Keyed by the
  // process-unique id, not the address, so a recorder allocated where a
  // destroyed one lived can never alias a stale cache entry.
  static inline thread_local Cached tl_cached{0, nullptr};

  ThreadLog* Register();
  ThreadLog* LogSlow();

  const uint64_t id_;  // process-unique; keys the thread-local lookup
  bool enabled_ = true;
  mutable std::mutex mu_;
  ChunkPool pool_;
  std::vector<std::unique_ptr<ThreadLog>> logs_;
};

/// Process-wide recorder used by the `checked(<inner>)` index spec (the
/// server wires its wrapped index here). Enabled by default.
HistoryRecorder* GlobalRecorder();

}  // namespace check
}  // namespace fptree
