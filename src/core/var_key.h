// Copyright (c) FPTree reproduction authors.
//
// Variable-size key support (paper §5 "Variable-size keys" and Appendix C).
// String keys are stored out-of-line in SCM as KeyBlob records; leaves hold
// persistent pointers to them and inner structures hold references that
// dereference on comparison — which is precisely why "every key probe
// results in a cache miss" for var-key trees (§4.2) and why fingerprints
// help them the most.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "scm/alloc.h"
#include "scm/latency.h"
#include "scm/pmem.h"
#include "scm/pool.h"

namespace fptree {
namespace core {

/// Persistent out-of-line key: length-prefixed bytes.
struct KeyBlob {
  uint64_t len;
  char bytes[];  // len bytes follow

  std::string_view view() const { return std::string_view(bytes, len); }
};

/// Length sanity bound. Optimistic readers in the concurrent trees may
/// dereference a blob that is being recycled; a garbage length must never
/// drive an unbounded read (the comparison result is discarded anyway when
/// the transaction fails validation).
constexpr uint64_t kMaxVarKeyLen = 4096;

/// Reads (and charges) a blob comparison against a probe string.
inline int CompareBlob(const KeyBlob* blob, std::string_view key) {
  uint64_t len = scm::pmem::Load(&blob->len);
  if (len > kMaxVarKeyLen) return 1;
  scm::ReadScm(blob, sizeof(uint64_t) + len);
  return std::string_view(blob->bytes, len).compare(key);
}

inline int CompareBlobs(const KeyBlob* a, const KeyBlob* b) {
  uint64_t la = scm::pmem::Load(&a->len);
  uint64_t lb = scm::pmem::Load(&b->len);
  if (la > kMaxVarKeyLen || lb > kMaxVarKeyLen) return la > lb ? 1 : -1;
  scm::ReadScm(a, sizeof(uint64_t) + la);
  scm::ReadScm(b, sizeof(uint64_t) + lb);
  return std::string_view(a->bytes, la)
      .compare(std::string_view(b->bytes, lb));
}

/// Writes `key` into the blob pointed to by *slot, allocating it through
/// the leak-safe allocator protocol (slot must live in SCM).
inline Status AllocateKeyBlob(scm::Pool* pool, scm::PPtr<KeyBlob>* slot,
                              std::string_view key) {
  Status s = pool->allocator()->Allocate(
      reinterpret_cast<scm::VoidPPtr*>(slot), sizeof(uint64_t) + key.size());
  if (!s.ok()) return s;
  KeyBlob* blob = slot->get();
  scm::pmem::Store(&blob->len, static_cast<uint64_t>(key.size()));
  scm::pmem::StoreBytes(blob->bytes, key.data(), key.size());
  scm::pmem::Persist(blob, sizeof(uint64_t) + key.size());
  return Status::OK();
}

/// \brief 8-byte comparison handle used by DRAM inner structures for
/// var-key trees (the paper replaces inner keys with virtual pointers to
/// keys). Dereferences — and pays the SCM read — on every comparison.
struct KeyRef {
  const KeyBlob* blob = nullptr;

  bool operator<(const KeyRef& o) const {
    return CompareBlobs(blob, o.blob) < 0;
  }
  bool operator==(const KeyRef& o) const {
    return CompareBlobs(blob, o.blob) == 0;
  }
  bool operator<=(const KeyRef& o) const { return !(o < *this); }
};

}  // namespace core
}  // namespace fptree
