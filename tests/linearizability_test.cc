// Copyright (c) FPTree reproduction authors.
//
// End-to-end linearizability matrix (DESIGN.md §13): a randomized mixed
// workload runs through the checked(...) capture decorator against every
// registered fixed- and var-key index, a sharded(...) engine spec, the
// batched v3.1 entry points, and the network server (fault-free and under
// injected net.* connection kills), and the per-key Wing–Gong checker must
// accept each drained history. Detection power is pinned by a deliberately
// broken index that serves two-generation-stale reads: the same pipeline
// must REJECT that history, so a vacuously-green checker cannot pass here.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "check/checked_index.h"
#include "check/checker.h"
#include "check/history.h"
#include "crash_test_util.h"
#include "engine/sharded_index.h"
#include "fault/fault.h"
#include "index/kv_index.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "scm/latency.h"
#include "scm/pool.h"
#include "util/threading.h"

namespace fptree {
namespace check {
namespace {

using testutil::TestPath;
using testutil::VarKey;

uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// ---------------- shared workload --------------------------------------------
//
// Each thread hammers a small shared key space with a mix of point ops,
// batched ops, and scans. The key space is deliberately tiny (contended)
// so per-key histories actually interleave; on success the value written
// encodes (thread, op#) so any cross-thread smearing the checker finds is
// a real ordering violation, not a value collision.

struct FixedOps {
  using IndexT = index::KVIndex;
  using KeyT = uint64_t;
  static KeyT Key(uint64_t i) { return 0x1000 + i; }
  static bool Find(IndexT* t, KeyT k, uint64_t* v) { return t->Find(k, v); }
  static bool Insert(IndexT* t, KeyT k, uint64_t v) { return t->Insert(k, v); }
  static bool Update(IndexT* t, KeyT k, uint64_t v) { return t->Update(k, v); }
  static bool Erase(IndexT* t, KeyT k) { return t->Erase(k); }
  static bool Upsert(IndexT* t, KeyT k, uint64_t v) { return t->Upsert(k, v); }
  static void MultiGet(IndexT* t, const KeyT* keys, size_t n, uint64_t* vals,
                       uint8_t* found) {
    t->MultiGet(keys, n, vals, found);
  }
  static void MultiUpsert(IndexT* t, const KeyT* keys, const uint64_t* vals,
                          size_t n, uint8_t* ins) {
    t->MultiUpsert(keys, vals, n, ins);
  }
  static size_t Scan(IndexT* t, KeyT start, size_t limit) {
    return t->RangeScan(start, limit,
                        [](uint64_t, uint64_t) { return true; });
  }
};

struct VarOps {
  using IndexT = index::VarIndex;
  using KeyT = std::string;
  static KeyT Key(uint64_t i) { return VarKey(0x1000 + i); }
  static bool Find(IndexT* t, const KeyT& k, uint64_t* v) {
    return t->Find(k, v);
  }
  static bool Insert(IndexT* t, const KeyT& k, uint64_t v) {
    return t->Insert(k, v);
  }
  static bool Update(IndexT* t, const KeyT& k, uint64_t v) {
    return t->Update(k, v);
  }
  static bool Erase(IndexT* t, const KeyT& k) { return t->Erase(k); }
  static bool Upsert(IndexT* t, const KeyT& k, uint64_t v) {
    return t->Upsert(k, v);
  }
  static void MultiGet(IndexT* t, const KeyT* keys, size_t n, uint64_t* vals,
                       uint8_t* found) {
    std::vector<std::string_view> views(keys, keys + n);
    t->MultiGet(views.data(), n, vals, found);
  }
  static void MultiUpsert(IndexT* t, const KeyT* keys, const uint64_t* vals,
                          size_t n, uint8_t* ins) {
    std::vector<std::string_view> views(keys, keys + n);
    t->MultiUpsert(views.data(), vals, n, ins);
  }
  static size_t Scan(IndexT* t, const KeyT& start, size_t limit) {
    return t->RangeScan(start, limit,
                        [](std::string_view, uint64_t) { return true; });
  }
};

template <typename Ops>
void RunWorkload(typename Ops::IndexT* idx, uint32_t threads,
                 uint32_t ops_per_thread, uint64_t nkeys, uint64_t seed) {
  ThreadGroup tg;
  tg.Spawn(threads, [&](uint32_t tid) {
    uint64_t rng = seed * 0x100000001b3ull + tid + 1;
    for (uint32_t i = 0; i < ops_per_thread; ++i) {
      rng = Mix(rng);
      typename Ops::KeyT key = Ops::Key(rng % nkeys);
      uint64_t val = (uint64_t{tid} << 32) | i;
      uint64_t got = 0;
      switch (Mix(rng + 1) % 10) {
        case 0:
        case 1:
        case 2:
          Ops::Find(idx, key, &got);
          break;
        case 3:
          Ops::Insert(idx, key, val);
          break;
        case 4:
          Ops::Update(idx, key, val);
          break;
        case 5:
          Ops::Erase(idx, key);
          break;
        case 6:
          Ops::Upsert(idx, key, val);
          break;
        case 7: {
          typename Ops::KeyT keys[4];
          uint64_t vals[4];
          uint8_t found[4];
          for (int j = 0; j < 4; ++j) {
            keys[j] = Ops::Key((rng + j) % nkeys);
          }
          Ops::MultiGet(idx, keys, 4, vals, found);
          break;
        }
        case 8: {
          // Distinct keys so intra-batch duplicate rules don't come into
          // play; the checker still sees one slot per element.
          typename Ops::KeyT keys[3];
          uint64_t vals[3];
          for (int j = 0; j < 3; ++j) {
            keys[j] = Ops::Key((rng / 7 + j * 5) % nkeys);
            vals[j] = val + static_cast<uint64_t>(j) + 1;
          }
          Ops::MultiUpsert(idx, keys, vals, 3, nullptr);
          break;
        }
        default:
          Ops::Scan(idx, key, 6);
          break;
      }
    }
  });
  tg.Join();
}

void ExpectAccepted(HistoryRecorder* rec, const std::string& what) {
  History h = rec->Drain();
  EXPECT_GT(h.size(), 0u) << what << ": capture recorded nothing";
  CheckOptions opts;
  CheckResult res = CheckHistory(h, opts);
  ASSERT_TRUE(res.decided) << what << " (checker budget): " << res.why;
  ASSERT_TRUE(res.ok) << what << ": " << res.why;
  EXPECT_GT(res.stats.keys, 0u) << what;
}

// ---------------- registry matrix --------------------------------------------

TEST(LinearizabilityTest, EveryRegisteredFixedIndexLinearizes) {
  scm::LatencyModel::Disable();
  for (const std::string& name : index::ListFixedIndexNames()) {
    SCOPED_TRACE(name);
    std::string path = TestPath("lin_fixed_" + name);
    scm::Pool::Destroy(path).ok();
    std::unique_ptr<scm::Pool> pool;
    scm::Pool::Options popts{.size = 128u << 20, .randomize_base = false};
    ASSERT_TRUE(scm::Pool::Create(path, 1, popts, &pool).ok());
    {
      HistoryRecorder rec;
      auto checked =
          Checked(index::MakeFixedIndex(name, pool.get(), /*locked=*/true),
                  &rec);
      ASSERT_NE(checked, nullptr);
      RunWorkload<FixedOps>(checked.get(), 3, 300, 12, 0xF00D + 1);
      ExpectAccepted(&rec, name);
    }
    pool.reset();
    scm::Pool::Destroy(path).ok();
  }
}

TEST(LinearizabilityTest, EveryRegisteredVarIndexLinearizes) {
  scm::LatencyModel::Disable();
  for (const std::string& name : index::ListVarIndexNames()) {
    SCOPED_TRACE(name);
    std::string path = TestPath("lin_var_" + name);
    scm::Pool::Destroy(path).ok();
    std::unique_ptr<scm::Pool> pool;
    scm::Pool::Options popts{.size = 128u << 20, .randomize_base = false};
    ASSERT_TRUE(scm::Pool::Create(path, 1, popts, &pool).ok());
    {
      HistoryRecorder rec;
      auto checked = Checked(
          index::MakeVarIndex(name, pool.get(), /*locked=*/true), &rec);
      ASSERT_NE(checked, nullptr);
      RunWorkload<VarOps>(checked.get(), 3, 300, 12, 0xBEEF + 1);
      ExpectAccepted(&rec, name);
    }
    pool.reset();
    scm::Pool::Destroy(path).ok();
  }
}

TEST(LinearizabilityTest, ShardedSpecLinearizesThroughCheckedWrapper) {
  scm::LatencyModel::Disable();
  // The server composes these the same way: checked(sharded(inner,N)).
  std::string inner;
  ASSERT_TRUE(ParseCheckedSpec("checked(sharded(fptree-c-var,3))", &inner));
  EXPECT_EQ(inner, "sharded(fptree-c-var,3)");

  engine::ShardedOptions eopts;
  eopts.path_prefix = TestPath("lin_sharded");
  eopts.shard_bytes = 64u << 20;
  eopts.locked = true;
  std::unique_ptr<index::VarIndex> sharded;
  ASSERT_TRUE(engine::MakeVarIndexFromSpec(inner, eopts, &sharded).ok());

  HistoryRecorder rec;
  auto checked = Checked(std::move(sharded), &rec);
  RunWorkload<VarOps>(checked.get(), 3, 300, 16, 0xCAFE);
  ExpectAccepted(&rec, "checked(sharded(fptree-c-var,3))");
}

// ---------------- batched paths ----------------------------------------------

TEST(LinearizabilityTest, BatchHeavyWorkloadLinearizes) {
  scm::LatencyModel::Disable();
  std::string path = TestPath("lin_batch");
  scm::Pool::Destroy(path).ok();
  std::unique_ptr<scm::Pool> pool;
  scm::Pool::Options popts{.size = 128u << 20, .randomize_base = false};
  ASSERT_TRUE(scm::Pool::Create(path, 1, popts, &pool).ok());
  {
    HistoryRecorder rec;
    auto checked = Checked(
        index::MakeFixedIndex("fptree-c", pool.get(), /*locked=*/true), &rec);
    ASSERT_NE(checked, nullptr);
    auto* idx = checked.get();

    ThreadGroup tg;
    tg.Spawn(3, [&](uint32_t tid) {
      uint64_t rng = 0xABCD + tid;
      for (uint32_t i = 0; i < 200; ++i) {
        rng = Mix(rng);
        uint64_t base = rng % 12;
        uint64_t keys[4], vals[4], got[4];
        uint8_t flags[4];
        for (int j = 0; j < 4; ++j) {
          keys[j] = 0x2000 + (base + static_cast<uint64_t>(j) * 3) % 12;
          vals[j] = (uint64_t{tid} << 32) | (uint64_t{i} << 2) |
                    static_cast<uint64_t>(j);
        }
        switch (rng % 4) {
          case 0:
            idx->MultiGet(keys, 4, got, flags);
            break;
          case 1:
            idx->MultiPut(keys, vals, 4, flags);
            break;
          case 2:
            idx->MultiUpsert(keys, vals, 4, flags);
            break;
          default: {
            size_t applied = 0;
            idx->MultiUpsertChecked(keys, vals, 4, flags, &applied).ok();
            break;
          }
        }
        if (rng % 16 == 0) idx->Erase(keys[0]);
      }
    });
    tg.Join();
    ExpectAccepted(&rec, "batch-heavy fptree-c");
  }
  pool.reset();
  scm::Pool::Destroy(path).ok();
}

// ---------------- detection power --------------------------------------------

// A deliberately broken fixed-key index: writes go to a real map, but reads
// serve the value from two generations ago once a key has been written three
// times. Under the checked wrapper this produces a history in which a read
// that STARTS after the newest write's response still returns the stale
// value — exactly the class of bug the checker exists to catch.
class StaleReadIndex final : public index::KVIndex {
 public:
  bool Find(uint64_t key, uint64_t* value) override {
    std::lock_guard<std::mutex> l(mu_);
    auto it = hist_.find(key);
    if (it == hist_.end() || it->second.empty()) return false;
    const std::vector<uint64_t>& h = it->second;
    *value = h.size() >= 3 ? h[h.size() - 3] : h.back();
    return true;
  }
  bool Insert(uint64_t key, uint64_t value) override {
    std::lock_guard<std::mutex> l(mu_);
    auto it = hist_.find(key);
    if (it != hist_.end() && !it->second.empty()) return false;
    hist_[key].push_back(value);
    return true;
  }
  bool Update(uint64_t key, uint64_t value) override {
    std::lock_guard<std::mutex> l(mu_);
    auto it = hist_.find(key);
    if (it == hist_.end() || it->second.empty()) return false;
    it->second.push_back(value);
    return true;
  }
  bool Erase(uint64_t key) override {
    std::lock_guard<std::mutex> l(mu_);
    auto it = hist_.find(key);
    if (it == hist_.end() || it->second.empty()) return false;
    hist_.erase(it);
    return true;
  }
  size_t RangeScan(uint64_t, size_t, const ScanCallback&) override {
    return 0;
  }
  size_t Size() const override {
    std::lock_guard<std::mutex> l(mu_);
    return hist_.size();
  }
  uint64_t DramBytes() const override { return 0; }
  uint64_t ScmBytes() const override { return 0; }
  obs::Snapshot Stats() const override { return obs::Snapshot{}; }
  bool concurrent() const override { return true; }

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, std::vector<uint64_t>> hist_;
};

TEST(LinearizabilityTest, SeededStaleReadIsDetected) {
  StaleReadIndex broken;
  HistoryRecorder rec;
  auto checked = CheckedBorrowed(&broken, &rec);

  // Sequential history, so real-time order pins everything: after the
  // third write completes, a read may only return 33.
  ASSERT_TRUE(checked->Insert(7, 11));
  ASSERT_FALSE(checked->Insert(7, 22));  // dup insert: no effect
  ASSERT_TRUE(checked->Update(7, 22));
  ASSERT_TRUE(checked->Update(7, 33));
  uint64_t got = 0;
  ASSERT_TRUE(checked->Find(7, &got));
  EXPECT_EQ(got, 11u) << "broken index should have served the stale value";

  History h = rec.Drain();
  CheckOptions opts;
  CheckResult res = CheckHistory(h, opts);
  ASSERT_TRUE(res.decided) << res.why;
  EXPECT_FALSE(res.ok)
      << "checker accepted a two-generation-stale read: no detection power";
}

// ---------------- the wire ---------------------------------------------------

class NetLinearizabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scm::LatencyModel::Disable();
    fault::FaultInjector::Instance().DisarmAll();
    path_ = TestPath("lin_net");
    scm::Pool::Destroy(path_).ok();
    scm::Pool::Options opts{.size = 256u << 20, .randomize_base = false};
    ASSERT_TRUE(scm::Pool::Create(path_, 1, opts, &pool_).ok());
    index_ = index::MakeVarIndex("fptree-c-var", pool_.get(), true);
    ASSERT_NE(index_, nullptr);
    net::Server::Options sopts;
    sopts.drain_grace_ms = 500;
    server_ = std::make_unique<net::Server>(index_.get(), sopts);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }
  void TearDown() override {
    fault::FaultInjector::Instance().DisarmAll();
    server_.reset();
    index_.reset();
    pool_.reset();
    scm::Pool::Destroy(path_).ok();
  }

  // Client-side capture: each worker owns a Client wired to the shared
  // recorder and runs the mixed wire workload. Lost responses (killed
  // connections under fault injection) stay open in the thread log and
  // drain as pending — the checker treats them as maybe-applied.
  void RunClients(uint32_t threads, uint32_t ops_per_thread,
                  bool reconnect_on_error) {
    ThreadGroup tg;
    tg.Spawn(threads, [&](uint32_t tid) {
      net::Client c;
      c.set_recorder(&recorder_);
      c.set_deadline_ms(2000);
      if (!c.Connect("127.0.0.1", server_->port()).ok()) return;
      uint64_t rng = 0x5EED + tid;
      for (uint32_t i = 0; i < ops_per_thread; ++i) {
        rng = Mix(rng);
        std::string key = VarKey(0x3000 + rng % 10);
        uint64_t val = (uint64_t{tid} << 32) | i;
        Status s;
        uint64_t got = 0;
        bool flag = false;
        switch (Mix(rng + 3) % 8) {
          case 0:
          case 1:
            s = c.Get(key, &got, &flag);
            break;
          case 2:
            s = c.Put(key, val);
            break;
          case 3:
            s = c.Upsert(key, val, &flag);
            break;
          case 4:
            s = c.Del(key, &flag);
            break;
          case 5: {
            std::vector<std::pair<std::string, uint64_t>> rows;
            s = c.Scan(key, 5, &rows);
            break;
          }
          case 6: {
            std::string keys_s[3];
            std::string_view keys[3];
            uint64_t vals[3];
            uint8_t found[3];
            for (int j = 0; j < 3; ++j) {
              keys_s[j] = VarKey(0x3000 + (rng + j) % 10);
              keys[j] = keys_s[j];
            }
            s = c.Mget(keys, 3, vals, found);
            break;
          }
          default: {
            std::string keys_s[3];
            std::string_view keys[3];
            uint64_t vals[3];
            uint8_t ins[3];
            for (int j = 0; j < 3; ++j) {
              keys_s[j] = VarKey(0x3000 + (rng / 3 + j * 4) % 10);
              keys[j] = keys_s[j];
              vals[j] = val + static_cast<uint64_t>(j);
            }
            s = c.Mput(keys, vals, 3, ins);
            break;
          }
        }
        if (!s.ok()) {
          if (!reconnect_on_error) return;
          // Reconnect abandons in-flight captures (they drain as pending)
          // and keeps hammering; give up only if the server is truly gone.
          if (!c.ConnectWithRetry("127.0.0.1", server_->port(),
                                  net::RetryPolicy{.max_attempts = 5,
                                                   .base_backoff_ms = 1,
                                                   .max_backoff_ms = 8,
                                                   .seed = tid + 1})
                   .ok()) {
            return;
          }
        }
      }
    });
    tg.Join();
  }

  std::string path_;
  std::unique_ptr<scm::Pool> pool_;
  std::unique_ptr<index::VarIndex> index_;
  std::unique_ptr<net::Server> server_;
  HistoryRecorder recorder_;
};

TEST_F(NetLinearizabilityTest, WireHistoryLinearizes) {
  RunClients(3, 250, /*reconnect_on_error=*/false);
  ExpectAccepted(&recorder_, "net server (fault-free)");
}

TEST_F(NetLinearizabilityTest, WireHistoryUnderConnectionKillsLinearizes) {
  // Kill roughly one read in 150 server-side: connections die mid-pipeline,
  // responses are lost, clients reconnect and continue. The drained history
  // has pending (maybe-applied) ops and must still be accepted.
  fault::FaultInjector::Instance().SetSeed(0xD15EA5E);
  fault::FaultInjector::Instance().Arm(
      "net.read.err", fault::FaultSpec{.probability = 1.0 / 150.0});
  RunClients(3, 250, /*reconnect_on_error=*/true);
  fault::FaultInjector::Instance().DisarmAll();
  EXPECT_GT(fault::FaultInjector::Instance().Fires("net.read.err"), 0u)
      << "fault plan never fired; the test exercised nothing";
  ExpectAccepted(&recorder_, "net server (net.read.err)");
}

}  // namespace
}  // namespace check
}  // namespace fptree
