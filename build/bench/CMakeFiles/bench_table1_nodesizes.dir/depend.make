# Empty dependencies file for bench_table1_nodesizes.
# This may be replaced when dependencies are built.
