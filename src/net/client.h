// Copyright (c) FPTree reproduction authors.
//
// Minimal client for the FPTree KV server's wire protocol (protocol.h).
// Built for the two load-generation styles the bench needs:
//
//  * Closed loop: Queue*() + Flush() + ReadResponse() per batch — the
//    caller pipelines a window of requests and blocks for the responses.
//  * Open loop: Queue*() + Flush() at the offered rate, TryReadResponse()
//    to reap whatever responses have arrived without blocking.
//
// Responses arrive strictly in request order, so callers match them by
// counting. The class is not thread-safe; use one Client per connection.

#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "net/protocol.h"
#include "util/status.h"

namespace fptree {
namespace net {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects (blocking) to host:port.
  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Queue a request frame into the send buffer (no I/O). The op kind is
  /// remembered in a FIFO so responses — which arrive strictly in request
  /// order — decode with the right layout (batch responses are ambiguous
  /// under size-based guessing; see protocol.h).
  void QueuePut(std::string_view key, uint64_t value) {
    EncodePut(&outbuf_, key, value);
    Queued(Op::kPut);
  }
  void QueueGet(std::string_view key) {
    EncodeGet(&outbuf_, key);
    Queued(Op::kGet);
  }
  void QueueDel(std::string_view key) {
    EncodeDel(&outbuf_, key);
    Queued(Op::kDel);
  }
  void QueueScan(std::string_view start, uint32_t limit) {
    EncodeScan(&outbuf_, start, limit);
    Queued(Op::kScan);
  }
  void QueueUpsert(std::string_view key, uint64_t value) {
    EncodeUpsert(&outbuf_, key, value);
    Queued(Op::kUpsert);
  }
  /// One MGET frame for `count` keys; the response carries one
  /// (found, value) pair per key in request order.
  void QueueMget(const std::string_view* keys, uint32_t count) {
    EncodeMget(&outbuf_, keys, count);
    Queued(Op::kMget);
  }
  /// One MPUT frame (per-key upsert semantics); the response carries one
  /// inserted flag per key in request order.
  void QueueMput(const std::string_view* keys, const uint64_t* values,
                 uint32_t count) {
    EncodeMput(&outbuf_, keys, values, count);
    Queued(Op::kMput);
  }

  /// Requests queued but whose responses have not been read yet.
  uint64_t inflight() const { return queued_ - received_; }

  /// Writes the whole send buffer to the socket (blocking).
  Status Flush();

  /// Blocks until one response frame is available and decodes it.
  Status ReadResponse(Response* resp);

  /// Non-blocking reap: decodes one response if a complete frame is already
  /// buffered or readable without blocking. Sets *got accordingly; a false
  /// *got with an OK status just means "nothing there yet".
  Status TryReadResponse(Response* resp, bool* got);

  // --- convenience synchronous ops (queue + flush + read) -------------------

  Status Put(std::string_view key, uint64_t value);
  /// *inserted = true when the key was newly inserted, false on replace.
  Status Upsert(std::string_view key, uint64_t value, bool* inserted);
  /// found=false on NOT_FOUND.
  Status Get(std::string_view key, uint64_t* value, bool* found);
  Status Del(std::string_view key, bool* found);
  Status Scan(std::string_view start, uint32_t limit,
              std::vector<std::pair<std::string, uint64_t>>* rows);
  /// Batched GET: values[i]/found[i] filled per key (values[i] untouched
  /// on a miss), one round trip for the whole batch.
  Status Mget(const std::string_view* keys, size_t count, uint64_t* values,
              uint8_t* found);
  /// Batched upsert; inserted may be nullptr when the caller doesn't care.
  Status Mput(const std::string_view* keys, const uint64_t* values,
              size_t count, uint8_t* inserted);

 private:
  void Queued(Op op) {
    pending_ops_.push_back(op);
    ++queued_;
  }
  Status FillBuffer(bool blocking, bool* progress);
  Status DecodeOne(Response* resp, bool* got);

  int fd_ = -1;
  std::string outbuf_;
  std::string inbuf_;
  size_t in_pos_ = 0;
  uint64_t queued_ = 0;
  uint64_t received_ = 0;
  std::deque<Op> pending_ops_;  // op kinds awaiting their response frame
};

}  // namespace net
}  // namespace fptree
