file(REMOVE_RECURSE
  "CMakeFiles/kvcache_demo.dir/kvcache_demo.cc.o"
  "CMakeFiles/kvcache_demo.dir/kvcache_demo.cc.o.d"
  "kvcache_demo"
  "kvcache_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvcache_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
