// Table 1: node-size tuning. Sweeps FPTree leaf and inner sizes (and the
// wBTree's) over a mixed workload and reports the best-performing
// configuration — the experiment behind the paper's chosen sizes
// (FPTree: inner 4096 / leaf 56; wBTree: inner 32 / leaf 64).

#include <cstdio>

#include "baselines/wbtree.h"
#include "bench_common.h"
#include "core/fptree.h"

namespace fptree {
namespace bench {
namespace {

template <typename TreeT>
double MixedScore(uint64_t n) {
  ScopedPool pool(size_t{4} << 30);
  TreeT tree(pool.get());
  auto warm = ShuffledRange(n, 3);
  for (uint64_t k : warm) tree.Insert(k * 2, k);
  auto extra = ShuffledRange(n, 4);
  Stopwatch sw;
  uint64_t v;
  for (uint64_t i = 0; i < n; ++i) {
    tree.Find(warm[i] * 2, &v);
    tree.Insert(extra[i] * 2 + 1, i);
    tree.Find(extra[i] * 2 + 1, &v);
    tree.Erase(extra[i] * 2 + 1);
  }
  return static_cast<double>(4 * n) / sw.ElapsedSeconds() / 1e6;
}

template <size_t kLeaf, size_t kInner>
void FpRow(uint64_t n) {
  double mops = MixedScore<core::FPTree<uint64_t, kLeaf, kInner>>(n);
  std::printf("  FPTree leaf=%3zu inner=%5zu : %7.2f Mops/s\n", kLeaf, kInner,
              mops);
}

template <size_t kLeaf, size_t kInner>
void WbRow(uint64_t n) {
  double mops = MixedScore<baselines::WBTree<uint64_t, kLeaf, kInner>>(n);
  std::printf("  wBTree leaf=%3zu inner=%5zu : %7.2f Mops/s\n", kLeaf, kInner,
              mops);
}

}  // namespace
}  // namespace bench
}  // namespace fptree

int main(int argc, char** argv) {
  using namespace fptree;
  using namespace fptree::bench;
  Flags flags = Flags::Parse(argc, argv);
  scm::LatencyModel::Calibrate();
  SetLatency(flags.latency != 0 ? flags.latency : 250);
  uint64_t n = flags.quick ? 30000 : flags.keys / 2;

  PrintHeader("Table 1: node-size tuning (mixed workload throughput)");
  std::printf("FPTree leaf-size sweep (inner fixed at 4096):\n");
  FpRow<16, 4096>(n);
  FpRow<32, 4096>(n);
  FpRow<56, 4096>(n);
  FpRow<64, 4096>(n);
  std::printf("FPTree inner-size sweep (leaf fixed at 56):\n");
  FpRow<56, 64>(n);
  FpRow<56, 512>(n);
  FpRow<56, 4096>(n);
  std::printf("wBTree sweep:\n");
  WbRow<32, 16>(n);
  WbRow<64, 32>(n);
  WbRow<64, 64>(n);
  scm::LatencyModel::Disable();
  std::printf(
      "\nPaper's chosen sizes: FPTree inner 4096 / leaf 56; wBTree inner 32 "
      "/ leaf 64.\n");
  EmitMetricsJson("table1_nodesizes");
  return 0;
}
