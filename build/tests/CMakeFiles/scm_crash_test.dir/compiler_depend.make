# Empty compiler generated dependencies file for scm_crash_test.
# This may be replaced when dependencies are built.
