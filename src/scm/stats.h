// Copyright (c) FPTree reproduction authors.
//
// Per-thread counters of simulated-SCM events. Benchmarks read these to
// report, e.g., SCM misses per Find (paper §6.2 observes the FPTree Find
// costs ≈ 2 SCM cache misses) and flushes per insert.
//
// Each thread owns a private StatsCounters block (no hot-path
// synchronization). Blocks register themselves in a process-wide registry so
// AggregatedStats() can sum across live threads; when a thread exits its
// final counts are folded into a retired total. The obs::MetricsRegistry
// snapshot reads AggregatedStats() — callers should not hand-aggregate.

#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace fptree {
namespace scm {

/// \brief Event counters. One instance per thread; see AggregatedStats().
struct StatsCounters {
  uint64_t scm_read_misses = 0;   ///< cache-line reads charged SCM latency
  uint64_t scm_read_hits = 0;     ///< cache-line reads served by the model LLC
  uint64_t prefetched_lines = 0;  ///< missed lines staged by ReadBatch
  uint64_t flushed_lines = 0;     ///< cache lines flushed by Persist()
  uint64_t fences = 0;            ///< memory fences issued
  uint64_t allocations = 0;       ///< persistent allocations
  uint64_t deallocations = 0;     ///< persistent deallocations

  void Add(const StatsCounters& o) {
    scm_read_misses += o.scm_read_misses;
    scm_read_hits += o.scm_read_hits;
    prefetched_lines += o.prefetched_lines;
    flushed_lines += o.flushed_lines;
    fences += o.fences;
    allocations += o.allocations;
    deallocations += o.deallocations;
  }
  void Clear() { *this = StatsCounters{}; }
};

namespace internal {

/// Process-wide registry of live per-thread counter blocks plus the summed
/// totals of threads that have exited. Leaked on purpose so thread-local
/// destructors that run after static destruction still have a valid target.
class StatsRegistry {
 public:
  static StatsRegistry& Instance() {
    static StatsRegistry* r = new StatsRegistry;
    return *r;
  }

  void Register(StatsCounters* c) {
    std::lock_guard<std::mutex> lock(mu_);
    live_.push_back(c);
  }

  void Retire(StatsCounters* c) {
    std::lock_guard<std::mutex> lock(mu_);
    retired_.Add(*c);
    for (size_t i = 0; i < live_.size(); ++i) {
      if (live_[i] == c) {
        live_[i] = live_.back();
        live_.pop_back();
        break;
      }
    }
  }

  /// Sum of retired totals plus every live thread's block. Reads of other
  /// threads' plain counters are racy but benign: values are monotonic
  /// word-sized counts used for reporting only.
  StatsCounters Aggregate() const {
    std::lock_guard<std::mutex> lock(mu_);
    StatsCounters total = retired_;
    for (const StatsCounters* c : live_) total.Add(*c);
    return total;
  }

  /// Zeroes retired totals and every live thread's block.
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    retired_.Clear();
    for (StatsCounters* c : live_) c->Clear();
  }

 private:
  StatsRegistry() = default;
  mutable std::mutex mu_;
  std::vector<StatsCounters*> live_;
  StatsCounters retired_;
};

struct ThreadStatsHolder {
  StatsCounters counters;
  ThreadStatsHolder() { StatsRegistry::Instance().Register(&counters); }
  ~ThreadStatsHolder() { StatsRegistry::Instance().Retire(&counters); }
};

inline thread_local ThreadStatsHolder tls_stats;

}  // namespace internal

/// Returns this thread's counters (mutable).
inline StatsCounters& ThreadStats() { return internal::tls_stats.counters; }

/// Clears this thread's counters.
inline void ClearThreadStats() { ThreadStats().Clear(); }

/// Process-wide totals: all live threads plus threads that already exited.
inline StatsCounters AggregatedStats() {
  return internal::StatsRegistry::Instance().Aggregate();
}

/// Zeroes the process-wide totals, including other threads' live counters.
/// Call only at quiescent points (benchmark phase boundaries).
inline void ResetAggregatedStats() {
  internal::StatsRegistry::Instance().Reset();
}

}  // namespace scm
}  // namespace fptree
