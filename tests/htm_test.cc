// The HTM substitute: transaction semantics (atomicity, isolation, abort/
// retry, fallback) under both the TL2 and global-lock backends.

#include "htm/htm.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/threading.h"

namespace fptree {
namespace htm {
namespace {

class HtmTest : public ::testing::TestWithParam<Backend> {
 protected:
  HtmEngine engine_{GetParam()};
};

TEST_P(HtmTest, SingleThreadedReadWrite) {
  uint64_t cell = 5;
  Tx tx(&engine_);
  for (;;) {
    tx.Begin();
    uint64_t v = tx.Load(&cell);
    if (!tx.ok()) continue;
    EXPECT_EQ(v, 5u);
    tx.Store(&cell, v + 1);
    // Read-own-write.
    EXPECT_EQ(tx.Load(&cell), 6u);
    if (tx.Commit()) break;
  }
  EXPECT_EQ(cell, 6u);
}

TEST_P(HtmTest, WritesInvisibleUntilCommit) {
  if (GetParam() == Backend::kGlobalLock) {
    GTEST_SKIP() << "global-lock backend writes in place by design";
  }
  uint64_t cell = 1;
  Tx tx(&engine_);
  tx.Begin();
  tx.Store(&cell, 99);
  EXPECT_EQ(cell, 1u) << "buffered write leaked before commit";
  ASSERT_TRUE(tx.Commit());
  EXPECT_EQ(cell, 99u);
}

TEST_P(HtmTest, UserAbortDiscardsWrites) {
  if (GetParam() == Backend::kGlobalLock) {
    GTEST_SKIP() << "global-lock backend writes in place by design";
  }
  uint64_t cell = 1;
  Tx tx(&engine_);
  tx.Begin();
  tx.Store(&cell, 99);
  tx.UserAbort();
  EXPECT_EQ(cell, 1u);
  // Transaction is reusable after abort.
  tx.Begin();
  tx.Store(&cell, 7);
  ASSERT_TRUE(tx.Commit());
  EXPECT_EQ(cell, 7u);
}

TEST_P(HtmTest, StatsCountCommitsAndAborts) {
  uint64_t cell = 0;
  Tx tx(&engine_);
  tx.Begin();
  tx.Store(&cell, 1);
  ASSERT_TRUE(tx.Commit());
  EXPECT_GE(engine_.stats().commits.load(), 1u);
  Tx tx2(&engine_);
  tx2.Begin();
  tx2.UserAbort();
  EXPECT_GE(engine_.stats().aborts.load(), 1u);
}

TEST_P(HtmTest, CounterIncrementsAreAtomic) {
  constexpr int kThreads = 8;
  constexpr int kIncr = 2000;
  alignas(64) uint64_t counter = 0;
  ThreadGroup tg;
  tg.Spawn(kThreads, [&](uint32_t) {
    Tx tx(&engine_);
    for (int i = 0; i < kIncr; ++i) {
      for (;;) {
        tx.Begin();
        uint64_t v = tx.Load(&counter);
        if (!tx.ok()) continue;
        tx.Store(&counter, v + 1);
        if (tx.Commit()) break;
      }
    }
  });
  tg.Join();
  EXPECT_EQ(counter, static_cast<uint64_t>(kThreads) * kIncr);
}

TEST_P(HtmTest, TwoCellInvariantPreservedUnderContention) {
  // Transfer between two cells; sum must be invariant at every read.
  constexpr int kThreads = 6;
  constexpr int kOps = 3000;
  alignas(64) uint64_t a = 1000;
  alignas(64) uint64_t b = 1000;
  std::atomic<bool> violation{false};
  ThreadGroup tg;
  tg.Spawn(kThreads, [&](uint32_t id) {
    Tx tx(&engine_);
    if (id % 2 == 0) {
      for (int i = 0; i < kOps; ++i) {
        for (;;) {
          tx.Begin();
          uint64_t va = tx.Load(&a);
          uint64_t vb = tx.Load(&b);
          if (!tx.ok()) continue;
          tx.Store(&a, va - 1);
          tx.Store(&b, vb + 1);
          if (tx.Commit()) break;
        }
      }
    } else {
      for (int i = 0; i < kOps; ++i) {
        for (;;) {
          tx.Begin();
          uint64_t va = tx.Load(&a);
          uint64_t vb = tx.Load(&b);
          if (!tx.ok()) continue;
          if (tx.Commit()) {
            if (va + vb != 2000) violation.store(true);
            break;
          }
        }
      }
    }
  });
  tg.Join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(a + b, 2000u);
}

TEST_P(HtmTest, FallbackEngagesUnderHeavyConflict) {
  if (GetParam() == Backend::kGlobalLock) {
    GTEST_SKIP() << "global-lock backend is always 'fallback'";
  }
  // Hammer one cell from many threads; some transaction should eventually
  // exceed the retry budget and take the fallback path — and correctness
  // must hold regardless.
  constexpr int kThreads = 8;
  constexpr int kIncr = 5000;
  alignas(64) uint64_t counter = 0;
  ThreadGroup tg;
  tg.Spawn(kThreads, [&](uint32_t) {
    Tx tx(&engine_);
    for (int i = 0; i < kIncr; ++i) {
      for (;;) {
        tx.Begin();
        uint64_t v = tx.Load(&counter);
        if (!tx.ok()) continue;
        tx.Store(&counter, v + 1);
        if (tx.Commit()) break;
      }
    }
  });
  tg.Join();
  EXPECT_EQ(counter, static_cast<uint64_t>(kThreads) * kIncr);
}

TEST_P(HtmTest, ReadOnlyTransactionsScaleWithoutWrites) {
  alignas(64) uint64_t cell = 123;
  constexpr int kThreads = 8;
  std::atomic<uint64_t> sum{0};
  ThreadGroup tg;
  tg.Spawn(kThreads, [&](uint32_t) {
    Tx tx(&engine_);
    uint64_t local = 0;
    for (int i = 0; i < 10000; ++i) {
      for (;;) {
        tx.Begin();
        uint64_t v = tx.Load(&cell);
        if (!tx.ok()) continue;
        if (tx.Commit()) {
          local += v;
          break;
        }
      }
    }
    sum.fetch_add(local);
  });
  tg.Join();
  EXPECT_EQ(sum.load(), 123u * kThreads * 10000u);
}

TEST_P(HtmTest, LoadPtrRoundTrips) {
  int x = 7;
  int* slot = &x;
  Tx tx(&engine_);
  for (;;) {
    tx.Begin();
    int* p = tx.LoadPtr(&slot);
    if (!tx.ok()) continue;
    EXPECT_EQ(p, &x);
    if (tx.Commit()) break;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, HtmTest,
                         ::testing::Values(Backend::kTl2,
                                           Backend::kGlobalLock),
                         [](const auto& info) {
                           return info.param == Backend::kTl2 ? "Tl2"
                                                              : "GlobalLock";
                         });

}  // namespace
}  // namespace htm
}  // namespace fptree
