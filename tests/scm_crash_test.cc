// The crash simulator itself: durability of persisted stores, loss of
// unpersisted stores, cache-line-granular retirement, revert ordering,
// partial-write tearing, and crash points.

#include "scm/crash.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>

#include "scm/latency.h"
#include "scm/pmem.h"

namespace fptree {
namespace scm {
namespace {

class CrashSimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LatencyModel::Disable();
    CrashSim::Enable();
    std::memset(buf_, 0, sizeof(buf_));
    CrashSim::CommitAll();  // the memset above is "pre-history"
  }
  void TearDown() override { CrashSim::Disable(); }

  alignas(64) unsigned char buf_[512];
};

TEST_F(CrashSimTest, UnpersistedStoreIsLost) {
  uint64_t* p = reinterpret_cast<uint64_t*>(buf_);
  pmem::Store(p, uint64_t{42});
  EXPECT_EQ(*p, 42u);
  CrashSim::SimulateCrash();
  EXPECT_EQ(*p, 0u);
}

TEST_F(CrashSimTest, PersistedStoreSurvives) {
  uint64_t* p = reinterpret_cast<uint64_t*>(buf_);
  pmem::StorePersist(p, uint64_t{42});
  CrashSim::SimulateCrash();
  EXPECT_EQ(*p, 42u);
}

TEST_F(CrashSimTest, PersistIsCacheLineGranular) {
  // Two stores in the same cache line; persisting one makes both durable
  // (CLFLUSH flushes the whole line) — exactly the property the paper's
  // micro-log trick relies on ("back-to-back writes to a micro-log ... can
  // be ordered with a memory barrier and then persisted together").
  uint64_t* a = reinterpret_cast<uint64_t*>(buf_);
  uint64_t* b = a + 1;
  pmem::Store(a, uint64_t{1});
  pmem::Store(b, uint64_t{2});
  pmem::Persist(a, sizeof(*a));
  CrashSim::SimulateCrash();
  EXPECT_EQ(*a, 1u);
  EXPECT_EQ(*b, 2u);
}

TEST_F(CrashSimTest, DifferentLineNotRetired) {
  uint64_t* a = reinterpret_cast<uint64_t*>(buf_);
  uint64_t* b = reinterpret_cast<uint64_t*>(buf_ + 128);
  pmem::Store(a, uint64_t{1});
  pmem::Store(b, uint64_t{2});
  pmem::Persist(a, sizeof(*a));
  CrashSim::SimulateCrash();
  EXPECT_EQ(*a, 1u);
  EXPECT_EQ(*b, 0u);
}

TEST_F(CrashSimTest, OverlappingStoresRevertToOriginal) {
  uint64_t* p = reinterpret_cast<uint64_t*>(buf_);
  pmem::StorePersist(p, uint64_t{10});  // durable baseline
  pmem::Store(p, uint64_t{20});
  pmem::Store(p, uint64_t{30});
  CrashSim::SimulateCrash();
  EXPECT_EQ(*p, 10u);
}

TEST_F(CrashSimTest, InterleavedPersistKeepsNewest) {
  uint64_t* p = reinterpret_cast<uint64_t*>(buf_);
  pmem::StorePersist(p, uint64_t{10});
  pmem::Store(p, uint64_t{20});
  pmem::Persist(p, sizeof(*p));
  pmem::Store(p, uint64_t{30});
  CrashSim::SimulateCrash();
  EXPECT_EQ(*p, 20u);
}

TEST_F(CrashSimTest, LargeStoreSpanningLinesPartialRetirement) {
  // A 256-byte store spans 4 lines; persist only the first line; crash.
  // The first 64 bytes are durable, the rest revert.
  pmem::StoreBytes(buf_, std::string(256, 'x').data(), 256);
  pmem::Persist(buf_, 1);  // flushes exactly the first line
  CrashSim::SimulateCrash();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(buf_[i], 'x') << i;
  for (int i = 64; i < 256; ++i) EXPECT_EQ(buf_[i], 0) << i;
}

TEST_F(CrashSimTest, TearModeTearsAtWordBoundary) {
  CrashSim::SetTearMode(true);
  pmem::StoreBytes(buf_, std::string(64, 'y').data(), 64);
  CrashSim::SimulateCrash();
  // A durable prefix of whole 8-byte words survived; the tail reverted.
  // The prefix length is implementation-chosen but must be a multiple of 8
  // and less than 64.
  int flip = 0;
  while (flip < 64 && buf_[flip] == 'y') ++flip;
  EXPECT_EQ(flip % 8, 0);
  EXPECT_LT(flip, 64);
  for (int i = flip; i < 64; ++i) EXPECT_EQ(buf_[i], 0) << i;
  CrashSim::SetTearMode(false);
}

TEST_F(CrashSimTest, EightByteStoreNeverTorn) {
  CrashSim::SetTearMode(true);
  uint64_t* p = reinterpret_cast<uint64_t*>(buf_);
  pmem::Store(p, uint64_t{0xAABBCCDDEEFF0011ULL});
  CrashSim::SimulateCrash();
  EXPECT_EQ(*p, 0u) << "p-atomic store must revert entirely";
  CrashSim::SetTearMode(false);
}

TEST_F(CrashSimTest, StoreVolatileIsNotLogged) {
  uint64_t* p = reinterpret_cast<uint64_t*>(buf_);
  pmem::StoreVolatile(p, uint64_t{7});
  EXPECT_EQ(CrashSim::PendingRecords(), 0u);
  CrashSim::SimulateCrash();
  // Volatile stores are exempt: value remains whatever it was (7 here),
  // reflecting "this field's post-crash content is meaningless".
  EXPECT_EQ(*p, 7u);
}

TEST_F(CrashSimTest, CommitAllRetiresEverything) {
  uint64_t* p = reinterpret_cast<uint64_t*>(buf_);
  pmem::Store(p, uint64_t{5});
  CrashSim::CommitAll();
  CrashSim::SimulateCrash();
  EXPECT_EQ(*p, 5u);
}

TEST_F(CrashSimTest, CrashPointThrowsWhenArmed) {
  CrashSim::ArmCrashPoint("test.point");
  EXPECT_THROW(CrashSim::Point("test.point"), CrashException);
  // Disarmed after firing.
  CrashSim::Point("test.point");  // no throw
}

TEST_F(CrashSimTest, CrashPointCountdown) {
  CrashSim::ArmCrashPoint("test.count", 3);
  CrashSim::Point("test.count");
  CrashSim::Point("test.count");
  EXPECT_THROW(CrashSim::Point("test.count"), CrashException);
}

TEST_F(CrashSimTest, UnarmedPointIsNoop) {
  CrashSim::Point("never.armed");
}

TEST_F(CrashSimTest, RecordingEnumeratesVisitedPoints) {
  CrashSim::StartRecordingPoints();
  CrashSim::Point("a");
  CrashSim::Point("b");
  CrashSim::Point("a");
  auto visited = CrashSim::StopRecordingPoints();
  ASSERT_EQ(visited.size(), 3u);
  EXPECT_EQ(visited[0], "a");
  EXPECT_EQ(visited[1], "b");
  EXPECT_EQ(visited[2], "a");
}

TEST_F(CrashSimTest, MacroIsNoopWhenDisabled) {
  CrashSim::Disable();
  CrashSim::ArmCrashPoint("macro.point");  // armed but sim off
  SCM_CRASH_POINT("macro.point");          // must not throw
  CrashSim::Enable();
}

TEST_F(CrashSimTest, DisabledSimDoesNotLog) {
  CrashSim::Disable();
  uint64_t* p = reinterpret_cast<uint64_t*>(buf_);
  pmem::Store(p, uint64_t{9});
  EXPECT_EQ(CrashSim::PendingRecords(), 0u);
  CrashSim::Enable();
}

// --- Thread-coherent crash barrier (DESIGN.md §8) --------------------------

TEST_F(CrashSimTest, PendingRecordsAttributedPerThread) {
  uint64_t* a = reinterpret_cast<uint64_t*>(buf_);
  uint64_t* b = reinterpret_cast<uint64_t*>(buf_ + 128);
  pmem::Store(a, uint64_t{1});
  EXPECT_EQ(CrashSim::PendingRecordsForCurrentThread(), 1u);
  std::thread t([&] {
    pmem::Store(b, uint64_t{2});
    EXPECT_EQ(CrashSim::PendingRecordsForCurrentThread(), 1u);
  });
  t.join();
  EXPECT_EQ(CrashSim::PendingRecords(), 2u);
  EXPECT_EQ(CrashSim::PendingThreads(), 2u);
  // One newest-first pass reverts every thread's stores coherently.
  CrashSim::SimulateCrash();
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 0u);
}

TEST_F(CrashSimTest, RetirementSplitKeepsThreadAttribution) {
  std::thread t([&] {
    pmem::StoreBytes(buf_, std::string(256, 'x').data(), 256);
  });
  t.join();
  pmem::Persist(buf_, 1);  // retires only the first line; tail split off
  EXPECT_GE(CrashSim::PendingRecords(), 1u);
  EXPECT_EQ(CrashSim::PendingThreads(), 1u);
  EXPECT_EQ(CrashSim::PendingRecordsForCurrentThread(), 0u)
      << "split-off tail must keep the storing thread's attribution";
}

TEST_F(CrashSimTest, BarrierFreezesSiblingAtNextStore) {
  CrashSim::SetCrashBarrier(true);
  CrashSim::ArmCrashPoint("barrier.fire");
  uint64_t* a = reinterpret_cast<uint64_t*>(buf_);
  uint64_t* b = reinterpret_cast<uint64_t*>(buf_ + 128);
  pmem::StorePersist(a, uint64_t{1});  // durable pre-history
  std::atomic<bool> frozen{false};
  std::thread sibling([&] {
    while (!CrashSim::BarrierTripped()) std::this_thread::yield();
    try {
      pmem::Store(b, uint64_t{7});
    } catch (const CrashException& e) {
      EXPECT_STREQ(e.what(), CrashSim::kBarrierPoint);
      frozen = true;
    }
  });
  pmem::Store(a, uint64_t{2});  // in-cache at the crash instant
  EXPECT_THROW(CrashSim::Point("barrier.fire"), CrashException);
  sibling.join();
  EXPECT_TRUE(frozen.load());
  EXPECT_EQ(*b, 0u) << "a frozen store must never execute";
  CrashSim::SimulateCrash();
  EXPECT_EQ(*a, 1u) << "unpersisted store reverts to the durable value";
  EXPECT_FALSE(CrashSim::BarrierTripped());
  CrashSim::SetCrashBarrier(false);
}

TEST_F(CrashSimTest, BarrierFreezesSiblingAtPointAndPersist) {
  CrashSim::SetCrashBarrier(true);
  CrashSim::ArmCrashPoint("barrier.fire");
  uint64_t* p = reinterpret_cast<uint64_t*>(buf_);
  pmem::Store(p, uint64_t{5});
  EXPECT_THROW(CrashSim::Point("barrier.fire"), CrashException);
  std::thread sibling([&] {
    // An unarmed point freezes a sibling once the barrier has tripped...
    EXPECT_THROW(CrashSim::Point("never.armed"), CrashException);
    // ...and so does a flush (it could otherwise run on and acknowledge an
    // operation whose stores the crash reverts).
    EXPECT_THROW(pmem::Persist(p, sizeof(*p)), CrashException);
  });
  sibling.join();
  CrashSim::SimulateCrash();
  EXPECT_EQ(*p, 0u);
  CrashSim::SetCrashBarrier(false);
}

TEST_F(CrashSimTest, PersistAfterBarrierTripIsDeadLetter) {
  CrashSim::SetCrashBarrier(true);
  CrashSim::ArmCrashPoint("barrier.fire");
  uint64_t* p = reinterpret_cast<uint64_t*>(buf_);
  pmem::Store(p, uint64_t{5});
  EXPECT_THROW(CrashSim::Point("barrier.fire"), CrashException);
  // The crashing thread is exempt from re-throw (it is unwinding) but its
  // flush must not make anything durable after the power-loss instant.
  pmem::Persist(p, sizeof(*p));
  CrashSim::SimulateCrash();
  EXPECT_EQ(*p, 0u);
  CrashSim::SetCrashBarrier(false);
}

TEST_F(CrashSimTest, NoBarrierModeDoesNotFreeze) {
  CrashSim::ArmCrashPoint("plain.fire");
  EXPECT_THROW(CrashSim::Point("plain.fire"), CrashException);
  EXPECT_FALSE(CrashSim::BarrierTripped());
  pmem::Store(reinterpret_cast<uint64_t*>(buf_), uint64_t{3});  // no throw
}

}  // namespace
}  // namespace scm
}  // namespace fptree
