// Copyright (c) FPTree reproduction authors.
//
// A single-level prototype database (paper §6.4 "Database experiments"):
// a dictionary-encoded, columnar storage engine whose primary data lives in
// SCM and whose dictionary/lookup indexes are the trees under evaluation.
// Restart consists of sanity-checking the SCM-resident columns and
// rebuilding the DRAM-resident parts (inner nodes of the hybrid trees) —
// parallelized across tables, as the paper parallelizes recovery over
// 8 cores.

#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "index/kv_index.h"
#include "obs/metrics.h"
#include "scm/latency.h"
#include "scm/pmem.h"
#include "scm/pool.h"
#include "util/timer.h"

namespace fptree {
namespace apps {

/// \brief A fixed-width column persisted in SCM.
///
/// Values are appended at load time; reads charge the SCM latency model
/// (the paper observes DB throughput drops with SCM latency because "other
/// database data structures [are] placed in SCM").
class PColumn {
 public:
  PColumn(scm::Pool* pool, scm::VoidPPtr* anchor, uint64_t capacity)
      : pool_(pool), capacity_(capacity) {
    if (anchor->IsNull()) {
      Status s = pool->allocator()->Allocate(anchor, capacity * 8 + 8);
      assert(s.ok());
      (void)s;
      base_ = static_cast<uint64_t*>(anchor->get());
      scm::pmem::StorePersist(&base_[0], uint64_t{0});  // row count
    } else {
      base_ = static_cast<uint64_t*>(anchor->get());
    }
  }

  uint64_t size() const { return base_[0]; }

  void Append(uint64_t v) {
    uint64_t n = base_[0];
    assert(n < capacity_);
    scm::pmem::Store(&base_[1 + n], v);
    scm::pmem::Persist(&base_[1 + n]);
    scm::pmem::StorePersist(&base_[0], n + 1);
  }

  uint64_t Get(uint64_t row) const {
    scm::ReadScm(&base_[1 + row], 8);
    return base_[1 + row];
  }

  /// Recovery sanity walk: touches every value (contributes the SCM-bound
  /// portion of the restart time).
  uint64_t CheckSum() const {
    uint64_t n = size();
    uint64_t sum = 0;
    for (uint64_t i = 0; i < n; ++i) {
      scm::ReadScm(&base_[1 + i], 8);
      sum += base_[1 + i];
    }
    return sum;
  }

 private:
  scm::Pool* pool_;
  uint64_t capacity_;
  uint64_t* base_;
};

/// \brief The TATP subset schema the read-only queries touch.
///
/// Indexes (the trees under test) map encoded keys to row ids:
///   subscriber_idx:  s_id                          -> subscriber row
///   access_idx:      s_id * 4 + ai_type            -> access_info row
///   special_idx:     s_id * 4 + sf_type            -> special_facility row
///   forwarding_idx:  (s_id*4 + sf_type)*24 + start -> call_forwarding row
class MiniDb {
 public:
  struct Options {
    std::string index_kind = "fptree";  ///< index::MakeFixedIndex name
    uint64_t subscribers = 100000;
  };

  /// Anchor structure in the pool root.
  struct PAnchor {
    static constexpr uint64_t kMagic = 0xD1C7D8EE0001ULL;

    uint64_t magic;
    uint64_t subscribers;
    scm::VoidPPtr sub_bit;       // subscriber: bit_1
    scm::VoidPPtr sub_msc;       // subscriber: msc_location
    scm::VoidPPtr sub_vlr;       // subscriber: vlr_location
    scm::VoidPPtr ai_data;       // access_info: data1..4 packed
    scm::VoidPPtr ai_key;        // access_info: encoded key (primary data)
    scm::VoidPPtr sf_active;     // special_facility: is_active
    scm::VoidPPtr sf_key;        // special_facility: encoded key
    scm::VoidPPtr cf_number;     // call_forwarding: numberx (encoded)
    scm::VoidPPtr cf_end;        // call_forwarding: end_time
    scm::VoidPPtr cf_key;        // call_forwarding: encoded key
  };

  /// Opens (or creates) the database in `data_pool`; the index lives in
  /// `index_pool`. `loaded` reports whether data must be Load()ed.
  MiniDb(scm::Pool* data_pool, scm::Pool* index_pool, const Options& options,
         bool* needs_load)
      : options_(options), data_pool_(data_pool) {
    uint64_t t0 = NowNanos();
    bool fresh = data_pool->root().IsNull();
    if (fresh) {
      Status s = data_pool->allocator()->Allocate(&data_pool->header()->root,
                                                  sizeof(PAnchor));
      assert(s.ok());
      (void)s;
      anchor_ = static_cast<PAnchor*>(data_pool->root().get());
      PAnchor zero{};
      zero.magic = PAnchor::kMagic;
      zero.subscribers = options.subscribers;
      scm::pmem::StoreBytes(anchor_, &zero, sizeof(zero));
      scm::pmem::Persist(anchor_, sizeof(*anchor_));
    } else {
      anchor_ = static_cast<PAnchor*>(data_pool->root().get());
      assert(anchor_->magic == PAnchor::kMagic);
      options_.subscribers = anchor_->subscribers;
    }
    uint64_t n = options_.subscribers;
    sub_bit_ = std::make_unique<PColumn>(data_pool, &anchor_->sub_bit, n);
    sub_msc_ = std::make_unique<PColumn>(data_pool, &anchor_->sub_msc, n);
    sub_vlr_ = std::make_unique<PColumn>(data_pool, &anchor_->sub_vlr, n);
    ai_data_ =
        std::make_unique<PColumn>(data_pool, &anchor_->ai_data, n * 4);
    ai_key_ = std::make_unique<PColumn>(data_pool, &anchor_->ai_key, n * 4);
    sf_active_ =
        std::make_unique<PColumn>(data_pool, &anchor_->sf_active, n * 4);
    sf_key_ = std::make_unique<PColumn>(data_pool, &anchor_->sf_key, n * 4);
    cf_number_ =
        std::make_unique<PColumn>(data_pool, &anchor_->cf_number, n * 12);
    cf_end_ =
        std::make_unique<PColumn>(data_pool, &anchor_->cf_end, n * 12);
    cf_key_ = std::make_unique<PColumn>(data_pool, &anchor_->cf_key, n * 12);

    // The index tree attaches to its own pool (recovering if it exists).
    index_ = index::MakeFixedIndex(options_.index_kind, index_pool,
                                   /*locked=*/true);
    assert(index_ != nullptr);

    // A transient index (or one whose pool was lost) is rebuilt from the
    // SCM-resident primary data — the "full rebuild" the paper's restart
    // experiment charges the STXTree with (Fig. 12b).
    if (!fresh && index_->Size() == 0 && sub_bit_->size() > 0) {
      RebuildIndexFromColumns();
    }

    *needs_load = fresh;
    restart_nanos_ = NowNanos() - t0;
  }

  /// Re-derives every index entry from the key columns. Upsert makes the
  /// rebuild idempotent: re-running over a partially rebuilt index (e.g.
  /// after an interrupted restart) converges instead of silently dropping
  /// rows whose keys already exist.
  void RebuildIndexFromColumns() {
    for (uint64_t r = 0; r < sub_bit_->size(); ++r) {
      index_->Upsert(r, r);  // subscriber s_id == row id by construction
    }
    for (uint64_t r = 0; r < ai_key_->size(); ++r) {
      index_->Upsert(kAccessBase + ai_key_->Get(r), r);
    }
    for (uint64_t r = 0; r < sf_key_->size(); ++r) {
      index_->Upsert(kSpecialBase + sf_key_->Get(r), r);
    }
    for (uint64_t r = 0; r < cf_key_->size(); ++r) {
      index_->Upsert(kForwardBase + cf_key_->Get(r), r);
    }
  }

  /// Restart-time sanity walk over the SCM columns (run in parallel by the
  /// restart benchmark); returns a checksum.
  uint64_t SanityCheckColumns() {
    return sub_bit_->CheckSum() + sub_msc_->CheckSum() +
           sub_vlr_->CheckSum() + ai_data_->CheckSum() +
           ai_key_->CheckSum() + sf_active_->CheckSum() +
           sf_key_->CheckSum() + cf_number_->CheckSum() +
           cf_end_->CheckSum() + cf_key_->CheckSum();
  }

  index::KVIndex* index() { return index_.get(); }
  uint64_t subscribers() const { return options_.subscribers; }
  uint64_t restart_nanos() const { return restart_nanos_; }

  /// Database-level metrics snapshot: index telemetry plus restart cost.
  obs::Snapshot Metrics() const {
    obs::Snapshot snap = index_->Stats();
    snap.gauges["db.subscribers"] = options_.subscribers;
    snap.gauges["db.restart_nanos"] = restart_nanos_;
    return snap;
  }

  std::string MetricsJson() const { return Metrics().ToJson("minidb"); }

  // --- Load (warm-up; sequential Subscriber ids — the highly skewed
  // insertion pattern §6.4 describes) -------------------------------------

  void Load();

  // --- TATP read-only queries ---------------------------------------------

  struct SubscriberRow {
    uint64_t bit_1;
    uint64_t msc_location;
    uint64_t vlr_location;
  };

  /// GET_SUBSCRIBER_DATA.
  bool GetSubscriberData(uint64_t s_id, SubscriberRow* row) {
    uint64_t rowid;
    if (!index_->Find(s_id, &rowid)) return false;
    row->bit_1 = sub_bit_->Get(rowid);
    row->msc_location = sub_msc_->Get(rowid);
    row->vlr_location = sub_vlr_->Get(rowid);
    return true;
  }

  /// GET_ACCESS_DATA.
  bool GetAccessData(uint64_t s_id, uint64_t ai_type, uint64_t* data) {
    uint64_t rowid;
    if (!index_->Find(kAccessBase + s_id * 4 + ai_type, &rowid)) return false;
    *data = ai_data_->Get(rowid);
    return true;
  }

  /// GET_NEW_DESTINATION.
  bool GetNewDestination(uint64_t s_id, uint64_t sf_type, uint64_t start,
                         uint64_t end, uint64_t* number) {
    uint64_t sf_row;
    if (!index_->Find(kSpecialBase + s_id * 4 + sf_type, &sf_row)) {
      return false;
    }
    if (sf_active_->Get(sf_row) == 0) return false;
    // Call-forwarding rows keyed by start_time in {0, 8, 16}.
    for (uint64_t st = 0; st <= start; st += 8) {
      uint64_t cf_row;
      if (!index_->Find(kForwardBase + (s_id * 4 + sf_type) * 24 + st,
                        &cf_row)) {
        continue;
      }
      if (st <= start && cf_end_->Get(cf_row) > end) {
        *number = cf_number_->Get(cf_row);
        return true;
      }
    }
    return false;
  }

  static constexpr uint64_t kAccessBase = 1ULL << 40;
  static constexpr uint64_t kSpecialBase = 2ULL << 40;
  static constexpr uint64_t kForwardBase = 4ULL << 40;

 private:
  Options options_;
  scm::Pool* data_pool_;
  PAnchor* anchor_ = nullptr;
  std::unique_ptr<PColumn> sub_bit_, sub_msc_, sub_vlr_;
  std::unique_ptr<PColumn> ai_data_, ai_key_;
  std::unique_ptr<PColumn> sf_active_, sf_key_;
  std::unique_ptr<PColumn> cf_number_, cf_end_, cf_key_;
  std::unique_ptr<index::KVIndex> index_;
  uint64_t restart_nanos_ = 0;
};

}  // namespace apps
}  // namespace fptree
