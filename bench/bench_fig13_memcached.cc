// Figure 13: memcached-like cache throughput for SET and GET request
// streams (mc-benchmark analog: N SETs then N GETs from many client
// threads), with the internal hash table replaced by each tree, at two SCM
// latencies (85/145 ns — the paper's local/remote-socket emulation). The
// shared-link throttle reproduces the "network-bound" ceiling: concurrent
// indexes saturate it, single-threaded trees bottleneck below it.

#include <cstdio>
#include <thread>

#include "apps/kvcache/kvcache.h"
#include "bench_common.h"
#include "util/threading.h"

namespace fptree {
namespace bench {
namespace {

struct CacheRun {
  double set_kops = 0;
  double get_kops = 0;
  double mget_kops = 0;  // key-ops/s through multi-key GET
};

CacheRun RunCache(const std::string& kind, uint64_t n_keys,
                  uint32_t clients, uint64_t network_ns,
                  uint64_t metrics_every, uint32_t mget_batch) {
  ScopedPool pool(size_t{4} << 30);
  auto idx = index::MakeVarIndex(kind, pool.get(), /*locked=*/true);
  if (idx == nullptr) return {};
  apps::KVCache::Options options;
  options.network_ns_per_request = network_ns;
  options.metrics_dump_every = metrics_every;
  apps::KVCache cache(std::move(idx), options);

  CacheRun out;
  uint64_t per_client = n_keys / clients;
  {
    SpinBarrier barrier(clients + 1);
    ThreadGroup tg;
    tg.Spawn(clients, [&](uint32_t id) {
      barrier.Wait();
      for (uint64_t i = 0; i < per_client; ++i) {
        cache.Set(MakeVarKey(id * per_client + i), i);
      }
      barrier.Wait();
    });
    barrier.Wait();
    Stopwatch sw;
    barrier.Wait();
    out.set_kops =
        static_cast<double>(per_client * clients) / sw.ElapsedSeconds() / 1e3;
    tg.Join();
  }
  {
    SpinBarrier barrier(clients + 1);
    ThreadGroup tg;
    tg.Spawn(clients, [&](uint32_t id) {
      Random64 rng(id);
      barrier.Wait();
      for (uint64_t i = 0; i < per_client; ++i) {
        uint64_t v;
        cache.Get(MakeVarKey(rng.Uniform(n_keys)), &v);
      }
      barrier.Wait();
    });
    barrier.Wait();
    Stopwatch sw;
    barrier.Wait();
    out.get_kops =
        static_cast<double>(per_client * clients) / sw.ElapsedSeconds() / 1e3;
    tg.Join();
  }
  {
    // memcached multi-key GET ("get k1 k2 ..."): one throttled request per
    // batch of mget_batch keys, served through the index's batch path —
    // the wire cost amortizes and the batch descents interleave.
    SpinBarrier barrier(clients + 1);
    ThreadGroup tg;
    uint64_t rounds = per_client / mget_batch;
    if (rounds == 0) rounds = 1;
    tg.Spawn(clients, [&](uint32_t id) {
      Random64 rng(1000 + id);
      std::vector<std::string> kbuf(mget_batch);
      std::vector<std::string_view> keys(mget_batch);
      std::vector<uint64_t> vals(mget_batch);
      std::vector<uint8_t> found(mget_batch);
      barrier.Wait();
      for (uint64_t r = 0; r < rounds; ++r) {
        for (uint32_t j = 0; j < mget_batch; ++j) {
          kbuf[j] = MakeVarKey(rng.Uniform(n_keys));
          keys[j] = kbuf[j];
        }
        cache.MultiGet(keys.data(), mget_batch, vals.data(), found.data());
      }
      barrier.Wait();
    });
    barrier.Wait();
    Stopwatch sw;
    barrier.Wait();
    out.mget_kops = static_cast<double>(rounds * mget_batch * clients) /
                    sw.ElapsedSeconds() / 1e3;
    tg.Join();
  }
  // Post-run structural audit: bumps tree.invariant_checks (and
  // .invariant_failures on a violation) so the counters land in
  // METRICS_JSON alongside the throughput numbers.
  std::string why;
  if (!cache.index()->CheckInvariants(&why)) {
    std::fprintf(stderr, "invariant violation after %s run: %s\n",
                 kind.c_str(), why.c_str());
  }
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace fptree

int main(int argc, char** argv) {
  using namespace fptree;
  using namespace fptree::bench;
  Flags flags = Flags::Parse(argc, argv);
  scm::LatencyModel::Calibrate();

  uint64_t n = flags.quick ? 100000 : flags.keys;
  uint32_t clients =
      flags.threads != 0
          ? flags.threads
          : std::min(16u, std::max(4u, std::thread::hardware_concurrency()));
  // Shared-link cost: the paper's 940 Mbit/s with ~small requests caps the
  // server around 10^5-level request rates; 5 µs/request models that.
  uint64_t network_ns = 5000;

  // Multi-key GET fan: --batch when given, else memcached's typical ~16.
  uint32_t mget_batch = flags.batch > 1 ? flags.batch : 16;

  PrintHeader("Figure 13: memcached-like cache, SET/GET throughput (Kops)");
  std::printf(
      "%llu keys, %u clients, %llu ns/request network model, mget batch %u\n",
      static_cast<unsigned long long>(n), clients,
      static_cast<unsigned long long>(network_ns), mget_batch);
  std::printf("%8s %-14s %12s %12s %12s\n", "lat(ns)", "index", "SET Kops",
              "GET Kops", "MGET Kops");

  std::vector<std::string> kinds = flags.VarTrees(
      {"fptree-c-var", "fptree-var", "ptree-var", "stx-var", "hashmap"});
  for (uint64_t lat : {uint64_t{85}, uint64_t{145}}) {
    for (const std::string& kind : kinds) {
      scm::LatencyModel::Config().dram_ns = 85;
      scm::LatencyModel::SetScmLatency(lat);
      CacheRun r = RunCache(kind, n, clients, network_ns,
                            flags.metrics_every, mget_batch);
      scm::LatencyModel::Disable();
      std::printf("%8llu %-14s %12.1f %12.1f %12.1f\n",
                  static_cast<unsigned long long>(lat), kind.c_str(),
                  r.set_kops, r.get_kops, r.mget_kops);
    }
    std::printf("\n");
  }
  std::printf(
      "Paper shape: the concurrent FPTree (and vanilla hash map) saturate "
      "the network at both\nlatencies (<2%% overhead); single-threaded "
      "trees fall short on SETs, and further at 145 ns.\n");
  EmitMetricsJson("fig13_memcached");
  return 0;
}
