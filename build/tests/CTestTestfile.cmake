# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/scm_pool_test[1]_include.cmake")
include("/root/repo/build/tests/scm_alloc_test[1]_include.cmake")
include("/root/repo/build/tests/scm_crash_test[1]_include.cmake")
include("/root/repo/build/tests/scm_latency_test[1]_include.cmake")
include("/root/repo/build/tests/htm_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/inner_index_test[1]_include.cmake")
include("/root/repo/build/tests/fptree_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/fptree_concurrent_test[1]_include.cmake")
include("/root/repo/build/tests/fptree_var_test[1]_include.cmake")
include("/root/repo/build/tests/crash_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/kv_index_test[1]_include.cmake")
