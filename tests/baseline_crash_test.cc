// Targeted crash-window coverage for the persistent baselines (wB+-Tree
// slot-array commits, NV-Tree append-only leaf commits): a recording pass
// enumerates every crash point the workload visits, then one run per window
// arms exactly that point, crashes there, recovers, and asserts the
// universal invariants plus a full model differential. This complements the
// randomized fuzz suites with deterministic one-window-at-a-time coverage.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/nvtree.h"
#include "baselines/wbtree.h"
#include "crash_test_util.h"
#include "scm/crash.h"
#include "scm/latency.h"
#include "util/random.h"

namespace fptree {
namespace baselines {
namespace {

using scm::CrashException;
using scm::CrashSim;
using scm::Pool;
using testutil::TestPath;

// Small fan-outs so a few hundred keys drive multi-level splits (root
// splits, inner splits, leaf replacement) and thus visit every window.
using SmallWBTree = WBTree<uint64_t, 8, 4>;
using SmallNVTree = NVTree<uint64_t, 8, 4, 8>;

constexpr int kSteps = 600;
constexpr uint64_t kKeyRange = 240;

// One deterministic model-aware op draw: insert when the key is absent,
// else update or erase. The op stream is a function of the rng state and
// the model, so the recording pass and each armed pass agree up to the
// crash.
struct Step {
  uint64_t key;
  int op;  // 0=insert 1=update 2=erase
  bool had_old;
  uint64_t old_val;
  uint64_t new_val;
};

Step DrawStep(const std::map<uint64_t, uint64_t>& model, Random64* rng,
              int step) {
  Step s{};
  s.key = rng->Uniform(kKeyRange);
  auto it = model.find(s.key);
  s.had_old = it != model.end();
  if (s.had_old) s.old_val = it->second;
  s.op = s.had_old ? (rng->Uniform(2) ? 1 : 2) : 0;
  s.new_val = static_cast<uint64_t>(step);
  return s;
}

template <typename TreeT>
void ApplyStep(TreeT* tree, const Step& s) {
  switch (s.op) {
    case 0:
      tree->Insert(s.key, s.new_val);
      break;
    case 1:
      tree->Update(s.key, s.new_val);
      break;
    default:
      tree->Erase(s.key);
      break;
  }
}

void ApplyToModel(std::map<uint64_t, uint64_t>* model, const Step& s) {
  if (s.op == 2) {
    model->erase(s.key);
  } else {
    (*model)[s.key] = s.new_val;
  }
}

// Pass 1: enumerate every crash window the workload visits, in first-visit
// order.
template <typename TreeT>
std::vector<std::string> RecordPoints(const std::string& path) {
  Pool::Destroy(path).ok();
  Pool::Options opts{.size = 256u << 20, .randomize_base = true};
  std::unique_ptr<Pool> pool;
  EXPECT_TRUE(Pool::Create(path, 1, opts, &pool).ok());
  auto tree = std::make_unique<TreeT>(pool.get());
  CrashSim::Enable();
  CrashSim::StartRecordingPoints();
  std::map<uint64_t, uint64_t> model;
  Random64 rng(424242);
  for (int step = 0; step < kSteps; ++step) {
    Step s = DrawStep(model, &rng, step);
    ApplyStep(tree.get(), s);
    ApplyToModel(&model, s);
  }
  std::vector<std::string> visited = CrashSim::StopRecordingPoints();
  CrashSim::Disable();
  tree.reset();
  pool.reset();
  Pool::Destroy(path).ok();

  std::vector<std::string> unique;
  for (auto& p : visited) {
    if (std::find(unique.begin(), unique.end(), p) == unique.end()) {
      unique.push_back(p);
    }
  }
  return unique;
}

// Pass 2: arm `point` once, replay the workload until the crash fires,
// recover, and require (a) the invariant checker passes, (b) the
// interrupted op applied atomically (old state xor new state), (c) every
// other key's value survived verbatim, and (d) the rest of the workload and
// the final differential complete cleanly.
template <typename TreeT>
void CrashAtPoint(const std::string& path, const std::string& point) {
  SCOPED_TRACE("point=" + point);
  Pool::Destroy(path).ok();
  Pool::Options opts{.size = 256u << 20, .randomize_base = true};
  std::unique_ptr<Pool> pool;
  ASSERT_TRUE(Pool::Create(path, 1, opts, &pool).ok());
  auto tree = std::make_unique<TreeT>(pool.get());
  CrashSim::Enable();
  CrashSim::ArmCrashPoint(point, 1);

  std::map<uint64_t, uint64_t> model;
  Random64 rng(424242);
  bool crashed = false;
  const char* dbg_env = std::getenv("FPTREE_CRASH_DEBUG");
  for (int step = 0; step < kSteps; ++step) {
    Step s = DrawStep(model, &rng, step);
    if (dbg_env != nullptr && step == std::atoi(dbg_env)) {
      if constexpr (requires { tree->DebugDump(); }) tree->DebugDump();
    }
    try {
      ApplyStep(tree.get(), s);
      ApplyToModel(&model, s);
    } catch (const CrashException& e) {
      ASSERT_FALSE(crashed) << "armed point fired twice";
      crashed = true;
      CrashSim::SimulateCrash();
      tree.reset();
      pool.reset();
      ASSERT_TRUE(Pool::Open(path, 1, opts, &pool).ok());
      tree = std::make_unique<TreeT>(pool.get());
      std::string why;
      ASSERT_TRUE(tree->CheckInvariants(&why))
          << "after crash at " << e.what() << ": " << why;
      // The interrupted op must have applied atomically.
      uint64_t got = 0;
      bool found = tree->Find(s.key, &got);
      bool atomic = false;
      switch (s.op) {
        case 0:
          atomic = !found || got == s.new_val;
          break;
        case 1:
          atomic = found && (got == s.old_val || got == s.new_val);
          break;
        default:
          atomic = !found || got == s.old_val;
          break;
      }
      ASSERT_TRUE(atomic) << "op " << s.op << " on key " << s.key
                          << " applied non-atomically (found=" << found
                          << " got=" << got << ")";
      if (found) {
        model[s.key] = got;
      } else {
        model.erase(s.key);
      }
      // Every other key survived verbatim; no phantoms appeared.
      for (const auto& [k, v] : model) {
        if (k == s.key) continue;
        uint64_t cur = 0;
        ASSERT_TRUE(tree->Find(k, &cur)) << "key " << k << " lost";
        ASSERT_EQ(cur, v) << "key " << k << " value lost";
      }
      ASSERT_EQ(tree->Size(), model.size());
    }
    if (crashed && dbg_env != nullptr) {
      std::string w;
      if (!tree->CheckInvariants(&w)) {
        if constexpr (requires { tree->DebugDump(); }) tree->DebugDump();
        FAIL() << "step " << step << " op " << s.op << " key " << s.key
               << ": " << w;
      }
    }
  }
  EXPECT_TRUE(crashed) << "recorded point was never reached on replay";

  std::string why;
  if (!tree->CheckInvariants(&why)) {
    if constexpr (requires { tree->DebugDump(); }) tree->DebugDump();
    FAIL() << why;
  }
  ASSERT_EQ(tree->Size(), model.size());
  for (const auto& [k, val] : model) {
    uint64_t v = 0;
    ASSERT_TRUE(tree->Find(k, &v)) << k;
    EXPECT_EQ(v, val) << k;
  }

  CrashSim::Disable();
  tree.reset();
  pool.reset();
  Pool::Destroy(path).ok();
}

template <typename TreeT>
void RunAllWindows(const std::string& tag) {
  scm::LatencyModel::Disable();
  std::string path = TestPath(tag);
  std::vector<std::string> points = RecordPoints<TreeT>(path);
  ASSERT_FALSE(points.empty()) << "workload visited no crash windows";
  for (const std::string& p : points) {
    CrashAtPoint<TreeT>(path, p);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(BaselineCrashTest, WBTreeEveryRecordedWindow) {
  RunAllWindows<SmallWBTree>("wbt_crash");
}

TEST(BaselineCrashTest, NVTreeEveryRecordedWindow) {
  RunAllWindows<SmallNVTree>("nvt_crash");
}

}  // namespace
}  // namespace baselines
}  // namespace fptree
