# Empty compiler generated dependencies file for fptree_htm.
# This may be replaced when dependencies are built.
