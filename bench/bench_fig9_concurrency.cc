// Figures 9, 10, 11: concurrency scaling of the FPTreeC (and FPTreeCVar)
// under Find / Insert / Update / Delete / Mixed(50/50) workloads, plus the
// concurrent NV-Tree. Prints throughput (Mops/s) and speedup over one
// thread per thread count.
//
//   default         = Fig. 9 (single "socket": up to hardware concurrency)
//   --threads=N     = fixed width
//   --latency=145   = Fig. 11 (higher SCM latency)
// Fig. 10's two-socket sweep maps onto whatever width this machine offers.

#include <atomic>
#include <cstdio>
#include <thread>

#include "baselines/nvtree.h"
#include "bench_common.h"
#include "core/fptree_concurrent.h"
#include "core/fptree_concurrent_var.h"
#include "util/threading.h"

namespace fptree {
namespace bench {
namespace {

enum class Op { kFind, kInsert, kUpdate, kDelete, kMixed };
const char* OpName(Op op) {
  switch (op) {
    case Op::kFind:
      return "Find";
    case Op::kInsert:
      return "Insert";
    case Op::kUpdate:
      return "Update";
    case Op::kDelete:
      return "Delete";
    case Op::kMixed:
      return "Mixed";
  }
  return "?";
}

// Runs `total_ops` of `op` over `threads` workers against a tree warmed
// with `warm` keys [0, warm). Returns Mops/s.
template <typename TreeT, typename KeyFn>
double RunWorkload(TreeT* tree, Op op, uint64_t warm, uint64_t total_ops,
                   uint32_t threads, KeyFn key_fn) {
  SpinBarrier barrier(threads + 1);
  ThreadGroup tg;
  uint64_t per_thread = total_ops / threads;
  tg.Spawn(threads, [&](uint32_t id) {
    Random64 rng(id * 77 + 1);
    barrier.Wait();
    for (uint64_t i = 0; i < per_thread; ++i) {
      uint64_t v;
      switch (op) {
        case Op::kFind:
          tree->Find(key_fn(rng.Uniform(warm)), &v);
          break;
        case Op::kInsert:
          tree->Insert(key_fn(warm + id * per_thread + i), i);
          break;
        case Op::kUpdate:
          tree->Update(key_fn(rng.Uniform(warm)), i);
          break;
        case Op::kDelete:
          // Each thread deletes its own shard of the warm range.
          tree->Erase(key_fn(id * (warm / threads) + i % (warm / threads)));
          break;
        case Op::kMixed:
          if (rng.Bernoulli(0.5)) {
            tree->Find(key_fn(rng.Uniform(warm)), &v);
          } else {
            tree->Insert(key_fn(warm + id * per_thread + i), i);
          }
          break;
      }
    }
    barrier.Wait();
  });
  barrier.Wait();
  Stopwatch sw;
  barrier.Wait();
  double secs = sw.ElapsedSeconds();
  tg.Join();
  return static_cast<double>(per_thread * threads) / secs / 1e6;
}

template <typename TreeT, typename KeyFn>
void Sweep(const char* name, const std::vector<uint32_t>& widths,
           uint64_t warm, uint64_t ops, KeyFn key_fn) {
  std::printf("\n-- %s --\n%8s", name, "threads");
  for (Op op : {Op::kFind, Op::kInsert, Op::kUpdate, Op::kDelete, Op::kMixed})
    std::printf(" %9s", OpName(op));
  std::printf("   [Mops/s, speedup vs 1 thread in ()]\n");
  double base[5] = {0, 0, 0, 0, 0};
  for (uint32_t w : widths) {
    std::printf("%8u", w);
    int oi = 0;
    for (Op op :
         {Op::kFind, Op::kInsert, Op::kUpdate, Op::kDelete, Op::kMixed}) {
      ScopedPool pool(size_t{4} << 30);
      TreeT tree(pool.get());
      for (uint64_t k = 0; k < warm; ++k) tree.Insert(key_fn(k), k);
      double mops = RunWorkload(&tree, op, warm, ops, w, key_fn);
      if (base[oi] == 0) base[oi] = mops;
      std::printf(" %6.2f(%4.1f)", mops, mops / base[oi]);
      ++oi;
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace fptree

int main(int argc, char** argv) {
  using namespace fptree;
  using namespace fptree::bench;
  Flags flags = Flags::Parse(argc, argv);
  scm::LatencyModel::Calibrate();
  uint64_t lat = flags.latency != 0 ? flags.latency : 90;
  SetLatency(lat);

  uint32_t hw = std::thread::hardware_concurrency();
  std::vector<uint32_t> widths;
  if (flags.threads != 0) {
    widths = {flags.threads};
  } else if (hw <= 2) {
    // Single/dual-core container: real scaling cannot manifest; sweep
    // over-subscribed widths to show throughput *stability* (the paper's
    // 45-88-thread observation). See EXPERIMENTS.md.
    widths = {1, 2, 4};
  } else {
    for (uint32_t w = 1; w <= hw; w *= 2) widths.push_back(w);
    if (widths.back() != hw) widths.push_back(hw);
  }

  uint64_t warm = flags.quick ? 100000 : flags.keys;
  uint64_t ops = flags.quick ? 100000 : flags.ops;

  PrintHeader("Figures 9/10/11: concurrent scaling");
  std::printf("SCM latency %llu ns, warmup %llu keys, %llu ops/point, "
              "hw threads %u\n",
              static_cast<unsigned long long>(lat),
              static_cast<unsigned long long>(warm),
              static_cast<unsigned long long>(ops), hw);

  Sweep<core::ConcurrentFPTree<>>("FPTreeC (fixed keys)", widths, warm, ops,
                                  [](uint64_t k) { return k; });
  Sweep<baselines::ConcurrentNVTree<>>("NV-TreeC (fixed keys)", widths, warm,
                                       ops, [](uint64_t k) { return k; });
  Sweep<core::ConcurrentFPTreeVar<>>("FPTreeCVar (16-byte string keys)",
                                     widths, warm / 2, ops / 2,
                                     [](uint64_t k) { return MakeVarKey(k); });

  std::printf(
      "\nPaper shape: FPTreeC scales near-linearly to physical cores "
      "(18.3x at 22 threads in the\npaper) for every op; NV-TreeC scales "
      "noticeably worse on writes (global rebuild latch).\n");
  EmitMetricsJson("fig9_concurrency");
  return 0;
}
