#include "scm/alloc.h"

#include <cassert>
#include <cstring>

#include "fault/fault.h"
#include "scm/crash.h"
#include "scm/pmem.h"
#include "scm/pool.h"
#include "scm/stats.h"

namespace fptree {
namespace scm {

namespace {
constexpr uint64_t kMetaOffset = sizeof(PoolHeader);
constexpr uint64_t kHeapBegin =
    RoundUpToCacheLine(kMetaOffset + sizeof(AllocMeta));
}  // namespace

PAllocator::PAllocator(Pool* pool) : pool_(pool) {}

AllocMeta* PAllocator::meta() const {
  return reinterpret_cast<AllocMeta*>(pool_->base() + kMetaOffset);
}

BlockHeader* PAllocator::HeaderAt(uint64_t offset) const {
  return reinterpret_cast<BlockHeader*>(pool_->base() + offset);
}

void PAllocator::Initialize() {
  AllocMeta* m = meta();
  AllocMeta fresh{};
  fresh.magic = AllocMeta::kMagic;
  fresh.heap_begin = kHeapBegin;
  fresh.heap_top = kHeapBegin;
  fresh.log.state = AllocLog::kIdle;
  pmem::StoreBytes(m, &fresh, sizeof(fresh));
  pmem::Persist(m, sizeof(*m));
}

Status PAllocator::Recover() {
  AllocMeta* m = meta();
  if (m->magic != AllocMeta::kMagic) {
    return Status::Corruption("allocator metadata magic mismatch");
  }
  AllocLog* log = &m->log;
  if (log->state == AllocLog::kAllocating) {
    uint64_t block = log->block_offset;
    if (block != 0) {
      // A block was chosen. Inspect the caller's pptr to learn whether the
      // allocation was delivered (the paper's leak-prevention contract).
      Pool* tp = Pool::FindById(log->target_pool);
      VoidPPtr* target =
          tp == nullptr
              ? nullptr
              : reinterpret_cast<VoidPPtr*>(tp->base() + log->target_offset);
      bool delivered = target != nullptr && target->pool_id == pool_->id() &&
                       target->offset == block;
      BlockHeader* hdr = HeaderAt(block - sizeof(BlockHeader));
      if (delivered) {
        // Complete idempotently: header allocated, frontier advanced.
        pmem::StorePersist(&hdr->size_state,
                           BlockHeader::Pack(log->request_size, true));
        uint64_t end = block + log->request_size;
        if (m->heap_top < end) {
          pmem::StorePersist(&m->heap_top, end);
        }
      } else {
        // Roll back: if the block is inside the visible heap, mark it free;
        // if it was a frontier block whose top-bump never persisted, the
        // area beyond heap_top is free by definition.
        uint64_t end = block + log->request_size;
        if (end <= m->heap_top) {
          pmem::StorePersist(&hdr->size_state,
                             BlockHeader::Pack(log->request_size, false));
        }
      }
    }
    pmem::StorePersist(&log->state, uint64_t{AllocLog::kIdle});
  } else if (log->state == AllocLog::kDeallocating) {
    uint64_t block = log->block_offset;
    Pool* tp = Pool::FindById(log->target_pool);
    VoidPPtr* target =
        tp == nullptr
            ? nullptr
            : reinterpret_cast<VoidPPtr*>(tp->base() + log->target_offset);
    if (target != nullptr && target->pool_id == pool_->id() &&
        target->offset == block) {
      // Crash before the caller's pptr was nulled: redo from that step.
      pmem::StorePPtrPersist(target, VoidPPtr::Null());
    }
    BlockHeader* hdr = HeaderAt(block - sizeof(BlockHeader));
    pmem::StorePersist(&hdr->size_state,
                       BlockHeader::Pack(hdr->payload_size(), false));
    pmem::StorePersist(&log->state, uint64_t{AllocLog::kIdle});
  }
  RebuildFreeLists();
  return Status::OK();
}

void PAllocator::RebuildFreeLists() {
  std::lock_guard<std::mutex> l(mu_);
  free_lists_.clear();
  allocated_blocks_ = 0;
  allocated_payload_ = 0;
  AllocMeta* m = meta();
  uint64_t off = m->heap_begin;
  while (off + sizeof(BlockHeader) <= m->heap_top) {
    BlockHeader* hdr = HeaderAt(off);
    uint64_t payload = hdr->payload_size();
    if (payload == 0 || off + sizeof(BlockHeader) + payload > m->heap_top) {
      break;  // frontier block whose top-bump didn't persist; end of heap
    }
    if (hdr->allocated()) {
      ++allocated_blocks_;
      allocated_payload_ += payload;
    } else {
      free_lists_[payload].push_back(off + sizeof(BlockHeader));
    }
    off += sizeof(BlockHeader) + payload;
  }
}

uint64_t PAllocator::AcquireBlock(uint64_t payload_size) {
  AllocMeta* m = meta();
  AllocLog* log = &m->log;
  auto it = free_lists_.find(payload_size);
  if (it != free_lists_.end() && !it->second.empty()) {
    uint64_t payload_off = it->second.back();
    it->second.pop_back();
    pmem::StorePersist(&log->block_offset, payload_off);
    SCM_CRASH_POINT("palloc.alloc.block_chosen");
    BlockHeader* hdr = HeaderAt(payload_off - sizeof(BlockHeader));
    pmem::StorePersist(&hdr->size_state,
                       BlockHeader::Pack(payload_size, true));
    SCM_CRASH_POINT("palloc.alloc.header_marked");
    return payload_off;
  }
  // Bump allocation from the frontier.
  uint64_t block_off = m->heap_top;
  uint64_t payload_off = block_off + sizeof(BlockHeader);
  uint64_t end = payload_off + payload_size;
  if (end > pool_->size()) {
    return 0;  // exhausted
  }
  pmem::StorePersist(&log->block_offset, payload_off);
  SCM_CRASH_POINT("palloc.alloc.block_chosen");
  BlockHeader* hdr = HeaderAt(block_off);
  pmem::StorePersist(&hdr->size_state, BlockHeader::Pack(payload_size, true));
  SCM_CRASH_POINT("palloc.alloc.header_marked");
  pmem::StorePersist(&m->heap_top, end);
  SCM_CRASH_POINT("palloc.alloc.top_bumped");
  return payload_off;
}

void PAllocator::ReleaseBlock(uint64_t payload_offset) {
  BlockHeader* hdr = HeaderAt(payload_offset - sizeof(BlockHeader));
  uint64_t payload = hdr->payload_size();
  pmem::StorePersist(&hdr->size_state, BlockHeader::Pack(payload, false));
  free_lists_[payload].push_back(payload_offset);
}

Status PAllocator::Allocate(VoidPPtr* target, size_t size) {
  if (size == 0) return Status::InvalidArgument("zero-size allocation");
  Pool* tp = Pool::FindByAddress(target);
  if (tp == nullptr) {
    return Status::InvalidArgument(
        "allocation target pptr must reside in SCM (paper §2: it must belong "
        "to the calling persistent data structure)");
  }
  uint64_t payload_size = RoundUpToCacheLine(size);

  // Injected out-of-space (DESIGN.md §12): indistinguishable from genuine
  // exhaustion to the caller, and fired before any log arming or frontier
  // movement so the allocator state is untouched.
  if (FPTREE_FAULT_POINT("scm.alloc.oom")) {
    return Status::ResourceExhausted("pool " + pool_->path() +
                                     " exhausted (injected scm.alloc.oom)");
  }

  std::lock_guard<std::mutex> l(mu_);
  AllocMeta* m = meta();
  AllocLog* log = &m->log;
  assert(log->state == AllocLog::kIdle);

  pmem::Store(&log->target_pool, tp->id());
  pmem::Store(&log->target_offset,
              static_cast<uint64_t>(reinterpret_cast<const char*>(target) -
                                    tp->base()));
  pmem::Store(&log->block_offset, uint64_t{0});
  pmem::Store(&log->request_size, payload_size);
  pmem::Store(&log->state, uint64_t{AllocLog::kAllocating});
  pmem::Persist(log, sizeof(*log));
  SCM_CRASH_POINT("palloc.alloc.logged");

  uint64_t payload_off = AcquireBlock(payload_size);
  if (payload_off == 0) {
    pmem::StorePersist(&log->state, uint64_t{AllocLog::kIdle});
    return Status::ResourceExhausted("pool " + pool_->path() + " exhausted");
  }

  // Deliver: persistently publish the block into the caller's pptr before
  // declaring the allocation complete.
  pmem::StorePPtrPersist(target, VoidPPtr{pool_->id(), payload_off});
  SCM_CRASH_POINT("palloc.alloc.delivered");

  pmem::StorePersist(&log->state, uint64_t{AllocLog::kIdle});

  ++allocated_blocks_;
  allocated_payload_ += payload_size;
  ++ThreadStats().allocations;
  return Status::OK();
}

Status PAllocator::Deallocate(VoidPPtr* target) {
  VoidPPtr value = *target;
  if (value.IsNull()) return Status::OK();
  if (value.pool_id != pool_->id()) {
    return Status::InvalidArgument("pptr does not belong to this pool");
  }
  Pool* tp = Pool::FindByAddress(target);
  if (tp == nullptr) {
    return Status::InvalidArgument("deallocation target pptr must be in SCM");
  }

  std::lock_guard<std::mutex> l(mu_);
  AllocMeta* m = meta();
  AllocLog* log = &m->log;
  assert(log->state == AllocLog::kIdle);

  pmem::Store(&log->target_pool, tp->id());
  pmem::Store(&log->target_offset,
              static_cast<uint64_t>(reinterpret_cast<const char*>(target) -
                                    tp->base()));
  pmem::Store(&log->block_offset, value.offset);
  pmem::Store(&log->state, uint64_t{AllocLog::kDeallocating});
  pmem::Persist(log, sizeof(*log));
  SCM_CRASH_POINT("palloc.dealloc.logged");

  // Persistently null the caller's pptr: this is how the data structure
  // learns (post-crash) that the deallocation executed.
  pmem::StorePPtrPersist(reinterpret_cast<VoidPPtr*>(target),
                         VoidPPtr::Null());
  SCM_CRASH_POINT("palloc.dealloc.nulled");

  BlockHeader* hdr = HeaderAt(value.offset - sizeof(BlockHeader));
  uint64_t payload = hdr->payload_size();
  pmem::StorePersist(&hdr->size_state, BlockHeader::Pack(payload, false));
  SCM_CRASH_POINT("palloc.dealloc.freed");

  pmem::StorePersist(&log->state, uint64_t{AllocLog::kIdle});

  free_lists_[payload].push_back(value.offset);
  --allocated_blocks_;
  allocated_payload_ -= payload;
  ++ThreadStats().deallocations;
  return Status::OK();
}

uint64_t PAllocator::allocated_payload_bytes() const {
  std::lock_guard<std::mutex> l(mu_);
  return allocated_payload_;
}

uint64_t PAllocator::heap_used_bytes() const {
  return meta()->heap_top - meta()->heap_begin;
}

uint64_t PAllocator::allocated_blocks() const {
  std::lock_guard<std::mutex> l(mu_);
  return allocated_blocks_;
}

std::vector<uint64_t> PAllocator::AllocatedPayloadOffsets() const {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<uint64_t> out;
  AllocMeta* m = meta();
  uint64_t off = m->heap_begin;
  while (off + sizeof(BlockHeader) <= m->heap_top) {
    BlockHeader* hdr = HeaderAt(off);
    uint64_t payload = hdr->payload_size();
    if (payload == 0 || off + sizeof(BlockHeader) + payload > m->heap_top) {
      break;
    }
    if (hdr->allocated()) out.push_back(off + sizeof(BlockHeader));
    off += sizeof(BlockHeader) + payload;
  }
  return out;
}

}  // namespace scm
}  // namespace fptree
