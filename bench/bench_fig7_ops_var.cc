// Figure 7(g–j): single-threaded ops with 16-byte string keys, vs SCM
// latency. Trees: FPTreeVar, PTreeVar (= FPTreeVar without fingerprints)
// and the transient STXTreeVar. The paper's wBTreeVar and NV-TreeVar
// re-implementations are not reproduced (see EXPERIMENTS.md); the headline
// comparison — fingerprints pay off most for string keys because every
// probe dereferences a key blob in SCM — is carried by FPTreeVar vs
// PTreeVar.

#include <cstdio>

#include "baselines/stxtree.h"
#include "bench_common.h"
#include "core/fptree_var.h"

namespace fptree {
namespace bench {
namespace {

struct OpTimes {
  double find_us, insert_us, update_us, erase_us;
};

template <typename TreeT>
OpTimes RunTree(uint64_t n) {
  ScopedPool pool(size_t{4} << 30);
  TreeT tree(pool.get());
  auto warm = ShuffledRange(n, 42);
  auto extra = ShuffledRange(n, 43);
  for (uint64_t k : warm) tree.Insert(MakeVarKey(k * 2), k);
  OpTimes t{};
  t.find_us = TimeOps(n, [&](uint64_t i) {
                uint64_t v = 0;
                tree.Find(MakeVarKey(warm[i] * 2), &v);
                DoNotOptimize(v);
              }, "find") /
              1000.0;
  t.insert_us = TimeOps(n, [&](uint64_t i) {
                  tree.Insert(MakeVarKey(extra[i] * 2 + 1), i);
                }, "insert") /
                1000.0;
  t.update_us = TimeOps(n, [&](uint64_t i) {
                  tree.Update(MakeVarKey(warm[i] * 2), i);
                }, "update") /
                1000.0;
  t.erase_us = TimeOps(n, [&](uint64_t i) {
                 tree.Erase(MakeVarKey(extra[i] * 2 + 1));
               }, "erase") /
               1000.0;
  return t;
}

OpTimes RunStx(uint64_t n) {
  baselines::STXTree<std::string, uint64_t, 8, 8> tree;
  auto warm = ShuffledRange(n, 42);
  auto extra = ShuffledRange(n, 43);
  for (uint64_t k : warm) tree.Insert(MakeVarKey(k * 2), k);
  OpTimes t{};
  t.find_us = TimeOps(n, [&](uint64_t i) {
                uint64_t v = 0;
                tree.Find(MakeVarKey(warm[i] * 2), &v);
                DoNotOptimize(v);
              }, "find") /
              1000.0;
  t.insert_us = TimeOps(n, [&](uint64_t i) {
                  tree.Insert(MakeVarKey(extra[i] * 2 + 1), i);
                }, "insert") /
                1000.0;
  t.update_us = TimeOps(n, [&](uint64_t i) {
                  tree.Update(MakeVarKey(warm[i] * 2), i);
                }, "update") /
                1000.0;
  t.erase_us = TimeOps(n, [&](uint64_t i) {
                 tree.Erase(MakeVarKey(extra[i] * 2 + 1));
               }, "erase") /
               1000.0;
  return t;
}

void PrintRow(const char* name, uint64_t lat, const OpTimes& t) {
  std::printf("%8llu %-10s %9.3f %9.3f %9.3f %9.3f\n",
              static_cast<unsigned long long>(lat), name, t.find_us,
              t.insert_us, t.update_us, t.erase_us);
}

}  // namespace
}  // namespace bench
}  // namespace fptree

int main(int argc, char** argv) {
  using namespace fptree;
  using namespace fptree::bench;
  Flags flags = Flags::Parse(argc, argv);
  uint64_t n = flags.quick ? 30000 : flags.keys / 2;
  scm::LatencyModel::Calibrate();

  PrintHeader(
      "Figure 7(g-j): single-threaded ops, 16-byte string keys, avg us/op");
  std::printf("%8s %-10s %9s %9s %9s %9s\n", "lat(ns)", "tree", "find",
              "insert", "update", "delete");
  std::vector<uint64_t> latencies =
      flags.latency != 0 ? std::vector<uint64_t>{flags.latency}
                         : std::vector<uint64_t>{90, 250, 450, 650};
  for (uint64_t lat : latencies) {
    SetLatency(lat);
    PrintRow("FPTreeVar", lat, RunTree<core::FPTreeVar<>>(n));
    PrintRow("PTreeVar", lat,
             RunTree<core::FPTreeVar<uint64_t, 32, 256, false>>(n));
    scm::LatencyModel::Disable();
    PrintRow("STXTreeV", lat, RunStx(n));
  }
  scm::LatencyModel::Disable();
  std::printf(
      "\nPaper shape: fingerprints matter more for string keys (every probe "
      "is an SCM pointer\ndereference): FPTreeVar beats PTreeVar by more "
      "than FPTree beats PTree, at every latency.\n");
  EmitMetricsJson("fig7_ops_var");
  return 0;
}
