// Copyright (c) FPTree reproduction authors.
//
// A lightweight Status type, following the RocksDB/Arrow idiom: fallible
// operations return a Status instead of throwing. The tree hot paths do not
// allocate Status objects; Status is used on the control plane (pool
// open/close, allocator bootstrap, application plumbing).

#pragma once

#include <string>
#include <utility>

namespace fptree {

/// \brief Result of a fallible control-plane operation.
///
/// A Status is either OK (the default) or carries a code plus a
/// human-readable message. Statuses are cheap to move and must be checked by
/// the caller; ignoring one is a bug.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kNotSupported = 3,
    kInvalidArgument = 4,
    kIOError = 5,
    kResourceExhausted = 6,
    kAlreadyExists = 7,
    kTimedOut = 8,
  };

  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(Code::kTimedOut, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + msg_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static const char* CodeName(Code c) {
    switch (c) {
      case Code::kOk:
        return "OK";
      case Code::kNotFound:
        return "NotFound";
      case Code::kCorruption:
        return "Corruption";
      case Code::kNotSupported:
        return "NotSupported";
      case Code::kInvalidArgument:
        return "InvalidArgument";
      case Code::kIOError:
        return "IOError";
      case Code::kResourceExhausted:
        return "ResourceExhausted";
      case Code::kAlreadyExists:
        return "AlreadyExists";
      case Code::kTimedOut:
        return "TimedOut";
    }
    return "Unknown";
  }

  Code code_ = Code::kOk;
  std::string msg_;
};

}  // namespace fptree
