// Quickstart: create an SCM pool, build an FPTree in it, run the base
// operations, then reopen the pool to demonstrate recovery (DRAM inner
// nodes are rebuilt from the persistent leaves).
//
//   ./quickstart [pool-path]

#include <cstdio>
#include <string>

#include "core/fptree.h"
#include "scm/latency.h"
#include "scm/pool.h"

int main(int argc, char** argv) {
  using namespace fptree;

  std::string path = argc > 1 ? argv[1] : "/tmp/fptree_quickstart.pool";
  scm::Pool::Destroy(path).ok();  // start fresh for the demo

  // Emulate an SCM latency of 250 ns (the paper sweeps 90–650 ns).
  scm::LatencyModel::Config().dram_ns = 90;
  scm::LatencyModel::SetScmLatency(250);

  // 1. Create a pool: a memory-mapped file with a crash-safe allocator.
  std::unique_ptr<scm::Pool> pool;
  scm::Pool::Options options{.size = 256u << 20, .randomize_base = true};
  Status s = scm::Pool::Create(path, /*pool_id=*/1, options, &pool);
  if (!s.ok()) {
    std::fprintf(stderr, "pool create failed: %s\n", s.ToString().c_str());
    return 1;
  }

  {
    // 2. Build the tree. Leaves are persisted in the pool; inner nodes
    //    live in DRAM.
    core::FPTree<> tree(pool.get());

    for (uint64_t k = 0; k < 100000; ++k) {
      tree.Insert(k, k * 10);
    }
    std::printf("inserted %zu keys\n", tree.Size());

    uint64_t v = 0;
    tree.Find(4242, &v);
    std::printf("find(4242)   -> %llu\n", static_cast<unsigned long long>(v));

    tree.Update(4242, 777);
    tree.Find(4242, &v);
    std::printf("update(4242) -> %llu\n", static_cast<unsigned long long>(v));

    tree.Erase(4242);
    std::printf("erase(4242)  -> found=%d\n", tree.Find(4242, &v));

    std::vector<std::pair<uint64_t, uint64_t>> range;
    tree.RangeScan(100, 5, &range);
    std::printf("scan from 100:");
    for (auto& [k, val] : range) {
      std::printf(" (%llu,%llu)", static_cast<unsigned long long>(k),
                  static_cast<unsigned long long>(val));
    }
    std::printf("\n");
    std::printf("DRAM: %.2f MB  SCM: %.2f MB (DRAM share %.2f%%)\n",
                tree.DramBytes() / 1e6, tree.ScmBytes() / 1e6,
                100.0 * tree.DramBytes() /
                    (tree.DramBytes() + tree.ScmBytes()));
  }

  // 3. "Restart": close the pool, reopen it (at a different address), and
  //    recover — the paper's Alg. 9: micro-log replay + inner rebuild.
  pool.reset();
  s = scm::Pool::Open(path, 1, options, &pool);
  if (!s.ok()) {
    std::fprintf(stderr, "reopen failed: %s\n", s.ToString().c_str());
    return 1;
  }
  core::FPTree<> recovered(pool.get());
  uint64_t v = 0;
  recovered.Find(1000, &v);
  std::printf("after recovery (%.2f ms): size=%zu, find(1000)=%llu\n",
              recovered.last_recovery_nanos() / 1e6, recovered.Size(),
              static_cast<unsigned long long>(v));

  pool.reset();
  scm::Pool::Destroy(path).ok();
  return 0;
}
