// Copyright (c) FPTree reproduction authors.
//
// Checker self-test corpus (DESIGN.md §13): hand-written histories with
// known verdicts. The non-linearizable ones cover the bug classes the
// checker exists to catch — stale reads, lost updates, torn batches,
// resurrected deletes — and the linearizable ones pin down that the
// checker is not trigger-happy (concurrent ops may order either way,
// pending ops may apply or vanish). Also unit-tests the capture layer:
// slot protocol, arenas, multi-thread drain, ring spill.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "check/checked_index.h"
#include "check/checker.h"
#include "check/history.h"
#include "index/kv_index.h"
#include "util/threading.h"

namespace fptree {
namespace check {
namespace {

// Event builder for hand-written fixed-key histories. Timestamps are
// small integers; only their order matters.
Event Ev(OpKind kind, uint64_t t_inv, uint64_t t_resp, uint64_t key,
         Outcome outcome, uint64_t arg = 0, uint64_t result = 0) {
  Event e;
  e.kind = kind;
  e.t_inv = t_inv;
  e.t_resp = t_resp;
  e.key = key;
  e.outcome = outcome;
  e.arg = arg;
  e.result = result;
  return e;
}

History Hist(std::vector<Event> events) {
  History h;
  h.events = std::move(events);
  return h;
}

// Appends a fixed-key scan event with the given rows to `h`.
void AddScan(History* h, uint64_t t_inv, uint64_t t_resp, uint64_t start,
             bool exhausted,
             const std::vector<std::pair<uint64_t, uint64_t>>& rows) {
  Event e;
  e.kind = OpKind::kScan;
  e.t_inv = t_inv;
  e.t_resp = t_resp;
  e.key = start;
  e.outcome = Outcome::kTrue;
  e.scan_exhausted = exhausted;
  e.rows_off = h->words.size();
  e.rows_n = static_cast<uint32_t>(rows.size());
  for (const auto& r : rows) {
    h->words.push_back(r.first);
    h->words.push_back(r.second);
  }
  h->events.push_back(e);
}

CheckResult Check(const History& h) {
  return CheckHistory(h, CheckOptions{});
}

// --- known-linearizable histories -------------------------------------------

TEST(CheckerCorpus, EmptyHistory) {
  CheckResult r = Check(Hist({}));
  EXPECT_TRUE(r.decided);
  EXPECT_TRUE(r.ok);
}

TEST(CheckerCorpus, SequentialLifecycle) {
  CheckResult r = Check(Hist({
      Ev(OpKind::kGet, 1, 2, 7, Outcome::kFalse),
      Ev(OpKind::kInsert, 3, 4, 7, Outcome::kTrue, 100),
      Ev(OpKind::kGet, 5, 6, 7, Outcome::kTrue, 0, 100),
      Ev(OpKind::kUpdate, 7, 8, 7, Outcome::kTrue, 200),
      Ev(OpKind::kGet, 9, 10, 7, Outcome::kTrue, 0, 200),
      Ev(OpKind::kErase, 11, 12, 7, Outcome::kTrue),
      Ev(OpKind::kGet, 13, 14, 7, Outcome::kFalse),
  }));
  EXPECT_TRUE(r.decided);
  EXPECT_TRUE(r.ok) << r.why;
}

TEST(CheckerCorpus, ConcurrentUpsertsEitherOrder) {
  // Two overlapping wire-style upserts (no inserted flag observed): a
  // later read may see either one.
  for (uint64_t seen : {uint64_t{111}, uint64_t{222}}) {
    CheckResult r = Check(Hist({
        Ev(OpKind::kUpsert, 1, 10, 5, Outcome::kUnknown, 111),
        Ev(OpKind::kUpsert, 2, 9, 5, Outcome::kUnknown, 222),
        Ev(OpKind::kGet, 20, 21, 5, Outcome::kTrue, 0, seen),
    }));
    EXPECT_TRUE(r.decided);
    EXPECT_TRUE(r.ok) << "seen=" << seen << ": " << r.why;
  }
}

TEST(CheckerCorpus, InsertedFlagsPinConcurrentUpsertOrder) {
  // Same shape, but the flags were observed: kTrue inserted, kFalse
  // replaced. The replace cannot go first on an absent key, so the order
  // is pinned and a later read must see the replace's value.
  CheckResult ok_case = Check(Hist({
      Ev(OpKind::kUpsert, 1, 10, 5, Outcome::kTrue, 111, 1),
      Ev(OpKind::kUpsert, 2, 9, 5, Outcome::kFalse, 222),
      Ev(OpKind::kGet, 20, 21, 5, Outcome::kTrue, 0, 222),
  }));
  EXPECT_TRUE(ok_case.decided);
  EXPECT_TRUE(ok_case.ok) << ok_case.why;
  CheckResult bad_case = Check(Hist({
      Ev(OpKind::kUpsert, 1, 10, 5, Outcome::kTrue, 111, 1),
      Ev(OpKind::kUpsert, 2, 9, 5, Outcome::kFalse, 222),
      Ev(OpKind::kGet, 20, 21, 5, Outcome::kTrue, 0, 111),
  }));
  EXPECT_TRUE(bad_case.decided);
  EXPECT_FALSE(bad_case.ok);
}

TEST(CheckerCorpus, ReadOverlappingWriteSeesEitherValue) {
  for (uint64_t seen : {uint64_t{100}, uint64_t{200}}) {
    CheckResult r = Check(Hist({
        Ev(OpKind::kInsert, 1, 2, 3, Outcome::kTrue, 100),
        Ev(OpKind::kUpdate, 10, 20, 3, Outcome::kTrue, 200),
        Ev(OpKind::kGet, 11, 19, 3, Outcome::kTrue, 0, seen),
    }));
    EXPECT_TRUE(r.decided);
    EXPECT_TRUE(r.ok) << "seen=" << seen << ": " << r.why;
  }
}

TEST(CheckerCorpus, UnknownOutcomeUpsertConstrainsValueOnly) {
  // The wire PUT acks without the inserted flag (Outcome::kUnknown): the
  // value must land, but insert-vs-replace is unconstrained.
  CheckResult r = Check(Hist({
      Ev(OpKind::kUpsert, 1, 2, 9, Outcome::kUnknown, 42),
      Ev(OpKind::kGet, 3, 4, 9, Outcome::kTrue, 0, 42),
  }));
  EXPECT_TRUE(r.decided);
  EXPECT_TRUE(r.ok) << r.why;
}

TEST(CheckerCorpus, InitialStateSeedsRegisters) {
  CheckOptions opts;
  opts.initial_fixed[4] = 400;
  CheckResult r = CheckHistory(
      Hist({Ev(OpKind::kGet, 1, 2, 4, Outcome::kTrue, 0, 400)}), opts);
  EXPECT_TRUE(r.decided);
  EXPECT_TRUE(r.ok) << r.why;
  CheckResult r2 = CheckHistory(
      Hist({Ev(OpKind::kGet, 1, 2, 4, Outcome::kFalse)}), opts);
  EXPECT_TRUE(r2.decided);
  EXPECT_FALSE(r2.ok);
}

TEST(CheckerCorpus, ScanWitnessesPresentRows) {
  History h;
  h.events.push_back(Ev(OpKind::kInsert, 1, 2, 10, Outcome::kTrue, 1000));
  h.events.push_back(Ev(OpKind::kInsert, 3, 4, 12, Outcome::kTrue, 1200));
  AddScan(&h, 5, 6, 10, /*exhausted=*/true, {{10, 1000}, {12, 1200}});
  CheckResult r = Check(h);
  EXPECT_TRUE(r.decided);
  EXPECT_TRUE(r.ok) << r.why;
  EXPECT_GE(r.stats.scan_reads, 2u);
}

TEST(CheckerCorpus, ZeroRowScanWitnessesNothing) {
  // An unordered index legitimately answers scans with zero rows; that
  // must not read as "everything is absent".
  History h;
  h.events.push_back(Ev(OpKind::kInsert, 1, 2, 10, Outcome::kTrue, 1000));
  AddScan(&h, 5, 6, 0, /*exhausted=*/true, {});
  CheckResult r = Check(h);
  EXPECT_TRUE(r.decided);
  EXPECT_TRUE(r.ok) << r.why;
}

TEST(CheckerCorpus, PendingInsertMayOrMayNotSurvive) {
  // Crash with an insert in flight: both recovered states are legal.
  for (bool survived : {false, true}) {
    CheckOptions opts;
    opts.durable = true;
    if (survived) opts.recovered_fixed[6] = 600;
    CheckResult r = CheckHistory(
        Hist({Ev(OpKind::kInsert, 1, kPendingTime, 6, Outcome::kPending,
                 600)}),
        opts);
    EXPECT_TRUE(r.decided);
    EXPECT_TRUE(r.ok) << "survived=" << survived << ": " << r.why;
  }
}

TEST(CheckerCorpus, DurableAckedStateSurvives) {
  CheckOptions opts;
  opts.durable = true;
  opts.recovered_fixed[1] = 100;
  CheckResult r = CheckHistory(
      Hist({
          Ev(OpKind::kInsert, 1, 2, 1, Outcome::kTrue, 100),
          Ev(OpKind::kInsert, 3, 4, 2, Outcome::kTrue, 200),
          Ev(OpKind::kErase, 5, 6, 2, Outcome::kTrue),
      }),
      opts);
  EXPECT_TRUE(r.decided);
  EXPECT_TRUE(r.ok) << r.why;
}

TEST(CheckerCorpus, AmbiguousBatchElementThenReadOfAppliedValue) {
  // MPUT under NO_SPACE: the element completed ambiguously (finite
  // response, optional effect). A later read may see it applied...
  CheckResult r = Check(Hist({
      Ev(OpKind::kUpsert, 1, 2, 8, Outcome::kPending, 800),
      Ev(OpKind::kGet, 10, 11, 8, Outcome::kTrue, 0, 800),
  }));
  EXPECT_TRUE(r.decided);
  EXPECT_TRUE(r.ok) << r.why;
  // ...or not applied.
  CheckResult r2 = Check(Hist({
      Ev(OpKind::kUpsert, 1, 2, 8, Outcome::kPending, 800),
      Ev(OpKind::kGet, 10, 11, 8, Outcome::kFalse),
  }));
  EXPECT_TRUE(r2.decided);
  EXPECT_TRUE(r2.ok) << r2.why;
}

// --- known-non-linearizable histories ---------------------------------------

TEST(CheckerCorpus, StaleReadRejected) {
  // Update completed before the read began, yet the read returned the
  // overwritten value.
  CheckResult r = Check(Hist({
      Ev(OpKind::kInsert, 1, 2, 3, Outcome::kTrue, 100),
      Ev(OpKind::kUpdate, 3, 4, 3, Outcome::kTrue, 200),
      Ev(OpKind::kGet, 5, 6, 3, Outcome::kTrue, 0, 100),
  }));
  EXPECT_TRUE(r.decided);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.why.find("key 3"), std::string::npos) << r.why;
}

TEST(CheckerCorpus, LostUpdateRejected) {
  // Two non-overlapping acked updates; the second's value vanishes: a
  // read after both still sees the first.
  CheckResult r = Check(Hist({
      Ev(OpKind::kInsert, 1, 2, 3, Outcome::kTrue, 100),
      Ev(OpKind::kUpdate, 3, 4, 3, Outcome::kTrue, 200),
      Ev(OpKind::kUpdate, 5, 6, 3, Outcome::kTrue, 300),
      Ev(OpKind::kGet, 7, 8, 3, Outcome::kTrue, 0, 200),
  }));
  EXPECT_TRUE(r.decided);
  EXPECT_FALSE(r.ok);
}

TEST(CheckerCorpus, InsertTrueOnPresentKeyRejected) {
  CheckResult r = Check(Hist({
      Ev(OpKind::kInsert, 1, 2, 3, Outcome::kTrue, 100),
      Ev(OpKind::kInsert, 3, 4, 3, Outcome::kTrue, 200),
  }));
  EXPECT_TRUE(r.decided);
  EXPECT_FALSE(r.ok);
}

TEST(CheckerCorpus, TornBatchRejected) {
  // Both batch elements acked (one MultiPut, same invocation window),
  // but recovery kept only the second: not a strict prefix — torn.
  CheckOptions opts;
  opts.durable = true;
  opts.recovered_fixed[21] = 2100;
  CheckResult r = CheckHistory(
      Hist({
          Ev(OpKind::kInsert, 1, 3, 20, Outcome::kTrue, 2000),
          Ev(OpKind::kInsert, 1, 3, 21, Outcome::kTrue, 2100),
      }),
      opts);
  EXPECT_TRUE(r.decided);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.why.find("key 20"), std::string::npos) << r.why;
}

TEST(CheckerCorpus, ResurrectedDeleteRejected) {
  // The erase was acked; recovery brought the key back.
  CheckOptions opts;
  opts.durable = true;
  opts.recovered_fixed[5] = 500;
  CheckResult r = CheckHistory(
      Hist({
          Ev(OpKind::kInsert, 1, 2, 5, Outcome::kTrue, 500),
          Ev(OpKind::kErase, 3, 4, 5, Outcome::kTrue),
      }),
      opts);
  EXPECT_TRUE(r.decided);
  EXPECT_FALSE(r.ok);
}

TEST(CheckerCorpus, LostAckedWriteRejected) {
  CheckOptions opts;
  opts.durable = true;  // recovered state: key absent
  CheckResult r = CheckHistory(
      Hist({Ev(OpKind::kInsert, 1, 2, 9, Outcome::kTrue, 900)}), opts);
  EXPECT_TRUE(r.decided);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.why.find("recovered"), std::string::npos) << r.why;
}

TEST(CheckerCorpus, KeyFromNowhereRejected) {
  // Recovery surfaced a key no one ever wrote.
  CheckOptions opts;
  opts.durable = true;
  opts.recovered_fixed[77] = 7;
  CheckResult r = CheckHistory(Hist({}), opts);
  EXPECT_TRUE(r.decided);
  EXPECT_FALSE(r.ok);
}

TEST(CheckerCorpus, ScanAbsenceWitnessRejectsStableKeySkipped) {
  // The PR-6 bug class: a scan that skips a present, untouched key. The
  // insert of 11 completed before the scan began and nothing deleted it,
  // yet the scan listed 10 and 12 only.
  History h;
  h.events.push_back(Ev(OpKind::kInsert, 1, 2, 10, Outcome::kTrue, 1000));
  h.events.push_back(Ev(OpKind::kInsert, 3, 4, 11, Outcome::kTrue, 1100));
  h.events.push_back(Ev(OpKind::kInsert, 5, 6, 12, Outcome::kTrue, 1200));
  AddScan(&h, 10, 11, 10, /*exhausted=*/true, {{10, 1000}, {12, 1200}});
  CheckResult r = Check(h);
  EXPECT_TRUE(r.decided);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.why.find("key 11"), std::string::npos) << r.why;
}

TEST(CheckerCorpus, AmbiguousWriteCannotApplyAfterLaterOpCompletes) {
  // The ambiguous (NO_SPACE) upsert responded at t=2; a read at [10,11]
  // saw the old state, then a read at [20,21] saw the ambiguous value.
  // The effect would have to materialize *after* an op that started
  // after its response — impossible under linearizability.
  CheckResult r = Check(Hist({
      Ev(OpKind::kUpsert, 1, 2, 8, Outcome::kPending, 800),
      Ev(OpKind::kGet, 10, 11, 8, Outcome::kFalse),
      Ev(OpKind::kGet, 20, 21, 8, Outcome::kTrue, 0, 800),
  }));
  EXPECT_TRUE(r.decided);
  EXPECT_FALSE(r.ok);
}

// --- capture-layer units ----------------------------------------------------

TEST(CaptureUnit, RecordsPointOpsAndDrains) {
  HistoryRecorder rec;
  auto inner = index::MakeFixedIndex("stx", nullptr);
  ASSERT_NE(inner, nullptr);
  auto idx = Checked(std::move(inner), &rec);
  uint64_t v = 0;
  EXPECT_FALSE(idx->Find(1, &v));
  EXPECT_TRUE(idx->Insert(1, 10));
  EXPECT_TRUE(idx->Find(1, &v));
  EXPECT_EQ(v, 10u);
  EXPECT_TRUE(idx->Update(1, 20));
  EXPECT_FALSE(idx->Upsert(1, 30));  // replace
  EXPECT_TRUE(idx->Erase(1));
  History h = rec.Drain();
  ASSERT_EQ(h.size(), 6u);
  for (const Event& e : h.events) {
    EXPECT_NE(e.outcome, Outcome::kPending);
    EXPECT_LE(e.t_inv, e.t_resp);
    EXPECT_EQ(e.key, 1u);
  }
  CheckResult r = CheckHistory(h, CheckOptions{});
  EXPECT_TRUE(r.decided);
  EXPECT_TRUE(r.ok) << r.why;
  // Drain resets: nothing left.
  EXPECT_TRUE(rec.Drain().empty());
}

TEST(CaptureUnit, BatchAndScanEventsRoundTrip) {
  HistoryRecorder rec;
  auto idx = Checked(index::MakeFixedIndex("stx", nullptr), &rec);
  const uint64_t keys[] = {1, 2, 3};
  const uint64_t vals[] = {10, 20, 30};
  uint8_t ins[3] = {0, 0, 0};
  idx->MultiPut(keys, vals, 3, ins);
  uint64_t got[3] = {0, 0, 0};
  uint8_t found[3] = {0, 0, 0};
  idx->MultiGet(keys, 3, got, found);
  size_t rows = 0;
  idx->RangeScan(0, 100, [&](uint64_t, uint64_t) {
    ++rows;
    return true;
  });
  EXPECT_EQ(rows, 3u);
  History h = rec.Drain();
  // 3 puts + 3 gets + 1 scan event.
  ASSERT_EQ(h.size(), 7u);
  size_t scans = 0;
  for (const Event& e : h.events) {
    if (e.kind == OpKind::kScan) {
      ++scans;
      EXPECT_EQ(e.rows_n, 3u);
      EXPECT_TRUE(e.scan_exhausted);
    }
  }
  EXPECT_EQ(scans, 1u);
  CheckResult r = CheckHistory(h, CheckOptions{});
  EXPECT_TRUE(r.decided);
  EXPECT_TRUE(r.ok) << r.why;
}

TEST(CaptureUnit, VarKeysInternAcrossThreadsAndSpill) {
  HistoryRecorder rec;
  auto idx = Checked(index::MakeVarIndex("stx-var", nullptr), &rec);
  constexpr int kThreads = 3;
  constexpr int kOps = 5000;  // > ring size, forces spill per thread
  ThreadGroup group;
  group.Spawn(kThreads, [&](int tid) {
    for (int i = 0; i < kOps; ++i) {
      std::string key =
          "k" + std::to_string(tid) + "-" + std::to_string(i % 64);
      idx->Upsert(key, static_cast<uint64_t>(tid * kOps + i));
    }
  });
  group.Join();
  EXPECT_EQ(rec.threads_seen(), static_cast<size_t>(kThreads));
  History h = rec.Drain();
  ASSERT_EQ(h.size(), static_cast<size_t>(kThreads * kOps));
  for (const Event& e : h.events) {
    ASSERT_TRUE(e.var_key);
    std::string_view k = h.KeyOf(e);
    ASSERT_GE(k.size(), 4u);
    EXPECT_EQ(k[0], 'k');
  }
  CheckResult r = CheckHistory(h, CheckOptions{});
  EXPECT_TRUE(r.decided);
  EXPECT_TRUE(r.ok) << r.why;
}

TEST(CaptureUnit, DisabledRecorderCapturesNothing) {
  HistoryRecorder rec;
  rec.set_enabled(false);
  auto idx = Checked(index::MakeFixedIndex("stx", nullptr), &rec);
  idx->Insert(1, 10);
  uint64_t v = 0;
  idx->Find(1, &v);
  EXPECT_TRUE(rec.Drain().empty());
}

TEST(CaptureUnit, PendingOpsSurfaceOnDrain) {
  HistoryRecorder rec;
  ThreadLog* log = rec.Log();
  Event proto;
  proto.t_inv = ClockNow();
  proto.kind = OpKind::kInsert;
  proto.key = 42;
  proto.arg = 4200;
  log->Begin(proto);  // never Ended: simulates a crash mid-insert
  History h = rec.Drain();
  ASSERT_EQ(h.size(), 1u);
  EXPECT_EQ(h.events[0].outcome, Outcome::kPending);
  EXPECT_EQ(h.events[0].t_resp, kPendingTime);
  EXPECT_EQ(h.events[0].key, 42u);
}

TEST(CaptureUnit, BorrowedWrapperSharesInnerState) {
  auto inner = index::MakeFixedIndex("stx", nullptr);
  index::KVIndex* raw = inner.get();
  HistoryRecorder rec;
  auto wrapped = CheckedBorrowed(raw, &rec);
  wrapped->Insert(5, 50);
  uint64_t v = 0;
  EXPECT_TRUE(raw->Find(5, &v));
  EXPECT_EQ(v, 50u);
  EXPECT_EQ(rec.Drain().size(), 1u);
}

TEST(CaptureUnit, ParseCheckedSpec) {
  std::string inner;
  EXPECT_TRUE(ParseCheckedSpec("checked(fptree-c)", &inner));
  EXPECT_EQ(inner, "fptree-c");
  EXPECT_TRUE(ParseCheckedSpec("checked(sharded(fptree-c-var,3))", &inner));
  EXPECT_EQ(inner, "sharded(fptree-c-var,3)");
  EXPECT_FALSE(ParseCheckedSpec("fptree-c", &inner));
  EXPECT_FALSE(ParseCheckedSpec("checked()", &inner));
  EXPECT_FALSE(ParseCheckedSpec("checked(", &inner));
}

}  // namespace
}  // namespace check
}  // namespace fptree
