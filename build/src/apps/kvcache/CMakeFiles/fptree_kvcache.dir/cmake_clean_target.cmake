file(REMOVE_RECURSE
  "libfptree_kvcache.a"
)
