// Copyright (c) FPTree reproduction authors.
//
// Persistent pointers (paper §2, "Data recovery"): an 8-byte pool (file) ID
// plus an 8-byte offset inside that pool's file. A PPtr stays valid across
// restarts — unlike a virtual pointer — because the pool can be remapped at
// any base address and the offset re-resolved. Our test harness deliberately
// remaps pools at randomized bases after a simulated crash to prove this.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <type_traits>

#include "scm/layout.h"

namespace fptree {
namespace scm {

namespace internal {
/// Base virtual addresses of currently-mapped pools, indexed by pool id.
/// Written by Pool open/close; read inline by PPtr resolution.
inline std::array<std::atomic<void*>, kMaxPools> g_pool_bases{};
}  // namespace internal

/// \brief Typed persistent pointer: {pool id, byte offset}.
///
/// Offset 0 addresses the pool header and is never handed out for objects,
/// so {*, 0} represents null. PPtr is a 16-byte POD; an aligned 8-byte half
/// (the offset) is the p-atomically-updated word in all algorithms that
/// depend on atomic pointer publication.
template <typename T>
struct PPtr {
  uint64_t pool_id = 0;
  uint64_t offset = 0;

  static PPtr Null() { return PPtr{0, 0}; }

  bool IsNull() const { return offset == 0; }

  /// Resolves to a virtual pointer in the current mapping. Null-safe.
  T* get() const {
    if (offset == 0) return nullptr;
    void* base = internal::g_pool_bases[pool_id].load(std::memory_order_acquire);
    return reinterpret_cast<T*>(static_cast<char*>(base) + offset);
  }

  T* operator->() const { return get(); }
  auto& operator*() const
    requires(!std::is_void_v<T>)
  {
    return *get();
  }

  bool operator==(const PPtr& o) const {
    return pool_id == o.pool_id && offset == o.offset;
  }
  bool operator!=(const PPtr& o) const { return !(*this == o); }

  /// Reinterprets this persistent pointer as pointing to U.
  template <typename U>
  PPtr<U> Cast() const {
    return PPtr<U>{pool_id, offset};
  }
};

static_assert(sizeof(PPtr<int>) == 16, "PPtr must be 16 bytes");

using VoidPPtr = PPtr<void>;

}  // namespace scm
}  // namespace fptree
