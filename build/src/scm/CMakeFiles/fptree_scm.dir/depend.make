# Empty dependencies file for fptree_scm.
# This may be replaced when dependencies are built.
