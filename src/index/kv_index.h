// Copyright (c) FPTree reproduction authors.
//
// Uniform index interfaces and adapters (index API v2). The end-to-end
// applications (kvcache, minidb) and the benchmark harnesses hold trees
// through these so every tree in the paper's evaluation can be swapped in
// by name, exactly as the paper swaps trees into memcached and its
// prototype database.
//
// v2 additions:
//  * RangeScan(start, limit, cb) — ordered scans through the interface.
//  * Stats() — a per-instance obs::Snapshot (size/bytes gauges, tree op
//    counters, HTM telemetry where the tree has them).
//  * Implementations self-register in IndexRegistry (kv_index.cc);
//    ListFixedIndexNames()/ListVarIndexNames() enumerate them for
//    `--tree=all` style drivers.

#pragma once

#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "baselines/nvtree.h"
#include "baselines/stxtree.h"
#include "baselines/wbtree.h"
#include "core/fptree.h"
#include "core/fptree_concurrent.h"
#include "core/fptree_concurrent_var.h"
#include "core/fptree_var.h"
#include "core/ptree.h"
#include "obs/metrics.h"
#include "scm/pool.h"
#include "util/hash.h"

namespace fptree {
namespace index {

/// \brief Fixed-size (8-byte) key index.
class KVIndex {
 public:
  /// Scan visitor; return false to stop early.
  using ScanCallback = std::function<bool(uint64_t key, uint64_t value)>;

  virtual ~KVIndex() = default;

  virtual bool Find(uint64_t key, uint64_t* value) = 0;
  virtual bool Insert(uint64_t key, uint64_t value) = 0;
  virtual bool Update(uint64_t key, uint64_t value) = 0;
  virtual bool Erase(uint64_t key) = 0;
  /// Ordered visit of up to `limit` pairs with key >= start; returns the
  /// number of pairs delivered. Unordered indexes return 0.
  virtual size_t RangeScan(uint64_t start, size_t limit,
                           const ScanCallback& cb) = 0;
  virtual size_t Size() const = 0;
  virtual uint64_t DramBytes() const = 0;
  virtual uint64_t ScmBytes() const = 0;
  /// Nanoseconds the constructor spent on recovery (0 for transient trees).
  virtual uint64_t RecoveryNanos() const { return 0; }
  /// Per-instance metrics snapshot (index.* gauges, tree.*/htm.* counters
  /// where the underlying tree keeps them).
  virtual obs::Snapshot Stats() const = 0;
  /// True when the implementation is internally thread-safe.
  virtual bool concurrent() const { return false; }
  /// Universal invariant check (DESIGN.md §8): the deepest structural audit
  /// the implementation supports — leaf/inner agreement, fingerprint and
  /// slot-array soundness, persistent-leak audit. Returns true (and leaves
  /// *why untouched) for transient indexes with no deep checker. Callers
  /// must quiesce concurrent indexes first. Adapter implementations bump
  /// tree.invariant_checks / tree.invariant_failures in the global metrics
  /// registry so harnesses can assert clean runs from METRICS_JSON.
  virtual bool CheckInvariants(std::string* why) {
    (void)why;
    return true;
  }
};

/// \brief Variable-size (string) key index.
class VarIndex {
 public:
  using ScanCallback = std::function<bool(std::string_view key,
                                          uint64_t value)>;

  virtual ~VarIndex() = default;

  virtual bool Find(std::string_view key, uint64_t* value) = 0;
  virtual bool Insert(std::string_view key, uint64_t value) = 0;
  virtual bool Update(std::string_view key, uint64_t value) = 0;
  virtual bool Erase(std::string_view key) = 0;
  virtual size_t RangeScan(std::string_view start, size_t limit,
                           const ScanCallback& cb) = 0;
  virtual size_t Size() const = 0;
  virtual uint64_t DramBytes() const = 0;
  virtual uint64_t ScmBytes() const = 0;
  virtual uint64_t RecoveryNanos() const { return 0; }
  virtual obs::Snapshot Stats() const = 0;
  virtual bool concurrent() const { return false; }
  /// Universal invariant check; see KVIndex::CheckInvariants.
  virtual bool CheckInvariants(std::string* why) {
    (void)why;
    return true;
  }
};

namespace internal {

/// Builds the per-instance metrics snapshot from whatever the tree exposes;
/// feature-detected so one helper serves every adapter.
template <typename TreeT>
obs::Snapshot TreeSnapshot(const TreeT& t) {
  obs::Snapshot s;
  s.gauges["index.size"] = t.Size();
  s.gauges["index.dram_bytes"] = t.DramBytes();
  if constexpr (requires { t.ScmBytes(); }) {
    s.gauges["index.scm_bytes"] = t.ScmBytes();
  } else {
    s.gauges["index.scm_bytes"] = 0;
  }
  if constexpr (requires { t.last_recovery_nanos(); }) {
    s.gauges["index.recovery_nanos"] = t.last_recovery_nanos();
  }
  if constexpr (requires { t.stats(); }) {
    const core::TreeOpStats& st = t.stats();
    s.counters["tree.finds"] = st.finds;
    s.counters["tree.key_probes"] = st.key_probes;
    s.counters["tree.leaf_splits"] = st.leaf_splits;
    s.counters["tree.leaf_deletes"] = st.leaf_deletes;
    s.counters["tree.rebuilds"] = st.rebuilds;
  }
  if constexpr (requires { t.htm_stats(); }) {
    htm::HtmStatsSnapshot h;
    h.Add(t.htm_stats());
    s.counters["htm.commits"] = h.commits;
    s.counters["htm.aborts"] = h.aborts;
    s.counters["htm.aborts_conflict"] = h.aborts_conflict;
    s.counters["htm.aborts_capacity"] = h.aborts_capacity;
    s.counters["htm.aborts_explicit"] = h.aborts_explicit;
    s.counters["htm.fallbacks"] = h.fallbacks;
  }
  return s;
}

/// Runs the deepest invariant checker the tree exposes (CheckInvariants,
/// falling back to CheckConsistency, then to vacuous truth for transient
/// trees), bumping the global observability counters so benches and crash
/// harnesses can assert clean runs straight from METRICS_JSON.
template <typename TreeT>
bool RunInvariantCheck(TreeT& t, std::string* why) {
  obs::MetricsRegistry::Global().GetCounter("tree.invariant_checks")->Add(1);
  bool ok = true;
  if constexpr (requires { t.CheckInvariants(why); }) {
    ok = t.CheckInvariants(why);
  } else if constexpr (requires { t.CheckConsistency(why); }) {
    ok = t.CheckConsistency(why);
  }
  if (!ok) {
    obs::MetricsRegistry::Global()
        .GetCounter("tree.invariant_failures")
        ->Add(1);
  }
  return ok;
}

/// Drains a tree's vector-based RangeScan into a visitor callback.
template <typename TreeT, typename KeyArg, typename Callback>
size_t ScanInto(TreeT& tree, KeyArg start, size_t limit,
                const Callback& cb) {
  if constexpr (requires(std::vector<std::pair<uint64_t, uint64_t>>* out) {
                  tree.RangeScan(start, limit, out);
                }) {
    std::vector<std::pair<uint64_t, uint64_t>> out;
    tree.RangeScan(start, limit, &out);
    size_t n = 0;
    for (const auto& [k, v] : out) {
      ++n;
      if (!cb(k, v)) break;
    }
    return n;
  } else if constexpr (requires(
                           std::vector<std::pair<std::string, uint64_t>>*
                               out) {
                         tree.RangeScan(start, limit, out);
                       }) {
    std::vector<std::pair<std::string, uint64_t>> out;
    tree.RangeScan(start, limit, &out);
    size_t n = 0;
    for (const auto& [k, v] : out) {
      ++n;
      if (!cb(std::string_view(k), v)) break;
    }
    return n;
  } else {
    (void)tree;
    (void)start;
    (void)limit;
    (void)cb;
    return 0;
  }
}

/// Wraps a single-threaded tree; optionally adds a global read/write lock
/// so concurrent applications can drive it (the paper does exactly this in
/// memcached: "global locks for non-concurrent trees").
template <typename TreeT, typename KeyArg>
class LockedAdapter {
 public:
  template <typename... Args>
  explicit LockedAdapter(bool lock, Args&&... args)
      : lock_(lock), tree_(std::forward<Args>(args)...) {}

  bool Find(KeyArg key, uint64_t* value) {
    if (!lock_) return tree_.Find(key, value);
    std::shared_lock<std::shared_mutex> l(mu_);
    return tree_.Find(key, value);
  }
  bool Insert(KeyArg key, uint64_t value) {
    if (!lock_) return tree_.Insert(key, value);
    std::unique_lock<std::shared_mutex> l(mu_);
    return tree_.Insert(key, value);
  }
  bool Update(KeyArg key, uint64_t value) {
    if (!lock_) return tree_.Update(key, value);
    std::unique_lock<std::shared_mutex> l(mu_);
    return tree_.Update(key, value);
  }
  bool Erase(KeyArg key) {
    if (!lock_) return tree_.Erase(key);
    std::unique_lock<std::shared_mutex> l(mu_);
    return tree_.Erase(key);
  }
  template <typename Callback>
  size_t RangeScan(KeyArg start, size_t limit, const Callback& cb) {
    if (!lock_) return ScanInto(tree_, start, limit, cb);
    std::shared_lock<std::shared_mutex> l(mu_);
    return ScanInto(tree_, start, limit, cb);
  }

  TreeT& tree() { return tree_; }
  const TreeT& tree() const { return tree_; }

 private:
  bool lock_;
  std::shared_mutex mu_;
  TreeT tree_;
};

}  // namespace internal

/// Fixed-key adapter for any tree exposing the common tree API.
template <typename TreeT>
class FixedAdapter : public KVIndex {
 public:
  template <typename... Args>
  explicit FixedAdapter(bool locked, Args&&... args)
      : locked_(locked), impl_(locked, std::forward<Args>(args)...) {}

  bool Find(uint64_t key, uint64_t* value) override {
    return impl_.Find(key, value);
  }
  bool Insert(uint64_t key, uint64_t value) override {
    return impl_.Insert(key, value);
  }
  bool Update(uint64_t key, uint64_t value) override {
    return impl_.Update(key, value);
  }
  bool Erase(uint64_t key) override { return impl_.Erase(key); }
  size_t RangeScan(uint64_t start, size_t limit,
                   const ScanCallback& cb) override {
    return impl_.RangeScan(start, limit, cb);
  }
  size_t Size() const override { return impl_.tree().Size(); }
  uint64_t DramBytes() const override { return impl_.tree().DramBytes(); }
  uint64_t ScmBytes() const override {
    if constexpr (requires(const TreeT& t) { t.ScmBytes(); }) {
      return impl_.tree().ScmBytes();
    } else {
      return 0;  // fully transient tree
    }
  }
  uint64_t RecoveryNanos() const override {
    if constexpr (requires(const TreeT& t) { t.last_recovery_nanos(); }) {
      return impl_.tree().last_recovery_nanos();
    } else {
      return 0;
    }
  }
  obs::Snapshot Stats() const override {
    return internal::TreeSnapshot(impl_.tree());
  }
  bool concurrent() const override { return locked_; }
  bool CheckInvariants(std::string* why) override {
    return internal::RunInvariantCheck(impl_.tree(), why);
  }

  TreeT& tree() { return impl_.tree(); }

 private:
  bool locked_;
  internal::LockedAdapter<TreeT, uint64_t> impl_;
};

/// Var-key adapter.
template <typename TreeT>
class VarAdapter : public VarIndex {
 public:
  template <typename... Args>
  explicit VarAdapter(bool locked, Args&&... args)
      : locked_(locked), impl_(locked, std::forward<Args>(args)...) {}

  bool Find(std::string_view key, uint64_t* value) override {
    return impl_.Find(key, value);
  }
  bool Insert(std::string_view key, uint64_t value) override {
    return impl_.Insert(key, value);
  }
  bool Update(std::string_view key, uint64_t value) override {
    return impl_.Update(key, value);
  }
  bool Erase(std::string_view key) override { return impl_.Erase(key); }
  size_t RangeScan(std::string_view start, size_t limit,
                   const ScanCallback& cb) override {
    return impl_.RangeScan(start, limit, cb);
  }
  size_t Size() const override { return impl_.tree().Size(); }
  uint64_t DramBytes() const override { return impl_.tree().DramBytes(); }
  uint64_t ScmBytes() const override { return impl_.tree().ScmBytes(); }
  uint64_t RecoveryNanos() const override {
    if constexpr (requires(const TreeT& t) { t.last_recovery_nanos(); }) {
      return impl_.tree().last_recovery_nanos();
    } else {
      return 0;
    }
  }
  obs::Snapshot Stats() const override {
    return internal::TreeSnapshot(impl_.tree());
  }
  bool concurrent() const override { return locked_; }
  bool CheckInvariants(std::string* why) override {
    return internal::RunInvariantCheck(impl_.tree(), why);
  }

  TreeT& tree() { return impl_.tree(); }

 private:
  bool locked_;
  internal::LockedAdapter<TreeT, std::string_view> impl_;
};

/// Adapter for internally concurrent trees (no extra lock).
template <typename TreeT, typename Base, typename KeyArg>
class ConcurrentAdapter : public Base {
 public:
  template <typename... Args>
  explicit ConcurrentAdapter(Args&&... args)
      : tree_(std::forward<Args>(args)...) {}

  bool Find(KeyArg key, uint64_t* value) override {
    return tree_.Find(key, value);
  }
  bool Insert(KeyArg key, uint64_t value) override {
    return tree_.Insert(key, value);
  }
  bool Update(KeyArg key, uint64_t value) override {
    return tree_.Update(key, value);
  }
  bool Erase(KeyArg key) override { return tree_.Erase(key); }
  size_t RangeScan(KeyArg start, size_t limit,
                   const typename Base::ScanCallback& cb) override {
    return internal::ScanInto(tree_, start, limit, cb);
  }
  size_t Size() const override { return tree_.Size(); }
  uint64_t DramBytes() const override { return tree_.DramBytes(); }
  uint64_t ScmBytes() const override { return tree_.ScmBytes(); }
  uint64_t RecoveryNanos() const override {
    if constexpr (requires(const TreeT& t) { t.last_recovery_nanos(); }) {
      return tree_.last_recovery_nanos();
    } else {
      return 0;
    }
  }
  obs::Snapshot Stats() const override {
    return internal::TreeSnapshot(tree_);
  }
  bool concurrent() const override { return true; }
  bool CheckInvariants(std::string* why) override {
    return internal::RunInvariantCheck(tree_, why);
  }

  TreeT& tree() { return tree_; }

 private:
  TreeT tree_;
};

// Update() on the plain concurrent NV-Tree adapter works out of the box.

/// Transient STX B+-Tree over std::string keys (STXTreeVar).
class STXVarTree {
 public:
  explicit STXVarTree(scm::Pool* /*unused*/ = nullptr) {}

  bool Find(std::string_view k, uint64_t* v) {
    return tree_.Find(std::string(k), v);
  }
  bool Insert(std::string_view k, uint64_t v) {
    return tree_.Insert(std::string(k), v);
  }
  bool Update(std::string_view k, uint64_t v) {
    return tree_.Update(std::string(k), v);
  }
  bool Erase(std::string_view k) { return tree_.Erase(std::string(k)); }
  void RangeScan(std::string_view start, size_t limit,
                 std::vector<std::pair<std::string, uint64_t>>* out) {
    tree_.RangeScan(std::string(start), limit, out);
  }
  size_t Size() const { return tree_.Size(); }
  uint64_t DramBytes() const { return tree_.DramBytes(); }
  uint64_t ScmBytes() const { return 0; }

 private:
  baselines::STXTree<std::string, uint64_t, 8, 8> tree_;
};

/// Sharded hash map — the "vanilla memcached hash table" reference of
/// Fig. 13. Fully transient and internally concurrent.
class ShardedHashMap : public VarIndex {
 public:
  static constexpr size_t kShards = 64;

  bool Find(std::string_view key, uint64_t* value) override {
    Shard& s = ShardFor(key);
    std::shared_lock<std::shared_mutex> l(s.mu);
    auto it = s.map.find(std::string(key));
    if (it == s.map.end()) return false;
    *value = it->second;
    return true;
  }
  bool Insert(std::string_view key, uint64_t value) override {
    Shard& s = ShardFor(key);
    std::unique_lock<std::shared_mutex> l(s.mu);
    return s.map.emplace(std::string(key), value).second;
  }
  bool Update(std::string_view key, uint64_t value) override {
    Shard& s = ShardFor(key);
    std::unique_lock<std::shared_mutex> l(s.mu);
    auto it = s.map.find(std::string(key));
    if (it == s.map.end()) return false;
    it->second = value;
    return true;
  }
  bool Erase(std::string_view key) override {
    Shard& s = ShardFor(key);
    std::unique_lock<std::shared_mutex> l(s.mu);
    return s.map.erase(std::string(key)) == 1;
  }
  size_t RangeScan(std::string_view /*start*/, size_t /*limit*/,
                   const ScanCallback& /*cb*/) override {
    return 0;  // unordered index: ordered scans unsupported
  }
  size_t Size() const override {
    size_t n = 0;
    for (auto& s : shards_) {
      std::shared_lock<std::shared_mutex> l(s.mu);
      n += s.map.size();
    }
    return n;
  }
  uint64_t DramBytes() const override {
    uint64_t n = 0;
    for (auto& s : shards_) n += s.map.size() * 64;
    return n;
  }
  uint64_t ScmBytes() const override { return 0; }
  obs::Snapshot Stats() const override {
    obs::Snapshot s;
    s.gauges["index.size"] = Size();
    s.gauges["index.dram_bytes"] = DramBytes();
    s.gauges["index.scm_bytes"] = 0;
    return s;
  }
  bool concurrent() const override { return true; }

 private:
  struct Shard {
    std::shared_mutex mu;
    std::unordered_map<std::string, uint64_t> map;
  };
  Shard& ShardFor(std::string_view key) {
    return shards_[HashBytes(key.data(), key.size()) % kShards];
  }
  mutable Shard shards_[kShards];
};

// ---------------------------------------------------------------------------
// Self-registering factory (definitions in kv_index.cc).

/// Registry of index constructors keyed by tree name. Implementations
/// register at static-init time from kv_index.cc; callers go through
/// MakeFixedIndex()/MakeVarIndex() or enumerate with the List functions.
class IndexRegistry {
 public:
  using FixedFactory =
      std::function<std::unique_ptr<KVIndex>(scm::Pool* pool, bool locked)>;
  using VarFactory =
      std::function<std::unique_ptr<VarIndex>(scm::Pool* pool, bool locked)>;

  static IndexRegistry& Instance();

  void RegisterFixed(const std::string& name, FixedFactory f);
  void RegisterVar(const std::string& name, VarFactory f);

  std::unique_ptr<KVIndex> MakeFixed(const std::string& name, scm::Pool* pool,
                                     bool locked) const;
  std::unique_ptr<VarIndex> MakeVar(const std::string& name, scm::Pool* pool,
                                    bool locked) const;

  /// Sorted registered names.
  std::vector<std::string> FixedNames() const;
  std::vector<std::string> VarNames() const;

 private:
  IndexRegistry() = default;
  std::unordered_map<std::string, FixedFactory> fixed_;
  std::unordered_map<std::string, VarFactory> var_;
};

/// Sorted names of every registered fixed-key index (for --tree=all).
std::vector<std::string> ListFixedIndexNames();

/// Sorted names of every registered var-key index.
std::vector<std::string> ListVarIndexNames();

/// Creates a fixed-key index by tree name; nullptr for unknown names.
/// Pool-backed trees attach to `pool`; "stx" ignores it. When `locked` is
/// set, single-threaded trees get a global read/write lock (the paper's
/// memcached arrangement). Registered names: fptree, fptree-nogroups,
/// ptree, wbtree, nvtree, stx, fptree-c, fptree-c-lock (global-lock HTM
/// ablation), nvtree-c.
std::unique_ptr<KVIndex> MakeFixedIndex(const std::string& name,
                                        scm::Pool* pool, bool locked = false);

/// Creates a var-key index by name: fptree-var, ptree-var, stx-var,
/// fptree-c-var, hashmap.
std::unique_ptr<VarIndex> MakeVarIndex(const std::string& name,
                                       scm::Pool* pool, bool locked = false);

}  // namespace index
}  // namespace fptree
