// Copyright (c) FPTree reproduction authors.
//
// Per-thread counters of simulated-SCM events. Benchmarks read these to
// report, e.g., SCM misses per Find (paper §6.2 observes the FPTree Find
// costs ≈ 2 SCM cache misses) and flushes per insert.

#pragma once

#include <atomic>
#include <cstdint>

namespace fptree {
namespace scm {

/// \brief Event counters. Thread-local instances are aggregated into a
/// global total when threads call FlushThreadStats() (or transparently via
/// the thread-local destructor).
struct StatsCounters {
  uint64_t scm_read_misses = 0;   ///< cache-line reads charged SCM latency
  uint64_t scm_read_hits = 0;     ///< cache-line reads served by the model LLC
  uint64_t flushed_lines = 0;     ///< cache lines flushed by Persist()
  uint64_t fences = 0;            ///< memory fences issued
  uint64_t allocations = 0;       ///< persistent allocations
  uint64_t deallocations = 0;     ///< persistent deallocations

  void Add(const StatsCounters& o) {
    scm_read_misses += o.scm_read_misses;
    scm_read_hits += o.scm_read_hits;
    flushed_lines += o.flushed_lines;
    fences += o.fences;
    allocations += o.allocations;
    deallocations += o.deallocations;
  }
  void Clear() { *this = StatsCounters{}; }
};

namespace internal {
inline thread_local StatsCounters tls_stats;
}  // namespace internal

/// Returns this thread's counters (mutable).
inline StatsCounters& ThreadStats() { return internal::tls_stats; }

/// Clears this thread's counters.
inline void ClearThreadStats() { internal::tls_stats.Clear(); }

}  // namespace scm
}  // namespace fptree
