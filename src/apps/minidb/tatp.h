// Copyright (c) FPTree reproduction authors.
//
// TATP benchmark driver (read-only query subset, paper §6.4): the standard
// mix normalized over its three read-only transactions —
// GET_SUBSCRIBER_DATA (35%), GET_NEW_DESTINATION (10%), GET_ACCESS_DATA
// (35%) — i.e. 43.75% / 12.5% / 43.75% of the read-only stream.

#pragma once

#include <cstdint>

#include "apps/minidb/minidb.h"

namespace fptree {
namespace apps {

struct TatpResult {
  uint64_t transactions = 0;
  uint64_t hits = 0;
  double seconds = 0;

  double TxPerSecond() const {
    return seconds == 0 ? 0 : static_cast<double>(transactions) / seconds;
  }
};

class TatpWorkload {
 public:
  explicit TatpWorkload(MiniDb* db) : db_(db) {}

  /// Runs `n_tx` read-only transactions over `clients` threads. When
  /// `metrics_dump_every` is non-zero, one client emits the database's
  /// metrics JSON to stderr every that-many of its transactions.
  TatpResult Run(uint64_t n_tx, uint32_t clients,
                 uint64_t metrics_dump_every = 0);

 private:
  MiniDb* db_;
};

}  // namespace apps
}  // namespace fptree
