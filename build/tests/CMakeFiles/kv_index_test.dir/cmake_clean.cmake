file(REMOVE_RECURSE
  "CMakeFiles/kv_index_test.dir/kv_index_test.cc.o"
  "CMakeFiles/kv_index_test.dir/kv_index_test.cc.o.d"
  "kv_index_test"
  "kv_index_test.pdb"
  "kv_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
