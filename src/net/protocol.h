// Copyright (c) FPTree reproduction authors.
//
// Wire protocol of the FPTree KV server (DESIGN.md §9): compact
// little-endian length-prefixed frames, designed for pipelining — a client
// may write any number of request frames back-to-back and the server emits
// exactly one response frame per request, strictly in request order, so no
// request ids are needed.
//
//   Request:  [u32 body_len][u8 op][payload...]      (body_len = 1 + payload)
//     PUT  (1): [u32 klen][key bytes][u64 value]     upsert, always OK
//     GET  (2): [u32 klen][key bytes]
//     DEL  (3): [u32 klen][key bytes]
//     SCAN (4): [u32 klen][start key][u32 limit]     ordered, ascending
//     UPSERT(5):[u32 klen][key bytes][u64 value]     like PUT, but the OK
//               response reports whether the key was inserted or replaced
//     MGET (6): [u32 count] count*([u32 klen][key bytes])
//     MPUT (7): [u32 count] count*([u32 klen][key bytes][u64 value])
//               upsert semantics per key (like PUT), one frame per batch;
//               count <= kMaxBatchOps and the frame must fit kMaxFrameBody
//   Response: [u32 body_len][u8 status][payload...]
//     status: 0 OK, 1 NOT_FOUND, 2 BAD_REQUEST, 3 NO_SPACE
//     NO_SPACE is always status-only: the backing pool (or the owning
//     shard's pool) is full. Reads, deletes and scans on the same
//     connection keep succeeding; an MPUT answered NO_SPACE durably
//     applied a strict input prefix of its batch.
//     GET OK:  [u64 value]
//     UPSERT OK: [u64 inserted]   (1 = newly inserted, 0 = replaced)
//     SCAN OK: [u32 count] then count * ([u32 klen][key bytes][u64 value])
//     MGET OK: [u32 count] then count * ([u8 found][u64 value]) in request
//              key order (value is 0 when found = 0)
//     MPUT OK: [u32 count] then count * [u8 inserted] in request key order
//
// Decoders are incremental (kNeedMore on a partial frame) and defensive:
// any frame violating the body/key/limit bounds decodes to kError and the
// server answers BAD_REQUEST, then closes the connection. Batch response
// layouts collide with the size-based guessing DecodeResponse uses, so
// pipelined clients that mix ops use DecodeResponseFor with the expected
// op kind (responses arrive strictly in request order, so a FIFO of queued
// op kinds is enough — see net::Client).

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fptree {
namespace net {

enum class Op : uint8_t {
  kPut = 1,
  kGet = 2,
  kDel = 3,
  kScan = 4,
  kUpsert = 5,
  kMget = 6,
  kMput = 7,
};

enum class RespStatus : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kBadRequest = 2,
  /// The shard owning the key's pool is out of SCM space (DESIGN.md §12).
  /// Writes (PUT/UPSERT/MPUT) degrade to this status-only response; the
  /// connection stays open and GET/DEL/SCAN keep working. An MPUT answered
  /// kNoSpace applied a strict input prefix of the batch durably.
  kNoSpace = 3,
};

/// Upper bound on one frame body; anything larger is a protocol error.
constexpr size_t kMaxFrameBody = size_t{1} << 20;
/// Upper bound on one key.
constexpr size_t kMaxKeyLen = 4096;
/// Server-side cap on a single SCAN's row count.
constexpr uint32_t kMaxScanLimit = 4096;
/// Cap on one MGET/MPUT batch's key count.
constexpr uint32_t kMaxBatchOps = 4096;

/// Parsed request; `key` and the `keys` entries view into the caller's
/// receive buffer and are only valid until that buffer is mutated.
struct Request {
  Op op = Op::kGet;
  std::string_view key;
  uint64_t value = 0;      // PUT payload
  uint32_t scan_limit = 0; // SCAN row cap (pre-clamped to kMaxScanLimit)
  std::vector<std::string_view> keys;  // MGET/MPUT batch keys
  std::vector<uint64_t> values;        // MPUT batch values
};

/// Parsed response (client side). `scan` is only filled for SCAN;
/// `multi_found`/`multi_values` only for MGET (found flag + value per key,
/// request order) and `multi_found` doubles as inserted flags for MPUT.
struct Response {
  RespStatus status = RespStatus::kOk;
  uint64_t value = 0;
  std::vector<std::pair<std::string, uint64_t>> scan;
  std::vector<uint8_t> multi_found;
  std::vector<uint64_t> multi_values;
};

enum class DecodeStatus {
  kNeedMore,  // buffer holds a partial frame; read more bytes
  kOk,        // one frame decoded; *consumed bytes were used
  kError,     // malformed frame; the connection should be dropped
};

// --- little-endian primitives ----------------------------------------------

inline void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

inline void PutU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

inline uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// --- request encoding (client) ---------------------------------------------

inline void EncodePut(std::string* out, std::string_view key, uint64_t value) {
  PutU32(out, static_cast<uint32_t>(1 + 4 + key.size() + 8));
  out->push_back(static_cast<char>(Op::kPut));
  PutU32(out, static_cast<uint32_t>(key.size()));
  out->append(key.data(), key.size());
  PutU64(out, value);
}

inline void EncodeUpsert(std::string* out, std::string_view key,
                         uint64_t value) {
  PutU32(out, static_cast<uint32_t>(1 + 4 + key.size() + 8));
  out->push_back(static_cast<char>(Op::kUpsert));
  PutU32(out, static_cast<uint32_t>(key.size()));
  out->append(key.data(), key.size());
  PutU64(out, value);
}

inline void EncodeGet(std::string* out, std::string_view key) {
  PutU32(out, static_cast<uint32_t>(1 + 4 + key.size()));
  out->push_back(static_cast<char>(Op::kGet));
  PutU32(out, static_cast<uint32_t>(key.size()));
  out->append(key.data(), key.size());
}

inline void EncodeDel(std::string* out, std::string_view key) {
  PutU32(out, static_cast<uint32_t>(1 + 4 + key.size()));
  out->push_back(static_cast<char>(Op::kDel));
  PutU32(out, static_cast<uint32_t>(key.size()));
  out->append(key.data(), key.size());
}

inline void EncodeScan(std::string* out, std::string_view start,
                       uint32_t limit) {
  PutU32(out, static_cast<uint32_t>(1 + 4 + start.size() + 4));
  out->push_back(static_cast<char>(Op::kScan));
  PutU32(out, static_cast<uint32_t>(start.size()));
  out->append(start.data(), start.size());
  PutU32(out, limit);
}

inline void EncodeMget(std::string* out, const std::string_view* keys,
                       uint32_t count) {
  size_t body = 1 + 4;
  for (uint32_t i = 0; i < count; ++i) body += 4 + keys[i].size();
  PutU32(out, static_cast<uint32_t>(body));
  out->push_back(static_cast<char>(Op::kMget));
  PutU32(out, count);
  for (uint32_t i = 0; i < count; ++i) {
    PutU32(out, static_cast<uint32_t>(keys[i].size()));
    out->append(keys[i].data(), keys[i].size());
  }
}

inline void EncodeMput(std::string* out, const std::string_view* keys,
                       const uint64_t* values, uint32_t count) {
  size_t body = 1 + 4;
  for (uint32_t i = 0; i < count; ++i) body += 4 + keys[i].size() + 8;
  PutU32(out, static_cast<uint32_t>(body));
  out->push_back(static_cast<char>(Op::kMput));
  PutU32(out, count);
  for (uint32_t i = 0; i < count; ++i) {
    PutU32(out, static_cast<uint32_t>(keys[i].size()));
    out->append(keys[i].data(), keys[i].size());
    PutU64(out, values[i]);
  }
}

// --- request decoding (server) ---------------------------------------------

inline DecodeStatus DecodeRequest(const char* data, size_t len, Request* req,
                                  size_t* consumed) {
  if (len < 4) return DecodeStatus::kNeedMore;
  uint32_t body = LoadU32(data);
  if (body < 1 + 4 || body > kMaxFrameBody) return DecodeStatus::kError;
  if (len < 4 + body) return DecodeStatus::kNeedMore;
  const char* p = data + 4;
  uint8_t op = static_cast<uint8_t>(*p);
  // Batch frames carry a count, not a klen, after the op byte.
  if (op == static_cast<uint8_t>(Op::kMget) ||
      op == static_cast<uint8_t>(Op::kMput)) {
    const bool mput = op == static_cast<uint8_t>(Op::kMput);
    const char* q = p + 1;
    const char* end = p + body;
    if (q + 4 > end) return DecodeStatus::kError;
    uint32_t count = LoadU32(q);
    q += 4;
    if (count > kMaxBatchOps) return DecodeStatus::kError;
    req->op = mput ? Op::kMput : Op::kMget;
    req->keys.clear();
    req->values.clear();
    req->keys.reserve(count);
    if (mput) req->values.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      if (q + 4 > end) return DecodeStatus::kError;
      uint32_t bklen = LoadU32(q);
      if (bklen > kMaxKeyLen) return DecodeStatus::kError;
      size_t need = 4 + static_cast<size_t>(bklen) + (mput ? 8 : 0);
      if (static_cast<size_t>(end - q) < need) return DecodeStatus::kError;
      req->keys.emplace_back(q + 4, bklen);
      if (mput) req->values.push_back(LoadU64(q + 4 + bklen));
      q += need;
    }
    if (q != end) return DecodeStatus::kError;
    *consumed = 4 + body;
    return DecodeStatus::kOk;
  }
  uint32_t klen = LoadU32(p + 1);
  if (klen > kMaxKeyLen || 1 + 4 + static_cast<size_t>(klen) > body) {
    return DecodeStatus::kError;
  }
  req->key = std::string_view(p + 1 + 4, klen);
  size_t tail = body - 1 - 4 - klen;  // bytes after the key
  switch (op) {
    case static_cast<uint8_t>(Op::kPut):
    case static_cast<uint8_t>(Op::kUpsert):
      if (tail != 8) return DecodeStatus::kError;
      req->op = static_cast<Op>(op);
      req->value = LoadU64(p + 1 + 4 + klen);
      break;
    case static_cast<uint8_t>(Op::kGet):
    case static_cast<uint8_t>(Op::kDel):
      if (tail != 0) return DecodeStatus::kError;
      req->op = static_cast<Op>(op);
      break;
    case static_cast<uint8_t>(Op::kScan): {
      if (tail != 4) return DecodeStatus::kError;
      req->op = Op::kScan;
      uint32_t limit = LoadU32(p + 1 + 4 + klen);
      req->scan_limit = limit > kMaxScanLimit ? kMaxScanLimit : limit;
      break;
    }
    default:
      return DecodeStatus::kError;
  }
  *consumed = 4 + body;
  return DecodeStatus::kOk;
}

// --- response encoding (server) --------------------------------------------

/// Status-only response (PUT, DEL, errors).
inline void EncodeStatusResponse(std::string* out, RespStatus st) {
  PutU32(out, 1);
  out->push_back(static_cast<char>(st));
}

/// GET response carrying a value.
inline void EncodeValueResponse(std::string* out, uint64_t value) {
  PutU32(out, 1 + 8);
  out->push_back(static_cast<char>(RespStatus::kOk));
  PutU64(out, value);
}

/// SCAN response. `rows` are (key, value) in ascending key order.
inline void EncodeScanResponse(
    std::string* out,
    const std::vector<std::pair<std::string, uint64_t>>& rows) {
  size_t body = 1 + 4;
  for (const auto& [k, v] : rows) body += 4 + k.size() + 8;
  PutU32(out, static_cast<uint32_t>(body));
  out->push_back(static_cast<char>(RespStatus::kOk));
  PutU32(out, static_cast<uint32_t>(rows.size()));
  for (const auto& [k, v] : rows) {
    PutU32(out, static_cast<uint32_t>(k.size()));
    out->append(k);
    PutU64(out, v);
  }
}

/// MGET response: one (found, value) pair per requested key, request order.
/// A missed key encodes value 0.
inline void EncodeMgetResponse(std::string* out, const uint8_t* found,
                               const uint64_t* values, uint32_t count) {
  PutU32(out, static_cast<uint32_t>(1 + 4 + size_t{count} * 9));
  out->push_back(static_cast<char>(RespStatus::kOk));
  PutU32(out, count);
  for (uint32_t i = 0; i < count; ++i) {
    out->push_back(static_cast<char>(found[i] ? 1 : 0));
    PutU64(out, found[i] ? values[i] : 0);
  }
}

/// MPUT response: one inserted flag per key, request order.
inline void EncodeMputResponse(std::string* out, const uint8_t* inserted,
                               uint32_t count) {
  PutU32(out, static_cast<uint32_t>(1 + 4 + size_t{count}));
  out->push_back(static_cast<char>(RespStatus::kOk));
  PutU32(out, count);
  for (uint32_t i = 0; i < count; ++i) {
    out->push_back(static_cast<char>(inserted[i] ? 1 : 0));
  }
}

// --- response decoding (client) --------------------------------------------

inline DecodeStatus DecodeResponse(const char* data, size_t len,
                                   Response* resp, size_t* consumed) {
  if (len < 4) return DecodeStatus::kNeedMore;
  uint32_t body = LoadU32(data);
  if (body < 1 || body > kMaxFrameBody) return DecodeStatus::kError;
  if (len < 4 + body) return DecodeStatus::kNeedMore;
  const char* p = data + 4;
  resp->status = static_cast<RespStatus>(*p);
  resp->value = 0;
  resp->scan.clear();
  if (body == 1 + 8) {
    resp->value = LoadU64(p + 1);
  } else if (body >= 1 + 4) {
    uint32_t count = LoadU32(p + 1);
    const char* q = p + 1 + 4;
    const char* end = p + body;
    resp->scan.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      if (q + 4 > end) return DecodeStatus::kError;
      uint32_t klen = LoadU32(q);
      if (klen > kMaxKeyLen || q + 4 + klen + 8 > end) {
        return DecodeStatus::kError;
      }
      resp->scan.emplace_back(std::string(q + 4, klen),
                              LoadU64(q + 4 + klen));
      q += 4 + klen + 8;
    }
  }
  *consumed = 4 + body;
  return DecodeStatus::kOk;
}

/// Op-aware response decoder. MGET and MPUT response bodies are ambiguous
/// against SCAN under the size-based guessing above, so a client that can
/// pipeline batch ops must decode with the op it queued (responses arrive
/// strictly in request order; net::Client keeps a FIFO of queued ops).
inline DecodeStatus DecodeResponseFor(Op expected, const char* data,
                                      size_t len, Response* resp,
                                      size_t* consumed) {
  if (len < 4) return DecodeStatus::kNeedMore;
  uint32_t body = LoadU32(data);
  if (body < 1 || body > kMaxFrameBody) return DecodeStatus::kError;
  if (len < 4 + body) return DecodeStatus::kNeedMore;
  const char* p = data + 4;
  resp->status = static_cast<RespStatus>(*p);
  resp->value = 0;
  resp->scan.clear();
  resp->multi_found.clear();
  resp->multi_values.clear();
  const char* q = p + 1;
  const char* end = p + body;
  switch (expected) {
    case Op::kGet:
    case Op::kUpsert:
      if (body == 1 + 8) resp->value = LoadU64(q);
      break;
    case Op::kPut:
    case Op::kDel:
      break;  // status-only
    case Op::kScan: {
      if (body < 1 + 4) break;  // e.g. BAD_REQUEST
      uint32_t count = LoadU32(q);
      q += 4;
      resp->scan.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        if (q + 4 > end) return DecodeStatus::kError;
        uint32_t klen = LoadU32(q);
        if (klen > kMaxKeyLen ||
            static_cast<size_t>(end - q) < 4 + size_t{klen} + 8) {
          return DecodeStatus::kError;
        }
        resp->scan.emplace_back(std::string(q + 4, klen),
                                LoadU64(q + 4 + klen));
        q += 4 + klen + 8;
      }
      break;
    }
    case Op::kMget: {
      if (body < 1 + 4) break;
      uint32_t count = LoadU32(q);
      q += 4;
      if (count > kMaxBatchOps ||
          static_cast<size_t>(end - q) != size_t{count} * 9) {
        return DecodeStatus::kError;
      }
      resp->multi_found.reserve(count);
      resp->multi_values.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        resp->multi_found.push_back(static_cast<uint8_t>(*q));
        resp->multi_values.push_back(LoadU64(q + 1));
        q += 9;
      }
      break;
    }
    case Op::kMput: {
      if (body < 1 + 4) break;
      uint32_t count = LoadU32(q);
      q += 4;
      if (count > kMaxBatchOps ||
          static_cast<size_t>(end - q) != size_t{count}) {
        return DecodeStatus::kError;
      }
      resp->multi_found.assign(reinterpret_cast<const uint8_t*>(q),
                               reinterpret_cast<const uint8_t*>(q) + count);
      break;
    }
  }
  *consumed = 4 + body;
  return DecodeStatus::kOk;
}

}  // namespace net
}  // namespace fptree
