// Property-style randomized crash fuzzing (parameterized over seeds):
// run a random operation trace against the FPTree, crash at a randomly
// armed crash point every few operations, recover, and assert the global
// invariants — per-key atomicity, structural consistency, and zero
// persistent leaks — after every single recovery. This sweeps crash-point
// combinations that the targeted per-window tests cannot enumerate.

#include <gtest/gtest.h>

#include <map>

#include "core/fptree.h"
#include "core/fptree_var.h"
#include "crash_test_util.h"
#include "scm/crash.h"
#include "scm/latency.h"
#include "util/random.h"

namespace fptree {
namespace core {
namespace {

using scm::CrashException;
using scm::CrashSim;
using scm::Pool;
using testutil::FuzzSeeds;
using testutil::TestPath;

// Every named crash point in the fixed-key FPTree + allocator stack.
const char* const kAllPoints[] = {
    "fptree.insert.before_bitmap", "fptree.insert.after_bitmap",
    "fptree.update.before_bitmap", "fptree.update.after_bitmap",
    "fptree.erase.after_bitmap",   "fptree.split.logged",
    "fptree.split.allocated",      "fptree.split.copied",
    "fptree.split.new_bitmap",     "fptree.split.old_bitmap",
    "fptree.split.linked",         "fptree.delete.logged",
    "fptree.delete.head_updated",  "fptree.delete.prev_logged",
    "fptree.delete.unlinked",      "fptree.delete.bitmap_cleared",
    "fptree.getleaf.allocated",    "fptree.getleaf.initialized",
    "fptree.getleaf.linked",       "fptree.getleaf.tail_updated",
    "fptree.freeleaf.logged",      "fptree.freeleaf.head_updated",
    "fptree.freeleaf.prev_logged", "fptree.freeleaf.unlinked",
    "fptree.freeleaf.tail_updated", "fptree.freeleaf.deallocated",
    "palloc.alloc.logged",         "palloc.alloc.block_chosen",
    "palloc.alloc.header_marked",  "palloc.alloc.top_bumped",
    "palloc.alloc.delivered",      "palloc.dealloc.logged",
    "palloc.dealloc.nulled",       "palloc.dealloc.freed",
};

class CrashFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashFuzzTest, RandomTraceWithRandomCrashes) {
  scm::LatencyModel::Disable();
  std::string path =
      TestPath("fuzz" + std::to_string(GetParam()));
  Pool::Destroy(path).ok();
  Pool::Options opts{.size = 128u << 20, .randomize_base = true};
  std::unique_ptr<Pool> pool;
  ASSERT_TRUE(Pool::Create(path, 1, opts, &pool).ok());
  using Tree = FPTree<uint64_t, 8, 8, true, 4>;
  auto tree = std::make_unique<Tree>(pool.get());
  CrashSim::Enable();

  Random64 rng(GetParam());
  std::map<uint64_t, uint64_t> model;
  int crashes = 0;
  constexpr int kPointCount = sizeof(kAllPoints) / sizeof(kAllPoints[0]);

  for (int step = 0; step < 500; ++step) {
    // Periodically arm a random crash point with a random countdown so
    // crashes hit different occurrences of the same window.
    if (step % 3 == 0) {
      CrashSim::ArmCrashPoint(kAllPoints[rng.Uniform(kPointCount)],
                              1 + static_cast<int>(rng.Uniform(3)));
    }
    if (GetParam() % 2 == 0) CrashSim::SetTearMode(true);

    uint64_t key = rng.Uniform(300);
    int op = static_cast<int>(rng.Uniform(3));
    bool crashed = false;
    try {
      switch (op) {
        case 0:
          tree->Insert(key, step);
          break;
        case 1:
          tree->Update(key, step);
          break;
        default:
          tree->Erase(key);
          break;
      }
    } catch (const CrashException&) {
      crashed = true;
    }
    if (crashed) {
      ++crashes;
      CrashSim::SimulateCrash();
      tree.reset();
      pool.reset();
      ASSERT_TRUE(Pool::Open(path, 1, opts, &pool).ok());
      tree = std::make_unique<Tree>(pool.get());
      CrashSim::Enable();
    } else {
      // Armed points stay armed across steps until they fire, so rare
      // windows (deletes, group management) eventually get hit.
      // Mirror the op into the model only when it completed.
      switch (op) {
        case 0:
          model.emplace(key, step);
          break;
        case 1:
          if (model.count(key)) model[key] = step;
          break;
        default:
          model.erase(key);
          break;
      }
    }
    // After a crash the interrupted op may or may not have applied; adopt
    // the tree's state for that key.
    if (crashed) {
      uint64_t v;
      if (tree->Find(key, &v)) {
        model[key] = v;
      } else {
        model.erase(key);
      }
    }
    // The full invariant sweep (consistency + routing agreement + leak
    // audit) holds after every step.
    std::string why;
    ASSERT_TRUE(tree->CheckInvariants(&why))
        << "step " << step << ": " << why;
  }

  // Full differential check at the end.
  ASSERT_EQ(tree->Size(), model.size());
  for (auto& [k, val] : model) {
    uint64_t v;
    ASSERT_TRUE(tree->Find(k, &v)) << k;
    EXPECT_EQ(v, val) << k;
  }
  EXPECT_GT(crashes, 5) << "fuzz run should actually crash";

  CrashSim::Disable();
  tree.reset();
  pool.reset();
  Pool::Destroy(path).ok();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashFuzzTest,
                         ::testing::Range(uint64_t{1}, 1 + FuzzSeeds(8)));

// Var-key fuzz: exercises key-blob leak windows under random crashes.
class VarCrashFuzzTest : public ::testing::TestWithParam<uint64_t> {};

const char* const kVarPoints[] = {
    "fptreevar.insert.key_allocated", "fptreevar.insert.before_bitmap",
    "fptreevar.insert.after_bitmap",  "fptreevar.update.before_bitmap",
    "fptreevar.update.aliased",       "fptreevar.update.old_reset",
    "fptreevar.erase.after_bitmap",   "fptreevar.erase.key_freed",
    "fptreevar.split.logged",         "fptreevar.split.allocated",
    "fptreevar.split.copied",         "fptreevar.split.new_bitmap",
    "fptreevar.split.old_bitmap",     "fptreevar.split.linked",
    "palloc.alloc.delivered",         "palloc.dealloc.nulled",
};

TEST_P(VarCrashFuzzTest, RandomTraceWithRandomCrashes) {
  scm::LatencyModel::Disable();
  std::string path = TestPath("vfuzz" + std::to_string(GetParam()));
  Pool::Destroy(path).ok();
  Pool::Options opts{.size = 128u << 20, .randomize_base = true};
  std::unique_ptr<Pool> pool;
  ASSERT_TRUE(Pool::Create(path, 1, opts, &pool).ok());
  using Tree = FPTreeVar<uint64_t, 8, 8>;
  auto tree = std::make_unique<Tree>(pool.get());
  CrashSim::Enable();

  Random64 rng(GetParam() * 31 + 5);
  std::map<std::string, uint64_t> model;
  int crashes = 0;
  constexpr int kPointCount = sizeof(kVarPoints) / sizeof(kVarPoints[0]);
  for (int step = 0; step < 300; ++step) {
    if (step % 3 == 0) {
      CrashSim::ArmCrashPoint(kVarPoints[rng.Uniform(kPointCount)],
                              1 + static_cast<int>(rng.Uniform(2)));
    }
    std::string key = testutil::VarKey(rng.Uniform(200));
    int op = static_cast<int>(rng.Uniform(3));
    bool crashed = false;
    try {
      switch (op) {
        case 0:
          tree->Insert(key, step);
          break;
        case 1:
          tree->Update(key, step);
          break;
        default:
          tree->Erase(key);
          break;
      }
    } catch (const CrashException&) {
      crashed = true;
    }
    if (crashed) {
      ++crashes;
      CrashSim::SimulateCrash();
      tree.reset();
      pool.reset();
      ASSERT_TRUE(Pool::Open(path, 1, opts, &pool).ok());
      tree = std::make_unique<Tree>(pool.get());
      CrashSim::Enable();
      // The interrupted op may or may not have applied atomically; adopt
      // the recovered state for its key, then keep the model differential.
      uint64_t v;
      if (tree->Find(key, &v)) {
        model[key] = v;
      } else {
        model.erase(key);
      }
    } else {
      switch (op) {
        case 0:
          model.emplace(key, step);
          break;
        case 1:
          if (model.count(key)) model[key] = step;
          break;
        default:
          model.erase(key);
          break;
      }
    }
    std::string why;
    ASSERT_TRUE(tree->CheckInvariants(&why))
        << "step " << step << ": " << why;
  }
  EXPECT_GT(crashes, 2);

  // Full differential check at the end.
  ASSERT_EQ(tree->Size(), model.size());
  for (auto& [k, val] : model) {
    uint64_t v;
    ASSERT_TRUE(tree->Find(k, &v)) << k;
    EXPECT_EQ(v, val) << k;
  }

  CrashSim::Disable();
  tree.reset();
  pool.reset();
  Pool::Destroy(path).ok();
}

INSTANTIATE_TEST_SUITE_P(Seeds, VarCrashFuzzTest,
                         ::testing::Range(uint64_t{1}, 1 + FuzzSeeds(5)));

}  // namespace
}  // namespace core
}  // namespace fptree
