// Copyright (c) FPTree reproduction authors.

#include "check/history.h"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"

namespace fptree {
namespace check {

namespace {

uint64_t NextRecorderId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

obs::Counter* CapturedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("check.events_captured");
  return c;
}

}  // namespace

// --- ThreadLog --------------------------------------------------------------

void ThreadLog::Spill() {
  spilled_.push_back(std::move(ring_));
  // Recycled chunks keep their pages mapped and warm; a fresh 256 KB
  // allocation per 4096 events would eat a first-touch page fault per
  // ring page, which bench_check_overhead sees. Their stale contents are
  // never cleared — the cursor overwrites slots as it advances and only
  // [0, pos_) is ever drained.
  ring_ = pool_->Take();
  pos_ = 0;
  FlushCounter();
}

uint32_t ThreadLog::Begin(const Event& proto) {
  uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<uint32_t>(open_.size());
    open_.emplace_back();
  }
  OpenOp& op = open_[slot];
  op.used = true;
  op.ev = proto;
  op.ev.tid = tid_;
  op.key.clear();
  op.row_chars.clear();
  op.row_words.clear();
  return slot;
}

uint32_t ThreadLog::BeginVar(const Event& proto, std::string_view key) {
  uint32_t slot = Begin(proto);
  OpenOp& op = open_[slot];
  op.ev.var_key = true;
  op.key.assign(key.data(), key.size());
  return slot;
}

void ThreadLog::AddRowFixed(uint32_t slot, uint64_t key, uint64_t value) {
  OpenOp& op = open_[slot];
  op.row_words.push_back(key);
  op.row_words.push_back(value);
}

void ThreadLog::AddRowVar(uint32_t slot, std::string_view key,
                          uint64_t value) {
  OpenOp& op = open_[slot];
  op.row_words.push_back(op.row_chars.size());
  op.row_words.push_back(key.size());
  op.row_words.push_back(value);
  op.row_chars.append(key.data(), key.size());
}

void ThreadLog::Emit(OpenOp* op, Outcome outcome, uint64_t result,
                     bool stamp_now) {
  Event ev = op->ev;
  ev.outcome = outcome;
  ev.result = result;
  ev.t_resp = stamp_now ? ClockNow() : kPendingTime;
  if (stamp_now) last_resp_ = ev.t_resp;
  if (ev.var_key && !op->key.empty()) {
    ev.key_off = static_cast<uint32_t>(chars_.size());
    ev.key_len = static_cast<uint32_t>(op->key.size());
    chars_ += op->key;
  }
  if (!op->row_words.empty()) {
    ev.rows_off = static_cast<uint32_t>(words_.size());
    if (ev.var_key) {
      // Rebase the row keys' local char offsets into this log's arena.
      uint64_t cbase = chars_.size();
      chars_ += op->row_chars;
      ev.rows_n = static_cast<uint32_t>(op->row_words.size() / 3);
      for (size_t i = 0; i < op->row_words.size(); i += 3) {
        words_.push_back(op->row_words[i] + cbase);
        words_.push_back(op->row_words[i + 1]);
        words_.push_back(op->row_words[i + 2]);
      }
    } else {
      ev.rows_n = static_cast<uint32_t>(op->row_words.size() / 2);
      words_.insert(words_.end(), op->row_words.begin(), op->row_words.end());
    }
  }
  Push(ev);
}

void ThreadLog::End(uint32_t slot, Outcome outcome, uint64_t result) {
  OpenOp& op = open_[slot];
  assert(op.used);
  Emit(&op, outcome, result, outcome != Outcome::kPending);
  op.used = false;
  free_.push_back(slot);
}

void ThreadLog::EndAmbiguous(uint32_t slot) {
  OpenOp& op = open_[slot];
  assert(op.used);
  Emit(&op, Outcome::kPending, 0, /*stamp_now=*/true);
  op.used = false;
  free_.push_back(slot);
}

// --- HistoryRecorder --------------------------------------------------------

HistoryRecorder::HistoryRecorder() : id_(NextRecorderId()) {
  // Eager registration: the counter key must exist in METRICS_JSON even
  // for recorders that are never drained (e.g. a server killed mid-run).
  CapturedCounter();
}

HistoryRecorder::~HistoryRecorder() = default;

ThreadLog* HistoryRecorder::Register() {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t tid = static_cast<uint32_t>(logs_.size());
  logs_.emplace_back(new ThreadLog(tid, &pool_));
  logs_.back()->counter_ = CapturedCounter();
  return logs_.back().get();
}

ThreadLog* HistoryRecorder::LogSlow() {
  thread_local std::unordered_map<uint64_t, ThreadLog*> by_id;
  auto it = by_id.find(id_);
  ThreadLog* log;
  if (it != by_id.end()) {
    log = it->second;
  } else {
    log = Register();
    by_id.emplace(id_, log);
  }
  tl_cached = {id_, log};
  return log;
}

History HistoryRecorder::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  History h;
  size_t total = 0;
  for (const auto& log : logs_) {
    total += log->logged_ + log->open_.size();
  }
  h.events.reserve(total);
  for (auto& logp : logs_) {
    ThreadLog& log = *logp;
    // Still-open slots are operations that never returned (crash unwound
    // past End, or a connection died): drain them as pending.
    for (auto& op : log.open_) {
      if (op.used) log.Emit(&op, Outcome::kPending, 0, /*stamp_now=*/false);
    }
    log.open_.clear();
    log.free_.clear();
    const uint64_t cbase = h.chars.size();
    const uint64_t wbase = h.words.size();
    h.chars += log.chars_;
    h.words.insert(h.words.end(), log.words_.begin(), log.words_.end());
    // Event carries 32-bit arena offsets (it is packed to one cache
    // line); no realistic history gets near them, but fail loudly rather
    // than silently alias if one ever does.
    if (h.chars.size() > UINT32_MAX || h.words.size() > UINT32_MAX) {
      std::fprintf(stderr,
                   "check: drained history exceeds 32-bit arena offsets\n");
      std::abort();
    }
    auto splice = [&](std::vector<Event>& chunk, size_t n) {
      for (size_t i = 0; i < n; ++i) {
        Event ev = chunk[i];
        // Unfenced rdtsc stamps can invert by a few cycles within one
        // thread; clamp so every completed event is a valid interval.
        if (ev.t_resp < ev.t_inv) ev.t_resp = ev.t_inv;
        if (ev.var_key) {
          ev.key_off = static_cast<uint32_t>(ev.key_off + cbase);
        }
        if (ev.rows_n != 0) {
          ev.rows_off = static_cast<uint32_t>(ev.rows_off + wbase);
          if (ev.var_key) {
            // Var scan rows carry char offsets of their own: rebase them
            // from the per-thread arena into the merged one.
            for (uint32_t i = 0; i < ev.rows_n; ++i) {
              h.words[ev.rows_off + 3 * i] += cbase;
            }
          }
        }
        h.events.push_back(ev);
      }
    };
    // Spilled chunks are full by construction (Spill fires only at a full
    // cursor); the live ring is valid up to the cursor.
    for (auto& chunk : log.spilled_) {
      splice(chunk, kRingEvents);
      pool_.Put(std::move(chunk));
    }
    log.spilled_.clear();
    splice(log.ring_, log.pos_);
    log.pos_ = 0;
    log.chars_.clear();
    log.words_.clear();
    log.FlushCounter();
    log.logged_ = 0;
    log.counted_ = 0;
  }
  return h;
}

void HistoryRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& logp : logs_) {
    ThreadLog& log = *logp;
    log.open_.clear();
    log.free_.clear();
    for (auto& chunk : log.spilled_) {
      pool_.Put(std::move(chunk));
    }
    log.spilled_.clear();
    log.pos_ = 0;
    log.chars_.clear();
    log.words_.clear();
    log.FlushCounter();
    log.logged_ = 0;
    log.counted_ = 0;
  }
}

size_t HistoryRecorder::threads_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return logs_.size();
}

HistoryRecorder* GlobalRecorder() {
  static HistoryRecorder* rec = new HistoryRecorder();
  return rec;
}

}  // namespace check
}  // namespace fptree
