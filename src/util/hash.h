// Copyright (c) FPTree reproduction authors.
//
// Hash functions. The one-byte fingerprint hash is the heart of the paper's
// Fingerprinting technique (§4.2): it must be cheap and close to uniform over
// 256 buckets so that the expected number of in-leaf key probes stays ≈ 1.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fptree {

/// \brief 64-bit finalizer (MurmurHash3 fmix64). Full-avalanche: every input
/// bit affects every output bit, so taking the low byte is safe.
inline uint64_t Mix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// \brief FNV-1a over arbitrary bytes, for variable-size (string) keys.
inline uint64_t HashBytes(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

/// \brief One-byte fingerprint of a fixed-size key (paper §4.2).
inline uint8_t Fingerprint(uint64_t key) {
  return static_cast<uint8_t>(Mix64(key) & 0xff);
}

/// \brief One-byte fingerprint of a variable-size key.
inline uint8_t Fingerprint(std::string_view key) {
  return static_cast<uint8_t>(HashBytes(key.data(), key.size()) & 0xff);
}

}  // namespace fptree
