file(REMOVE_RECURSE
  "CMakeFiles/scm_crash_test.dir/scm_crash_test.cc.o"
  "CMakeFiles/scm_crash_test.dir/scm_crash_test.cc.o.d"
  "scm_crash_test"
  "scm_crash_test.pdb"
  "scm_crash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scm_crash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
