// Copyright (c) FPTree reproduction authors.
//
// Crash simulation (substitute for pulling the plug on the paper's
// evaluation machine). Implements exactly the failure model the paper's
// recovery algorithms are written against (§2):
//
//  * a store to SCM is durable only once a Persist() covering its cache
//    lines has executed;
//  * stores of at most 8 aligned bytes are p-atomic; larger stores may be
//    torn at an 8-byte boundary by a crash.
//
// When the simulator is enabled, every store issued through the pmem::*
// helpers logs an undo record with the previous bytes. Persist() retires the
// covered portions of pending records. SimulateCrash() rolls back everything
// still pending — i.e. everything that would have been lost in the CPU
// cache — optionally tearing one large pending store. Afterwards the test
// harness closes and re-opens the pool at a randomized base address and runs
// the data structure's recovery procedure.
//
// Crash points: recovery algorithms are tested by arming named points
// (e.g. "fptree.split.after_alloc") that throw CrashException mid-operation.

#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <string>
#include <vector>

namespace fptree {
namespace scm {

/// \brief Thrown by an armed crash point; unwinds out of the operation under
/// test. The harness then calls CrashSim::SimulateCrash().
class CrashException : public std::exception {
 public:
  explicit CrashException(std::string point) : point_(std::move(point)) {}
  const char* what() const noexcept override { return point_.c_str(); }
  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

class CrashSim {
 public:
  /// Starts shadow-logging all pmem stores. Idempotent.
  static void Enable();

  /// Stops logging and drops all pending records (clean-shutdown semantics).
  static void Disable();

  static bool enabled() { return enabled_flag_; }

  /// Records that `n` bytes at `addr` are about to be overwritten. Called by
  /// pmem::Store* before the actual write.
  static void LogStore(void* addr, size_t n);

  /// Records that [addr, addr+n) was flushed: the covered cache lines become
  /// durable and the covered portions of pending records are retired.
  static void NotifyPersist(const void* addr, size_t n);

  /// The crash: reverts every pending (un-persisted) store, newest first.
  /// If tear mode is on, one pending multi-word store keeps a durable prefix
  /// (simulating a partial write). Also disarms all crash points.
  static void SimulateCrash();

  /// Retires all pending records without reverting (orderly shutdown).
  static void CommitAll();

  /// Number of pending (not-yet-durable) undo records; test introspection.
  static size_t PendingRecords();

  /// When on, SimulateCrash() tears the newest pending store larger than 8
  /// bytes at an 8-byte boundary instead of reverting it entirely.
  static void SetTearMode(bool on);

  // --- Crash points -------------------------------------------------------

  /// Arms `name`: the countdown-th future visit of that point throws.
  static void ArmCrashPoint(const std::string& name, int countdown = 1);

  static void DisarmAll();

  /// Marks a named point in an operation; throws CrashException when armed.
  /// Call through the SCM_CRASH_POINT macro so the check compiles to a
  /// single predictable branch when the simulator is off.
  static void Point(const char* name);

  /// When recording, Point() also appends every visited name; tests use this
  /// to enumerate the crash windows of an operation before arming each.
  static void StartRecordingPoints();
  static std::vector<std::string> StopRecordingPoints();

 private:
  // Single flag read on the store hot path.
  static inline volatile bool enabled_flag_ = false;
};

}  // namespace scm
}  // namespace fptree

/// Marks a crash window; no-op (one branch) unless the simulator is enabled.
#define SCM_CRASH_POINT(name)                              \
  do {                                                     \
    if (::fptree::scm::CrashSim::enabled()) {              \
      ::fptree::scm::CrashSim::Point(name);                \
    }                                                      \
  } while (0)
