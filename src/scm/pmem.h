// Copyright (c) FPTree reproduction authors.
//
// Persistence primitives (paper §2). The paper assumes a function Persist()
// that implements the most efficient way of making data durable (CLFLUSH
// wrapped in MFENCEs, or a non-temporal store + MFENCE). Here Persist():
//
//  1. informs the crash simulator that the covered cache lines are durable,
//  2. evicts the lines from the modeled cache (CLFLUSH semantics),
//  3. charges the SCM write latency per flushed line.
//
// All stores to SCM must go through the pmem::Store* helpers so the crash
// simulator can shadow-log them. Stores of 8 bytes or fewer use atomic
// instructions so concurrent optimistic readers never observe torn values
// (matching real hardware's p-atomicity). Writes that the paper explicitly
// never persists (leaf lock words) use StoreVolatile, which skips logging:
// their post-crash value is meaningless and recovery resets them.

#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "scm/crash.h"
#include "scm/latency.h"
#include "scm/layout.h"
#include "scm/pptr.h"
#include "scm/stats.h"

namespace fptree {
namespace scm {
namespace pmem {

/// Makes [addr, addr+n) durable: crash-simulator retirement, modeled-cache
/// eviction, and the emulated flush stall.
inline void Persist(const void* addr, size_t n) {
  if (CrashSim::enabled()) CrashSim::NotifyPersist(addr, n);
  size_t lines = CacheLinesSpanned(addr, n);
  const char* p = static_cast<const char*>(addr);
  for (size_t i = 0; i < lines; ++i) {
    ThreadScmCache::Evict(p + i * kCacheLineSize);
  }
  ThreadStats().flushed_lines += lines;
  ++ThreadStats().fences;
  std::atomic_thread_fence(std::memory_order_release);
  LatencyModel::ChargeFlush(lines);
}

/// Persists a whole object.
template <typename T>
inline void Persist(const T* obj) {
  Persist(static_cast<const void*>(obj), sizeof(T));
}

/// Ordering fence without a flush (SFENCE/MFENCE analogue).
inline void Fence() {
  ++ThreadStats().fences;
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

/// \brief Group persistence (batch pipeline, DESIGN.md §11): coalesces the
/// flush ranges of several stores and issues ONE trailing fence for all of
/// them at Commit(), where the unbatched path would fence per Persist().
///
/// Add() performs steps 1 and 2 of Persist() immediately — crash-simulator
/// retirement and modeled-cache eviction — which is safe before the fence
/// because every range covers either unpublished slots (invisible until the
/// owning leaf's bitmap flips, which happens after Commit()) or data whose
/// early durability is harmless. Commit() then issues the fence, the flush
/// stall for every collected line, and the flushed-line accounting, exactly
/// once. Flush *work* (ChargeFlush) stays proportional to the lines
/// touched; only the fence count drops — which is what the scm.fences
/// counter measures in bench_batch_ops.
class PersistBatch {
 public:
  void Add(const void* addr, size_t n) {
    if (n == 0) return;
    if (CrashSim::enabled()) CrashSim::NotifyPersist(addr, n);
    size_t lines = CacheLinesSpanned(addr, n);
    const char* p = static_cast<const char*>(addr);
    for (size_t i = 0; i < lines; ++i) {
      ThreadScmCache::Evict(p + i * kCacheLineSize);
    }
    lines_ += lines;
  }

  template <typename T>
  void Add(const T* obj) {
    Add(static_cast<const void*>(obj), sizeof(T));
  }

  /// One fence + one flush stall for everything Add()ed since the last
  /// Commit(); resets the batch for reuse. No-op on an empty batch.
  void Commit() {
    if (lines_ == 0) return;
    ThreadStats().flushed_lines += lines_;
    ++ThreadStats().fences;
    std::atomic_thread_fence(std::memory_order_release);
    LatencyModel::ChargeFlush(lines_);
    lines_ = 0;
  }

 private:
  size_t lines_ = 0;
};

namespace internal {

template <typename T>
inline void RawStore(T* dst, const T& v) {
  if constexpr (sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 ||
                sizeof(T) == 8) {
    // Tear-free on real hardware; also keeps optimistic concurrent readers
    // free of undefined behaviour in the software-HTM backend.
    __atomic_store(dst, const_cast<T*>(&v), __ATOMIC_RELAXED);
  } else {
    std::memcpy(static_cast<void*>(dst), &v, sizeof(T));
  }
}

}  // namespace internal

/// Stores `v` into SCM at `*dst` (shadow-logged when the crash simulator is
/// on). NOT durable until a covering Persist() executes.
template <typename T>
inline void Store(T* dst, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>,
                "SCM stores require trivially copyable types");
  if (CrashSim::enabled()) CrashSim::LogStore(dst, sizeof(T));
  internal::RawStore(dst, v);
}

/// Byte-range store into SCM (leaf copies during splits, string key bodies).
inline void StoreBytes(void* dst, const void* src, size_t n) {
  if (CrashSim::enabled()) CrashSim::LogStore(dst, n);
  std::memcpy(dst, src, n);
}

/// Store + immediate Persist of the object.
template <typename T>
inline void StorePersist(T* dst, const T& v) {
  Store(dst, v);
  Persist(dst, sizeof(T));
}

/// Publishes a persistent pointer. The 8-byte offset is the p-atomic commit
/// word (recovery tests it against null); the pool id is written first.
template <typename T>
inline void StorePPtr(PPtr<T>* dst, PPtr<T> v) {
  Store(&dst->pool_id, v.pool_id);
  Store(&dst->offset, v.offset);
}

template <typename T>
inline void StorePPtrPersist(PPtr<T>* dst, PPtr<T> v) {
  StorePPtr(dst, v);
  Persist(dst, sizeof(*dst));
}

/// Tear-free load of a word-sized SCM field (used by optimistic readers).
template <typename T>
inline T Load(const T* src) {
  static_assert(std::is_trivially_copyable_v<T>);
  if constexpr (sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 ||
                sizeof(T) == 8) {
    T out;
    __atomic_load(const_cast<T*>(src), &out, __ATOMIC_RELAXED);
    return out;
  } else {
    T out;
    std::memcpy(&out, src, sizeof(T));
    return out;
  }
}

/// Store that is deliberately exempt from crash logging: the field's
/// post-crash content is irrelevant (paper: "writes to leaf locks are never
/// persisted"; recovery re-initializes them).
template <typename T>
inline void StoreVolatile(T* dst, const T& v) {
  internal::RawStore(dst, v);
}

}  // namespace pmem
}  // namespace scm
}  // namespace fptree
