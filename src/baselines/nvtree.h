// Copyright (c) FPTree reproduction authors.
//
// NV-Tree (Yang et al., FAST'15 / TC'15), re-implemented as the paper's
// §6.1 does — "as faithfully as possible", with its inner nodes placed in
// DRAM to give it the same level of optimization as the FPTree:
//
//  * leaf nodes (LNs) live in SCM and are APPEND-ONLY: an insert appends a
//    (key, value, +) entry; a delete appends a negated (key, −) entry; the
//    entry counter is the p-atomic commit word;
//  * searches scan a leaf in REVERSE so the first match is the most recent
//    version (expected (m+1)/2 key probes, Fig. 4);
//  * leaf entries are cache-line-friendly (padded), which inflates SCM
//    consumption (Fig. 8);
//  * inner nodes are contiguous and rebuilt wholesale: when a leaf parent
//    (LP) overflows, ALL inner nodes are rebuilt, one LP per leaf — the
//    sparse rebuild that inflates DRAM (Fig. 8) and collapses throughput
//    under skewed insertion (§6.4);
//  * recovery retrieves the leaves by their offsets (allocator scan) and
//    rebuilds the DRAM inner structure.
//
// A concurrent variant (NV-TreeC) is provided for the paper's concurrency
// figures: per-leaf spinlocks for appends, lock-free leaf reads off the
// committed entry counter, and a global shared/exclusive latch protecting
// structure modifications (splits, rebuilds).

#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/inner_index.h"
#include "core/tree_stats.h"
#include "scm/alloc.h"
#include "scm/crash.h"
#include "scm/pmem.h"
#include "scm/pool.h"
#include "util/timer.h"

namespace fptree {
namespace baselines {

/// \brief NV-Tree. Default sizes per paper Table 1 (inner 128, leaf 32).
template <typename Value = uint64_t, size_t kLeafCap = 32,
          size_t kLPCap = 128, size_t kInnerCap = 128>
class NVTree {
  static_assert(std::is_trivially_copyable_v<Value>);

 public:
  using Key = uint64_t;

  /// Append-only leaf entry; padded so an entry never straddles a cache
  /// line (the alignment the paper blames for NV-Tree's SCM footprint).
  struct alignas(32) Entry {
    Key key;
    uint64_t negated;  ///< 1 = tombstone for `key`
    Value value;
  };

  struct alignas(64) LeafNode {
    uint64_t n;  ///< committed entry count (p-atomic commit word)
    uint64_t lock_word;
    uint64_t reserved[6];
    Entry entries[kLeafCap];
  };

  struct alignas(64) SplitLog {
    scm::PPtr<LeafNode> p_old;
    scm::PPtr<LeafNode> p_new1;
    scm::PPtr<LeafNode> p_new2;
    uint64_t copied;  ///< both new leaves fully durable
  };

  struct alignas(64) PRoot {
    static constexpr uint64_t kMagic = 0xF97EE000000004ULL;

    uint64_t magic;
    SplitLog split_log;
    /// Scratch pptr for reclaiming fully-dead leaves during rebuilds (the
    /// allocator's leak-safe protocol needs an SCM-resident target).
    scm::PPtr<LeafNode> gc_slot;
  };

  explicit NVTree(scm::Pool* pool) : pool_(pool) { AttachOrInit(); }

  NVTree(const NVTree&) = delete;
  NVTree& operator=(const NVTree&) = delete;

  bool Find(Key key, Value* value) {
    ++stats_.finds;
    LeafNode* leaf = DescendToLeaf(key, nullptr, nullptr);
    return SearchLeaf(leaf, scm::pmem::Load(&leaf->n), key, value) == 1;
  }

  bool Insert(Key key, const Value& value) {
    bool inserted = false;
    return InsertChecked(key, value, &inserted).ok() && inserted;
  }

  /// Status-propagating insert (DESIGN.md §12): ResourceExhausted means the
  /// pool could not hold the two split halves; nothing was applied.
  Status InsertChecked(Key key, const Value& value, bool* inserted) {
    *inserted = false;
    Value existing;
    LPNode* lp = nullptr;
    uint32_t lp_slot = 0;
    LeafNode* leaf = DescendToLeaf(key, &lp, &lp_slot);
    if (SearchLeaf(leaf, leaf->n, key, &existing) == 1) return Status::OK();
    if (leaf->n == kLeafCap) {
      leaf = SplitLeaf(leaf, lp, lp_slot, key);
      if (leaf == nullptr) return NoSpace();
    }
    Append(leaf, key, value, /*negated=*/false);
    ++size_;
    *inserted = true;
    return Status::OK();
  }

  bool Update(Key key, const Value& value) {
    bool updated = false;
    return UpdateChecked(key, value, &updated).ok() && updated;
  }

  /// Status-propagating update; on ResourceExhausted the old version stays
  /// live and readable.
  Status UpdateChecked(Key key, const Value& value, bool* updated) {
    *updated = false;
    Value existing;
    LPNode* lp = nullptr;
    uint32_t lp_slot = 0;
    LeafNode* leaf = DescendToLeaf(key, &lp, &lp_slot);
    if (SearchLeaf(leaf, leaf->n, key, &existing) != 1) return Status::OK();
    if (leaf->n == kLeafCap) {
      leaf = SplitLeaf(leaf, lp, lp_slot, key);
      if (leaf == nullptr) return NoSpace();
    }
    // An update is just a newer appended version.
    Append(leaf, key, value, /*negated=*/false);
    *updated = true;
    return Status::OK();
  }

  static Status NoSpace() {
    return Status::ResourceExhausted(
        "nvtree: pool out of space (split allocation failed)");
  }

  bool Erase(Key key) {
    Value existing;
    LPNode* lp = nullptr;
    uint32_t lp_slot = 0;
    LeafNode* leaf = DescendToLeaf(key, &lp, &lp_slot);
    if (SearchLeaf(leaf, leaf->n, key, &existing) != 1) return false;
    if (leaf->n == kLeafCap) {
      leaf = SplitLeaf(leaf, lp, lp_slot, key);
      if (leaf == nullptr) return false;
    }
    Append(leaf, key, Value{}, /*negated=*/true);
    --size_;
    return true;
  }

  void RangeScan(Key start, size_t limit,
                 std::vector<std::pair<Key, Value>>* out) {
    out->clear();
    // Walk LPs left to right starting at the LP the index routes `start`
    // to (LPs are contiguous in the vector, in key order).
    typename Inner::Path path;
    LPNode* lp0 = static_cast<LPNode*>(inner_.FindLeaf(start, &path));
    size_t lp_idx = lp0 == nullptr
                        ? 0
                        : static_cast<size_t>(lp0 - lps_.data());
    std::vector<std::pair<Key, Value>> batch;
    for (; lp_idx < lps_.size() && out->size() < limit; ++lp_idx) {
      LPNode& lp = lps_[lp_idx];
      batch.clear();
      for (uint32_t c = 0; c <= lp.n_keys; ++c) {
        LeafNode* leaf = lp.children[c];
        if (leaf == nullptr) continue;
        CollectLive(leaf, leaf->n, start, &batch);
      }
      std::sort(batch.begin(), batch.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (auto& p : batch) {
        if (out->size() >= limit) break;
        out->push_back(p);
      }
    }
  }

  ~NVTree() { core::FlushTreeStats(stats_); }

  size_t Size() const { return size_; }
  core::TreeOpStats& stats() { return stats_; }
  const core::TreeOpStats& stats() const { return stats_; }

  uint64_t DramBytes() const {
    return inner_.MemoryBytes() + lps_.capacity() * sizeof(LPNode);
  }
  uint64_t ScmBytes() const { return pool_->allocator()->heap_used_bytes(); }
  uint64_t last_recovery_nanos() const { return recovery_nanos_; }

  /// Test hook: how many leaves hold `key` as live, and whether the leaf
  /// the index routes to is among them. A correct tree has (1, true) for
  /// present keys and (0, false) for absent ones.
  std::pair<int, bool> DebugLocate(Key key) {
    int live_leaves = 0;
    LeafNode* routed = DescendToLeaf(key, nullptr, nullptr);
    bool routed_has = false;
    for (const LPNode& lp : lps_) {
      for (uint32_t c = 0; c <= lp.n_keys; ++c) {
        LeafNode* leaf = lp.children[c];
        if (leaf == nullptr) continue;
        int newest = -1;
        for (uint64_t i = 0; i < leaf->n; ++i) {
          if (leaf->entries[i].key == key) {
            newest = leaf->entries[i].negated == 0 ? 1 : 0;
          }
        }
        if (newest == 1) {
          ++live_leaves;
          if (leaf == routed) routed_has = true;
        }
      }
    }
    return {live_leaves, routed_has};
  }

  bool CheckConsistency(std::string* why) const {
    size_t total = 0;
    for (const LPNode& lp : lps_) {
      for (uint32_t c = 0; c <= lp.n_keys; ++c) {
        LeafNode* leaf = lp.children[c];
        if (leaf == nullptr) continue;
        std::unordered_map<Key, bool> state;  // key -> live
        for (uint64_t i = 0; i < leaf->n; ++i) {
          state[leaf->entries[i].key] = leaf->entries[i].negated == 0;
        }
        for (auto& [k, live] : state) total += live ? 1 : 0;
      }
    }
    if (total != size_) {
      *why = "size mismatch: counted " + std::to_string(total) + " vs " +
             std::to_string(size_);
      return false;
    }
    return true;
  }

  /// Full invariant sweep (DESIGN.md §8): structural consistency, committed
  /// counters within capacity, negation-word (valid flag) soundness,
  /// live-key uniqueness across leaves with routing agreement, unlocked
  /// leaves, and the persistent-leak audit.
  bool CheckInvariants(std::string* why) {
    if (!CheckConsistency(why)) return false;
    std::unordered_set<uint64_t> reachable;
    reachable.insert(pool_->root().offset);
    std::unordered_map<Key, LeafNode*> live_at;
    for (LPNode& lp : lps_) {
      for (uint32_t c = 0; c <= lp.n_keys; ++c) {
        LeafNode* leaf = lp.children[c];
        if (leaf == nullptr) continue;
        reachable.insert(pool_->ToPPtr(leaf).offset);
        if (leaf->n > kLeafCap) {
          *why = "committed counter " + std::to_string(leaf->n) +
                 " exceeds leaf capacity";
          return false;
        }
        if (leaf->lock_word != 0) {
          *why = "quiesced leaf still holds its lock word";
          return false;
        }
        std::unordered_map<Key, bool> state;
        for (uint64_t i = 0; i < leaf->n; ++i) {
          const Entry& e = leaf->entries[i];
          if (e.negated > 1) {
            *why = "entry negation word is neither 0 nor 1";
            return false;
          }
          state[e.key] = e.negated == 0;
        }
        for (auto& [k, live] : state) {
          if (!live) continue;
          auto [it, inserted] = live_at.emplace(k, leaf);
          (void)it;
          if (!inserted) {
            *why = "key " + std::to_string(k) + " is live in two leaves";
            return false;
          }
        }
      }
    }
    for (auto& [k, leaf] : live_at) {
      if (DescendToLeaf(k, nullptr, nullptr) != leaf) {
        *why = "inner index routes key " + std::to_string(k) +
               " to the wrong leaf";
        return false;
      }
    }
    const SplitLog& log = proot_->split_log;
    if (!log.p_old.IsNull()) reachable.insert(log.p_old.offset);
    if (!log.p_new1.IsNull()) reachable.insert(log.p_new1.offset);
    if (!log.p_new2.IsNull()) reachable.insert(log.p_new2.offset);
    if (!proot_->gc_slot.IsNull()) reachable.insert(proot_->gc_slot.offset);
    for (uint64_t off : pool_->allocator()->AllocatedPayloadOffsets()) {
      if (reachable.count(off) == 0) {
        *why = "leaked block at offset " + std::to_string(off);
        return false;
      }
    }
    return true;
  }

 protected:
  /// Leaf parent: last inner level, contiguous in DRAM.
  struct LPNode {
    uint32_t n_keys = 0;
    Key keys[kLPCap];
    LeafNode* children[kLPCap + 1] = {};
  };

  using Inner = core::InnerIndex<Key, kInnerCap>;

  LeafNode* DescendToLeaf(Key key, LPNode** lp_out, uint32_t* slot_out) {
    typename Inner::Path path;
    LPNode* lp = static_cast<LPNode*>(inner_.FindLeaf(key, &path));
    uint32_t slot = static_cast<uint32_t>(
        std::lower_bound(lp->keys, lp->keys + lp->n_keys, key) - lp->keys);
    if (lp_out != nullptr) *lp_out = lp;
    if (slot_out != nullptr) *slot_out = slot;
    return lp->children[slot];
  }

  /// Reverse linear scan (most recent entry wins). Returns 1 if the key is
  /// live, 0 if its latest entry is negated, -1 if absent.
  ///
  /// Vectorizable form: a forward pre-scan builds a match bitmask over the
  /// committed entries (plain loads — entries below `n` are immutable once
  /// the counter covers them, and the counter is only n after their
  /// persist), the newest match is the mask's highest bit, and the reverse
  /// walk then charges key probes and SCM reads for exactly the entries the
  /// scalar early-exit loop would have visited: n-1 down to the match (or
  /// all n when absent).
  int SearchLeaf(LeafNode* leaf, uint64_t n, Key key, Value* value) {
    static_assert(kLeafCap <= 64, "match mask is one 64-bit word");
    scm::ReadScm(leaf, 64);
    uint64_t match = 0;
    for (uint64_t i = 0; i < n; ++i) {
      match |= static_cast<uint64_t>(leaf->entries[i].key == key) << i;
    }
    const uint64_t newest =
        match == 0 ? 0 : 63 - static_cast<uint64_t>(__builtin_clzll(match));
    for (uint64_t i = n; i-- > newest;) {
      ++stats_.key_probes;
      scm::ReadScm(&leaf->entries[i], sizeof(Entry));
    }
    if (match == 0) return -1;
    if (leaf->entries[newest].negated != 0) return 0;
    *value = leaf->entries[newest].value;
    return 1;
  }

  void CollectLive(LeafNode* leaf, uint64_t n, Key min_key,
                   std::vector<std::pair<Key, Value>>* out) {
    std::unordered_map<Key, std::pair<bool, Value>> state;
    scm::ReadScm(leaf, 64);
    for (uint64_t i = 0; i < n; ++i) {
      scm::ReadScm(&leaf->entries[i], sizeof(Entry));
      const Entry& e = leaf->entries[i];
      state[e.key] = {e.negated == 0, e.value};
    }
    for (auto& [k, st] : state) {
      if (st.first && k >= min_key) out->emplace_back(k, st.second);
    }
  }

  /// Append-only insert (the NV-Tree write path): write the entry, persist,
  /// then p-atomically bump the committed counter.
  void Append(LeafNode* leaf, Key key, const Value& value, bool negated) {
    uint64_t slot = leaf->n;
    assert(slot < kLeafCap);
    Entry e{};
    e.key = key;
    e.negated = negated ? 1 : 0;
    e.value = value;
    scm::pmem::Store(&leaf->entries[slot], e);
    scm::pmem::Persist(&leaf->entries[slot]);
    SCM_CRASH_POINT("nvtree.append.before_count");
    scm::pmem::StorePersist(&leaf->n, slot + 1);
    SCM_CRASH_POINT("nvtree.append.after_count");
  }

  /// NV-Tree leaf split: compact the live entries of the full leaf into two
  /// fresh leaves (micro-logged), swap them into the LP, free the old leaf.
  /// Triggers a full inner rebuild if the LP overflows. Returns the leaf
  /// that should receive `key`.
  LeafNode* SplitLeaf(LeafNode* leaf, LPNode* lp, uint32_t lp_slot, Key key) {
    // Gather the live set.
    std::vector<std::pair<Key, Value>> live;
    CollectLive(leaf, leaf->n, 0, &live);
    std::sort(live.begin(), live.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    SplitLog* log = &proot_->split_log;
    scm::pmem::StorePPtrPersist(&log->p_old, pool_->ToPPtr(leaf));
    SCM_CRASH_POINT("nvtree.split.logged");
    if (!pool_->allocator()->Allocate(&log->p_new1, sizeof(LeafNode)).ok() ||
        !pool_->allocator()->Allocate(&log->p_new2, sizeof(LeafNode)).ok()) {
      // Roll the armed log back so the next split (or recovery) starts
      // idle; a delivered first half would otherwise leak when the log's
      // p_new1 slot is overwritten by that split's own allocation.
      if (!log->p_new1.IsNull()) pool_->allocator()->Deallocate(&log->p_new1);
      scm::pmem::StorePPtr(&log->p_old, scm::PPtr<LeafNode>::Null());
      scm::pmem::Persist(log, sizeof(*log));
      return nullptr;
    }
    ++stats_.leaf_splits;
    SCM_CRASH_POINT("nvtree.split.allocated");
    LeafNode* n1 = log->p_new1.get();
    LeafNode* n2 = log->p_new2.get();
    size_t half = live.size() / 2;
    if (half == 0) half = live.size();  // degenerate: all into n1
    FillLeaf(n1, live, 0, half);
    FillLeaf(n2, live, half, live.size());
    scm::pmem::StorePersist(&log->copied, uint64_t{1});
    SCM_CRASH_POINT("nvtree.split.copied");

    // DRAM structure update: replace old with n1, add separator for n2.
    Key sk = half > 0 ? live[half - 1].first : key;
    lp->children[lp_slot] = n1;
    if (live.size() > half) {
      InsertIntoLp(lp, lp_slot, sk, n2);
    } else {
      // n2 is empty (degenerate); still keep it referenced.
      InsertIntoLp(lp, lp_slot, sk, n2);
    }

    // Free the old leaf; the allocator nulls p_old.
    pool_->allocator()->Deallocate(&log->p_old);
    SCM_CRASH_POINT("nvtree.split.freed");
    scm::pmem::StorePPtr(&log->p_new1, scm::PPtr<LeafNode>::Null());
    scm::pmem::StorePPtr(&log->p_new2, scm::PPtr<LeafNode>::Null());
    scm::pmem::Store(&log->copied, uint64_t{0});
    scm::pmem::Persist(log, sizeof(*log));

    if (lp->n_keys >= kLPCap) {
      Rebuild();
      LPNode* nlp = nullptr;
      uint32_t nslot = 0;
      return DescendToLeaf(key, &nlp, &nslot);
    }
    return key > sk ? n2 : n1;
  }

  void FillLeaf(LeafNode* leaf, const std::vector<std::pair<Key, Value>>& kv,
                size_t begin, size_t end) {
    LeafNode fresh{};
    for (size_t i = begin; i < end; ++i) {
      fresh.entries[i - begin].key = kv[i].first;
      fresh.entries[i - begin].negated = 0;
      fresh.entries[i - begin].value = kv[i].second;
    }
    fresh.n = end - begin;
    scm::pmem::StoreBytes(leaf, &fresh, sizeof(fresh));
    scm::pmem::Persist(leaf, sizeof(*leaf));
  }

  void InsertIntoLp(LPNode* lp, uint32_t slot, Key sk, LeafNode* right) {
    std::copy_backward(lp->keys + slot, lp->keys + lp->n_keys,
                       lp->keys + lp->n_keys + 1);
    std::copy_backward(lp->children + slot + 1,
                       lp->children + lp->n_keys + 1,
                       lp->children + lp->n_keys + 2);
    lp->keys[slot] = sk;
    lp->children[slot + 1] = right;
    ++lp->n_keys;
  }

  /// Full inner rebuild (§6.4): one LP per leaf — the sparse layout that
  /// defers the next rebuild but blows up DRAM. Fully-dead leaves are
  /// reclaimed here (their sentinel max key would otherwise shadow real
  /// keys in the rebuilt routing).
  void Rebuild() {
    ++stats_.rebuilds;
    std::vector<std::pair<Key, LeafNode*>> leaves;
    std::vector<LeafNode*> dead;
    for (LPNode& lp : lps_) {
      for (uint32_t c = 0; c <= lp.n_keys; ++c) {
        LeafNode* leaf = lp.children[c];
        if (leaf == nullptr) continue;
        Key mx = 0;
        if (HasLiveEntries(leaf, &mx)) {
          leaves.emplace_back(mx, leaf);
        } else {
          dead.push_back(leaf);
        }
      }
    }
    std::sort(leaves.begin(), leaves.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (leaves.empty() && !dead.empty()) {
      // Keep one empty leaf as the tree's anchor.
      leaves.emplace_back(0, dead.back());
      dead.pop_back();
    }
    for (LeafNode* leaf : dead) ReclaimLeaf(leaf);
    RebuildFromLeaves(leaves);
  }

  bool HasLiveEntries(LeafNode* leaf, Key* max_key) {
    std::unordered_map<Key, bool> state;
    for (uint64_t i = 0; i < leaf->n; ++i) {
      state[leaf->entries[i].key] = leaf->entries[i].negated == 0;
    }
    bool any = false;
    Key mx = 0;
    for (auto& [k, live] : state) {
      if (live) {
        any = true;
        mx = std::max(mx, k);
      }
    }
    *max_key = mx;
    return any;
  }

  void ReclaimLeaf(LeafNode* leaf) {
    scm::pmem::StorePPtrPersist(&proot_->gc_slot, pool_->ToPPtr(leaf));
    pool_->allocator()->Deallocate(&proot_->gc_slot);
  }

  Key MaxKeyOf(LeafNode* leaf) {
    Key mx = 0;
    std::unordered_map<Key, bool> state;
    for (uint64_t i = 0; i < leaf->n; ++i) {
      state[leaf->entries[i].key] = leaf->entries[i].negated == 0;
    }
    for (auto& [k, live] : state) {
      if (live) mx = std::max(mx, k);
    }
    return mx;
  }

  void RebuildFromLeaves(
      const std::vector<std::pair<Key, LeafNode*>>& leaves) {
    inner_.Clear();
    lps_.clear();
    if (leaves.empty()) {
      lps_.resize(1);
      return;
    }
    lps_.resize(leaves.size());
    std::vector<std::pair<Key, void*>> lp_level;
    for (size_t i = 0; i < leaves.size(); ++i) {
      lps_[i].n_keys = 0;
      lps_[i].children[0] = leaves[i].second;
      lp_level.emplace_back(leaves[i].first, &lps_[i]);
    }
    inner_.BulkBuild(lp_level);
  }

  void AttachOrInit() {
    uint64_t t0 = NowNanos();
    if (pool_->root().IsNull()) {
      Status s =
          pool_->allocator()->Allocate(&pool_->header()->root, sizeof(PRoot));
      assert(s.ok());
      (void)s;
    }
    proot_ = static_cast<PRoot*>(pool_->root().get());
    if (proot_->magic != PRoot::kMagic) {
      PRoot zero{};
      zero.magic = PRoot::kMagic;
      scm::pmem::StoreBytes(proot_, &zero, sizeof(zero));
      scm::pmem::Persist(proot_, sizeof(*proot_));
    }
    RecoverSplit();
    if (!proot_->gc_slot.IsNull()) {
      // A dead-leaf reclamation was interrupted; complete it.
      pool_->allocator()->Deallocate(&proot_->gc_slot);
    }

    // Recovery via offsets: every allocated block other than the root
    // struct is a leaf. Rebuild the DRAM structure from them; reclaim
    // fully-dead leaves on the way.
    std::vector<std::pair<Key, LeafNode*>> leaves;
    std::vector<LeafNode*> dead;
    size_ = 0;
    for (uint64_t off : pool_->allocator()->AllocatedPayloadOffsets()) {
      if (off == pool_->root().offset) continue;
      LeafNode* leaf = scm::PPtr<LeafNode>{pool_->id(), off}.get();
      scm::pmem::StoreVolatile(&leaf->lock_word, uint64_t{0});
      // Charge the SCM reads of the recovery scan (the quantity Fig. 7e/f
      // measures): header plus every committed entry.
      scm::ReadScm(leaf, 64 + leaf->n * sizeof(Entry));
      std::unordered_map<Key, bool> state;
      for (uint64_t i = 0; i < leaf->n; ++i) {
        state[leaf->entries[i].key] = leaf->entries[i].negated == 0;
      }
      Key mx = 0;
      size_t live = 0;
      for (auto& [k, alive] : state) {
        if (alive) {
          mx = std::max(mx, k);
          ++live;
        }
      }
      size_ += live;
      if (live > 0) {
        leaves.emplace_back(mx, leaf);
      } else {
        dead.push_back(leaf);
      }
    }
    if (leaves.empty() && !dead.empty()) {
      leaves.emplace_back(0, dead.back());
      dead.pop_back();
    }
    for (LeafNode* leaf : dead) ReclaimLeaf(leaf);
    std::sort(leaves.begin(), leaves.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (leaves.empty()) {
      // Bootstrap: one empty leaf anchored by a root-struct slot... the
      // allocator needs an SCM-resident target; reuse the split log's
      // p_new1 slot, then detach it.
      Status s = pool_->allocator()->Allocate(&proot_->split_log.p_new1,
                                              sizeof(LeafNode));
      assert(s.ok());
      (void)s;
      LeafNode* first = proot_->split_log.p_new1.get();
      LeafNode fresh{};
      scm::pmem::StoreBytes(first, &fresh, sizeof(fresh));
      scm::pmem::Persist(first, sizeof(*first));
      scm::pmem::StorePPtrPersist(&proot_->split_log.p_new1,
                                  scm::PPtr<LeafNode>::Null());
      leaves.emplace_back(0, first);
    }
    RebuildFromLeaves(leaves);
    if (!pool_->root_initialized()) pool_->SetRootInitialized();
    recovery_nanos_ = NowNanos() - t0;
  }

  void RecoverSplit() {
    SplitLog* log = &proot_->split_log;
    if (log->copied != 0) {
      // Both halves are durable: complete by freeing the old leaf. p_old
      // can already be null here — a crash inside the allocator's dealloc
      // was replayed by allocator recovery before we ran — and then the
      // completed free is all there was left to do. Either way the new
      // halves must be kept: they hold the only copy of the data.
      if (!log->p_old.IsNull()) {
        pool_->allocator()->Deallocate(&log->p_old);
      }
    } else {
      // Roll back: discard any allocated halves; the old leaf is intact.
      if (!log->p_new1.IsNull()) {
        pool_->allocator()->Deallocate(&log->p_new1);
      }
      if (!log->p_new2.IsNull()) {
        pool_->allocator()->Deallocate(&log->p_new2);
      }
    }
    scm::pmem::StorePPtr(&log->p_old, scm::PPtr<LeafNode>::Null());
    scm::pmem::StorePPtr(&log->p_new1, scm::PPtr<LeafNode>::Null());
    scm::pmem::StorePPtr(&log->p_new2, scm::PPtr<LeafNode>::Null());
    scm::pmem::Store(&log->copied, uint64_t{0});
    scm::pmem::Persist(log, sizeof(*log));
  }

  scm::Pool* pool_;
  PRoot* proot_ = nullptr;
  Inner inner_;
  std::vector<LPNode> lps_;
  size_t size_ = 0;
  uint64_t recovery_nanos_ = 0;
  core::TreeOpStats stats_;

 protected:
  /// The concurrent subclass tracks live keys in its own atomic counter
  /// (plain `size_` can't take racing per-leaf appends) and reconciles the
  /// committed counter with it at quiesced points, right before the base
  /// audit recounts from the leaves.
  void ReconcileCommittedSize(size_t n) { size_ = n; }
};

/// \brief NV-TreeC: the concurrent NV-Tree used in the paper's concurrency
/// figures. Appends take a per-leaf spinlock; reads are lock-free against
/// the committed entry counter; splits and rebuilds take the structure
/// latch exclusively, everything else takes it shared.
template <typename Value = uint64_t, size_t kLeafCap = 32,
          size_t kLPCap = 128, size_t kInnerCap = 128>
class ConcurrentNVTree : private NVTree<Value, kLeafCap, kLPCap, kInnerCap> {
  using Base = NVTree<Value, kLeafCap, kLPCap, kInnerCap>;

 public:
  using Key = uint64_t;
  using LeafNode = typename Base::LeafNode;

  explicit ConcurrentNVTree(scm::Pool* pool) : Base(pool) {
    approx_size_.store(Base::Size(), std::memory_order_relaxed);
  }

  bool Find(Key key, Value* value) {
    std::shared_lock<std::shared_mutex> l(latch_);
    LeafNode* leaf = this->DescendToLeaf(key, nullptr, nullptr);
    uint64_t n = scm::pmem::Load(&leaf->n);
    return this->SearchLeaf(leaf, n, key, value) == 1;
  }

  bool Insert(Key key, const Value& value) {
    bool applied = false;
    return WriteChecked(key, &value, WriteKind::kInsert, &applied).ok() &&
           applied;
  }
  bool Update(Key key, const Value& value) {
    bool applied = false;
    return WriteChecked(key, &value, WriteKind::kUpdate, &applied).ok() &&
           applied;
  }
  bool Erase(Key key) {
    bool applied = false;
    return WriteChecked(key, nullptr, WriteKind::kErase, &applied).ok() &&
           applied;
  }

  Status InsertChecked(Key key, const Value& value, bool* inserted) {
    return WriteChecked(key, &value, WriteKind::kInsert, inserted);
  }
  Status UpdateChecked(Key key, const Value& value, bool* updated) {
    return WriteChecked(key, &value, WriteKind::kUpdate, updated);
  }

  size_t Size() const {
    std::shared_lock<std::shared_mutex> l(latch_);
    return approx_size_.load(std::memory_order_relaxed);
  }

  /// Scan under the shared structure latch (appends to live leaves may or
  /// may not be observed; splits/rebuilds are excluded).
  void RangeScan(Key start, size_t limit,
                 std::vector<std::pair<Key, Value>>* out) {
    std::shared_lock<std::shared_mutex> l(latch_);
    Base::RangeScan(start, limit, out);
  }

  uint64_t DramBytes() const { return Base::DramBytes(); }
  uint64_t ScmBytes() const { return Base::ScmBytes(); }

  /// Quiesced invariant sweep: take the structure latch exclusively,
  /// reconcile the base's committed counter with the atomic one (appends
  /// only maintain the atomic; the committed counter refreshes at rebuild
  /// time), then audit the base tree — whose leaf recount now validates
  /// that the atomic counter converged to the true live-key count.
  bool CheckInvariants(std::string* why) {
    std::unique_lock<std::shared_mutex> l(latch_);
    this->ReconcileCommittedSize(
        approx_size_.load(std::memory_order_relaxed));
    return Base::CheckInvariants(why);
  }

 private:
  enum class WriteKind { kInsert, kUpdate, kErase };

  Status WriteChecked(Key key, const Value* value, WriteKind kind,
                      bool* applied) {
    *applied = false;
    for (;;) {
      {
        std::shared_lock<std::shared_mutex> l(latch_);
        typename Base::LPNode* lp = nullptr;
        uint32_t slot = 0;
        LeafNode* leaf = this->DescendToLeaf(key, &lp, &slot);
        if (!LockLeaf(leaf)) continue;
        uint64_t n = scm::pmem::Load(&leaf->n);
        Value existing;
        int st = this->SearchLeaf(leaf, n, key, &existing);
        bool exists = st == 1;
        bool want_exists = kind != WriteKind::kInsert;
        if (exists != want_exists) {
          UnlockLeaf(leaf);
          return Status::OK();
        }
        if (n < kLeafCap) {
          this->Append(leaf, key, value == nullptr ? Value{} : *value,
                       kind == WriteKind::kErase);
          UnlockLeaf(leaf);
          if (kind == WriteKind::kInsert) {
            approx_size_.fetch_add(1, std::memory_order_relaxed);
          } else if (kind == WriteKind::kErase) {
            approx_size_.fetch_sub(1, std::memory_order_relaxed);
          }
          *applied = true;
          return Status::OK();
        }
        UnlockLeaf(leaf);
      }
      // Leaf full: escalate to the exclusive latch for the split.
      {
        std::unique_lock<std::shared_mutex> l(latch_);
        typename Base::LPNode* lp = nullptr;
        uint32_t slot = 0;
        LeafNode* leaf = this->DescendToLeaf(key, &lp, &slot);
        if (leaf->n == kLeafCap) {
          if (this->SplitLeaf(leaf, lp, slot, key) == nullptr) {
            return Base::NoSpace();
          }
        }
      }
    }
  }

  bool LockLeaf(LeafNode* leaf) {
    uint64_t expected = 0;
    return __atomic_compare_exchange_n(&leaf->lock_word, &expected,
                                       uint64_t{1}, false, __ATOMIC_ACQUIRE,
                                       __ATOMIC_RELAXED);
  }
  void UnlockLeaf(LeafNode* leaf) {
    __atomic_store_n(&leaf->lock_word, uint64_t{0}, __ATOMIC_RELEASE);
  }

  mutable std::shared_mutex latch_;
  std::atomic<uint64_t> approx_size_{0};
};

}  // namespace baselines
}  // namespace fptree
