// Copyright (c) FPTree reproduction authors.
//
// Shared constants of the simulated SCM device and programming model
// (paper §2): cache-line granularity of flushes, 8-byte p-atomic writes.

#pragma once

#include <cstddef>
#include <cstdint>

namespace fptree {
namespace scm {

/// Cache line size assumed by the persistence primitives (CLFLUSH granule).
constexpr size_t kCacheLineSize = 64;

/// Largest write that is p-atomic (immune to partial writes), paper §2.
constexpr size_t kPAtomicSize = 8;

/// Maximum number of simultaneously open pools (paper: 8-byte File IDs; we
/// cap the id space so persistent-pointer resolution is one array load).
constexpr uint64_t kMaxPools = 64;

/// Rounds n up to a multiple of the cache line size.
constexpr size_t RoundUpToCacheLine(size_t n) {
  return (n + kCacheLineSize - 1) & ~(kCacheLineSize - 1);
}

/// Number of cache lines spanned by [addr, addr+n).
inline size_t CacheLinesSpanned(const void* addr, size_t n) {
  if (n == 0) return 0;
  uintptr_t a = reinterpret_cast<uintptr_t>(addr);
  uintptr_t first = a / kCacheLineSize;
  uintptr_t last = (a + n - 1) / kCacheLineSize;
  return static_cast<size_t>(last - first + 1);
}

}  // namespace scm
}  // namespace fptree
