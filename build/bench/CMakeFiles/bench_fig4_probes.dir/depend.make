# Empty dependencies file for bench_fig4_probes.
# This may be replaced when dependencies are built.
