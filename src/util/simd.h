// Copyright (c) FPTree reproduction authors.
//
// Vectorized search primitives for the hot paths (ROADMAP: "as fast as the
// hardware allows").
//
// The paper's Fingerprinting argument (§4.2) is that one cache line of
// 1-byte hashes bounds the expected number of in-leaf key probes to ≈1.
// The *filter scan itself* is byte-parallel work: instead of testing the 64
// fingerprint bytes one at a time, MatchByte() compares all of them against
// the needle in a few SIMD instructions and returns a candidate bitmask.
// Tree leaf probes AND that mask with the validity bitmap and iterate the
// surviving candidates via count-trailing-zeros — exactly the same
// candidates, in exactly the same (ascending) order, as the scalar loop, so
// the probe-count semantics measured by bench_fig4_probes are preserved
// bit-for-bit.
//
// LowerBoundU64() is the matching inner-node primitive: a branchless
// binary search (conditional moves, no mispredicted compares) that narrows
// to a small block and finishes with a vectorizable compare-and-sum. It
// returns exactly std::lower_bound's index.
//
// Dispatch is compile-time: AVX2 when the TU is compiled with -mavx2,
// else SSE2 (baseline on x86-64), else a portable SWAR fallback. Defining
// FPTREE_NO_SIMD (CMake option of the same name) forces the portable
// fallback everywhere; the `nosimd` ctest configuration builds and runs the
// whole tier-1 suite in that mode so the fallback can never rot. The
// *Scalar reference implementations stay compiled unconditionally — the
// equivalence fuzz test (tests/simd_test.cc) checks the dispatched
// implementation against them under both build modes.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#if !defined(FPTREE_NO_SIMD) && (defined(__SSE2__) || defined(__AVX2__))
#include <immintrin.h>
#define FPTREE_SIMD_X86 1
#endif

namespace fptree {
namespace simd {

// ---------------------------------------------------------------------------
// MatchByte: candidate mask over a fingerprint array.
//
// Contract: returns a mask whose bit i (i < cap, cap <= 64) is set iff
// bytes[i] == needle. The implementation may read up to 64 bytes starting
// at `bytes` regardless of `cap`; callers must guarantee those bytes are
// readable. Every leaf layout in this repo satisfies this: fingerprint
// arrays sit at the head of an alignas(64) node that is at least 64 bytes
// long, so the over-read never leaves the node.

/// Portable reference implementation (also the FPTREE_NO_SIMD fallback):
/// SWAR over 8-byte words using the classic zero-byte test.
inline uint64_t MatchByteScalar(const uint8_t* bytes, size_t cap,
                                uint8_t needle) {
  const uint64_t ones = 0x0101010101010101ULL;
  const uint64_t lows = 0x7f7f7f7f7f7f7f7fULL;
  const uint64_t pattern = ones * needle;
  uint64_t mask = 0;
  size_t i = 0;
  for (; i + 8 <= cap; i += 8) {
    uint64_t word;
    std::memcpy(&word, bytes + i, 8);
    uint64_t x = word ^ pattern;  // matching bytes become 0x00
    // Exact per-byte zero test (no inter-byte carries — the borrow-based
    // `(x - ones) & ~x` variant flags bytes after a zero run): high bit of
    // byte b set iff byte b == 0.
    uint64_t zeros = ~(((x & lows) + lows) | x | lows);
    // Compress the per-byte high-bit flags down to one mask bit per byte:
    // multiplying by the magic gathers bit 8b+7 of every byte b into the
    // top byte of the product, ordered b0..b7 from bit 56 upward.
    uint64_t bits = (zeros >> 7) * 0x0102040810204080ULL >> 56;
    mask |= bits << i;
  }
  for (; i < cap; ++i) {
    mask |= static_cast<uint64_t>(bytes[i] == needle) << i;
  }
  return mask;
}

#if defined(FPTREE_SIMD_X86)
#if defined(__AVX2__)
/// AVX2: two 32-byte compares cover the full 64-byte fingerprint line.
inline uint64_t MatchByteSimd(const uint8_t* bytes, size_t cap,
                              uint8_t needle) {
  const __m256i n = _mm256_set1_epi8(static_cast<char>(needle));
  const __m256i lo = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(bytes));
  uint64_t mask = static_cast<uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(lo, n)));
  if (cap > 32) {
    const __m256i hi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bytes + 32));
    mask |= static_cast<uint64_t>(static_cast<uint32_t>(
                _mm256_movemask_epi8(_mm256_cmpeq_epi8(hi, n))))
            << 32;
  }
  return cap >= 64 ? mask : mask & ((uint64_t{1} << cap) - 1);
}
#else
/// SSE2 (x86-64 baseline): 16 bytes per compare.
inline uint64_t MatchByteSimd(const uint8_t* bytes, size_t cap,
                              uint8_t needle) {
  const __m128i n = _mm_set1_epi8(static_cast<char>(needle));
  uint64_t mask = 0;
  for (size_t i = 0; i < cap; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + i));
    mask |= static_cast<uint64_t>(static_cast<uint32_t>(
                _mm_movemask_epi8(_mm_cmpeq_epi8(v, n))))
            << i;
  }
  return cap >= 64 ? mask : mask & ((uint64_t{1} << cap) - 1);
}
#endif
#endif  // FPTREE_SIMD_X86

/// Dispatched candidate-mask primitive: bit i set iff bytes[i] == needle.
inline uint64_t MatchByte(const uint8_t* bytes, size_t cap, uint8_t needle) {
#if defined(FPTREE_SIMD_X86)
  return MatchByteSimd(bytes, cap, needle);
#else
  return MatchByteScalar(bytes, cap, needle);
#endif
}

// ---------------------------------------------------------------------------
// LowerBoundU64: branchless inner-node child search.

/// Number of elements below which the compare-and-sum tail takes over from
/// the branchless halving loop (one or two vector iterations).
constexpr size_t kLowerBoundLinearCutoff = 8;

/// Counts elements of the sorted block [a, a+n) that are < key. Reference
/// scalar implementation; branchless (no data-dependent jumps).
inline size_t CountLessScalar(const uint64_t* a, size_t n, uint64_t key) {
  size_t cnt = 0;
  for (size_t i = 0; i < n; ++i) {
    cnt += static_cast<size_t>(a[i] < key);
  }
  return cnt;
}

#if defined(FPTREE_SIMD_X86)
/// Vectorized compare-and-sum. x86 has only *signed* 64-bit compares, so
/// both sides are biased by 2^63 first (flips the sign bit, preserving
/// unsigned order).
inline size_t CountLessSimd(const uint64_t* a, size_t n, uint64_t key) {
#if defined(__AVX2__)
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  const __m256i k = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(key)), bias);
  size_t cnt = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)), bias);
    const int m = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpgt_epi64(k, v)));
    cnt += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(m)));
  }
  for (; i < n; ++i) cnt += static_cast<size_t>(a[i] < key);
  return cnt;
#else
  // SSE2 lacks a 64-bit compare; SSE4.2 has one but is not baseline. The
  // scalar compare-and-sum compiles to setb+add (still branchless).
  return CountLessScalar(a, n, key);
#endif
}
#endif  // FPTREE_SIMD_X86

/// std::lower_bound(a, a+n, key) - a, computed without a single
/// data-dependent branch: halving steps compile to conditional moves, the
/// tail is a compare-and-sum.
inline size_t LowerBoundU64(const uint64_t* a, size_t n, uint64_t key) {
  const uint64_t* base = a;
  while (n > kLowerBoundLinearCutoff) {
    const size_t half = n / 2;
    // cmov: advance past the lower half iff its last element is < key.
    base = base[half - 1] < key ? base + half : base;
    n -= half;
  }
  size_t cnt;
#if defined(FPTREE_SIMD_X86)
  cnt = CountLessSimd(base, n, key);
#else
  cnt = CountLessScalar(base, n, key);
#endif
  return static_cast<size_t>(base - a) + cnt;
}

/// Reference implementation for the equivalence tests: plain branchless
/// halving + scalar tail, never vectorized.
inline size_t LowerBoundU64Scalar(const uint64_t* a, size_t n, uint64_t key) {
  const uint64_t* base = a;
  while (n > kLowerBoundLinearCutoff) {
    const size_t half = n / 2;
    base = base[half - 1] < key ? base + half : base;
    n -= half;
  }
  return static_cast<size_t>(base - a) + CountLessScalar(base, n, key);
}

// ---------------------------------------------------------------------------
// PrefetchLines: software prefetch over a byte range.

/// Issues a read prefetch for every 64-byte cache line overlapping
/// [addr, addr + bytes). Purely advisory — never faults, never changes
/// results — so it is safe on racy pointers as long as the memory stays
/// mapped (pool memory is never unmapped). Batched descents stage the next
/// level's nodes and the target leaves' fingerprint lines through this
/// before resolving them one by one. Defining FPTREE_NO_PREFETCH (CMake
/// option of the same name, mirroring FPTREE_NO_SIMD) compiles it to a
/// no-op; the batch oracle tests run under both modes so the prefetched
/// path can never diverge from the scalar one.
inline void PrefetchLines(const void* addr, size_t bytes) {
#if defined(FPTREE_NO_PREFETCH)
  (void)addr;
  (void)bytes;
#else
  const char* p = static_cast<const char*>(addr);
  const char* end = p + bytes;
  for (; p < end; p += 64 - (reinterpret_cast<uintptr_t>(p) & 63)) {
    __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
  }
#endif
}

}  // namespace simd
}  // namespace fptree
