# Empty compiler generated dependencies file for kv_index_test.
# This may be replaced when dependencies are built.
