// Crash-recovery demo: arms a crash point inside a leaf split, simulates
// power loss (all un-flushed stores are discarded), reopens the pool at a
// new address, and shows the tree recovering to a consistent, leak-free
// state — the paper's §4 "any-point crash recovery" guarantee, live.
//
//   ./crash_recovery

#include <cstdio>

#include "core/fptree.h"
#include "scm/crash.h"
#include "scm/latency.h"
#include "scm/pool.h"

int main() {
  using namespace fptree;

  const std::string path = "/tmp/fptree_crash_demo.pool";
  scm::Pool::Destroy(path).ok();
  scm::LatencyModel::Disable();

  std::unique_ptr<scm::Pool> pool;
  scm::Pool::Options options{.size = 256u << 20, .randomize_base = true};
  scm::Pool::Create(path, 1, options, &pool).ok();

  // Shadow-log every SCM store so a simulated crash can discard whatever
  // never reached a Persist() — the exact failure model of the paper.
  scm::CrashSim::Enable();

  {
    core::FPTree<uint64_t, 8, 8> tree(pool.get());  // tiny leaves: many splits
    for (uint64_t k = 0; k < 100; ++k) tree.Insert(k, k);
    std::printf("before crash: %zu keys\n", tree.Size());

    // Arm a crash in the middle of Algorithm 3: after the new leaf was
    // allocated and copied, before the old leaf's bitmap was halved.
    scm::CrashSim::ArmCrashPoint("fptree.split.copied");
    try {
      for (uint64_t k = 100; k < 200; ++k) tree.Insert(k, k);
    } catch (const scm::CrashException& e) {
      std::printf("CRASH injected at '%s'\n", e.what());
    }
  }

  // Power loss: un-persisted cache lines are gone.
  scm::CrashSim::SimulateCrash();
  std::printf("simulated power failure: un-flushed stores discarded\n");

  // Restart: remap the pool (different base address — persistent pointers
  // must re-resolve) and run recovery.
  pool.reset();
  scm::Pool::Open(path, 1, options, &pool).ok();
  core::FPTree<uint64_t, 8, 8> tree(pool.get());
  scm::CrashSim::Disable();

  std::string why;
  bool consistent = tree.CheckConsistency(&why);
  bool leak_free = tree.CheckNoLeaks(&why);
  std::printf("after recovery: %zu keys, consistent=%d, leak-free=%d\n",
              tree.Size(), consistent, leak_free);

  // The interrupted insert either fully applied or fully rolled back —
  // and the tree remains writable either way.
  uint64_t v;
  for (uint64_t k = 100; k < 200; ++k) {
    if (!tree.Find(k, &v)) tree.Insert(k, k);
  }
  std::printf("after completing the batch: %zu keys\n", tree.Size());

  pool.reset();
  scm::Pool::Destroy(path).ok();
  return consistent && leak_free ? 0 : 1;
}
