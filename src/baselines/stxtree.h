// Copyright (c) FPTree reproduction authors.
//
// STXTree: our stand-in for the open-source STX B+-Tree the paper uses as
// its fully transient DRAM reference (§6.1). A classical main-memory
// B+-Tree: sorted inner nodes, sorted leaf nodes with binary search,
// linked leaves for range scans. Entirely in DRAM — no persistence, no
// crash consistency, rebuilt from primary data after a restart (which is
// exactly the recovery cost Fig. 7e/f and Fig. 12b compare against).

#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "core/inner_index.h"

namespace fptree {
namespace baselines {

/// \brief Transient B+-Tree. Default node sizes follow the paper's tuning
/// (Table 1: inner 16, leaf 16 for the STXTree).
template <typename Key = uint64_t, typename Value = uint64_t,
          size_t kLeafCap = 16, size_t kInnerCap = 16>
class STXTree {
 public:
  struct LeafNode {
    uint32_t n = 0;
    LeafNode* next = nullptr;
    Key keys[kLeafCap];
    Value values[kLeafCap];
  };

  STXTree() {
    head_ = new LeafNode();
    ++leaf_count_;
    inner_.InitSingleLeaf(head_);
  }

  ~STXTree() {
    LeafNode* l = head_;
    while (l != nullptr) {
      LeafNode* next = l->next;
      delete l;
      l = next;
    }
  }

  STXTree(const STXTree&) = delete;
  STXTree& operator=(const STXTree&) = delete;

  bool Find(const Key& key, Value* value) const {
    typename Inner::Path path;
    LeafNode* leaf = static_cast<LeafNode*>(inner_.FindLeaf(key, &path));
    int slot = Search(leaf, key);
    if (slot < 0) return false;
    *value = leaf->values[slot];
    return true;
  }

  bool Insert(const Key& key, const Value& value) {
    typename Inner::Path path;
    LeafNode* leaf = static_cast<LeafNode*>(inner_.FindLeaf(key, &path));
    if (Search(leaf, key) >= 0) return false;
    if (leaf->n == kLeafCap) {
      // Sorted split: upper half moves to the new right sibling.
      LeafNode* right = new LeafNode();
      ++leaf_count_;
      uint32_t h = kLeafCap / 2;
      right->n = kLeafCap - h;
      std::copy(leaf->keys + h, leaf->keys + kLeafCap, right->keys);
      std::copy(leaf->values + h, leaf->values + kLeafCap, right->values);
      leaf->n = h;
      right->next = leaf->next;
      leaf->next = right;
      Key split_key = leaf->keys[h - 1];
      inner_.InsertSplit(path, split_key, right);
      if (key > split_key) leaf = right;
    }
    InsertSorted(leaf, key, value);
    ++size_;
    return true;
  }

  bool Update(const Key& key, const Value& value) {
    typename Inner::Path path;
    LeafNode* leaf = static_cast<LeafNode*>(inner_.FindLeaf(key, &path));
    int slot = Search(leaf, key);
    if (slot < 0) return false;
    leaf->values[slot] = value;
    return true;
  }

  bool Erase(const Key& key) {
    typename Inner::Path path;
    LeafNode* leaf = static_cast<LeafNode*>(inner_.FindLeaf(key, &path));
    int slot = Search(leaf, key);
    if (slot < 0) return false;
    // Sorted delete: shift down (the cost the paper notes makes STXTree
    // deletes pricier than bitmap flips at low SCM latency).
    std::copy(leaf->keys + slot + 1, leaf->keys + leaf->n, leaf->keys + slot);
    std::copy(leaf->values + slot + 1, leaf->values + leaf->n,
              leaf->values + slot);
    --leaf->n;
    --size_;
    if (leaf->n == 0 && leaf != head_) {
      LeafNode* prev = FindPrevLeaf(path);
      if (prev != nullptr) prev->next = leaf->next;
      inner_.RemoveLeaf(path);
      delete leaf;
      --leaf_count_;
    } else if (leaf->n == 0 && leaf == head_ && leaf->next != nullptr) {
      head_ = leaf->next;
      inner_.RemoveLeaf(path);
      delete leaf;
      --leaf_count_;
    }
    return true;
  }

  void RangeScan(const Key& start, size_t limit,
                 std::vector<std::pair<Key, Value>>* out) const {
    out->clear();
    typename Inner::Path path;
    LeafNode* leaf = static_cast<LeafNode*>(inner_.FindLeaf(start, &path));
    while (leaf != nullptr && out->size() < limit) {
      uint32_t i = static_cast<uint32_t>(
          std::lower_bound(leaf->keys, leaf->keys + leaf->n, start) -
          leaf->keys);
      for (; i < leaf->n && out->size() < limit; ++i) {
        out->emplace_back(leaf->keys[i], leaf->values[i]);
      }
      leaf = leaf->next;
    }
  }

  size_t Size() const { return size_; }

  uint64_t DramBytes() const {
    return inner_.MemoryBytes() + leaf_count_ * sizeof(LeafNode);
  }

  /// Rebuilds the whole tree from sorted pairs; this is the "full rebuild"
  /// whose time the paper compares recovery against (Fig. 7e/f).
  void BulkLoad(const std::vector<std::pair<Key, Value>>& sorted) {
    // Free the existing structure.
    LeafNode* l = head_;
    while (l != nullptr) {
      LeafNode* next = l->next;
      delete l;
      l = next;
    }
    inner_.Clear();
    leaf_count_ = 0;
    size_ = sorted.size();

    std::vector<std::pair<Key, void*>> level;
    LeafNode* prev = nullptr;
    size_t i = 0;
    const size_t n = sorted.size();
    head_ = nullptr;
    while (i < n || head_ == nullptr) {
      LeafNode* leaf = new LeafNode();
      ++leaf_count_;
      if (prev != nullptr) prev->next = leaf;
      if (head_ == nullptr) head_ = leaf;
      size_t take = std::min(n - i, kLeafCap);
      for (size_t j = 0; j < take; ++j) {
        leaf->keys[j] = sorted[i + j].first;
        leaf->values[j] = sorted[i + j].second;
      }
      leaf->n = static_cast<uint32_t>(take);
      if (take > 0) level.emplace_back(leaf->keys[take - 1], leaf);
      prev = leaf;
      i += take;
      if (n == 0) break;
    }
    if (!level.empty()) {
      inner_.BulkBuild(level);
    } else {
      inner_.InitSingleLeaf(head_);
    }
  }

  bool CheckConsistency(std::string* why) const {
    size_t total = 0;
    Key prev = Key{};
    bool first = true;
    for (LeafNode* l = head_; l != nullptr; l = l->next) {
      for (uint32_t i = 0; i < l->n; ++i) {
        if (!first && !(prev < l->keys[i])) {
          *why = "keys out of order";
          return false;
        }
        prev = l->keys[i];
        first = false;
        ++total;
      }
    }
    if (total != size_) {
      *why = "size mismatch";
      return false;
    }
    return true;
  }

 private:
  using Inner = core::InnerIndex<Key, kInnerCap>;

  static int Search(const LeafNode* leaf, const Key& key) {
    const Key* end = leaf->keys + leaf->n;
    const Key* it = std::lower_bound(leaf->keys, end, key);
    if (it == end || *it != key) return -1;
    return static_cast<int>(it - leaf->keys);
  }

  static void InsertSorted(LeafNode* leaf, const Key& key,
                           const Value& value) {
    uint32_t pos = static_cast<uint32_t>(
        std::lower_bound(leaf->keys, leaf->keys + leaf->n, key) - leaf->keys);
    std::copy_backward(leaf->keys + pos, leaf->keys + leaf->n,
                       leaf->keys + leaf->n + 1);
    std::copy_backward(leaf->values + pos, leaf->values + leaf->n,
                       leaf->values + leaf->n + 1);
    leaf->keys[pos] = key;
    leaf->values[pos] = value;
    ++leaf->n;
  }

  LeafNode* FindPrevLeaf(const typename Inner::Path& path) const {
    for (int level = static_cast<int>(path.depth) - 1; level >= 0; --level) {
      typename Inner::Node* n = path.nodes[level];
      uint32_t slot = path.slots[level];
      if (slot > 0) {
        void* sub = n->children[slot - 1];
        bool leaf_level = n->leaf_children;
        while (!leaf_level) {
          typename Inner::Node* in = static_cast<typename Inner::Node*>(sub);
          sub = in->children[in->n_keys];
          leaf_level = in->leaf_children;
        }
        return static_cast<LeafNode*>(sub);
      }
    }
    return nullptr;
  }

  Inner inner_;
  LeafNode* head_ = nullptr;
  size_t size_ = 0;
  uint64_t leaf_count_ = 0;
};

}  // namespace baselines
}  // namespace fptree
