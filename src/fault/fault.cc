// Copyright (c) FPTree reproduction authors.

#include "fault/fault.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace fptree {
namespace fault {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t HashName(std::string_view s) {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a 64
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

double ToUnitInterval(uint64_t r) {
  return static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace

/// One named injection site. Sites are created on first Arm/ShouldFail and
/// never destroyed, so raw pointers stay valid without registry locking.
struct FaultInjector::Site {
  std::string name;

  mutable std::mutex mu;  // guards everything below
  bool armed = false;
  FaultSpec spec;
  uint64_t evals = 0;           // since last Arm
  uint64_t fires = 0;           // since last Arm
  uint64_t lifetime_fires = 0;  // monotonic (the fault.<site> counter)
  uint64_t rng = 0;
};

struct FaultInjector::Impl {
  mutable std::mutex mu;  // guards the map shape only
  std::unordered_map<std::string, Site*> sites;
  std::atomic<uint64_t> total_fires{0};  // the fault.injected counter
};

FaultInjector& FaultInjector::Instance() {
  // Leaked: injection sites may be evaluated from static destructors.
  static FaultInjector* f = new FaultInjector;
  return *f;
}

FaultInjector::FaultInjector() : impl_(new Impl) {
  if (const char* seed = std::getenv("FPTREE_FAULT_SEED")) {
    SetSeed(std::strtoull(seed, nullptr, 0));
  }
  if (const char* plan = std::getenv("FPTREE_FAULTS")) {
    Status s = Configure(plan);
    if (!s.ok()) {
      std::fprintf(stderr, "FPTREE_FAULTS: %s\n", s.ToString().c_str());
      std::abort();  // a silently-dropped fault plan reports vacuous success
    }
  }
}

FaultInjector::Site* FaultInjector::FindOrCreate(std::string_view site) {
  std::lock_guard<std::mutex> l(impl_->mu);
  auto it = impl_->sites.find(std::string(site));
  if (it != impl_->sites.end()) return it->second;
  Site* s = new Site;  // immortal, see Site comment
  s->name = std::string(site);
  impl_->sites.emplace(s->name, s);
  return s;
}

const FaultInjector::Site* FaultInjector::Find(std::string_view site) const {
  std::lock_guard<std::mutex> l(impl_->mu);
  auto it = impl_->sites.find(std::string(site));
  return it == impl_->sites.end() ? nullptr : it->second;
}

void FaultInjector::Arm(std::string_view site, const FaultSpec& spec) {
  Site* s = FindOrCreate(site);
  std::lock_guard<std::mutex> l(s->mu);
  if (!s->armed) armed_.fetch_add(1, std::memory_order_acq_rel);
  s->armed = true;
  s->spec = spec;
  s->evals = 0;
  s->fires = 0;
  s->rng = seed() ^ HashName(site);
}

void FaultInjector::Disarm(std::string_view site) {
  Site* s = FindOrCreate(site);
  std::lock_guard<std::mutex> l(s->mu);
  if (s->armed) armed_.fetch_sub(1, std::memory_order_acq_rel);
  s->armed = false;
}

void FaultInjector::DisarmAll() {
  std::vector<Site*> all;
  {
    std::lock_guard<std::mutex> l(impl_->mu);
    all.reserve(impl_->sites.size());
    for (auto& [name, s] : impl_->sites) all.push_back(s);
  }
  for (Site* s : all) {
    std::lock_guard<std::mutex> l(s->mu);
    if (s->armed) armed_.fetch_sub(1, std::memory_order_acq_rel);
    s->armed = false;
  }
}

void FaultInjector::SetSeed(uint64_t seed) {
  seed_.store(seed, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFail(const char* site) {
  Site* s = FindOrCreate(site);
  std::lock_guard<std::mutex> l(s->mu);
  if (!s->armed) return false;
  uint64_t eval = ++s->evals;
  const FaultSpec& spec = s->spec;
  if (eval <= spec.after) return false;
  if (spec.max_fires != 0 && s->fires >= spec.max_fires) return false;
  bool fire;
  if (spec.every != 0) {
    fire = (eval - spec.after) % spec.every == 0;
  } else if (spec.probability > 0.0) {
    fire = ToUnitInterval(SplitMix64(&s->rng)) < spec.probability;
  } else {
    fire = true;  // pure countdown / always-fire spec
  }
  if (fire) {
    ++s->fires;
    ++s->lifetime_fires;
    impl_->total_fires.fetch_add(1, std::memory_order_relaxed);
  }
  return fire;
}

uint64_t FaultInjector::Fires(std::string_view site) const {
  const Site* s = Find(site);
  if (s == nullptr) return 0;
  std::lock_guard<std::mutex> l(s->mu);
  return s->fires;
}

uint64_t FaultInjector::Evals(std::string_view site) const {
  const Site* s = Find(site);
  if (s == nullptr) return 0;
  std::lock_guard<std::mutex> l(s->mu);
  return s->evals;
}

uint64_t FaultInjector::TotalFires() const {
  return impl_->total_fires.load(std::memory_order_relaxed);
}

std::vector<std::pair<std::string, uint64_t>> FaultInjector::LifetimeFires()
    const {
  std::vector<Site*> all;
  {
    std::lock_guard<std::mutex> l(impl_->mu);
    all.reserve(impl_->sites.size());
    for (auto& [name, s] : impl_->sites) all.push_back(s);
  }
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(all.size());
  for (Site* s : all) {
    std::lock_guard<std::mutex> l(s->mu);
    out.emplace_back(s->name, s->lifetime_fires);
  }
  return out;
}

Status FaultInjector::Configure(std::string_view plan) {
  size_t pos = 0;
  while (pos < plan.size()) {
    size_t sep = plan.find(';', pos);
    std::string_view clause =
        plan.substr(pos, sep == std::string_view::npos ? sep : sep - pos);
    pos = sep == std::string_view::npos ? plan.size() : sep + 1;
    if (clause.empty()) continue;
    size_t eq = clause.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("fault clause needs site=triggers: \"" +
                                     std::string(clause) + "\"");
    }
    std::string_view site = clause.substr(0, eq);
    std::string_view triggers = clause.substr(eq + 1);
    FaultSpec spec;
    size_t tpos = 0;
    while (tpos < triggers.size()) {
      size_t comma = triggers.find(',', tpos);
      std::string_view t = triggers.substr(
          tpos, comma == std::string_view::npos ? comma : comma - tpos);
      tpos = comma == std::string_view::npos ? triggers.size() : comma + 1;
      size_t colon = t.find(':');
      if (colon == std::string_view::npos) {
        return Status::InvalidArgument("fault trigger needs kind:value: \"" +
                                       std::string(t) + "\"");
      }
      std::string kind(t.substr(0, colon));
      std::string value(t.substr(colon + 1));
      char* endp = nullptr;
      if (kind == "p") {
        spec.probability = std::strtod(value.c_str(), &endp);
        if (endp == value.c_str() || spec.probability < 0.0 ||
            spec.probability > 1.0) {
          return Status::InvalidArgument("bad probability \"" + value + "\"");
        }
      } else if (kind == "every" || kind == "after" || kind == "max") {
        uint64_t v = std::strtoull(value.c_str(), &endp, 0);
        if (endp == value.c_str()) {
          return Status::InvalidArgument("bad " + kind + " value \"" + value +
                                         "\"");
        }
        if (kind == "every") spec.every = v;
        if (kind == "after") spec.after = v;
        if (kind == "max") spec.max_fires = v;
      } else {
        return Status::InvalidArgument(
            "unknown fault trigger \"" + kind +
            "\" (want p/every/after/max)");
      }
    }
    Arm(site, spec);
  }
  return Status::OK();
}

}  // namespace fault
}  // namespace fptree
