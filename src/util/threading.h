// Copyright (c) FPTree reproduction authors.
//
// Thread orchestration helpers for concurrency benchmarks and stress tests:
// a reusable spin barrier (so per-op timing is not polluted by futex wakeups)
// and a scoped thread pool that joins on destruction.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace fptree {

/// \brief Reusable sense-reversing spin barrier.
class SpinBarrier {
 public:
  explicit SpinBarrier(uint32_t n) : total_(n) {}

  void Wait() {
    uint32_t sense = sense_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == total_) {
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(sense ^ 1, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) == sense) {
        CpuRelax();
      }
    }
  }

  static void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
  }

 private:
  const uint32_t total_;
  std::atomic<uint32_t> arrived_{0};
  std::atomic<uint32_t> sense_{0};
};

/// \brief Launches `n` workers running fn(thread_id) and joins on
/// destruction (or explicit Join()).
class ThreadGroup {
 public:
  ThreadGroup() = default;
  ThreadGroup(const ThreadGroup&) = delete;
  ThreadGroup& operator=(const ThreadGroup&) = delete;

  void Spawn(uint32_t n, const std::function<void(uint32_t)>& fn) {
    for (uint32_t i = 0; i < n; ++i) {
      threads_.emplace_back(fn, i);
    }
  }

  void Join() {
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  ~ThreadGroup() { Join(); }

 private:
  std::vector<std::thread> threads_;
};

}  // namespace fptree
