// Copyright (c) FPTree reproduction authors.
//
// Capture-overhead micro-benchmark (DESIGN.md §13): the checked(...)
// history decorator must stay cheap enough to leave on in stress runs.
// Replays the fig9 Mixed workload (50/50 uniform Find / fresh-key Insert)
// against a registered tree in adjacent raw/checked rep pairs — raw, then
// wrapped in CheckedKVIndex with a live recorder — and reports the median
// pair's throughput delta. The acceptance bar is
// <10% overhead on the mixed path; the measured value lands in
// METRICS_JSON as check.overhead_bp (basis points) next to the
// check.events_captured counter, so the flavor matrix can track it.
//
//   bench_check_overhead [--tree=fptree-c] [--keys=N] [--ops=N]
//                        [--threads=N] [--quick]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "check/checked_index.h"
#include "check/history.h"
#include "util/threading.h"

namespace fptree {
namespace bench {
namespace {

// Fig9 Mixed: 50% uniform Find over the warm range, 50% Insert of fresh
// keys, per-thread key streams. Returns Mops/s. Timing happens inside the
// workers (first-start to last-finish) and the main thread blocks in
// Join(): a main thread spinning in a barrier for the measured region
// would steal a core, which on a single-CPU host halves the baseline and
// turns scheduler churn into fake capture overhead.
double RunMixed(index::KVIndex* idx, uint64_t warm, uint64_t total_ops,
                uint32_t threads) {
  SpinBarrier barrier(threads);
  std::atomic<uint64_t> t_start{0};
  std::atomic<uint64_t> t_end{0};
  ThreadGroup tg;
  uint64_t per_thread = total_ops / threads;
  tg.Spawn(threads, [&](uint32_t id) {
    Random64 rng(id * 77 + 1);
    barrier.Wait();
    if (id == 0) {
      t_start.store(NowNanos(), std::memory_order_relaxed);
    }
    for (uint64_t i = 0; i < per_thread; ++i) {
      uint64_t v;
      if (rng.Bernoulli(0.5)) {
        idx->Find(rng.Uniform(warm), &v);
      } else {
        idx->Insert(warm + id * per_thread + i, i);
      }
    }
    uint64_t now = NowNanos();
    uint64_t prev = t_end.load(std::memory_order_relaxed);
    while (prev < now &&
           !t_end.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
    }
  });
  tg.Join();
  double secs = static_cast<double>(t_end.load() - t_start.load()) / 1e9;
  return static_cast<double>(per_thread * threads) / secs / 1e6;
}

double OneRep(const std::string& tree, uint64_t warm, uint64_t ops,
              uint32_t threads, check::HistoryRecorder* rec,
              uint64_t* events_out) {
  ScopedPool pool(size_t{2} << 30);
  auto raw = index::MakeFixedIndex(tree, pool.get(), /*locked=*/true);
  std::unique_ptr<index::KVIndex> idx;
  if (rec != nullptr) {
    idx = check::Checked(std::move(raw), rec);
  } else {
    idx = std::move(raw);
  }
  for (uint64_t k = 0; k < warm; ++k) idx->Insert(k, k);
  double mops = RunMixed(idx.get(), warm, ops, threads);
  if (rec != nullptr) {
    // Release the rep's history (and report its size) so reps don't
    // accumulate unbounded spill.
    check::History h = rec->Drain();
    if (events_out != nullptr) *events_out = h.size();
  }
  return mops;
}

}  // namespace
}  // namespace bench
}  // namespace fptree

int main(int argc, char** argv) {
  using namespace fptree;
  using namespace fptree::bench;
  Flags flags = Flags::Parse(argc, argv);
  // Same store conditions as bench_fig9: the acceptance bar is relative
  // to the fig9 mix, so the raw side must pay the same emulated SCM
  // latencies fig9 does — not a DRAM-speed tree.
  scm::LatencyModel::Calibrate();

  // Long-enough reps matter: a 1-vCPU host drifts through multi-second
  // frequency/steal phases, and short reps sample them as overhead.
  uint64_t warm = flags.quick ? 20000 : std::max<uint64_t>(flags.keys, 1000);
  uint64_t ops = flags.quick ? 400000 : std::max<uint64_t>(flags.ops, 10000);
  // Never oversubscribe by default: on a single-core host two compute
  // threads just measure scheduler churn, not capture cost.
  uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  uint32_t threads = flags.threads != 0 ? flags.threads : std::min(2u, hw);
  int reps = flags.quick ? 3 : 5;
  std::vector<std::string> trees = flags.FixedTrees({"fptree-c"});

  PrintHeader("checked(...) capture overhead, fig9 Mixed 50/50");
  std::printf("%14s %8s %12s %12s %10s\n", "tree", "threads", "raw Mops/s",
              "checked", "overhead");

  double worst_pct = 0;
  for (const std::string& tree : trees) {
    check::HistoryRecorder rec;
    uint64_t events = 0;
    // One discarded warm-up pair, then `reps` adjacent raw/checked rep
    // pairs; each pair yields one overhead sample and the median sample
    // is reported. Adjacent pairing plus a median keeps the host's
    // multi-second frequency/steal phases — which land on one side of
    // one pair — from reading as capture cost.
    OneRep(tree, warm, ops, threads, nullptr, nullptr);
    OneRep(tree, warm, ops, threads, &rec, nullptr);
    struct Sample {
      double raw, checked, pct;
    };
    std::vector<Sample> samples;
    for (int r = 0; r < reps; ++r) {
      double raw = OneRep(tree, warm, ops, threads, nullptr, nullptr);
      double checked = OneRep(tree, warm, ops, threads, &rec, &events);
      double pct = raw > 0 ? (raw - checked) / raw * 100.0 : 0.0;
      samples.push_back({raw, checked, pct});
    }
    std::sort(samples.begin(), samples.end(),
              [](const Sample& a, const Sample& b) { return a.pct < b.pct; });
    const Sample& med = samples[samples.size() / 2];
    worst_pct = std::max(worst_pct, med.pct);
    std::printf("%14s %8u %12.2f %12.2f %9.2f%%  (%llu events/rep)\n",
                tree.c_str(), threads, med.raw, med.checked, med.pct,
                static_cast<unsigned long long>(events));
  }

  // Basis points, clamped at zero: sub-noise "negative overhead" must not
  // wrap the unsigned gauge.
  uint64_t bp = worst_pct > 0 ? static_cast<uint64_t>(worst_pct * 100.0) : 0;
  obs::MetricsRegistry::Global().SetGauge("check.overhead_bp",
                                          [bp] { return bp; });
  std::printf("\ncapture overhead: %.2f%% (bar: <10%% on the mixed path) %s\n",
              worst_pct, worst_pct < 10.0 ? "PASS" : "FAIL");
  EmitMetricsJson("bench_check_overhead");
  return worst_pct < 10.0 ? 0 : 1;
}
