// Variable-size-key trees: FPTreeVar (and its fingerprint-less PTreeVar
// configuration), ConcurrentFPTreeVar. Covers the Appendix C algorithms:
// key blob allocation/deallocation, the aliasing update, crash-induced key
// leaks and the recovery sweep (Alg. 17).

#include "core/fptree_var.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <map>

#include "core/fptree_concurrent_var.h"
#include "scm/latency.h"
#include "util/random.h"
#include "util/threading.h"

namespace fptree {
namespace core {
namespace {

using scm::Pool;

std::string TestPath(const std::string& name) {
  return "/tmp/fptree_test_" + std::to_string(::getpid()) + "_" + name;
}

std::string MakeKey(uint64_t i) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llu",
                static_cast<unsigned long long>(i));
  return std::string(buf, 16);
}

using SmallVar = FPTreeVar<uint64_t, 8, 8>;
using SmallPVar = FPTreeVar<uint64_t, 8, 8, /*fp=*/false>;

template <typename TreeT>
class VarTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scm::LatencyModel::Disable();
    path_ = TestPath("var");
    Pool::Destroy(path_).ok();
    Open(true);
  }

  void TearDown() override {
    tree_.reset();
    pool_.reset();
    scm::CrashSim::Disable();
    Pool::Destroy(path_).ok();
  }

  void Open(bool create) {
    tree_.reset();
    pool_.reset();
    Pool::Options opts{.size = 256u << 20, .randomize_base = true};
    if (create) {
      ASSERT_TRUE(Pool::Create(path_, 1, opts, &pool_).ok());
    } else {
      ASSERT_TRUE(Pool::Open(path_, 1, opts, &pool_).ok());
    }
    tree_ = std::make_unique<TreeT>(pool_.get());
  }

  std::string path_;
  std::unique_ptr<Pool> pool_;
  std::unique_ptr<TreeT> tree_;
};

using VarTypes = ::testing::Types<SmallVar, SmallPVar>;
template <typename T>
struct VName;
template <>
struct VName<SmallVar> {
  static constexpr const char* kName = "FPTreeVar";
};
template <>
struct VName<SmallPVar> {
  static constexpr const char* kName = "PTreeVar";
};
class VNameGen {
 public:
  template <typename T>
  static std::string GetName(int) {
    return VName<T>::kName;
  }
};

TYPED_TEST_SUITE(VarTreeTest, VarTypes, VNameGen);

TYPED_TEST(VarTreeTest, BasicOps) {
  uint64_t v;
  EXPECT_FALSE(this->tree_->Find("alpha", &v));
  EXPECT_TRUE(this->tree_->Insert("alpha", 1));
  EXPECT_FALSE(this->tree_->Insert("alpha", 2));
  ASSERT_TRUE(this->tree_->Find("alpha", &v));
  EXPECT_EQ(v, 1u);
  EXPECT_TRUE(this->tree_->Update("alpha", 3));
  ASSERT_TRUE(this->tree_->Find("alpha", &v));
  EXPECT_EQ(v, 3u);
  EXPECT_FALSE(this->tree_->Update("beta", 1));
  EXPECT_TRUE(this->tree_->Erase("alpha"));
  EXPECT_FALSE(this->tree_->Find("alpha", &v));
  std::string why;
  EXPECT_TRUE(this->tree_->CheckNoLeaks(&why)) << why;
}

TYPED_TEST(VarTreeTest, VariedKeyLengths) {
  std::map<std::string, uint64_t> model;
  Random64 rng(3);
  for (int i = 0; i < 2000; ++i) {
    size_t len = 1 + rng.Uniform(60);
    std::string key;
    for (size_t j = 0; j < len; ++j) {
      key.push_back(static_cast<char>('a' + rng.Uniform(26)));
    }
    bool ins = this->tree_->Insert(key, i);
    EXPECT_EQ(ins, model.emplace(key, i).second);
  }
  EXPECT_EQ(this->tree_->Size(), model.size());
  for (auto& [k, val] : model) {
    uint64_t v;
    ASSERT_TRUE(this->tree_->Find(k, &v)) << k;
    EXPECT_EQ(v, val);
  }
  std::string why;
  EXPECT_TRUE(this->tree_->CheckConsistency(&why)) << why;
  EXPECT_TRUE(this->tree_->CheckNoLeaks(&why)) << why;
}

TYPED_TEST(VarTreeTest, DifferentialVsStdMap) {
  std::map<std::string, uint64_t> model;
  Random64 rng(9);
  for (int i = 0; i < 15000; ++i) {
    std::string key = MakeKey(rng.Uniform(500));
    switch (rng.Uniform(4)) {
      case 0: {
        bool r = this->tree_->Insert(key, i);
        EXPECT_EQ(r, model.emplace(key, i).second);
        break;
      }
      case 1: {
        bool r = this->tree_->Update(key, i);
        EXPECT_EQ(r, model.count(key) == 1);
        if (r) model[key] = i;
        break;
      }
      case 2:
        EXPECT_EQ(this->tree_->Erase(key), model.erase(key) == 1);
        break;
      default: {
        uint64_t v;
        bool r = this->tree_->Find(key, &v);
        auto it = model.find(key);
        ASSERT_EQ(r, it != model.end());
        if (r) {
          EXPECT_EQ(v, it->second);
        }
      }
    }
  }
  std::string why;
  EXPECT_TRUE(this->tree_->CheckConsistency(&why)) << why;
  EXPECT_TRUE(this->tree_->CheckNoLeaks(&why)) << why;
}

TYPED_TEST(VarTreeTest, RangeScanSorted) {
  for (uint64_t k : ShuffledRange(300, 4)) {
    ASSERT_TRUE(this->tree_->Insert(MakeKey(k * 2), k));
  }
  std::vector<std::pair<std::string, uint64_t>> out;
  this->tree_->RangeScan(MakeKey(100), 10, &out);
  ASSERT_EQ(out.size(), 10u);
  uint64_t expect = 100;
  for (auto& [k, v] : out) {
    EXPECT_EQ(k, MakeKey(expect));
    expect += 2;
  }
}

TYPED_TEST(VarTreeTest, SurvivesReopen) {
  std::map<std::string, uint64_t> model;
  for (uint64_t k : ShuffledRange(1500, 8)) {
    ASSERT_TRUE(this->tree_->Insert(MakeKey(k), k));
    model[MakeKey(k)] = k;
  }
  for (uint64_t k = 0; k < 1500; k += 3) {
    ASSERT_TRUE(this->tree_->Erase(MakeKey(k)));
    model.erase(MakeKey(k));
  }
  this->Open(false);
  EXPECT_EQ(this->tree_->Size(), model.size());
  uint64_t v;
  for (auto& [k, val] : model) {
    ASSERT_TRUE(this->tree_->Find(k, &v)) << k;
    EXPECT_EQ(v, val);
  }
  std::string why;
  EXPECT_TRUE(this->tree_->CheckNoLeaks(&why)) << why;
}

TYPED_TEST(VarTreeTest, CrashLeakSweepOnInsert) {
  scm::CrashSim::Enable();
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(this->tree_->Insert(MakeKey(k), k));
  }
  // Crash after the key blob was allocated but before the bitmap commit:
  // the blob is a potential persistent leak (Appendix C), which the
  // recovery sweep must reclaim.
  scm::CrashSim::ArmCrashPoint("fptreevar.insert.before_bitmap");
  bool crashed = false;
  try {
    this->tree_->Insert(MakeKey(999), 999);
  } catch (const scm::CrashException&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);
  scm::CrashSim::SimulateCrash();
  this->Open(false);
  scm::CrashSim::Disable();
  uint64_t v;
  EXPECT_FALSE(this->tree_->Find(MakeKey(999), &v));
  std::string why;
  EXPECT_TRUE(this->tree_->CheckNoLeaks(&why)) << why;
  EXPECT_TRUE(this->tree_->CheckConsistency(&why)) << why;
}

TYPED_TEST(VarTreeTest, CrashLeakSweepOnErase) {
  scm::CrashSim::Enable();
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(this->tree_->Insert(MakeKey(k), k));
  }
  // Crash after the bitmap cleared but before the blob deallocation: the
  // invisible blob must be swept during recovery.
  scm::CrashSim::ArmCrashPoint("fptreevar.erase.after_bitmap");
  bool crashed = false;
  try {
    this->tree_->Erase(MakeKey(7));
  } catch (const scm::CrashException&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);
  scm::CrashSim::SimulateCrash();
  this->Open(false);
  scm::CrashSim::Disable();
  std::string why;
  EXPECT_TRUE(this->tree_->CheckNoLeaks(&why)) << why;
}

TYPED_TEST(VarTreeTest, CrashDuringAliasingUpdate) {
  scm::CrashSim::Enable();
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(this->tree_->Insert(MakeKey(k), k));
  }
  // Crash after the aliasing bitmap flip but before the old slot's pointer
  // reset: recovery must NOT deallocate the blob (it is referenced by the
  // new slot) — the Alg. 17 subtlety.
  scm::CrashSim::ArmCrashPoint("fptreevar.update.aliased");
  bool crashed = false;
  try {
    this->tree_->Update(MakeKey(7), 7777);
  } catch (const scm::CrashException&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);
  scm::CrashSim::SimulateCrash();
  this->Open(false);
  scm::CrashSim::Disable();
  uint64_t v;
  ASSERT_TRUE(this->tree_->Find(MakeKey(7), &v));
  EXPECT_EQ(v, 7777u) << "update committed at the bitmap flip";
  std::string why;
  EXPECT_TRUE(this->tree_->CheckNoLeaks(&why)) << why;
}

// ---------------- ConcurrentFPTreeVar ---------------------------------------

TEST(ConcurrentFPTreeVar, ParallelMixedWorkload) {
  scm::LatencyModel::Disable();
  std::string path = TestPath("cvar");
  Pool::Destroy(path).ok();
  Pool::Options opts{.size = 512u << 20, .randomize_base = true};
  std::unique_ptr<Pool> pool;
  ASSERT_TRUE(Pool::Create(path, 1, opts, &pool).ok());
  {
    ConcurrentFPTreeVar<uint64_t, 8, 8> tree(pool.get());
    constexpr uint32_t kThreads = 8;
    constexpr uint64_t kPerThread = 2000;
    ThreadGroup tg;
    tg.Spawn(kThreads, [&](uint32_t id) {
      Random64 rng(id);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t k = id * kPerThread + i;
        ASSERT_TRUE(tree.Insert(MakeKey(k), k));
        if (i % 3 == 0) {
          uint64_t v;
          ASSERT_TRUE(tree.Find(MakeKey(k), &v));
          EXPECT_EQ(v, k);
        }
        if (i % 5 == 0) {
          ASSERT_TRUE(tree.Update(MakeKey(k), k + 1));
        }
      }
    });
    tg.Join();
    EXPECT_EQ(tree.Size(), kThreads * kPerThread);
    std::string why;
    EXPECT_TRUE(tree.CheckConsistency(&why)) << why;
  }
  pool.reset();
  Pool::Destroy(path).ok();
}

TEST(ConcurrentFPTreeVar, SurvivesReopen) {
  scm::LatencyModel::Disable();
  std::string path = TestPath("cvar2");
  Pool::Destroy(path).ok();
  Pool::Options opts{.size = 256u << 20, .randomize_base = true};
  std::unique_ptr<Pool> pool;
  ASSERT_TRUE(Pool::Create(path, 1, opts, &pool).ok());
  {
    ConcurrentFPTreeVar<uint64_t, 8, 8> tree(pool.get());
    for (uint64_t k = 0; k < 3000; ++k) {
      ASSERT_TRUE(tree.Insert(MakeKey(k), k));
    }
    for (uint64_t k = 0; k < 3000; k += 2) {
      ASSERT_TRUE(tree.Erase(MakeKey(k)));
    }
  }
  pool.reset();
  ASSERT_TRUE(Pool::Open(path, 1, opts, &pool).ok());
  {
    ConcurrentFPTreeVar<uint64_t, 8, 8> tree(pool.get());
    EXPECT_EQ(tree.Size(), 1500u);
    uint64_t v;
    for (uint64_t k = 1; k < 3000; k += 2) {
      ASSERT_TRUE(tree.Find(MakeKey(k), &v)) << k;
      EXPECT_EQ(v, k);
    }
    EXPECT_FALSE(tree.Find(MakeKey(0), &v));
  }
  pool.reset();
  Pool::Destroy(path).ok();
}

}  // namespace
}  // namespace core
}  // namespace fptree
