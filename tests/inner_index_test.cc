// InnerIndex: routing, splits, removals, bulk build, memory accounting.

#include "core/inner_index.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/random.h"

namespace fptree {
namespace core {
namespace {

// Fake "leaves": we use small heap ints as opaque leaf tokens.
class InnerIndexTest : public ::testing::Test {
 protected:
  using Index = InnerIndex<uint64_t, 4>;  // tiny fan-out: deep trees

  void* Leaf(uint64_t tag) {
    auto it = leaves_.find(tag);
    if (it == leaves_.end()) {
      it = leaves_.emplace(tag, std::make_unique<uint64_t>(tag)).first;
    }
    return it->second.get();
  }

  Index index_;
  std::map<uint64_t, std::unique_ptr<uint64_t>> leaves_;
};

TEST_F(InnerIndexTest, EmptyIndex) {
  Index::Path path;
  EXPECT_EQ(index_.FindLeaf(5, &path), nullptr);
  EXPECT_TRUE(index_.empty());
  EXPECT_EQ(index_.Height(), 0u);
}

TEST_F(InnerIndexTest, SingleLeafRoutesEverything) {
  index_.InitSingleLeaf(Leaf(0));
  Index::Path path;
  EXPECT_EQ(index_.FindLeaf(0, &path), Leaf(0));
  EXPECT_EQ(index_.FindLeaf(~uint64_t{0}, &path), Leaf(0));
  EXPECT_EQ(path.depth, 1u);
  EXPECT_EQ(index_.Height(), 1u);
}

TEST_F(InnerIndexTest, SplitsRouteByMaxKeyDiscriminator) {
  // Simulate leaves covering [0,10], (10,20], (20,inf): split keys 10, 20.
  index_.InitSingleLeaf(Leaf(1));
  Index::Path path;
  index_.FindLeaf(10, &path);
  index_.InsertSplit(path, 10, Leaf(2));
  index_.FindLeaf(20, &path);
  index_.InsertSplit(path, 20, Leaf(3));

  EXPECT_EQ(index_.FindLeaf(0, &path), Leaf(1));
  EXPECT_EQ(index_.FindLeaf(10, &path), Leaf(1));  // k == sep goes left
  EXPECT_EQ(index_.FindLeaf(11, &path), Leaf(2));
  EXPECT_EQ(index_.FindLeaf(20, &path), Leaf(2));
  EXPECT_EQ(index_.FindLeaf(21, &path), Leaf(3));
}

TEST_F(InnerIndexTest, ManySplitsGrowTheTree) {
  // Leaf i covers (10i, 10(i+1)]; inserting 200 splits with fan-out 4 forces
  // multiple levels.
  index_.InitSingleLeaf(Leaf(0));
  for (uint64_t i = 1; i <= 200; ++i) {
    Index::Path path;
    index_.FindLeaf(i * 10, &path);
    index_.InsertSplit(path, i * 10, Leaf(i));
  }
  EXPECT_GT(index_.Height(), 3u);
  // Every key routes to the right leaf.
  Index::Path path;
  for (uint64_t k = 0; k <= 2000; ++k) {
    uint64_t expect = k == 0 ? 0 : (k - 1) / 10;
    if (expect > 200) expect = 200;
    ASSERT_EQ(index_.FindLeaf(k, &path), Leaf(expect)) << k;
  }
}

TEST_F(InnerIndexTest, RemoveLeafCollapses) {
  index_.InitSingleLeaf(Leaf(0));
  for (uint64_t i = 1; i <= 50; ++i) {
    Index::Path path;
    index_.FindLeaf(i * 10, &path);
    index_.InsertSplit(path, i * 10, Leaf(i));
  }
  // Remove leaves 1..50, keeping leaf 0.
  for (uint64_t i = 1; i <= 50; ++i) {
    Index::Path path;
    void* leaf = index_.FindLeaf(i * 10 + 1, &path);
    ASSERT_EQ(leaf, Leaf(i));
    index_.RemoveLeaf(path);
  }
  Index::Path path;
  EXPECT_EQ(index_.FindLeaf(12345, &path), Leaf(0));
  EXPECT_EQ(index_.node_count(), 1u);
}

TEST_F(InnerIndexTest, RemoveDownToEmpty) {
  index_.InitSingleLeaf(Leaf(0));
  Index::Path path;
  index_.FindLeaf(1, &path);
  index_.RemoveLeaf(path);
  EXPECT_TRUE(index_.empty());
  EXPECT_EQ(index_.node_count(), 0u);
}

TEST_F(InnerIndexTest, BulkBuildMatchesIncremental) {
  std::vector<std::pair<uint64_t, void*>> sorted;
  for (uint64_t i = 0; i < 500; ++i) {
    sorted.emplace_back(i * 10 + 9, Leaf(i));  // max key of leaf i
  }
  index_.BulkBuild(sorted);
  Index::Path path;
  for (uint64_t k = 0; k < 5000; ++k) {
    ASSERT_EQ(index_.FindLeaf(k, &path), Leaf(k / 10)) << k;
  }
  // Beyond the last separator routes to the last leaf.
  EXPECT_EQ(index_.FindLeaf(999999, &path), Leaf(499));
}

TEST_F(InnerIndexTest, BulkBuildSingleLeaf) {
  index_.BulkBuild({{42, Leaf(0)}});
  Index::Path path;
  EXPECT_EQ(index_.FindLeaf(0, &path), Leaf(0));
  EXPECT_EQ(index_.FindLeaf(100, &path), Leaf(0));
}

TEST_F(InnerIndexTest, MemoryAccounting) {
  index_.InitSingleLeaf(Leaf(0));
  uint64_t one = index_.MemoryBytes();
  EXPECT_GT(one, 0u);
  for (uint64_t i = 1; i <= 100; ++i) {
    Index::Path path;
    index_.FindLeaf(i * 10, &path);
    index_.InsertSplit(path, i * 10, Leaf(i));
  }
  EXPECT_GT(index_.MemoryBytes(), one);
  index_.Clear();
  EXPECT_EQ(index_.MemoryBytes(), 0u);
}

TEST_F(InnerIndexTest, FirstLeaf) {
  EXPECT_EQ(index_.FirstLeaf(), nullptr);
  index_.InitSingleLeaf(Leaf(0));
  for (uint64_t i = 1; i <= 30; ++i) {
    Index::Path path;
    index_.FindLeaf(i * 10, &path);
    index_.InsertSplit(path, i * 10, Leaf(i));
  }
  EXPECT_EQ(index_.FirstLeaf(), Leaf(0));
}

}  // namespace
}  // namespace core
}  // namespace fptree
