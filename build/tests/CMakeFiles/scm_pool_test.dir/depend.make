# Empty dependencies file for scm_pool_test.
# This may be replaced when dependencies are built.
