// Prototype-database demo (paper §6.4): a dictionary-encoded columnar
// engine with the FPTree as its index runs TATP's read-only queries, then
// restarts — recovery checks the SCM columns and rebuilds the DRAM-resident
// index parts instead of reloading anything.
//
//   ./tatp_demo [index-kind]   (fptree | ptree | wbtree | nvtree | stx)

#include <cstdio>
#include <string>

#include "apps/minidb/minidb.h"
#include "apps/minidb/tatp.h"
#include "scm/latency.h"

int main(int argc, char** argv) {
  using namespace fptree;

  std::string kind = argc > 1 ? argv[1] : "fptree";
  const std::string data_path = "/tmp/fptree_tatp_data.pool";
  const std::string index_path = "/tmp/fptree_tatp_index.pool";
  scm::Pool::Destroy(data_path).ok();
  scm::Pool::Destroy(index_path).ok();

  scm::LatencyModel::Config().dram_ns = 90;
  scm::LatencyModel::SetScmLatency(160);

  scm::Pool::Options options{.size = 512u << 20, .randomize_base = true};
  std::unique_ptr<scm::Pool> data_pool, index_pool;
  scm::Pool::Create(data_path, 1, options, &data_pool).ok();
  scm::Pool::Create(index_path, 2, options, &index_pool).ok();

  apps::MiniDb::Options db_options;
  db_options.index_kind = kind;
  db_options.subscribers = 50000;

  {
    bool needs_load = false;
    apps::MiniDb db(data_pool.get(), index_pool.get(), db_options,
                    &needs_load);
    Stopwatch sw;
    if (needs_load) db.Load();
    std::printf("loaded %llu subscribers (%s index) in %.2f s\n",
                static_cast<unsigned long long>(db.subscribers()),
                kind.c_str(), sw.ElapsedSeconds());

    apps::TatpWorkload tatp(&db);
    apps::TatpResult r = tatp.Run(200000, 8);
    std::printf("TATP read-only: %.0f tx/s (%llu tx, %llu hits)\n",
                r.TxPerSecond(),
                static_cast<unsigned long long>(r.transactions),
                static_cast<unsigned long long>(r.hits));
  }

  // Restart: reopen both pools; the index recovers (or is rebuilt from the
  // columns if it is transient).
  data_pool.reset();
  index_pool.reset();
  scm::Pool::Open(data_path, 1, options, &data_pool).ok();
  scm::Pool::Open(index_path, 2, options, &index_pool).ok();
  Stopwatch restart;
  bool needs_load = false;
  apps::MiniDb db(data_pool.get(), index_pool.get(), db_options, &needs_load);
  db.SanityCheckColumns();
  std::printf("restart: %.2f ms (index kind: %s)\n", restart.ElapsedMillis(),
              kind.c_str());

  apps::MiniDb::SubscriberRow row;
  bool ok = db.GetSubscriberData(1234, &row);
  std::printf("GET_SUBSCRIBER_DATA(1234) after restart -> ok=%d\n", ok);

  data_pool.reset();
  index_pool.reset();
  scm::Pool::Destroy(data_path).ok();
  scm::Pool::Destroy(index_path).ok();
  return ok ? 0 : 1;
}
