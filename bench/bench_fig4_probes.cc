// Figure 4: expected number of in-leaf key probes during a successful
// search, vs the number of leaf entries m — the paper's analytic curves for
// FPTree (fingerprints), wBTree (binary search, log2 m) and NV-Tree
// (reverse linear scan, (m+1)/2) — validated against empirically measured
// probe counters from the actual implementations.

#include <cmath>
#include <cstdio>

#include "baselines/nvtree.h"
#include "baselines/wbtree.h"
#include "bench_common.h"
#include "core/fptree.h"
#include "util/hash.h"

namespace fptree {
namespace bench {
namespace {

// Paper §4.2, closed form: E[T] = (1 + m / (n (1 - ((n-1)/n)^m))) / 2.
double FPTreeExpectedProbes(double m) {
  const double n = 256.0;
  return 0.5 * (1.0 + m / (n * (1.0 - std::pow((n - 1.0) / n, m))));
}

double WBTreeExpectedProbes(double m) { return std::log2(m); }
double NVTreeExpectedProbes(double m) { return (m + 1.0) / 2.0; }

// Empirical probes/find for a tree filled to ~m entries per leaf.
template <typename TreeT>
double MeasureProbes(uint64_t keys) {
  ScopedPool pool(size_t{1} << 30);
  TreeT tree(pool.get());
  for (uint64_t k = 0; k < keys; ++k) {
    tree.Insert(Mix64(k), k);
  }
  tree.stats().Clear();
  uint64_t v;
  for (uint64_t k = 0; k < keys; ++k) {
    tree.Find(Mix64(k), &v);
  }
  return static_cast<double>(tree.stats().key_probes) /
         static_cast<double>(keys);
}

}  // namespace
}  // namespace bench
}  // namespace fptree

int main(int argc, char** argv) {
  using namespace fptree;
  using namespace fptree::bench;
  Flags flags = Flags::Parse(argc, argv);
  scm::LatencyModel::Disable();

  PrintHeader("Figure 4: expected in-leaf key probes vs leaf entries m");
  std::printf("%8s %10s %10s %10s   (analytic, paper formulas)\n", "m",
              "FPTree", "wBTree", "NV-Tree");
  for (int m = 4; m <= 256; m *= 2) {
    std::printf("%8d %10.2f %10.2f %10.2f\n", m, FPTreeExpectedProbes(m),
                WBTreeExpectedProbes(m), NVTreeExpectedProbes(m));
  }

  uint64_t keys = flags.quick ? 20000 : flags.keys;
  std::printf(
      "\n%8s %12s %12s %12s   (measured probes/success, %llu keys)\n",
      "leafcap", "FPTree", "wBTree", "NV-Tree",
      static_cast<unsigned long long>(keys));
  {
    double fp8 = MeasureProbes<core::FPTree<uint64_t, 8, 128>>(keys);
    double wb8 = MeasureProbes<baselines::WBTree<uint64_t, 8, 32>>(keys);
    double nv8 = MeasureProbes<baselines::NVTree<uint64_t, 8, 64, 128>>(keys);
    std::printf("%8d %12.2f %12.2f %12.2f\n", 8, fp8, wb8, nv8);
  }
  {
    double fp = MeasureProbes<core::FPTree<uint64_t, 32, 128>>(keys);
    double wb = MeasureProbes<baselines::WBTree<uint64_t, 32, 32>>(keys);
    double nv =
        MeasureProbes<baselines::NVTree<uint64_t, 32, 64, 128>>(keys);
    std::printf("%8d %12.2f %12.2f %12.2f\n", 32, fp, wb, nv);
  }
  {
    double fp = MeasureProbes<core::FPTree<uint64_t, 64, 128>>(keys);
    double wb = MeasureProbes<baselines::WBTree<uint64_t, 64, 32>>(keys);
    double nv =
        MeasureProbes<baselines::NVTree<uint64_t, 64, 64, 128>>(keys);
    std::printf("%8d %12.2f %12.2f %12.2f\n", 64, fp, wb, nv);
  }
  std::printf(
      "\nPaper: for m = 32 the FPTree needs ~1 probe, the wBTree 5, the "
      "NV-Tree 16.\n");
  EmitMetricsJson("fig4_probes");
  return 0;
}
