# Empty compiler generated dependencies file for kvcache_demo.
# This may be replaced when dependencies are built.
