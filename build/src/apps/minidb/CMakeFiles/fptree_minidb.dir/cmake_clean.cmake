file(REMOVE_RECURSE
  "CMakeFiles/fptree_minidb.dir/minidb.cc.o"
  "CMakeFiles/fptree_minidb.dir/minidb.cc.o.d"
  "CMakeFiles/fptree_minidb.dir/tatp.cc.o"
  "CMakeFiles/fptree_minidb.dir/tatp.cc.o.d"
  "libfptree_minidb.a"
  "libfptree_minidb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fptree_minidb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
