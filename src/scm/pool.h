// Copyright (c) FPTree reproduction authors.
//
// SCM pools: file-backed memory arenas, the unit the paper's persistent
// allocator manages ("the file ID corresponds to a file that is created by
// the persistent allocator and used as an Arena", §2). A pool is a memory-
// mapped file with a small persistent header holding the pool identity and a
// root persistent-pointer slot that anchors the application's durable data
// structure.
//
// Recovery realism: Open() can (and in tests does) map the file at a fresh,
// randomized virtual base, so any code that stashed raw virtual pointers in
// SCM breaks immediately. Only PPtr-based navigation survives — which is the
// paper's "data recovery" challenge.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "scm/pptr.h"
#include "util/status.h"

namespace fptree {
namespace scm {

class PAllocator;

/// Persistent, cache-line-sized pool header at offset 0 of the file.
struct PoolHeader {
  static constexpr uint64_t kMagic = 0xF9720EE5C3A11D01ULL;

  uint64_t magic;
  uint64_t version;
  uint64_t pool_id;
  uint64_t size;
  /// p-atomic flag: 0 while the application-level structure has never been
  /// fully initialized (paper Alg. 9 "Tree.Status == NotInitialized").
  uint64_t root_initialized;
  /// Anchor slot for the application's top-level persistent object.
  VoidPPtr root;
  uint64_t reserved;
};
static_assert(sizeof(PoolHeader) == 64, "header must fill one cache line");

/// \brief A memory-mapped SCM arena.
///
/// Create() formats a new file; Open() maps an existing one and runs
/// allocator recovery. At most one Pool object per pool id may be live in a
/// process. Thread-safe after construction (allocation is internally
/// locked); open/close are control-plane and externally serialized.
class Pool {
 public:
  struct Options {
    /// Total pool size in bytes (header + allocator metadata + heap).
    size_t size = size_t{1} << 30;
    /// Map at a randomized base on open, to shake out stored raw pointers.
    bool randomize_base = true;
  };

  /// Creates and formats a new pool file (fails if it already exists with a
  /// valid header of a different size). pool_id must be in [1, kMaxPools).
  static Status Create(const std::string& path, uint64_t pool_id,
                       const Options& options, std::unique_ptr<Pool>* out);

  /// Opens an existing pool file and runs allocator recovery.
  static Status Open(const std::string& path, uint64_t pool_id,
                     const Options& options, std::unique_ptr<Pool>* out);

  /// Opens if the file exists and is formatted; otherwise creates it.
  /// Sets *created so the caller knows whether to initialize or recover.
  static Status OpenOrCreate(const std::string& path, uint64_t pool_id,
                             const Options& options,
                             std::unique_ptr<Pool>* out, bool* created);

  /// Unmaps and unregisters. Does NOT delete the file.
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  char* base() const { return base_; }
  size_t size() const { return size_; }
  uint64_t id() const { return id_; }
  const std::string& path() const { return path_; }

  PoolHeader* header() const { return reinterpret_cast<PoolHeader*>(base_); }

  /// The application root anchor.
  VoidPPtr root() const { return header()->root; }
  void SetRoot(VoidPPtr root);

  bool root_initialized() const { return header()->root_initialized != 0; }
  void SetRootInitialized();

  /// True if `p` points into this pool's mapping.
  bool Contains(const void* p) const {
    const char* c = static_cast<const char*>(p);
    return c >= base_ && c < base_ + size_;
  }

  /// Converts a virtual pointer inside this pool into a persistent pointer.
  template <typename T>
  PPtr<T> ToPPtr(const T* p) const {
    if (p == nullptr) return PPtr<T>::Null();
    return PPtr<T>{id_, static_cast<uint64_t>(
                            reinterpret_cast<const char*>(p) - base_)};
  }

  /// The pool's persistent allocator.
  PAllocator* allocator() const { return allocator_.get(); }

  /// Finds the live pool whose mapping contains `p`; nullptr if none.
  static Pool* FindByAddress(const void* p);

  /// Finds the live pool with the given id; nullptr if not open.
  static Pool* FindById(uint64_t pool_id);

  /// Deletes a pool file from disk (for tests/benchmarks).
  static Status Destroy(const std::string& path);

 private:
  Pool() = default;

  static Status MapFile(const std::string& path, uint64_t pool_id,
                        const Options& options, bool create,
                        std::unique_ptr<Pool>* out);

  char* base_ = nullptr;
  size_t size_ = 0;
  uint64_t id_ = 0;
  int fd_ = -1;
  std::string path_;
  std::unique_ptr<PAllocator> allocator_;
};

}  // namespace scm
}  // namespace fptree
