file(REMOVE_RECURSE
  "CMakeFiles/tatp_demo.dir/tatp_demo.cc.o"
  "CMakeFiles/tatp_demo.dir/tatp_demo.cc.o.d"
  "tatp_demo"
  "tatp_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tatp_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
