// Copyright (c) FPTree reproduction authors.

#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace fptree {
namespace net {

Client::~Client() { Close(); }

Status Client::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Status::IOError("socket: " + std::string(strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad address " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::IOError("connect: " + std::string(strerror(errno)));
    Close();
    return s;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  outbuf_.clear();
  inbuf_.clear();
  in_pos_ = 0;
  queued_ = received_ = 0;
  pending_ops_.clear();
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::Flush() {
  size_t off = 0;
  while (off < outbuf_.size()) {
    // MSG_NOSIGNAL: EPIPE instead of SIGPIPE when the server is gone.
    ssize_t w = ::send(fd_, outbuf_.data() + off, outbuf_.size() - off,
                       MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
    } else if (w < 0 && errno == EINTR) {
      continue;
    } else {
      return Status::IOError("write: " + std::string(strerror(errno)));
    }
  }
  outbuf_.clear();
  return Status::OK();
}

Status Client::FillBuffer(bool blocking, bool* progress) {
  *progress = false;
  char buf[64 * 1024];
  int flags = blocking ? 0 : MSG_DONTWAIT;
  ssize_t r = ::recv(fd_, buf, sizeof(buf), flags);
  if (r > 0) {
    inbuf_.append(buf, static_cast<size_t>(r));
    *progress = true;
    return Status::OK();
  }
  if (r == 0) return Status::IOError("server closed the connection");
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return Status::OK();
  }
  return Status::IOError("recv: " + std::string(strerror(errno)));
}

Status Client::DecodeOne(Response* resp, bool* got) {
  *got = false;
  size_t consumed = 0;
  // Responses arrive strictly in request order; decode with the op kind we
  // queued (batch layouts are ambiguous under size-based guessing).
  Op expected = pending_ops_.empty() ? Op::kGet : pending_ops_.front();
  DecodeStatus st =
      DecodeResponseFor(expected, inbuf_.data() + in_pos_,
                        inbuf_.size() - in_pos_, resp, &consumed);
  if (st == DecodeStatus::kError) {
    return Status::IOError("malformed response frame");
  }
  if (st == DecodeStatus::kOk) {
    if (!pending_ops_.empty()) pending_ops_.pop_front();
    in_pos_ += consumed;
    ++received_;
    *got = true;
    if (in_pos_ > 64 * 1024) {
      inbuf_.erase(0, in_pos_);
      in_pos_ = 0;
    }
  }
  return Status::OK();
}

Status Client::ReadResponse(Response* resp) {
  for (;;) {
    bool got = false;
    Status s = DecodeOne(resp, &got);
    if (!s.ok()) return s;
    if (got) return Status::OK();
    bool progress = false;
    s = FillBuffer(/*blocking=*/true, &progress);
    if (!s.ok()) return s;
  }
}

Status Client::TryReadResponse(Response* resp, bool* got) {
  Status s = DecodeOne(resp, got);
  if (!s.ok() || *got) return s;
  bool progress = false;
  s = FillBuffer(/*blocking=*/false, &progress);
  if (!s.ok()) return s;
  if (!progress) return Status::OK();
  return DecodeOne(resp, got);
}

Status Client::Put(std::string_view key, uint64_t value) {
  QueuePut(key, value);
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  if (resp.status != RespStatus::kOk) {
    return Status::IOError("PUT rejected by server");
  }
  return Status::OK();
}

Status Client::Upsert(std::string_view key, uint64_t value, bool* inserted) {
  QueueUpsert(key, value);
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  if (resp.status != RespStatus::kOk) {
    return Status::IOError("UPSERT rejected by server");
  }
  *inserted = resp.value != 0;
  return Status::OK();
}

Status Client::Get(std::string_view key, uint64_t* value, bool* found) {
  QueueGet(key);
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  *found = resp.status == RespStatus::kOk;
  if (*found) *value = resp.value;
  return Status::OK();
}

Status Client::Del(std::string_view key, bool* found) {
  QueueDel(key);
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  *found = resp.status == RespStatus::kOk;
  return Status::OK();
}

Status Client::Scan(std::string_view start, uint32_t limit,
                    std::vector<std::pair<std::string, uint64_t>>* rows) {
  QueueScan(start, limit);
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  if (resp.status != RespStatus::kOk) {
    return Status::IOError("SCAN rejected by server");
  }
  *rows = std::move(resp.scan);
  return Status::OK();
}

Status Client::Mget(const std::string_view* keys, size_t count,
                    uint64_t* values, uint8_t* found) {
  QueueMget(keys, static_cast<uint32_t>(count));
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  if (resp.status != RespStatus::kOk || resp.multi_found.size() != count) {
    return Status::IOError("MGET rejected by server");
  }
  for (size_t i = 0; i < count; ++i) {
    found[i] = resp.multi_found[i];
    if (found[i]) values[i] = resp.multi_values[i];
  }
  return Status::OK();
}

Status Client::Mput(const std::string_view* keys, const uint64_t* values,
                    size_t count, uint8_t* inserted) {
  QueueMput(keys, values, static_cast<uint32_t>(count));
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  if (resp.status != RespStatus::kOk || resp.multi_found.size() != count) {
    return Status::IOError("MPUT rejected by server");
  }
  if (inserted != nullptr) {
    for (size_t i = 0; i < count; ++i) inserted[i] = resp.multi_found[i];
  }
  return Status::OK();
}

}  // namespace net
}  // namespace fptree
