# Empty dependencies file for bench_fig9_concurrency.
# This may be replaced when dependencies are built.
