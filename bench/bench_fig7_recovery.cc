// Figure 7(e,f,k,l): recovery time vs tree size at SCM latency 90 ns and
// 650 ns. The persistent hybrid trees rebuild only their DRAM inner nodes
// from the leaves; the wBTree (fully in SCM) recovers in ~constant time;
// the STXTree must be fully rebuilt from primary data. Leaf groups give
// the FPTree better locality than the PTree during the leaf walk, and the
// NV-Tree pays for its sparse rebuild — the orderings the paper reports.

#include <algorithm>
#include <cstdio>
#include <thread>

#include "baselines/nvtree.h"
#include "baselines/stxtree.h"
#include "baselines/wbtree.h"
#include "bench_common.h"
#include "core/fptree.h"
#include "core/fptree_concurrent.h"
#include "core/ptree.h"
#include "core/recovery.h"

namespace fptree {
namespace bench {
namespace {

template <typename TreeT>
double RecoveryMs(uint64_t n) {
  ScopedPool pool(size_t{4} << 30);
  {
    TreeT tree(pool.get());
    for (uint64_t k : ShuffledRange(n, 11)) tree.Insert(k, k);
  }
  pool.Reopen();
  TreeT recovered(pool.get());
  double ms = static_cast<double>(recovered.last_recovery_nanos()) / 1e6;
  uint64_t v;
  if (!recovered.Find(n / 2, &v)) {
    std::fprintf(stderr, "recovery dropped a key!\n");
  }
  return ms;
}

double StxRebuildMs(uint64_t n) {
  // The transient tree's restart story: primary data lives in SCM, and
  // the index must be rebuilt from it — every key-value is read from SCM
  // (charged) and re-inserted. (The paper's Fig. 7e/f compares recovery
  // against exactly this "full rebuild".)
  ScopedPool pool(size_t{4} << 30);
  scm::VoidPPtr* anchor = &pool.get()->header()->root;
  Status s = pool.get()->allocator()->Allocate(anchor, n * 16);
  if (!s.ok()) std::abort();
  uint64_t* data = static_cast<uint64_t*>(anchor->get());
  for (uint64_t k = 0; k < n; ++k) {
    data[2 * k] = k;
    data[2 * k + 1] = k;
  }
  scm::ThreadScmCache::Clear();

  baselines::STXTree<> tree;
  Stopwatch sw;
  for (uint64_t k = 0; k < n; ++k) {
    scm::ReadScm(&data[2 * k], 16);
    tree.Insert(data[2 * k], data[2 * k + 1]);
  }
  return sw.ElapsedMillis();
}

}  // namespace
}  // namespace bench
}  // namespace fptree

int main(int argc, char** argv) {
  using namespace fptree;
  using namespace fptree::bench;
  Flags flags = Flags::Parse(argc, argv);
  scm::LatencyModel::Calibrate();

  PrintHeader("Figure 7(e,f): recovery time [ms] vs tree size");
  std::printf("%8s %10s %12s %12s %12s %12s %12s %12s\n", "lat(ns)", "size",
              "FPTree", "FPTr-noGrp", "PTree", "NV-Tree", "wBTree",
              "STX-rebuild");
  std::vector<uint64_t> sizes = flags.quick
                                    ? std::vector<uint64_t>{10000, 100000}
                                    : std::vector<uint64_t>{10000, 100000,
                                                            flags.keys * 5};
  for (uint64_t lat : {uint64_t{90}, uint64_t{650}}) {
    for (uint64_t n : sizes) {
      SetLatency(lat);
      double fp = RecoveryMs<core::FPTree<>>(n);
      double fpng = RecoveryMs<core::FPTree<uint64_t, 56, 4096, false>>(n);
      double pt = RecoveryMs<core::PTree<>>(n);
      double nv = RecoveryMs<baselines::NVTree<>>(n);
      double wb = RecoveryMs<baselines::WBTree<>>(n);
      double stx = StxRebuildMs(n);
      scm::LatencyModel::Disable();
      std::printf("%8llu %10llu %12.2f %12.2f %12.2f %12.2f %12.2f %12.2f\n",
                  static_cast<unsigned long long>(lat),
                  static_cast<unsigned long long>(n), fp, fpng, pt, nv, wb,
                  stx);
    }
  }
  std::printf(
      "\nPaper shape: wBTree recovery ~constant (log replay only); FPTree "
      "recovers faster than\nPTree (leaf-group locality) and much faster "
      "than NV-Tree (sparse rebuild); all persistent\ntrees beat the full "
      "STX rebuild by a growing factor as size increases.\n");

  // Parallel recovery: sweep the recovery scan width over 1, 2, 4, ...,
  // hardware_concurrency (plus an explicit --recover-threads=N), measuring
  // the inner rebuild of the two trees that shard their leaf scan. Each
  // (tree, width) cell lands in the METRICS_JSON line as a
  // recovery.<tree>.t<width>_nanos counter; on a multi-core host the
  // speedup at 4+ threads is the ISSUE's >= 2x acceptance bar.
  PrintHeader("Parallel recovery: rebuild time [ms] vs --recover-threads");
  uint64_t rn = flags.quick ? 100000 : flags.keys * 5;
  uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<uint32_t> widths{1, 2, 4};
  for (uint32_t w = 8; w <= hw; w *= 2) widths.push_back(w);
  if (hw > 4) widths.push_back(hw);
  if (flags.recover_threads > 0) widths.push_back(flags.recover_threads);
  std::sort(widths.begin(), widths.end());
  widths.erase(std::unique(widths.begin(), widths.end()), widths.end());
  SetLatency(90);
  std::printf("%8s %10s %12s %12s\n", "threads", "size", "FPTree", "FPTreeC");
  for (uint32_t w : widths) {
    core::SetRecoverThreads(w);
    double fp = RecoveryMs<core::FPTree<>>(rn);
    double cfp = RecoveryMs<core::ConcurrentFPTree<>>(rn);
    std::printf("%8u %10llu %12.2f %12.2f\n", w,
                static_cast<unsigned long long>(rn), fp, cfp);
    auto& reg = obs::MetricsRegistry::Global();
    std::string tag = ".t" + std::to_string(w) + "_nanos";
    reg.GetCounter("recovery.fptree" + tag)
        ->Add(static_cast<uint64_t>(fp * 1e6));
    reg.GetCounter("recovery.fptree_c" + tag)
        ->Add(static_cast<uint64_t>(cfp * 1e6));
  }
  scm::LatencyModel::Disable();
  core::SetRecoverThreads(flags.recover_threads);  // restore the flag value

  EmitMetricsJson("fig7_recovery");
  return 0;
}
