// Figure 7(a–d): single-threaded Find / Insert / Update / Delete average
// latency vs SCM latency (fixed 8-byte keys), for FPTree, PTree, NV-Tree,
// wBTree and the transient STXTree. Prints one row per (latency, tree) with
// the four per-op averages in µs — the series of the paper's plots.
// Also reports the FPTree's measured SCM misses per Find (§6.2 observes
// ~2: one for the fingerprint/bitmap line, one for the matching KV).

#include <cstdio>

#include "baselines/nvtree.h"
#include "baselines/stxtree.h"
#include "baselines/wbtree.h"
#include "bench_common.h"
#include "core/fptree.h"
#include "core/ptree.h"
#include "scm/stats.h"

namespace fptree {
namespace bench {
namespace {

struct OpTimes {
  double find_us, insert_us, update_us, erase_us;
  double misses_per_find = 0;
};

template <typename TreeT>
OpTimes RunTree(uint64_t n) {
  ScopedPool pool(size_t{4} << 30);
  TreeT tree(pool.get());
  auto warm = ShuffledRange(n, 42);
  auto extra = ShuffledRange(n, 43);
  // Warm up with n keys in [0, 2n) (even slots), leaving odd keys to insert.
  for (uint64_t k : warm) tree.Insert(k * 2, k);

  OpTimes t{};
  scm::ClearThreadStats();
  t.find_us = TimeOps(n, [&](uint64_t i) {
                uint64_t v = 0;
                tree.Find(warm[i] * 2, &v);
                DoNotOptimize(v);
              }, "find") /
              1000.0;
  t.misses_per_find = static_cast<double>(
                          scm::ThreadStats().scm_read_misses) /
                      static_cast<double>(n);
  t.insert_us = TimeOps(n, [&](uint64_t i) {
                  tree.Insert(extra[i] * 2 + 1, i);
                }, "insert") /
                1000.0;
  t.update_us = TimeOps(n, [&](uint64_t i) {
                  tree.Update(warm[i] * 2, i);
                }, "update") /
                1000.0;
  t.erase_us = TimeOps(n, [&](uint64_t i) {
                 tree.Erase(extra[i] * 2 + 1);
               }, "erase") /
               1000.0;
  return t;
}

OpTimes RunStx(uint64_t n) {
  baselines::STXTree<> tree;
  auto warm = ShuffledRange(n, 42);
  auto extra = ShuffledRange(n, 43);
  for (uint64_t k : warm) tree.Insert(k * 2, k);
  OpTimes t{};
  t.find_us = TimeOps(n, [&](uint64_t i) {
                uint64_t v = 0;
                tree.Find(warm[i] * 2, &v);
                DoNotOptimize(v);
              }, "find") /
              1000.0;
  t.insert_us =
      TimeOps(n, [&](uint64_t i) { tree.Insert(extra[i] * 2 + 1, i); }, "insert") /
      1000.0;
  t.update_us =
      TimeOps(n, [&](uint64_t i) { tree.Update(warm[i] * 2, i); }, "update") / 1000.0;
  t.erase_us =
      TimeOps(n, [&](uint64_t i) { tree.Erase(extra[i] * 2 + 1); }, "erase") / 1000.0;
  return t;
}

void PrintRow(const char* name, uint64_t lat, const OpTimes& t) {
  std::printf("%8llu %-10s %9.3f %9.3f %9.3f %9.3f",
              static_cast<unsigned long long>(lat), name, t.find_us,
              t.insert_us, t.update_us, t.erase_us);
  if (t.misses_per_find > 0) {
    std::printf("   (%.2f SCM misses/find)", t.misses_per_find);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace fptree

int main(int argc, char** argv) {
  using namespace fptree;
  using namespace fptree::bench;
  Flags flags = Flags::Parse(argc, argv);
  uint64_t n = flags.quick ? 50000 : flags.keys;
  scm::LatencyModel::Calibrate();

  PrintHeader(
      "Figure 7(a-d): single-threaded ops, avg us/op vs SCM latency "
      "(fixed keys)");
  std::printf("%8s %-10s %9s %9s %9s %9s\n", "lat(ns)", "tree", "find",
              "insert", "update", "delete");

  std::vector<uint64_t> latencies =
      flags.latency != 0 ? std::vector<uint64_t>{flags.latency}
                         : std::vector<uint64_t>{90, 250, 450, 650};
  for (uint64_t lat : latencies) {
    SetLatency(lat);
    PrintRow("FPTree", lat, RunTree<core::FPTree<>>(n));
    PrintRow("PTree", lat, RunTree<core::PTree<>>(n));
    PrintRow("NV-Tree", lat, RunTree<baselines::NVTree<>>(n));
    PrintRow("wBTree", lat, RunTree<baselines::WBTree<>>(n));
    scm::LatencyModel::Disable();
    PrintRow("STXTree", lat, RunStx(n));
  }
  scm::LatencyModel::Disable();
  std::printf(
      "\nPaper shape: FPTree fastest persistent tree at every latency; its "
      "curve is the flattest;\nwBTree degrades steepest (fully in SCM); "
      "STXTree is latency-independent (pure DRAM).\n");
  EmitMetricsJson("fig7_ops_fixed");
  return 0;
}
