file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_concurrency.dir/bench_fig9_concurrency.cc.o"
  "CMakeFiles/bench_fig9_concurrency.dir/bench_fig9_concurrency.cc.o.d"
  "bench_fig9_concurrency"
  "bench_fig9_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
