// Copyright (c) FPTree reproduction authors.
//
// Shared helpers for the crash-consistency test suites (crash_fuzz_test,
// concurrent_crash_fuzz_test, baseline_crash_test).

#pragma once

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace fptree {
namespace testutil {

inline std::string TestPath(const std::string& name) {
  return "/tmp/fptree_test_" + std::to_string(::getpid()) + "_" + name;
}

/// Seed count for the randomized crash-fuzz suites. Defaults to
/// `default_count`; the FPTREE_FUZZ_SEEDS environment variable overrides it
/// (4 keeps a local smoke run quick, CI runs 16 for deeper coverage).
inline uint64_t FuzzSeeds(uint64_t default_count) {
  const char* env = std::getenv("FPTREE_FUZZ_SEEDS");
  if (env == nullptr || *env == '\0') return default_count;
  char* end = nullptr;
  unsigned long long n = std::strtoull(env, &end, 10);
  if (end == env || n == 0) return default_count;
  return static_cast<uint64_t>(n);
}

/// Fixed-width decimal key used by the var-key crash suites (order-preserving
/// with respect to the numeric key space).
inline std::string VarKey(uint64_t i) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llu",
                static_cast<unsigned long long>(i));
  return std::string(buf, 16);
}

}  // namespace testutil
}  // namespace fptree
