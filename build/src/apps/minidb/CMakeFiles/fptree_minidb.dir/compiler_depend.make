# Empty compiler generated dependencies file for fptree_minidb.
# This may be replaced when dependencies are built.
