// Deterministic fault injection (DESIGN.md §12): FaultInjector trigger
// semantics, oracle-differential fuzzing with every-Nth-Allocate failures
// across all six trees, the mid-split allocation-failure leak regression,
// recovery from a pool that genuinely filled mid-split, and the forced-HTM
// -abort degradation to the lock fallback. Runs under `ctest -L fault`.
//
// Every test asserts that at least one injection actually fired — a fault
// test that never injects is vacuous.

#include "fault/fault.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/nvtree.h"
#include "baselines/wbtree.h"
#include "core/fptree.h"
#include "core/fptree_concurrent.h"
#include "core/fptree_concurrent_var.h"
#include "core/fptree_var.h"
#include "obs/metrics.h"
#include "scm/latency.h"
#include "scm/pool.h"
#include "util/random.h"

namespace fptree {
namespace {

using fault::FaultInjector;
using fault::FaultSpec;
using scm::Pool;

std::string TestPath(const std::string& name) {
  return "/tmp/fptree_fault_" + std::to_string(::getpid()) + "_" + name;
}

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scm::LatencyModel::Disable();
    FaultInjector::Instance().DisarmAll();
    FaultInjector::Instance().SetSeed(0xF417BEEF);
  }
  void TearDown() override { FaultInjector::Instance().DisarmAll(); }
};

// --- FaultInjector trigger semantics ---------------------------------------

TEST_F(FaultTest, EveryNthFiresDeterministically) {
  auto& fi = FaultInjector::Instance();
  fi.Arm("test.site", FaultSpec{.every = 3});
  std::vector<bool> fires;
  for (int i = 0; i < 9; ++i) fires.push_back(fi.ShouldFail("test.site"));
  // Every 3rd evaluation fires: evaluations 3, 6, 9 (1-based).
  std::vector<bool> want = {false, false, true, false, false,
                            true,  false, false, true};
  EXPECT_EQ(fires, want);
  EXPECT_EQ(fi.Fires("test.site"), 3u);
  EXPECT_EQ(fi.Evals("test.site"), 9u);
}

TEST_F(FaultTest, AfterAndMaxFiresCompose) {
  auto& fi = FaultInjector::Instance();
  // Skip 2 evaluations, then fire every evaluation, at most twice.
  fi.Arm("test.site", FaultSpec{.after = 2, .every = 1, .max_fires = 2});
  std::vector<bool> fires;
  for (int i = 0; i < 6; ++i) fires.push_back(fi.ShouldFail("test.site"));
  std::vector<bool> want = {false, false, true, true, false, false};
  EXPECT_EQ(fires, want);
}

TEST_F(FaultTest, ProbabilityIsSeedReproducible) {
  auto& fi = FaultInjector::Instance();
  auto run = [&](uint64_t seed) {
    fi.SetSeed(seed);
    fi.Arm("test.site", FaultSpec{.probability = 0.5});
    std::vector<bool> out;
    for (int i = 0; i < 64; ++i) out.push_back(fi.ShouldFail("test.site"));
    return out;
  };
  std::vector<bool> a = run(1), b = run(1), c = run(2);
  EXPECT_EQ(a, b);          // same seed: identical stream
  EXPECT_NE(a, c);          // different seed: different stream
  size_t fires = 0;
  for (bool f : a) fires += f;
  EXPECT_GT(fires, 16u);    // ~0.5 rate, loosely bounded
  EXPECT_LT(fires, 48u);
}

TEST_F(FaultTest, ConfigurePlanArmsAndRejects) {
  auto& fi = FaultInjector::Instance();
  ASSERT_TRUE(fi.Configure("a.site=every:5,max:3;b.site=p:1.0,after:7").ok());
  EXPECT_TRUE(fi.enabled());
  for (int i = 0; i < 7; ++i) EXPECT_FALSE(fi.ShouldFail("b.site"));
  EXPECT_TRUE(fi.ShouldFail("b.site"));  // countdown spent, p=1.0 fires
  EXPECT_GE(fi.Fires("b.site"), 1u);
  EXPECT_FALSE(fi.Configure("a.site=bogus:1").ok());
  EXPECT_FALSE(fi.Configure("no-equals-sign").ok());
  EXPECT_FALSE(fi.Configure("a.site=p:2.0").ok());
}

TEST_F(FaultTest, FiresSurfaceInMetricsSnapshot) {
  auto& fi = FaultInjector::Instance();
  uint64_t before = fi.TotalFires();
  fi.Arm("test.metrics", FaultSpec{.every = 1, .max_fires = 5});
  for (int i = 0; i < 8; ++i) fi.ShouldFail("test.metrics");
  obs::Snapshot snap = obs::MetricsRegistry::Global().TakeSnapshot();
  EXPECT_GE(snap.counters["fault.injected"], before + 5);
  EXPECT_GE(snap.counters["fault.test.metrics"], 5u);
}

// --- oracle-differential fuzz: every Nth Allocate fails --------------------
//
// The tree must stay exactly equal to a std::map oracle restricted to the
// acknowledged (Status-OK) operations, and its deepest invariant checker
// (structure + fingerprints + persistent-leak audit) must stay clean after
// every failure burst.

template <typename TreeT>
void RunFixedDifferential(TreeT* tree, uint64_t seed, int ops,
                          uint64_t key_space) {
  std::map<uint64_t, uint64_t> model;
  Random64 rng(seed);
  for (int i = 0; i < ops; ++i) {
    uint64_t key = rng.Uniform(key_space);
    uint64_t val = static_cast<uint64_t>(i);
    switch (rng.Uniform(4)) {
      case 0: {
        bool ins = false;
        Status s = tree->InsertChecked(key, val, &ins);
        if (s.ok()) {
          EXPECT_EQ(ins, model.emplace(key, val).second);
        } else {
          ASSERT_TRUE(s.IsResourceExhausted()) << s.ToString();
        }
        break;
      }
      case 1: {
        bool up = false;
        Status s = tree->UpdateChecked(key, val, &up);
        if (s.ok()) {
          EXPECT_EQ(up, model.count(key) == 1);
          if (up) model[key] = val;
        } else {
          ASSERT_TRUE(s.IsResourceExhausted()) << s.ToString();
        }
        break;
      }
      case 2: {
        uint64_t fires_before =
            FaultInjector::Instance().Fires("scm.alloc.oom");
        bool erased = tree->Erase(key);
        if (erased) {
          EXPECT_EQ(model.erase(key), 1u);
        } else if (model.count(key) == 1) {
          // The only legal way to refuse erasing a present key is an
          // injected allocation failure: the append-only NV-Tree writes a
          // tombstone, which can need a leaf split. The key must then stay
          // live in both tree and model.
          EXPECT_GT(FaultInjector::Instance().Fires("scm.alloc.oom"),
                    fires_before)
              << "erase of present key " << key
              << " failed without an injected fault";
        }
        break;
      }
      default: {
        uint64_t v = 0;
        bool found = tree->Find(key, &v);
        auto it = model.find(key);
        ASSERT_EQ(found, it != model.end());
        if (found) EXPECT_EQ(v, it->second);
      }
    }
    if (i % 2000 == 1999) {
      std::string why;
      ASSERT_TRUE(tree->CheckInvariants(&why)) << why;
    }
  }
  std::string why;
  ASSERT_TRUE(tree->CheckInvariants(&why)) << why;
  EXPECT_EQ(tree->Size(), model.size());
  for (const auto& [k, v] : model) {
    uint64_t out = 0;
    ASSERT_TRUE(tree->Find(k, &out)) << "acked key " << k << " lost";
    EXPECT_EQ(out, v);
  }
}

template <typename TreeT>
void RunVarDifferential(TreeT* tree, uint64_t seed, int ops,
                        uint64_t key_space) {
  std::map<std::string, uint64_t> model;
  Random64 rng(seed);
  for (int i = 0; i < ops; ++i) {
    std::string key = "k" + std::to_string(rng.Uniform(key_space));
    uint64_t val = static_cast<uint64_t>(i);
    switch (rng.Uniform(4)) {
      case 0: {
        bool ins = false;
        Status s = tree->InsertChecked(key, val, &ins);
        if (s.ok()) {
          EXPECT_EQ(ins, model.emplace(key, val).second);
        } else {
          ASSERT_TRUE(s.IsResourceExhausted()) << s.ToString();
        }
        break;
      }
      case 1: {
        bool up = false;
        Status s = tree->UpdateChecked(key, val, &up);
        if (s.ok()) {
          EXPECT_EQ(up, model.count(key) == 1);
          if (up) model[key] = val;
        } else {
          ASSERT_TRUE(s.IsResourceExhausted()) << s.ToString();
        }
        break;
      }
      case 2: {
        uint64_t fires_before =
            FaultInjector::Instance().Fires("scm.alloc.oom");
        bool erased = tree->Erase(key);
        if (erased) {
          EXPECT_EQ(model.erase(key), 1u);
        } else if (model.count(key) == 1) {
          // See RunFixedDifferential: an erase may only refuse a present
          // key when an allocation fault fired inside the call.
          EXPECT_GT(FaultInjector::Instance().Fires("scm.alloc.oom"),
                    fires_before)
              << "erase of present key " << key
              << " failed without an injected fault";
        }
        break;
      }
      default: {
        uint64_t v = 0;
        bool found = tree->Find(key, &v);
        auto it = model.find(key);
        ASSERT_EQ(found, it != model.end());
        if (found) EXPECT_EQ(v, it->second);
      }
    }
    if (i % 2000 == 1999) {
      std::string why;
      ASSERT_TRUE(tree->CheckInvariants(&why)) << why;
    }
  }
  std::string why;
  ASSERT_TRUE(tree->CheckInvariants(&why)) << why;
  for (const auto& [k, v] : model) {
    uint64_t out = 0;
    ASSERT_TRUE(tree->Find(k, &out)) << "acked key " << k << " lost";
    EXPECT_EQ(out, v);
  }
}

class AllocFaultDifferentialTest : public FaultTest {
 protected:
  void SetUp() override {
    FaultTest::SetUp();
    path_ = TestPath("diff");
    Pool::Destroy(path_).ok();
    Pool::Options opts{.size = 64u << 20, .randomize_base = true};
    ASSERT_TRUE(Pool::Create(path_, 1, opts, &pool_).ok());
    // Every 7th allocation anywhere in the stack fails.
    FaultInjector::Instance().Arm("scm.alloc.oom", FaultSpec{.every = 7});
  }
  void TearDown() override {
    pool_.reset();
    Pool::Destroy(path_).ok();
    FaultTest::TearDown();
  }
  void ExpectInjected() {
    EXPECT_GE(FaultInjector::Instance().Fires("scm.alloc.oom"), 1u)
        << "vacuous run: no allocation fault was ever injected";
  }

  std::string path_;
  std::unique_ptr<Pool> pool_;
};

TEST_F(AllocFaultDifferentialTest, FPTreeFixed) {
  core::FPTree<uint64_t, 8, 8, /*groups=*/true, /*group=*/4> tree(
      pool_.get());
  RunFixedDifferential(&tree, 101, 20000, 600);
  ExpectInjected();
}

TEST_F(AllocFaultDifferentialTest, FPTreeConcurrentSingleThreaded) {
  core::ConcurrentFPTree<uint64_t, 8, 8> tree(pool_.get(),
                                              htm::Backend::kTl2);
  RunFixedDifferential(&tree, 202, 20000, 600);
  ExpectInjected();
}

TEST_F(AllocFaultDifferentialTest, WBTree) {
  baselines::WBTree<uint64_t, 8, 4> tree(pool_.get());
  RunFixedDifferential(&tree, 303, 20000, 600);
  ExpectInjected();
}

TEST_F(AllocFaultDifferentialTest, NVTree) {
  baselines::NVTree<uint64_t, 8, 4, 8> tree(pool_.get());
  RunFixedDifferential(&tree, 404, 20000, 600);
  ExpectInjected();
}

TEST_F(AllocFaultDifferentialTest, FPTreeVar) {
  core::FPTreeVar<uint64_t, 8, 8> tree(pool_.get());
  RunVarDifferential(&tree, 505, 15000, 500);
  ExpectInjected();
}

TEST_F(AllocFaultDifferentialTest, FPTreeConcurrentVarSingleThreaded) {
  core::ConcurrentFPTreeVar<uint64_t, 8, 8> tree(pool_.get(),
                                                 htm::Backend::kTl2);
  RunVarDifferential(&tree, 606, 15000, 500);
  ExpectInjected();
}

// --- mid-split allocation-failure leak regression --------------------------
//
// An Allocate failure inside SplitLeaf used to leak the partially-delivered
// leaf (and, in the var trees, the staged key blob). Drive repeated
// one-shot failures at varying offsets into the allocation sequence and
// audit with the persistent-leak checker after every burst.

TEST_F(FaultTest, SplitAllocFailureLeaksNothingFixed) {
  std::string path = TestPath("leak_fixed");
  Pool::Destroy(path).ok();
  std::unique_ptr<Pool> pool;
  Pool::Options opts{.size = 64u << 20, .randomize_base = true};
  ASSERT_TRUE(Pool::Create(path, 1, opts, &pool).ok());
  auto& fi = FaultInjector::Instance();
  {
    core::FPTree<uint64_t, 8, 8, true, 4> tree(pool.get());
    std::map<uint64_t, uint64_t> model;
    uint64_t key = 0;
    for (int burst = 0; burst < 25; ++burst) {
      // One-shot: the very next allocation of any kind fails.
      fi.Arm("scm.alloc.oom", FaultSpec{.every = 1, .max_fires = 1});
      bool injected = false;
      // Leaf groups of 4 and leaf cap 8: a fresh group allocation is due
      // at most every ~16 ascending inserts.
      for (int i = 0; i < 64 && !injected; ++i) {
        bool ins = false;
        Status s = tree.InsertChecked(key, key * 3, &ins);
        if (s.ok()) {
          ASSERT_TRUE(ins);
          model[key] = key * 3;
          ++key;
        } else {
          ASSERT_TRUE(s.IsResourceExhausted()) << s.ToString();
          injected = true;
        }
      }
      ASSERT_TRUE(injected) << "one-shot alloc fault never hit an insert";
      std::string why;
      ASSERT_TRUE(tree.CheckInvariants(&why))
          << "post-failure leak/invariant: " << why;
      // The failed insert must succeed verbatim once space is "back".
      bool ins = false;
      ASSERT_TRUE(tree.InsertChecked(key, key * 3, &ins).ok());
      ASSERT_TRUE(ins);
      model[key] = key * 3;
      ++key;
    }
    EXPECT_GE(fi.Fires("scm.alloc.oom"), 1u);
    EXPECT_EQ(tree.Size(), model.size());
    for (const auto& [k, v] : model) {
      uint64_t out = 0;
      ASSERT_TRUE(tree.Find(k, &out));
      EXPECT_EQ(out, v);
    }
  }
  pool.reset();
  Pool::Destroy(path).ok();
}

TEST_F(FaultTest, SplitAllocFailureLeaksNothingVar) {
  std::string path = TestPath("leak_var");
  Pool::Destroy(path).ok();
  std::unique_ptr<Pool> pool;
  Pool::Options opts{.size = 64u << 20, .randomize_base = true};
  ASSERT_TRUE(Pool::Create(path, 1, opts, &pool).ok());
  auto& fi = FaultInjector::Instance();
  {
    core::FPTreeVar<uint64_t, 8, 8> tree(pool.get());
    std::map<std::string, uint64_t> model;
    uint64_t key = 0;
    for (int burst = 0; burst < 25; ++burst) {
      // Vary the offset so the failure lands on different allocations of
      // the same insert: the split's new leaf, the key blob, etc.
      fi.Arm("scm.alloc.oom", FaultSpec{.after = uint64_t(burst % 3),
                                        .every = 1,
                                        .max_fires = 1});
      bool injected = false;
      for (int i = 0; i < 64 && !injected; ++i) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "key%06llu",
                      static_cast<unsigned long long>(key));
        bool ins = false;
        Status s = tree.InsertChecked(buf, key * 7, &ins);
        if (s.ok()) {
          ASSERT_TRUE(ins);
          model[buf] = key * 7;
          ++key;
        } else {
          ASSERT_TRUE(s.IsResourceExhausted()) << s.ToString();
          injected = true;
          std::string why;
          ASSERT_TRUE(tree.CheckInvariants(&why))
              << "post-failure leak/invariant: " << why;
          // Retry the identical insert now that the one-shot is spent.
          bool ins2 = false;
          ASSERT_TRUE(tree.InsertChecked(buf, key * 7, &ins2).ok());
          ASSERT_TRUE(ins2);
          model[buf] = key * 7;
          ++key;
        }
      }
      ASSERT_TRUE(injected) << "one-shot alloc fault never hit an insert";
    }
    EXPECT_GE(fi.Fires("scm.alloc.oom"), 1u);
    for (const auto& [k, v] : model) {
      uint64_t out = 0;
      ASSERT_TRUE(tree.Find(k, &out)) << k;
      EXPECT_EQ(out, v);
    }
  }
  pool.reset();
  Pool::Destroy(path).ok();
}

// --- recovery from a pool that genuinely filled mid-split ------------------

TEST_F(FaultTest, RecoveryAfterPoolFilledMidSplit) {
  std::string path = TestPath("full_pool");
  Pool::Destroy(path).ok();
  std::unique_ptr<Pool> pool;
  // Tiny pool: ascending inserts genuinely exhaust it within seconds.
  Pool::Options opts{.size = 4u << 20, .randomize_base = true};
  ASSERT_TRUE(Pool::Create(path, 1, opts, &pool).ok());
  auto& fi = FaultInjector::Instance();
  // One injected failure early proves the injection plumbing fires in this
  // test too; everything after is the real allocator running dry.
  fi.Arm("scm.alloc.oom", FaultSpec{.after = 50, .every = 1, .max_fires = 1});
  std::map<uint64_t, uint64_t> acked;
  {
    core::FPTree<uint64_t, 8, 8, true, 4> tree(pool.get());
    uint64_t key = 0;
    int rejections = 0;
    // Keep going past the first NoSpace: a full pool must keep rejecting
    // gracefully (no assert, no corruption), not just fail once.
    while (rejections < 50) {
      bool ins = false;
      Status s = tree.InsertChecked(key, key + 1, &ins);
      if (s.ok()) {
        ASSERT_TRUE(ins);
        acked[key] = key + 1;
      } else {
        ASSERT_TRUE(s.IsResourceExhausted()) << s.ToString();
        ++rejections;
      }
      ++key;
      ASSERT_LT(key, 10u << 20) << "pool never filled";
    }
    EXPECT_GE(fi.Fires("scm.alloc.oom"), 1u);
    std::string why;
    ASSERT_TRUE(tree.CheckInvariants(&why)) << why;
    // Reads and deletes still work on the full pool.
    uint64_t out = 0;
    auto it = acked.begin();
    ASSERT_TRUE(tree.Find(it->first, &out));
    EXPECT_EQ(out, it->second);
    ASSERT_TRUE(tree.Erase(it->first));
    acked.erase(it);
  }
  pool.reset();
  // Recovery: reopen the full pool; every acked key must come back.
  ASSERT_TRUE(Pool::Open(path, 1, opts, &pool).ok());
  {
    core::FPTree<uint64_t, 8, 8, true, 4> tree(pool.get());
    std::string why;
    ASSERT_TRUE(tree.CheckInvariants(&why)) << why;
    EXPECT_EQ(tree.Size(), acked.size());
    for (const auto& [k, v] : acked) {
      uint64_t out = 0;
      ASSERT_TRUE(tree.Find(k, &out)) << "acked key " << k << " lost";
      EXPECT_EQ(out, v);
    }
  }
  pool.reset();
  Pool::Destroy(path).ok();
}

// --- forced HTM aborts: everything degrades to the lock fallback -----------

TEST_F(FaultTest, HtmFallbackForced) {
  std::string path = TestPath("htm_forced");
  Pool::Destroy(path).ok();
  std::unique_ptr<Pool> pool;
  Pool::Options opts{.size = 256u << 20, .randomize_base = true};
  ASSERT_TRUE(Pool::Create(path, 1, opts, &pool).ok());
  auto& fi = FaultInjector::Instance();
  // 100% of speculative HTM attempts abort; only the global-lock fallback
  // can make progress. Correctness must be unaffected.
  fi.Arm("htm.abort", FaultSpec{.probability = 1.0});
  {
    core::ConcurrentFPTree<uint64_t, 8, 8> tree(pool.get(),
                                                htm::Backend::kTl2);
    constexpr int kThreads = 4;
    constexpr uint64_t kPerThread = 2000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&tree, t] {
        const uint64_t base = uint64_t(t) << 32;
        for (uint64_t i = 0; i < kPerThread; ++i) {
          ASSERT_TRUE(tree.Insert(base + i, base + i + 1));
        }
        for (uint64_t i = 0; i < kPerThread; i += 2) {
          ASSERT_TRUE(tree.Erase(base + i));
        }
        for (uint64_t i = 1; i < kPerThread; i += 2) {
          ASSERT_TRUE(tree.Update(base + i, base + i + 2));
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_GE(fi.Fires("htm.abort"), 1u)
        << "vacuous run: no HTM abort was ever injected";
    EXPECT_GT(tree.htm_stats().fallbacks.load(), 0u)
        << "100% aborts but the lock fallback never engaged";
    std::string why;
    ASSERT_TRUE(tree.CheckInvariants(&why)) << why;
    EXPECT_EQ(tree.Size(), size_t(kThreads) * kPerThread / 2);
    for (int t = 0; t < kThreads; ++t) {
      const uint64_t base = uint64_t(t) << 32;
      uint64_t v = 0;
      EXPECT_FALSE(tree.Find(base + 0, &v));
      ASSERT_TRUE(tree.Find(base + 1, &v));
      EXPECT_EQ(v, base + 3);
    }
  }
  pool.reset();
  Pool::Destroy(path).ok();
}

// Same forced-abort pathology against the var-key concurrent tree, whose
// fallback path additionally covers blob allocation under the lock.
TEST_F(FaultTest, HtmFallbackForcedVar) {
  std::string path = TestPath("htm_forced_var");
  Pool::Destroy(path).ok();
  std::unique_ptr<Pool> pool;
  Pool::Options opts{.size = 256u << 20, .randomize_base = true};
  ASSERT_TRUE(Pool::Create(path, 1, opts, &pool).ok());
  auto& fi = FaultInjector::Instance();
  fi.Arm("htm.abort", FaultSpec{.probability = 1.0});
  {
    core::ConcurrentFPTreeVar<uint64_t, 8, 8> tree(pool.get(),
                                                   htm::Backend::kTl2);
    constexpr int kThreads = 4;
    constexpr uint64_t kPerThread = 1000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&tree, t] {
        for (uint64_t i = 0; i < kPerThread; ++i) {
          std::string key =
              "t" + std::to_string(t) + "/" + std::to_string(i);
          ASSERT_TRUE(tree.Insert(key, i + 1));
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_GE(fi.Fires("htm.abort"), 1u);
    std::string why;
    ASSERT_TRUE(tree.CheckInvariants(&why)) << why;
    for (int t = 0; t < kThreads; ++t) {
      uint64_t v = 0;
      ASSERT_TRUE(tree.Find("t" + std::to_string(t) + "/0", &v));
      EXPECT_EQ(v, 1u);
    }
  }
  pool.reset();
  Pool::Destroy(path).ok();
}

}  // namespace
}  // namespace fptree
