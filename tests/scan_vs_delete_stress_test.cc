// Regression stress for the RangeScan-vs-writer races (DESIGN.md §5):
// writers continuously empty whole leaves (forcing DeleteLeaf to unlink and
// deallocate them) and reinsert the same keys, while scanners walk the full
// keyspace through the leaf next-pointer chain. Before the fixes, a scanner
// could (a) load `next` from a leaf *after* its snapshot validation window,
// following a stale pointer into deallocated memory, (b) spin forever on a
// deallocated leaf's lock_word, which DeleteLeaf leaves locked, and
// (c) validate a snapshot that spanned a whole split-plus-refill (the
// bitmap returns to its exact pre-split value and a locked/unlocked lock
// word carries no history), mixing a pre-split next pointer with
// post-refill slots and skipping the new sibling's keys. With the fixes the
// next pointer is captured inside the snapshot window, the window itself is
// witnessed by a generation-stamped lock word (every acquire/release stores
// a globally unique value, so an unchanged word proves an untouched leaf),
// each hop revalidates the predecessor's generation, and the per-leaf retry
// loop is bounded (re-descending from the root at the scan cursor). Every
// scan terminates and returns a sorted, duplicate-free view containing
// every key that was never touched. Reverting any part of the fix makes
// this test hang (caught by its ctest TIMEOUT) or fail the stable-key
// assertions.
//
// The keyspace interleaves stable and volatile blocks so every full scan
// must cross a region of churning leaves to reach the next stable block.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "check/checked_index.h"
#include "check/checker.h"
#include "check/history.h"
#include "core/fptree_concurrent.h"
#include "core/fptree_concurrent_var.h"
#include "crash_test_util.h"
#include "index/kv_index.h"
#include "scm/latency.h"
#include "util/random.h"
#include "util/threading.h"

namespace fptree {
namespace core {
namespace {

using scm::Pool;
using testutil::FuzzSeeds;
using testutil::VarKey;

// Small leaves: a volatile block spans many leaves, so each writer round
// triggers a batch of leaf deletions right where the scanners are walking.
using StressTree = ConcurrentFPTree<uint64_t, 8, 8>;
using StressVarTree = ConcurrentFPTreeVar<uint64_t, 8, 8>;

constexpr uint64_t kBlock = 128;    // keys per block
constexpr uint64_t kBlocks = 16;    // even blocks stable, odd volatile
constexpr uint64_t kUniverse = kBlock * kBlocks;
constexpr uint32_t kWriters = 3;    // each owns a slice of the odd blocks
constexpr uint32_t kScanners = 3;
constexpr int kWriterRounds = 40;

class ScanVsDeleteStressTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, htm::Backend>> {
 protected:
  void SetUp() override {
    scm::LatencyModel::Disable();
    path_ = testutil::TestPath("scan_stress");
    Pool::Destroy(path_).ok();
    Pool::Options opts{.size = 512u << 20, .randomize_base = true};
    ASSERT_TRUE(Pool::Create(path_, 1, opts, &pool_).ok());
  }
  void TearDown() override {
    pool_.reset();
    Pool::Destroy(path_).ok();
  }

  static bool Volatile(uint64_t key) { return (key / kBlock) % 2 == 1; }

  std::string path_;
  std::unique_ptr<Pool> pool_;
};

TEST_P(ScanVsDeleteStressTest, FixedKeysScanSurvivesLeafDeletion) {
  auto [seed, backend] = GetParam();
  StressTree tree(pool_.get(), backend);
  for (uint64_t k = 0; k < kUniverse; ++k) {
    ASSERT_TRUE(tree.Insert(k, k));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scans_done{0};
  ThreadGroup writers;
  writers.Spawn(kWriters, [&](uint32_t id) {
    Random64 rng(seed * 131 + id);
    for (int round = 0; round < kWriterRounds; ++round) {
      for (uint64_t b = 1; b < kBlocks; b += 2) {
        if ((b / 2) % kWriters != id) continue;
        // Empty the whole block (leaf by leaf DeleteLeaf fires as the
        // last key of each leaf goes), then bring it back.
        for (uint64_t k = b * kBlock; k < (b + 1) * kBlock; ++k) {
          tree.Erase(k);
        }
        for (uint64_t k = b * kBlock; k < (b + 1) * kBlock; ++k) {
          tree.Insert(k, round);
        }
      }
      if (rng.Next() % 4 == 0) std::this_thread::yield();
    }
  });

  ThreadGroup scanners;
  scanners.Spawn(kScanners, [&](uint32_t id) {
    Random64 rng(seed * 977 + id);
    std::vector<std::pair<uint64_t, uint64_t>> out;
    while (!stop.load(std::memory_order_acquire)) {
      uint64_t start = (rng.Next() % kBlocks) * kBlock;
      tree.RangeScan(start, kUniverse, &out);
      if (out.empty()) {
        // Only legitimate when start is in the top (volatile) block and a
        // writer had the whole block erased at scan time.
        ASSERT_GE(start, kUniverse - kBlock);
        continue;
      }
      uint64_t prev = out[0].first;
      ASSERT_GE(prev, start);
      ASSERT_LT(prev, kUniverse);
      std::set<uint64_t> got{prev};
      for (size_t i = 1; i < out.size(); ++i) {
        ASSERT_GT(out[i].first, prev) << "unsorted or duplicate at " << i;
        prev = out[i].first;
        ASSERT_LT(prev, kUniverse);
        got.insert(prev);
      }
      // Weak consistency floor: keys no writer ever touches are all there.
      for (uint64_t k = start; k < kUniverse; ++k) {
        if (!Volatile(k) && got.count(k) == 0) {
          auto gap = got.upper_bound(k);
          std::string around = "neighbors:";
          auto lo = gap;
          for (int back = 0; back < 3 && lo != got.begin(); ++back) --lo;
          for (auto it = lo; it != got.end() && around.size() < 120; ++it) {
            around += " " + std::to_string(*it);
          }
          ASSERT_EQ(got.count(k), 1u)
              << "stable key " << k << " missing (start=" << start
              << " out=" << out.size() << " " << around << ")";
        }
      }
      scans_done.fetch_add(1);
    }
  });

  writers.Join();
  stop.store(true, std::memory_order_release);
  scanners.Join();
  EXPECT_GT(scans_done.load(), 0u);
  std::string why;
  EXPECT_TRUE(tree.CheckConsistency(&why)) << why;
}

TEST_P(ScanVsDeleteStressTest, VarKeysScanSurvivesLeafDeletion) {
  auto [seed, backend] = GetParam();
  StressVarTree tree(pool_.get(), backend);
  for (uint64_t k = 0; k < kUniverse; ++k) {
    ASSERT_TRUE(tree.Insert(VarKey(k), k));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scans_done{0};
  ThreadGroup writers;
  writers.Spawn(kWriters, [&](uint32_t id) {
    for (int round = 0; round < kWriterRounds / 2; ++round) {
      for (uint64_t b = 1; b < kBlocks; b += 2) {
        if ((b / 2) % kWriters != id) continue;
        for (uint64_t k = b * kBlock; k < (b + 1) * kBlock; ++k) {
          tree.Erase(VarKey(k));
        }
        for (uint64_t k = b * kBlock; k < (b + 1) * kBlock; ++k) {
          tree.Insert(VarKey(k), round);
        }
      }
    }
    (void)seed;
  });

  ThreadGroup scanners;
  scanners.Spawn(kScanners, [&](uint32_t id) {
    Random64 rng(seed * 313 + id);
    std::vector<std::pair<std::string, uint64_t>> out;
    while (!stop.load(std::memory_order_acquire)) {
      uint64_t start_k = (rng.Next() % kBlocks) * kBlock;
      std::string start = VarKey(start_k);
      tree.RangeScan(start, kUniverse, &out);
      if (out.empty()) {
        // Only legitimate when start is in the top (volatile) block and a
        // writer had the whole block erased at scan time.
        ASSERT_GE(start_k, kUniverse - kBlock);
        continue;
      }
      std::set<std::string> got;
      std::string prev;
      for (size_t i = 0; i < out.size(); ++i) {
        if (i > 0) {
          ASSERT_GT(out[i].first, prev) << "unsorted or duplicate at " << i;
        }
        prev = out[i].first;
        ASSERT_GE(prev, start);
        got.insert(prev);
      }
      for (uint64_t k = start_k; k < kUniverse; ++k) {
        if (!Volatile(k) && got.count(VarKey(k)) == 0) {
          auto gap = got.upper_bound(VarKey(k));
          std::string around = "neighbors:";
          auto lo = gap;
          for (int back = 0; back < 3 && lo != got.begin(); ++back) --lo;
          for (auto it = lo; it != got.end() && around.size() < 160; ++it) {
            around += " " + *it;
          }
          ASSERT_EQ(got.count(VarKey(k)), 1u)
              << "stable key " << k << " missing (start=" << start_k
              << " out=" << out.size() << " " << around << ")";
        }
      }
      scans_done.fetch_add(1);
    }
  });

  writers.Join();
  stop.store(true, std::memory_order_release);
  scanners.Join();
  EXPECT_GT(scans_done.load(), 0u);
  std::string why;
  EXPECT_TRUE(tree.CheckConsistency(&why)) << why;
}

class CheckedScanVsDeleteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scm::LatencyModel::Disable();
    path_ = testutil::TestPath("scan_stress_checked");
    Pool::Destroy(path_).ok();
    Pool::Options opts{.size = 256u << 20, .randomize_base = true};
    ASSERT_TRUE(Pool::Create(path_, 1, opts, &pool_).ok());
  }
  void TearDown() override {
    pool_.reset();
    Pool::Destroy(path_).ok();
  }
  std::string path_;
  std::unique_ptr<Pool> pool_;
};

// Same scan-races-delete shape, but run through the checked(...) capture
// decorator and fed to the linearizability checker (DESIGN.md §13): every
// scan row and every point read must be explainable by SOME interleaving of
// the concurrent erase/insert cycles. This is strictly stronger than the
// weak-floor assertion above — a scanner that resurrects a deleted row or
// serves a torn block fails the check even when stable keys all survive.
TEST_F(CheckedScanVsDeleteTest, ScanRowsLinearizeAgainstDeleteChurn) {
  constexpr uint64_t kCKeys = 96;   // shared churn range
  constexpr uint32_t kCWriters = 2;
  constexpr uint32_t kCScanners = 2;
  constexpr int kCRounds = 25;

  check::HistoryRecorder rec;
  auto checked = check::Checked(
      index::MakeFixedIndex("fptree-c", pool_.get(), /*locked=*/true), &rec);
  ASSERT_NE(checked, nullptr);
  auto* idx = checked.get();
  for (uint64_t k = 0; k < kCKeys; ++k) ASSERT_TRUE(idx->Insert(k, k));

  std::atomic<bool> stop{false};
  ThreadGroup writers;
  writers.Spawn(kCWriters, [&](uint32_t id) {
    // Each writer churns its own half so per-key histories stay
    // single-writer (cheap to check) while scans cross both halves.
    uint64_t lo = id * (kCKeys / kCWriters);
    uint64_t hi = lo + kCKeys / kCWriters;
    for (int round = 0; round < kCRounds; ++round) {
      for (uint64_t k = lo; k < hi; ++k) idx->Erase(k);
      for (uint64_t k = lo; k < hi; ++k) {
        idx->Insert(k, (uint64_t{id} << 32) | static_cast<uint64_t>(round));
      }
    }
  });
  ThreadGroup scanners;
  scanners.Spawn(kCScanners, [&](uint32_t id) {
    Random64 rng(0xC0FFEE + id);
    uint64_t v = 0;
    while (!stop.load(std::memory_order_acquire)) {
      uint64_t start = rng.Next() % kCKeys;
      idx->RangeScan(start, 12, [](uint64_t, uint64_t) { return true; });
      idx->Find(rng.Next() % kCKeys, &v);
    }
  });
  writers.Join();
  stop.store(true, std::memory_order_release);
  scanners.Join();

  check::History h = rec.Drain();
  ASSERT_GT(h.size(), 0u);
  check::CheckOptions opts;
  check::CheckResult res = check::CheckHistory(h, opts);
  ASSERT_TRUE(res.decided) << "checker budget: " << res.why;
  ASSERT_TRUE(res.ok) << res.why;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ScanVsDeleteStressTest,
    ::testing::Combine(::testing::Range(uint64_t{1}, 1 + FuzzSeeds(2)),
                       ::testing::Values(htm::Backend::kTl2,
                                         htm::Backend::kGlobalLock)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == htm::Backend::kTl2 ? "_tl2"
                                                            : "_lock");
    });

}  // namespace
}  // namespace core
}  // namespace fptree
