file(REMOVE_RECURSE
  "CMakeFiles/scm_pool_test.dir/scm_pool_test.cc.o"
  "CMakeFiles/scm_pool_test.dir/scm_pool_test.cc.o.d"
  "scm_pool_test"
  "scm_pool_test.pdb"
  "scm_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scm_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
