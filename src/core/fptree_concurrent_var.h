// Copyright (c) FPTree reproduction authors.
//
// Concurrent variable-size-key FPTree (paper Appendix C, Algorithms 14–17,
// under the §4.4 selective-concurrency scheme). Structure mirrors
// fptree_concurrent.h; differences are the out-of-line persistent key blobs
// in leaves and the inner nodes' 8-byte tracked key slots, which hold
// pointers to DRAM-interned separator strings (interned strings are never
// freed, so stale transactional reads remain dereferenceable — the same
// arena discipline as inner nodes).

#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "core/fptree_concurrent.h"  // NodeArena, LogClaimMask
#include "core/var_key.h"
#include "htm/htm.h"
#include "scm/alloc.h"
#include "scm/crash.h"
#include "scm/pmem.h"
#include "scm/pool.h"
#include "util/hash.h"
#include "util/simd.h"
#include "util/threading.h"
#include "util/timer.h"

namespace fptree {
namespace core {

/// \brief Concurrent FPTree for string keys. Default sizes per paper
/// Table 1 (FPTreeCVar: inner 64, leaf 64).
template <typename Value = uint64_t, size_t kLeafCap = 64,
          size_t kInnerCap = 64>
class ConcurrentFPTreeVar {
  static_assert(kLeafCap >= 2 && kLeafCap <= 64);
  static_assert(std::is_trivially_copyable_v<Value>);

 public:
  struct KV {
    scm::PPtr<KeyBlob> pkey;
    Value value;
  };

  struct alignas(64) LeafNode {
    uint8_t fingerprints[kLeafCap];
    uint64_t bitmap;
    scm::PPtr<LeafNode> next;
    uint64_t lock_word;
    KV kv[kLeafCap];
  };

  static constexpr size_t kNumLogs = 64;

  struct alignas(64) SplitLog {
    scm::PPtr<LeafNode> p_current;
    scm::PPtr<LeafNode> p_new;
  };

  struct alignas(64) PRoot {
    static constexpr uint64_t kMagic = 0xF97EE000000007ULL;

    uint64_t magic;
    scm::PPtr<LeafNode> head;
    scm::PPtr<KeyBlob> gc_slot;
    SplitLog split_logs[kNumLogs];
  };

  explicit ConcurrentFPTreeVar(scm::Pool* pool,
                               htm::Backend backend = htm::Backend::kTl2)
      : pool_(pool), htm_(backend), arena_(sizeof(Inner)) {
    AttachOrInit();
  }

  ConcurrentFPTreeVar(const ConcurrentFPTreeVar&) = delete;
  ConcurrentFPTreeVar& operator=(const ConcurrentFPTreeVar&) = delete;

  bool Find(std::string_view key, Value* value) {
    htm::Tx tx(&htm_);
    for (;;) {
      SCM_CRASH_POINT("cfptreevar.retry");
      tx.Begin();
      LeafNode* leaf = FindLeafTx(&tx, key);
      if (!tx.ok() || leaf == nullptr) continue;
      if ((tx.Load(&leaf->lock_word) & 1) != 0) {
        tx.UserAbort();
        continue;
      }
      bool found = false;
      Value out{};
      int slot = ScanLeaf(leaf, key);
      if (slot >= 0) {
        found = true;
        out = leaf->kv[slot].value;
      }
      if (!tx.Commit()) continue;
      if (found) *value = out;
      return found;
    }
  }

  /// Paper Alg. 14.
  bool Insert(std::string_view key, const Value& value) {
    bool inserted = false;
    return InsertChecked(key, value, &inserted).ok() && inserted;
  }

  /// Status-propagating insert (DESIGN.md §12): ResourceExhausted means the
  /// pool could not hold the split leaf or the key blob; the leaf lock is
  /// released and the tree is unchanged.
  Status InsertChecked(std::string_view key, const Value& value,
                       bool* inserted) {
    *inserted = false;
    enum class Decision { kInsert, kSplit };
    htm::Tx tx(&htm_);
    LeafNode* leaf = nullptr;
    Decision decision{};
    for (;;) {
      SCM_CRASH_POINT("cfptreevar.retry");
      tx.Begin();
      leaf = FindLeafTx(&tx, key);
      if (!tx.ok() || leaf == nullptr) continue;
      if ((tx.Load(&leaf->lock_word) & 1) != 0) {
        tx.UserAbort();
        continue;
      }
      if (ScanLeaf(leaf, key) >= 0) {
        if (!tx.Commit()) continue;
        return Status::OK();
      }
      decision = IsFull(leaf) ? Decision::kSplit : Decision::kInsert;
      tx.Store(&leaf->lock_word, NewOddGen());
      if (tx.Commit()) break;
    }

    LeafNode* new_leaf = nullptr;
    std::string split_key;
    LeafNode* target = leaf;
    if (decision == Decision::kSplit) {
      new_leaf = SplitLeaf(leaf, &split_key);
      if (new_leaf == nullptr) {
        UnlockLeaf(leaf);
        return NoSpace();
      }
      if (key > split_key) target = new_leaf;
    }
    bool staged = InsertKV(target, key, value);
    if (!staged) {
      if (decision == Decision::kSplit) {
        UpdateParents(split_key, new_leaf);
        UnlockLeaf(new_leaf);
      }
      UnlockLeaf(leaf);
      return NoSpace();
    }
    size_.fetch_add(1, std::memory_order_relaxed);

    if (decision == Decision::kSplit) {
      UpdateParents(split_key, new_leaf);
      UnlockLeaf(new_leaf);
    }
    UnlockLeaf(leaf);
    *inserted = true;
    return Status::OK();
  }

  /// Paper Alg. 16 (alias the blob into the new slot; one bitmap commit).
  bool Update(std::string_view key, const Value& value) {
    bool updated = false;
    return UpdateChecked(key, value, &updated).ok() && updated;
  }

  /// Status-propagating update: on ResourceExhausted the old value remains
  /// intact and readable, and the leaf lock is released.
  Status UpdateChecked(std::string_view key, const Value& value,
                       bool* updated) {
    *updated = false;
    enum class Decision { kUpdate, kSplit };
    htm::Tx tx(&htm_);
    LeafNode* leaf = nullptr;
    Decision decision{};
    int prev_slot = -1;
    for (;;) {
      SCM_CRASH_POINT("cfptreevar.retry");
      tx.Begin();
      leaf = FindLeafTx(&tx, key);
      if (!tx.ok() || leaf == nullptr) continue;
      if ((tx.Load(&leaf->lock_word) & 1) != 0) {
        tx.UserAbort();
        continue;
      }
      prev_slot = ScanLeaf(leaf, key);
      if (prev_slot < 0) {
        if (!tx.Commit()) continue;
        return Status::OK();
      }
      decision = IsFull(leaf) ? Decision::kSplit : Decision::kUpdate;
      tx.Store(&leaf->lock_word, NewOddGen());
      if (tx.Commit()) break;
    }

    LeafNode* new_leaf = nullptr;
    std::string split_key;
    LeafNode* target = leaf;
    if (decision == Decision::kSplit) {
      new_leaf = SplitLeaf(leaf, &split_key);
      if (new_leaf == nullptr) {
        UnlockLeaf(leaf);
        return NoSpace();
      }
      if (key > split_key) target = new_leaf;
      prev_slot = ScanLeaf(target, key);
      assert(prev_slot >= 0);
    }
    int slot = FindFirstZero(target);
    assert(slot >= 0);
    scm::pmem::StorePPtr(&target->kv[slot].pkey, target->kv[prev_slot].pkey);
    scm::pmem::Store(&target->kv[slot].value, value);
    scm::pmem::Store(&target->fingerprints[slot], Fingerprint(key));
    scm::pmem::Persist(&target->kv[slot]);
    scm::pmem::Persist(&target->fingerprints[slot], 1);
    uint64_t bmp = target->bitmap;
    bmp &= ~(uint64_t{1} << prev_slot);
    bmp |= uint64_t{1} << slot;
    scm::pmem::StorePersist(&target->bitmap, bmp);
    scm::pmem::StorePPtrPersist(&target->kv[prev_slot].pkey,
                                scm::PPtr<KeyBlob>::Null());

    if (decision == Decision::kSplit) {
      UpdateParents(split_key, new_leaf);
      UnlockLeaf(new_leaf);
    }
    UnlockLeaf(leaf);
    *updated = true;
    return Status::OK();
  }

  /// Concurrent insert-or-update in one HTM acquisition (index API v3):
  /// one probe picks the Alg. 14 insert tail or the Alg. 16 aliasing update
  /// tail. Returns true when the key was newly inserted.
  bool Upsert(std::string_view key, const Value& value) {
    bool inserted = false;
    UpsertChecked(key, value, &inserted);
    return inserted;
  }

  /// Status-propagating upsert; on ResourceExhausted nothing was applied
  /// and the leaf lock is released.
  Status UpsertChecked(std::string_view key, const Value& value,
                       bool* inserted) {
    *inserted = false;
    enum class Decision { kInsert, kInsertSplit, kUpdate, kUpdateSplit };
    htm::Tx tx(&htm_);
    LeafNode* leaf = nullptr;
    Decision decision{};
    int prev_slot = -1;
    for (;;) {
      SCM_CRASH_POINT("cfptreevar.retry");
      tx.Begin();
      leaf = FindLeafTx(&tx, key);
      if (!tx.ok() || leaf == nullptr) continue;
      if ((tx.Load(&leaf->lock_word) & 1) != 0) {
        tx.UserAbort();
        continue;
      }
      prev_slot = ScanLeaf(leaf, key);
      if (prev_slot < 0) {
        decision = IsFull(leaf) ? Decision::kInsertSplit : Decision::kInsert;
      } else {
        decision = IsFull(leaf) ? Decision::kUpdateSplit : Decision::kUpdate;
      }
      tx.Store(&leaf->lock_word, NewOddGen());
      if (tx.Commit()) break;
    }

    LeafNode* new_leaf = nullptr;
    std::string split_key;
    LeafNode* target = leaf;
    bool split = decision == Decision::kInsertSplit ||
                 decision == Decision::kUpdateSplit;
    if (split) {
      new_leaf = SplitLeaf(leaf, &split_key);
      if (new_leaf == nullptr) {
        UnlockLeaf(leaf);
        return NoSpace();
      }
      if (key > split_key) target = new_leaf;
    }

    if (decision == Decision::kInsert || decision == Decision::kInsertSplit) {
      if (!InsertKV(target, key, value)) {
        if (split) {
          UpdateParents(split_key, new_leaf);
          UnlockLeaf(new_leaf);
        }
        UnlockLeaf(leaf);
        return NoSpace();
      }
      size_.fetch_add(1, std::memory_order_relaxed);
      *inserted = true;
    } else {
      if (split) {
        prev_slot = ScanLeaf(target, key);
        assert(prev_slot >= 0);
      }
      int slot = FindFirstZero(target);
      assert(slot >= 0);
      scm::pmem::StorePPtr(&target->kv[slot].pkey,
                           target->kv[prev_slot].pkey);
      scm::pmem::Store(&target->kv[slot].value, value);
      scm::pmem::Store(&target->fingerprints[slot], Fingerprint(key));
      scm::pmem::Persist(&target->kv[slot]);
      scm::pmem::Persist(&target->fingerprints[slot], 1);
      uint64_t bmp = target->bitmap;
      bmp &= ~(uint64_t{1} << prev_slot);
      bmp |= uint64_t{1} << slot;
      scm::pmem::StorePersist(&target->bitmap, bmp);
      scm::pmem::StorePPtrPersist(&target->kv[prev_slot].pkey,
                                  scm::PPtr<KeyBlob>::Null());
    }

    if (split) {
      UpdateParents(split_key, new_leaf);
      UnlockLeaf(new_leaf);
    }
    UnlockLeaf(leaf);
    return Status::OK();
  }

  /// Paper Alg. 15. (Leaf reclamation is delegated to recovery sweeps, as
  /// in our single-threaded var tree; emptied leaves stay linked.)
  bool Erase(std::string_view key) {
    htm::Tx tx(&htm_);
    LeafNode* leaf = nullptr;
    for (;;) {
      SCM_CRASH_POINT("cfptreevar.retry");
      tx.Begin();
      leaf = FindLeafTx(&tx, key);
      if (!tx.ok() || leaf == nullptr) continue;
      if ((tx.Load(&leaf->lock_word) & 1) != 0) {
        tx.UserAbort();
        continue;
      }
      if (ScanLeaf(leaf, key) < 0) {
        if (!tx.Commit()) continue;
        return false;
      }
      tx.Store(&leaf->lock_word, NewOddGen());
      if (tx.Commit()) break;
    }
    int slot = ScanLeaf(leaf, key);
    assert(slot >= 0);
    scm::pmem::StorePersist(&leaf->bitmap,
                            leaf->bitmap & ~(uint64_t{1} << slot));
    pool_->allocator()->Deallocate(&leaf->kv[slot].pkey);
    UnlockLeaf(leaf);
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  /// Ordered scan of up to `limit` pairs with key >= start; the leaf-chain
  /// walk mirrors the fixed-key concurrent tree: each leaf is snapshotted
  /// under the generation-witnessed lock-word protocol, the whole scan is
  /// weakly consistent with concurrent writers. Key blobs read from a racy
  /// snapshot always point into mapped pool memory (the allocator never
  /// unmaps), so a stale read yields garbage bytes that validation discards.
  /// The next-leaf offset is captured inside the validated snapshot window
  /// and a leaf that stays locked is abandoned after a bounded-backoff
  /// budget (the scan re-descends from the root at the smallest key not yet
  /// emitted) — the same protocol as the fixed-key concurrent tree, even
  /// though this tree never unlinks leaves, so the scan cannot livelock on
  /// a writer descheduled while holding a leaf.
  void RangeScan(std::string_view start, size_t limit,
                 std::vector<std::pair<std::string, Value>>* out) {
    out->clear();
    if (limit == 0) return;
    htm::Tx tx(&htm_);
    std::string cursor(start);
    LeafNode* leaf = DescendForScan(&tx, cursor);
    std::vector<std::pair<std::string, Value>> in_leaf;
    // Guard against pathological walks over leaves recycled mid-scan.
    const uint64_t max_hops = pool_->size() / sizeof(LeafNode) + 2;
    uint64_t guard = max_hops;
    while (leaf != nullptr && out->size() < limit && guard-- > 0) {
      uint64_t next_off = 0;
      if (!SnapshotLeaf(leaf, cursor, &in_leaf, &next_off)) {
        leaf = DescendForScan(&tx, cursor);
        guard = max_hops;  // fresh descent, fresh chain budget
        continue;
      }
      std::sort(in_leaf.begin(), in_leaf.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (auto& p : in_leaf) {
        if (out->size() >= limit) break;
        cursor.assign(p.first);
        cursor.push_back('\0');  // successor: the smallest key > p.first
        out->push_back(std::move(p));
      }
      leaf = next_off == 0
                 ? nullptr
                 : scm::PPtr<LeafNode>{pool_->id(), next_off}.get();
    }
  }

  // --- Batched operations (batch pipeline, DESIGN.md §11) ------------------

  /// Chunk / window sizing; see the fixed-key concurrent tree.
  static constexpr size_t kBatchChunk = 16;
  static constexpr size_t kBatchWindowOps = 16;
  static constexpr size_t kHtmBatchLeaves = 4;
  static constexpr size_t kBatchTxRetries = 8;

  /// Batched point lookups with advisory staging (see the fixed-key
  /// concurrent tree's MultiGet); the var-key staging also prefetches the
  /// candidate slots' out-of-line key blobs — racy reads of pool memory
  /// that is never unmapped, bounds-checked the same way ScanLeaf's
  /// optimistic probes are. Resolution runs through the unchanged Find().
  void MultiGet(const std::string_view* keys, size_t n, Value* values,
                uint8_t* found) {
#if !defined(FPTREE_NO_PREFETCH)
    LeafNode* leaves[kBatchChunk];
    htm::Tx tx(&htm_);
#endif
    for (size_t base = 0; base < n; base += kBatchChunk) {
      size_t m = std::min(kBatchChunk, n - base);
#if !defined(FPTREE_NO_PREFETCH)
      tx.Begin();
      bool staged = true;
      for (size_t i = 0; i < m; ++i) {
        leaves[i] = FindLeafTx(&tx, keys[base + i]);
        if (!tx.ok() || leaves[i] == nullptr) {
          staged = false;
          break;
        }
      }
      if (staged) {
        staged = tx.Commit();
      } else if (tx.ok()) {
        tx.UserAbort();
      }
      if (staged) {
        scm::ReadBatch rb;
        for (size_t i = 0; i < m; ++i) {
          rb.Add(leaves[i],
                 sizeof(leaves[i]->fingerprints) + sizeof(leaves[i]->bitmap));
        }
        rb.Issue();
        for (size_t i = 0; i < m; ++i) {
          LeafNode* leaf = leaves[i];
          uint64_t bmp = scm::pmem::Load(&leaf->bitmap);
          alignas(64) uint8_t fps[64] = {};
          const auto* words =
              reinterpret_cast<const uint64_t*>(leaf->fingerprints);
          for (size_t wd = 0; wd < (kLeafCap + 7) / 8; ++wd) {
            uint64_t word = __atomic_load_n(words + wd, __ATOMIC_RELAXED);
            std::memcpy(fps + wd * 8, &word, sizeof(word));
          }
          uint64_t cand =
              simd::MatchByte(fps, kLeafCap, Fingerprint(keys[base + i])) &
              bmp;
          while (cand != 0) {
            size_t s = static_cast<size_t>(__builtin_ctzll(cand));
            cand &= cand - 1;
            rb.Add(&leaf->kv[s], sizeof(KV));
            uint64_t off = scm::pmem::Load(&leaf->kv[s].pkey.offset);
            if (off == 0 || off >= pool_->size()) continue;
            const KeyBlob* blob =
                scm::PPtr<KeyBlob>{leaf->kv[s].pkey.pool_id, off}.get();
            uint64_t len = scm::pmem::Load(&blob->len);
            if (len <= kMaxVarKeyLen) rb.Add(blob, sizeof(uint64_t) + len);
          }
        }
        rb.Issue();
      }
#endif
      for (size_t i = 0; i < m; ++i) {
        found[base + i] = Find(keys[base + i], &values[base + i]) ? 1 : 0;
      }
    }
  }

  /// Batched Insert via planned write windows (see the fixed-key
  /// concurrent tree's MultiPut); key blobs are allocated while the leaf
  /// is locked, before the window's single batched fence and per-leaf
  /// bitmap publish. inserted may be nullptr.
  void MultiPut(const std::string_view* keys, const Value* values, size_t n,
                uint8_t* inserted) {
    MultiWrite(keys, values, n, inserted, /*upsert=*/false);
  }

  /// Batched Upsert; duplicates within the batch behave last-wins. Staged
  /// updates alias the previous slot's blob (Alg. 16) and reset the old
  /// pointer after the publish, all resets sharing one batched fence.
  void MultiUpsert(const std::string_view* keys, const Value* values,
                   size_t n, uint8_t* inserted) {
    MultiWrite(keys, values, n, inserted, /*upsert=*/true);
  }

  size_t Size() const { return size_.load(std::memory_order_relaxed); }
  uint64_t DramBytes() const { return arena_.MemoryBytes() + intern_bytes_; }
  uint64_t ScmBytes() const { return pool_->allocator()->heap_used_bytes(); }
  uint64_t last_recovery_nanos() const { return recovery_nanos_; }
  htm::HtmStats& htm_stats() { return htm_.stats(); }
  const htm::HtmStats& htm_stats() const { return htm_.stats(); }

  bool CheckConsistency(std::string* why) const {
    LeafNode* leaf = proot_->head.get();
    std::string prev_max;
    bool first = true;
    size_t total = 0;
    while (leaf != nullptr) {
      std::string mn, mx;
      size_t cnt = 0;
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (!((leaf->bitmap >> i) & 1)) continue;
        std::string k(leaf->kv[i].pkey.get()->view());
        if (cnt == 0 || k < mn) mn = k;
        if (cnt == 0 || k > mx) mx = k;
        ++cnt;
      }
      if (cnt > 0) {
        if (!first && mn <= prev_max) {
          *why = "leaf list out of order";
          return false;
        }
        prev_max = mx;
        first = false;
      }
      total += cnt;
      leaf = leaf->next.get();
    }
    if (total != Size()) {
      *why = "size mismatch";
      return false;
    }
    return true;
  }

  /// Quiesced full invariant sweep (DESIGN.md §8): released lock words,
  /// fingerprint agreement, leaf-list vs inner-index routing agreement,
  /// valid-slot blob soundness (no two valid slots alias one blob; stale
  /// pointers in invalid slots are tolerated until the next recovery
  /// sweep), and the persistent-leak audit.
  bool CheckInvariants(std::string* why) {
    if (!CheckConsistency(why)) return false;
    std::unordered_set<uint64_t> reachable;
    std::unordered_set<uint64_t> valid_blobs;
    reachable.insert(pool_->root().offset);
    for (LeafNode* leaf = proot_->head.get(); leaf != nullptr;
         leaf = leaf->next.get()) {
      reachable.insert(pool_->ToPPtr(leaf).offset);
      if ((scm::pmem::Load(&leaf->lock_word) & 1) != 0) {
        *why = "quiesced leaf still holds its lock word";
        return false;
      }
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (!((leaf->bitmap >> i) & 1)) continue;
        const KV& kv = leaf->kv[i];
        if (kv.pkey.IsNull()) {
          *why = "valid slot holds a null key blob";
          return false;
        }
        const KeyBlob* blob = kv.pkey.get();
        if (blob->len > kMaxVarKeyLen) {
          *why = "key blob length exceeds the maximum";
          return false;
        }
        std::string k(blob->view());
        if (leaf->fingerprints[i] != Fingerprint(k)) {
          *why = "fingerprint mismatch for key \"" + k + "\"";
          return false;
        }
        if (!valid_blobs.insert(kv.pkey.offset).second) {
          *why = "two valid slots alias one key blob (\"" + k + "\")";
          return false;
        }
        if (FindLeafRaw(k) != leaf) {
          *why = "inner index routes key \"" + k + "\" to the wrong leaf";
          return false;
        }
      }
    }
    reachable.insert(valid_blobs.begin(), valid_blobs.end());
    if (!proot_->gc_slot.IsNull()) reachable.insert(proot_->gc_slot.offset);
    for (size_t i = 0; i < kNumLogs; ++i) {
      const SplitLog& sl = proot_->split_logs[i];
      if (!sl.p_current.IsNull()) reachable.insert(sl.p_current.offset);
      if (!sl.p_new.IsNull()) reachable.insert(sl.p_new.offset);
    }
    for (uint64_t off : pool_->allocator()->AllocatedPayloadOffsets()) {
      if (reachable.count(off) == 0) {
        *why = "leaked block at offset " + std::to_string(off);
        return false;
      }
    }
    return true;
  }

 private:
  /// Untracked descent for quiesced audits (no transaction, no stats).
  LeafNode* FindLeafRaw(std::string_view key) {
    Inner* node = reinterpret_cast<Inner*>(root_);
    for (uint32_t depth = 0; depth < 32; ++depth) {
      if (node == nullptr) return nullptr;
      uint64_t n = node->n_keys;
      uint64_t lo = 0, hi = n;
      while (lo < hi) {
        uint64_t mid = (lo + hi) / 2;
        if (KeyAt(node->keys[mid]) < key) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      uint64_t child = node->children[lo];
      if (node->leaf_children != 0) {
        return reinterpret_cast<LeafNode*>(child);
      }
      node = reinterpret_cast<Inner*>(child);
    }
    return nullptr;
  }

  struct Inner {
    uint64_t n_keys;
    uint64_t leaf_children;
    uint64_t keys[kInnerCap];       ///< const std::string* (interned)
    uint64_t children[kInnerCap + 1];
  };

  const std::string* Intern(std::string_view s) {
    std::lock_guard<std::mutex> l(intern_mu_);
    interned_.emplace_back(new std::string(s));
    intern_bytes_ += s.size() + sizeof(std::string);
    return interned_.back().get();
  }

  static std::string_view KeyAt(uint64_t slot_value) {
    return *reinterpret_cast<const std::string*>(slot_value);
  }

  LeafNode* FindLeafTx(htm::Tx* tx, std::string_view key) {
    Inner* node = reinterpret_cast<Inner*>(tx->Load(&root_));
    for (uint32_t depth = 0; depth < 32; ++depth) {
      if (!tx->ok() || node == nullptr) return nullptr;
      uint64_t n = tx->Load(&node->n_keys);
      if (n > kInnerCap) return nullptr;
      uint64_t lo = 0, hi = n;
      while (lo < hi) {
        uint64_t mid = (lo + hi) / 2;
        uint64_t kslot = tx->Load(&node->keys[mid]);
        if (kslot == 0 || !tx->ok()) return nullptr;
        if (KeyAt(kslot) < key) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (!tx->ok()) return nullptr;
      uint64_t child = tx->Load(&node->children[lo]);
      if (tx->Load(&node->leaf_children) != 0) {
        return reinterpret_cast<LeafNode*>(child);
      }
      node = reinterpret_cast<Inner*>(child);
    }
    return nullptr;
  }

  static bool IsFull(const LeafNode* leaf) {
    return static_cast<size_t>(
               __builtin_popcountll(scm::pmem::Load(&leaf->bitmap))) ==
           kLeafCap;
  }
  static int FindFirstZero(const LeafNode* leaf) {
    uint64_t inv = ~scm::pmem::Load(&leaf->bitmap);
    if constexpr (kLeafCap < 64) inv &= (uint64_t{1} << kLeafCap) - 1;
    return inv == 0 ? -1 : __builtin_ctzll(inv);
  }

  int ScanLeaf(LeafNode* leaf, std::string_view key) {
    scm::ReadScm(leaf, sizeof(leaf->fingerprints) + sizeof(leaf->bitmap));
    uint64_t bmp = scm::pmem::Load(&leaf->bitmap);
    std::atomic_thread_fence(std::memory_order_acquire);
    // Race-free byte-parallel fingerprint filter; see the fixed-key
    // ScanLeaf for why the word-wise snapshot stays inside the line.
    alignas(64) uint8_t fps[64] = {};
    const auto* words = reinterpret_cast<const uint64_t*>(leaf->fingerprints);
    for (size_t w = 0; w < (kLeafCap + 7) / 8; ++w) {
      uint64_t word = __atomic_load_n(words + w, __ATOMIC_RELAXED);
      std::memcpy(fps + w * 8, &word, sizeof(word));
    }
    uint64_t candidates =
        simd::MatchByte(fps, kLeafCap, Fingerprint(key)) & bmp;
    while (candidates != 0) {
      size_t i = static_cast<size_t>(__builtin_ctzll(candidates));
      candidates &= candidates - 1;
      scm::ReadScm(&leaf->kv[i], sizeof(KV));
      uint64_t off = scm::pmem::Load(&leaf->kv[i].pkey.offset);
      if (off == 0) continue;
      const KeyBlob* blob =
          scm::PPtr<KeyBlob>{leaf->kv[i].pkey.pool_id, off}.get();
      if (CompareBlob(blob, key) == 0) return static_cast<int>(i);
    }
    return -1;
  }

  // --- Batched write windows (batch pipeline, DESIGN.md §11) ---------------

  /// One planned batch operation; see the fixed-key concurrent tree.
  /// prev_slot >= 0: aliasing update; -1: insert; -2: exists no-op.
  struct BatchOp {
    LeafNode* leaf;
    int prev_slot;
  };

  void MultiWrite(const std::string_view* keys, const Value* values,
                  size_t n, uint8_t* inserted, bool upsert) {
    BatchOp ops[kBatchWindowOps];
    size_t i = 0;
    while (i < n) {
      size_t w =
          PlanWindow(keys + i, std::min(n - i, kBatchWindowOps), upsert, ops);
      if (w == 0) {
        bool ok =
            upsert ? Upsert(keys[i], values[i]) : Insert(keys[i], values[i]);
        if (inserted != nullptr) inserted[i] = ok ? 1 : 0;
        ++i;
        continue;
      }
      ExecuteWindow(keys + i, values + i, w, ops,
                    inserted == nullptr ? nullptr : inserted + i);
      i += w;
    }
  }

  /// Plans one write window inside a single transaction and atomically
  /// lock-acquires every leaf it will write; see the fixed-key concurrent
  /// tree's PlanWindow for the truncation and fallback rules.
  size_t PlanWindow(const std::string_view* keys, size_t max_ops, bool upsert,
                    BatchOp* ops) {
    htm::Tx tx(&htm_);
    for (size_t attempt = 0; attempt < kBatchTxRetries; ++attempt) {
      SCM_CRASH_POINT("cfptreevar.retry");
      tx.Begin();
      LeafNode* wleaves[kHtmBatchLeaves];
      size_t wstaged[kHtmBatchLeaves];
      size_t wfree[kHtmBatchLeaves];
      size_t nleaves = 0;
      size_t planned = 0;
      bool doomed = false;
      bool first_needs_single = false;
      while (planned < max_ops) {
        std::string_view key = keys[planned];
        bool dup = false;
        for (size_t j = 0; j < planned; ++j) {
          if (keys[j] == key) {
            dup = true;
            break;
          }
        }
        if (dup) break;
        LeafNode* leaf = FindLeafTx(&tx, key);
        if (!tx.ok() || leaf == nullptr) {
          doomed = true;
          break;
        }
        if ((tx.Load(&leaf->lock_word) & 1) != 0) {
          if (planned == 0) doomed = true;
          break;
        }
        std::atomic_thread_fence(std::memory_order_acquire);
        int prev = ScanLeaf(leaf, key);
        int prev_rec;
        bool stages = true;
        if (prev >= 0) {
          if (upsert) {
            prev_rec = prev;
          } else {
            prev_rec = -2;
            stages = false;
          }
        } else {
          prev_rec = -1;
        }
        if (stages) {
          size_t li = 0;
          while (li < nleaves && wleaves[li] != leaf) ++li;
          if (li == nleaves) {
            if (nleaves == kHtmBatchLeaves) break;
            wleaves[nleaves] = leaf;
            wstaged[nleaves] = 0;
            wfree[nleaves] =
                kLeafCap - static_cast<size_t>(__builtin_popcountll(
                               scm::pmem::Load(&leaf->bitmap)));
            ++nleaves;
          }
          // A just-added leaf with nothing staged must leave the lock set
          // before the break: the executor only unlocks leaves that staged
          // ops, so locking it would leak the lock (and deadlock the next
          // op touching that leaf).
          if (wstaged[li] + 1 > wfree[li]) {
            if (li == nleaves - 1 && wstaged[li] == 0) --nleaves;
            if (planned == 0) first_needs_single = true;
            break;
          }
          ++wstaged[li];
        }
        ops[planned] = BatchOp{leaf, prev_rec};
        ++planned;
      }
      if (doomed) {
        if (tx.ok()) tx.UserAbort();
        continue;
      }
      if (first_needs_single || planned == 0) {
        if (tx.ok()) tx.UserAbort();
        return 0;
      }
      for (size_t li = 0; li < nleaves; ++li) {
        tx.Store(&wleaves[li]->lock_word, NewOddGen());
      }
      if (tx.Commit()) return planned;
    }
    return 0;
  }

  /// Executes a planned window outside any transaction: blob allocations
  /// and staged KV/fingerprint stores first (one batched fence for all of
  /// them), one p-atomic bitmap publish per written leaf, then the staged
  /// updates' old-pointer resets (one more batched fence), then the locks
  /// drop. Each key is individually atomic at its leaf's bitmap flip.
  void ExecuteWindow(const std::string_view* keys, const Value* values,
                     size_t w, const BatchOp* ops, uint8_t* inserted) {
    LeafNode* wleaves[kHtmBatchLeaves];
    uint64_t set[kHtmBatchLeaves];
    uint64_t clear[kHtmBatchLeaves];
    size_t nleaves = 0;
    scm::pmem::PersistBatch pb;
    for (size_t i = 0; i < w; ++i) {
      LeafNode* leaf = ops[i].leaf;
      if (ops[i].prev_slot == -2) {  // insert over an existing key
        if (inserted != nullptr) inserted[i] = 0;
        continue;
      }
      size_t li = 0;
      while (li < nleaves && wleaves[li] != leaf) ++li;
      if (li == nleaves) {
        wleaves[nleaves] = leaf;
        set[nleaves] = 0;
        clear[nleaves] = 0;
        ++nleaves;
      }
      uint64_t used = scm::pmem::Load(&leaf->bitmap) | set[li];
      if constexpr (kLeafCap < 64) used |= ~((uint64_t{1} << kLeafCap) - 1);
      assert(used != ~uint64_t{0});  // planner budgeted the free slots
      int slot = __builtin_ctzll(~used);
      if (ops[i].prev_slot >= 0) {
        scm::pmem::StorePPtr(&leaf->kv[slot].pkey,
                             leaf->kv[ops[i].prev_slot].pkey);
      } else {
        Status s = AllocateKeyBlob(pool_, &leaf->kv[slot].pkey, keys[i]);
        if (!s.ok()) {
          // Pool exhausted mid-window: drop this insert (slot stays
          // unpublished; the bitmap flip below never covers it).
          if (inserted != nullptr) inserted[i] = 0;
          continue;
        }
        SCM_CRASH_POINT("cfptreevar.multiput.key_allocated");
      }
      scm::pmem::Store(&leaf->kv[slot].value, values[i]);
      scm::pmem::Store(&leaf->fingerprints[slot], Fingerprint(keys[i]));
      pb.Add(&leaf->kv[slot]);
      pb.Add(&leaf->fingerprints[slot], 1);
      set[li] |= uint64_t{1} << slot;
      if (ops[i].prev_slot >= 0) {
        clear[li] |= uint64_t{1} << ops[i].prev_slot;
        if (inserted != nullptr) inserted[i] = 0;
      } else {
        size_.fetch_add(1, std::memory_order_relaxed);
        if (inserted != nullptr) inserted[i] = 1;
      }
    }
    pb.Commit();
    SCM_CRASH_POINT("cfptreevar.multiput.before_bitmap");
    for (size_t li = 0; li < nleaves; ++li) {
      uint64_t bmp = scm::pmem::Load(&wleaves[li]->bitmap);
      scm::pmem::StorePersist(&wleaves[li]->bitmap,
                              (bmp & ~clear[li]) | set[li]);
    }
    SCM_CRASH_POINT("cfptreevar.multiput.after_bitmap");
    for (size_t i = 0; i < w; ++i) {
      if (ops[i].prev_slot < 0) continue;
      scm::pmem::StorePPtr(&ops[i].leaf->kv[ops[i].prev_slot].pkey,
                           scm::PPtr<KeyBlob>::Null());
      pb.Add(&ops[i].leaf->kv[ops[i].prev_slot].pkey);
    }
    pb.Commit();
    SCM_CRASH_POINT("cfptreevar.multiput.old_reset");
    for (size_t li = 0; li < nleaves; ++li) UnlockLeaf(wleaves[li]);
  }

  /// Per-leaf retry budget for RangeScan; see the fixed-key tree.
  static constexpr uint32_t kScanLockRounds = 64;

  LeafNode* DescendForScan(htm::Tx* tx, std::string_view key) {
    for (;;) {
      SCM_CRASH_POINT("cfptreevar.retry");
      tx->Begin();
      LeafNode* leaf = FindLeafTx(tx, key);
      if (!tx->ok() || leaf == nullptr) continue;
      if (tx->Commit()) return leaf;
    }
  }

  /// One validated RangeScan leaf snapshot (pairs with key >= `ge`, plus
  /// the next-leaf offset captured inside the validated window). The
  /// snapshot is witnessed by the lock word's generation: good only if the
  /// word holds the same even (released) value before and after the reads,
  /// which proves no writer locked the leaf in between — a plain
  /// locked/unlocked bit would admit the split-refill bitmap ABA (see the
  /// fixed-key tree's SnapshotLeaf). Returns false once the
  /// bounded-backoff budget is exhausted.
  bool SnapshotLeaf(LeafNode* leaf, const std::string& ge,
                    std::vector<std::pair<std::string, Value>>* out,
                    uint64_t* next_off) {
    for (uint32_t round = 0; round < kScanLockRounds; ++round) {
      SCM_CRASH_POINT("cfptreevar.retry");
      uint64_t w1 = __atomic_load_n(&leaf->lock_word, __ATOMIC_ACQUIRE);
      if ((w1 & 1) != 0) {
        BackoffSpin(round);
        continue;
      }
      uint64_t bmp = scm::pmem::Load(&leaf->bitmap);
      std::atomic_thread_fence(std::memory_order_acquire);
      out->clear();
      bool torn = false;
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (!((bmp >> i) & 1)) continue;
        scm::ReadScm(&leaf->kv[i], sizeof(KV));
        scm::PPtr<KeyBlob> pkey;
        pkey.pool_id = scm::pmem::Load(&leaf->kv[i].pkey.pool_id);
        pkey.offset = scm::pmem::Load(&leaf->kv[i].pkey.offset);
        if (pkey.IsNull()) {  // slot mutated under us; snapshot is stale
          torn = true;
          break;
        }
        const KeyBlob* blob = pkey.get();
        uint64_t len = scm::pmem::Load(&blob->len);
        if (len > kMaxVarKeyLen) {  // recycled blob; snapshot is stale
          torn = true;
          break;
        }
        scm::ReadScm(blob, sizeof(uint64_t) + len);
        std::string k(blob->bytes, len);
        if (k >= ge) out->emplace_back(std::move(k), leaf->kv[i].value);
      }
      uint64_t next = scm::pmem::Load(&leaf->next.offset);
      // Validate: same generation on both sides of the reads, next inside
      // the pool.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (!torn && scm::pmem::Load(&leaf->lock_word) == w1 &&
          next < pool_->size()) {
        *next_off = next;
        return true;
      }
    }
    return false;
  }

  /// Lock-word generations (see the fixed-key tree): acquisitions store a
  /// fresh odd value, releases a fresh even value, so an unchanged lock
  /// word witnesses an untouched leaf across a scan's read window.
  uint64_t NewOddGen() {
    return lock_gen_.fetch_add(2, std::memory_order_relaxed) | 1;
  }
  uint64_t NewEvenGen() {
    return lock_gen_.fetch_add(2, std::memory_order_relaxed);
  }

  void UnlockLeaf(LeafNode* leaf) {
    __atomic_store_n(&leaf->lock_word, NewEvenGen(), __ATOMIC_RELEASE);
  }

  static Status NoSpace() {
    return Status::ResourceExhausted(
        "fptree-c-var: pool out of space (allocation failed)");
  }

  /// Returns false when the key-blob allocation fails; nothing is
  /// published in that case (no bitmap flip, no slot with a null blob).
  bool InsertKV(LeafNode* leaf, std::string_view key, const Value& value) {
    int slot = FindFirstZero(leaf);
    assert(slot >= 0);
    Status s = AllocateKeyBlob(pool_, &leaf->kv[slot].pkey, key);
    if (!s.ok()) return false;
    scm::pmem::Store(&leaf->kv[slot].value, value);
    scm::pmem::Store(&leaf->fingerprints[slot], Fingerprint(key));
    scm::pmem::Persist(&leaf->kv[slot]);
    scm::pmem::Persist(&leaf->fingerprints[slot], 1);
    scm::pmem::StorePersist(&leaf->bitmap,
                            leaf->bitmap | (uint64_t{1} << slot));
    return true;
  }

  /// Returns nullptr when the new leaf cannot be allocated; the claimed
  /// log is reset and released so recovery sees no in-flight split.
  LeafNode* SplitLeaf(LeafNode* leaf, std::string* split_key) {
    int idx = split_claims_.Acquire();
    SplitLog* log = &proot_->split_logs[idx];
    scm::pmem::StorePPtrPersist(&log->p_current, pool_->ToPPtr(leaf));
    Status s = pool_->allocator()->Allocate(&log->p_new, sizeof(LeafNode));
    if (!s.ok()) {
      ResetSplitLog(log);
      split_claims_.Release(idx);
      return nullptr;
    }
    LeafNode* new_leaf = log->p_new.get();
    *split_key = FinishSplitFromCopy(log);
    split_claims_.Release(idx);
    return new_leaf;
  }

  std::string FinishSplitFromCopy(SplitLog* log) {
    LeafNode* leaf = log->p_current.get();
    LeafNode* new_leaf = log->p_new.get();
    scm::pmem::StoreBytes(new_leaf, leaf, sizeof(LeafNode));
    // Re-stamp the copied lock word with a fresh odd generation so this
    // incarnation of the node is unique (see the fixed-key tree).
    __atomic_store_n(&new_leaf->lock_word, NewOddGen(), __ATOMIC_RELEASE);
    scm::pmem::Persist(new_leaf, sizeof(LeafNode));
    std::string sk = ComputeSplitKey(leaf);
    uint64_t upper = 0;
    for (size_t i = 0; i < kLeafCap; ++i) {
      if (((leaf->bitmap >> i) & 1) &&
          CompareBlob(leaf->kv[i].pkey.get(), sk) > 0) {
        upper |= uint64_t{1} << i;
      }
    }
    scm::pmem::StorePersist(&new_leaf->bitmap, upper);
    scm::pmem::StorePersist(&leaf->bitmap, leaf->bitmap & ~upper);
    scm::pmem::StorePPtrPersist(&leaf->next, log->p_new);
    ResetSplitLog(log);
    return sk;
  }

  void FinishSplitFromInverse(SplitLog* log) {
    LeafNode* leaf = log->p_current.get();
    LeafNode* new_leaf = log->p_new.get();
    uint64_t mask =
        kLeafCap == 64 ? ~uint64_t{0} : ((uint64_t{1} << kLeafCap) - 1);
    scm::pmem::StorePersist(&leaf->bitmap, ~new_leaf->bitmap & mask);
    scm::pmem::StorePPtrPersist(&leaf->next, log->p_new);
    ResetSplitLog(log);
  }

  void ResetSplitLog(SplitLog* log) {
    scm::pmem::StorePPtr(&log->p_current, scm::PPtr<LeafNode>::Null());
    scm::pmem::StorePPtr(&log->p_new, scm::PPtr<LeafNode>::Null());
    scm::pmem::Persist(log, sizeof(*log));
  }

  std::string ComputeSplitKey(LeafNode* leaf) {
    std::vector<std::string> keys;
    keys.reserve(kLeafCap);
    for (size_t i = 0; i < kLeafCap; ++i) {
      if ((leaf->bitmap >> i) & 1) {
        keys.emplace_back(leaf->kv[i].pkey.get()->view());
      }
    }
    size_t h = keys.size() / 2;
    std::nth_element(keys.begin(), keys.begin() + (h - 1), keys.end());
    return keys[h - 1];
  }

  void UpdateParents(const std::string& split_key, LeafNode* new_leaf) {
    const std::string* interned = Intern(split_key);
    htm::Tx tx(&htm_);
    for (;;) {
      SCM_CRASH_POINT("cfptreevar.retry");
      tx.Begin();
      PathRec path;
      LeafNode* routed = FindLeafTxPath(&tx, split_key, &path);
      if (!tx.ok() || routed == nullptr) continue;
      InsertSplitTx(&tx, &path, reinterpret_cast<uint64_t>(interned),
                    reinterpret_cast<uint64_t>(new_leaf));
      if (!tx.ok()) continue;
      if (tx.Commit()) return;
    }
  }

  struct PathRec {
    Inner* nodes[32];
    uint32_t slots[32];
    uint32_t depth = 0;
  };

  LeafNode* FindLeafTxPath(htm::Tx* tx, std::string_view key, PathRec* path) {
    path->depth = 0;
    Inner* node = reinterpret_cast<Inner*>(tx->Load(&root_));
    for (uint32_t depth = 0; depth < 32; ++depth) {
      if (!tx->ok() || node == nullptr) return nullptr;
      uint64_t n = tx->Load(&node->n_keys);
      if (n > kInnerCap) return nullptr;
      uint64_t lo = 0, hi = n;
      while (lo < hi) {
        uint64_t mid = (lo + hi) / 2;
        uint64_t kslot = tx->Load(&node->keys[mid]);
        if (kslot == 0 || !tx->ok()) return nullptr;
        if (KeyAt(kslot) < key) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (!tx->ok()) return nullptr;
      uint64_t child = tx->Load(&node->children[lo]);
      path->nodes[path->depth] = node;
      path->slots[path->depth] = static_cast<uint32_t>(lo);
      ++path->depth;
      if (tx->Load(&node->leaf_children) != 0) {
        return reinterpret_cast<LeafNode*>(child);
      }
      node = reinterpret_cast<Inner*>(child);
    }
    return nullptr;
  }

  void InsertSplitTx(htm::Tx* tx, PathRec* path, uint64_t key,
                     uint64_t right) {
    for (int level = static_cast<int>(path->depth) - 1; level >= 0; --level) {
      Inner* n = path->nodes[level];
      uint32_t slot = path->slots[level];
      uint64_t nk = tx->Load(&n->n_keys);
      if (!tx->ok() || nk > kInnerCap) return;
      if (nk < kInnerCap) {
        for (uint64_t i = nk; i > slot; --i) {
          tx->Store(&n->keys[i], tx->Load(&n->keys[i - 1]));
        }
        for (uint64_t i = nk + 1; i > slot + 1; --i) {
          tx->Store(&n->children[i], tx->Load(&n->children[i - 1]));
        }
        tx->Store(&n->keys[slot], key);
        tx->Store(&n->children[slot + 1], right);
        tx->Store(&n->n_keys, nk + 1);
        return;
      }
      Inner* sibling = NewInner(tx->Load(&n->leaf_children) != 0);
      uint64_t mid = nk / 2;
      uint64_t up_key = tx->Load(&n->keys[mid]);
      uint64_t snk = nk - mid - 1;
      for (uint64_t i = 0; i < snk; ++i) {
        sibling->keys[i] = tx->Load(&n->keys[mid + 1 + i]);
        sibling->children[i] = tx->Load(&n->children[mid + 1 + i]);
      }
      sibling->children[snk] = tx->Load(&n->children[nk]);
      sibling->n_keys = snk;
      if (!tx->ok()) return;
      tx->Store(&n->n_keys, mid);
      if (slot <= mid) {
        uint64_t cnk = tx->Load(&n->n_keys);
        for (uint64_t i = cnk; i > slot; --i) {
          tx->Store(&n->keys[i], tx->Load(&n->keys[i - 1]));
        }
        for (uint64_t i = cnk + 1; i > slot + 1; --i) {
          tx->Store(&n->children[i], tx->Load(&n->children[i - 1]));
        }
        tx->Store(&n->keys[slot], key);
        tx->Store(&n->children[slot + 1], right);
        tx->Store(&n->n_keys, cnk + 1);
      } else {
        uint32_t s = slot - static_cast<uint32_t>(mid) - 1;
        for (uint64_t i = sibling->n_keys; i > s; --i) {
          sibling->keys[i] = sibling->keys[i - 1];
        }
        for (uint64_t i = sibling->n_keys + 1; i > s + 1u; --i) {
          sibling->children[i] = sibling->children[i - 1];
        }
        sibling->keys[s] = key;
        sibling->children[s + 1] = right;
        ++sibling->n_keys;
      }
      key = up_key;
      right = reinterpret_cast<uint64_t>(sibling);
    }
    Inner* new_root = NewInner(false);
    new_root->n_keys = 1;
    new_root->keys[0] = key;
    new_root->children[0] = tx->Load(&root_);
    new_root->children[1] = right;
    if (!tx->ok()) return;
    tx->Store(&root_, reinterpret_cast<uint64_t>(new_root));
  }

  Inner* NewInner(bool leaf_children) {
    Inner* n = static_cast<Inner*>(arena_.Allocate());
    n->n_keys = 0;
    n->leaf_children = leaf_children ? 1 : 0;
    return n;
  }

  void AttachOrInit() {
    uint64_t t0 = NowNanos();
    if (pool_->root().IsNull()) {
      Status s =
          pool_->allocator()->Allocate(&pool_->header()->root, sizeof(PRoot));
      assert(s.ok());
      (void)s;
    }
    proot_ = static_cast<PRoot*>(pool_->root().get());
    if (proot_->magic != PRoot::kMagic) {
      PRoot zero{};
      zero.magic = PRoot::kMagic;
      scm::pmem::StoreBytes(proot_, &zero, sizeof(zero));
      scm::pmem::Persist(proot_, sizeof(*proot_));
    }
    for (size_t i = 0; i < kNumLogs; ++i) {
      RecoverSplit(&proot_->split_logs[i]);
    }
    if (!proot_->gc_slot.IsNull()) {
      pool_->allocator()->Deallocate(&proot_->gc_slot);
    }
    if (proot_->head.IsNull()) {
      Status s =
          pool_->allocator()->Allocate(&proot_->head, sizeof(LeafNode));
      assert(s.ok());
      (void)s;
      LeafNode* first = proot_->head.get();
      LeafNode fresh{};
      scm::pmem::StoreBytes(first, &fresh, sizeof(fresh));
      scm::pmem::Persist(first, sizeof(*first));
    }
    RebuildInnerAndSweep();
    if (!pool_->root_initialized()) pool_->SetRootInitialized();
    recovery_nanos_ = NowNanos() - t0;
  }

  void RecoverSplit(SplitLog* log) {
    if (log->p_current.IsNull() || log->p_new.IsNull()) {
      ResetSplitLog(log);
      return;
    }
    if (static_cast<size_t>(__builtin_popcountll(
            log->p_current.get()->bitmap)) == kLeafCap) {
      FinishSplitFromCopy(log);
    } else {
      FinishSplitFromInverse(log);
    }
  }

  void RebuildInnerAndSweep() {
    std::unordered_set<uint64_t> used;
    used.insert(pool_->root().offset);
    std::vector<std::pair<std::string, LeafNode*>> live;
    size_t count = 0;
    for (LeafNode* leaf = proot_->head.get(); leaf != nullptr;
         leaf = leaf->next.get()) {
      scm::pmem::StoreVolatile(&leaf->lock_word, uint64_t{0});
      used.insert(pool_->ToPPtr(leaf).offset);
      std::string mx;
      size_t cnt = 0;
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (!((leaf->bitmap >> i) & 1)) continue;
        used.insert(leaf->kv[i].pkey.offset);
        std::string k(leaf->kv[i].pkey.get()->view());
        if (cnt == 0 || k > mx) mx = k;
        ++cnt;
      }
      count += cnt;
      if (cnt > 0 || leaf == proot_->head.get()) {
        live.emplace_back(std::move(mx), leaf);
      }
    }
    size_.store(count, std::memory_order_relaxed);
    // Leak sweep (Alg. 17, strengthened; see fptree_var.h).
    for (uint64_t off : pool_->allocator()->AllocatedPayloadOffsets()) {
      if (used.count(off) != 0) continue;
      scm::pmem::StorePPtrPersist(&proot_->gc_slot,
                                  scm::PPtr<KeyBlob>{pool_->id(), off});
      pool_->allocator()->Deallocate(&proot_->gc_slot);
    }
    for (LeafNode* leaf = proot_->head.get(); leaf != nullptr;
         leaf = leaf->next.get()) {
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (!((leaf->bitmap >> i) & 1) && !leaf->kv[i].pkey.IsNull()) {
          scm::pmem::StorePPtrPersist(&leaf->kv[i].pkey,
                                      scm::PPtr<KeyBlob>::Null());
        }
      }
    }

    // Bottom-up build with interned separator keys.
    std::vector<std::pair<const std::string*, Inner*>> level;
    {
      size_t i = 0;
      const size_t n = live.size();
      while (i < n) {
        Inner* node = NewInner(true);
        size_t take = std::min(n - i, kInnerCap + 1);
        for (size_t j = 0; j < take; ++j) {
          node->children[j] = reinterpret_cast<uint64_t>(live[i + j].second);
          if (j + 1 < take) {
            node->keys[j] =
                reinterpret_cast<uint64_t>(Intern(live[i + j].first));
          }
        }
        node->n_keys = take - 1;
        level.emplace_back(Intern(live[i + take - 1].first), node);
        i += take;
      }
    }
    while (level.size() > 1) {
      std::vector<std::pair<const std::string*, Inner*>> next;
      size_t i = 0;
      const size_t n = level.size();
      while (i < n) {
        Inner* node = NewInner(false);
        size_t take = std::min(n - i, kInnerCap + 1);
        for (size_t j = 0; j < take; ++j) {
          node->children[j] = reinterpret_cast<uint64_t>(level[i + j].second);
          if (j + 1 < take) {
            node->keys[j] = reinterpret_cast<uint64_t>(level[i + j].first);
          }
        }
        node->n_keys = take - 1;
        next.emplace_back(level[i + take - 1].first, node);
        i += take;
      }
      level.swap(next);
    }
    root_ = reinterpret_cast<uint64_t>(level[0].second);
  }

  scm::Pool* pool_;
  htm::HtmEngine htm_;
  NodeArena arena_;
  PRoot* proot_ = nullptr;
  uint64_t root_ = 0;
  LogClaimMask split_claims_;
  std::mutex intern_mu_;
  std::vector<std::unique_ptr<std::string>> interned_;
  uint64_t intern_bytes_ = 0;
  std::atomic<size_t> size_{0};
  /// Lock-word generation counter (see NewOddGen). Starts at 2 so the
  /// recovery-reset value 0 is never re-issued.
  std::atomic<uint64_t> lock_gen_{2};
  uint64_t recovery_nanos_ = 0;
};

}  // namespace core
}  // namespace fptree
