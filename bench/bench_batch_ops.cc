// Batched execution pipeline sweep (DESIGN.md §11): MultiGet/MultiPut
// throughput versus the single-op loop across batch size x emulated SCM
// latency. Two effects are measured per cell:
//
//  * Read side: MultiGet stages a whole chunk of root-to-leaf descents,
//    prefetches the target leaves' header lines, and charges the batch's
//    read misses at the modeled memory-level parallelism — so ops/s should
//    grow with both batch size and SCM latency relative to a Get loop.
//  * Write side: MultiPut coalesces per-leaf persist ranges and issues one
//    trailing fence per touched-leaf run instead of one per op; the
//    scm.fences counter delta per op is the direct witness.
//
// Emits BENCH_batch_ops.json (host stanza + one series row per cell) and
// prints the acceptance ratios: at SCM read latency >= 300 ns, batch=32
// MultiGet must clear 1.5x the single-Get loop and MultiPut must spend
// measurably fewer fences per op.

#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "scm/stats.h"

namespace fptree {
namespace bench {
namespace {

struct Cell {
  uint64_t latency_ns = 0;
  uint32_t batch = 0;
  double mget_kops = 0;
  double mget_speedup = 0;  // vs the batch=1 loop at the same latency
  double mput_kops = 0;
  double put_fences_per_op = 0;
  double fence_ratio = 0;   // batch fences/op over loop fences/op
};

Cell RunCell(const std::string& kind, uint64_t latency, uint32_t batch,
             const Flags& flags) {
  Cell cell;
  cell.latency_ns = latency;
  cell.batch = batch;

  ScopedPool pool(size_t{2} << 30);
  std::unique_ptr<index::KVIndex> idx;
  Status st = index::MakeFixedIndexChecked(kind, pool.get(),
                                           /*locked=*/false, &idx);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    std::exit(2);
  }

  // Preload outside the emulated medium; only the measured phases pay.
  scm::LatencyModel::Disable();
  for (uint64_t k = 0; k < flags.keys; ++k) idx->Insert(k, k);
  SetLatency(latency);

  const uint64_t rounds = std::max<uint64_t>(flags.ops / batch, 1);
  std::vector<uint64_t> keys(batch), vals(batch);
  std::vector<uint8_t> found(batch);

  {  // Read phase: batch=1 is the single-Get loop baseline.
    Random64 rng(42);
    Stopwatch sw;
    for (uint64_t r = 0; r < rounds; ++r) {
      for (uint32_t j = 0; j < batch; ++j) keys[j] = rng.Next() % flags.keys;
      if (batch == 1) {
        idx->Find(keys[0], &vals[0]);
      } else {
        idx->MultiGet(keys.data(), batch, vals.data(), found.data());
      }
    }
    DoNotOptimize(vals);
    cell.mget_kops = static_cast<double>(rounds) * batch /
                     sw.ElapsedSeconds() / 1e3;
  }

  {  // Write phase: fresh ascending keys; fences/op from the scm counter.
    uint64_t next = flags.keys;
    uint64_t fences_before = scm::AggregatedStats().fences;
    Stopwatch sw;
    for (uint64_t r = 0; r < rounds; ++r) {
      for (uint32_t j = 0; j < batch; ++j) {
        keys[j] = next++;
        vals[j] = j;
      }
      if (batch == 1) {
        idx->Insert(keys[0], vals[0]);
      } else {
        idx->MultiPut(keys.data(), vals.data(), batch, nullptr);
      }
    }
    double secs = sw.ElapsedSeconds();
    uint64_t fences = scm::AggregatedStats().fences - fences_before;
    cell.mput_kops = static_cast<double>(rounds) * batch / secs / 1e3;
    cell.put_fences_per_op =
        static_cast<double>(fences) / (static_cast<double>(rounds) * batch);
  }

  scm::LatencyModel::Disable();
  std::string why;
  if (!idx->CheckInvariants(&why)) {
    std::fprintf(stderr, "invariant violation (lat=%llu batch=%u): %s\n",
                 static_cast<unsigned long long>(latency), batch,
                 why.c_str());
    std::exit(1);
  }
  return cell;
}

void WriteJson(const std::string& kind, const std::vector<Cell>& cells) {
  FILE* f = std::fopen("BENCH_batch_ops.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_batch_ops.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"batch_ops\",\n");
  std::fprintf(f,
               "  \"host\": {\n    \"hardware_concurrency\": %u,\n"
               "    \"note\": \"single-threaded sweep over one %s instance; "
               "speedups come from modeled memory-level parallelism "
               "(ReadBatch) and group persistence (PersistBatch), not "
               "thread count\"\n  },\n",
               std::thread::hardware_concurrency(), kind.c_str());
  std::fprintf(f, "  \"tree\": \"%s\",\n  \"series\": [\n", kind.c_str());
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"latency_ns\": %llu, \"batch\": %u, \"mget_kops\": %.1f, "
        "\"mget_speedup_vs_loop\": %.2f, \"mput_kops\": %.1f, "
        "\"mput_fences_per_op\": %.3f, \"fences_per_op_ratio_vs_loop\": "
        "%.3f}%s\n",
        static_cast<unsigned long long>(c.latency_ns), c.batch, c.mget_kops,
        c.mget_speedup, c.mput_kops, c.put_fences_per_op, c.fence_ratio,
        i + 1 < cells.size() ? "," : "");
  }
  // Acceptance stanza: batch=32 at the highest latency >= 300 ns.
  double speedup32 = 0, fence_ratio32 = 0;
  uint64_t at_lat = 0;
  for (const Cell& c : cells) {
    if (c.batch == 32 && c.latency_ns >= 300 && c.latency_ns >= at_lat) {
      at_lat = c.latency_ns;
      speedup32 = c.mget_speedup;
      fence_ratio32 = c.fence_ratio;
    }
  }
  std::fprintf(f,
               "  ],\n  \"acceptance\": {\"latency_ns\": %llu, "
               "\"mget_speedup_batch32\": %.2f, "
               "\"mput_fence_ratio_batch32\": %.3f}\n}\n",
               static_cast<unsigned long long>(at_lat), speedup32,
               fence_ratio32);
  std::fclose(f);
  std::printf("wrote BENCH_batch_ops.json\n");
}

}  // namespace
}  // namespace bench
}  // namespace fptree

int main(int argc, char** argv) {
  using namespace fptree;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  if (flags.quick) {
    flags.keys = std::min<uint64_t>(flags.keys, 20000);
    flags.ops = std::min<uint64_t>(flags.ops, 40000);
  }
  scm::LatencyModel::Calibrate();

  bench::PrintHeader("batched execution pipeline (batch size x SCM latency)");
  const std::string kind = flags.FixedTrees({"fptree"}).front();

  std::vector<uint64_t> latencies =
      flags.latency != 0 ? std::vector<uint64_t>{flags.latency}
                         : std::vector<uint64_t>{90, 300, 650};
  std::vector<uint32_t> batches = {1, 8, 32, 128};

  std::printf("%8s %6s %12s %10s %12s %12s %10s\n", "lat(ns)", "batch",
              "MGET kops", "speedup", "MPUT kops", "fences/op", "ratio");
  std::vector<bench::Cell> cells;
  for (uint64_t lat : latencies) {
    double loop_get_kops = 0, loop_fences_per_op = 0;
    for (uint32_t b : batches) {
      bench::Cell c = bench::RunCell(kind, lat, b, flags);
      if (b == 1) {
        loop_get_kops = c.mget_kops;
        loop_fences_per_op = c.put_fences_per_op;
      }
      c.mget_speedup = loop_get_kops > 0 ? c.mget_kops / loop_get_kops : 0;
      c.fence_ratio = loop_fences_per_op > 0
                          ? c.put_fences_per_op / loop_fences_per_op
                          : 0;
      std::printf("%8llu %6u %12.1f %9.2fx %12.1f %12.3f %9.3fx\n",
                  static_cast<unsigned long long>(c.latency_ns), c.batch,
                  c.mget_kops, c.mget_speedup, c.mput_kops,
                  c.put_fences_per_op, c.fence_ratio);
      cells.push_back(c);
    }
    std::printf("\n");
  }
  bench::WriteJson(kind, cells);
  bench::EmitMetricsJson("batch_ops");
  return 0;
}
