file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_payload.dir/bench_fig14_payload.cc.o"
  "CMakeFiles/bench_fig14_payload.dir/bench_fig14_payload.cc.o.d"
  "bench_fig14_payload"
  "bench_fig14_payload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
