// Latency model: calibrated delays, modeled-cache hit/miss behaviour, and
// the event counters benchmarks rely on.

#include "scm/latency.h"

#include <gtest/gtest.h>

#include "scm/pmem.h"
#include "util/timer.h"

namespace fptree {
namespace scm {
namespace {

class LatencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LatencyModel::Disable();
    ThreadScmCache::Clear();
    ClearThreadStats();
  }
  void TearDown() override { LatencyModel::Disable(); }

  alignas(64) char buf_[1024] = {};
};

TEST_F(LatencyTest, SpinForRoughlyMatchesWallClock) {
  // Calibration tolerance is loose (shared CI machines), but a 100 µs spin
  // must take at least ~30 µs and at most ~10x.
  LatencyModel::Calibrate();
  Stopwatch sw;
  LatencyModel::SpinFor(100000);
  uint64_t ns = sw.ElapsedNanos();
  EXPECT_GT(ns, 30000u);
  EXPECT_LT(ns, 1000000u);
}

TEST_F(LatencyTest, SetScmLatencyComputesExcessOverDram) {
  LatencyModel::Config().dram_ns = 90;
  LatencyModel::SetScmLatency(650);
  EXPECT_EQ(LatencyModel::read_extra_ns(), 560u);
  EXPECT_EQ(LatencyModel::write_ns(), 650u);
  LatencyModel::SetScmLatency(90);
  EXPECT_EQ(LatencyModel::read_extra_ns(), 0u);
  LatencyModel::SetScmLatency(50);  // below DRAM: clamp to zero
  EXPECT_EQ(LatencyModel::read_extra_ns(), 0u);
}

TEST_F(LatencyTest, ReadScmCountsMissThenHit) {
  ReadScm(buf_, 8);
  EXPECT_EQ(ThreadStats().scm_read_misses, 1u);
  EXPECT_EQ(ThreadStats().scm_read_hits, 0u);
  ReadScm(buf_, 8);  // same line: modeled cache hit
  EXPECT_EQ(ThreadStats().scm_read_misses, 1u);
  EXPECT_EQ(ThreadStats().scm_read_hits, 1u);
  ReadScm(buf_ + 64, 8);  // next line: miss
  EXPECT_EQ(ThreadStats().scm_read_misses, 2u);
}

TEST_F(LatencyTest, ReadScmSpanningLinesCountsEachLine) {
  ReadScm(buf_ + 60, 8);  // straddles two lines
  EXPECT_EQ(ThreadStats().scm_read_misses, 2u);
}

TEST_F(LatencyTest, PersistEvictsModeledLine) {
  ReadScm(buf_, 8);
  EXPECT_EQ(ThreadStats().scm_read_misses, 1u);
  pmem::Persist(buf_, 8);  // CLFLUSH semantics: evict
  ReadScm(buf_, 8);
  EXPECT_EQ(ThreadStats().scm_read_misses, 2u);
}

TEST_F(LatencyTest, PersistCountsFlushedLines) {
  ClearThreadStats();
  pmem::Persist(buf_, 200);  // 200 bytes from 64-aligned start: 4 lines
  EXPECT_EQ(ThreadStats().flushed_lines, 4u);
  EXPECT_EQ(ThreadStats().fences, 1u);
}

TEST_F(LatencyTest, InjectedReadLatencyIsMeasurable) {
  LatencyModel::Config().dram_ns = 0;
  LatencyModel::SetScmLatency(20000);  // exaggerated for measurability
  ThreadScmCache::Clear();
  Stopwatch sw;
  for (int i = 0; i < 16; ++i) ReadScm(buf_ + (i % 4) * 64, 8);
  uint64_t with_latency = sw.ElapsedNanos();
  // 4 misses * 20 µs = 80 µs injected; 12 hits free.
  EXPECT_GT(with_latency, 20000u);
  LatencyModel::Config().dram_ns = 90;
  LatencyModel::Disable();
}

TEST_F(LatencyTest, CacheLinesSpannedHelper) {
  EXPECT_EQ(CacheLinesSpanned(buf_, 0), 0u);
  EXPECT_EQ(CacheLinesSpanned(buf_, 1), 1u);
  EXPECT_EQ(CacheLinesSpanned(buf_, 64), 1u);
  EXPECT_EQ(CacheLinesSpanned(buf_, 65), 2u);
  EXPECT_EQ(CacheLinesSpanned(buf_ + 63, 2), 2u);
}

TEST_F(LatencyTest, RoundUpToCacheLineHelper) {
  EXPECT_EQ(RoundUpToCacheLine(0), 0u);
  EXPECT_EQ(RoundUpToCacheLine(1), 64u);
  EXPECT_EQ(RoundUpToCacheLine(64), 64u);
  EXPECT_EQ(RoundUpToCacheLine(65), 128u);
}

}  // namespace
}  // namespace scm
}  // namespace fptree
