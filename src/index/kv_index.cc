#include "index/kv_index.h"

#include <algorithm>

namespace fptree {
namespace index {

IndexRegistry& IndexRegistry::Instance() {
  static IndexRegistry* r = new IndexRegistry;
  return *r;
}

void IndexRegistry::RegisterFixed(const std::string& name, FixedFactory f) {
  fixed_[name] = std::move(f);
}

void IndexRegistry::RegisterVar(const std::string& name, VarFactory f) {
  var_[name] = std::move(f);
}

std::unique_ptr<KVIndex> IndexRegistry::MakeFixed(const std::string& name,
                                                  scm::Pool* pool,
                                                  bool locked) const {
  auto it = fixed_.find(name);
  return it == fixed_.end() ? nullptr : it->second(pool, locked);
}

std::unique_ptr<VarIndex> IndexRegistry::MakeVar(const std::string& name,
                                                 scm::Pool* pool,
                                                 bool locked) const {
  auto it = var_.find(name);
  return it == var_.end() ? nullptr : it->second(pool, locked);
}

std::vector<std::string> IndexRegistry::FixedNames() const {
  std::vector<std::string> names;
  names.reserve(fixed_.size());
  for (const auto& [name, f] : fixed_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> IndexRegistry::VarNames() const {
  std::vector<std::string> names;
  names.reserve(var_.size());
  for (const auto& [name, f] : var_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

namespace {

std::string JoinNames(const std::vector<std::string>& names) {
  std::string joined;
  for (const auto& n : names) {
    if (!joined.empty()) joined += ", ";
    joined += n;
  }
  return joined;
}

}  // namespace

Status IndexRegistry::MakeFixedChecked(const std::string& name,
                                       scm::Pool* pool, bool locked,
                                       std::unique_ptr<KVIndex>* out) const {
  auto it = fixed_.find(name);
  if (it == fixed_.end()) {
    return Status::NotFound("unknown fixed-key index '" + name +
                            "'; registered: " + JoinNames(FixedNames()));
  }
  *out = it->second(pool, locked);
  return Status::OK();
}

Status IndexRegistry::MakeVarChecked(const std::string& name, scm::Pool* pool,
                                     bool locked,
                                     std::unique_ptr<VarIndex>* out) const {
  auto it = var_.find(name);
  if (it == var_.end()) {
    return Status::NotFound("unknown var-key index '" + name +
                            "'; registered: " + JoinNames(VarNames()));
  }
  *out = it->second(pool, locked);
  return Status::OK();
}

std::vector<std::string> ListFixedIndexNames() {
  return IndexRegistry::Instance().FixedNames();
}

std::vector<std::string> ListVarIndexNames() {
  return IndexRegistry::Instance().VarNames();
}

std::unique_ptr<KVIndex> MakeFixedIndex(const std::string& name,
                                        scm::Pool* pool, bool locked) {
  return IndexRegistry::Instance().MakeFixed(name, pool, locked);
}

std::unique_ptr<VarIndex> MakeVarIndex(const std::string& name,
                                       scm::Pool* pool, bool locked) {
  return IndexRegistry::Instance().MakeVar(name, pool, locked);
}

Status MakeFixedIndexChecked(const std::string& name, scm::Pool* pool,
                             bool locked, std::unique_ptr<KVIndex>* out) {
  return IndexRegistry::Instance().MakeFixedChecked(name, pool, locked, out);
}

Status MakeVarIndexChecked(const std::string& name, scm::Pool* pool,
                           bool locked, std::unique_ptr<VarIndex>* out) {
  return IndexRegistry::Instance().MakeVarChecked(name, pool, locked, out);
}

namespace {

// Static registrations. These live in the same translation unit as
// MakeFixedIndex/MakeVarIndex so linking either factory function is
// guaranteed to pull the registrations in (no dead-stripped statics).

template <typename TreeT>
std::unique_ptr<KVIndex> MakeFixedAdapter(scm::Pool* pool, bool locked) {
  return std::make_unique<FixedAdapter<TreeT>>(locked, pool);
}

template <typename TreeT>
std::unique_ptr<VarIndex> MakeVarAdapter(scm::Pool* pool, bool locked) {
  return std::make_unique<VarAdapter<TreeT>>(locked, pool);
}

struct Registrations {
  Registrations() {
    IndexRegistry& reg = IndexRegistry::Instance();

    reg.RegisterFixed("fptree", MakeFixedAdapter<core::FPTree<>>);
    reg.RegisterFixed(
        "fptree-nogroups",
        MakeFixedAdapter<core::FPTree<uint64_t, 56, 4096, false>>);
    reg.RegisterFixed("ptree", MakeFixedAdapter<core::PTree<>>);
    reg.RegisterFixed("wbtree", MakeFixedAdapter<baselines::WBTree<>>);
    reg.RegisterFixed("nvtree", MakeFixedAdapter<baselines::NVTree<>>);
    reg.RegisterFixed("stx", [](scm::Pool*, bool locked) {
      return std::unique_ptr<KVIndex>(
          std::make_unique<FixedAdapter<baselines::STXTree<>>>(locked));
    });
    reg.RegisterFixed("fptree-c", [](scm::Pool* pool, bool) {
      return std::unique_ptr<KVIndex>(
          std::make_unique<ConcurrentAdapter<core::ConcurrentFPTree<>,
                                             KVIndex, uint64_t>>(pool));
    });
    reg.RegisterFixed("fptree-c-lock", [](scm::Pool* pool, bool) {
      return std::unique_ptr<KVIndex>(
          std::make_unique<ConcurrentAdapter<core::ConcurrentFPTree<>,
                                             KVIndex, uint64_t>>(
              pool, htm::Backend::kGlobalLock));
    });
    reg.RegisterFixed("nvtree-c", [](scm::Pool* pool, bool) {
      return std::unique_ptr<KVIndex>(
          std::make_unique<ConcurrentAdapter<baselines::ConcurrentNVTree<>,
                                             KVIndex, uint64_t>>(pool));
    });

    reg.RegisterVar("fptree-var", MakeVarAdapter<core::FPTreeVar<>>);
    reg.RegisterVar(
        "ptree-var",
        MakeVarAdapter<core::FPTreeVar<uint64_t, 32, 256, false>>);
    reg.RegisterVar("stx-var", MakeVarAdapter<STXVarTree>);
    reg.RegisterVar("fptree-c-var", [](scm::Pool* pool, bool) {
      return std::unique_ptr<VarIndex>(
          std::make_unique<ConcurrentAdapter<core::ConcurrentFPTreeVar<>,
                                             VarIndex, std::string_view>>(
              pool));
    });
    reg.RegisterVar("hashmap", [](scm::Pool*, bool) {
      return std::unique_ptr<VarIndex>(std::make_unique<ShardedHashMap>());
    });
  }
};

const Registrations g_registrations;

}  // namespace

}  // namespace index
}  // namespace fptree
