file(REMOVE_RECURSE
  "libfptree_htm.a"
)
