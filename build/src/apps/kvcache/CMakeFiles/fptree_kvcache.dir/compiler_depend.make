# Empty compiler generated dependencies file for fptree_kvcache.
# This may be replaced when dependencies are built.
