// Copyright (c) FPTree reproduction authors.
//
// Minimal client for the FPTree KV server's wire protocol (protocol.h).
// Built for the two load-generation styles the bench needs:
//
//  * Closed loop: Queue*() + Flush() + ReadResponse() per batch — the
//    caller pipelines a window of requests and blocks for the responses.
//  * Open loop: Queue*() + Flush() at the offered rate, TryReadResponse()
//    to reap whatever responses have arrived without blocking.
//
// Responses arrive strictly in request order, so callers match them by
// counting. The class is not thread-safe; use one Client per connection.

#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "check/history.h"
#include "net/protocol.h"
#include "util/status.h"

namespace fptree {
namespace net {

/// Bounded exponential-backoff-plus-jitter retry schedule (DESIGN.md §12).
/// Attempt k sleeps in [cap/2, cap] ms where cap = min(base << k, max);
/// the jitter is a deterministic hash of (seed, attempt), so a test that
/// fixes the seed reproduces the exact schedule.
struct RetryPolicy {
  uint32_t max_attempts = 5;
  uint32_t base_backoff_ms = 10;
  uint32_t max_backoff_ms = 1000;
  uint64_t seed = 0x9e3779b97f4a7c15ull;
};

/// The exact backoff of `attempt` (0-based) under `policy`, in ms.
uint64_t BackoffMs(const RetryPolicy& policy, uint32_t attempt);

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port, bounded by the deadline (below) when one is
  /// set. The address is remembered so the retrying ops can reconnect.
  Status Connect(const std::string& host, uint16_t port);
  /// Retries Connect under `policy` (server not yet listening, listen
  /// backlog overflow). Note that a server that accepts and immediately
  /// drops the connection still "connects" here — the drop only surfaces
  /// on the first op; use GetWithRetry for end-to-end retry coverage.
  Status ConnectWithRetry(const std::string& host, uint16_t port,
                          const RetryPolicy& policy);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Attaches a history recorder (DESIGN.md §13): every queued request
  /// becomes an invocation event when queued and a response event when
  /// its frame is decoded, so wire histories are linearizability-checkable
  /// end-to-end. Requests whose responses never arrive (timeout, dropped
  /// connection) drain as *pending* — their effect may or may not have
  /// applied, exactly what the checker's crash model expects. Set before
  /// the first Queue*/op call and do not change it while requests are in
  /// flight (capture state is matched to the response FIFO).
  void set_recorder(check::HistoryRecorder* recorder) {
    recorder_ = recorder;
    caps_.clear();
  }
  check::HistoryRecorder* recorder() const { return recorder_; }

  /// Per-blocking-call deadline in ms; 0 (default) waits forever. Applies
  /// to Connect, Flush and ReadResponse independently: each call gets the
  /// full budget. On expiry the call returns Status::TimedOut and the
  /// connection should be considered poisoned (a late response would
  /// desynchronize the FIFO) — Close() and reconnect.
  void set_deadline_ms(uint32_t ms) { deadline_ms_ = ms; }
  uint32_t deadline_ms() const { return deadline_ms_; }

  /// Queue a request frame into the send buffer (no I/O). The op kind is
  /// remembered in a FIFO so responses — which arrive strictly in request
  /// order — decode with the right layout (batch responses are ambiguous
  /// under size-based guessing; see protocol.h).
  void QueuePut(std::string_view key, uint64_t value) {
    EncodePut(&outbuf_, key, value);
    Queued(Op::kPut);
    if (recorder_ != nullptr) CapWrite(Op::kPut, key, value);
  }
  void QueueGet(std::string_view key) {
    EncodeGet(&outbuf_, key);
    Queued(Op::kGet);
    if (recorder_ != nullptr) CapWrite(Op::kGet, key, 0);
  }
  void QueueDel(std::string_view key) {
    EncodeDel(&outbuf_, key);
    Queued(Op::kDel);
    if (recorder_ != nullptr) CapWrite(Op::kDel, key, 0);
  }
  void QueueScan(std::string_view start, uint32_t limit) {
    EncodeScan(&outbuf_, start, limit);
    Queued(Op::kScan);
    if (recorder_ != nullptr) CapScan(start, limit);
  }
  void QueueUpsert(std::string_view key, uint64_t value) {
    EncodeUpsert(&outbuf_, key, value);
    Queued(Op::kUpsert);
    if (recorder_ != nullptr) CapWrite(Op::kUpsert, key, value);
  }
  /// One MGET frame for `count` keys; the response carries one
  /// (found, value) pair per key in request order.
  void QueueMget(const std::string_view* keys, uint32_t count) {
    EncodeMget(&outbuf_, keys, count);
    Queued(Op::kMget);
    if (recorder_ != nullptr) CapMget(keys, count);
  }
  /// One MPUT frame (per-key upsert semantics); the response carries one
  /// inserted flag per key in request order.
  void QueueMput(const std::string_view* keys, const uint64_t* values,
                 uint32_t count) {
    EncodeMput(&outbuf_, keys, values, count);
    Queued(Op::kMput);
    if (recorder_ != nullptr) CapMput(keys, values, count);
  }

  /// Requests queued but whose responses have not been read yet.
  uint64_t inflight() const { return queued_ - received_; }

  /// Writes the whole send buffer to the socket (blocking).
  Status Flush();

  /// Blocks until one response frame is available and decodes it.
  Status ReadResponse(Response* resp);

  /// Non-blocking reap: decodes one response if a complete frame is already
  /// buffered or readable without blocking. Sets *got accordingly; a false
  /// *got with an OK status just means "nothing there yet".
  Status TryReadResponse(Response* resp, bool* got);

  // --- convenience synchronous ops (queue + flush + read) -------------------

  /// Returns ResourceExhausted when the server answers NO_SPACE (the
  /// key's pool/shard is full; the connection remains usable for reads).
  Status Put(std::string_view key, uint64_t value);
  /// *inserted = true when the key was newly inserted, false on replace.
  /// ResourceExhausted on NO_SPACE, like Put.
  Status Upsert(std::string_view key, uint64_t value, bool* inserted);
  /// found=false on NOT_FOUND.
  Status Get(std::string_view key, uint64_t* value, bool* found);
  /// Get with reconnect-and-retry under `policy`: on any transport
  /// failure (dropped connection, deadline expiry) the connection is
  /// closed, the backoff slept, and the op retried against the remembered
  /// address. Only reads get a retrying wrapper — retrying a write after
  /// an ambiguous failure could double-apply it; upserts are idempotent
  /// but their inserted-flag answer is not.
  Status GetWithRetry(std::string_view key, uint64_t* value, bool* found,
                      const RetryPolicy& policy);
  Status Del(std::string_view key, bool* found);
  Status Scan(std::string_view start, uint32_t limit,
              std::vector<std::pair<std::string, uint64_t>>* rows);
  /// Batched GET: values[i]/found[i] filled per key (values[i] untouched
  /// on a miss), one round trip for the whole batch.
  Status Mget(const std::string_view* keys, size_t count, uint64_t* values,
              uint8_t* found);
  /// Batched upsert; inserted may be nullptr when the caller doesn't care.
  Status Mput(const std::string_view* keys, const uint64_t* values,
              size_t count, uint8_t* inserted);

 private:
  /// Capture bookkeeping for one in-flight request frame: the open log
  /// slot(s) its response will close. Mirrors pending_ops_ one-to-one.
  struct Cap {
    std::vector<uint32_t> slots;          // point op: 1; MPUT: one per key
    std::vector<std::string> mget_keys;   // MGET: reads commit on response
    uint64_t t_inv = 0;                   // MGET invocation stamp
    uint32_t scan_limit = 0;
  };

  void Queued(Op op) {
    pending_ops_.push_back(op);
    ++queued_;
  }
  // Queue-time capture (open invocation events) and response-time capture
  // (close them with the decoded outcome). Bodies in client.cc.
  void CapWrite(Op op, std::string_view key, uint64_t value);
  void CapScan(std::string_view start, uint32_t limit);
  void CapMget(const std::string_view* keys, uint32_t count);
  void CapMput(const std::string_view* keys, const uint64_t* values,
               uint32_t count);
  void CapResponse(Op op, const Response& resp);
  /// Non-blocking read into inbuf_; *progress reports whether bytes
  /// arrived. Blocking waits go through WaitFor (poll with deadline).
  Status FillBuffer(bool* progress);
  Status DecodeOne(Response* resp, bool* got);
  /// Polls fd_ for `events` until ready or `deadline_ns` (0 = forever).
  Status WaitFor(short events, uint64_t deadline_ns);
  /// Absolute deadline for one blocking call; 0 when no deadline is set.
  uint64_t DeadlineFromNow() const;

  int fd_ = -1;
  std::string outbuf_;
  std::string inbuf_;
  size_t in_pos_ = 0;
  uint64_t queued_ = 0;
  uint64_t received_ = 0;
  std::deque<Op> pending_ops_;  // op kinds awaiting their response frame
  check::HistoryRecorder* recorder_ = nullptr;
  std::deque<Cap> caps_;  // capture state, in lockstep with pending_ops_
  uint32_t deadline_ms_ = 0;
  std::string host_;  // remembered for the retrying reconnect paths
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace fptree
