// Copyright (c) FPTree reproduction authors.
//
// Fast pseudo-random generators for workload generation. Benchmarks must not
// be bottlenecked by the RNG, so the core generator is xorshift128+ (a few
// cycles per number); std::mt19937_64 is reserved for one-time setup work.

#pragma once

#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

namespace fptree {

/// \brief xorshift128+ generator; fast, decent quality, deterministic.
class Random64 {
 public:
  explicit Random64(uint64_t seed = 0x853c49e6748fea9bULL) {
    // SplitMix64 to spread a possibly weak seed over both words.
    s0_ = SplitMix(&seed);
    s1_ = SplitMix(&seed);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Returns true with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

/// \brief Returns a deterministic pseudo-random permutation of [0, n),
/// useful for uniformly-shuffled key-insertion order.
inline std::vector<uint64_t> ShuffledRange(uint64_t n, uint64_t seed = 42) {
  std::vector<uint64_t> v(n);
  std::iota(v.begin(), v.end(), 0);
  Random64 rng(seed);
  for (uint64_t i = n; i > 1; --i) {
    uint64_t j = rng.Uniform(i);
    std::swap(v[i - 1], v[j]);
  }
  return v;
}

}  // namespace fptree
