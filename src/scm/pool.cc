#include "scm/pool.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <vector>

#include "scm/alloc.h"
#include "scm/pmem.h"
#include "util/random.h"

namespace fptree {
namespace scm {

namespace {

struct Registry {
  std::mutex mu;
  std::vector<Pool*> pools;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();
  return *r;
}

void RegisterPool(Pool* p) {
  auto& r = GetRegistry();
  std::lock_guard<std::mutex> l(r.mu);
  r.pools.push_back(p);
}

void UnregisterPool(Pool* p) {
  auto& r = GetRegistry();
  std::lock_guard<std::mutex> l(r.mu);
  for (auto it = r.pools.begin(); it != r.pools.end(); ++it) {
    if (*it == p) {
      r.pools.erase(it);
      return;
    }
  }
}

// A different pseudo-random mmap hint on every call, so reopened pools land
// at fresh bases and stored raw pointers break loudly.
void* NextMapHint(size_t size) {
  static std::mutex mu;
  static Random64 rng(0x9E3779B97F4A7C15ULL ^
                      static_cast<uint64_t>(::getpid()));
  std::lock_guard<std::mutex> l(mu);
  // Stay in a roomy, typically-unused region of the address space.
  uint64_t base = 0x200000000000ULL + (rng.Uniform(1ULL << 16) << 24);
  (void)size;
  return reinterpret_cast<void*>(base);
}

}  // namespace

Status Pool::MapFile(const std::string& path, uint64_t pool_id,
                     const Options& options, bool create,
                     std::unique_ptr<Pool>* out) {
  if (pool_id == 0 || pool_id >= kMaxPools) {
    return Status::InvalidArgument("pool_id must be in [1, kMaxPools)");
  }
  if (FindById(pool_id) != nullptr) {
    return Status::AlreadyExists("pool id already mapped in this process");
  }
  int flags = O_RDWR | (create ? (O_CREAT | O_EXCL) : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  size_t size = options.size;
  if (create) {
    if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
      ::close(fd);
      return Status::IOError("ftruncate: " + std::string(std::strerror(errno)));
    }
  } else {
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::IOError("fstat: " + std::string(std::strerror(errno)));
    }
    size = static_cast<size_t>(st.st_size);
    if (size < sizeof(PoolHeader) + sizeof(AllocMeta)) {
      ::close(fd);
      return Status::Corruption("pool file too small: " + path);
    }
  }

  void* hint = options.randomize_base ? NextMapHint(size) : nullptr;
  void* base = ::mmap(hint, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    ::close(fd);
    return Status::IOError("mmap: " + std::string(std::strerror(errno)));
  }

  std::unique_ptr<Pool> pool(new Pool());
  pool->base_ = static_cast<char*>(base);
  pool->size_ = size;
  pool->id_ = pool_id;
  pool->fd_ = fd;
  pool->path_ = path;

  if (create) {
    PoolHeader hdr{};
    hdr.magic = PoolHeader::kMagic;
    hdr.version = 1;
    hdr.pool_id = pool_id;
    hdr.size = size;
    hdr.root_initialized = 0;
    hdr.root = VoidPPtr::Null();
    std::memcpy(pool->base_, &hdr, sizeof(hdr));
  } else {
    PoolHeader* hdr = pool->header();
    if (hdr->magic != PoolHeader::kMagic) {
      return Status::Corruption("bad pool magic in " + path);
    }
    if (hdr->pool_id != pool_id) {
      return Status::InvalidArgument("pool file has id " +
                                     std::to_string(hdr->pool_id) +
                                     ", expected " + std::to_string(pool_id));
    }
    if (hdr->size != size) {
      return Status::Corruption("pool header size mismatch in " + path);
    }
  }

  internal::g_pool_bases[pool_id].store(pool->base_,
                                        std::memory_order_release);
  RegisterPool(pool.get());

  pool->allocator_ = std::make_unique<PAllocator>(pool.get());
  if (create) {
    pool->allocator_->Initialize();
  } else {
    Status s = pool->allocator_->Recover();
    if (!s.ok()) return s;
  }

  *out = std::move(pool);
  return Status::OK();
}

Status Pool::Create(const std::string& path, uint64_t pool_id,
                    const Options& options, std::unique_ptr<Pool>* out) {
  return MapFile(path, pool_id, options, /*create=*/true, out);
}

Status Pool::Open(const std::string& path, uint64_t pool_id,
                  const Options& options, std::unique_ptr<Pool>* out) {
  return MapFile(path, pool_id, options, /*create=*/false, out);
}

Status Pool::OpenOrCreate(const std::string& path, uint64_t pool_id,
                          const Options& options, std::unique_ptr<Pool>* out,
                          bool* created) {
  struct stat st;
  if (::stat(path.c_str(), &st) == 0) {
    *created = false;
    return Open(path, pool_id, options, out);
  }
  *created = true;
  return Create(path, pool_id, options, out);
}

Pool::~Pool() {
  if (base_ != nullptr) {
    UnregisterPool(this);
    internal::g_pool_bases[id_].store(nullptr, std::memory_order_release);
    ::munmap(base_, size_);
    ::close(fd_);
  }
}

void Pool::SetRoot(VoidPPtr root) {
  pmem::StorePPtrPersist(&header()->root, root);
}

void Pool::SetRootInitialized() {
  pmem::StorePersist(&header()->root_initialized, uint64_t{1});
}

Pool* Pool::FindByAddress(const void* p) {
  auto& r = GetRegistry();
  std::lock_guard<std::mutex> l(r.mu);
  for (Pool* pool : r.pools) {
    if (pool->Contains(p)) return pool;
  }
  return nullptr;
}

Pool* Pool::FindById(uint64_t pool_id) {
  auto& r = GetRegistry();
  std::lock_guard<std::mutex> l(r.mu);
  for (Pool* pool : r.pools) {
    if (pool->id() == pool_id) return pool;
  }
  return nullptr;
}

Status Pool::Destroy(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError("unlink(" + path + "): " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace scm
}  // namespace fptree
