// Concurrent crash-recovery fuzzing (DESIGN.md §8): N writer threads run
// disjoint random op streams against the concurrent FPTree through the index
// interface; a crash barrier freezes the whole "machine" mid-flight in one
// worker; recovery (swept across 1/2/4 recover threads) must then satisfy
// every worker's history exactly:
//
//  * every acknowledged op is durable (the op's effect survives verbatim);
//  * the at-most-one in-flight op per worker applied atomically or not at
//    all (old state xor new state, never a mix);
//  * no phantom keys — a full ordered scan yields exactly the union of the
//    per-worker models, and the universal invariant checker passes.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "check/checked_index.h"
#include "check/checker.h"
#include "check/history.h"
#include "core/recovery.h"
#include "crash_test_util.h"
#include "engine/sharded_index.h"
#include "index/kv_index.h"
#include "scm/crash.h"
#include "scm/latency.h"
#include "util/random.h"

namespace fptree {
namespace index {
namespace {

using scm::CrashException;
using scm::CrashSim;
using scm::Pool;
using testutil::FuzzSeeds;
using testutil::TestPath;

// Routes per-round initial/recovered state to the checker's key space for
// the two key types the traits use.
inline void SetCheckStates(const std::map<uint64_t, uint64_t>& initial,
                           const std::map<uint64_t, uint64_t>& recovered,
                           check::CheckOptions* opts) {
  opts->initial_fixed = initial;
  opts->recovered_fixed = recovered;
}
inline void SetCheckStates(const std::map<std::string, uint64_t>& initial,
                           const std::map<std::string, uint64_t>& recovered,
                           check::CheckOptions* opts) {
  opts->initial_var = initial;
  opts->recovered_var = recovered;
}

// Crash windows reachable from the concurrent fixed-key tree. "cfptree.retry"
// sits at the top of every HTM retry loop, so it fires on every operation and
// doubles as the "crash at an arbitrary instant" window.
const char* const kFixedPoints[] = {
    "cfptree.retry",
    "cfptree.insert.before_bitmap",
    "cfptree.split.logged",
    "cfptree.split.allocated",
    "cfptree.split.copied",
    "cfptree.split.new_bitmap",
    "cfptree.split.old_bitmap",
    "cfptree.split.linked",
    "cfptree.delete.logged",
    "cfptree.delete.prev_logged",
    "cfptree.delete.unlinked",
    "palloc.alloc.logged",
    "palloc.alloc.header_marked",
    "palloc.alloc.delivered",
    "palloc.dealloc.logged",
    "palloc.dealloc.nulled",
};

// The var-key concurrent tree funnels all leaf commits through the same
// bitmap protocol; its named windows are the per-op retry point plus the
// allocator windows its key blobs pass through.
const char* const kVarPoints[] = {
    "cfptreevar.retry",
    "palloc.alloc.logged",
    "palloc.alloc.block_chosen",
    "palloc.alloc.header_marked",
    "palloc.alloc.top_bumped",
    "palloc.alloc.delivered",
    "palloc.dealloc.logged",
    "palloc.dealloc.nulled",
    "palloc.dealloc.freed",
};

// Traits own the storage lifecycle (Holder/Open/Destroy) so single-pool
// trees and the multi-pool sharded engine share one fuzz loop: the crash
// simulator is pool-agnostic, so SimulateCrash rolls every shard pool back
// together and the reopen exercises multi-shard recovery.
struct FixedTraits {
  using Index = KVIndex;
  using Key = uint64_t;
  static constexpr const char* kTag = "cfuzz";
  static constexpr const char* const* kPoints = kFixedPoints;
  static constexpr int kPointCount =
      sizeof(kFixedPoints) / sizeof(kFixedPoints[0]);
  static constexpr const char* kRetryPoint = "cfptree.retry";

  struct Holder {
    std::unique_ptr<Pool> pool;
    std::unique_ptr<Index> index;
    Index* get() { return index.get(); }
    void Drop() {
      index.reset();
      pool.reset();
    }
  };
  static bool Open(const std::string& path, bool fresh, Holder* h) {
    Pool::Options opts{.size = 128u << 20, .randomize_base = true};
    Status s = fresh ? Pool::Create(path, 1, opts, &h->pool)
                     : Pool::Open(path, 1, opts, &h->pool);
    if (!s.ok()) return false;
    h->index = MakeFixedIndex("fptree-c", h->pool.get());
    return h->index != nullptr;
  }
  static void Destroy(const std::string& path) { Pool::Destroy(path).ok(); }

  static Key MakeKey(int t, int threads, uint64_t u) {
    return static_cast<uint64_t>(t) + static_cast<uint64_t>(threads) * u;
  }
  static int Owner(Key k, int threads) { return static_cast<int>(k % threads); }
  static bool Find(Index* idx, const Key& k, uint64_t* v) {
    return idx->Find(k, v);
  }
  static bool Apply(Index* idx, int op, const Key& k, uint64_t v) {
    switch (op) {
      case 0:
        return idx->Insert(k, v);
      case 1:
        return idx->Update(k, v);
      default:
        return idx->Erase(k);
    }
  }
  static size_t ScanAll(Index* idx,
                        const std::function<void(Key, uint64_t)>& visit) {
    return idx->RangeScan(0, size_t{1} << 20, [&](uint64_t k, uint64_t v) {
      visit(k, v);
      return true;
    });
  }
};

struct VarTraits {
  using Index = VarIndex;
  using Key = std::string;
  static constexpr const char* kTag = "cvfuzz";
  static constexpr const char* const* kPoints = kVarPoints;
  static constexpr int kPointCount =
      sizeof(kVarPoints) / sizeof(kVarPoints[0]);
  static constexpr const char* kRetryPoint = "cfptreevar.retry";

  struct Holder {
    std::unique_ptr<Pool> pool;
    std::unique_ptr<Index> index;
    Index* get() { return index.get(); }
    void Drop() {
      index.reset();
      pool.reset();
    }
  };
  static bool Open(const std::string& path, bool fresh, Holder* h) {
    Pool::Options opts{.size = 128u << 20, .randomize_base = true};
    Status s = fresh ? Pool::Create(path, 1, opts, &h->pool)
                     : Pool::Open(path, 1, opts, &h->pool);
    if (!s.ok()) return false;
    h->index = MakeVarIndex("fptree-c-var", h->pool.get());
    return h->index != nullptr;
  }
  static void Destroy(const std::string& path) { Pool::Destroy(path).ok(); }

  static Key MakeKey(int t, int threads, uint64_t u) {
    return testutil::VarKey(static_cast<uint64_t>(t) +
                            static_cast<uint64_t>(threads) * u);
  }
  static int Owner(const Key& k, int threads) {
    return static_cast<int>(std::stoull(k) % threads);
  }
  static bool Find(Index* idx, const Key& k, uint64_t* v) {
    return idx->Find(k, v);
  }
  static bool Apply(Index* idx, int op, const Key& k, uint64_t v) {
    switch (op) {
      case 0:
        return idx->Insert(k, v);
      case 1:
        return idx->Update(k, v);
      default:
        return idx->Erase(k);
    }
  }
  static size_t ScanAll(Index* idx,
                        const std::function<void(Key, uint64_t)>& visit) {
    return idx->RangeScan("", size_t{1} << 20,
                          [&](std::string_view k, uint64_t v) {
                            visit(std::string(k), v);
                            return true;
                          });
  }
};

// The sharded engine over concurrent var-key trees: same histories, same
// windows, but the "machine" now spans three pools. A crash freezes workers
// mid-flight across shards, SimulateCrash rolls all shard pools back as one
// failure domain, and the reopen runs the engine's shard-parallel recovery.
struct ShardedVarTraits : VarTraits {
  static constexpr const char* kTag = "csfuzz";
  static constexpr size_t kShards = 3;

  struct Holder {
    std::unique_ptr<engine::ShardedVarIndex> index;
    Index* get() { return index.get(); }
    void Drop() { index.reset(); }
  };
  static bool Open(const std::string& path, bool fresh, Holder* h) {
    engine::ShardedOptions opts;
    opts.shards = kShards;
    opts.path_prefix = path;
    opts.shard_bytes = fresh ? (size_t{64} << 20) : 0;
    opts.randomize_base = true;
    return engine::ShardedVarIndex::Make("fptree-c-var", opts, &h->index)
        .ok();
  }
  static void Destroy(const std::string& path) {
    for (size_t i = 0; i < kShards; ++i) {
      Pool::Destroy(path + "." + std::to_string(i)).ok();
    }
  }
};

template <typename Traits>
void RunConcurrentFuzz(uint64_t seed, int threads) {
  using Key = typename Traits::Key;
  scm::LatencyModel::Disable();
  std::string path = TestPath(std::string(Traits::kTag) +
                              std::to_string(seed) + "x" +
                              std::to_string(threads));
  Traits::Destroy(path);
  typename Traits::Holder holder;
  ASSERT_TRUE(Traits::Open(path, /*fresh=*/true, &holder));
  ASSERT_NE(holder.get(), nullptr);
  ASSERT_TRUE(holder.get()->concurrent());

  Random64 rng(seed * 1000003 + static_cast<uint64_t>(threads));

  // The per-worker history: the model holds every acknowledged op's effect;
  // `InFlight` captures the single op that was issued but not acknowledged
  // when the crash hit. Workers own disjoint key residues mod `threads`, so
  // histories compose without cross-thread ordering assumptions.
  struct InFlight {
    bool active = false;
    Key key{};
    int op = 0;  // 0=insert 1=update 2=erase
    uint64_t old_val = 0;
    uint64_t new_val = 0;
  };
  std::vector<std::map<Key, uint64_t>> model(threads);
  std::vector<InFlight> inflight(threads);
  std::vector<char> crashed(threads, 0);

  // Workers must not use gtest asserts; they report through this instead.
  std::atomic<bool> violation{false};
  std::mutex vmu;
  std::string vmsg;
  auto report = [&](const std::string& m) {
    std::lock_guard<std::mutex> l(vmu);
    if (!violation.exchange(true)) vmsg = m;
  };

  CrashSim::Enable();
  CrashSim::SetCrashBarrier(true);

  // Every round's ops are also captured as a history (DESIGN.md §13) and
  // checked for durable linearizability against the post-round state:
  // acked effects must survive, the in-flight op may apply or vanish.
  // Rounds chain — round N's surviving state seeds round N+1's registers.
  check::HistoryRecorder recorder;
  std::map<Key, uint64_t> round_initial;

  static const uint32_t kRecoverSweep[3] = {1, 2, 4};
  int total_crashes = 0;
  for (int round = 0; round < 3; ++round) {
    // Arm one window per round. Round 0 always arms the per-op retry point
    // deep into the run (a crash at an arbitrary instant, with real state
    // built up); later rounds draw random protocol windows.
    const char* point =
        round == 0 ? Traits::kRetryPoint
                   : Traits::kPoints[rng.Uniform(Traits::kPointCount)];
    int countdown = std::string(point) == Traits::kRetryPoint
                        ? 40 + static_cast<int>(rng.Uniform(100))
                        : 1 + static_cast<int>(rng.Uniform(4));
    CrashSim::ArmCrashPoint(point, countdown);

    for (int t = 0; t < threads; ++t) {
      inflight[t] = InFlight{};
      crashed[t] = 0;
    }
    // Borrow-wrap the round's index: worker ops record invocation/response
    // events; a crash unwinding mid-op leaves it pending in the history.
    auto checked = check::CheckedBorrowed(holder.get(), &recorder);
    auto* idx = checked.get();
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        Random64 trng(seed * 7919 + static_cast<uint64_t>(round) * 131 +
                      static_cast<uint64_t>(t) + 1);
        auto& m = model[t];
        for (int i = 0; i < 150; ++i) {
          Key key = Traits::MakeKey(t, threads, trng.Uniform(150));
          uint64_t val = (static_cast<uint64_t>(t + 1) << 32) |
                         static_cast<uint64_t>(round * 1000 + i);
          try {
            if (trng.Uniform(5) == 0) {
              // A read of an owned key is linearizable against this
              // worker's own acknowledged history at every instant.
              uint64_t got = 0;
              bool found = Traits::Find(idx, key, &got);
              auto it = m.find(key);
              bool expect = it != m.end();
              if (found != expect || (found && got != it->second)) {
                report("worker read disagrees with own history");
              }
              continue;
            }
            auto it = m.find(key);
            InFlight inf;
            inf.active = true;
            inf.key = key;
            inf.new_val = val;
            bool had_old = it != m.end();
            if (had_old) inf.old_val = it->second;
            inf.op = had_old ? (trng.Uniform(2) ? 1 : 2) : 0;
            inflight[t] = inf;
            bool ok = Traits::Apply(idx, inf.op, key, val);
            if (!ok) report("op on an owned key unexpectedly failed");
            // Acknowledged: from here the effect must survive any crash.
            if (inf.op == 2) {
              m.erase(key);
            } else {
              m[key] = val;
            }
            inflight[t].active = false;
          } catch (const CrashException&) {
            crashed[t] = 1;
            return;
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    ASSERT_FALSE(violation.load()) << vmsg;
    checked.reset();  // borrows holder's index; drop before any reopen

    bool any_crash = CrashSim::BarrierTripped();
    for (int t = 0; t < threads; ++t) any_crash |= (crashed[t] != 0);
    if (any_crash) {
      ++total_crashes;
      CrashSim::SimulateCrash();
      holder.Drop();
      core::SetRecoverThreads(kRecoverSweep[round]);
      // Reattach = recover; for the sharded engine this reopens every
      // shard pool concurrently and rebuilds each inner tree.
      ASSERT_TRUE(Traits::Open(path, /*fresh=*/false, &holder));
      ASSERT_NE(holder.get(), nullptr);
    } else {
      CrashSim::DisarmAll();
    }

    std::string why;
    ASSERT_TRUE(holder.get()->CheckInvariants(&why)) << "round " << round << ": "
                                              << why;

    // Per-worker history validation: resolve each in-flight op (atomic:
    // old state xor new state), then require every acknowledged op's effect
    // verbatim.
    for (int t = 0; t < threads; ++t) {
      auto& m = model[t];
      if (inflight[t].active) {
        const InFlight& inf = inflight[t];
        uint64_t got = 0;
        bool found = Traits::Find(holder.get(), inf.key, &got);
        bool atomic = false;
        switch (inf.op) {
          case 0:
            atomic = !found || got == inf.new_val;
            break;
          case 1:
            atomic = found && (got == inf.old_val || got == inf.new_val);
            break;
          default:
            atomic = !found || got == inf.old_val;
            break;
        }
        ASSERT_TRUE(atomic)
            << "worker " << t << " in-flight op " << inf.op
            << " applied non-atomically (found=" << found << " got=" << got
            << " old=" << inf.old_val << " new=" << inf.new_val << ")";
        if (found) {
          m[inf.key] = got;
        } else {
          m.erase(inf.key);
        }
        inflight[t].active = false;
      }
      for (const auto& [k, v] : m) {
        uint64_t got = 0;
        ASSERT_TRUE(Traits::Find(holder.get(), k, &got))
            << "worker " << t << ": acknowledged key lost by the crash";
        ASSERT_EQ(got, v) << "worker " << t << ": acknowledged value lost";
      }
    }

    // Phantom sweep: the tree holds exactly the union of the models.
    size_t expected = 0;
    for (const auto& m : model) expected += m.size();
    ASSERT_EQ(holder.get()->Size(), expected);
    std::map<Key, uint64_t> recovered;
    size_t scanned = Traits::ScanAll(holder.get(), [&](Key k, uint64_t v) {
      recovered[k] = v;
      int owner = Traits::Owner(k, threads);
      auto it = model[owner].find(k);
      if (it == model[owner].end()) {
        report("phantom key surfaced by scan");
      } else if (it->second != v) {
        report("scanned value disagrees with owner history");
      }
    });
    ASSERT_FALSE(violation.load()) << "round " << round << ": " << vmsg;
    ASSERT_EQ(scanned, expected);

    // Durable linearizability (DESIGN.md §13): everything captured through
    // the checked wrapper this round — including ops cut down mid-flight by
    // the simulated crash, drained as pending — must linearize against the
    // state the recovery actually surfaced. The recovered map doubles as
    // the next round's initial state so histories chain across crashes.
    check::History hist = recorder.Drain();
    check::CheckOptions copts;
    copts.durable = true;
    SetCheckStates(round_initial, recovered, &copts);
    check::CheckResult cres = check::CheckHistory(hist, copts);
    ASSERT_TRUE(cres.decided) << "round " << round
                              << " (checker budget): " << cres.why;
    ASSERT_TRUE(cres.ok) << "round " << round << ": " << cres.why;
    round_initial = recovered;
  }
  EXPECT_GE(total_crashes, 1) << "fuzz run should actually crash";

  CrashSim::SetCrashBarrier(false);
  CrashSim::Disable();
  core::SetRecoverThreads(0);
  holder.Drop();
  Traits::Destroy(path);
}

class ConcurrentCrashFuzzTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(ConcurrentCrashFuzzTest, FixedKeyHistoriesSurviveCrash) {
  auto [seed, threads] = GetParam();
  RunConcurrentFuzz<FixedTraits>(seed, threads);
}

TEST_P(ConcurrentCrashFuzzTest, ShardedVarHistoriesSurviveCrash) {
  auto [seed, threads] = GetParam();
  RunConcurrentFuzz<ShardedVarTraits>(seed, threads);
}

TEST_P(ConcurrentCrashFuzzTest, VarKeyHistoriesSurviveCrash) {
  auto [seed, threads] = GetParam();
  RunConcurrentFuzz<VarTraits>(seed, threads);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByThreads, ConcurrentCrashFuzzTest,
    ::testing::Combine(::testing::Range(uint64_t{1}, 1 + FuzzSeeds(8)),
                       ::testing::Values(2, 4)));

}  // namespace
}  // namespace index
}  // namespace fptree
