// Copyright (c) FPTree reproduction authors.
//
// Minimal client for the FPTree KV server's wire protocol (protocol.h).
// Built for the two load-generation styles the bench needs:
//
//  * Closed loop: Queue*() + Flush() + ReadResponse() per batch — the
//    caller pipelines a window of requests and blocks for the responses.
//  * Open loop: Queue*() + Flush() at the offered rate, TryReadResponse()
//    to reap whatever responses have arrived without blocking.
//
// Responses arrive strictly in request order, so callers match them by
// counting. The class is not thread-safe; use one Client per connection.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/protocol.h"
#include "util/status.h"

namespace fptree {
namespace net {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects (blocking) to host:port.
  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Queue a request frame into the send buffer (no I/O).
  void QueuePut(std::string_view key, uint64_t value) {
    EncodePut(&outbuf_, key, value);
    ++queued_;
  }
  void QueueGet(std::string_view key) {
    EncodeGet(&outbuf_, key);
    ++queued_;
  }
  void QueueDel(std::string_view key) {
    EncodeDel(&outbuf_, key);
    ++queued_;
  }
  void QueueScan(std::string_view start, uint32_t limit) {
    EncodeScan(&outbuf_, start, limit);
    ++queued_;
  }
  void QueueUpsert(std::string_view key, uint64_t value) {
    EncodeUpsert(&outbuf_, key, value);
    ++queued_;
  }

  /// Requests queued but whose responses have not been read yet.
  uint64_t inflight() const { return queued_ - received_; }

  /// Writes the whole send buffer to the socket (blocking).
  Status Flush();

  /// Blocks until one response frame is available and decodes it.
  Status ReadResponse(Response* resp);

  /// Non-blocking reap: decodes one response if a complete frame is already
  /// buffered or readable without blocking. Sets *got accordingly; a false
  /// *got with an OK status just means "nothing there yet".
  Status TryReadResponse(Response* resp, bool* got);

  // --- convenience synchronous ops (queue + flush + read) -------------------

  Status Put(std::string_view key, uint64_t value);
  /// *inserted = true when the key was newly inserted, false on replace.
  Status Upsert(std::string_view key, uint64_t value, bool* inserted);
  /// found=false on NOT_FOUND.
  Status Get(std::string_view key, uint64_t* value, bool* found);
  Status Del(std::string_view key, bool* found);
  Status Scan(std::string_view start, uint32_t limit,
              std::vector<std::pair<std::string, uint64_t>>* rows);

 private:
  Status FillBuffer(bool blocking, bool* progress);
  Status DecodeOne(Response* resp, bool* got);

  int fd_ = -1;
  std::string outbuf_;
  std::string inbuf_;
  size_t in_pos_ = 0;
  uint64_t queued_ = 0;
  uint64_t received_ = 0;
};

}  // namespace net
}  // namespace fptree
