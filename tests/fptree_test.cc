// Single-threaded FPTree: base operations, differential testing against
// std::map, recovery after clean reopen, the paper's crash windows
// (Alg. 2–13), leaf-group management, and persistent-leak freedom.

#include "core/fptree.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <map>
#include <string>

#include "scm/crash.h"
#include "scm/latency.h"
#include "util/random.h"

namespace fptree {
namespace core {
namespace {

using scm::CrashException;
using scm::CrashSim;
using scm::Pool;

std::string TestPath(const std::string& name) {
  return "/tmp/fptree_test_" + std::to_string(::getpid()) + "_" + name;
}

// Small node sizes force deep trees and frequent splits/deletes.
using SmallTree = FPTree<uint64_t, 8, 8, /*groups=*/true, /*group=*/4>;
using NoGroupTree = FPTree<uint64_t, 8, 8, /*groups=*/false>;

template <typename TreeT>
class FPTreeTypedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scm::LatencyModel::Disable();
    path_ = TestPath("fptree");
    Pool::Destroy(path_).ok();
    OpenFresh();
  }

  void TearDown() override {
    tree_.reset();
    pool_.reset();
    CrashSim::Disable();
    Pool::Destroy(path_).ok();
  }

  void OpenFresh() {
    tree_.reset();
    pool_.reset();
    Pool::Destroy(path_).ok();
    Pool::Options opts{.size = 64u << 20, .randomize_base = true};
    ASSERT_TRUE(Pool::Create(path_, 1, opts, &pool_).ok());
    tree_ = std::make_unique<TreeT>(pool_.get());
  }

  void Reopen() {
    tree_.reset();
    pool_.reset();
    Pool::Options opts{.size = 64u << 20, .randomize_base = true};
    ASSERT_TRUE(Pool::Open(path_, 1, opts, &pool_).ok());
    tree_ = std::make_unique<TreeT>(pool_.get());
  }

  void ExpectMatchesModel(const std::map<uint64_t, uint64_t>& model) {
    EXPECT_EQ(tree_->Size(), model.size());
    for (const auto& [k, v] : model) {
      uint64_t out = 0;
      ASSERT_TRUE(tree_->Find(k, &out)) << "missing key " << k;
      EXPECT_EQ(out, v) << "wrong value for key " << k;
    }
    std::string why;
    EXPECT_TRUE(tree_->CheckConsistency(&why)) << why;
  }

  std::string path_;
  std::unique_ptr<Pool> pool_;
  std::unique_ptr<TreeT> tree_;
};

using TreeTypes = ::testing::Types<SmallTree, NoGroupTree>;

template <typename T>
struct TreeName;
template <>
struct TreeName<SmallTree> {
  static constexpr const char* kName = "Groups";
};
template <>
struct TreeName<NoGroupTree> {
  static constexpr const char* kName = "NoGroups";
};

class TreeNameGen {
 public:
  template <typename T>
  static std::string GetName(int) {
    return TreeName<T>::kName;
  }
};

TYPED_TEST_SUITE(FPTreeTypedTest, TreeTypes, TreeNameGen);

TYPED_TEST(FPTreeTypedTest, EmptyTreeFindsNothing) {
  uint64_t v;
  EXPECT_FALSE(this->tree_->Find(1, &v));
  EXPECT_EQ(this->tree_->Size(), 0u);
}

TYPED_TEST(FPTreeTypedTest, InsertThenFind) {
  EXPECT_TRUE(this->tree_->Insert(10, 100));
  uint64_t v = 0;
  EXPECT_TRUE(this->tree_->Find(10, &v));
  EXPECT_EQ(v, 100u);
  EXPECT_EQ(this->tree_->Size(), 1u);
}

TYPED_TEST(FPTreeTypedTest, DuplicateInsertRejected) {
  EXPECT_TRUE(this->tree_->Insert(10, 100));
  EXPECT_FALSE(this->tree_->Insert(10, 200));
  uint64_t v = 0;
  ASSERT_TRUE(this->tree_->Find(10, &v));
  EXPECT_EQ(v, 100u);
}

TYPED_TEST(FPTreeTypedTest, UpdateChangesValue) {
  ASSERT_TRUE(this->tree_->Insert(10, 100));
  EXPECT_TRUE(this->tree_->Update(10, 200));
  uint64_t v = 0;
  ASSERT_TRUE(this->tree_->Find(10, &v));
  EXPECT_EQ(v, 200u);
  EXPECT_EQ(this->tree_->Size(), 1u);
}

TYPED_TEST(FPTreeTypedTest, UpdateMissingKeyFails) {
  EXPECT_FALSE(this->tree_->Update(10, 200));
}

TYPED_TEST(FPTreeTypedTest, EraseRemovesKey) {
  ASSERT_TRUE(this->tree_->Insert(10, 100));
  EXPECT_TRUE(this->tree_->Erase(10));
  uint64_t v;
  EXPECT_FALSE(this->tree_->Find(10, &v));
  EXPECT_FALSE(this->tree_->Erase(10));
  EXPECT_EQ(this->tree_->Size(), 0u);
}

TYPED_TEST(FPTreeTypedTest, SplitsPreserveAllKeys) {
  std::map<uint64_t, uint64_t> model;
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(this->tree_->Insert(k, k * 7));
    model[k] = k * 7;
  }
  this->ExpectMatchesModel(model);
  EXPECT_GT(this->tree_->stats().leaf_splits, 10u);
}

TYPED_TEST(FPTreeTypedTest, RandomOpsDifferentialVsStdMap) {
  std::map<uint64_t, uint64_t> model;
  Random64 rng(123);
  for (int i = 0; i < 30000; ++i) {
    uint64_t key = rng.Uniform(2000);
    int op = static_cast<int>(rng.Uniform(4));
    switch (op) {
      case 0: {  // insert
        bool inserted = this->tree_->Insert(key, i);
        EXPECT_EQ(inserted, model.find(key) == model.end());
        if (inserted) model[key] = i;
        break;
      }
      case 1: {  // update
        bool updated = this->tree_->Update(key, i);
        EXPECT_EQ(updated, model.find(key) != model.end());
        if (updated) model[key] = i;
        break;
      }
      case 2: {  // erase
        bool erased = this->tree_->Erase(key);
        EXPECT_EQ(erased, model.erase(key) == 1);
        break;
      }
      default: {  // find
        uint64_t v = 0;
        bool found = this->tree_->Find(key, &v);
        auto it = model.find(key);
        ASSERT_EQ(found, it != model.end());
        if (found) EXPECT_EQ(v, it->second);
      }
    }
  }
  this->ExpectMatchesModel(model);
  std::string why;
  EXPECT_TRUE(this->tree_->CheckNoLeaks(&why)) << why;
}

TYPED_TEST(FPTreeTypedTest, RangeScanReturnsSortedWindow) {
  auto order = ShuffledRange(500, 7);
  for (uint64_t k : order) {
    ASSERT_TRUE(this->tree_->Insert(k * 2, k));  // even keys only
  }
  std::vector<std::pair<uint64_t, uint64_t>> out;
  this->tree_->RangeScan(101, 20, &out);
  ASSERT_EQ(out.size(), 20u);
  uint64_t expect = 102;
  for (auto& [k, v] : out) {
    EXPECT_EQ(k, expect);
    EXPECT_EQ(v, k / 2);
    expect += 2;
  }
}

TYPED_TEST(FPTreeTypedTest, RangeScanPastEnd) {
  for (uint64_t k = 0; k < 50; ++k) ASSERT_TRUE(this->tree_->Insert(k, k));
  std::vector<std::pair<uint64_t, uint64_t>> out;
  this->tree_->RangeScan(40, 100, &out);
  EXPECT_EQ(out.size(), 10u);
  this->tree_->RangeScan(1000, 10, &out);
  EXPECT_TRUE(out.empty());
}

TYPED_TEST(FPTreeTypedTest, DeleteEverythingThenReuse) {
  std::map<uint64_t, uint64_t> model;
  for (uint64_t k = 0; k < 300; ++k) {
    ASSERT_TRUE(this->tree_->Insert(k, k));
  }
  for (uint64_t k = 0; k < 300; ++k) {
    ASSERT_TRUE(this->tree_->Erase(k));
  }
  EXPECT_EQ(this->tree_->Size(), 0u);
  std::string why;
  EXPECT_TRUE(this->tree_->CheckNoLeaks(&why)) << why;
  // Tree remains fully usable.
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(this->tree_->Insert(k + 1000, k));
    model[k + 1000] = k;
  }
  this->ExpectMatchesModel(model);
}

TYPED_TEST(FPTreeTypedTest, ContentsSurviveCleanReopen) {
  std::map<uint64_t, uint64_t> model;
  auto order = ShuffledRange(2000, 5);
  for (uint64_t k : order) {
    ASSERT_TRUE(this->tree_->Insert(k, k ^ 0xABCD));
    model[k] = k ^ 0xABCD;
  }
  for (uint64_t k = 0; k < 2000; k += 3) {
    ASSERT_TRUE(this->tree_->Erase(k));
    model.erase(k);
  }
  this->Reopen();  // rebuilds inner nodes from the persistent leaves
  this->ExpectMatchesModel(model);
  std::string why;
  EXPECT_TRUE(this->tree_->CheckNoLeaks(&why)) << why;
  // And the recovered tree is writable.
  ASSERT_TRUE(this->tree_->Insert(999999, 1));
  uint64_t v;
  EXPECT_TRUE(this->tree_->Find(999999, &v));
}

TYPED_TEST(FPTreeTypedTest, EmptyTreeSurvivesReopen) {
  this->Reopen();
  EXPECT_EQ(this->tree_->Size(), 0u);
  EXPECT_TRUE(this->tree_->Insert(1, 2));
}

TYPED_TEST(FPTreeTypedTest, ReopenAfterDeleteAll) {
  for (uint64_t k = 0; k < 200; ++k) ASSERT_TRUE(this->tree_->Insert(k, k));
  for (uint64_t k = 0; k < 200; ++k) ASSERT_TRUE(this->tree_->Erase(k));
  this->Reopen();
  EXPECT_EQ(this->tree_->Size(), 0u);
  uint64_t v;
  EXPECT_FALSE(this->tree_->Find(5, &v));
  EXPECT_TRUE(this->tree_->Insert(5, 50));
  EXPECT_TRUE(this->tree_->Find(5, &v));
}

TYPED_TEST(FPTreeTypedTest, FingerprintProbesStayNearOne) {
  // Paper §4.2/Fig. 4: the expected number of in-leaf key probes during a
  // successful search is ~1 (for m well below 400).
  for (uint64_t k = 0; k < 5000; ++k) {
    ASSERT_TRUE(this->tree_->Insert(Mix64(k), k));
  }
  this->tree_->stats().Clear();
  for (uint64_t k = 0; k < 5000; ++k) {
    uint64_t v;
    ASSERT_TRUE(this->tree_->Find(Mix64(k), &v));
  }
  double probes_per_find =
      static_cast<double>(this->tree_->stats().key_probes) /
      static_cast<double>(this->tree_->stats().finds);
  EXPECT_LT(probes_per_find, 1.2);
  EXPECT_GE(probes_per_find, 1.0);
}

// --- Crash-recovery matrix -------------------------------------------------

// The named crash windows of each operation (DESIGN.md §5). A window list
// may include points that a given scenario never reaches; those are skipped.
const char* const kInsertPoints[] = {
    "fptree.insert.before_bitmap",
    "fptree.insert.after_bitmap",
};
const char* const kSplitPoints[] = {
    "fptree.split.logged",     "fptree.split.allocated",
    "fptree.split.copied",     "fptree.split.new_bitmap",
    "fptree.split.old_bitmap", "fptree.split.linked",
};
const char* const kDeletePoints[] = {
    "fptree.erase.after_bitmap",     "fptree.delete.logged",
    "fptree.delete.head_updated",    "fptree.delete.prev_logged",
    "fptree.delete.unlinked",        "fptree.delete.bitmap_cleared",
    "fptree.delete.deallocated",
};
const char* const kUpdatePoints[] = {
    "fptree.update.before_bitmap",
    "fptree.update.after_bitmap",
};
const char* const kGroupPoints[] = {
    "fptree.getleaf.allocated",   "fptree.getleaf.initialized",
    "fptree.getleaf.linked",      "fptree.getleaf.tail_updated",
    "fptree.freeleaf.logged",     "fptree.freeleaf.head_updated",
    "fptree.freeleaf.prev_logged", "fptree.freeleaf.unlinked",
    "fptree.freeleaf.tail_updated", "fptree.freeleaf.deallocated",
};
const char* const kAllocPoints[] = {
    "palloc.alloc.logged",     "palloc.alloc.block_chosen",
    "palloc.alloc.header_marked", "palloc.alloc.top_bumped",
    "palloc.alloc.delivered",  "palloc.dealloc.logged",
    "palloc.dealloc.nulled",   "palloc.dealloc.freed",
};

template <typename TreeT>
class FPTreeCrashTest : public FPTreeTypedTest<TreeT> {
 protected:
  void SetUp() override {
    FPTreeTypedTest<TreeT>::SetUp();
    CrashSim::Enable();
  }

  // Runs `op` with `point` armed. Returns true if the crash fired (in which
  // case the pool has been crash-reverted and reopened with recovery run).
  template <typename Op>
  bool RunWithCrash(const char* point, Op op) {
    CrashSim::ArmCrashPoint(point);
    bool crashed = false;
    try {
      op();
    } catch (const CrashException&) {
      crashed = true;
    }
    CrashSim::DisarmAll();
    if (!crashed) return false;
    CrashSim::SimulateCrash();
    this->Reopen();
    CrashSim::Enable();
    return true;
  }

  // Atomicity invariant: after a crash during a single-key operation, the
  // key is either in the pre-state or the post-state; all other keys are
  // untouched; the structure is consistent and leak-free.
  void VerifyAtomicity(const std::map<uint64_t, uint64_t>& pre,
                       uint64_t key,
                       const std::map<uint64_t, uint64_t>& post,
                       const char* point) {
    std::string why;
    ASSERT_TRUE(this->tree_->CheckConsistency(&why))
        << point << ": " << why;
    ASSERT_TRUE(this->tree_->CheckNoLeaks(&why)) << point << ": " << why;
    uint64_t v = 0;
    bool found = this->tree_->Find(key, &v);
    auto pre_it = pre.find(key);
    auto post_it = post.find(key);
    bool matches_pre =
        (found == (pre_it != pre.end())) && (!found || v == pre_it->second);
    bool matches_post =
        (found == (post_it != post.end())) && (!found || v == post_it->second);
    EXPECT_TRUE(matches_pre || matches_post)
        << point << ": key " << key << " in neither pre nor post state";
    // Other keys must match both states (pre and post agree outside `key`).
    for (const auto& [k, val] : pre) {
      if (k == key) continue;
      uint64_t out = 0;
      ASSERT_TRUE(this->tree_->Find(k, &out)) << point << ": lost key " << k;
      EXPECT_EQ(out, val) << point;
    }
  }
};

TYPED_TEST_SUITE(FPTreeCrashTest, TreeTypes, TreeNameGen);

TYPED_TEST(FPTreeCrashTest, InsertCrashWindows) {
  std::vector<const char*> points;
  points.insert(points.end(), std::begin(kInsertPoints),
                std::end(kInsertPoints));
  points.insert(points.end(), std::begin(kSplitPoints),
                std::end(kSplitPoints));
  points.insert(points.end(), std::begin(kGroupPoints),
                std::end(kGroupPoints));
  points.insert(points.end(), std::begin(kAllocPoints),
                std::end(kAllocPoints));

  for (const char* point : points) {
    this->OpenFresh();
    CrashSim::Enable();
    // Fill enough to force splits and fresh group allocations during the
    // probed insert burst.
    std::map<uint64_t, uint64_t> pre;
    for (uint64_t k = 0; k < 64; k += 2) {
      ASSERT_TRUE(this->tree_->Insert(k, k + 1));
      pre[k] = k + 1;
    }
    // Burst of inserts; one may crash at `point`.
    std::map<uint64_t, uint64_t> post = pre;
    uint64_t crash_key = 0;
    bool crashed = false;
    for (uint64_t k = 1; k < 128 && !crashed; k += 2) {
      std::map<uint64_t, uint64_t> next = post;
      next[k] = k + 1;
      crashed = this->RunWithCrash(point, [&] {
        ASSERT_TRUE(this->tree_->Insert(k, k + 1));
      });
      if (crashed) {
        crash_key = k;
        this->VerifyAtomicity(post, k, next, point);
      } else {
        post = next;
      }
    }
    if (!crashed) continue;  // window not reachable in this scenario
    // The tree must accept the key after recovery (idempotent completion).
    uint64_t v;
    if (!this->tree_->Find(crash_key, &v)) {
      ASSERT_TRUE(this->tree_->Insert(crash_key, crash_key + 1)) << point;
    }
    ASSERT_TRUE(this->tree_->Find(crash_key, &v)) << point;
  }
}

TYPED_TEST(FPTreeCrashTest, EraseCrashWindows) {
  std::vector<const char*> points;
  points.insert(points.end(), std::begin(kDeletePoints),
                std::end(kDeletePoints));
  points.insert(points.end(), std::begin(kGroupPoints),
                std::end(kGroupPoints));
  points.insert(points.end(), std::begin(kAllocPoints),
                std::end(kAllocPoints));

  // Ascending deletion empties the head leaf first (Alg. 6 head path);
  // descending deletion empties interior/tail leaves (prev-pointer path).
  for (const char* point : points) {
    for (int mode = 0; mode < 2; ++mode) {
      this->OpenFresh();
      CrashSim::Enable();
      std::map<uint64_t, uint64_t> post;
      for (uint64_t k = 0; k < 128; ++k) {
        ASSERT_TRUE(this->tree_->Insert(k, k + 1));
        post[k] = k + 1;
      }
      bool crashed = false;
      for (uint64_t i = 0; i < 128 && !crashed; ++i) {
        uint64_t k = mode == 0 ? i : 127 - i;
        std::map<uint64_t, uint64_t> pre = post;
        post.erase(k);
        crashed = this->RunWithCrash(point, [&] {
          ASSERT_TRUE(this->tree_->Erase(k));
        });
        if (crashed) {
          this->VerifyAtomicity(pre, k, post, point);
          // Finish the erase if it did not take effect.
          uint64_t v;
          if (this->tree_->Find(k, &v)) {
            ASSERT_TRUE(this->tree_->Erase(k)) << point;
          }
          EXPECT_FALSE(this->tree_->Find(k, &v)) << point;
        }
      }
    }
  }
}

TYPED_TEST(FPTreeCrashTest, UpdateCrashWindows) {
  for (const char* point : kUpdatePoints) {
    this->OpenFresh();
    CrashSim::Enable();
    std::map<uint64_t, uint64_t> pre;
    for (uint64_t k = 0; k < 64; ++k) {
      ASSERT_TRUE(this->tree_->Insert(k, k));
      pre[k] = k;
    }
    std::map<uint64_t, uint64_t> post = pre;
    post[7] = 7777;
    bool crashed = this->RunWithCrash(point, [&] {
      ASSERT_TRUE(this->tree_->Update(7, 7777));
    });
    ASSERT_TRUE(crashed) << point;
    this->VerifyAtomicity(pre, 7, post, point);
  }
}

TYPED_TEST(FPTreeCrashTest, RepeatedCrashStorm) {
  // Crash at a rotating set of points through a long op sequence; the tree
  // must stay consistent and leak-free through every recovery.
  const char* storm[] = {
      "fptree.split.copied",        "fptree.insert.before_bitmap",
      "fptree.delete.bitmap_cleared", "palloc.alloc.header_marked",
      "fptree.split.old_bitmap",    "fptree.erase.after_bitmap",
  };
  std::map<uint64_t, uint64_t> model;
  Random64 rng(99);
  int crashes = 0;
  for (int round = 0; round < 60; ++round) {
    const char* point = storm[round % (sizeof(storm) / sizeof(storm[0]))];
    uint64_t key = rng.Uniform(256);
    bool do_insert = rng.Bernoulli(0.7);
    bool applied_pre = model.count(key) > 0;
    bool crashed = this->RunWithCrash(point, [&] {
      if (do_insert) {
        this->tree_->Insert(key, round);
      } else {
        this->tree_->Erase(key);
      }
    });
    uint64_t v;
    bool now = this->tree_->Find(key, &v);
    if (crashed) {
      ++crashes;
      // Either outcome is legal; adopt the actual one.
      if (now) {
        model[key] = v;
      } else {
        model.erase(key);
      }
      (void)applied_pre;
    } else {
      if (do_insert && !applied_pre) {
        model[key] = round;
      } else if (!do_insert) {
        model.erase(key);
      }
    }
    std::string why;
    ASSERT_TRUE(this->tree_->CheckConsistency(&why))
        << "round " << round << " @ " << point << ": " << why;
    ASSERT_TRUE(this->tree_->CheckNoLeaks(&why))
        << "round " << round << " @ " << point << ": " << why;
  }
  EXPECT_GT(crashes, 5);
  this->ExpectMatchesModel(model);
}

TYPED_TEST(FPTreeCrashTest, TornLargeWriteDuringSplit) {
  CrashSim::SetTearMode(true);
  for (uint64_t k = 0; k < 64; ++k) {
    ASSERT_TRUE(this->tree_->Insert(k, k));
  }
  bool crashed = this->RunWithCrash("fptree.split.copied", [&] {
    for (uint64_t k = 64; k < 256; ++k) {
      this->tree_->Insert(k, k);
    }
  });
  if (crashed) {
    std::string why;
    ASSERT_TRUE(this->tree_->CheckConsistency(&why)) << why;
    ASSERT_TRUE(this->tree_->CheckNoLeaks(&why)) << why;
  }
  CrashSim::SetTearMode(false);
}

}  // namespace
}  // namespace core
}  // namespace fptree
