// Copyright (c) FPTree reproduction authors.
//
// Thread orchestration helpers for concurrency benchmarks, stress tests and
// the parallel recovery path: a reusable spin barrier (so per-op timing is
// not polluted by futex wakeups), a scoped thread pool that joins on
// destruction, and a contiguous-shard fork-join helper.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace fptree {

/// \brief Reusable sense-reversing spin barrier.
class SpinBarrier {
 public:
  explicit SpinBarrier(uint32_t n) : total_(n) {}

  void Wait() {
    uint32_t sense = sense_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == total_) {
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(sense ^ 1, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) == sense) {
        CpuRelax();
      }
    }
  }

  static void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
  }

 private:
  const uint32_t total_;
  std::atomic<uint32_t> arrived_{0};
  std::atomic<uint32_t> sense_{0};
};

/// \brief One step of bounded exponential backoff for optimistic retry
/// loops: spin-relax with a doubling budget for the early rounds, then
/// yield the CPU so a descheduled lock holder can run. Callers bound the
/// round count and fall back to a slow path (e.g. re-descending from the
/// root) when the loop stays contended.
inline void BackoffSpin(uint32_t round) {
  if (round < 16) {
    uint32_t spins = uint32_t{1} << (round < 10 ? round : 10);
    while (spins-- > 0) SpinBarrier::CpuRelax();
  } else {
    std::this_thread::yield();
  }
}

/// \brief Launches `n` workers running fn(thread_id) and joins on
/// destruction (or explicit Join()).
class ThreadGroup {
 public:
  ThreadGroup() = default;
  ThreadGroup(const ThreadGroup&) = delete;
  ThreadGroup& operator=(const ThreadGroup&) = delete;

  void Spawn(uint32_t n, const std::function<void(uint32_t)>& fn) {
    for (uint32_t i = 0; i < n; ++i) {
      threads_.emplace_back(fn, i);
    }
  }

  void Join() {
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  ~ThreadGroup() { Join(); }

 private:
  std::vector<std::thread> threads_;
};

/// \brief Splits [0, n_items) into up to `threads` contiguous shards and
/// runs fn(shard, begin, end) for each, fork-join. Shard boundaries are
/// deterministic (first `n_items % shards` shards get one extra item), so
/// callers can size per-shard result slots up front and merge in shard
/// order. Runs inline on the caller when one shard suffices — recovery
/// paths keep their exact single-threaded behaviour at --recover-threads=1.
template <typename Fn>
void ParallelShards(size_t n_items, uint32_t threads, const Fn& fn) {
  const size_t shards =
      std::min<size_t>(threads == 0 ? 1 : threads, n_items);
  if (shards <= 1) {
    if (n_items > 0) fn(size_t{0}, size_t{0}, n_items);
    return;
  }
  const size_t base = n_items / shards;
  const size_t extra = n_items % shards;
  ThreadGroup group;
  group.Spawn(static_cast<uint32_t>(shards), [&](uint32_t shard) {
    const size_t begin =
        shard * base + std::min<size_t>(shard, extra);
    const size_t end = begin + base + (shard < extra ? 1 : 0);
    fn(static_cast<size_t>(shard), begin, end);
  });
  group.Join();
}

}  // namespace fptree
