// Copyright (c) FPTree reproduction authors.

#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/timer.h"

namespace fptree {
namespace net {

uint64_t BackoffMs(const RetryPolicy& policy, uint32_t attempt) {
  uint64_t cap = policy.base_backoff_ms == 0 ? 1 : policy.base_backoff_ms;
  for (uint32_t i = 0; i < attempt && cap < policy.max_backoff_ms; ++i) {
    cap <<= 1;
  }
  if (cap > policy.max_backoff_ms) cap = policy.max_backoff_ms;
  // SplitMix64 of (seed, attempt): full jitter over the upper half of the
  // cap, deterministic per seed so failures reproduce exactly.
  uint64_t x = policy.seed + uint64_t{attempt + 1} * 0x9e3779b97f4a7c15ull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return cap / 2 + x % (cap / 2 + 1);
}

Client::~Client() { Close(); }

uint64_t Client::DeadlineFromNow() const {
  if (deadline_ms_ == 0) return 0;
  return NowNanos() + uint64_t{deadline_ms_} * 1000000;
}

Status Client::WaitFor(short events, uint64_t deadline_ns) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline_ns != 0) {
      uint64_t now = NowNanos();
      if (now >= deadline_ns) {
        return Status::TimedOut("client deadline expired");
      }
      uint64_t left = deadline_ns - now;
      timeout_ms = static_cast<int>((left + 999999) / 1000000);
    }
    pollfd p{};
    p.fd = fd_;
    p.events = events;
    int r = ::poll(&p, 1, timeout_ms);
    if (r > 0) return Status::OK();
    if (r == 0) return Status::TimedOut("client deadline expired");
    if (errno == EINTR) continue;
    return Status::IOError("poll: " + std::string(strerror(errno)));
  }
}

Status Client::Connect(const std::string& host, uint16_t port) {
  Close();
  host_ = host;
  port_ = port;
  const uint64_t deadline = DeadlineFromNow();
  // The socket stays non-blocking for its whole life: every blocking wait
  // in this class goes through poll() so deadlines apply uniformly.
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd_ < 0) return Status::IOError("socket: " + std::string(strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad address " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) {
      Status s = Status::IOError("connect: " + std::string(strerror(errno)));
      Close();
      return s;
    }
    Status s = WaitFor(POLLOUT, deadline);
    if (!s.ok()) {
      Close();
      return s;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      Status s2 = Status::IOError("connect: " + std::string(strerror(err)));
      Close();
      return s2;
    }
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  outbuf_.clear();
  inbuf_.clear();
  in_pos_ = 0;
  queued_ = received_ = 0;
  pending_ops_.clear();
  // Requests abandoned by a reconnect keep their open log slots: they
  // drain as pending (response never observed), which is exactly their
  // truth — the old connection may or may not have applied them.
  caps_.clear();
  return Status::OK();
}

Status Client::ConnectWithRetry(const std::string& host, uint16_t port,
                                const RetryPolicy& policy) {
  Status last = Status::IOError("connect: no attempts made");
  uint32_t attempts = policy.max_attempts == 0 ? 1 : policy.max_attempts;
  for (uint32_t a = 0; a < attempts; ++a) {
    if (a > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(BackoffMs(policy, a - 1)));
    }
    last = Connect(host, port);
    if (last.ok()) return last;
  }
  return last;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::Flush() {
  const uint64_t deadline = DeadlineFromNow();
  size_t off = 0;
  while (off < outbuf_.size()) {
    // MSG_NOSIGNAL: EPIPE instead of SIGPIPE when the server is gone.
    ssize_t w = ::send(fd_, outbuf_.data() + off, outbuf_.size() - off,
                       MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
    } else if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      Status s = WaitFor(POLLOUT, deadline);
      if (!s.ok()) {
        outbuf_.erase(0, off);  // keep only the unsent tail
        return s;
      }
    } else if (w < 0 && errno == EINTR) {
      continue;
    } else {
      outbuf_.erase(0, off);
      return Status::IOError("write: " + std::string(strerror(errno)));
    }
  }
  outbuf_.clear();
  return Status::OK();
}

Status Client::FillBuffer(bool* progress) {
  *progress = false;
  char buf[64 * 1024];
  for (;;) {
    ssize_t r = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
    if (r > 0) {
      inbuf_.append(buf, static_cast<size_t>(r));
      *progress = true;
      return Status::OK();
    }
    if (r == 0) return Status::IOError("server closed the connection");
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
    if (errno == EINTR) continue;
    return Status::IOError("recv: " + std::string(strerror(errno)));
  }
}

Status Client::DecodeOne(Response* resp, bool* got) {
  *got = false;
  size_t consumed = 0;
  // Responses arrive strictly in request order; decode with the op kind we
  // queued (batch layouts are ambiguous under size-based guessing).
  Op expected = pending_ops_.empty() ? Op::kGet : pending_ops_.front();
  DecodeStatus st =
      DecodeResponseFor(expected, inbuf_.data() + in_pos_,
                        inbuf_.size() - in_pos_, resp, &consumed);
  if (st == DecodeStatus::kError) {
    return Status::IOError("malformed response frame");
  }
  if (st == DecodeStatus::kOk) {
    if (!pending_ops_.empty()) {
      if (recorder_ != nullptr && !caps_.empty()) {
        CapResponse(pending_ops_.front(), *resp);
        caps_.pop_front();
      }
      pending_ops_.pop_front();
    }
    in_pos_ += consumed;
    ++received_;
    *got = true;
    if (in_pos_ > 64 * 1024) {
      inbuf_.erase(0, in_pos_);
      in_pos_ = 0;
    }
  }
  return Status::OK();
}

Status Client::ReadResponse(Response* resp) {
  const uint64_t deadline = DeadlineFromNow();
  for (;;) {
    bool got = false;
    Status s = DecodeOne(resp, &got);
    if (!s.ok()) return s;
    if (got) return Status::OK();
    s = WaitFor(POLLIN, deadline);
    if (!s.ok()) return s;  // TimedOut instead of the old block-forever
    bool progress = false;
    s = FillBuffer(&progress);
    if (!s.ok()) return s;
  }
}

Status Client::TryReadResponse(Response* resp, bool* got) {
  Status s = DecodeOne(resp, got);
  if (!s.ok() || *got) return s;
  bool progress = false;
  s = FillBuffer(&progress);
  if (!s.ok()) return s;
  if (!progress) return Status::OK();
  return DecodeOne(resp, got);
}

Status Client::Put(std::string_view key, uint64_t value) {
  QueuePut(key, value);
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  if (resp.status == RespStatus::kNoSpace) {
    return Status::ResourceExhausted("server out of space (NO_SPACE)");
  }
  if (resp.status != RespStatus::kOk) {
    return Status::IOError("PUT rejected by server");
  }
  return Status::OK();
}

Status Client::Upsert(std::string_view key, uint64_t value, bool* inserted) {
  QueueUpsert(key, value);
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  if (resp.status == RespStatus::kNoSpace) {
    return Status::ResourceExhausted("server out of space (NO_SPACE)");
  }
  if (resp.status != RespStatus::kOk) {
    return Status::IOError("UPSERT rejected by server");
  }
  *inserted = resp.value != 0;
  return Status::OK();
}

Status Client::Get(std::string_view key, uint64_t* value, bool* found) {
  QueueGet(key);
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  *found = resp.status == RespStatus::kOk;
  if (*found) *value = resp.value;
  return Status::OK();
}

Status Client::GetWithRetry(std::string_view key, uint64_t* value,
                            bool* found, const RetryPolicy& policy) {
  Status last = Status::IOError("get: no attempts made");
  uint32_t attempts = policy.max_attempts == 0 ? 1 : policy.max_attempts;
  for (uint32_t a = 0; a < attempts; ++a) {
    if (a > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(BackoffMs(policy, a - 1)));
    }
    if (!connected()) {
      last = Connect(host_, port_);
      if (!last.ok()) continue;
    }
    last = Get(key, value, found);
    if (last.ok()) return last;
    // Transport failure or deadline expiry: the connection's response FIFO
    // can no longer be trusted (a late response would desynchronize it).
    // Drop it; the next attempt reconnects. Safe because GET is idempotent.
    Close();
  }
  return last;
}

Status Client::Del(std::string_view key, bool* found) {
  QueueDel(key);
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  *found = resp.status == RespStatus::kOk;
  return Status::OK();
}

Status Client::Scan(std::string_view start, uint32_t limit,
                    std::vector<std::pair<std::string, uint64_t>>* rows) {
  QueueScan(start, limit);
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  if (resp.status != RespStatus::kOk) {
    return Status::IOError("SCAN rejected by server");
  }
  *rows = std::move(resp.scan);
  return Status::OK();
}

Status Client::Mget(const std::string_view* keys, size_t count,
                    uint64_t* values, uint8_t* found) {
  QueueMget(keys, static_cast<uint32_t>(count));
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  if (resp.status != RespStatus::kOk || resp.multi_found.size() != count) {
    return Status::IOError("MGET rejected by server");
  }
  for (size_t i = 0; i < count; ++i) {
    found[i] = resp.multi_found[i];
    if (found[i]) values[i] = resp.multi_values[i];
  }
  return Status::OK();
}

Status Client::Mput(const std::string_view* keys, const uint64_t* values,
                    size_t count, uint8_t* inserted) {
  QueueMput(keys, values, static_cast<uint32_t>(count));
  Status s = Flush();
  if (!s.ok()) return s;
  Response resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  if (resp.status == RespStatus::kNoSpace) {
    // A strict input prefix of the batch was applied durably server-side;
    // the caller sees the whole batch as not acked.
    return Status::ResourceExhausted("server out of space (NO_SPACE)");
  }
  if (resp.status != RespStatus::kOk || resp.multi_found.size() != count) {
    return Status::IOError("MPUT rejected by server");
  }
  if (inserted != nullptr) {
    for (size_t i = 0; i < count; ++i) inserted[i] = resp.multi_found[i];
  }
  return Status::OK();
}

// --- history capture (DESIGN.md §13) ----------------------------------------
//
// Queue-time: open one log slot per point op / scan, one per MPUT element
// (each element is an independent per-key upsert in the object model).
// MGET opens nothing — reads carry no effect, so they commit wholesale
// once the response reveals their results. Response-time: close the
// front cap's slots with the decoded outcome. Slots left open when a
// connection dies drain as pending.

void Client::CapWrite(Op op, std::string_view key, uint64_t value) {
  check::ThreadLog* log = recorder_->Log();
  check::Event proto;
  proto.t_inv = check::ClockNow();
  proto.arg = value;
  switch (op) {
    case Op::kPut:
    case Op::kUpsert:
      proto.kind = check::OpKind::kUpsert;
      break;
    case Op::kGet:
      proto.kind = check::OpKind::kGet;
      break;
    case Op::kDel:
      proto.kind = check::OpKind::kErase;
      break;
    default:
      return;
  }
  Cap cap;
  cap.slots.push_back(log->BeginVar(proto, key));
  caps_.push_back(std::move(cap));
}

void Client::CapScan(std::string_view start, uint32_t limit) {
  check::ThreadLog* log = recorder_->Log();
  check::Event proto;
  proto.t_inv = check::ClockNow();
  proto.kind = check::OpKind::kScan;
  proto.arg = limit;
  Cap cap;
  cap.slots.push_back(log->BeginVar(proto, start));
  cap.scan_limit = limit;
  caps_.push_back(std::move(cap));
}

void Client::CapMget(const std::string_view* keys, uint32_t count) {
  Cap cap;
  cap.t_inv = check::ClockNow();
  cap.mget_keys.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    cap.mget_keys.emplace_back(keys[i]);
  }
  caps_.push_back(std::move(cap));
}

void Client::CapMput(const std::string_view* keys, const uint64_t* values,
                     uint32_t count) {
  check::ThreadLog* log = recorder_->Log();
  uint64_t t0 = check::ClockNow();
  Cap cap;
  cap.slots.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    check::Event proto;
    proto.t_inv = t0;
    proto.kind = check::OpKind::kUpsert;
    proto.arg = values[i];
    cap.slots.push_back(log->BeginVar(proto, keys[i]));
  }
  caps_.push_back(std::move(cap));
}

void Client::CapResponse(Op op, const Response& resp) {
  check::ThreadLog* log = recorder_->Log();
  Cap& cap = caps_.front();
  switch (op) {
    case Op::kPut:
      // The PUT ack carries no inserted flag: the upsert completed but
      // its boolean answer is unobservable (Outcome::kUnknown). Errors
      // leave the key untouched.
      if (resp.status == RespStatus::kOk) {
        log->End(cap.slots[0], check::Outcome::kUnknown, 0);
      } else {
        log->End(cap.slots[0], check::Outcome::kNoop, 0);
      }
      break;
    case Op::kUpsert:
      if (resp.status == RespStatus::kOk) {
        log->End(cap.slots[0],
                 resp.value != 0 ? check::Outcome::kTrue
                                 : check::Outcome::kFalse,
                 resp.value);
      } else {
        log->End(cap.slots[0], check::Outcome::kNoop, 0);
      }
      break;
    case Op::kGet:
      if (resp.status == RespStatus::kOk) {
        log->End(cap.slots[0], check::Outcome::kTrue, resp.value);
      } else if (resp.status == RespStatus::kNotFound) {
        log->End(cap.slots[0], check::Outcome::kFalse, 0);
      } else {
        log->End(cap.slots[0], check::Outcome::kNoop, 0);
      }
      break;
    case Op::kDel:
      if (resp.status == RespStatus::kOk) {
        log->End(cap.slots[0], check::Outcome::kTrue, 1);
      } else if (resp.status == RespStatus::kNotFound) {
        log->End(cap.slots[0], check::Outcome::kFalse, 0);
      } else {
        log->End(cap.slots[0], check::Outcome::kNoop, 0);
      }
      break;
    case Op::kScan:
      if (resp.status == RespStatus::kOk) {
        for (const auto& row : resp.scan) {
          log->AddRowVar(cap.slots[0], row.first, row.second);
        }
        // The server pre-clamps the row cap, so fewer rows than the
        // *effective* limit means the index ran out of keys.
        uint32_t effective = cap.scan_limit > kMaxScanLimit
                                 ? kMaxScanLimit
                                 : cap.scan_limit;
        log->open_event(cap.slots[0])->scan_exhausted =
            resp.scan.size() < effective;
        log->End(cap.slots[0], check::Outcome::kTrue, 0);
      } else {
        log->End(cap.slots[0], check::Outcome::kNoop, 0);
      }
      break;
    case Op::kMget:
      if (resp.status == RespStatus::kOk &&
          resp.multi_found.size() == cap.mget_keys.size() &&
          resp.multi_values.size() == cap.mget_keys.size()) {
        uint64_t t1 = check::ClockNow();
        for (size_t i = 0; i < cap.mget_keys.size(); ++i) {
          check::Event ev;
          ev.t_inv = cap.t_inv;
          ev.t_resp = t1;
          ev.kind = check::OpKind::kGet;
          ev.outcome = resp.multi_found[i] != 0 ? check::Outcome::kTrue
                                                : check::Outcome::kFalse;
          ev.result = resp.multi_found[i] != 0 ? resp.multi_values[i] : 0;
          log->CommitVar(ev, cap.mget_keys[i]);
        }
      }
      break;
    case Op::kMput:
      if (resp.status == RespStatus::kOk &&
          resp.multi_found.size() == cap.slots.size()) {
        for (size_t i = 0; i < cap.slots.size(); ++i) {
          bool ins = resp.multi_found[i] != 0;
          log->End(cap.slots[i],
                   ins ? check::Outcome::kTrue : check::Outcome::kFalse,
                   ins ? 1 : 0);
        }
      } else if (resp.status == RespStatus::kNoSpace) {
        // A strict input prefix applied durably, but the response does
        // not say how long it is: each element individually may or may
        // not have taken effect (ambiguous — permissive but sound).
        for (uint32_t slot : cap.slots) {
          log->EndAmbiguous(slot);
        }
      } else {
        for (uint32_t slot : cap.slots) {
          log->End(slot, check::Outcome::kNoop, 0);
        }
      }
      break;
  }
}

}  // namespace net
}  // namespace fptree
