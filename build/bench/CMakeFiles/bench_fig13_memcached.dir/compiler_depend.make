# Empty compiler generated dependencies file for bench_fig13_memcached.
# This may be replaced when dependencies are built.
