// Figure 8: DRAM and SCM consumption after loading N key-values (8-byte
// keys/values; and the 16-byte string-key variants). The paper's headline:
// the FPTree keeps < 3% of its data in DRAM, the PTree slightly more
// (smaller leaves -> more inner nodes), the NV-Tree an order of magnitude
// more (one leaf parent per leaf after rebuilds) plus inflated SCM
// (per-entry flags + entry alignment); the wBTree consumes no DRAM at all.

#include <cstdio>

#include "baselines/nvtree.h"
#include "baselines/stxtree.h"
#include "baselines/wbtree.h"
#include "bench_common.h"
#include "core/fptree.h"
#include "core/fptree_var.h"
#include "core/ptree.h"

namespace fptree {
namespace bench {
namespace {

void Row(const char* name, uint64_t dram, uint64_t scm) {
  double total = static_cast<double>(dram + scm);
  std::printf("%-12s %14.2f %14.2f %9.2f%%\n", name,
              static_cast<double>(scm) / 1e6, static_cast<double>(dram) / 1e6,
              total == 0 ? 0 : 100.0 * static_cast<double>(dram) / total);
}

template <typename TreeT>
void RunFixed(const char* name, uint64_t n) {
  ScopedPool pool(size_t{4} << 30);
  TreeT tree(pool.get());
  for (uint64_t k : ShuffledRange(n, 7)) tree.Insert(k, k);
  Row(name, tree.DramBytes(), tree.ScmBytes());
}

template <typename TreeT>
void RunVar(const char* name, uint64_t n) {
  ScopedPool pool(size_t{4} << 30);
  TreeT tree(pool.get());
  for (uint64_t k : ShuffledRange(n, 7)) tree.Insert(MakeVarKey(k), k);
  Row(name, tree.DramBytes(), tree.ScmBytes());
}

}  // namespace
}  // namespace bench
}  // namespace fptree

int main(int argc, char** argv) {
  using namespace fptree;
  using namespace fptree::bench;
  Flags flags = Flags::Parse(argc, argv);
  scm::LatencyModel::Disable();
  uint64_t n = flags.quick ? 100000 : flags.keys * 5;

  PrintHeader("Figure 8: memory consumption (MB) after loading keys");
  std::printf("fixed 8-byte keys, %llu key-values\n",
              static_cast<unsigned long long>(n));
  std::printf("%-12s %14s %14s %10s\n", "tree", "SCM(MB)", "DRAM(MB)",
              "DRAM share");
  RunFixed<core::FPTree<>>("FPTree", n);
  RunFixed<core::PTree<>>("PTree", n);
  RunFixed<baselines::NVTree<>>("NV-Tree", n);
  RunFixed<baselines::WBTree<>>("wBTree", n);
  {
    baselines::STXTree<> tree;
    for (uint64_t k : ShuffledRange(n, 7)) tree.Insert(k, k);
    Row("STXTree", tree.DramBytes(), 0);
  }

  std::printf("\n16-byte string keys, %llu key-values\n",
              static_cast<unsigned long long>(n / 2));
  std::printf("%-12s %14s %14s %10s\n", "tree", "SCM(MB)", "DRAM(MB)",
              "DRAM share");
  RunVar<core::FPTreeVar<>>("FPTreeVar", n / 2);
  RunVar<core::FPTreeVar<uint64_t, 32, 256, false>>("PTreeVar", n / 2);

  std::printf(
      "\nPaper shape: FPTree DRAM share ~3%% (2.71%% at 100M); PTree "
      "slightly higher; NV-Tree ~23%%\nDRAM and ~1.6x FPTree's SCM; wBTree "
      "0 DRAM. (Absolute bytes include our allocator's\n64 B per-block "
      "headers; see DESIGN.md.)\n");
  EmitMetricsJson("fig8_memory");
  return 0;
}
