file(REMOVE_RECURSE
  "CMakeFiles/scm_latency_test.dir/scm_latency_test.cc.o"
  "CMakeFiles/scm_latency_test.dir/scm_latency_test.cc.o.d"
  "scm_latency_test"
  "scm_latency_test.pdb"
  "scm_latency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scm_latency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
