// End-to-end applications: the memcached-like kvcache (pluggable index,
// LRU, network throttle) and the minidb prototype (TATP load, queries,
// restart recovery).

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <list>

#include "apps/kvcache/kvcache.h"
#include "apps/minidb/minidb.h"
#include "apps/minidb/tatp.h"
#include "scm/latency.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/threading.h"

namespace fptree {
namespace apps {
namespace {

using scm::Pool;

std::string TestPath(const std::string& name) {
  return "/tmp/fptree_test_" + std::to_string(::getpid()) + "_" + name;
}

class KVCacheTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    scm::LatencyModel::Disable();
    path_ = TestPath("kvcache");
    Pool::Destroy(path_).ok();
    Pool::Options opts{.size = 256u << 20, .randomize_base = true};
    ASSERT_TRUE(Pool::Create(path_, 1, opts, &pool_).ok());
  }
  void TearDown() override {
    pool_.reset();
    Pool::Destroy(path_).ok();
  }

  std::unique_ptr<KVCache> MakeCache(const KVCache::Options& options) {
    auto idx = index::MakeVarIndex(GetParam(), pool_.get(), /*locked=*/true);
    if (idx == nullptr) return nullptr;
    return std::make_unique<KVCache>(std::move(idx), options);
  }

  std::string path_;
  std::unique_ptr<Pool> pool_;
};

TEST_P(KVCacheTest, SetGetDelete) {
  auto cache = MakeCache({});
  ASSERT_NE(cache, nullptr);
  uint64_t v;
  EXPECT_FALSE(cache->Get("user:1", &v));
  cache->Set("user:1", 100);
  ASSERT_TRUE(cache->Get("user:1", &v));
  EXPECT_EQ(v, 100u);
  cache->Set("user:1", 200);  // overwrite
  ASSERT_TRUE(cache->Get("user:1", &v));
  EXPECT_EQ(v, 200u);
  EXPECT_TRUE(cache->Delete("user:1"));
  EXPECT_FALSE(cache->Get("user:1", &v));
  EXPECT_EQ(cache->stats().gets.load(), 4u);
  EXPECT_EQ(cache->stats().get_hits.load(), 2u);
}

TEST_P(KVCacheTest, ManyKeysParallelClients) {
  auto cache = MakeCache({});
  ASSERT_NE(cache, nullptr);
  constexpr uint32_t kClients = 4;
  constexpr uint64_t kPerClient = 2000;
  ThreadGroup tg;
  tg.Spawn(kClients, [&](uint32_t id) {
    char key[32];
    for (uint64_t i = 0; i < kPerClient; ++i) {
      std::snprintf(key, sizeof(key), "key-%u-%llu", id,
                    static_cast<unsigned long long>(i));
      cache->Set(key, id * kPerClient + i);
    }
    for (uint64_t i = 0; i < kPerClient; ++i) {
      std::snprintf(key, sizeof(key), "key-%u-%llu", id,
                    static_cast<unsigned long long>(i));
      uint64_t v;
      ASSERT_TRUE(cache->Get(key, &v));
      EXPECT_EQ(v, id * kPerClient + i);
    }
  });
  tg.Join();
  EXPECT_EQ(cache->ItemCount(), kClients * kPerClient);
}

TEST_P(KVCacheTest, LruEvictionBoundsResidency) {
  KVCache::Options options;
  options.capacity = 256;
  auto cache = MakeCache(options);
  ASSERT_NE(cache, nullptr);
  char key[32];
  for (uint64_t i = 0; i < 5000; ++i) {
    std::snprintf(key, sizeof(key), "k%llu",
                  static_cast<unsigned long long>(i));
    cache->Set(key, i);
  }
  EXPECT_LT(cache->ItemCount(), 600u);
  EXPECT_GT(cache->stats().evictions.load(), 4000u);
  // Recent keys survive.
  uint64_t v;
  std::snprintf(key, sizeof(key), "k%llu",
                static_cast<unsigned long long>(4999ULL));
  EXPECT_TRUE(cache->Get(key, &v));
}

// Reference model of the intended LRU semantics: per-shard recency lists
// with the same hash, capacity slice and eviction rule as KVCache. A
// deterministic workload heavy on re-Puts and Deletes is replayed against
// both; resident set, item count and the evictions counter must match
// exactly. This is the audit for the residency-accounting bugs: a re-Put
// double-counting a resident key, or a Delete leaving a stale LRU entry,
// both desynchronize the model within a few hundred operations.
TEST_P(KVCacheTest, LruAccountingMatchesModel) {
  struct LruModel {
    explicit LruModel(size_t capacity) : capacity(capacity) {}

    void Set(const std::string& k) {
      auto& order = shards[ShardOf(k)];
      auto it = std::find(order.begin(), order.end(), k);
      if (it != order.end()) order.erase(it);
      order.push_front(k);
      if (order.size() > capacity / KVCache::kLruShards &&
          order.size() > 1) {
        order.pop_back();
        ++evictions;
      }
    }
    void Delete(const std::string& k) {
      auto& order = shards[ShardOf(k)];
      auto it = std::find(order.begin(), order.end(), k);
      if (it != order.end()) order.erase(it);
    }
    bool Contains(const std::string& k) const {
      const auto& order = shards[ShardOf(k)];
      return std::find(order.begin(), order.end(), k) != order.end();
    }
    size_t Resident() const {
      size_t n = 0;
      for (const auto& order : shards) n += order.size();
      return n;
    }
    static size_t ShardOf(const std::string& k) {
      return HashBytes(k.data(), k.size()) % KVCache::kLruShards;
    }

    size_t capacity;
    uint64_t evictions = 0;
    std::array<std::list<std::string>, KVCache::kLruShards> shards;
  };

  KVCache::Options options;
  options.capacity = 64;
  auto cache = MakeCache(options);
  ASSERT_NE(cache, nullptr);
  LruModel model(options.capacity);

  constexpr uint64_t kUniverse = 600;
  Random64 rng(7);
  char key[32];
  for (uint64_t op = 0; op < 20000; ++op) {
    uint64_t k = rng.Next() % kUniverse;
    std::snprintf(key, sizeof(key), "k%llu",
                  static_cast<unsigned long long>(k));
    uint64_t dice = rng.Next() % 100;
    if (dice < 70) {
      cache->Set(key, op);
      model.Set(key);
    } else {
      cache->Delete(key);
      model.Delete(key);
    }
    if (op % 1024 == 0) {
      ASSERT_EQ(cache->ItemCount(), model.Resident()) << "op " << op;
    }
  }
  EXPECT_EQ(cache->ItemCount(), model.Resident());
  EXPECT_EQ(cache->stats().evictions.load(), model.evictions);
  uint64_t v;
  for (uint64_t k = 0; k < kUniverse; ++k) {
    std::snprintf(key, sizeof(key), "k%llu",
                  static_cast<unsigned long long>(k));
    EXPECT_EQ(cache->Get(key, &v), model.Contains(key)) << key;
  }
}

TEST_P(KVCacheTest, NetworkThrottleCapsThroughput) {
  KVCache::Options options;
  options.network_ns_per_request = 20000;  // 50k req/s ceiling
  auto cache = MakeCache(options);
  ASSERT_NE(cache, nullptr);
  scm::LatencyModel::Calibrate();
  Stopwatch sw;
  for (int i = 0; i < 2000; ++i) {
    cache->Set("hot", i);
  }
  double seconds = sw.ElapsedSeconds();
  // 2000 requests at 20 µs each needs >= ~40 ms.
  EXPECT_GT(seconds, 0.030);
}

INSTANTIATE_TEST_SUITE_P(Indexes, KVCacheTest,
                         ::testing::Values("fptree-c-var", "fptree-var",
                                           "stx-var", "hashmap"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ---------------- MiniDb / TATP ---------------------------------------------

class MiniDbTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    scm::LatencyModel::Disable();
    data_path_ = TestPath("db_data");
    index_path_ = TestPath("db_index");
    Pool::Destroy(data_path_).ok();
    Pool::Destroy(index_path_).ok();
  }
  void TearDown() override {
    data_pool_.reset();
    index_pool_.reset();
    Pool::Destroy(data_path_).ok();
    Pool::Destroy(index_path_).ok();
  }

  std::unique_ptr<MiniDb> OpenDb(bool create, uint64_t subscribers) {
    data_pool_.reset();
    index_pool_.reset();
    Pool::Options opts{.size = 512u << 20, .randomize_base = true};
    bool created;
    EXPECT_TRUE(
        Pool::OpenOrCreate(data_path_, 1, opts, &data_pool_, &created).ok());
    EXPECT_TRUE(
        Pool::OpenOrCreate(index_path_, 2, opts, &index_pool_, &created)
            .ok());
    (void)create;
    MiniDb::Options dbopts;
    dbopts.index_kind = GetParam();
    dbopts.subscribers = subscribers;
    bool needs_load = false;
    auto db = std::make_unique<MiniDb>(data_pool_.get(), index_pool_.get(),
                                       dbopts, &needs_load);
    if (needs_load) db->Load();
    return db;
  }

  std::string data_path_, index_path_;
  std::unique_ptr<Pool> data_pool_, index_pool_;
};

TEST_P(MiniDbTest, LoadAndQuery) {
  auto db = OpenDb(true, 2000);
  MiniDb::SubscriberRow row;
  uint64_t found = 0;
  for (uint64_t s = 0; s < 2000; ++s) {
    ASSERT_TRUE(db->GetSubscriberData(s, &row)) << s;
    ++found;
  }
  EXPECT_EQ(found, 2000u);
  // Every subscriber has at least ai_type 0.
  uint64_t data;
  EXPECT_TRUE(db->GetAccessData(42, 0, &data));
  EXPECT_FALSE(db->GetSubscriberData(999999, &row));
}

TEST_P(MiniDbTest, TatpRunsAndCounts) {
  auto db = OpenDb(true, 2000);
  TatpWorkload workload(db.get());
  TatpResult r = workload.Run(20000, 4);
  EXPECT_EQ(r.transactions, 20000u);
  EXPECT_GT(r.hits, r.transactions / 3) << "most lookups should hit";
  EXPECT_GT(r.TxPerSecond(), 0.0);
}

TEST_P(MiniDbTest, RestartRecoversIndexAndData) {
  {
    auto db = OpenDb(true, 1500);
    MiniDb::SubscriberRow row;
    ASSERT_TRUE(db->GetSubscriberData(7, &row));
  }
  // Simulated restart: pools reopen (randomized base), index recovers.
  auto db = OpenDb(false, 1500);
  EXPECT_GT(db->SanityCheckColumns(), 0u);
  MiniDb::SubscriberRow row;
  for (uint64_t s = 0; s < 1500; s += 97) {
    ASSERT_TRUE(db->GetSubscriberData(s, &row)) << s;
  }
  TatpWorkload workload(db.get());
  TatpResult r = workload.Run(4000, 2);
  EXPECT_EQ(r.transactions, 4000u);
}

INSTANTIATE_TEST_SUITE_P(Indexes, MiniDbTest,
                         ::testing::Values("fptree", "ptree", "wbtree",
                                           "nvtree", "stx", "fptree-c"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace apps
}  // namespace fptree
