// Copyright (c) FPTree reproduction authors.
//
// Per-key Wing–Gong / Porcupine-style linearizability checker for the KV
// object model (DESIGN.md §13).
//
// The object is a map of independent single-value registers, so a history
// is linearizable iff each key's subhistory is — the checker decomposes
// the history per key (point ops directly; batch elements as per-key ops
// with the batch's invocation/response window; scan rows as per-key reads
// plus absence witnesses over the scanned window) and checks keys
// independently.
//
// Per key, events are sorted by invocation and split into *clusters* at
// quiescent cuts: whenever every earlier op's response strictly precedes
// the next invocation, any linearization must order the two sides
// consecutively, so the search runs per cluster and only a set of
// possible end states crosses the cut (interval pruning — this is what
// makes million-op histories check in seconds: contention is local, so
// clusters stay small).
//
// Within a cluster, a memoized DFS applies the Wing–Gong candidate rule:
// an op can linearize first iff its invocation precedes every
// *unreturned required* op's response. Completed (acked) ops are
// required; pending ops (no response: in-flight at a crash, or lost on
// the wire) are optional — each branch may apply the op's effect or skip
// it forever, which is exactly durable linearizability's "effect may or
// may not have survived".
//
// Durable mode (CheckOptions::durable): the caller provides the state
// observed after crash + recovery; the checker appends one required read
// per key at t = +inf. A history passes iff the recovered state is a
// consistent cut that includes every acked operation — a lost acked
// write, resurrected delete, or non-prefix batch all fail here.

#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "check/history.h"

namespace fptree {
namespace check {

struct CheckOptions {
  /// Durable mode: check the recovered state as a final required read of
  /// every key (absent keys are required reads of "absent").
  bool durable = false;

  /// State each key starts in (keys not listed start absent). Chains
  /// multi-round histories: round N's recovered state seeds round N+1.
  std::map<uint64_t, uint64_t> initial_fixed;
  std::map<std::string, uint64_t> initial_var;

  /// The post-recovery state (durable mode only).
  std::map<uint64_t, uint64_t> recovered_fixed;
  std::map<std::string, uint64_t> recovered_var;

  /// Budgets. Exceeding one yields decided=false (never a wrong verdict).
  size_t max_cluster_ops = size_t{1} << 14;
  uint64_t max_dfs_nodes = uint64_t{1} << 24;
  size_t max_frontier_states = 64;  // distinct states crossing one cut
};

struct CheckStats {
  uint64_t keys = 0;
  uint64_t ops = 0;         // per-key ops checked (after decomposition)
  uint64_t scan_reads = 0;  // reads contributed by scan rows + absences
  uint64_t clusters = 0;
  uint64_t dfs_nodes = 0;
  uint64_t largest_cluster = 0;
};

struct CheckResult {
  bool ok = true;       // linearizable (meaningless when !decided)
  bool decided = true;  // false: a budget was exceeded
  std::string why;      // violation/budget diagnostic, "" when ok
  CheckStats stats;
};

/// Checks a drained history. Fixed- and var-key events are independent
/// object spaces and are both checked in one call.
CheckResult CheckHistory(const History& h, const CheckOptions& opts);

}  // namespace check
}  // namespace fptree
