// Batched execution pipeline (index API v3.1): oracle differentials — a
// MultiGet/MultiPut/MultiUpsert trace must be bit-identical, in both
// returned results and final tree state, to the same trace run as a loop
// of single ops — across every registered fixed and var index (including
// sharded engine specs), plus duplicate-keys-in-batch semantics, batch
// size edge cases (empty / 1 / leaf-refill boundary / 4096), and a
// crash-fuzz arm that kills the process mid-MultiPut and checks per-key
// atomicity: a prefix of the batch is durable and no leaf is torn.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/fptree.h"
#include "core/fptree_var.h"
#include "crash_test_util.h"
#include "engine/sharded_index.h"
#include "index/kv_index.h"
#include "scm/crash.h"
#include "scm/latency.h"
#include "util/random.h"

namespace fptree {
namespace index {
namespace {

using engine::MakeFixedIndexFromSpec;
using engine::MakeVarIndexFromSpec;
using engine::ShardedOptions;
using scm::CrashException;
using scm::CrashSim;
using scm::Pool;
using testutil::FuzzSeeds;
using testutil::TestPath;

// Batch sizes for the differential rounds: empty, single, a couple of
// leaf-refill-boundary sizes, and a large batch (the wire-protocol cap).
const size_t kBatchSizes[] = {0, 1, 7, 64, 200, 4096};

/// One index under test plus the pool(s) backing it. Plain registered
/// names run over a single pool through the checked factory (locked, so
/// the adapters' batch overrides are exercised); `sharded(...)` specs own
/// their per-shard pool files via the spec factory.
template <typename IndexT>
struct Instance {
  std::string path;
  size_t shard_files = 0;
  std::unique_ptr<Pool> pool;
  std::unique_ptr<IndexT> index;

  ~Instance() {
    index.reset();
    pool.reset();
    if (shard_files == 0) {
      Pool::Destroy(path).ok();
    } else {
      for (size_t i = 0; i < shard_files; ++i) {
        Pool::Destroy(path + "." + std::to_string(i)).ok();
      }
    }
  }
};

void OpenFixed(const std::string& spec, const std::string& tag,
               uint64_t base_pool_id, Instance<KVIndex>* out) {
  out->path = TestPath("batch_" + tag);
  std::string inner;
  size_t shards = 0;
  Status err;
  if (engine::ParseShardedSpec(spec, &inner, &shards, &err)) {
    ASSERT_TRUE(err.ok()) << err.ToString();
    out->shard_files = shards;
    for (size_t i = 0; i < shards; ++i) {
      Pool::Destroy(out->path + "." + std::to_string(i)).ok();
    }
    ShardedOptions opts;
    opts.base_pool_id = base_pool_id;
    opts.path_prefix = out->path;
    opts.shard_bytes = 64u << 20;
    opts.locked = true;
    opts.randomize_base = false;
    ASSERT_TRUE(MakeFixedIndexFromSpec(spec, opts, &out->index).ok());
    return;
  }
  Pool::Destroy(out->path).ok();
  Pool::Options opts{.size = 256u << 20, .randomize_base = true};
  ASSERT_TRUE(Pool::Create(out->path, base_pool_id, opts, &out->pool).ok());
  ASSERT_TRUE(
      MakeFixedIndexChecked(spec, out->pool.get(), /*locked=*/true,
                            &out->index)
          .ok());
}

void OpenVar(const std::string& spec, const std::string& tag,
             uint64_t base_pool_id, Instance<VarIndex>* out) {
  out->path = TestPath("batch_" + tag);
  std::string inner;
  size_t shards = 0;
  Status err;
  if (engine::ParseShardedSpec(spec, &inner, &shards, &err)) {
    ASSERT_TRUE(err.ok()) << err.ToString();
    out->shard_files = shards;
    for (size_t i = 0; i < shards; ++i) {
      Pool::Destroy(out->path + "." + std::to_string(i)).ok();
    }
    ShardedOptions opts;
    opts.base_pool_id = base_pool_id;
    opts.path_prefix = out->path;
    opts.shard_bytes = 64u << 20;
    opts.locked = true;
    opts.randomize_base = false;
    ASSERT_TRUE(MakeVarIndexFromSpec(spec, opts, &out->index).ok());
    return;
  }
  Pool::Destroy(out->path).ok();
  Pool::Options opts{.size = 256u << 20, .randomize_base = true};
  ASSERT_TRUE(Pool::Create(out->path, base_pool_id, opts, &out->pool).ok());
  ASSERT_TRUE(MakeVarIndexChecked(spec, out->pool.get(), /*locked=*/true,
                                  &out->index)
                  .ok());
}

std::string PaddedKey(uint64_t i) { return testutil::VarKey(i); }

/// Runs the same randomized batch trace through `batch` (Multi* ops) and
/// `oracle` (single-op loops) and requires bit-identical results at every
/// step and identical final state. The keyspace is small relative to the
/// batch sizes so batches routinely carry duplicates, hitting the
/// first-wins (insert) / last-wins (upsert) in-batch semantics.
void FixedDifferential(KVIndex* batch, KVIndex* oracle, uint64_t seed) {
  Random64 rng(seed);
  uint64_t tick = 0;
  for (size_t n : kBatchSizes) {
    std::vector<uint64_t> keys(n), vals(n);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = rng.Uniform(800);
      vals[i] = ++tick;
    }
    // MultiPut vs Insert loop (first-wins on in-batch duplicates).
    std::vector<uint8_t> ins_b(n, 0xee), ins_o(n, 0xee);
    batch->MultiPut(keys.data(), vals.data(), n, ins_b.data());
    for (size_t i = 0; i < n; ++i) {
      ins_o[i] = oracle->Insert(keys[i], vals[i]) ? 1 : 0;
    }
    ASSERT_EQ(ins_b, ins_o) << "MultiPut inserted flags diverge, n=" << n;

    // MultiUpsert vs Upsert loop (last-wins on in-batch duplicates).
    for (size_t i = 0; i < n; ++i) {
      keys[i] = rng.Uniform(800);
      vals[i] = ++tick;
    }
    batch->MultiUpsert(keys.data(), vals.data(), n, ins_b.data());
    for (size_t i = 0; i < n; ++i) {
      ins_o[i] = oracle->Upsert(keys[i], vals[i]) ? 1 : 0;
    }
    ASSERT_EQ(ins_b, ins_o) << "MultiUpsert inserted flags diverge, n=" << n;

    // MultiGet vs Find loop; values[i] must be untouched on a miss.
    for (size_t i = 0; i < n; ++i) keys[i] = rng.Uniform(1200);
    std::vector<uint64_t> got_b(n, 0xdead), got_o(n, 0xdead);
    std::vector<uint8_t> found_b(n, 0xee), found_o(n, 0xee);
    batch->MultiGet(keys.data(), n, got_b.data(), found_b.data());
    for (size_t i = 0; i < n; ++i) {
      found_o[i] = oracle->Find(keys[i], &got_o[i]) ? 1 : 0;
      if (!found_o[i]) got_o[i] = 0xdead;  // oracle may not touch either
    }
    ASSERT_EQ(found_b, found_o) << "MultiGet found flags diverge, n=" << n;
    for (size_t i = 0; i < n; ++i) {
      if (found_b[i]) {
        ASSERT_EQ(got_b[i], got_o[i]) << "value diverges at " << i;
      } else {
        ASSERT_EQ(got_b[i], 0xdeadu) << "miss clobbered values[" << i << "]";
      }
    }
  }
  // Final state: identical size and identical ordered contents.
  ASSERT_EQ(batch->Size(), oracle->Size());
  std::vector<std::pair<uint64_t, uint64_t>> rows_b, rows_o;
  batch->RangeScan(0, SIZE_MAX, [&](uint64_t k, uint64_t v) {
    rows_b.emplace_back(k, v);
    return true;
  });
  oracle->RangeScan(0, SIZE_MAX, [&](uint64_t k, uint64_t v) {
    rows_o.emplace_back(k, v);
    return true;
  });
  ASSERT_EQ(rows_b, rows_o);
  std::string why;
  ASSERT_TRUE(batch->CheckInvariants(&why)) << why;
}

void VarDifferential(VarIndex* batch, VarIndex* oracle, uint64_t seed) {
  Random64 rng(seed);
  uint64_t tick = 0;
  for (size_t n : kBatchSizes) {
    std::vector<std::string> storage(n);
    std::vector<std::string_view> keys(n);
    std::vector<uint64_t> vals(n);
    for (size_t i = 0; i < n; ++i) {
      storage[i] = PaddedKey(rng.Uniform(800));
      keys[i] = storage[i];
      vals[i] = ++tick;
    }
    std::vector<uint8_t> ins_b(n, 0xee), ins_o(n, 0xee);
    batch->MultiPut(keys.data(), vals.data(), n, ins_b.data());
    for (size_t i = 0; i < n; ++i) {
      ins_o[i] = oracle->Insert(keys[i], vals[i]) ? 1 : 0;
    }
    ASSERT_EQ(ins_b, ins_o) << "MultiPut inserted flags diverge, n=" << n;

    for (size_t i = 0; i < n; ++i) {
      storage[i] = PaddedKey(rng.Uniform(800));
      keys[i] = storage[i];
      vals[i] = ++tick;
    }
    batch->MultiUpsert(keys.data(), vals.data(), n, ins_b.data());
    for (size_t i = 0; i < n; ++i) {
      ins_o[i] = oracle->Upsert(keys[i], vals[i]) ? 1 : 0;
    }
    ASSERT_EQ(ins_b, ins_o) << "MultiUpsert inserted flags diverge, n=" << n;

    for (size_t i = 0; i < n; ++i) {
      storage[i] = PaddedKey(rng.Uniform(1200));
      keys[i] = storage[i];
    }
    std::vector<uint64_t> got_b(n, 0xdead), got_o(n, 0xdead);
    std::vector<uint8_t> found_b(n, 0xee), found_o(n, 0xee);
    batch->MultiGet(keys.data(), n, got_b.data(), found_b.data());
    for (size_t i = 0; i < n; ++i) {
      found_o[i] = oracle->Find(keys[i], &got_o[i]) ? 1 : 0;
      if (!found_o[i]) got_o[i] = 0xdead;
    }
    ASSERT_EQ(found_b, found_o) << "MultiGet found flags diverge, n=" << n;
    for (size_t i = 0; i < n; ++i) {
      if (found_b[i]) {
        ASSERT_EQ(got_b[i], got_o[i]) << "value diverges at " << i;
      } else {
        ASSERT_EQ(got_b[i], 0xdeadu) << "miss clobbered values[" << i << "]";
      }
    }
  }
  ASSERT_EQ(batch->Size(), oracle->Size());
  std::vector<std::pair<std::string, uint64_t>> rows_b, rows_o;
  batch->RangeScan("", SIZE_MAX, [&](std::string_view k, uint64_t v) {
    rows_b.emplace_back(std::string(k), v);
    return true;
  });
  oracle->RangeScan("", SIZE_MAX, [&](std::string_view k, uint64_t v) {
    rows_o.emplace_back(std::string(k), v);
    return true;
  });
  ASSERT_EQ(rows_b, rows_o);
  std::string why;
  ASSERT_TRUE(batch->CheckInvariants(&why)) << why;
}

TEST(BatchOps, EveryFixedIndexMatchesLoopOracle) {
  scm::LatencyModel::Disable();
  std::vector<std::string> specs = ListFixedIndexNames();
  specs.push_back("sharded(fptree,3)");
  specs.push_back("sharded(fptree-c,2)");
  for (const std::string& spec : specs) {
    SCOPED_TRACE(spec);
    Instance<KVIndex> batch, oracle;
    OpenFixed(spec, "fb", /*base_pool_id=*/1, &batch);
    OpenFixed(spec, "fo", /*base_pool_id=*/8, &oracle);
    ASSERT_NE(batch.index, nullptr);
    ASSERT_NE(oracle.index, nullptr);
    FixedDifferential(batch.index.get(), oracle.index.get(), /*seed=*/7);
  }
}

TEST(BatchOps, EveryVarIndexMatchesLoopOracle) {
  scm::LatencyModel::Disable();
  std::vector<std::string> specs = ListVarIndexNames();
  specs.push_back("sharded(fptree-var,3)");
  specs.push_back("sharded(fptree-c-var,2)");
  for (const std::string& spec : specs) {
    SCOPED_TRACE(spec);
    Instance<VarIndex> batch, oracle;
    OpenVar(spec, "vb", /*base_pool_id=*/1, &batch);
    OpenVar(spec, "vo", /*base_pool_id=*/8, &oracle);
    ASSERT_NE(batch.index, nullptr);
    ASSERT_NE(oracle.index, nullptr);
    VarDifferential(batch.index.get(), oracle.index.get(), /*seed=*/11);
  }
}

// In-batch duplicate semantics, pinned explicitly: MultiPut is first-wins
// (later duplicates report not-inserted), MultiUpsert is last-wins.
TEST(BatchOps, DuplicateKeysInBatch) {
  scm::LatencyModel::Disable();
  Instance<KVIndex> inst;
  OpenFixed("fptree", "dup", /*base_pool_id=*/1, &inst);
  uint64_t keys[] = {5, 5, 9, 5, 9};
  uint64_t vals[] = {10, 20, 30, 40, 50};
  uint8_t ins[5];
  inst.index->MultiPut(keys, vals, 5, ins);
  EXPECT_EQ(ins[0], 1);
  EXPECT_EQ(ins[1], 0);  // duplicate of keys[0]: first wins
  EXPECT_EQ(ins[2], 1);
  EXPECT_EQ(ins[3], 0);
  EXPECT_EQ(ins[4], 0);
  uint64_t v = 0;
  ASSERT_TRUE(inst.index->Find(5, &v));
  EXPECT_EQ(v, 10u);
  ASSERT_TRUE(inst.index->Find(9, &v));
  EXPECT_EQ(v, 30u);

  inst.index->MultiUpsert(keys, vals, 5, ins);
  EXPECT_EQ(ins[0], 0);  // both keys exist: every upsert is a replace
  EXPECT_EQ(ins[1], 0);
  ASSERT_TRUE(inst.index->Find(5, &v));
  EXPECT_EQ(v, 40u);  // last duplicate wins
  ASSERT_TRUE(inst.index->Find(9, &v));
  EXPECT_EQ(v, 50u);
  EXPECT_EQ(inst.index->Size(), 2u);
}

// 4096 ascending keys in one MultiPut crosses many leaf refills/splits;
// everything must land and read back through one MultiGet.
TEST(BatchOps, LargeAscendingBatchCrossesLeafBoundaries) {
  scm::LatencyModel::Disable();
  Instance<KVIndex> inst;
  OpenFixed("fptree", "big", /*base_pool_id=*/1, &inst);
  constexpr size_t kN = 4096;
  std::vector<uint64_t> keys(kN), vals(kN), got(kN, 0);
  std::vector<uint8_t> ins(kN, 0), found(kN, 0);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = i * 3;
    vals[i] = i + 1;
  }
  // inserted == nullptr must be tolerated; verify through MultiGet.
  inst.index->MultiPut(keys.data(), vals.data(), kN, nullptr);
  inst.index->MultiGet(keys.data(), kN, got.data(), found.data());
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(found[i], 1) << i;
    ASSERT_EQ(got[i], vals[i]) << i;
  }
  EXPECT_EQ(inst.index->Size(), kN);
  std::string why;
  ASSERT_TRUE(inst.index->CheckInvariants(&why)) << why;
}

// The sharded engine's Stats() must roll per-shard counters up into
// engine-level totals (engine.total.*), not only per-shard gauges.
TEST(BatchOps, ShardedStatsAggregateEngineTotals) {
  scm::LatencyModel::Disable();
  Instance<KVIndex> inst;
  OpenFixed("sharded(fptree,3)", "stats", /*base_pool_id=*/1, &inst);
  std::vector<uint64_t> keys(64), vals(64), got(64);
  std::vector<uint8_t> found(64);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = i * 17;
    vals[i] = i;
  }
  inst.index->MultiPut(keys.data(), vals.data(), keys.size(), nullptr);
  inst.index->MultiGet(keys.data(), keys.size(), got.data(), found.data());
  obs::Snapshot snap = inst.index->Stats();
  size_t totals = 0;
  for (const auto& [name, v] : snap.counters) {
    if (name.rfind("engine.total.", 0) == 0) {
      ++totals;
      const std::string bare = name.substr(strlen("engine.total."));
      auto it = snap.counters.find(bare);
      ASSERT_NE(it, snap.counters.end()) << name;
      EXPECT_EQ(it->second, v) << name;
    }
  }
  EXPECT_GT(totals, 0u) << "no engine.total.* counters in sharded Stats()";
}

// --- crash-fuzz arm: die mid-MultiPut, recover, check batch durability ---
//
// Single-threaded trees promise strict input-prefix durability: after a
// crash anywhere inside MultiPut, the durable subset of the batch's new
// keys is exactly keys[0..p) for some p. (Concurrent trees promise per-key
// atomicity instead; their windows are exercised by the existing
// concurrent crash-fuzz suite's invariant machinery.)
class BatchCrashTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchCrashTest, FixedPrefixDurableAcrossMultiPutCrash) {
  scm::LatencyModel::Disable();
  std::string path = TestPath("bcrash" + std::to_string(GetParam()));
  Pool::Destroy(path).ok();
  Pool::Options opts{.size = 128u << 20, .randomize_base = true};
  std::unique_ptr<Pool> pool;
  ASSERT_TRUE(Pool::Create(path, 1, opts, &pool).ok());
  using Tree = core::FPTree<uint64_t, 8, 8, true, 4>;
  auto tree = std::make_unique<Tree>(pool.get());

  Random64 rng(GetParam());
  // Preload a spread so batch runs break across existing leaves.
  for (uint64_t k = 0; k < 64; ++k) tree->Insert(k * 10, k);

  const char* const kPoints[] = {"fptree.multiput.before_bitmap",
                                 "fptree.multiput.after_bitmap",
                                 "fptree.insert.before_bitmap",
                                 "fptree.split.copied"};
  int crashes = 0;
  for (int round = 0; round < 30; ++round) {
    constexpr size_t kN = 48;
    uint64_t keys[kN], vals[kN];
    uint64_t base = 10000 + static_cast<uint64_t>(round) * 1000;
    for (size_t i = 0; i < kN; ++i) {
      keys[i] = base + i * 3;  // fresh ascending keys, multiple leaves
      vals[i] = base + i;
    }
    CrashSim::Enable();
    CrashSim::ArmCrashPoint(kPoints[rng.Uniform(4)],
                            1 + static_cast<int>(rng.Uniform(4)));
    if (GetParam() % 2 == 0) CrashSim::SetTearMode(true);
    bool crashed = false;
    try {
      tree->MultiPut(keys, vals, kN, nullptr);
    } catch (const CrashException&) {
      crashed = true;
    }
    CrashSim::Disable();
    if (crashed) {
      ++crashes;
      CrashSim::SimulateCrash();
      CrashSim::SetTearMode(false);
      tree.reset();
      pool.reset();
      ASSERT_TRUE(Pool::Open(path, 1, opts, &pool).ok());
      tree = std::make_unique<Tree>(pool.get());
    } else {
      CrashSim::SetTearMode(false);
    }
    // Strict prefix: once a batch key is missing, every later one is too;
    // the ones that survived carry their exact values (no torn leaf).
    bool seen_missing = false;
    for (size_t i = 0; i < kN; ++i) {
      uint64_t v = 0;
      if (tree->Find(keys[i], &v)) {
        ASSERT_FALSE(seen_missing)
            << "non-prefix durability: keys[" << i << "] present after a "
            << "missing batch key (round " << round << ")";
        ASSERT_EQ(v, vals[i]) << "torn value at keys[" << i << "]";
      } else {
        seen_missing = true;
      }
    }
    std::string why;
    ASSERT_TRUE(tree->CheckInvariants(&why)) << why;
  }
  EXPECT_GT(crashes, 0) << "fuzz run should actually crash";
  tree.reset();
  pool.reset();
  Pool::Destroy(path).ok();
}

TEST_P(BatchCrashTest, VarPrefixDurableAcrossMultiPutCrash) {
  scm::LatencyModel::Disable();
  std::string path = TestPath("vbcrash" + std::to_string(GetParam()));
  Pool::Destroy(path).ok();
  Pool::Options opts{.size = 128u << 20, .randomize_base = true};
  std::unique_ptr<Pool> pool;
  ASSERT_TRUE(Pool::Create(path, 1, opts, &pool).ok());
  using Tree = core::FPTreeVar<uint64_t, 8, 8>;
  auto tree = std::make_unique<Tree>(pool.get());

  Random64 rng(GetParam() * 13 + 3);
  for (uint64_t k = 0; k < 64; ++k) tree->Insert(PaddedKey(k * 10), k);

  const char* const kPoints[] = {"fptreevar.multiput.before_bitmap",
                                 "fptreevar.multiput.after_bitmap",
                                 "fptreevar.multiput.old_reset",
                                 "fptreevar.insert.key_allocated"};
  int crashes = 0;
  for (int round = 0; round < 20; ++round) {
    constexpr size_t kN = 32;
    std::vector<std::string> storage(kN);
    std::vector<std::string_view> keys(kN);
    std::vector<uint64_t> vals(kN);
    uint64_t base = 10000 + static_cast<uint64_t>(round) * 1000;
    for (size_t i = 0; i < kN; ++i) {
      storage[i] = PaddedKey(base + i * 3);
      keys[i] = storage[i];
      vals[i] = base + i;
    }
    CrashSim::Enable();
    CrashSim::ArmCrashPoint(kPoints[rng.Uniform(4)],
                            1 + static_cast<int>(rng.Uniform(4)));
    bool crashed = false;
    try {
      tree->MultiPut(keys.data(), vals.data(), kN, nullptr);
    } catch (const CrashException&) {
      crashed = true;
    }
    CrashSim::Disable();
    if (crashed) {
      ++crashes;
      CrashSim::SimulateCrash();
      tree.reset();
      pool.reset();
      ASSERT_TRUE(Pool::Open(path, 1, opts, &pool).ok());
      // Attach-time recovery also sweeps key-blob leaks from the crash
      // windows between blob allocation and bitmap publish.
      tree = std::make_unique<Tree>(pool.get());
    }
    bool seen_missing = false;
    for (size_t i = 0; i < kN; ++i) {
      uint64_t v = 0;
      if (tree->Find(keys[i], &v)) {
        ASSERT_FALSE(seen_missing)
            << "non-prefix durability at round " << round << " key " << i;
        ASSERT_EQ(v, vals[i]) << "torn value at keys[" << i << "]";
      } else {
        seen_missing = true;
      }
    }
    std::string why;
    ASSERT_TRUE(tree->CheckInvariants(&why)) << why;
  }
  EXPECT_GT(crashes, 0) << "fuzz run should actually crash";
  tree.reset();
  pool.reset();
  Pool::Destroy(path).ok();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchCrashTest,
                         ::testing::Range(uint64_t{1}, 1 + FuzzSeeds(4)));

}  // namespace
}  // namespace index
}  // namespace fptree
