// Copyright (c) FPTree reproduction authors.
//
// Metrics-key stability (DESIGN.md §13 satellite): METRICS_JSON is parsed
// by the bench harness, the flavor matrix, and external dashboards, so the
// set of counter/gauge/histogram keys the global registry exposes is API.
// This test runs one deterministic workload that touches every subsystem
// (pool, tree + checked wrapper, invariants, network server) and compares
// the resulting key set against a checked-in golden list.
//
// Renaming or dropping a key fails here by design. To bless an intentional
// change, rerun with FPTREE_UPDATE_METRICS_GOLDEN=1 — the test rewrites
// tests/golden/metrics_keys.txt in the source tree — and commit the diff.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "check/checked_index.h"
#include "check/history.h"
#include "fault/fault.h"
#include "index/kv_index.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "scm/latency.h"
#include "scm/pool.h"

#ifndef FPTREE_METRICS_GOLDEN
#error "build must define FPTREE_METRICS_GOLDEN (path to golden key list)"
#endif

namespace fptree {
namespace obs {
namespace {

std::string TestPath(const std::string& name) {
  return "/tmp/fptree_test_" + std::to_string(::getpid()) + "_" + name;
}

std::set<std::string> ReadGolden(const std::string& path) {
  std::set<std::string> keys;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') keys.insert(line);
  }
  return keys;
}

TEST(MetricsKeysTest, GlobalRegistryKeysMatchGolden) {
  scm::LatencyModel::Disable();
  fault::FaultInjector::Instance().DisarmAll();
  SetSampleInterval(1);

  // One single-threaded pass through every metrics-producing subsystem;
  // key REGISTRATION (not values) is what must be deterministic here.
  std::string path = TestPath("metrics_keys");
  scm::Pool::Destroy(path).ok();
  std::unique_ptr<scm::Pool> pool;
  scm::Pool::Options popts{.size = 64u << 20, .randomize_base = false};
  ASSERT_TRUE(scm::Pool::Create(path, 1, popts, &pool).ok());

  check::HistoryRecorder rec;
  auto tree = check::Checked(
      index::MakeFixedIndex("fptree-c", pool.get(), /*locked=*/true), &rec);
  ASSERT_NE(tree, nullptr);
  for (uint64_t k = 1; k <= 32; ++k) tree->Insert(k, k * 10);
  uint64_t v = 0;
  tree->Find(7, &v);
  tree->Erase(3);
  tree->RangeScan(1, 8, [](uint64_t, uint64_t) { return true; });
  std::string why;
  EXPECT_TRUE(tree->CheckInvariants(&why)) << why;
  (void)rec.Drain();

  // Var side feeds the server; Start() synchronously registers every
  // net.* key plus the net.connections gauge, so no traffic is needed.
  auto vindex = index::MakeVarIndex("fptree-c-var", pool.get(), true);
  ASSERT_NE(vindex, nullptr);
  net::Server::Options sopts;
  sopts.drain_grace_ms = 100;
  net::Server server(vindex.get(), sopts);
  ASSERT_TRUE(server.Start().ok());

  Snapshot snap = MetricsRegistry::Global().TakeSnapshot();
  std::set<std::string> keys;
  for (const auto& [name, _] : snap.counters) keys.insert("counter " + name);
  for (const auto& [name, _] : snap.gauges) keys.insert("gauge " + name);
  for (const auto& [name, _] : snap.histograms) {
    keys.insert("histogram " + name);
  }

  const std::string golden_path = FPTREE_METRICS_GOLDEN;
  if (std::getenv("FPTREE_UPDATE_METRICS_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << "# Golden METRICS_JSON key set (see obs_metrics_keys_test.cc).\n"
        << "# Regenerate: FPTREE_UPDATE_METRICS_GOLDEN=1 "
           "./obs_metrics_keys_test\n";
    for (const std::string& k : keys) out << k << "\n";
    GTEST_SKIP() << "golden updated: " << golden_path;
  }

  std::set<std::string> golden = ReadGolden(golden_path);
  ASSERT_FALSE(golden.empty())
      << "missing/empty golden file " << golden_path
      << " — generate with FPTREE_UPDATE_METRICS_GOLDEN=1";

  std::ostringstream missing, unexpected;
  for (const std::string& k : golden) {
    if (keys.count(k) == 0) missing << "\n  - " << k;
  }
  for (const std::string& k : keys) {
    if (golden.count(k) == 0) unexpected << "\n  + " << k;
  }
  EXPECT_TRUE(missing.str().empty() && unexpected.str().empty())
      << "METRICS_JSON key set drifted from " << golden_path
      << "\nmissing (removed/renamed keys break dashboards):"
      << (missing.str().empty() ? " none" : missing.str())
      << "\nunexpected (new keys must be blessed):"
      << (unexpected.str().empty() ? " none" : unexpected.str())
      << "\nIf intentional, rerun with FPTREE_UPDATE_METRICS_GOLDEN=1 and "
         "commit the golden diff.";

  pool.reset();
  scm::Pool::Destroy(path).ok();
}

}  // namespace
}  // namespace obs
}  // namespace fptree
