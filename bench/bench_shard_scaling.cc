// Shard-scaling sweep (DESIGN.md §10): aggregate write throughput of the
// sharded multi-pool engine as the shard count grows at a fixed total
// thread count, plus the shard-parallel recovery time and a merged-scan
// sanity checksum per configuration. Writes go through the index API v3
// Upsert on a concurrent inner tree (fptree-c-var), so the only thing the
// sweep varies is how many pools/trees the same offered load is partitioned
// across.
//
// Emits BENCH_shard_scaling.json with a `series` array (one row per
// shards × threads cell) and the 8-vs-1-shard throughput ratio per thread
// count. The acceptance criterion — >= 1.8x aggregate write throughput at
// 8 shards vs 1 shard for the same total thread count — applies on
// multi-core hosts; the JSON carries hardware_concurrency so single-core
// container runs are self-describing.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "util/hash.h"
#include "util/threading.h"

namespace fptree {
namespace bench {
namespace {

struct Cell {
  size_t shards = 0;
  uint32_t threads = 0;
  double write_kops = 0;
  double scan_kops = 0;
  uint64_t scan_rows = 0;
  uint64_t scan_checksum = 0;
  double recovery_ms_slowest_shard = 0;
};

Cell RunCell(const std::string& inner, size_t shards, uint32_t threads,
             const Flags& flags) {
  Cell cell;
  cell.shards = shards;
  cell.threads = threads;

  ScopedShardedVar engine(inner, shards);

  // Aggregate write throughput: T threads upserting random keys from a
  // shared keyspace; hash partitioning spreads them across shards.
  const uint64_t ops_per_thread = std::max<uint64_t>(flags.ops / threads, 1);
  SpinBarrier barrier(threads + 1);
  ThreadGroup tg;
  tg.Spawn(threads, [&](uint32_t id) {
    Random64 rng(7000 + id);
    barrier.Wait();
    for (uint64_t i = 0; i < ops_per_thread; ++i) {
      engine.get()->Upsert(MakeVarKey(rng.Next() % flags.keys), i);
    }
    barrier.Wait();
  });
  barrier.Wait();
  Stopwatch sw;
  barrier.Wait();
  double write_secs = sw.ElapsedSeconds();
  tg.Join();
  cell.write_kops =
      static_cast<double>(ops_per_thread) * threads / write_secs / 1e3;

  // Merged globally-ordered scan over everything (k-way cursor merge).
  {
    Stopwatch scan_sw;
    auto cursor = engine.get()->OpenScan("", flags.keys);
    std::string k;
    uint64_t v;
    std::string prev;
    while (cursor->Next(&k, &v)) {
      if (cell.scan_rows > 0 && !(prev < k)) {
        std::fprintf(stderr, "merged scan out of order at row %llu\n",
                     static_cast<unsigned long long>(cell.scan_rows));
        std::exit(1);
      }
      cell.scan_checksum += HashBytes(k.data(), k.size()) + v;
      prev = std::move(k);
      ++cell.scan_rows;
    }
    cursor->Close();
    double scan_secs = scan_sw.ElapsedSeconds();
    cell.scan_kops =
        scan_secs > 0
            ? static_cast<double>(cell.scan_rows) / scan_secs / 1e3
            : 0;
  }

  // Shard-parallel recovery: close every pool, reopen concurrently.
  engine.Reopen(inner);
  cell.recovery_ms_slowest_shard =
      static_cast<double>(engine.get()->RecoveryNanos()) / 1e6;

  std::printf(
      "shards=%zu threads=%u  write=%9.1f kops/s  scan=%9.1f kops/s "
      "rows=%llu  recovery(slowest shard)=%.3f ms\n",
      shards, threads, cell.write_kops, cell.scan_kops,
      static_cast<unsigned long long>(cell.scan_rows),
      cell.recovery_ms_slowest_shard);
  return cell;
}

void WriteJson(const std::string& inner, const std::vector<Cell>& cells) {
  FILE* f = std::fopen("BENCH_shard_scaling.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_shard_scaling.json\n");
    return;
  }
  unsigned hw = std::thread::hardware_concurrency();
  std::fprintf(f, "{\n  \"bench\": \"shard_scaling\",\n");
  std::fprintf(f,
               "  \"host\": {\n    \"hardware_concurrency\": %u,\n"
               "    \"note\": \"single-core containers serialize the shard "
               "threads; the >=1.8x 8-vs-1-shard write-throughput criterion "
               "applies on multi-core hosts\"\n  },\n",
               hw);
  std::fprintf(f, "  \"inner\": \"%s\",\n  \"series\": [\n",
               inner.c_str());
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"shards\": %zu, \"threads\": %u, \"write_kops\": %.1f, "
        "\"scan_kops\": %.1f, \"scan_rows\": %llu, "
        "\"recovery_ms_slowest_shard\": %.3f}%s\n",
        c.shards, c.threads, c.write_kops, c.scan_kops,
        static_cast<unsigned long long>(c.scan_rows),
        c.recovery_ms_slowest_shard, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"ratios_8_vs_1_shard\": {\n");
  bool first = true;
  for (const Cell& a : cells) {
    if (a.shards != 1) continue;
    for (const Cell& b : cells) {
      if (b.shards == 8 && b.threads == a.threads && a.write_kops > 0) {
        std::fprintf(f, "%s    \"t%u\": %.2f", first ? "" : ",\n",
                     a.threads, b.write_kops / a.write_kops);
        first = false;
      }
    }
  }
  std::fprintf(f, "\n  }\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_shard_scaling.json\n");
}

}  // namespace
}  // namespace bench
}  // namespace fptree

int main(int argc, char** argv) {
  using namespace fptree;
  bench::Flags flags = bench::Flags::Parse(argc, argv);
  if (flags.quick) {
    flags.keys = std::min<uint64_t>(flags.keys, 20000);
    flags.ops = std::min<uint64_t>(flags.ops, 40000);
  }
  scm::LatencyModel::Disable();  // measure structure, not emulated media

  bench::PrintHeader("sharded engine scaling (shards x threads)");
  // A concurrent inner tree by default; --tree resolves against the
  // registry (unknown names exit with the registered list).
  const std::string inner = flags.VarTrees({"fptree-c-var"}).front();

  std::vector<size_t> shard_counts = {1, 2, 4, 8};
  std::vector<uint32_t> thread_counts;
  if (flags.threads != 0) {
    thread_counts = {flags.threads};
  } else if (flags.quick) {
    thread_counts = {2};
  } else {
    thread_counts = {1, 2, 4, 8};
  }

  std::vector<bench::Cell> cells;
  for (uint32_t t : thread_counts) {
    for (size_t s : shard_counts) {
      cells.push_back(bench::RunCell(inner, s, t, flags));
    }
  }
  bench::WriteJson(inner, cells);
  bench::EmitMetricsJson("shard_scaling");
  return 0;
}
