// Copyright (c) FPTree reproduction authors.
//
// A compact log-bucketed latency histogram for benchmark reporting
// (RocksDB-style). Records nanosecond samples; reports avg and percentiles.

#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <string>

namespace fptree {

/// \brief Log-scale histogram of nanosecond latencies.
///
/// Buckets are powers-of-two-ish (64 sub-buckets per octave would be
/// overkill; we use 4) covering 1 ns .. ~1 s. Not thread-safe; use one per
/// worker thread and Merge().
class Histogram {
 public:
  static constexpr int kNumBuckets = 124;  // 31 octaves * 4 sub-buckets

  Histogram() { Clear(); }

  void Clear() {
    count_ = 0;
    sum_ = 0;
    min_ = UINT64_MAX;
    max_ = 0;
    buckets_.fill(0);
  }

  void Add(uint64_t ns) {
    ++count_;
    sum_ += ns;
    min_ = std::min(min_, ns);
    max_ = std::max(max_, ns);
    ++buckets_[BucketFor(ns)];
  }

  void Merge(const Histogram& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  double Average() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }

  /// Returns the approximate p-th percentile (p in [0,100]).
  uint64_t Percentile(double p) const {
    if (count_ == 0) return 0;
    uint64_t threshold =
        static_cast<uint64_t>(static_cast<double>(count_) * p / 100.0);
    uint64_t cum = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      cum += buckets_[i];
      if (cum >= threshold) return BucketLow(i);
    }
    return max_;
  }

  std::string ToString() const {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "count=%llu avg=%.1fns p50=%llu p99=%llu max=%llu",
                  static_cast<unsigned long long>(count_), Average(),
                  static_cast<unsigned long long>(Percentile(50)),
                  static_cast<unsigned long long>(Percentile(99)),
                  static_cast<unsigned long long>(max_));
    return buf;
  }

 private:
  static int BucketFor(uint64_t ns) {
    if (ns < 2) return static_cast<int>(ns);
    int octave = 63 - __builtin_clzll(ns);
    uint64_t frac = (ns >> (octave >= 2 ? octave - 2 : 0)) & 3;
    int idx = octave * 4 + static_cast<int>(frac);
    return idx >= kNumBuckets ? kNumBuckets - 1 : idx;
  }

  static uint64_t BucketLow(int idx) {
    int octave = idx / 4;
    int frac = idx % 4;
    if (octave == 0) return static_cast<uint64_t>(frac);
    return (1ULL << octave) | (static_cast<uint64_t>(frac) << (octave >= 2 ? octave - 2 : 0));
  }

  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
  std::array<uint64_t, kNumBuckets> buckets_;
};

}  // namespace fptree
