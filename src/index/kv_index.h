// Copyright (c) FPTree reproduction authors.
//
// Uniform index interfaces and adapters (index API v2). The end-to-end
// applications (kvcache, minidb) and the benchmark harnesses hold trees
// through these so every tree in the paper's evaluation can be swapped in
// by name, exactly as the paper swaps trees into memcached and its
// prototype database.
//
// v2 additions:
//  * RangeScan(start, limit, cb) — ordered scans through the interface.
//  * Stats() — a per-instance obs::Snapshot (size/bytes gauges, tree op
//    counters, HTM telemetry where the tree has them).
//  * Implementations self-register in IndexRegistry (kv_index.cc);
//    ListFixedIndexNames()/ListVarIndexNames() enumerate them for
//    `--tree=all` style drivers.
//
// v3 additions (DESIGN.md §10):
//  * Upsert(key, value) — atomic insert-or-update. The default loops
//    Insert/Update; the FPTree variants provide a native one-descent fast
//    path the adapters pick up by feature detection.
//  * OpenScan(start, limit) — a pull-based ScanCursor (Open/Next/Close).
//    The default cursor batch-refills from the callback RangeScan and
//    re-descends per batch, so a cursor held across concurrent mutations
//    never touches a stale leaf (generation safety comes from RangeScan's
//    own snapshot discipline). Composed indexes (src/engine/ sharding)
//    implement the callback RangeScan *on top of* their cursor instead.
//  * Status-returning factories (MakeFixedIndexChecked/MakeVarIndexChecked)
//    that report unknown names with the registered list instead of a bare
//    nullptr.

#pragma once

#include <algorithm>
#include <functional>
#include <limits>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "baselines/nvtree.h"
#include "baselines/stxtree.h"
#include "baselines/wbtree.h"
#include "core/fptree.h"
#include "core/fptree_concurrent.h"
#include "core/fptree_concurrent_var.h"
#include "core/fptree_var.h"
#include "core/ptree.h"
#include "obs/metrics.h"
#include "scm/pool.h"
#include "util/hash.h"
#include "util/status.h"

namespace fptree {
namespace index {

/// \brief Pull-based ordered scan over fixed-size keys (index API v3).
///
/// Obtained from KVIndex::OpenScan. Next() yields pairs in ascending key
/// order until the limit requested at open time, the end of the index, or
/// Close(); all three make every later Next() return false. A cursor is
/// single-threaded, but the index may be mutated concurrently between
/// Next() calls: implementations refill in bounded batches and re-descend
/// from the root per batch, never holding a leaf reference across calls.
class KVScanCursor {
 public:
  virtual ~KVScanCursor() = default;

  /// Advances to the next pair. Returns false once exhausted or closed.
  virtual bool Next(uint64_t* key, uint64_t* value) = 0;

  /// Releases buffered state early; idempotent, implied by destruction.
  virtual void Close() = 0;
};

/// \brief Pull-based ordered scan over variable-size keys.
class VarScanCursor {
 public:
  virtual ~VarScanCursor() = default;
  virtual bool Next(std::string* key, uint64_t* value) = 0;
  virtual void Close() = 0;
};

/// \brief Fixed-size (8-byte) key index.
class KVIndex {
 public:
  /// Scan visitor; return false to stop early.
  using ScanCallback = std::function<bool(uint64_t key, uint64_t value)>;
  using ScanCursor = KVScanCursor;

  virtual ~KVIndex() = default;

  virtual bool Find(uint64_t key, uint64_t* value) = 0;
  virtual bool Insert(uint64_t key, uint64_t value) = 0;
  virtual bool Update(uint64_t key, uint64_t value) = 0;
  virtual bool Erase(uint64_t key) = 0;
  /// Insert-or-update (API v3): after return, `key` maps to `value`.
  /// Returns true when the key was newly inserted, false when an existing
  /// value was replaced. The default retries the Insert/Update pair until
  /// one wins (covers the race against a concurrent Erase); adapters route
  /// to a native single-descent tree Upsert where one exists.
  virtual bool Upsert(uint64_t key, uint64_t value) {
    for (;;) {
      if (Insert(key, value)) return true;
      if (Update(key, value)) return false;
    }
  }
  /// Status-propagating insert-or-update (DESIGN.md §12 graceful
  /// degradation): on success `*inserted` reports insert-vs-replace; on
  /// ResourceExhausted the pool backing the index is full and the key is
  /// untouched — the caller can keep issuing reads/deletes. The default
  /// wraps the bool Upsert (adequate for transient indexes that cannot run
  /// out of pool space); pool-backed adapters route to the tree's native
  /// UpsertChecked.
  virtual Status UpsertChecked(uint64_t key, uint64_t value,
                               bool* inserted) {
    *inserted = Upsert(key, value);
    return Status::OK();
  }
  /// Batched Status-propagating upsert: applies keys[0..n) in input order
  /// and stops at the first failure, so `*applied` is the length of the
  /// durable input prefix (== n on success). inserted[i] is only
  /// meaningful for i < *applied.
  virtual Status MultiUpsertChecked(const uint64_t* keys,
                                    const uint64_t* values, size_t n,
                                    uint8_t* inserted, size_t* applied) {
    for (size_t i = 0; i < n; ++i) {
      bool ins = false;
      Status s = UpsertChecked(keys[i], values[i], &ins);
      if (!s.ok()) {
        *applied = i;
        return s;
      }
      if (inserted != nullptr) inserted[i] = ins ? 1 : 0;
    }
    *applied = n;
    return Status::OK();
  }
  /// Batched point lookup (API v3.1): for each i in [0, n), sets found[i]
  /// to 1/0 and, on a hit, values[i] to the mapped value (values[i] is
  /// untouched on a miss). Semantically identical to a loop of Find() —
  /// the batch oracle tests enforce bit-identical results — but native
  /// implementations run interleaved prefetched descents that overlap the
  /// per-key SCM misses. The default is that loop.
  virtual void MultiGet(const uint64_t* keys, size_t n, uint64_t* values,
                        uint8_t* found) {
    for (size_t i = 0; i < n; ++i) {
      found[i] = Find(keys[i], &values[i]) ? 1 : 0;
    }
  }
  /// Batched Insert (API v3.1): inserted[i] = 1 iff keys[i] was newly
  /// inserted (0 when it already existed, whose value is left unchanged).
  /// Ops apply in input order; for duplicate keys within the batch the
  /// first wins, exactly as in the loop of Insert(). `inserted` may be
  /// nullptr when the caller does not care. Native implementations add
  /// group persistence: per-leaf flush ranges coalesce and one trailing
  /// fence covers each published run, with every leaf's bitmap flip
  /// remaining the atomic publish point — a crash makes a strict input
  /// prefix of the batch durable.
  virtual void MultiPut(const uint64_t* keys, const uint64_t* values,
                        size_t n, uint8_t* inserted) {
    for (size_t i = 0; i < n; ++i) {
      bool ins = Insert(keys[i], values[i]);
      if (inserted != nullptr) inserted[i] = ins ? 1 : 0;
    }
  }
  /// Batched Upsert (API v3.1): like MultiPut but existing keys are
  /// updated; inserted[i] reports insert-vs-replace. Duplicate keys within
  /// the batch apply in input order (last value wins), as in the loop.
  virtual void MultiUpsert(const uint64_t* keys, const uint64_t* values,
                           size_t n, uint8_t* inserted) {
    for (size_t i = 0; i < n; ++i) {
      bool ins = Upsert(keys[i], values[i]);
      if (inserted != nullptr) inserted[i] = ins ? 1 : 0;
    }
  }
  /// Ordered visit of up to `limit` pairs with key >= start; returns the
  /// number of pairs delivered. Unordered indexes return 0.
  virtual size_t RangeScan(uint64_t start, size_t limit,
                           const ScanCallback& cb) = 0;
  /// Opens a pull-based cursor over the same ordered range (API v3). The
  /// default wraps RangeScan in a batch-refilling cursor (defined after
  /// the internal helpers below). Never returns nullptr; unordered indexes
  /// yield an immediately-exhausted cursor.
  virtual std::unique_ptr<KVScanCursor> OpenScan(uint64_t start,
                                                 size_t limit);
  virtual size_t Size() const = 0;
  virtual uint64_t DramBytes() const = 0;
  virtual uint64_t ScmBytes() const = 0;
  /// Nanoseconds the constructor spent on recovery (0 for transient trees).
  virtual uint64_t RecoveryNanos() const { return 0; }
  /// Per-instance metrics snapshot (index.* gauges, tree.*/htm.* counters
  /// where the underlying tree keeps them).
  virtual obs::Snapshot Stats() const = 0;
  /// True when the implementation is internally thread-safe.
  virtual bool concurrent() const { return false; }
  /// Universal invariant check (DESIGN.md §8): the deepest structural audit
  /// the implementation supports — leaf/inner agreement, fingerprint and
  /// slot-array soundness, persistent-leak audit. Returns true (and leaves
  /// *why untouched) for transient indexes with no deep checker. Callers
  /// must quiesce concurrent indexes first. Adapter implementations bump
  /// tree.invariant_checks / tree.invariant_failures in the global metrics
  /// registry so harnesses can assert clean runs from METRICS_JSON.
  virtual bool CheckInvariants(std::string* why) {
    (void)why;
    return true;
  }
};

/// \brief Variable-size (string) key index.
class VarIndex {
 public:
  using ScanCallback = std::function<bool(std::string_view key,
                                          uint64_t value)>;
  using ScanCursor = VarScanCursor;

  virtual ~VarIndex() = default;

  virtual bool Find(std::string_view key, uint64_t* value) = 0;
  virtual bool Insert(std::string_view key, uint64_t value) = 0;
  virtual bool Update(std::string_view key, uint64_t value) = 0;
  virtual bool Erase(std::string_view key) = 0;
  /// Insert-or-update; see KVIndex::Upsert.
  virtual bool Upsert(std::string_view key, uint64_t value) {
    for (;;) {
      if (Insert(key, value)) return true;
      if (Update(key, value)) return false;
    }
  }
  /// Status-propagating upsert; see KVIndex::UpsertChecked.
  virtual Status UpsertChecked(std::string_view key, uint64_t value,
                               bool* inserted) {
    *inserted = Upsert(key, value);
    return Status::OK();
  }
  /// Prefix-stopping batched upsert; see KVIndex::MultiUpsertChecked.
  virtual Status MultiUpsertChecked(const std::string_view* keys,
                                    const uint64_t* values, size_t n,
                                    uint8_t* inserted, size_t* applied) {
    for (size_t i = 0; i < n; ++i) {
      bool ins = false;
      Status s = UpsertChecked(keys[i], values[i], &ins);
      if (!s.ok()) {
        *applied = i;
        return s;
      }
      if (inserted != nullptr) inserted[i] = ins ? 1 : 0;
    }
    *applied = n;
    return Status::OK();
  }
  /// Batched ops; see the KVIndex v3.1 contracts.
  virtual void MultiGet(const std::string_view* keys, size_t n,
                        uint64_t* values, uint8_t* found) {
    for (size_t i = 0; i < n; ++i) {
      found[i] = Find(keys[i], &values[i]) ? 1 : 0;
    }
  }
  virtual void MultiPut(const std::string_view* keys, const uint64_t* values,
                        size_t n, uint8_t* inserted) {
    for (size_t i = 0; i < n; ++i) {
      bool ins = Insert(keys[i], values[i]);
      if (inserted != nullptr) inserted[i] = ins ? 1 : 0;
    }
  }
  virtual void MultiUpsert(const std::string_view* keys,
                           const uint64_t* values, size_t n,
                           uint8_t* inserted) {
    for (size_t i = 0; i < n; ++i) {
      bool ins = Upsert(keys[i], values[i]);
      if (inserted != nullptr) inserted[i] = ins ? 1 : 0;
    }
  }
  virtual size_t RangeScan(std::string_view start, size_t limit,
                           const ScanCallback& cb) = 0;
  /// Pull-based cursor; see KVIndex::OpenScan.
  virtual std::unique_ptr<VarScanCursor> OpenScan(std::string_view start,
                                                  size_t limit);
  virtual size_t Size() const = 0;
  virtual uint64_t DramBytes() const = 0;
  virtual uint64_t ScmBytes() const = 0;
  virtual uint64_t RecoveryNanos() const { return 0; }
  virtual obs::Snapshot Stats() const = 0;
  virtual bool concurrent() const { return false; }
  /// Universal invariant check; see KVIndex::CheckInvariants.
  virtual bool CheckInvariants(std::string* why) {
    (void)why;
    return true;
  }
};

namespace internal {

/// Default batch size of the refilling cursors: large enough to amortize
/// the per-batch re-descent, small enough that an abandoned cursor holds
/// only a few KB.
constexpr size_t kScanCursorBatch = 128;

/// Batch-refilling cursor over a fixed-key index's callback RangeScan.
/// Each refill is an independent RangeScan starting just past the last
/// delivered key, so the cursor inherits the scan's generation safety: no
/// leaf pointer survives between batches, and keys mutated behind the
/// cursor can neither reappear nor be double-delivered.
class KVBatchScanCursor final : public KVScanCursor {
 public:
  KVBatchScanCursor(KVIndex* index, uint64_t start, size_t limit,
                    size_t batch = kScanCursorBatch)
      : index_(index),
        next_start_(start),
        remaining_(limit),
        batch_(batch == 0 ? 1 : batch) {}

  bool Next(uint64_t* key, uint64_t* value) override {
    if (pos_ == buf_.size() && !Refill()) return false;
    *key = buf_[pos_].first;
    *value = buf_[pos_].second;
    ++pos_;
    return true;
  }

  void Close() override {
    done_ = true;
    buf_.clear();
    buf_.shrink_to_fit();
    pos_ = 0;
  }

 private:
  bool Refill() {
    if (done_ || remaining_ == 0) return false;
    buf_.clear();
    pos_ = 0;
    size_t want = std::min(batch_, remaining_);
    size_t got = index_->RangeScan(
        next_start_, want, [this](uint64_t k, uint64_t v) {
          buf_.emplace_back(k, v);
          return true;
        });
    if (got < want) done_ = true;  // index ran out within this batch
    if (got == 0) return false;
    remaining_ -= got;
    uint64_t last = buf_.back().first;
    if (last == std::numeric_limits<uint64_t>::max()) {
      done_ = true;  // nothing can follow the maximal key
    } else {
      next_start_ = last + 1;
    }
    return true;
  }

  KVIndex* index_;
  uint64_t next_start_;
  size_t remaining_;
  size_t batch_;
  bool done_ = false;
  std::vector<std::pair<uint64_t, uint64_t>> buf_;
  size_t pos_ = 0;
};

/// Var-key batch cursor; the restart key is last + '\0', the smallest
/// string strictly greater than the last delivered key.
class VarBatchScanCursor final : public VarScanCursor {
 public:
  VarBatchScanCursor(VarIndex* index, std::string_view start, size_t limit,
                     size_t batch = kScanCursorBatch)
      : index_(index),
        next_start_(start),
        remaining_(limit),
        batch_(batch == 0 ? 1 : batch) {}

  bool Next(std::string* key, uint64_t* value) override {
    if (pos_ == buf_.size() && !Refill()) return false;
    *key = std::move(buf_[pos_].first);
    *value = buf_[pos_].second;
    ++pos_;
    return true;
  }

  void Close() override {
    done_ = true;
    buf_.clear();
    buf_.shrink_to_fit();
    pos_ = 0;
  }

 private:
  bool Refill() {
    if (done_ || remaining_ == 0) return false;
    buf_.clear();
    pos_ = 0;
    size_t want = std::min(batch_, remaining_);
    size_t got = index_->RangeScan(
        next_start_, want, [this](std::string_view k, uint64_t v) {
          buf_.emplace_back(std::string(k), v);
          return true;
        });
    if (got < want) done_ = true;
    if (got == 0) return false;
    remaining_ -= got;
    next_start_ = buf_.back().first;
    next_start_.push_back('\0');
    return true;
  }

  VarIndex* index_;
  std::string next_start_;
  size_t remaining_;
  size_t batch_;
  bool done_ = false;
  std::vector<std::pair<std::string, uint64_t>> buf_;
  size_t pos_ = 0;
};

}  // namespace internal

inline std::unique_ptr<KVScanCursor> KVIndex::OpenScan(uint64_t start,
                                                       size_t limit) {
  return std::make_unique<internal::KVBatchScanCursor>(this, start, limit);
}

inline std::unique_ptr<VarScanCursor> VarIndex::OpenScan(
    std::string_view start, size_t limit) {
  return std::make_unique<internal::VarBatchScanCursor>(this, start, limit);
}

namespace internal {

/// Builds the per-instance metrics snapshot from whatever the tree exposes;
/// feature-detected so one helper serves every adapter.
template <typename TreeT>
obs::Snapshot TreeSnapshot(const TreeT& t) {
  obs::Snapshot s;
  s.gauges["index.size"] = t.Size();
  s.gauges["index.dram_bytes"] = t.DramBytes();
  if constexpr (requires { t.ScmBytes(); }) {
    s.gauges["index.scm_bytes"] = t.ScmBytes();
  } else {
    s.gauges["index.scm_bytes"] = 0;
  }
  if constexpr (requires { t.last_recovery_nanos(); }) {
    s.gauges["index.recovery_nanos"] = t.last_recovery_nanos();
  }
  if constexpr (requires { t.stats(); }) {
    const core::TreeOpStats& st = t.stats();
    s.counters["tree.finds"] = st.finds;
    s.counters["tree.key_probes"] = st.key_probes;
    s.counters["tree.leaf_splits"] = st.leaf_splits;
    s.counters["tree.leaf_deletes"] = st.leaf_deletes;
    s.counters["tree.rebuilds"] = st.rebuilds;
  }
  if constexpr (requires { t.htm_stats(); }) {
    htm::HtmStatsSnapshot h;
    h.Add(t.htm_stats());
    s.counters["htm.commits"] = h.commits;
    s.counters["htm.aborts"] = h.aborts;
    s.counters["htm.aborts_conflict"] = h.aborts_conflict;
    s.counters["htm.aborts_capacity"] = h.aborts_capacity;
    s.counters["htm.aborts_explicit"] = h.aborts_explicit;
    s.counters["htm.fallbacks"] = h.fallbacks;
  }
  return s;
}

/// Runs the deepest invariant checker the tree exposes (CheckInvariants,
/// falling back to CheckConsistency, then to vacuous truth for transient
/// trees), bumping the global observability counters so benches and crash
/// harnesses can assert clean runs straight from METRICS_JSON.
template <typename TreeT>
bool RunInvariantCheck(TreeT& t, std::string* why) {
  obs::MetricsRegistry::Global().GetCounter("tree.invariant_checks")->Add(1);
  bool ok = true;
  if constexpr (requires { t.CheckInvariants(why); }) {
    ok = t.CheckInvariants(why);
  } else if constexpr (requires { t.CheckConsistency(why); }) {
    ok = t.CheckConsistency(why);
  }
  if (!ok) {
    obs::MetricsRegistry::Global()
        .GetCounter("tree.invariant_failures")
        ->Add(1);
  }
  return ok;
}

/// Drains a tree's vector-based RangeScan into a visitor callback.
template <typename TreeT, typename KeyArg, typename Callback>
size_t ScanInto(TreeT& tree, KeyArg start, size_t limit,
                const Callback& cb) {
  if constexpr (requires(std::vector<std::pair<uint64_t, uint64_t>>* out) {
                  tree.RangeScan(start, limit, out);
                }) {
    std::vector<std::pair<uint64_t, uint64_t>> out;
    tree.RangeScan(start, limit, &out);
    size_t n = 0;
    for (const auto& [k, v] : out) {
      ++n;
      if (!cb(k, v)) break;
    }
    return n;
  } else if constexpr (requires(
                           std::vector<std::pair<std::string, uint64_t>>*
                               out) {
                         tree.RangeScan(start, limit, out);
                       }) {
    std::vector<std::pair<std::string, uint64_t>> out;
    tree.RangeScan(start, limit, &out);
    size_t n = 0;
    for (const auto& [k, v] : out) {
      ++n;
      if (!cb(std::string_view(k), v)) break;
    }
    return n;
  } else {
    (void)tree;
    (void)start;
    (void)limit;
    (void)cb;
    return 0;
  }
}

/// Wraps a single-threaded tree; optionally adds a global read/write lock
/// so concurrent applications can drive it (the paper does exactly this in
/// memcached: "global locks for non-concurrent trees").
template <typename TreeT, typename KeyArg>
class LockedAdapter {
 public:
  template <typename... Args>
  explicit LockedAdapter(bool lock, Args&&... args)
      : lock_(lock), tree_(std::forward<Args>(args)...) {}

  bool Find(KeyArg key, uint64_t* value) {
    if (!lock_) return tree_.Find(key, value);
    std::shared_lock<std::shared_mutex> l(mu_);
    return tree_.Find(key, value);
  }
  bool Insert(KeyArg key, uint64_t value) {
    if (!lock_) return tree_.Insert(key, value);
    std::unique_lock<std::shared_mutex> l(mu_);
    return tree_.Insert(key, value);
  }
  bool Update(KeyArg key, uint64_t value) {
    if (!lock_) return tree_.Update(key, value);
    std::unique_lock<std::shared_mutex> l(mu_);
    return tree_.Update(key, value);
  }
  bool Erase(KeyArg key) {
    if (!lock_) return tree_.Erase(key);
    std::unique_lock<std::shared_mutex> l(mu_);
    return tree_.Erase(key);
  }
  /// One lock hold for the whole insert-or-update: the default interface
  /// loop would take and drop the writer lock twice, opening an
  /// insert/update race window even on "locked" trees.
  bool Upsert(KeyArg key, uint64_t value) {
    if (!lock_) return UpsertLocked(key, value);
    std::unique_lock<std::shared_mutex> l(mu_);
    return UpsertLocked(key, value);
  }
  Status UpsertChecked(KeyArg key, uint64_t value, bool* inserted) {
    if (!lock_) return UpsertCheckedLocked(key, value, inserted);
    std::unique_lock<std::shared_mutex> l(mu_);
    return UpsertCheckedLocked(key, value, inserted);
  }
  /// Prefix-stopping checked batch; one lock hold for the whole batch.
  Status MultiUpsertChecked(const KeyArg* keys, const uint64_t* values,
                            size_t n, uint8_t* inserted, size_t* applied) {
    if (!lock_) return MultiUpsertCheckedLocked(keys, values, n, inserted,
                                                applied);
    std::unique_lock<std::shared_mutex> l(mu_);
    return MultiUpsertCheckedLocked(keys, values, n, inserted, applied);
  }
  /// Batch ops take the lock ONCE for the whole batch (the interface
  /// default would lock per element) and route to the tree's native batch
  /// methods where they exist.
  void MultiGet(const KeyArg* keys, size_t n, uint64_t* values,
                uint8_t* found) {
    if (!lock_) return MultiGetLocked(keys, n, values, found);
    std::shared_lock<std::shared_mutex> l(mu_);
    MultiGetLocked(keys, n, values, found);
  }
  void MultiPut(const KeyArg* keys, const uint64_t* values, size_t n,
                uint8_t* inserted) {
    if (!lock_) return MultiPutLocked(keys, values, n, inserted);
    std::unique_lock<std::shared_mutex> l(mu_);
    MultiPutLocked(keys, values, n, inserted);
  }
  void MultiUpsert(const KeyArg* keys, const uint64_t* values, size_t n,
                   uint8_t* inserted) {
    if (!lock_) return MultiUpsertLocked(keys, values, n, inserted);
    std::unique_lock<std::shared_mutex> l(mu_);
    MultiUpsertLocked(keys, values, n, inserted);
  }
  template <typename Callback>
  size_t RangeScan(KeyArg start, size_t limit, const Callback& cb) {
    if (!lock_) return ScanInto(tree_, start, limit, cb);
    std::shared_lock<std::shared_mutex> l(mu_);
    return ScanInto(tree_, start, limit, cb);
  }

  TreeT& tree() { return tree_; }
  const TreeT& tree() const { return tree_; }

 private:
  void MultiGetLocked(const KeyArg* keys, size_t n, uint64_t* values,
                      uint8_t* found) {
    if constexpr (requires { tree_.MultiGet(keys, n, values, found); }) {
      tree_.MultiGet(keys, n, values, found);  // interleaved descents
    } else {
      for (size_t i = 0; i < n; ++i) {
        found[i] = tree_.Find(keys[i], &values[i]) ? 1 : 0;
      }
    }
  }
  void MultiPutLocked(const KeyArg* keys, const uint64_t* values, size_t n,
                      uint8_t* inserted) {
    if constexpr (requires { tree_.MultiPut(keys, values, n, inserted); }) {
      tree_.MultiPut(keys, values, n, inserted);  // group persistence
    } else {
      for (size_t i = 0; i < n; ++i) {
        bool ins = tree_.Insert(keys[i], values[i]);
        if (inserted != nullptr) inserted[i] = ins ? 1 : 0;
      }
    }
  }
  void MultiUpsertLocked(const KeyArg* keys, const uint64_t* values,
                         size_t n, uint8_t* inserted) {
    if constexpr (requires {
                    tree_.MultiUpsert(keys, values, n, inserted);
                  }) {
      tree_.MultiUpsert(keys, values, n, inserted);
    } else {
      for (size_t i = 0; i < n; ++i) {
        bool ins = UpsertLocked(keys[i], values[i]);
        if (inserted != nullptr) inserted[i] = ins ? 1 : 0;
      }
    }
  }

  bool UpsertLocked(KeyArg key, uint64_t value) {
    if constexpr (requires { tree_.Upsert(key, value); }) {
      return tree_.Upsert(key, value);  // native single-descent path
    } else {
      if (tree_.Insert(key, value)) return true;
      tree_.Update(key, value);
      return false;
    }
  }

  Status UpsertCheckedLocked(KeyArg key, uint64_t value, bool* inserted) {
    if constexpr (requires { tree_.UpsertChecked(key, value, inserted); }) {
      return tree_.UpsertChecked(key, value, inserted);
    } else if constexpr (requires {
                           tree_.InsertChecked(key, value, inserted);
                         }) {
      // Trees with checked point ops but no native upsert (wbtree,
      // nvtree): compose them, surfacing the first failure instead of the
      // bool loop which would spin forever on a full pool (Insert keeps
      // failing, Update keeps missing).
      for (;;) {
        bool flag = false;
        Status s = tree_.InsertChecked(key, value, &flag);
        if (!s.ok()) return s;
        if (flag) {
          *inserted = true;
          return Status::OK();
        }
        s = tree_.UpdateChecked(key, value, &flag);
        if (!s.ok()) return s;
        if (flag) {
          *inserted = false;
          return Status::OK();
        }
      }
    } else {
      *inserted = UpsertLocked(key, value);  // transient tree: cannot fail
      return Status::OK();
    }
  }

  Status MultiUpsertCheckedLocked(const KeyArg* keys, const uint64_t* values,
                                  size_t n, uint8_t* inserted,
                                  size_t* applied) {
    for (size_t i = 0; i < n; ++i) {
      bool ins = false;
      Status s = UpsertCheckedLocked(keys[i], values[i], &ins);
      if (!s.ok()) {
        *applied = i;
        return s;
      }
      if (inserted != nullptr) inserted[i] = ins ? 1 : 0;
    }
    *applied = n;
    return Status::OK();
  }

  bool lock_;
  std::shared_mutex mu_;
  TreeT tree_;
};

}  // namespace internal

/// Fixed-key adapter for any tree exposing the common tree API.
template <typename TreeT>
class FixedAdapter : public KVIndex {
 public:
  template <typename... Args>
  explicit FixedAdapter(bool locked, Args&&... args)
      : locked_(locked), impl_(locked, std::forward<Args>(args)...) {}

  bool Find(uint64_t key, uint64_t* value) override {
    return impl_.Find(key, value);
  }
  bool Insert(uint64_t key, uint64_t value) override {
    return impl_.Insert(key, value);
  }
  bool Update(uint64_t key, uint64_t value) override {
    return impl_.Update(key, value);
  }
  bool Erase(uint64_t key) override { return impl_.Erase(key); }
  bool Upsert(uint64_t key, uint64_t value) override {
    return impl_.Upsert(key, value);
  }
  Status UpsertChecked(uint64_t key, uint64_t value,
                       bool* inserted) override {
    return impl_.UpsertChecked(key, value, inserted);
  }
  Status MultiUpsertChecked(const uint64_t* keys, const uint64_t* values,
                            size_t n, uint8_t* inserted,
                            size_t* applied) override {
    return impl_.MultiUpsertChecked(keys, values, n, inserted, applied);
  }
  void MultiGet(const uint64_t* keys, size_t n, uint64_t* values,
                uint8_t* found) override {
    impl_.MultiGet(keys, n, values, found);
  }
  void MultiPut(const uint64_t* keys, const uint64_t* values, size_t n,
                uint8_t* inserted) override {
    impl_.MultiPut(keys, values, n, inserted);
  }
  void MultiUpsert(const uint64_t* keys, const uint64_t* values, size_t n,
                   uint8_t* inserted) override {
    impl_.MultiUpsert(keys, values, n, inserted);
  }
  size_t RangeScan(uint64_t start, size_t limit,
                   const ScanCallback& cb) override {
    return impl_.RangeScan(start, limit, cb);
  }
  size_t Size() const override { return impl_.tree().Size(); }
  uint64_t DramBytes() const override { return impl_.tree().DramBytes(); }
  uint64_t ScmBytes() const override {
    if constexpr (requires(const TreeT& t) { t.ScmBytes(); }) {
      return impl_.tree().ScmBytes();
    } else {
      return 0;  // fully transient tree
    }
  }
  uint64_t RecoveryNanos() const override {
    if constexpr (requires(const TreeT& t) { t.last_recovery_nanos(); }) {
      return impl_.tree().last_recovery_nanos();
    } else {
      return 0;
    }
  }
  obs::Snapshot Stats() const override {
    return internal::TreeSnapshot(impl_.tree());
  }
  bool concurrent() const override { return locked_; }
  bool CheckInvariants(std::string* why) override {
    return internal::RunInvariantCheck(impl_.tree(), why);
  }

  TreeT& tree() { return impl_.tree(); }

 private:
  bool locked_;
  internal::LockedAdapter<TreeT, uint64_t> impl_;
};

/// Var-key adapter.
template <typename TreeT>
class VarAdapter : public VarIndex {
 public:
  template <typename... Args>
  explicit VarAdapter(bool locked, Args&&... args)
      : locked_(locked), impl_(locked, std::forward<Args>(args)...) {}

  bool Find(std::string_view key, uint64_t* value) override {
    return impl_.Find(key, value);
  }
  bool Insert(std::string_view key, uint64_t value) override {
    return impl_.Insert(key, value);
  }
  bool Update(std::string_view key, uint64_t value) override {
    return impl_.Update(key, value);
  }
  bool Erase(std::string_view key) override { return impl_.Erase(key); }
  bool Upsert(std::string_view key, uint64_t value) override {
    return impl_.Upsert(key, value);
  }
  Status UpsertChecked(std::string_view key, uint64_t value,
                       bool* inserted) override {
    return impl_.UpsertChecked(key, value, inserted);
  }
  Status MultiUpsertChecked(const std::string_view* keys,
                            const uint64_t* values, size_t n,
                            uint8_t* inserted, size_t* applied) override {
    return impl_.MultiUpsertChecked(keys, values, n, inserted, applied);
  }
  void MultiGet(const std::string_view* keys, size_t n, uint64_t* values,
                uint8_t* found) override {
    impl_.MultiGet(keys, n, values, found);
  }
  void MultiPut(const std::string_view* keys, const uint64_t* values,
                size_t n, uint8_t* inserted) override {
    impl_.MultiPut(keys, values, n, inserted);
  }
  void MultiUpsert(const std::string_view* keys, const uint64_t* values,
                   size_t n, uint8_t* inserted) override {
    impl_.MultiUpsert(keys, values, n, inserted);
  }
  size_t RangeScan(std::string_view start, size_t limit,
                   const ScanCallback& cb) override {
    return impl_.RangeScan(start, limit, cb);
  }
  size_t Size() const override { return impl_.tree().Size(); }
  uint64_t DramBytes() const override { return impl_.tree().DramBytes(); }
  uint64_t ScmBytes() const override { return impl_.tree().ScmBytes(); }
  uint64_t RecoveryNanos() const override {
    if constexpr (requires(const TreeT& t) { t.last_recovery_nanos(); }) {
      return impl_.tree().last_recovery_nanos();
    } else {
      return 0;
    }
  }
  obs::Snapshot Stats() const override {
    return internal::TreeSnapshot(impl_.tree());
  }
  bool concurrent() const override { return locked_; }
  bool CheckInvariants(std::string* why) override {
    return internal::RunInvariantCheck(impl_.tree(), why);
  }

  TreeT& tree() { return impl_.tree(); }

 private:
  bool locked_;
  internal::LockedAdapter<TreeT, std::string_view> impl_;
};

/// Adapter for internally concurrent trees (no extra lock).
template <typename TreeT, typename Base, typename KeyArg>
class ConcurrentAdapter : public Base {
 public:
  template <typename... Args>
  explicit ConcurrentAdapter(Args&&... args)
      : tree_(std::forward<Args>(args)...) {}

  bool Find(KeyArg key, uint64_t* value) override {
    return tree_.Find(key, value);
  }
  bool Insert(KeyArg key, uint64_t value) override {
    return tree_.Insert(key, value);
  }
  bool Update(KeyArg key, uint64_t value) override {
    return tree_.Update(key, value);
  }
  bool Erase(KeyArg key) override { return tree_.Erase(key); }
  bool Upsert(KeyArg key, uint64_t value) override {
    if constexpr (requires { tree_.Upsert(key, value); }) {
      return tree_.Upsert(key, value);  // native single-descent path
    } else {
      return Base::Upsert(key, value);  // interface retry loop
    }
  }
  Status UpsertChecked(KeyArg key, uint64_t value, bool* inserted) override {
    if constexpr (requires { tree_.UpsertChecked(key, value, inserted); }) {
      return tree_.UpsertChecked(key, value, inserted);
    } else {
      return Base::UpsertChecked(key, value, inserted);
    }
  }
  Status MultiUpsertChecked(const KeyArg* keys, const uint64_t* values,
                            size_t n, uint8_t* inserted,
                            size_t* applied) override {
    // Loop the checked upsert (prefix-stop on failure) rather than the
    // tree's native batch window, whose alloc-failure policy is
    // drop-and-continue; the wire protocol needs the durable-prefix
    // contract.
    for (size_t i = 0; i < n; ++i) {
      bool ins = false;
      Status s = UpsertChecked(keys[i], values[i], &ins);
      if (!s.ok()) {
        *applied = i;
        return s;
      }
      if (inserted != nullptr) inserted[i] = ins ? 1 : 0;
    }
    *applied = n;
    return Status::OK();
  }
  void MultiGet(const KeyArg* keys, size_t n, uint64_t* values,
                uint8_t* found) override {
    if constexpr (requires { tree_.MultiGet(keys, n, values, found); }) {
      tree_.MultiGet(keys, n, values, found);
    } else {
      Base::MultiGet(keys, n, values, found);
    }
  }
  void MultiPut(const KeyArg* keys, const uint64_t* values, size_t n,
                uint8_t* inserted) override {
    if constexpr (requires { tree_.MultiPut(keys, values, n, inserted); }) {
      tree_.MultiPut(keys, values, n, inserted);
    } else {
      Base::MultiPut(keys, values, n, inserted);
    }
  }
  void MultiUpsert(const KeyArg* keys, const uint64_t* values, size_t n,
                   uint8_t* inserted) override {
    if constexpr (requires {
                    tree_.MultiUpsert(keys, values, n, inserted);
                  }) {
      tree_.MultiUpsert(keys, values, n, inserted);
    } else {
      Base::MultiUpsert(keys, values, n, inserted);
    }
  }
  size_t RangeScan(KeyArg start, size_t limit,
                   const typename Base::ScanCallback& cb) override {
    return internal::ScanInto(tree_, start, limit, cb);
  }
  size_t Size() const override { return tree_.Size(); }
  uint64_t DramBytes() const override { return tree_.DramBytes(); }
  uint64_t ScmBytes() const override { return tree_.ScmBytes(); }
  uint64_t RecoveryNanos() const override {
    if constexpr (requires(const TreeT& t) { t.last_recovery_nanos(); }) {
      return tree_.last_recovery_nanos();
    } else {
      return 0;
    }
  }
  obs::Snapshot Stats() const override {
    return internal::TreeSnapshot(tree_);
  }
  bool concurrent() const override { return true; }
  bool CheckInvariants(std::string* why) override {
    return internal::RunInvariantCheck(tree_, why);
  }

  TreeT& tree() { return tree_; }

 private:
  TreeT tree_;
};

// Update() on the plain concurrent NV-Tree adapter works out of the box.

/// Transient STX B+-Tree over std::string keys (STXTreeVar).
class STXVarTree {
 public:
  explicit STXVarTree(scm::Pool* /*unused*/ = nullptr) {}

  bool Find(std::string_view k, uint64_t* v) {
    return tree_.Find(std::string(k), v);
  }
  bool Insert(std::string_view k, uint64_t v) {
    return tree_.Insert(std::string(k), v);
  }
  bool Update(std::string_view k, uint64_t v) {
    return tree_.Update(std::string(k), v);
  }
  bool Erase(std::string_view k) { return tree_.Erase(std::string(k)); }
  void RangeScan(std::string_view start, size_t limit,
                 std::vector<std::pair<std::string, uint64_t>>* out) {
    tree_.RangeScan(std::string(start), limit, out);
  }
  size_t Size() const { return tree_.Size(); }
  uint64_t DramBytes() const { return tree_.DramBytes(); }
  uint64_t ScmBytes() const { return 0; }

 private:
  baselines::STXTree<std::string, uint64_t, 8, 8> tree_;
};

/// Sharded hash map — the "vanilla memcached hash table" reference of
/// Fig. 13. Fully transient and internally concurrent.
class ShardedHashMap : public VarIndex {
 public:
  static constexpr size_t kShards = 64;

  bool Find(std::string_view key, uint64_t* value) override {
    Shard& s = ShardFor(key);
    std::shared_lock<std::shared_mutex> l(s.mu);
    auto it = s.map.find(std::string(key));
    if (it == s.map.end()) return false;
    *value = it->second;
    return true;
  }
  bool Insert(std::string_view key, uint64_t value) override {
    Shard& s = ShardFor(key);
    std::unique_lock<std::shared_mutex> l(s.mu);
    return s.map.emplace(std::string(key), value).second;
  }
  bool Update(std::string_view key, uint64_t value) override {
    Shard& s = ShardFor(key);
    std::unique_lock<std::shared_mutex> l(s.mu);
    auto it = s.map.find(std::string(key));
    if (it == s.map.end()) return false;
    it->second = value;
    return true;
  }
  bool Erase(std::string_view key) override {
    Shard& s = ShardFor(key);
    std::unique_lock<std::shared_mutex> l(s.mu);
    return s.map.erase(std::string(key)) == 1;
  }
  bool Upsert(std::string_view key, uint64_t value) override {
    Shard& s = ShardFor(key);
    std::unique_lock<std::shared_mutex> l(s.mu);
    auto [it, inserted] = s.map.insert_or_assign(std::string(key), value);
    (void)it;
    return inserted;
  }
  size_t RangeScan(std::string_view /*start*/, size_t /*limit*/,
                   const ScanCallback& /*cb*/) override {
    return 0;  // unordered index: ordered scans unsupported
  }
  size_t Size() const override {
    size_t n = 0;
    for (auto& s : shards_) {
      std::shared_lock<std::shared_mutex> l(s.mu);
      n += s.map.size();
    }
    return n;
  }
  uint64_t DramBytes() const override {
    uint64_t n = 0;
    for (auto& s : shards_) n += s.map.size() * 64;
    return n;
  }
  uint64_t ScmBytes() const override { return 0; }
  obs::Snapshot Stats() const override {
    obs::Snapshot s;
    s.gauges["index.size"] = Size();
    s.gauges["index.dram_bytes"] = DramBytes();
    s.gauges["index.scm_bytes"] = 0;
    return s;
  }
  bool concurrent() const override { return true; }

 private:
  struct Shard {
    std::shared_mutex mu;
    std::unordered_map<std::string, uint64_t> map;
  };
  Shard& ShardFor(std::string_view key) {
    return shards_[HashBytes(key.data(), key.size()) % kShards];
  }
  mutable Shard shards_[kShards];
};

// ---------------------------------------------------------------------------
// Self-registering factory (definitions in kv_index.cc).

/// Registry of index constructors keyed by tree name. Implementations
/// register at static-init time from kv_index.cc; callers go through
/// MakeFixedIndex()/MakeVarIndex() or enumerate with the List functions.
class IndexRegistry {
 public:
  using FixedFactory =
      std::function<std::unique_ptr<KVIndex>(scm::Pool* pool, bool locked)>;
  using VarFactory =
      std::function<std::unique_ptr<VarIndex>(scm::Pool* pool, bool locked)>;

  static IndexRegistry& Instance();

  void RegisterFixed(const std::string& name, FixedFactory f);
  void RegisterVar(const std::string& name, VarFactory f);

  std::unique_ptr<KVIndex> MakeFixed(const std::string& name, scm::Pool* pool,
                                     bool locked) const;
  std::unique_ptr<VarIndex> MakeVar(const std::string& name, scm::Pool* pool,
                                    bool locked) const;

  /// Status-returning lookups (API v3): unknown names yield NotFound with
  /// the sorted registered-name list in the message, so `--tree=` typos
  /// surface the menu instead of a bare nullptr.
  Status MakeFixedChecked(const std::string& name, scm::Pool* pool,
                                bool locked,
                                std::unique_ptr<KVIndex>* out) const;
  Status MakeVarChecked(const std::string& name, scm::Pool* pool,
                              bool locked,
                              std::unique_ptr<VarIndex>* out) const;

  /// Sorted registered names.
  std::vector<std::string> FixedNames() const;
  std::vector<std::string> VarNames() const;

 private:
  IndexRegistry() = default;
  std::unordered_map<std::string, FixedFactory> fixed_;
  std::unordered_map<std::string, VarFactory> var_;
};

/// Sorted names of every registered fixed-key index (for --tree=all).
std::vector<std::string> ListFixedIndexNames();

/// Sorted names of every registered var-key index.
std::vector<std::string> ListVarIndexNames();

/// Creates a fixed-key index by tree name; nullptr for unknown names.
/// Pool-backed trees attach to `pool`; "stx" ignores it. When `locked` is
/// set, single-threaded trees get a global read/write lock (the paper's
/// memcached arrangement). Registered names: fptree, fptree-nogroups,
/// ptree, wbtree, nvtree, stx, fptree-c, fptree-c-lock (global-lock HTM
/// ablation), nvtree-c.
std::unique_ptr<KVIndex> MakeFixedIndex(const std::string& name,
                                        scm::Pool* pool, bool locked = false);

/// Creates a var-key index by name: fptree-var, ptree-var, stx-var,
/// fptree-c-var, hashmap.
std::unique_ptr<VarIndex> MakeVarIndex(const std::string& name,
                                       scm::Pool* pool, bool locked = false);

/// Checked factories (API v3): like MakeFixedIndex/MakeVarIndex but an
/// unknown name returns Status NotFound whose message lists every
/// registered name. On success `*out` holds the index and OkStatus is
/// returned. Drivers print the status and exit non-zero instead of
/// segfaulting on nullptr.
Status MakeFixedIndexChecked(const std::string& name, scm::Pool* pool,
                                   bool locked,
                                   std::unique_ptr<KVIndex>* out);
Status MakeVarIndexChecked(const std::string& name, scm::Pool* pool,
                                 bool locked, std::unique_ptr<VarIndex>* out);

}  // namespace index
}  // namespace fptree
