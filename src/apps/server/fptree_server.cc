// Copyright (c) FPTree reproduction authors.
//
// fptree_server: network front-end for any registered var-key index
// (DESIGN.md §9/§10). Binds a TCP port, serves the length-prefixed GET/
// PUT/UPSERT/DEL/SCAN protocol from src/net/protocol.h over a persistent
// pool, and drains gracefully on SIGTERM/SIGINT — in-flight requests are
// answered and flushed, then the process prints a METRICS_JSON line and
// exits.
//
//   fptree_server --port=7070 --tree=fptree-c-var --threads=4 \
//                 --pool=/tmp/fptree_server.pool --pool-mb=1024
//
// With --shards=N (or --tree=sharded(<inner>,N)) the server runs the
// sharded multi-pool engine: pool files `<pool>.0 .. <pool>.N-1`, keys
// hash-partitioned across N inner indexes, shard-parallel recovery on
// restart, and SCAN served through the k-way merged cursor.
//
// Pair with bench_net_throughput as the load generator.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/checked_index.h"
#include "check/history.h"
#include "engine/sharded_index.h"
#include "index/kv_index.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "scm/latency.h"
#include "scm/pool.h"

namespace fptree {
namespace {

struct ServerFlags {
  uint16_t port = 7070;
  std::string host = "127.0.0.1";
  std::string tree = "fptree-c-var";
  uint32_t threads = 2;
  std::string pool_path = "/tmp/fptree_server.pool";
  uint64_t pool_mb = 1024;
  uint32_t sample = 64;
  uint32_t drain_grace_ms = 5000;
  uint32_t shards = 1;

  static ServerFlags Parse(int argc, char** argv) {
    ServerFlags f;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--port=", 7) == 0) f.port = static_cast<uint16_t>(std::strtoul(a + 7, nullptr, 10));
      if (std::strncmp(a, "--host=", 7) == 0) f.host = a + 7;
      if (std::strncmp(a, "--tree=", 7) == 0) f.tree = a + 7;
      if (std::strncmp(a, "--threads=", 10) == 0) f.threads = std::strtoul(a + 10, nullptr, 10);
      if (std::strncmp(a, "--pool=", 7) == 0) f.pool_path = a + 7;
      if (std::strncmp(a, "--pool-mb=", 10) == 0) f.pool_mb = std::strtoull(a + 10, nullptr, 10);
      if (std::strncmp(a, "--sample=", 9) == 0) f.sample = std::strtoul(a + 9, nullptr, 10);
      if (std::strncmp(a, "--drain-grace-ms=", 17) == 0) f.drain_grace_ms = std::strtoul(a + 17, nullptr, 10);
      if (std::strncmp(a, "--shards=", 9) == 0) f.shards = std::strtoul(a + 9, nullptr, 10);
      if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
        std::printf(
            "usage: fptree_server [--port=N] [--host=A] [--tree=NAME]\n"
            "                     [--threads=N] [--pool=PATH] [--pool-mb=N]\n"
            "                     [--sample=N] [--drain-grace-ms=N]\n"
            "                     [--shards=N]\n"
            "--tree also accepts sharded(<inner>,<N>) and checked(<inner>)\n"
            "specs (checked wraps history capture around any inner spec)\n"
            "registered var-key trees:");
        for (const std::string& n : index::ListVarIndexNames()) {
          std::printf(" %s", n.c_str());
        }
        std::printf("\n");
        std::exit(0);
      }
    }
    return f;
  }
};

int Run(int argc, char** argv) {
  ServerFlags flags = ServerFlags::Parse(argc, argv);
  obs::SetSampleInterval(flags.sample);
  scm::LatencyModel::Disable();  // serve at native speed

  std::unique_ptr<scm::Pool> pool;
  std::unique_ptr<index::VarIndex> index;
  bool created = false;
  Status s;

  // checked(<inner>): wrap the index in the history-recording decorator
  // (DESIGN.md §13). The inner spec may itself be sharded(...). Capture
  // goes to the process-global recorder; the check.events_captured
  // counter surfaces in METRICS_JSON at drain.
  std::string checked_inner;
  const bool is_checked_spec =
      check::ParseCheckedSpec(flags.tree, &checked_inner);
  if (is_checked_spec) flags.tree = checked_inner;

  std::string sharded_inner;
  size_t sharded_n = 0;
  Status spec_error;
  const bool is_sharded_spec = engine::ParseShardedSpec(
      flags.tree, &sharded_inner, &sharded_n, &spec_error);
  if (is_sharded_spec && !spec_error.ok()) {
    std::fprintf(stderr, "bad --tree spec: %s\n",
                 spec_error.ToString().c_str());
    return 2;
  }

  if (is_sharded_spec || flags.shards > 1) {
    // Sharded engine path: one pool file per shard, shard-parallel
    // open/recovery, merged-cursor scans.
    engine::ShardedOptions eopts;
    eopts.shards = flags.shards;
    eopts.path_prefix = flags.pool_path;
    eopts.shard_bytes = flags.pool_mb << 20;
    eopts.locked = true;
    eopts.randomize_base = false;
    s = engine::MakeVarIndexFromSpec(flags.tree, eopts, &index);
    if (!s.ok()) {
      std::fprintf(stderr, "index construction failed: %s\n",
                   s.ToString().c_str());
      return 2;
    }
  } else {
    // Single-pool path, unchanged file naming for existing deployments.
    scm::Pool::Options popts{.size = flags.pool_mb << 20,
                             .randomize_base = false};
    s = scm::Pool::OpenOrCreate(flags.pool_path, 1, popts, &pool, &created);
    if (!s.ok()) {
      std::fprintf(stderr, "pool open failed: %s\n", s.ToString().c_str());
      return 1;
    }
    // Non-concurrent trees get the registry's global lock so the IO workers
    // can share them, mirroring the paper's memcached arrangement.
    s = index::MakeVarIndexChecked(flags.tree, pool.get(), /*locked=*/true,
                                   &index);
    if (!s.ok()) {
      std::fprintf(stderr, "index construction failed: %s\n",
                   s.ToString().c_str());
      return 2;
    }
  }

  if (is_checked_spec) {
    index = check::Checked(std::move(index), check::GlobalRecorder());
    std::printf("history capture enabled (checked(%s))\n",
                flags.tree.c_str());
  }

  // Surface per-shard recovery telemetry (tree.recovery_nanos gauges come
  // from index->Stats() at drain; the worst shard is reported up front).
  if (index->RecoveryNanos() > 0) {
    std::printf("recovery: %.3f ms (slowest shard)\n",
                static_cast<double>(index->RecoveryNanos()) / 1e6);
  }

  net::Server::Options sopts;
  sopts.port = flags.port;
  sopts.host = flags.host;
  sopts.io_threads = flags.threads;
  sopts.drain_grace_ms = flags.drain_grace_ms;
  net::Server server(index.get(), sopts);
  s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  net::InstallDrainOnSignal(&server, SIGTERM);
  net::InstallDrainOnSignal(&server, SIGINT);

  std::printf(
      "fptree_server listening on %s:%u tree=%s threads=%u shards=%zu "
      "pool=%s%s\n",
      flags.host.c_str(), server.port(), flags.tree.c_str(), flags.threads,
      is_sharded_spec ? sharded_n : static_cast<size_t>(flags.shards),
      flags.pool_path.c_str(),
      pool != nullptr && created ? " (created)" : " (recovered)");
  std::printf("READY port=%u\n", server.port());
  std::fflush(stdout);

  server.Join();  // returns once a SIGTERM/SIGINT drain completes
  net::InstallDrainOnSignal(nullptr, SIGTERM);
  net::InstallDrainOnSignal(nullptr, SIGINT);

  // Drain the recorder (discarding the history) so the amortized
  // check.events_captured counter is flushed into the final METRICS_JSON;
  // without this, histories shorter than one ring report 0.
  if (is_checked_spec) (void)check::GlobalRecorder()->Drain();

  std::printf("drained: acked_ops=%llu index_size=%zu\n",
              static_cast<unsigned long long>(server.acked_ops()),
              index->Size());
  std::printf("METRICS_JSON %s\n", obs::GlobalJson("fptree_server").c_str());
  return 0;
}

}  // namespace
}  // namespace fptree

int main(int argc, char** argv) { return fptree::Run(argc, argv); }
