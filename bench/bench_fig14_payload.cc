// Figure 14 (Appendix A): payload (value) size impact, 8 -> 112 bytes.
// Single-threaded trees at an SCM latency of 360 ns, plus the concurrent
// FPTree at full thread width. The paper's findings: the NV-Tree suffers
// most (full linear leaf scans read more data), inserts suffer more than
// reads (larger SCM allocations), and the FPTree/wBTree curves stay flat
// (constant / logarithmic leaf scan costs).

#include <cstdio>
#include <thread>

#include "baselines/nvtree.h"
#include "baselines/wbtree.h"
#include "bench_common.h"
#include "core/fptree.h"
#include "core/fptree_concurrent.h"
#include "core/ptree.h"
#include "util/threading.h"

namespace fptree {
namespace bench {
namespace {

template <size_t N>
struct Payload {
  unsigned char bytes[N];
};

struct OpTimes {
  double find_us, insert_us;
};

template <typename TreeT, typename Value>
OpTimes RunTree(uint64_t n) {
  ScopedPool pool(size_t{4} << 30);
  TreeT tree(pool.get());
  Value v{};
  auto warm = ShuffledRange(n, 5);
  auto extra = ShuffledRange(n, 6);
  for (uint64_t k : warm) tree.Insert(k * 2, v);
  OpTimes t{};
  t.find_us = TimeOps(n, [&](uint64_t i) {
                Value out;
                tree.Find(warm[i] * 2, &out);
              }, "find") /
              1000.0;
  t.insert_us = TimeOps(n, [&](uint64_t i) {
                  tree.Insert(extra[i] * 2 + 1, v);
                }, "insert") /
                1000.0;
  return t;
}

template <size_t N>
void RunRow(uint64_t n) {
  using V = Payload<N>;
  auto fp = RunTree<core::FPTree<V>, V>(n);
  auto pt = RunTree<core::PTree<V>, V>(n);
  auto nv = RunTree<baselines::NVTree<V>, V>(n);
  auto wb = RunTree<baselines::WBTree<V>, V>(n);
  std::printf(
      "%8zu  %7.2f/%-7.2f %7.2f/%-7.2f %7.2f/%-7.2f %7.2f/%-7.2f\n", N,
      fp.find_us, fp.insert_us, pt.find_us, pt.insert_us, nv.find_us,
      nv.insert_us, wb.find_us, wb.insert_us);
}

template <size_t N>
void RunConcurrentRow(uint64_t warm, uint64_t ops, uint32_t threads) {
  using V = Payload<N>;
  ScopedPool pool(size_t{4} << 30);
  core::ConcurrentFPTree<V> tree(pool.get());
  V v{};
  for (uint64_t k = 0; k < warm; ++k) tree.Insert(k, v);
  SpinBarrier barrier(threads + 1);
  ThreadGroup tg;
  uint64_t per_thread = ops / threads;
  tg.Spawn(threads, [&](uint32_t id) {
    Random64 rng(id);
    V val{};
    barrier.Wait();
    for (uint64_t i = 0; i < per_thread; ++i) {
      if (rng.Bernoulli(0.5)) {
        V out;
        tree.Find(rng.Uniform(warm), &out);
      } else {
        tree.Insert(warm + id * per_thread + i, val);
      }
    }
    barrier.Wait();
  });
  barrier.Wait();
  Stopwatch sw;
  barrier.Wait();
  double mops =
      static_cast<double>(per_thread * threads) / sw.ElapsedSeconds() / 1e6;
  tg.Join();
  std::printf("%8zu %10.2f\n", N, mops);
}

}  // namespace
}  // namespace bench
}  // namespace fptree

int main(int argc, char** argv) {
  using namespace fptree;
  using namespace fptree::bench;
  Flags flags = Flags::Parse(argc, argv);
  scm::LatencyModel::Calibrate();
  uint64_t n = flags.quick ? 30000 : flags.keys / 2;

  PrintHeader("Figure 14(a-d): payload-size impact, single-threaded @360ns");
  std::printf("%8s  %15s %15s %15s %15s   [find/insert us]\n", "payload",
              "FPTree", "PTree", "NV-Tree", "wBTree");
  SetLatency(360);
  RunRow<8>(n);
  RunRow<48>(n);
  RunRow<112>(n);
  scm::LatencyModel::Disable();

  PrintHeader("Figure 14(e): payload-size impact, concurrent FPTree (mixed)");
  uint32_t threads =
      flags.threads != 0 ? flags.threads : std::thread::hardware_concurrency();
  std::printf("threads=%u  [Mops/s]\n%8s %10s\n", threads, "payload",
              "Mops/s");
  SetLatency(90);
  RunConcurrentRow<8>(n, n, threads);
  RunConcurrentRow<48>(n, n, threads);
  RunConcurrentRow<112>(n, n, threads);
  scm::LatencyModel::Disable();

  std::printf(
      "\nPaper shape: NV-Tree degrades most with payload size (linear leaf "
      "scans read more);\ninserts degrade more than finds (bigger SCM "
      "allocations); FPTree/wBTree stay nearly flat.\n");
  EmitMetricsJson("fig14_payload");
  return 0;
}
