#include "scm/crash.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "scm/layout.h"

namespace fptree {
namespace scm {

namespace {

struct UndoRecord {
  char* addr;
  std::vector<unsigned char> old_bytes;
};

struct SimState {
  std::mutex mu;
  std::deque<UndoRecord> pending;  // oldest first
  std::unordered_map<std::string, int> armed;  // name -> countdown
  bool recording = false;
  bool tear_mode = false;
  std::vector<std::string> visited;
};

SimState& State() {
  static SimState* s = new SimState();
  return *s;
}

}  // namespace

void CrashSim::Enable() {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  enabled_flag_ = true;
}

void CrashSim::Disable() {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  enabled_flag_ = false;
  s.pending.clear();
  s.armed.clear();
  s.recording = false;
  s.visited.clear();
}

void CrashSim::LogStore(void* addr, size_t n) {
  if (n == 0) return;
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  UndoRecord rec;
  rec.addr = static_cast<char*>(addr);
  rec.old_bytes.resize(n);
  std::memcpy(rec.old_bytes.data(), addr, n);
  s.pending.push_back(std::move(rec));
}

void CrashSim::NotifyPersist(const void* addr, size_t n) {
  if (n == 0) return;
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  // Flushing is cache-line granular: everything within the covered lines
  // becomes durable.
  uintptr_t lo = reinterpret_cast<uintptr_t>(addr) & ~(kCacheLineSize - 1);
  uintptr_t hi = (reinterpret_cast<uintptr_t>(addr) + n + kCacheLineSize - 1) &
                 ~(kCacheLineSize - 1);
  std::deque<UndoRecord> kept;
  for (auto& rec : s.pending) {
    uintptr_t b = reinterpret_cast<uintptr_t>(rec.addr);
    uintptr_t e = b + rec.old_bytes.size();
    if (e <= lo || b >= hi) {
      kept.push_back(std::move(rec));  // untouched
      continue;
    }
    // Keep only the portions outside the flushed line range. A record can
    // straddle the range start and/or end; split accordingly.
    if (b < lo) {
      UndoRecord head;
      head.addr = rec.addr;
      head.old_bytes.assign(rec.old_bytes.begin(),
                            rec.old_bytes.begin() + (lo - b));
      kept.push_back(std::move(head));
    }
    if (e > hi) {
      UndoRecord tail;
      tail.addr = rec.addr + (hi - b);
      tail.old_bytes.assign(rec.old_bytes.begin() + (hi - b),
                            rec.old_bytes.end());
      kept.push_back(std::move(tail));
    }
    // Fully covered portion is durable: dropped.
  }
  s.pending = std::move(kept);
}

void CrashSim::SimulateCrash() {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  bool tore = false;
  // Revert newest first so overlapping stores unwind to the original bytes.
  for (auto it = s.pending.rbegin(); it != s.pending.rend(); ++it) {
    size_t n = it->old_bytes.size();
    size_t keep = 0;
    if (s.tear_mode && !tore && n > kPAtomicSize) {
      // Partial write: a durable prefix of whole 8-byte words survives.
      uintptr_t a = reinterpret_cast<uintptr_t>(it->addr);
      size_t first_word = (kPAtomicSize - (a % kPAtomicSize)) % kPAtomicSize;
      keep = first_word + ((n - first_word) / kPAtomicSize / 2) * kPAtomicSize;
      tore = true;
    }
    std::memcpy(it->addr + keep, it->old_bytes.data() + keep, n - keep);
  }
  s.pending.clear();
  s.armed.clear();
}

void CrashSim::CommitAll() {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  s.pending.clear();
}

size_t CrashSim::PendingRecords() {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  return s.pending.size();
}

void CrashSim::SetTearMode(bool on) {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  s.tear_mode = on;
}

void CrashSim::ArmCrashPoint(const std::string& name, int countdown) {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  s.armed[name] = countdown;
}

void CrashSim::DisarmAll() {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  s.armed.clear();
}

void CrashSim::Point(const char* name) {
  auto& s = State();
  std::unique_lock<std::mutex> l(s.mu);
  if (s.recording) s.visited.emplace_back(name);
  auto it = s.armed.find(name);
  if (it != s.armed.end()) {
    if (--it->second <= 0) {
      s.armed.erase(it);
      l.unlock();
      throw CrashException(name);
    }
  }
}

void CrashSim::StartRecordingPoints() {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  s.recording = true;
  s.visited.clear();
}

std::vector<std::string> CrashSim::StopRecordingPoints() {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  s.recording = false;
  return std::move(s.visited);
}

}  // namespace scm
}  // namespace fptree
