// Network serving layer (DESIGN.md §9): codec round-trips, server
// integration over real sockets — pipelining, malformed-frame handling,
// write backpressure against a non-reading peer, and graceful drain
// (BeginDrain == the SIGTERM path) with zero lost acked writes.

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "fault/fault.h"
#include "index/kv_index.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "scm/latency.h"
#include "scm/pool.h"
#include "util/threading.h"
#include "util/timer.h"

namespace fptree {
namespace net {
namespace {

using scm::Pool;

std::string TestPath(const std::string& name) {
  return "/tmp/fptree_test_" + std::to_string(::getpid()) + "_" + name;
}

// ---------------- protocol codec ---------------------------------------------

TEST(ProtocolTest, RequestRoundTrip) {
  std::string buf;
  EncodePut(&buf, "alpha", 7);
  EncodeGet(&buf, "beta");
  EncodeDel(&buf, "gamma");
  EncodeScan(&buf, "delta", 32);

  Request req;
  size_t consumed = 0, off = 0;
  ASSERT_EQ(DecodeRequest(buf.data(), buf.size(), &req, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(req.op, Op::kPut);
  EXPECT_EQ(req.key, "alpha");
  EXPECT_EQ(req.value, 7u);
  off += consumed;
  ASSERT_EQ(DecodeRequest(buf.data() + off, buf.size() - off, &req, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(req.op, Op::kGet);
  EXPECT_EQ(req.key, "beta");
  off += consumed;
  ASSERT_EQ(DecodeRequest(buf.data() + off, buf.size() - off, &req, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(req.op, Op::kDel);
  off += consumed;
  ASSERT_EQ(DecodeRequest(buf.data() + off, buf.size() - off, &req, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(req.op, Op::kScan);
  EXPECT_EQ(req.key, "delta");
  EXPECT_EQ(req.scan_limit, 32u);
  off += consumed;
  EXPECT_EQ(off, buf.size());
}

TEST(ProtocolTest, PartialFramesNeedMore) {
  std::string buf;
  EncodePut(&buf, "key", 1);
  Request req;
  size_t consumed = 0;
  for (size_t len = 0; len < buf.size(); ++len) {
    EXPECT_EQ(DecodeRequest(buf.data(), len, &req, &consumed),
              DecodeStatus::kNeedMore)
        << len;
  }
  EXPECT_EQ(DecodeRequest(buf.data(), buf.size(), &req, &consumed),
            DecodeStatus::kOk);
}

TEST(ProtocolTest, MalformedFramesError) {
  Request req;
  size_t consumed = 0;
  // Oversized body.
  std::string buf;
  PutU32(&buf, static_cast<uint32_t>(kMaxFrameBody + 1));
  buf.append(8, 'x');
  EXPECT_EQ(DecodeRequest(buf.data(), buf.size(), &req, &consumed),
            DecodeStatus::kError);
  // Unknown opcode.
  buf.clear();
  PutU32(&buf, 1 + 4);
  buf.push_back(42);
  PutU32(&buf, 0);
  EXPECT_EQ(DecodeRequest(buf.data(), buf.size(), &req, &consumed),
            DecodeStatus::kError);
  // Key length overruns the body.
  buf.clear();
  PutU32(&buf, 1 + 4);
  buf.push_back(static_cast<char>(Op::kGet));
  PutU32(&buf, 100);
  EXPECT_EQ(DecodeRequest(buf.data(), buf.size(), &req, &consumed),
            DecodeStatus::kError);
}

TEST(ProtocolTest, ResponseRoundTrip) {
  std::string buf;
  EncodeStatusResponse(&buf, RespStatus::kNotFound);
  EncodeValueResponse(&buf, 99);
  std::vector<std::pair<std::string, uint64_t>> rows = {{"a", 1}, {"bb", 2}};
  EncodeScanResponse(&buf, rows);
  EncodeScanResponse(&buf, {});

  Response resp;
  size_t consumed = 0, off = 0;
  ASSERT_EQ(DecodeResponse(buf.data(), buf.size(), &resp, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(resp.status, RespStatus::kNotFound);
  off += consumed;
  ASSERT_EQ(
      DecodeResponse(buf.data() + off, buf.size() - off, &resp, &consumed),
      DecodeStatus::kOk);
  EXPECT_EQ(resp.status, RespStatus::kOk);
  EXPECT_EQ(resp.value, 99u);
  off += consumed;
  ASSERT_EQ(
      DecodeResponse(buf.data() + off, buf.size() - off, &resp, &consumed),
      DecodeStatus::kOk);
  ASSERT_EQ(resp.scan.size(), 2u);
  EXPECT_EQ(resp.scan[0].first, "a");
  EXPECT_EQ(resp.scan[1].second, 2u);
  off += consumed;
  ASSERT_EQ(
      DecodeResponse(buf.data() + off, buf.size() - off, &resp, &consumed),
      DecodeStatus::kOk);
  EXPECT_TRUE(resp.scan.empty());
  EXPECT_EQ(off + consumed, buf.size());
}

// ---------------- server integration -----------------------------------------

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scm::LatencyModel::Disable();
    path_ = TestPath("net");
    Pool::Destroy(path_).ok();
    Pool::Options opts{.size = 256u << 20, .randomize_base = true};
    ASSERT_TRUE(Pool::Create(path_, 1, opts, &pool_).ok());
    index_ = index::MakeVarIndex("fptree-c-var", pool_.get(), true);
    ASSERT_NE(index_, nullptr);
  }
  void TearDown() override {
    server_.reset();
    index_.reset();
    pool_.reset();
    Pool::Destroy(path_).ok();
  }

  void StartServer(Server::Options opts = {}) {
    // Tests shut down with clients still connected; don't sit out the full
    // production grace period waiting for their EOF.
    opts.drain_grace_ms = 500;
    server_ = std::make_unique<Server>(index_.get(), opts);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  std::string path_;
  std::unique_ptr<Pool> pool_;
  std::unique_ptr<index::VarIndex> index_;
  std::unique_ptr<Server> server_;
};

TEST_F(NetServerTest, BasicOpsOverSocket) {
  StartServer();
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(c.Put("user:1", 41).ok());
  ASSERT_TRUE(c.Put("user:1", 42).ok());  // upsert overwrites
  uint64_t v = 0;
  bool found = false;
  ASSERT_TRUE(c.Get("user:1", &v, &found).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(v, 42u);
  ASSERT_TRUE(c.Get("user:2", &v, &found).ok());
  EXPECT_FALSE(found);
  ASSERT_TRUE(c.Del("user:1", &found).ok());
  EXPECT_TRUE(found);
  ASSERT_TRUE(c.Del("user:1", &found).ok());
  EXPECT_FALSE(found);
  server_->Shutdown();
}

TEST_F(NetServerTest, ScanOverSocketIsSortedFromStart) {
  StartServer();
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  for (int i = 0; i < 100; ++i) {
    char key[8];
    std::snprintf(key, sizeof(key), "k%03d", i);
    ASSERT_TRUE(c.Put(key, i).ok());
  }
  std::vector<std::pair<std::string, uint64_t>> rows;
  ASSERT_TRUE(c.Scan("k050", 10, &rows).ok());
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows[0].first, "k050");
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].first, rows[i].first);
  }
  server_->Shutdown();
}

TEST_F(NetServerTest, PipelinedBatchKeepsRequestOrder) {
  StartServer();
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  // One burst: 500 PUTs then 500 GETs, all written before any read.
  constexpr int kN = 500;
  for (int i = 0; i < kN; ++i) {
    c.QueuePut("p" + std::to_string(i), i * 3);
  }
  for (int i = 0; i < kN; ++i) {
    c.QueueGet("p" + std::to_string(i));
  }
  ASSERT_TRUE(c.Flush().ok());
  Response resp;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(c.ReadResponse(&resp).ok());
    EXPECT_EQ(resp.status, RespStatus::kOk) << "PUT " << i;
  }
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(c.ReadResponse(&resp).ok());
    ASSERT_EQ(resp.status, RespStatus::kOk) << "GET " << i;
    // In-order responses: the i-th GET response carries the i-th value.
    EXPECT_EQ(resp.value, static_cast<uint64_t>(i) * 3);
  }
  EXPECT_EQ(c.inflight(), 0u);
  server_->Shutdown();
  EXPECT_GE(server_->acked_ops(), 2u * kN);
}

TEST_F(NetServerTest, ManyConcurrentPipelinedConnections) {
  Server::Options opts;
  opts.io_threads = 4;
  StartServer(opts);
  constexpr uint32_t kConns = 64;
  constexpr int kOpsPerConn = 200;
  std::atomic<uint32_t> ok{0};
  ThreadGroup tg;
  tg.Spawn(kConns, [&](uint32_t id) {
    Client c;
    if (!c.Connect("127.0.0.1", server_->port()).ok()) return;
    for (int i = 0; i < kOpsPerConn; ++i) {
      c.QueuePut("c" + std::to_string(id) + "-" + std::to_string(i), id);
    }
    if (!c.Flush().ok()) return;
    Response resp;
    for (int i = 0; i < kOpsPerConn; ++i) {
      if (!c.ReadResponse(&resp).ok()) return;
      if (resp.status != RespStatus::kOk) return;
    }
    ok.fetch_add(1);
  });
  tg.Join();
  EXPECT_EQ(ok.load(), kConns);
  EXPECT_EQ(index_->Size(), kConns * kOpsPerConn);
  server_->Shutdown();
}

TEST_F(NetServerTest, MalformedFrameGetsBadRequestThenClose) {
  StartServer();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string garbage;
  PutU32(&garbage, 1 + 4);
  garbage.push_back(99);  // unknown opcode
  PutU32(&garbage, 0);
  ASSERT_EQ(::write(fd, garbage.data(), garbage.size()),
            static_cast<ssize_t>(garbage.size()));
  // Expect exactly one BAD_REQUEST response, then EOF.
  std::string got;
  char buf[64];
  for (;;) {
    ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r <= 0) break;
    got.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  Response resp;
  size_t consumed = 0;
  ASSERT_EQ(DecodeResponse(got.data(), got.size(), &resp, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(resp.status, RespStatus::kBadRequest);
  EXPECT_EQ(consumed, got.size());
  server_->Shutdown();
}

TEST_F(NetServerTest, BackpressureBoundsOutputQueue) {
  Server::Options opts;
  opts.io_threads = 1;
  opts.max_output_bytes = 64 * 1024;
  opts.resume_output_bytes = 16 * 1024;
  // Cap the kernel send buffer so the userspace queue bound is what bites:
  // with autotuning the kernel can absorb several MB of responses and the
  // flooder below would never stall (seen under the sanitizers, where the
  // slowed server trickles into an always-draining kernel buffer).
  opts.sndbuf_bytes = 32 * 1024;
  StartServer(opts);
  Client setup;
  ASSERT_TRUE(setup.Connect("127.0.0.1", server_->port()).ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(setup.Put("bp" + std::to_string(1000 + i), i).ok());
  }

  // A client that fires thousands of SCANs (big responses) without reading:
  // the server must park the connection at the output bound instead of
  // buffering the whole response stream.
  Client flooder;
  ASSERT_TRUE(flooder.Connect("127.0.0.1", server_->port()).ok());
  constexpr int kScans = 1200;
  for (int i = 0; i < kScans; ++i) {
    flooder.QueueScan("bp", 200);
  }
  ASSERT_TRUE(flooder.Flush().ok());
  // Let the server chew while the flooder reads nothing.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  uint64_t stalls = obs::MetricsRegistry::Global()
                        .GetCounter("net.backpressure_stalls")
                        ->value();
  EXPECT_GT(stalls, 0u) << "output queue never hit the bound";
  // Now drain everything; every response must still arrive, in order.
  Response resp;
  for (int i = 0; i < kScans; ++i) {
    ASSERT_TRUE(flooder.ReadResponse(&resp).ok()) << i;
    ASSERT_EQ(resp.status, RespStatus::kOk);
    ASSERT_EQ(resp.scan.size(), 200u) << i;
  }
  EXPECT_EQ(flooder.inflight(), 0u);
  server_->Shutdown();
}

TEST_F(NetServerTest, DrainFlushesAckedWritesAndRefusesNewConnections) {
  Server::Options opts;
  opts.io_threads = 2;
  StartServer(opts);

  // Writers keep pipelining PUTs; every response they manage to read is an
  // acked write that must survive the drain.
  constexpr uint32_t kWriters = 4;
  std::atomic<uint64_t> acked_puts{0};
  std::atomic<bool> begin_drain{false};
  ThreadGroup tg;
  tg.Spawn(kWriters, [&](uint32_t id) {
    Client c;
    if (!c.Connect("127.0.0.1", server_->port()).ok()) return;
    Response resp;
    for (uint64_t i = 0;; ++i) {
      c.QueuePut("d" + std::to_string(id) + "-" + std::to_string(i), i);
      if (!c.Flush().ok()) break;
      if (!c.ReadResponse(&resp).ok()) break;
      if (resp.status != RespStatus::kOk) break;
      acked_puts.fetch_add(1);
      if (i == 300 && id == 0) begin_drain.store(true);
    }
  });
  while (!begin_drain.load()) std::this_thread::yield();
  server_->BeginDrain();  // what the SIGTERM handler runs
  tg.Join();
  server_->Join();

  // Drained server refuses new connections.
  Client late;
  Status s = late.Connect("127.0.0.1", server_->port());
  if (s.ok()) {
    // Connect may win a race with listener teardown; the socket still
    // must be dead.
    EXPECT_FALSE(late.Put("late", 1).ok());
  }

  // Zero lost acked writes: every PUT whose response a client read is in
  // the index.
  EXPECT_GT(acked_puts.load(), 300u);
  EXPECT_GE(server_->acked_ops(), acked_puts.load());
  uint64_t resident = 0;
  for (uint32_t id = 0; id < kWriters; ++id) {
    for (uint64_t i = 0;; ++i) {
      uint64_t v;
      if (!index_->Find("d" + std::to_string(id) + "-" + std::to_string(i),
                        &v)) {
        break;
      }
      ++resident;
    }
  }
  EXPECT_GE(resident, acked_puts.load());
}

TEST_F(NetServerTest, ConnectionGaugeTracksLiveConnections) {
  StartServer();
  EXPECT_EQ(server_->connections(), 0u);
  Client a, b;
  ASSERT_TRUE(a.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(b.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(a.Put("x", 1).ok());
  ASSERT_TRUE(b.Put("y", 2).ok());
  EXPECT_EQ(server_->connections(), 2u);
  a.Close();
  Stopwatch sw;
  while (server_->connections() != 1u && sw.ElapsedSeconds() < 5.0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(server_->connections(), 1u);
  server_->Shutdown();
  EXPECT_EQ(server_->connections(), 0u);
}

// ---------------- fault injection & graceful degradation ---------------------
// DESIGN.md §12: client deadlines instead of block-forever reads, bounded
// retry with backoff against injected connection drops, and NO_SPACE
// degradation where writes fail but the same connection keeps serving
// reads and deletes.

class NetFaultTest : public NetServerTest {
 protected:
  void SetUp() override {
    NetServerTest::SetUp();
    fault::FaultInjector::Instance().DisarmAll();
    fault::FaultInjector::Instance().SetSeed(0xBADF00D);
  }
  void TearDown() override {
    fault::FaultInjector::Instance().DisarmAll();
    NetServerTest::TearDown();
  }
};

TEST(RetryPolicyTest, BackoffIsBoundedAndDeterministic) {
  RetryPolicy p{.max_attempts = 8,
                .base_backoff_ms = 10,
                .max_backoff_ms = 80,
                .seed = 42};
  for (uint32_t a = 0; a < 8; ++a) {
    uint64_t cap = std::min<uint64_t>(uint64_t{10} << a, 80);
    uint64_t ms = BackoffMs(p, a);
    EXPECT_GE(ms, cap / 2) << "attempt " << a;
    EXPECT_LE(ms, cap) << "attempt " << a;
    EXPECT_EQ(ms, BackoffMs(p, a)) << "jitter must be seed-deterministic";
  }
  RetryPolicy q = p;
  q.seed = 43;
  bool any_different = false;
  for (uint32_t a = 0; a < 8; ++a) {
    any_different |= BackoffMs(q, a) != BackoffMs(p, a);
  }
  EXPECT_TRUE(any_different);
}

TEST(ClientDeadlineTest, ReadDeadlineExpiresInsteadOfHanging) {
  // A listener whose backlog completes handshakes but which never reads or
  // answers: the old client would block in recv() forever.
  int lfd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 8), 0);
  socklen_t alen = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen), 0);

  Client c;
  c.set_deadline_ms(150);
  ASSERT_TRUE(c.Connect("127.0.0.1", ntohs(addr.sin_port)).ok());
  uint64_t v = 0;
  bool found = false;
  Stopwatch sw;
  Status s = c.Get("never-answered", &v, &found);
  EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
  EXPECT_GE(sw.ElapsedSeconds(), 0.1);
  EXPECT_LT(sw.ElapsedSeconds(), 5.0) << "deadline wildly overshot";
  ::close(lfd);
}

TEST_F(NetFaultTest, ConnectDeadlineAndRetryAgainstDeadPort) {
  // Find a port with no listener behind it.
  int probe = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t alen = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &alen),
            0);
  uint16_t dead_port = ntohs(addr.sin_port);
  ::close(probe);  // bound but never listened: connects are refused

  Client c;
  c.set_deadline_ms(250);
  RetryPolicy policy{.max_attempts = 3,
                     .base_backoff_ms = 1,
                     .max_backoff_ms = 4,
                     .seed = 7};
  Status s = c.ConnectWithRetry("127.0.0.1", dead_port, policy);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(c.connected());
}

TEST_F(NetFaultTest, GetWithRetrySurvivesDroppedConnections) {
  StartServer();
  auto& fi = fault::FaultInjector::Instance();
  // Prime a key over a connection accepted before the faults are armed.
  {
    Client seed;
    ASSERT_TRUE(seed.Connect("127.0.0.1", server_->port()).ok());
    ASSERT_TRUE(seed.Put("sturdy", 99).ok());
  }
  // The server drops the next 3 accepted connections on the floor.
  fi.Arm("net.accept.drop",
         fault::FaultSpec{.every = 1, .max_fires = 3});
  Client c;
  c.set_deadline_ms(2000);
  // TCP-level connect succeeds even for a to-be-dropped connection (the
  // handshake finishes in the backlog); the drop surfaces on the first op.
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  uint64_t v = 0;
  bool found = false;
  RetryPolicy policy{.max_attempts = 8,
                     .base_backoff_ms = 2,
                     .max_backoff_ms = 20,
                     .seed = 11};
  Status s = c.GetWithRetry("sturdy", &v, &found, policy);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(found);
  EXPECT_EQ(v, 99u);
  EXPECT_EQ(fi.Fires("net.accept.drop"), 3u)
      << "vacuous run: the drops never happened";
  server_->Shutdown();
}

TEST_F(NetFaultTest, NoSpacePutDegradesWhileReadsKeepWorking) {
  StartServer();
  auto& fi = fault::FaultInjector::Instance();
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(c.Put("kept", 7).ok());
  // From here every SCM allocation fails: the var-key index cannot stage
  // any new key blob, so writes degrade to NO_SPACE.
  fi.Arm("scm.alloc.oom", fault::FaultSpec{.every = 1});
  Status s = c.Put("doomed", 1);
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  bool inserted = false;
  s = c.Upsert("doomed2", 2, &inserted);
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  // Same connection: reads, scans and deletes still succeed.
  uint64_t v = 0;
  bool found = false;
  ASSERT_TRUE(c.Get("kept", &v, &found).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(v, 7u);
  ASSERT_TRUE(c.Get("doomed", &v, &found).ok());
  EXPECT_FALSE(found) << "a NO_SPACE write must not be applied";
  std::vector<std::pair<std::string, uint64_t>> rows;
  ASSERT_TRUE(c.Scan("", 10, &rows).ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].first, "kept");
  ASSERT_TRUE(c.Del("kept", &found).ok());
  EXPECT_TRUE(found);
  EXPECT_GE(fi.Fires("scm.alloc.oom"), 1u);
  // Space "returns": the same connection resumes absorbing writes.
  fi.DisarmAll();
  ASSERT_TRUE(c.Put("doomed", 1).ok());
  ASSERT_TRUE(c.Get("doomed", &v, &found).ok());
  EXPECT_TRUE(found);
  server_->Shutdown();
}

TEST_F(NetFaultTest, MputNoSpaceAppliesStrictPrefix) {
  StartServer();
  auto& fi = fault::FaultInjector::Instance();
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  // Fail the 4th allocation: with one key-blob allocation per fresh MPUT
  // key, a strict prefix of the batch lands before the failure.
  fi.Arm("scm.alloc.oom", fault::FaultSpec{.after = 3, .every = 1});
  std::vector<std::string> keys;
  std::vector<std::string_view> views;
  std::vector<uint64_t> vals;
  for (int i = 0; i < 8; ++i) {
    keys.push_back("mp" + std::to_string(i));
    vals.push_back(100 + i);
  }
  for (const auto& k : keys) views.push_back(k);
  Status s = c.Mput(views.data(), vals.data(), views.size(), nullptr);
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  EXPECT_GE(fi.Fires("scm.alloc.oom"), 1u);
  fi.DisarmAll();
  // The applied keys form a strict input prefix: once a key is missing,
  // every later key must be missing too.
  bool seen_missing = false;
  for (const auto& k : keys) {
    uint64_t v = 0;
    bool found = false;
    ASSERT_TRUE(c.Get(k, &v, &found).ok());
    if (!found) seen_missing = true;
    EXPECT_FALSE(found && seen_missing)
        << "key " << k << " applied after an earlier key failed";
  }
  EXPECT_TRUE(seen_missing) << "the injected failure applied every key";
  server_->Shutdown();
}

TEST_F(NetFaultTest, InjectedWriteFaultsDontLoseAckedData) {
  StartServer();
  auto& fi = fault::FaultInjector::Instance();
  // Sprinkle transport chaos: occasional fatal read/write errors, short
  // writes, and stalls. Acked writes must survive; failed connections just
  // reconnect.
  fi.Arm("net.read.err", fault::FaultSpec{.probability = 0.02});
  fi.Arm("net.write.err", fault::FaultSpec{.probability = 0.02});
  fi.Arm("net.write.partial", fault::FaultSpec{.probability = 0.2});
  fi.Arm("net.stall", fault::FaultSpec{.probability = 0.1, .max_fires = 50});
  std::vector<std::string> acked;
  Client c;
  c.set_deadline_ms(2000);
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  for (int i = 0; i < 400; ++i) {
    std::string key = "chaos" + std::to_string(i);
    Status s = c.Put(key, uint64_t(i));
    if (s.ok()) {
      acked.push_back(key);
    } else {
      // Transport failure: reconnect and continue. The write may or may
      // not have been applied (it was never acked, so either is legal).
      c.Close();
      ASSERT_TRUE(c.ConnectWithRetry("127.0.0.1", server_->port(),
                                     RetryPolicy{.max_attempts = 5,
                                                 .base_backoff_ms = 1,
                                                 .max_backoff_ms = 8,
                                                 .seed = 3})
                      .ok());
    }
  }
  uint64_t injected = fi.Fires("net.read.err") + fi.Fires("net.write.err") +
                      fi.Fires("net.write.partial") + fi.Fires("net.stall");
  EXPECT_GE(injected, 1u) << "vacuous chaos run";
  fi.DisarmAll();
  Client verify;
  ASSERT_TRUE(verify.Connect("127.0.0.1", server_->port()).ok());
  for (const std::string& key : acked) {
    uint64_t v = 0;
    bool found = false;
    ASSERT_TRUE(verify.Get(key, &v, &found).ok());
    EXPECT_TRUE(found) << "acked write " << key << " lost";
  }
  server_->Shutdown();
}

}  // namespace
}  // namespace net
}  // namespace fptree
