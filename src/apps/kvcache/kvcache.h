// Copyright (c) FPTree reproduction authors.
//
// A memcached-like key-value cache (paper §6.4 "Memcached experiments").
// As in the paper's modification of memcached, the internal hash table is
// replaced by a pluggable index (any of the evaluated trees, via
// index::VarIndex), full string keys are inserted (not their hashes, to
// avoid collisions), and non-concurrent trees are driven through a global
// lock while concurrent ones service requests in parallel.
//
// Substitution (DESIGN.md): the paper measures over a 940 Mbit/s network
// and finds the concurrent trees network-bound. We reproduce the ceiling
// with a global token-bucket rate limiter charging a configurable
// per-request wire cost: concurrent trees saturate the "network" while
// single-threaded trees bottleneck on the index, which is the published
// effect.

#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "index/kv_index.h"
#include "obs/metrics.h"
#include "scm/latency.h"
#include "util/timer.h"

namespace fptree {
namespace apps {

/// \brief Global request rate limiter modeling a shared network link.
class NetworkThrottle {
 public:
  /// \param per_request_ns wire time of one request; 0 disables the model.
  explicit NetworkThrottle(uint64_t per_request_ns)
      : per_request_ns_(per_request_ns), next_slot_(0) {}

  /// Blocks (spins) until the link has capacity for one more request.
  void Admit() {
    if (per_request_ns_ == 0) return;
    uint64_t now = NowNanos();
    uint64_t slot = next_slot_.fetch_add(per_request_ns_,
                                         std::memory_order_relaxed);
    if (slot > now) {
      scm::LatencyModel::SpinFor(slot - now);
    } else if (slot + (per_request_ns_ << 8) < now) {
      // Link idle for a while: let the bucket catch up to wall-clock.
      uint64_t expected = slot + per_request_ns_;
      next_slot_.compare_exchange_strong(expected, now,
                                         std::memory_order_relaxed);
    }
  }

 private:
  const uint64_t per_request_ns_;
  std::atomic<uint64_t> next_slot_;
};

/// \brief Cache statistics.
struct CacheStats {
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> get_hits{0};
  std::atomic<uint64_t> sets{0};
  std::atomic<uint64_t> evictions{0};
};

/// \brief The cache: pluggable index + sharded LRU bookkeeping.
///
/// Values are opaque 8-byte handles (a real memcached stores item blobs;
/// the paper's evaluation measures index cost, which handles preserve).
class KVCache {
 public:
  struct Options {
    /// Maximum resident items before LRU eviction (0 = unbounded, as in
    /// the paper's benchmark where the cache never fills).
    size_t capacity = 0;
    /// Per-request wire cost for the network model (0 = off).
    uint64_t network_ns_per_request = 0;
    /// Dump a metrics JSON line to stderr every N requests (0 = off).
    uint64_t metrics_dump_every = 0;
  };

  KVCache(std::unique_ptr<index::VarIndex> idx, const Options& options)
      : options_(options),
        index_(std::move(idx)),
        throttle_(options.network_ns_per_request) {}

  /// memcached SET: insert or overwrite. Both paths go through the LRU
  /// tracker: a re-Put must refresh recency, and TrackAndMaybeEvict's
  /// find-first discipline guarantees it never double-counts a key that is
  /// already resident (the residency audit that motivated the fix: a
  /// second list node per key would inflate `order.size()` against the
  /// true resident count and trigger premature eviction).
  void Set(std::string_view key, uint64_t value) {
    throttle_.Admit();
    MaybeDumpMetrics();
    stats_.sets.fetch_add(1, std::memory_order_relaxed);
    index_->Upsert(key, value);
    if (options_.capacity != 0) {
      TrackAndMaybeEvict(key);
    }
  }

  /// memcached GET.
  bool Get(std::string_view key, uint64_t* value) {
    throttle_.Admit();
    MaybeDumpMetrics();
    stats_.gets.fetch_add(1, std::memory_order_relaxed);
    bool hit = index_->Find(key, value);
    if (hit) stats_.get_hits.fetch_add(1, std::memory_order_relaxed);
    return hit;
  }

  /// memcached multi-key GET ("get k1 k2 ..."): one wire request fetching
  /// n keys, routed through the index's batch path (interleaved prefetched
  /// descents / per-shard fan-out). One Admit() charges a single request's
  /// wire cost — that is the point of the memcached multi-get protocol:
  /// the per-request network overhead amortizes over the batch. values[i]
  /// is untouched when found[i] == 0. Returns the hit count.
  size_t MultiGet(const std::string_view* keys, size_t n, uint64_t* values,
                  uint8_t* found) {
    throttle_.Admit();
    MaybeDumpMetrics();
    stats_.gets.fetch_add(n, std::memory_order_relaxed);
    index_->MultiGet(keys, n, values, found);
    size_t hits = 0;
    for (size_t i = 0; i < n; ++i) hits += found[i] != 0;
    if (hits > 0) stats_.get_hits.fetch_add(hits, std::memory_order_relaxed);
    return hits;
  }

  /// memcached DELETE. The key must leave the LRU tracker too: a stale
  /// entry would keep counting against the shard's capacity after the item
  /// is gone, inflating residency and evicting live items early.
  bool Delete(std::string_view key) {
    throttle_.Admit();
    if (options_.capacity != 0) {
      Untrack(key);
    }
    return index_->Erase(key);
  }

  /// Shard count of the LRU tracker. Public so tests can model the exact
  /// per-shard capacity slicing and eviction order.
  static constexpr size_t kLruShards = 16;

  size_t ItemCount() const { return index_->Size(); }
  CacheStats& stats() { return stats_; }
  index::VarIndex* index() { return index_.get(); }

  /// Cache-level metrics snapshot: index telemetry plus request counters.
  obs::Snapshot Metrics() const {
    obs::Snapshot snap = index_->Stats();
    snap.counters["cache.gets"] = stats_.gets.load(std::memory_order_relaxed);
    snap.counters["cache.get_hits"] =
        stats_.get_hits.load(std::memory_order_relaxed);
    snap.counters["cache.sets"] = stats_.sets.load(std::memory_order_relaxed);
    snap.counters["cache.evictions"] =
        stats_.evictions.load(std::memory_order_relaxed);
    snap.gauges["cache.items"] = index_->Size();
    return snap;
  }

  std::string MetricsJson() const { return Metrics().ToJson("kvcache"); }

 private:
  /// Periodic observability dump (Options::metrics_dump_every). A single
  /// thread wins the modulo race and serializes; lost updates in the
  /// request counter only shift a dump boundary by a few requests.
  void MaybeDumpMetrics() {
    if (options_.metrics_dump_every == 0) return;
    uint64_t n = requests_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n % options_.metrics_dump_every == 0) {
      std::fprintf(stderr, "METRICS_JSON %s\n", MetricsJson().c_str());
    }
  }

  struct LruShard {
    std::mutex mu;
    std::list<std::string> order;  // front = most recent
    std::unordered_map<std::string, std::list<std::string>::iterator> pos;
  };

  /// Records `key` as most-recently-used in its shard and evicts the
  /// shard's LRU tail once the shard exceeds its capacity slice. A key
  /// already resident is spliced to the front — never re-inserted — so
  /// re-Puts cannot double-count residency, and `shard.order.size()`
  /// always equals the number of distinct tracked keys.
  void TrackAndMaybeEvict(std::string_view key) {
    LruShard& shard = shards_[HashBytes(key.data(), key.size()) % kLruShards];
    std::string victim;
    {
      std::lock_guard<std::mutex> l(shard.mu);
      auto it = shard.pos.find(std::string(key));
      if (it != shard.pos.end()) {
        shard.order.splice(shard.order.begin(), shard.order, it->second);
      } else {
        shard.order.emplace_front(key);
        shard.pos[std::string(key)] = shard.order.begin();
      }
      if (shard.order.size() > options_.capacity / kLruShards &&
          shard.order.size() > 1) {
        victim = shard.order.back();
        shard.pos.erase(victim);
        shard.order.pop_back();
      }
    }
    if (!victim.empty()) {
      if (index_->Erase(victim)) {
        stats_.evictions.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  /// Drops `key` from its shard's LRU bookkeeping (explicit Delete).
  void Untrack(std::string_view key) {
    LruShard& shard = shards_[HashBytes(key.data(), key.size()) % kLruShards];
    std::lock_guard<std::mutex> l(shard.mu);
    auto it = shard.pos.find(std::string(key));
    if (it != shard.pos.end()) {
      shard.order.erase(it->second);
      shard.pos.erase(it);
    }
  }

  Options options_;
  std::unique_ptr<index::VarIndex> index_;
  NetworkThrottle throttle_;
  CacheStats stats_;
  std::atomic<uint64_t> requests_{0};
  LruShard shards_[kLruShards];
};

}  // namespace apps
}  // namespace fptree
