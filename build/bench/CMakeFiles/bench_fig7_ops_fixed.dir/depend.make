# Empty dependencies file for bench_fig7_ops_fixed.
# This may be replaced when dependencies are built.
