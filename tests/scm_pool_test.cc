// Pool lifecycle, persistent-pointer resolution, and remap-at-new-base
// behaviour (paper §2, "Data recovery").

#include "scm/pool.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>

#include "scm/alloc.h"
#include "scm/latency.h"
#include "scm/pmem.h"

namespace fptree {
namespace scm {
namespace {

std::string TestPath(const std::string& name) {
  return "/tmp/fptree_test_" + std::to_string(::getpid()) + "_" + name;
}

class PoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LatencyModel::Disable();
    path_ = TestPath("pool");
    Pool::Destroy(path_).ok();
  }
  void TearDown() override { Pool::Destroy(path_).ok(); }

  std::string path_;
  Pool::Options opts_{.size = 8u << 20, .randomize_base = true};
};

TEST_F(PoolTest, CreateFormatsHeader) {
  std::unique_ptr<Pool> pool;
  ASSERT_TRUE(Pool::Create(path_, 1, opts_, &pool).ok());
  EXPECT_EQ(pool->id(), 1u);
  EXPECT_EQ(pool->size(), opts_.size);
  EXPECT_EQ(pool->header()->magic, PoolHeader::kMagic);
  EXPECT_FALSE(pool->root_initialized());
  EXPECT_TRUE(pool->root().IsNull());
}

TEST_F(PoolTest, CreateFailsIfExists) {
  std::unique_ptr<Pool> pool;
  ASSERT_TRUE(Pool::Create(path_, 1, opts_, &pool).ok());
  pool.reset();
  std::unique_ptr<Pool> again;
  EXPECT_FALSE(Pool::Create(path_, 1, opts_, &again).ok());
}

TEST_F(PoolTest, RejectsInvalidPoolId) {
  std::unique_ptr<Pool> pool;
  EXPECT_FALSE(Pool::Create(path_, 0, opts_, &pool).ok());
  EXPECT_FALSE(Pool::Create(path_, kMaxPools, opts_, &pool).ok());
}

TEST_F(PoolTest, RejectsDuplicateOpenOfSameId) {
  std::unique_ptr<Pool> pool;
  ASSERT_TRUE(Pool::Create(path_, 1, opts_, &pool).ok());
  std::unique_ptr<Pool> dup;
  EXPECT_FALSE(Pool::Open(path_, 1, opts_, &dup).ok());
}

TEST_F(PoolTest, DataSurvivesReopen) {
  std::unique_ptr<Pool> pool;
  ASSERT_TRUE(Pool::Create(path_, 1, opts_, &pool).ok());

  VoidPPtr obj = VoidPPtr::Null();
  // Allocation target must itself live in SCM: use the pool root slot.
  ASSERT_TRUE(pool->allocator()->Allocate(&pool->header()->root, 256).ok());
  obj = pool->root();
  ASSERT_FALSE(obj.IsNull());
  char* p = static_cast<char*>(obj.get());
  const char msg[] = "persisted across remap";
  pmem::StoreBytes(p, msg, sizeof(msg));
  pmem::Persist(p, sizeof(msg));

  char* old_base = pool->base();
  pool.reset();

  ASSERT_TRUE(Pool::Open(path_, 1, opts_, &pool).ok());
  // PPtr resolution must work even though the base (very likely) moved.
  VoidPPtr reread = pool->root();
  ASSERT_FALSE(reread.IsNull());
  EXPECT_EQ(reread.offset, obj.offset);
  EXPECT_STREQ(static_cast<char*>(reread.get()), msg);
  // Not a hard guarantee, but with randomized hints a same-base remap is
  // vanishingly unlikely; if it ever flakes, drop this expectation.
  EXPECT_NE(pool->base(), old_base);
}

TEST_F(PoolTest, ToPPtrRoundTrips) {
  std::unique_ptr<Pool> pool;
  ASSERT_TRUE(Pool::Create(path_, 2, opts_, &pool).ok());
  char* p = pool->base() + 4096;
  PPtr<char> pp = pool->ToPPtr(p);
  EXPECT_EQ(pp.pool_id, 2u);
  EXPECT_EQ(pp.offset, 4096u);
  EXPECT_EQ(pp.get(), p);
  EXPECT_TRUE(pool->ToPPtr<char>(nullptr).IsNull());
}

TEST_F(PoolTest, FindByAddressAndById) {
  std::unique_ptr<Pool> pool;
  ASSERT_TRUE(Pool::Create(path_, 3, opts_, &pool).ok());
  EXPECT_EQ(Pool::FindByAddress(pool->base() + 100), pool.get());
  EXPECT_EQ(Pool::FindById(3), pool.get());
  EXPECT_EQ(Pool::FindById(4), nullptr);
  int local = 0;
  EXPECT_EQ(Pool::FindByAddress(&local), nullptr);
}

TEST_F(PoolTest, RootInitializedFlagPersists) {
  {
    std::unique_ptr<Pool> pool;
    ASSERT_TRUE(Pool::Create(path_, 1, opts_, &pool).ok());
    pool->SetRootInitialized();
  }
  std::unique_ptr<Pool> pool;
  ASSERT_TRUE(Pool::Open(path_, 1, opts_, &pool).ok());
  EXPECT_TRUE(pool->root_initialized());
}

TEST_F(PoolTest, OpenOrCreateReportsCreation) {
  std::unique_ptr<Pool> pool;
  bool created = false;
  ASSERT_TRUE(Pool::OpenOrCreate(path_, 1, opts_, &pool, &created).ok());
  EXPECT_TRUE(created);
  pool.reset();
  ASSERT_TRUE(Pool::OpenOrCreate(path_, 1, opts_, &pool, &created).ok());
  EXPECT_FALSE(created);
}

TEST_F(PoolTest, OpenRejectsWrongId) {
  std::unique_ptr<Pool> pool;
  ASSERT_TRUE(Pool::Create(path_, 1, opts_, &pool).ok());
  pool.reset();
  std::unique_ptr<Pool> wrong;
  Status s = Pool::Open(path_, 2, opts_, &wrong);
  EXPECT_FALSE(s.ok());
}

TEST_F(PoolTest, NullPPtrResolvesToNullptr) {
  PPtr<int> null = PPtr<int>::Null();
  EXPECT_TRUE(null.IsNull());
  EXPECT_EQ(null.get(), nullptr);
}

}  // namespace
}  // namespace scm
}  // namespace fptree
