file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_memcached.dir/bench_fig13_memcached.cc.o"
  "CMakeFiles/bench_fig13_memcached.dir/bench_fig13_memcached.cc.o.d"
  "bench_fig13_memcached"
  "bench_fig13_memcached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_memcached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
