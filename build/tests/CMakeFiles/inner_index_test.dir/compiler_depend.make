# Empty compiler generated dependencies file for inner_index_test.
# This may be replaced when dependencies are built.
