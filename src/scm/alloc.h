// Copyright (c) FPTree reproduction authors.
//
// Crash-safe persistent allocator (paper §2, "Memory leaks"). The interface
// is the paper's: the caller passes a reference to a persistent pointer that
// *itself lives in SCM* and belongs to the calling data structure.
//
//  * Allocate(target, size): the allocator persistently writes the address
//    of the returned block into *target before completing. If a crash hits
//    mid-allocation, recovery either completes or rolls back, and the data
//    structure can inspect its own pptr to learn whether it received memory.
//  * Deallocate(target): persistently nulls *target to convey that the
//    deallocation executed.
//
// Hence responsibility for leak discovery is split between allocator and
// data structure, exactly as in the paper.
//
// Block layout: [64 B BlockHeader][payload, rounded up to 64 B]. Payloads
// are cache-line aligned (leaf fingerprint arrays must start a line). Free
// lists are volatile, segregated by block size, and rebuilt on recovery by
// scanning headers up to the persistent heap frontier.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "scm/pptr.h"
#include "util/status.h"

namespace fptree {
namespace scm {

class Pool;

/// Persistent per-block header (one cache line).
struct BlockHeader {
  static constexpr uint64_t kAllocated = 1;

  /// payload size in bytes << 1 | allocated bit.
  uint64_t size_state;
  uint64_t reserved[7];

  uint64_t payload_size() const { return size_state >> 1; }
  bool allocated() const { return (size_state & kAllocated) != 0; }
  static uint64_t Pack(uint64_t payload, bool allocated) {
    return (payload << 1) | (allocated ? kAllocated : 0);
  }
};
static_assert(sizeof(BlockHeader) == 64);

/// Persistent allocator micro-log: exactly one operation is in flight at a
/// time (the allocator is internally serialized), so one log suffices.
struct AllocLog {
  enum State : uint64_t { kIdle = 0, kAllocating = 1, kDeallocating = 2 };

  uint64_t state;
  /// Persistent address (pool id + offset) of the caller's target pptr slot.
  uint64_t target_pool;
  uint64_t target_offset;
  /// Payload offset of the block being handed out / reclaimed (0 = not yet
  /// chosen).
  uint64_t block_offset;
  uint64_t request_size;
  uint64_t reserved[3];
};
static_assert(sizeof(AllocLog) == 64);

/// Persistent allocator metadata, stored directly after the pool header.
struct AllocMeta {
  static constexpr uint64_t kMagic = 0xA110CA70A110CA70ULL;

  uint64_t magic;
  uint64_t heap_begin;  ///< offset of the first block header
  uint64_t heap_top;    ///< bump frontier (offset past the last block)
  uint64_t reserved[5];
  AllocLog log;
};
static_assert(sizeof(AllocMeta) == 128);

/// \brief The per-pool persistent allocator.
///
/// Thread-safe: Allocate/Deallocate serialize on an internal mutex (the
/// paper's trees amortize allocation cost with leaf groups precisely because
/// persistent allocation is expensive and a central synchronization point).
class PAllocator {
 public:
  explicit PAllocator(Pool* pool);

  /// Formats the metadata of a freshly created pool.
  void Initialize();

  /// Recovers after a restart: completes or rolls back an in-flight
  /// operation recorded in the micro-log, then rebuilds the volatile free
  /// lists by scanning block headers.
  Status Recover();

  /// Allocates `size` bytes and persistently publishes the block's address
  /// into *target, which must reside in SCM (any open pool). On failure
  /// (pool exhausted) *target is left null.
  Status Allocate(VoidPPtr* target, size_t size);

  template <typename T>
  Status Allocate(PPtr<T>* target, size_t size) {
    return Allocate(reinterpret_cast<VoidPPtr*>(target), size);
  }

  /// Frees the block *target points to and persistently nulls *target.
  /// No-op if *target is already null.
  Status Deallocate(VoidPPtr* target);

  template <typename T>
  Status Deallocate(PPtr<T>* target) {
    return Deallocate(reinterpret_cast<VoidPPtr*>(target));
  }

  // --- Introspection (tests, memory-consumption benchmarks) ---------------

  /// Bytes in allocated payloads (excludes headers).
  uint64_t allocated_payload_bytes() const;
  /// Bytes consumed from the pool including headers and padding.
  uint64_t heap_used_bytes() const;
  uint64_t allocated_blocks() const;

  /// Payload offsets of every allocated block (O(heap) scan; debugging and
  /// leak tests only).
  std::vector<uint64_t> AllocatedPayloadOffsets() const;

 private:
  AllocMeta* meta() const;
  BlockHeader* HeaderAt(uint64_t offset) const;

  /// Picks a block: exact-size free-list pop, else bump allocation.
  /// Returns payload offset or 0 if exhausted. Requires mu_ held.
  uint64_t AcquireBlock(uint64_t payload_size);

  /// Marks free + pushes to the free list. Requires mu_ held.
  void ReleaseBlock(uint64_t payload_offset);

  void RebuildFreeLists();

  Pool* pool_;
  mutable std::mutex mu_;
  // size -> payload offsets. std::map keeps deterministic iteration for
  // debugging; bins are few (leaf size, group size, key sizes).
  std::map<uint64_t, std::vector<uint64_t>> free_lists_;
  uint64_t allocated_blocks_ = 0;
  uint64_t allocated_payload_ = 0;
};

}  // namespace scm
}  // namespace fptree
