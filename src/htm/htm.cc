#include "htm/htm.h"

#include <algorithm>
#include <mutex>

#include "fault/fault.h"

namespace fptree {
namespace htm {

namespace {

// Registry of live engines plus the folded totals of destroyed ones, so the
// metrics layer can report process-wide HTM telemetry without threading an
// engine handle through every call site. Leaked so late destructors are safe.
struct EngineRegistry {
  std::mutex mu;
  std::vector<HtmStats*> live;
  HtmStatsSnapshot retired;

  static EngineRegistry& Instance() {
    static EngineRegistry* r = new EngineRegistry;
    return *r;
  }
};

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  asm volatile("" ::: "memory");
#endif
}

inline void Backoff(int attempt) {
  if (attempt <= 1) return;
  int shift = attempt < 10 ? attempt : 10;
  uint64_t iters = 1ULL << shift;
  for (uint64_t i = 0; i < iters; ++i) CpuRelax();
}

}  // namespace

HtmEngine::HtmEngine(Backend backend)
    : backend_(backend), table_(kTableSize) {
  EngineRegistry& reg = EngineRegistry::Instance();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.live.push_back(&stats_);
}

HtmEngine::~HtmEngine() {
  EngineRegistry& reg = EngineRegistry::Instance();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.retired.Add(stats_);
  for (size_t i = 0; i < reg.live.size(); ++i) {
    if (reg.live[i] == &stats_) {
      reg.live[i] = reg.live.back();
      reg.live.pop_back();
      break;
    }
  }
}

HtmStatsSnapshot GlobalHtmStats() {
  EngineRegistry& reg = EngineRegistry::Instance();
  std::lock_guard<std::mutex> lock(reg.mu);
  HtmStatsSnapshot total = reg.retired;
  for (const HtmStats* s : reg.live) total.Add(*s);
  return total;
}

void ResetGlobalHtmStats() {
  EngineRegistry& reg = EngineRegistry::Instance();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.retired = HtmStatsSnapshot{};
  for (HtmStats* s : reg.live) s->Clear();
}

Tx::~Tx() { ReleaseFallbackIfHeld(); }

void Tx::ResetSets() {
  reads_.clear();
  writes_.clear();
}

void Tx::ReleaseFallbackIfHeld() {
  if (in_fallback_) {
    if (eng_->backend() == Backend::kTl2) {
      eng_->fallback_word_.fetch_add(1, std::memory_order_acq_rel);
    }
    eng_->fallback_mu_.unlock();
    in_fallback_ = false;
  }
}

void Tx::CountAbort(AbortCause cause) {
  eng_->stats_.aborts.fetch_add(1, std::memory_order_relaxed);
  switch (cause) {
    case AbortCause::kConflict:
      eng_->stats_.aborts_conflict.fetch_add(1, std::memory_order_relaxed);
      break;
    case AbortCause::kCapacity:
      eng_->stats_.aborts_capacity.fetch_add(1, std::memory_order_relaxed);
      break;
    case AbortCause::kExplicit:
      eng_->stats_.aborts_explicit.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

void Tx::Begin() {
  // A still-active doomed attempt means the caller bailed out of the loop
  // body (tx.ok() was false) without reaching Commit(); count that abort
  // here so the telemetry sees every failed speculative attempt.
  if (active_ && doomed_) CountAbort(doom_cause_);
  ReleaseFallbackIfHeld();
  ResetSets();
  doomed_ = false;
  doom_cause_ = AbortCause::kConflict;
  active_ = true;
  ++attempts_;

  if (eng_->backend() == Backend::kGlobalLock) {
    eng_->fallback_mu_.lock();
    in_fallback_ = true;
    return;
  }

  if (attempts_ > HtmEngine::kMaxAttempts) {
    // Lock-elision fallback: take the global lock, signal speculative
    // transactions via the fallback word, wait for in-flight commits to
    // drain so we never observe a half-applied write set.
    eng_->fallback_mu_.lock();
    eng_->fallback_word_.fetch_add(1, std::memory_order_acq_rel);
    while (eng_->inflight_commits_.load(std::memory_order_acquire) != 0) {
      CpuRelax();
    }
    in_fallback_ = true;
    eng_->stats_.fallbacks.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  Backoff(attempts_);
  // Subscribe to the fallback word; wait while the fallback lock is held
  // (a real TSX transaction would abort on the locked word).
  for (;;) {
    uint64_t fb = eng_->fallback_word_.load(std::memory_order_acquire);
    if ((fb & 1) == 0) {
      fb_seen_ = fb;
      break;
    }
    CpuRelax();
  }
  rv_ = eng_->clock_.load(std::memory_order_acquire);

  // Injected abort stream (DESIGN.md §12): dooms only speculative attempts
  // — the fallback path above is exempt, so a 100% abort rate forces every
  // operation through the global lock instead of livelocking. The doom is
  // accounted exactly like a real conflict abort.
  if (FPTREE_FAULT_POINT("htm.abort")) Doom(AbortCause::kConflict);
}

void Tx::Doom(AbortCause cause) {
  doomed_ = true;
  doom_cause_ = cause;
}

uint64_t Tx::Load(const uint64_t* addr) {
  if (in_fallback_) {
    return __atomic_load_n(addr, __ATOMIC_RELAXED);
  }
  if (doomed_) return 0;
  // Read-own-writes.
  for (auto it = writes_.rbegin(); it != writes_.rend(); ++it) {
    if (it->addr == addr) return it->value;
  }
  if (reads_.size() + writes_.size() >= HtmEngine::kMaxTracked) {
    Doom(AbortCause::kCapacity);
    return 0;
  }
  std::atomic<uint64_t>& lock = eng_->LockFor(addr);
  uint64_t l1 = lock.load(std::memory_order_acquire);
  if ((l1 & 1) != 0) {
    Doom(AbortCause::kConflict);
    return 0;
  }
  uint64_t value = __atomic_load_n(addr, __ATOMIC_ACQUIRE);
  uint64_t l2 = lock.load(std::memory_order_acquire);
  if (l1 != l2 || (l1 >> 1) > rv_) {
    Doom(AbortCause::kConflict);
    return value;
  }
  // Detect an engaged fallback quickly so a doomed transaction does not
  // wander stale pointers for long.
  if (eng_->fallback_word_.load(std::memory_order_acquire) != fb_seen_) {
    Doom(AbortCause::kConflict);
    return value;
  }
  reads_.push_back(ReadEntry{&lock, l1});
  return value;
}

void Tx::Store(uint64_t* addr, uint64_t value) {
  if (in_fallback_) {
    __atomic_store_n(addr, value, __ATOMIC_RELAXED);
    return;
  }
  if (doomed_) return;
  for (auto& w : writes_) {
    if (w.addr == addr) {
      w.value = value;
      return;
    }
  }
  if (reads_.size() + writes_.size() >= HtmEngine::kMaxTracked) {
    Doom(AbortCause::kCapacity);
    return;
  }
  writes_.push_back(WriteEntry{addr, value});
}

void Tx::UserAbort() {
  CountAbort(AbortCause::kExplicit);
  ReleaseFallbackIfHeld();
  ResetSets();
  active_ = false;
  doomed_ = false;
}

bool Tx::ValidateReads() const {
  for (const ReadEntry& e : reads_) {
    if (e.lock->load(std::memory_order_acquire) != e.version) return false;
  }
  return true;
}

bool Tx::Commit() {
  active_ = false;
  if (in_fallback_) {
    ReleaseFallbackIfHeld();
    eng_->stats_.commits.fetch_add(1, std::memory_order_relaxed);
    attempts_ = 0;
    return true;
  }
  if (doomed_) {
    CountAbort(doom_cause_);
    return false;
  }

  if (writes_.empty()) {
    // Read-only transaction: validate the read set and fallback word.
    if (!ValidateReads() ||
        eng_->fallback_word_.load(std::memory_order_acquire) != fb_seen_) {
      CountAbort(AbortCause::kConflict);
      return false;
    }
    eng_->stats_.commits.fetch_add(1, std::memory_order_relaxed);
    attempts_ = 0;
    return true;
  }

  // Write transaction. Announce so a new fallback waits for us.
  eng_->inflight_commits_.fetch_add(1, std::memory_order_acq_rel);
  if (eng_->fallback_word_.load(std::memory_order_acquire) != fb_seen_) {
    eng_->inflight_commits_.fetch_sub(1, std::memory_order_acq_rel);
    CountAbort(AbortCause::kConflict);
    return false;
  }

  // Lock the write set (unique lock-table entries, sorted to avoid
  // self-deadlock when two addresses hash to the same entry).
  std::vector<std::atomic<uint64_t>*> owned;
  owned.reserve(writes_.size());
  for (const WriteEntry& w : writes_) owned.push_back(&eng_->LockFor(w.addr));
  std::sort(owned.begin(), owned.end());
  owned.erase(std::unique(owned.begin(), owned.end()), owned.end());

  size_t locked = 0;
  bool ok = true;
  for (; locked < owned.size(); ++locked) {
    std::atomic<uint64_t>* l = owned[locked];
    bool got = false;
    for (int spin = 0; spin < 64; ++spin) {
      uint64_t cur = l->load(std::memory_order_acquire);
      if ((cur & 1) == 0 &&
          l->compare_exchange_weak(cur, cur | 1,
                                   std::memory_order_acq_rel)) {
        got = true;
        break;
      }
      CpuRelax();
    }
    if (!got) {
      ok = false;
      break;
    }
  }

  uint64_t wv = 0;
  if (ok) {
    wv = eng_->clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
    // Validate reads; entries whose lock we own are compared modulo the
    // lock bit we just set.
    for (const ReadEntry& e : reads_) {
      uint64_t cur = e.lock->load(std::memory_order_acquire);
      if (cur == e.version) continue;
      bool owned_by_us =
          (cur & 1) != 0 && (cur & ~1ULL) == (e.version & ~1ULL) &&
          std::binary_search(
              owned.begin(), owned.end(),
              const_cast<std::atomic<uint64_t>*>(e.lock));
      if (!owned_by_us) {
        ok = false;
        break;
      }
    }
  }

  if (ok) {
    for (const WriteEntry& w : writes_) {
      __atomic_store_n(w.addr, w.value, __ATOMIC_RELEASE);
    }
    for (std::atomic<uint64_t>* l : owned) {
      l->store(wv << 1, std::memory_order_release);
    }
    eng_->inflight_commits_.fetch_sub(1, std::memory_order_acq_rel);
    eng_->stats_.commits.fetch_add(1, std::memory_order_relaxed);
    attempts_ = 0;
    return true;
  }

  // Failure: release whatever we locked, restoring prior versions.
  for (size_t i = 0; i < locked; ++i) {
    std::atomic<uint64_t>* l = owned[i];
    l->store(l->load(std::memory_order_acquire) & ~1ULL,
             std::memory_order_release);
  }
  eng_->inflight_commits_.fetch_sub(1, std::memory_order_acq_rel);
  CountAbort(AbortCause::kConflict);
  return false;
}

}  // namespace htm
}  // namespace fptree
