// Copyright (c) FPTree reproduction authors.
//
// `checked(<inner>)`: history-recording decorators over the index API
// (DESIGN.md §13). Every operation is logged as an invocation/response
// event in a HistoryRecorder; the wrapped index does all the real work.
// The wrappers add two clock reads and a thread-local append per op —
// no locks, no allocation on the point-op path — so capture overhead
// stays under the bench_check_overhead budget.
//
// Recording discipline:
//  * Every op's invocation is stamped *before* the inner call and a crash
//    that unwinds mid-operation records the op as kPending ("effect may
//    or may not have survived") — the durable checker's contract. Point
//    ops reserve their ring slot up front and fill it in place; the
//    slot's default state already IS the pending event, so an unwinding
//    inner call needs no cleanup. Batch ops and scans use the open-slot
//    table, which also covers ops abandoned across a wire reconnect.
//  * A failed UpsertChecked / the unapplied tail of MultiUpsertChecked
//    are recorded as kNoop: the key was untouched, so the events carry no
//    constraint and the checker drops them.
//  * Batch elements get one slot each, all opened before the inner batch
//    call with a shared invocation stamp and closed with a shared
//    response window. This is slightly *weaker* than the documented
//    in-batch application order (the checker may accept a reordering a
//    stricter model would reject) but never unsound.
//  * Scans record each delivered row plus an exhaustion bit; the checker
//    turns rows into per-key reads and — when the scan ran out of keys
//    before its limit — absence witnesses over the scanned window.
//
// Cursors returned by OpenScan must be advanced and closed on the thread
// that opened them (they hold a slot in that thread's log).

#pragma once

#include <memory>
#include <string>
#include <utility>

#include "check/history.h"
#include "index/kv_index.h"

namespace fptree {
namespace check {

namespace internal {

/// Recording pull-cursor: mirrors every delivered row into the open scan
/// slot and closes the slot when the cursor finishes. Exhaustion below
/// the limit is what licenses absence witnesses, so it is only set when
/// the inner cursor genuinely ran dry (not on early Close).
template <typename Cursor, typename KeyArg>
class RecordingCursor final : public Cursor {
 public:
  RecordingCursor(std::unique_ptr<Cursor> inner, ThreadLog* log,
                  uint32_t slot, size_t limit)
      : inner_(std::move(inner)), log_(log), slot_(slot), limit_(limit) {}

  ~RecordingCursor() override { Finish(false); }

  bool Next(KeyArg* key, uint64_t* value) override {
    if (finished_) return false;
    if (!inner_->Next(key, value)) {
      Finish(true);
      return false;
    }
    AddRow(*key, *value);
    ++delivered_;
    return true;
  }

  void Close() override {
    Finish(false);
    inner_->Close();
  }

 private:
  void AddRow(uint64_t key, uint64_t value) {
    log_->AddRowFixed(slot_, key, value);
  }
  void AddRow(const std::string& key, uint64_t value) {
    log_->AddRowVar(slot_, key, value);
  }
  void Finish(bool ran_dry) {
    if (finished_) return;
    finished_ = true;
    log_->open_event(slot_)->scan_exhausted = ran_dry && delivered_ < limit_;
    log_->End(slot_, Outcome::kTrue, 0);
  }

  std::unique_ptr<Cursor> inner_;
  ThreadLog* log_;
  uint32_t slot_;
  size_t limit_;
  size_t delivered_ = 0;
  bool finished_ = false;
};

}  // namespace internal

/// \brief History-recording fixed-key index decorator.
class CheckedKVIndex final : public index::KVIndex {
 public:
  /// Owning wrap: the decorator destroys `inner` with itself.
  CheckedKVIndex(std::unique_ptr<index::KVIndex> inner,
                 HistoryRecorder* recorder)
      : owned_(std::move(inner)), inner_(owned_.get()), rec_(recorder) {}
  /// Borrowing wrap (tests wrap an index they keep direct access to).
  CheckedKVIndex(index::KVIndex* inner, HistoryRecorder* recorder)
      : inner_(inner), rec_(recorder) {}

  index::KVIndex* inner() { return inner_; }
  HistoryRecorder* recorder() { return rec_; }

  bool Find(uint64_t key, uint64_t* value) override {
    if (!rec_->enabled()) return inner_->Find(key, value);
    ThreadLog* log = rec_->Log();
    Event* ev = log->Reserve();
    ev->kind = OpKind::kGet;
    ev->key = key;
    bool found = inner_->Find(key, value);
    ev->outcome = found ? Outcome::kTrue : Outcome::kFalse;
    ev->result = found ? *value : 0;
    log->Finish(ev);
    return found;
  }

  bool Insert(uint64_t key, uint64_t value) override {
    return Write(OpKind::kInsert, key, value,
                 [&] { return inner_->Insert(key, value); });
  }
  bool Update(uint64_t key, uint64_t value) override {
    return Write(OpKind::kUpdate, key, value,
                 [&] { return inner_->Update(key, value); });
  }
  bool Erase(uint64_t key) override {
    return Write(OpKind::kErase, key, 0, [&] { return inner_->Erase(key); });
  }
  bool Upsert(uint64_t key, uint64_t value) override {
    return Write(OpKind::kUpsert, key, value,
                 [&] { return inner_->Upsert(key, value); });
  }

  Status UpsertChecked(uint64_t key, uint64_t value, bool* inserted) override {
    if (!rec_->enabled()) return inner_->UpsertChecked(key, value, inserted);
    ThreadLog* log = rec_->Log();
    Event* ev = log->Reserve();
    ev->kind = OpKind::kUpsert;
    ev->key = key;
    ev->arg = value;
    Status s = inner_->UpsertChecked(key, value, inserted);
    if (s.ok()) {
      ev->outcome = *inserted ? Outcome::kTrue : Outcome::kFalse;
      ev->result = *inserted ? 1 : 0;
    } else {
      ev->outcome = Outcome::kNoop;
      ev->result = 0;
    }
    log->Finish(ev);
    return s;
  }

  Status MultiUpsertChecked(const uint64_t* keys, const uint64_t* values,
                            size_t n, uint8_t* inserted,
                            size_t* applied) override {
    if (!rec_->enabled()) {
      return inner_->MultiUpsertChecked(keys, values, n, inserted, applied);
    }
    ThreadLog* log = rec_->Log();
    std::vector<uint32_t> slots(n);
    for (size_t i = 0; i < n; ++i) {
      slots[i] = log->Begin(Proto(OpKind::kUpsert, keys[i], values[i]));
    }
    Status s = inner_->MultiUpsertChecked(keys, values, n, inserted, applied);
    for (size_t i = 0; i < n; ++i) {
      if (i < *applied) {
        bool ins = inserted == nullptr || inserted[i] != 0;
        log->End(slots[i], ins ? Outcome::kTrue : Outcome::kFalse,
                 ins ? 1 : 0);
      } else {
        // Strict-prefix contract: keys at/after the failure index were
        // never touched.
        log->End(slots[i], Outcome::kNoop, 0);
      }
    }
    return s;
  }

  void MultiGet(const uint64_t* keys, size_t n, uint64_t* values,
                uint8_t* found) override {
    if (!rec_->enabled()) return inner_->MultiGet(keys, n, values, found);
    ThreadLog* log = rec_->Log();
    uint64_t t0 = ClockNow();
    inner_->MultiGet(keys, n, values, found);
    uint64_t t1 = ClockNow();
    for (size_t i = 0; i < n; ++i) {
      Event ev = Proto(OpKind::kGet, keys[i], 0);
      ev.t_inv = t0;
      ev.t_resp = t1;
      ev.outcome = found[i] ? Outcome::kTrue : Outcome::kFalse;
      ev.result = found[i] ? values[i] : 0;
      log->Commit(ev);
    }
  }

  void MultiPut(const uint64_t* keys, const uint64_t* values, size_t n,
                uint8_t* inserted) override {
    MultiWrite(OpKind::kInsert, keys, values, n, inserted, [&](uint8_t* ins) {
      inner_->MultiPut(keys, values, n, ins);
    });
  }

  void MultiUpsert(const uint64_t* keys, const uint64_t* values, size_t n,
                   uint8_t* inserted) override {
    MultiWrite(OpKind::kUpsert, keys, values, n, inserted, [&](uint8_t* ins) {
      inner_->MultiUpsert(keys, values, n, ins);
    });
  }

  size_t RangeScan(uint64_t start, size_t limit,
                   const ScanCallback& cb) override {
    if (!rec_->enabled()) return inner_->RangeScan(start, limit, cb);
    ThreadLog* log = rec_->Log();
    uint32_t slot = log->Begin(Proto(OpKind::kScan, start, limit));
    bool stopped_early = false;
    size_t n = inner_->RangeScan(start, limit, [&](uint64_t k, uint64_t v) {
      log->AddRowFixed(slot, k, v);
      bool keep = cb(k, v);
      if (!keep) stopped_early = true;
      return keep;
    });
    log->open_event(slot)->scan_exhausted = !stopped_early && n < limit;
    log->End(slot, Outcome::kTrue, 0);
    return n;
  }

  std::unique_ptr<index::KVScanCursor> OpenScan(uint64_t start,
                                                size_t limit) override {
    if (!rec_->enabled()) return inner_->OpenScan(start, limit);
    ThreadLog* log = rec_->Log();
    uint32_t slot = log->Begin(Proto(OpKind::kScan, start, limit));
    return std::make_unique<
        internal::RecordingCursor<index::KVScanCursor, uint64_t>>(
        inner_->OpenScan(start, limit), log, slot, limit);
  }

  size_t Size() const override { return inner_->Size(); }
  uint64_t DramBytes() const override { return inner_->DramBytes(); }
  uint64_t ScmBytes() const override { return inner_->ScmBytes(); }
  uint64_t RecoveryNanos() const override { return inner_->RecoveryNanos(); }
  obs::Snapshot Stats() const override { return inner_->Stats(); }
  bool concurrent() const override { return inner_->concurrent(); }
  bool CheckInvariants(std::string* why) override {
    return inner_->CheckInvariants(why);
  }

 private:
  static Event Proto(OpKind kind, uint64_t key, uint64_t arg) {
    Event ev;
    ev.t_inv = ClockNow();
    ev.kind = kind;
    ev.key = key;
    ev.arg = arg;
    return ev;
  }

  template <typename Fn>
  bool Write(OpKind kind, uint64_t key, uint64_t arg, Fn&& fn) {
    if (!rec_->enabled()) return fn();
    ThreadLog* log = rec_->Log();
    Event* ev = log->Reserve();
    ev->kind = kind;
    ev->key = key;
    ev->arg = arg;
    bool ok = fn();
    ev->outcome = ok ? Outcome::kTrue : Outcome::kFalse;
    ev->result = ok ? 1 : 0;
    log->Finish(ev);
    return ok;
  }

  template <typename Fn>
  void MultiWrite(OpKind kind, const uint64_t* keys, const uint64_t* values,
                  size_t n, uint8_t* inserted, Fn&& fn) {
    if (!rec_->enabled()) {
      fn(inserted);
      return;
    }
    ThreadLog* log = rec_->Log();
    std::vector<uint32_t> slots(n);
    for (size_t i = 0; i < n; ++i) {
      slots[i] = log->Begin(Proto(kind, keys[i], values[i]));
    }
    std::vector<uint8_t> local;
    uint8_t* ins = inserted;
    if (ins == nullptr) {
      local.assign(n, 0);
      ins = local.data();
    }
    fn(ins);
    for (size_t i = 0; i < n; ++i) {
      log->End(slots[i], ins[i] ? Outcome::kTrue : Outcome::kFalse,
               ins[i] ? 1 : 0);
    }
  }

  std::unique_ptr<index::KVIndex> owned_;
  index::KVIndex* inner_;
  HistoryRecorder* rec_;
};

/// \brief History-recording var-key index decorator.
class CheckedVarIndex final : public index::VarIndex {
 public:
  CheckedVarIndex(std::unique_ptr<index::VarIndex> inner,
                  HistoryRecorder* recorder)
      : owned_(std::move(inner)), inner_(owned_.get()), rec_(recorder) {}
  CheckedVarIndex(index::VarIndex* inner, HistoryRecorder* recorder)
      : inner_(inner), rec_(recorder) {}

  index::VarIndex* inner() { return inner_; }
  HistoryRecorder* recorder() { return rec_; }

  bool Find(std::string_view key, uint64_t* value) override {
    if (!rec_->enabled()) return inner_->Find(key, value);
    ThreadLog* log = rec_->Log();
    Event* ev = log->ReserveVar(key);
    ev->kind = OpKind::kGet;
    bool found = inner_->Find(key, value);
    ev->outcome = found ? Outcome::kTrue : Outcome::kFalse;
    ev->result = found ? *value : 0;
    log->Finish(ev);
    return found;
  }

  bool Insert(std::string_view key, uint64_t value) override {
    return Write(OpKind::kInsert, key, value,
                 [&] { return inner_->Insert(key, value); });
  }
  bool Update(std::string_view key, uint64_t value) override {
    return Write(OpKind::kUpdate, key, value,
                 [&] { return inner_->Update(key, value); });
  }
  bool Erase(std::string_view key) override {
    return Write(OpKind::kErase, key, 0, [&] { return inner_->Erase(key); });
  }
  bool Upsert(std::string_view key, uint64_t value) override {
    return Write(OpKind::kUpsert, key, value,
                 [&] { return inner_->Upsert(key, value); });
  }

  Status UpsertChecked(std::string_view key, uint64_t value,
                       bool* inserted) override {
    if (!rec_->enabled()) return inner_->UpsertChecked(key, value, inserted);
    ThreadLog* log = rec_->Log();
    Event* ev = log->ReserveVar(key);
    ev->kind = OpKind::kUpsert;
    ev->arg = value;
    Status s = inner_->UpsertChecked(key, value, inserted);
    if (s.ok()) {
      ev->outcome = *inserted ? Outcome::kTrue : Outcome::kFalse;
      ev->result = *inserted ? 1 : 0;
    } else {
      ev->outcome = Outcome::kNoop;
      ev->result = 0;
    }
    log->Finish(ev);
    return s;
  }

  Status MultiUpsertChecked(const std::string_view* keys,
                            const uint64_t* values, size_t n,
                            uint8_t* inserted, size_t* applied) override {
    if (!rec_->enabled()) {
      return inner_->MultiUpsertChecked(keys, values, n, inserted, applied);
    }
    ThreadLog* log = rec_->Log();
    std::vector<uint32_t> slots(n);
    for (size_t i = 0; i < n; ++i) {
      slots[i] = log->BeginVar(Proto(OpKind::kUpsert, values[i]), keys[i]);
    }
    Status s = inner_->MultiUpsertChecked(keys, values, n, inserted, applied);
    for (size_t i = 0; i < n; ++i) {
      if (i < *applied) {
        bool ins = inserted == nullptr || inserted[i] != 0;
        log->End(slots[i], ins ? Outcome::kTrue : Outcome::kFalse,
                 ins ? 1 : 0);
      } else {
        log->End(slots[i], Outcome::kNoop, 0);
      }
    }
    return s;
  }

  void MultiGet(const std::string_view* keys, size_t n, uint64_t* values,
                uint8_t* found) override {
    if (!rec_->enabled()) return inner_->MultiGet(keys, n, values, found);
    ThreadLog* log = rec_->Log();
    uint64_t t0 = ClockNow();
    inner_->MultiGet(keys, n, values, found);
    uint64_t t1 = ClockNow();
    for (size_t i = 0; i < n; ++i) {
      Event ev = Proto(OpKind::kGet, 0);
      ev.t_inv = t0;
      ev.t_resp = t1;
      ev.outcome = found[i] ? Outcome::kTrue : Outcome::kFalse;
      ev.result = found[i] ? values[i] : 0;
      log->CommitVar(ev, keys[i]);
    }
  }

  void MultiPut(const std::string_view* keys, const uint64_t* values,
                size_t n, uint8_t* inserted) override {
    MultiWrite(OpKind::kInsert, keys, values, n, inserted, [&](uint8_t* ins) {
      inner_->MultiPut(keys, values, n, ins);
    });
  }

  void MultiUpsert(const std::string_view* keys, const uint64_t* values,
                   size_t n, uint8_t* inserted) override {
    MultiWrite(OpKind::kUpsert, keys, values, n, inserted, [&](uint8_t* ins) {
      inner_->MultiUpsert(keys, values, n, ins);
    });
  }

  size_t RangeScan(std::string_view start, size_t limit,
                   const ScanCallback& cb) override {
    if (!rec_->enabled()) return inner_->RangeScan(start, limit, cb);
    ThreadLog* log = rec_->Log();
    uint32_t slot = log->BeginVar(ScanProto(limit), start);
    bool stopped_early = false;
    size_t n =
        inner_->RangeScan(start, limit, [&](std::string_view k, uint64_t v) {
          log->AddRowVar(slot, k, v);
          bool keep = cb(k, v);
          if (!keep) stopped_early = true;
          return keep;
        });
    log->open_event(slot)->scan_exhausted = !stopped_early && n < limit;
    log->End(slot, Outcome::kTrue, 0);
    return n;
  }

  std::unique_ptr<index::VarScanCursor> OpenScan(std::string_view start,
                                                 size_t limit) override {
    if (!rec_->enabled()) return inner_->OpenScan(start, limit);
    ThreadLog* log = rec_->Log();
    uint32_t slot = log->BeginVar(ScanProto(limit), start);
    return std::make_unique<
        internal::RecordingCursor<index::VarScanCursor, std::string>>(
        inner_->OpenScan(start, limit), log, slot, limit);
  }

  size_t Size() const override { return inner_->Size(); }
  uint64_t DramBytes() const override { return inner_->DramBytes(); }
  uint64_t ScmBytes() const override { return inner_->ScmBytes(); }
  uint64_t RecoveryNanos() const override { return inner_->RecoveryNanos(); }
  obs::Snapshot Stats() const override { return inner_->Stats(); }
  bool concurrent() const override { return inner_->concurrent(); }
  bool CheckInvariants(std::string* why) override {
    return inner_->CheckInvariants(why);
  }

 private:
  static Event Proto(OpKind kind, uint64_t arg) {
    Event ev;
    ev.t_inv = ClockNow();
    ev.kind = kind;
    ev.arg = arg;
    return ev;
  }
  static Event ScanProto(uint64_t limit) {
    Event ev = Proto(OpKind::kScan, limit);
    return ev;
  }

  template <typename Fn>
  bool Write(OpKind kind, std::string_view key, uint64_t arg, Fn&& fn) {
    if (!rec_->enabled()) return fn();
    ThreadLog* log = rec_->Log();
    Event* ev = log->ReserveVar(key);
    ev->kind = kind;
    ev->arg = arg;
    bool ok = fn();
    ev->outcome = ok ? Outcome::kTrue : Outcome::kFalse;
    ev->result = ok ? 1 : 0;
    log->Finish(ev);
    return ok;
  }

  template <typename Fn>
  void MultiWrite(OpKind kind, const std::string_view* keys,
                  const uint64_t* values, size_t n, uint8_t* inserted,
                  Fn&& fn) {
    if (!rec_->enabled()) {
      fn(inserted);
      return;
    }
    ThreadLog* log = rec_->Log();
    std::vector<uint32_t> slots(n);
    for (size_t i = 0; i < n; ++i) {
      slots[i] = log->BeginVar(Proto(kind, values[i]), keys[i]);
    }
    std::vector<uint8_t> local;
    uint8_t* ins = inserted;
    if (ins == nullptr) {
      local.assign(n, 0);
      ins = local.data();
    }
    fn(ins);
    for (size_t i = 0; i < n; ++i) {
      log->End(slots[i], ins[i] ? Outcome::kTrue : Outcome::kFalse,
               ins[i] ? 1 : 0);
    }
  }

  std::unique_ptr<index::VarIndex> owned_;
  index::VarIndex* inner_;
  HistoryRecorder* rec_;
};

/// Wrap helpers. The borrowing forms record against an index the caller
/// keeps owning (and must keep alive past the wrapper).
std::unique_ptr<index::KVIndex> Checked(std::unique_ptr<index::KVIndex> inner,
                                        HistoryRecorder* recorder);
std::unique_ptr<index::VarIndex> Checked(std::unique_ptr<index::VarIndex> inner,
                                         HistoryRecorder* recorder);
std::unique_ptr<index::KVIndex> CheckedBorrowed(index::KVIndex* inner,
                                                HistoryRecorder* recorder);
std::unique_ptr<index::VarIndex> CheckedBorrowed(index::VarIndex* inner,
                                                 HistoryRecorder* recorder);

/// Parses a `checked(<inner>)` spec. Returns true and stores the inner
/// spec (which may itself be `sharded(...)` or a plain registered name)
/// when `spec` has the checked(...) shape; false otherwise.
bool ParseCheckedSpec(const std::string& spec, std::string* inner);

}  // namespace check
}  // namespace fptree
