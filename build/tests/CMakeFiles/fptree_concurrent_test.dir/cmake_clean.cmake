file(REMOVE_RECURSE
  "CMakeFiles/fptree_concurrent_test.dir/fptree_concurrent_test.cc.o"
  "CMakeFiles/fptree_concurrent_test.dir/fptree_concurrent_test.cc.o.d"
  "fptree_concurrent_test"
  "fptree_concurrent_test.pdb"
  "fptree_concurrent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fptree_concurrent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
