// Figure 7(e,f,k,l): recovery time vs tree size at SCM latency 90 ns and
// 650 ns. The persistent hybrid trees rebuild only their DRAM inner nodes
// from the leaves; the wBTree (fully in SCM) recovers in ~constant time;
// the STXTree must be fully rebuilt from primary data. Leaf groups give
// the FPTree better locality than the PTree during the leaf walk, and the
// NV-Tree pays for its sparse rebuild — the orderings the paper reports.

#include <cstdio>

#include "baselines/nvtree.h"
#include "baselines/stxtree.h"
#include "baselines/wbtree.h"
#include "bench_common.h"
#include "core/fptree.h"
#include "core/ptree.h"

namespace fptree {
namespace bench {
namespace {

template <typename TreeT>
double RecoveryMs(uint64_t n) {
  ScopedPool pool(size_t{4} << 30);
  {
    TreeT tree(pool.get());
    for (uint64_t k : ShuffledRange(n, 11)) tree.Insert(k, k);
  }
  pool.Reopen();
  TreeT recovered(pool.get());
  double ms = static_cast<double>(recovered.last_recovery_nanos()) / 1e6;
  uint64_t v;
  if (!recovered.Find(n / 2, &v)) {
    std::fprintf(stderr, "recovery dropped a key!\n");
  }
  return ms;
}

double StxRebuildMs(uint64_t n) {
  // The transient tree's restart story: primary data lives in SCM, and
  // the index must be rebuilt from it — every key-value is read from SCM
  // (charged) and re-inserted. (The paper's Fig. 7e/f compares recovery
  // against exactly this "full rebuild".)
  ScopedPool pool(size_t{4} << 30);
  scm::VoidPPtr* anchor = &pool.get()->header()->root;
  Status s = pool.get()->allocator()->Allocate(anchor, n * 16);
  if (!s.ok()) std::abort();
  uint64_t* data = static_cast<uint64_t*>(anchor->get());
  for (uint64_t k = 0; k < n; ++k) {
    data[2 * k] = k;
    data[2 * k + 1] = k;
  }
  scm::ThreadScmCache::Clear();

  baselines::STXTree<> tree;
  Stopwatch sw;
  for (uint64_t k = 0; k < n; ++k) {
    scm::ReadScm(&data[2 * k], 16);
    tree.Insert(data[2 * k], data[2 * k + 1]);
  }
  return sw.ElapsedMillis();
}

}  // namespace
}  // namespace bench
}  // namespace fptree

int main(int argc, char** argv) {
  using namespace fptree;
  using namespace fptree::bench;
  Flags flags = Flags::Parse(argc, argv);
  scm::LatencyModel::Calibrate();

  PrintHeader("Figure 7(e,f): recovery time [ms] vs tree size");
  std::printf("%8s %10s %12s %12s %12s %12s %12s %12s\n", "lat(ns)", "size",
              "FPTree", "FPTr-noGrp", "PTree", "NV-Tree", "wBTree",
              "STX-rebuild");
  std::vector<uint64_t> sizes = flags.quick
                                    ? std::vector<uint64_t>{10000, 100000}
                                    : std::vector<uint64_t>{10000, 100000,
                                                            flags.keys * 5};
  for (uint64_t lat : {uint64_t{90}, uint64_t{650}}) {
    for (uint64_t n : sizes) {
      SetLatency(lat);
      double fp = RecoveryMs<core::FPTree<>>(n);
      double fpng = RecoveryMs<core::FPTree<uint64_t, 56, 4096, false>>(n);
      double pt = RecoveryMs<core::PTree<>>(n);
      double nv = RecoveryMs<baselines::NVTree<>>(n);
      double wb = RecoveryMs<baselines::WBTree<>>(n);
      double stx = StxRebuildMs(n);
      scm::LatencyModel::Disable();
      std::printf("%8llu %10llu %12.2f %12.2f %12.2f %12.2f %12.2f %12.2f\n",
                  static_cast<unsigned long long>(lat),
                  static_cast<unsigned long long>(n), fp, fpng, pt, nv, wb,
                  stx);
    }
  }
  std::printf(
      "\nPaper shape: wBTree recovery ~constant (log replay only); FPTree "
      "recovers faster than\nPTree (leaf-group locality) and much faster "
      "than NV-Tree (sparse rebuild); all persistent\ntrees beat the full "
      "STX rebuild by a growing factor as size increases.\n");
  EmitMetricsJson("fig7_recovery");
  return 0;
}
