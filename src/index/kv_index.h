// Copyright (c) FPTree reproduction authors.
//
// Uniform index interfaces and adapters. The end-to-end applications
// (kvcache, minidb) and the benchmark harnesses hold trees through these so
// every tree in the paper's evaluation can be swapped in by name, exactly
// as the paper swaps trees into memcached and its prototype database.

#pragma once

#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "baselines/nvtree.h"
#include "baselines/stxtree.h"
#include "baselines/wbtree.h"
#include "core/fptree.h"
#include "core/fptree_concurrent.h"
#include "core/fptree_concurrent_var.h"
#include "core/fptree_var.h"
#include "core/ptree.h"
#include "scm/pool.h"
#include "util/hash.h"

namespace fptree {
namespace index {

/// \brief Fixed-size (8-byte) key index.
class KVIndex {
 public:
  virtual ~KVIndex() = default;

  virtual bool Find(uint64_t key, uint64_t* value) = 0;
  virtual bool Insert(uint64_t key, uint64_t value) = 0;
  virtual bool Update(uint64_t key, uint64_t value) = 0;
  virtual bool Erase(uint64_t key) = 0;
  virtual size_t Size() = 0;
  virtual uint64_t DramBytes() const = 0;
  virtual uint64_t ScmBytes() const = 0;
  /// Nanoseconds the constructor spent on recovery (0 for transient trees).
  virtual uint64_t RecoveryNanos() const { return 0; }
  /// True when the implementation is internally thread-safe.
  virtual bool concurrent() const { return false; }
};

/// \brief Variable-size (string) key index.
class VarIndex {
 public:
  virtual ~VarIndex() = default;

  virtual bool Find(std::string_view key, uint64_t* value) = 0;
  virtual bool Insert(std::string_view key, uint64_t value) = 0;
  virtual bool Update(std::string_view key, uint64_t value) = 0;
  virtual bool Erase(std::string_view key) = 0;
  virtual size_t Size() = 0;
  virtual uint64_t DramBytes() const = 0;
  virtual uint64_t ScmBytes() const = 0;
  virtual bool concurrent() const { return false; }
};

namespace internal {

/// Wraps a single-threaded tree; optionally adds a global read/write lock
/// so concurrent applications can drive it (the paper does exactly this in
/// memcached: "global locks for non-concurrent trees").
template <typename TreeT, typename KeyArg>
class LockedAdapter {
 public:
  template <typename... Args>
  explicit LockedAdapter(bool lock, Args&&... args)
      : lock_(lock), tree_(std::forward<Args>(args)...) {}

  bool Find(KeyArg key, uint64_t* value) {
    if (!lock_) return tree_.Find(key, value);
    std::shared_lock<std::shared_mutex> l(mu_);
    return tree_.Find(key, value);
  }
  bool Insert(KeyArg key, uint64_t value) {
    if (!lock_) return tree_.Insert(key, value);
    std::unique_lock<std::shared_mutex> l(mu_);
    return tree_.Insert(key, value);
  }
  bool Update(KeyArg key, uint64_t value) {
    if (!lock_) return tree_.Update(key, value);
    std::unique_lock<std::shared_mutex> l(mu_);
    return tree_.Update(key, value);
  }
  bool Erase(KeyArg key) {
    if (!lock_) return tree_.Erase(key);
    std::unique_lock<std::shared_mutex> l(mu_);
    return tree_.Erase(key);
  }

  TreeT& tree() { return tree_; }

 private:
  bool lock_;
  std::shared_mutex mu_;
  TreeT tree_;
};

}  // namespace internal

/// Fixed-key adapter for any tree exposing the common tree API.
template <typename TreeT>
class FixedAdapter : public KVIndex {
 public:
  template <typename... Args>
  explicit FixedAdapter(bool locked, Args&&... args)
      : locked_(locked), impl_(locked, std::forward<Args>(args)...) {}

  bool Find(uint64_t key, uint64_t* value) override {
    return impl_.Find(key, value);
  }
  bool Insert(uint64_t key, uint64_t value) override {
    return impl_.Insert(key, value);
  }
  bool Update(uint64_t key, uint64_t value) override {
    return impl_.Update(key, value);
  }
  bool Erase(uint64_t key) override { return impl_.Erase(key); }
  size_t Size() override { return impl_.tree().Size(); }
  uint64_t DramBytes() const override {
    return const_cast<FixedAdapter*>(this)->impl_.tree().DramBytes();
  }
  uint64_t ScmBytes() const override {
    if constexpr (requires(TreeT& t) { t.ScmBytes(); }) {
      return const_cast<FixedAdapter*>(this)->impl_.tree().ScmBytes();
    } else {
      return 0;  // fully transient tree
    }
  }
  bool concurrent() const override { return locked_; }

  TreeT& tree() { return impl_.tree(); }

 private:
  bool locked_;
  internal::LockedAdapter<TreeT, uint64_t> impl_;
};

/// Var-key adapter.
template <typename TreeT>
class VarAdapter : public VarIndex {
 public:
  template <typename... Args>
  explicit VarAdapter(bool locked, Args&&... args)
      : locked_(locked), impl_(locked, std::forward<Args>(args)...) {}

  bool Find(std::string_view key, uint64_t* value) override {
    return impl_.Find(key, value);
  }
  bool Insert(std::string_view key, uint64_t value) override {
    return impl_.Insert(key, value);
  }
  bool Update(std::string_view key, uint64_t value) override {
    return impl_.Update(key, value);
  }
  bool Erase(std::string_view key) override { return impl_.Erase(key); }
  size_t Size() override { return impl_.tree().Size(); }
  uint64_t DramBytes() const override {
    return const_cast<VarAdapter*>(this)->impl_.tree().DramBytes();
  }
  uint64_t ScmBytes() const override {
    return const_cast<VarAdapter*>(this)->impl_.tree().ScmBytes();
  }
  bool concurrent() const override { return locked_; }

  TreeT& tree() { return impl_.tree(); }

 private:
  bool locked_;
  internal::LockedAdapter<TreeT, std::string_view> impl_;
};

/// Adapter for internally concurrent trees (no extra lock).
template <typename TreeT, typename Base, typename KeyArg>
class ConcurrentAdapter : public Base {
 public:
  template <typename... Args>
  explicit ConcurrentAdapter(Args&&... args)
      : tree_(std::forward<Args>(args)...) {}

  bool Find(KeyArg key, uint64_t* value) override {
    return tree_.Find(key, value);
  }
  bool Insert(KeyArg key, uint64_t value) override {
    return tree_.Insert(key, value);
  }
  bool Update(KeyArg key, uint64_t value) override {
    return tree_.Update(key, value);
  }
  bool Erase(KeyArg key) override { return tree_.Erase(key); }
  size_t Size() override { return tree_.Size(); }
  uint64_t DramBytes() const override { return tree_.DramBytes(); }
  uint64_t ScmBytes() const override { return tree_.ScmBytes(); }
  bool concurrent() const override { return true; }

  TreeT& tree() { return tree_; }

 private:
  TreeT tree_;
};

// Update() on the plain concurrent NV-Tree adapter works out of the box.

/// Creates a fixed-key index by tree name. Pool-backed trees attach to
/// `pool`; "stx" ignores it. When `locked` is set, single-threaded trees
/// get a global read/write lock (the paper's memcached arrangement).
/// Names: fptree, fptree-nogroups, ptree, wbtree, nvtree, stx, fptree-c,
/// fptree-c-lock (global-lock HTM ablation), nvtree-c.
inline std::unique_ptr<KVIndex> MakeFixedIndex(const std::string& name,
                                               scm::Pool* pool,
                                               bool locked = false) {
  if (name == "fptree") {
    return std::make_unique<FixedAdapter<core::FPTree<>>>(locked, pool);
  }
  if (name == "fptree-nogroups") {
    return std::make_unique<
        FixedAdapter<core::FPTree<uint64_t, 56, 4096, false>>>(locked, pool);
  }
  if (name == "ptree") {
    return std::make_unique<FixedAdapter<core::PTree<>>>(locked, pool);
  }
  if (name == "wbtree") {
    return std::make_unique<FixedAdapter<baselines::WBTree<>>>(locked, pool);
  }
  if (name == "nvtree") {
    return std::make_unique<FixedAdapter<baselines::NVTree<>>>(locked, pool);
  }
  if (name == "stx") {
    return std::make_unique<FixedAdapter<baselines::STXTree<>>>(locked);
  }
  if (name == "fptree-c") {
    return std::make_unique<ConcurrentAdapter<core::ConcurrentFPTree<>,
                                              KVIndex, uint64_t>>(pool);
  }
  if (name == "fptree-c-lock") {
    return std::make_unique<ConcurrentAdapter<core::ConcurrentFPTree<>,
                                              KVIndex, uint64_t>>(
        pool, htm::Backend::kGlobalLock);
  }
  if (name == "nvtree-c") {
    return std::make_unique<ConcurrentAdapter<baselines::ConcurrentNVTree<>,
                                              KVIndex, uint64_t>>(pool);
  }
  return nullptr;
}

/// Transient STX B+-Tree over std::string keys (STXTreeVar).
class STXVarTree {
 public:
  explicit STXVarTree(scm::Pool* /*unused*/ = nullptr) {}

  bool Find(std::string_view k, uint64_t* v) {
    return tree_.Find(std::string(k), v);
  }
  bool Insert(std::string_view k, uint64_t v) {
    return tree_.Insert(std::string(k), v);
  }
  bool Update(std::string_view k, uint64_t v) {
    return tree_.Update(std::string(k), v);
  }
  bool Erase(std::string_view k) { return tree_.Erase(std::string(k)); }
  size_t Size() const { return tree_.Size(); }
  uint64_t DramBytes() const { return tree_.DramBytes(); }
  uint64_t ScmBytes() const { return 0; }

 private:
  baselines::STXTree<std::string, uint64_t, 8, 8> tree_;
};

/// Sharded hash map — the "vanilla memcached hash table" reference of
/// Fig. 13. Fully transient and internally concurrent.
class ShardedHashMap : public VarIndex {
 public:
  static constexpr size_t kShards = 64;

  bool Find(std::string_view key, uint64_t* value) override {
    Shard& s = ShardFor(key);
    std::shared_lock<std::shared_mutex> l(s.mu);
    auto it = s.map.find(std::string(key));
    if (it == s.map.end()) return false;
    *value = it->second;
    return true;
  }
  bool Insert(std::string_view key, uint64_t value) override {
    Shard& s = ShardFor(key);
    std::unique_lock<std::shared_mutex> l(s.mu);
    return s.map.emplace(std::string(key), value).second;
  }
  bool Update(std::string_view key, uint64_t value) override {
    Shard& s = ShardFor(key);
    std::unique_lock<std::shared_mutex> l(s.mu);
    auto it = s.map.find(std::string(key));
    if (it == s.map.end()) return false;
    it->second = value;
    return true;
  }
  bool Erase(std::string_view key) override {
    Shard& s = ShardFor(key);
    std::unique_lock<std::shared_mutex> l(s.mu);
    return s.map.erase(std::string(key)) == 1;
  }
  size_t Size() override {
    size_t n = 0;
    for (auto& s : shards_) {
      std::shared_lock<std::shared_mutex> l(s.mu);
      n += s.map.size();
    }
    return n;
  }
  uint64_t DramBytes() const override {
    uint64_t n = 0;
    for (auto& s : shards_) n += s.map.size() * 64;
    return n;
  }
  uint64_t ScmBytes() const override { return 0; }
  bool concurrent() const override { return true; }

 private:
  struct Shard {
    std::shared_mutex mu;
    std::unordered_map<std::string, uint64_t> map;
  };
  Shard& ShardFor(std::string_view key) {
    return shards_[HashBytes(key.data(), key.size()) % kShards];
  }
  mutable Shard shards_[kShards];
};

/// Creates a var-key index by name: fptree-var, ptree-var, stx-var,
/// fptree-c-var, hashmap.
inline std::unique_ptr<VarIndex> MakeVarIndex(const std::string& name,
                                              scm::Pool* pool,
                                              bool locked = false) {
  if (name == "fptree-var") {
    return std::make_unique<VarAdapter<core::FPTreeVar<>>>(locked, pool);
  }
  if (name == "ptree-var") {
    return std::make_unique<
        VarAdapter<core::FPTreeVar<uint64_t, 32, 256, false>>>(locked, pool);
  }
  if (name == "stx-var") {
    return std::make_unique<VarAdapter<STXVarTree>>(locked, pool);
  }
  if (name == "fptree-c-var") {
    return std::make_unique<
        ConcurrentAdapter<core::ConcurrentFPTreeVar<>, VarIndex,
                          std::string_view>>(pool);
  }
  if (name == "hashmap") {
    return std::make_unique<ShardedHashMap>();
  }
  return nullptr;
}

}  // namespace index
}  // namespace fptree
