#!/usr/bin/env bash
# Build and run the tier-1 test suite under every supported build flavor
# in one invocation:
#
#   default      — the production configuration
#   sanitize     — FPTREE_SANITIZE=ON   (ASan+UBSan)
#   nosimd       — FPTREE_NO_SIMD=ON    (scalar fingerprint probes)
#   noprefetch   — FPTREE_NO_PREFETCH=ON
#
# Each flavor configures into its own build directory (build-flavor-<name>)
# so the flavors never contaminate each other and incremental reruns stay
# cheap. Any flavor failing configure, build, or ctest fails the script;
# a summary table prints at the end either way.
#
# After the main suite, every flavor also runs the `check`-labeled suite
# (history capture + linearizability) as its own step, so the flavor
# summary tracks the checker separately — a sanitizer-only capture race
# shows up as "check: failed" even when the main suite filter skipped it.
#
# Usage:
#   scripts/check_all_flavors.sh                      # full tier-1 suite per flavor
#   scripts/check_all_flavors.sh -L fault             # one suite per flavor
#   scripts/check_all_flavors.sh --flavors=default,nosimd
#   FLAVORS="default sanitize" scripts/check_all_flavors.sh
#
# --flavors= takes a comma- or space-separated subset and overrides the
# FLAVORS environment variable. All other arguments are passed through to
# ctest verbatim.

set -u

cd "$(dirname "$0")/.."

FLAVORS="${FLAVORS:-default sanitize nosimd noprefetch}"
JOBS="${JOBS:-$(nproc)}"

ARGS=()
for a in "$@"; do
  case "$a" in
    --flavors=*) FLAVORS="${a#--flavors=}"; FLAVORS="${FLAVORS//,/ }" ;;
    *) ARGS+=("$a") ;;
  esac
done
set -- ${ARGS[@]+"${ARGS[@]}"}

cmake_flags_for() {
  case "$1" in
    default)    echo "" ;;
    sanitize)   echo "-DFPTREE_SANITIZE=ON" ;;
    nosimd)     echo "-DFPTREE_NO_SIMD=ON" ;;
    noprefetch) echo "-DFPTREE_NO_PREFETCH=ON" ;;
    *) echo "unknown flavor: $1" >&2; exit 2 ;;
  esac
}

declare -A RESULT
declare -A CHECKRESULT
overall=0

for flavor in $FLAVORS; do
  dir="build-flavor-${flavor}"
  # cmake_flags_for runs in a command substitution: its `exit 2` would
  # only leave the subshell, so the unknown-flavor status must be checked
  # here or the script would barrel on with empty flags.
  if ! flags="$(cmake_flags_for "$flavor")"; then
    exit 2
  fi
  mkdir -p "$dir"
  echo "==== [$flavor] configure ($dir) ===="
  # shellcheck disable=SC2086
  if ! cmake -B "$dir" -S . $flags > "$dir/configure.log" 2>&1; then
    echo "[$flavor] CONFIGURE FAILED — see $dir/configure.log"
    RESULT[$flavor]="configure-failed"; overall=1; continue
  fi
  echo "==== [$flavor] build ===="
  if ! cmake --build "$dir" -j "$JOBS" > "$dir/build.log" 2>&1; then
    echo "[$flavor] BUILD FAILED — see $dir/build.log"
    tail -30 "$dir/build.log"
    RESULT[$flavor]="build-failed"; overall=1; continue
  fi
  echo "==== [$flavor] ctest $* ===="
  if (cd "$dir" && ctest --output-on-failure -j "$JOBS" "$@"); then
    RESULT[$flavor]="ok"
  else
    RESULT[$flavor]="tests-failed"; overall=1
  fi
  echo "==== [$flavor] ctest -L check ===="
  if (cd "$dir" && ctest --output-on-failure -j "$JOBS" -L check); then
    CHECKRESULT[$flavor]="ok"
  else
    CHECKRESULT[$flavor]="failed"; overall=1
  fi
done

echo
echo "==== flavor summary ===="
for flavor in $FLAVORS; do
  printf '  %-12s %-16s check: %s\n' "$flavor" "${RESULT[$flavor]:-skipped}" \
    "${CHECKRESULT[$flavor]:-skipped}"
done
exit $overall
