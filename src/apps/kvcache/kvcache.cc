#include "apps/kvcache/kvcache.h"

// Header-only implementation; this TU anchors the library target.
