# Empty dependencies file for fptree_var_test.
# This may be replaced when dependencies are built.
