// Copyright (c) FPTree reproduction authors.
//
// Sharded multi-pool engine (DESIGN.md §10). A ShardedKVIndex /
// ShardedVarIndex composes N instances of any registered index — each over
// its own SCM pool file (`<prefix>.0 .. <prefix>.N-1`) — behind the plain
// KVIndex/VarIndex interfaces:
//
//  * Keys are hash-partitioned (Mix64 for fixed keys, HashBytes for var
//    keys), so every key lives in exactly one shard and point ops touch a
//    single inner index.
//  * Construction opens all shard pools concurrently (ParallelShards);
//    attach-time recovery therefore runs shard-parallel, turning the §7
//    intra-tree parallel rebuild into embarrassingly-parallel per-shard
//    recovery.
//  * Globally ordered RangeScan is a k-way streaming merge over per-shard
//    ScanCursors (index API v3); the callback form is reimplemented on top
//    of the merged cursor.
//  * Stats() aggregates counters and index.* gauges and adds per-shard
//    `shard.<i>.*` gauges; CheckInvariants fans out across shards.
//
// The engine owns its pools: destroying the index closes every shard pool,
// so a crash-recovery cycle is "destroy, re-Make".

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "index/kv_index.h"
#include "scm/pool.h"
#include "util/status.h"

namespace fptree {
namespace engine {

/// Configuration for a sharded engine instance.
struct ShardedOptions {
  /// Number of shards (pool files / inner indexes), in [1, 32].
  size_t shards = 8;
  /// Shard i's pool file is `<path_prefix>.<i>`.
  std::string path_prefix = "pool";
  /// Size of each shard's pool file (sparse; untouched pages cost nothing).
  size_t shard_bytes = size_t{1} << 28;
  /// Pool ids base..base+shards-1 are claimed; must stay inside [1, 64).
  uint64_t base_pool_id = 1;
  /// Wrap non-concurrent inner indexes with a per-shard global lock.
  bool locked = false;
  /// Workers for parallel open/recovery/invariant fan-out; 0 = one thread
  /// per shard (capped by core::RecoverThreads()).
  uint32_t threads = 0;
  /// Map shard pools at randomized bases (recovery realism; see scm::Pool).
  bool randomize_base = true;
};

/// Fixed-key sharded engine.
class ShardedKVIndex final : public index::KVIndex {
 public:
  /// Opens (or creates) every shard pool concurrently and constructs one
  /// `inner` index per shard via the checked registry factory. On any
  /// failure nothing is leaked and `*out` is untouched.
  static Status Make(const std::string& inner, const ShardedOptions& opts,
                     std::unique_ptr<ShardedKVIndex>* out);

  ~ShardedKVIndex() override;

  bool Find(uint64_t key, uint64_t* value) override;
  bool Insert(uint64_t key, uint64_t value) override;
  bool Update(uint64_t key, uint64_t value) override;
  bool Erase(uint64_t key) override;
  bool Upsert(uint64_t key, uint64_t value) override;
  /// Routes to the owning shard's checked upsert; ResourceExhausted means
  /// that one shard's pool is full while the others keep absorbing writes.
  /// The inherited MultiUpsertChecked loops this per key, preserving the
  /// input-order durable-prefix contract across shards.
  Status UpsertChecked(uint64_t key, uint64_t value, bool* inserted) override;
  /// Batched ops (index API v3.1): one hash-partition pass splits the
  /// batch into per-shard sub-batches — input order is preserved within
  /// each shard, and a key always routes to one shard, so duplicate-key
  /// semantics match the loop oracle — then each sub-batch runs through
  /// the shard's native batch path, shard-parallel (ParallelShards) for
  /// large batches over concurrent inners. Results reassemble in input
  /// order.
  void MultiGet(const uint64_t* keys, size_t n, uint64_t* values,
                uint8_t* found) override;
  void MultiPut(const uint64_t* keys, const uint64_t* values, size_t n,
                uint8_t* inserted) override;
  void MultiUpsert(const uint64_t* keys, const uint64_t* values, size_t n,
                   uint8_t* inserted) override;
  /// Globally ordered scan: k-way merge over per-shard cursors.
  size_t RangeScan(uint64_t start, size_t limit,
                   const ScanCallback& cb) override;
  std::unique_ptr<index::KVScanCursor> OpenScan(uint64_t start,
                                                size_t limit) override;
  size_t Size() const override;
  uint64_t DramBytes() const override;
  uint64_t ScmBytes() const override;
  /// Wall-clock of the slowest shard's attach-time recovery.
  uint64_t RecoveryNanos() const override;
  obs::Snapshot Stats() const override;
  bool concurrent() const override { return concurrent_; }
  bool CheckInvariants(std::string* why) override;

  size_t shards() const { return shards_.size(); }
  index::KVIndex* shard(size_t i) { return shards_[i].index.get(); }
  /// Shard the key routes to (exposed for tests/differentials).
  size_t ShardOf(uint64_t key) const;

 private:
  struct Shard {
    std::unique_ptr<scm::Pool> pool;
    std::unique_ptr<index::KVIndex> index;
    uint64_t open_nanos = 0;  // pool open + inner construction (recovery)
  };

  ShardedKVIndex() = default;

  std::vector<Shard> shards_;
  uint32_t threads_ = 0;
  bool concurrent_ = false;
  std::string inner_name_;
};

/// Var-key sharded engine; see ShardedKVIndex.
class ShardedVarIndex final : public index::VarIndex {
 public:
  static Status Make(const std::string& inner, const ShardedOptions& opts,
                     std::unique_ptr<ShardedVarIndex>* out);

  ~ShardedVarIndex() override;

  bool Find(std::string_view key, uint64_t* value) override;
  bool Insert(std::string_view key, uint64_t value) override;
  bool Update(std::string_view key, uint64_t value) override;
  bool Erase(std::string_view key) override;
  bool Upsert(std::string_view key, uint64_t value) override;
  /// Checked upsert; see ShardedKVIndex::UpsertChecked.
  Status UpsertChecked(std::string_view key, uint64_t value,
                       bool* inserted) override;
  /// Batched ops: see ShardedKVIndex — hash-partition once, per-shard
  /// sub-batches, input-order reassembly.
  void MultiGet(const std::string_view* keys, size_t n, uint64_t* values,
                uint8_t* found) override;
  void MultiPut(const std::string_view* keys, const uint64_t* values,
                size_t n, uint8_t* inserted) override;
  void MultiUpsert(const std::string_view* keys, const uint64_t* values,
                   size_t n, uint8_t* inserted) override;
  size_t RangeScan(std::string_view start, size_t limit,
                   const ScanCallback& cb) override;
  std::unique_ptr<index::VarScanCursor> OpenScan(std::string_view start,
                                                 size_t limit) override;
  size_t Size() const override;
  uint64_t DramBytes() const override;
  uint64_t ScmBytes() const override;
  uint64_t RecoveryNanos() const override;
  obs::Snapshot Stats() const override;
  bool concurrent() const override { return concurrent_; }
  bool CheckInvariants(std::string* why) override;

  size_t shards() const { return shards_.size(); }
  index::VarIndex* shard(size_t i) { return shards_[i].index.get(); }
  size_t ShardOf(std::string_view key) const;

 private:
  struct Shard {
    std::unique_ptr<scm::Pool> pool;
    std::unique_ptr<index::VarIndex> index;
    uint64_t open_nanos = 0;
  };

  ShardedVarIndex() = default;

  std::vector<Shard> shards_;
  uint32_t threads_ = 0;
  bool concurrent_ = false;
  std::string inner_name_;
};

/// Parses a `sharded(<inner>,<N>)` spec. Returns true and fills
/// inner/shards on match; false when `spec` is not a sharded spec at all
/// (a plain tree name). A malformed sharded spec (bad count, missing
/// paren) returns true with *error set, so callers can distinguish "not
/// sharded" from "sharded but broken".
bool ParseShardedSpec(const std::string& spec, std::string* inner,
                      size_t* shards, Status* error);

/// Builds a var-key index from a tree spec: a plain registered name makes
/// a 1..N-shard engine per `opts.shards`; a `sharded(inner,N)` spec
/// overrides opts.shards with N. Unknown inner names surface the checked
/// registry Status (registered-name list included).
Status MakeVarIndexFromSpec(const std::string& spec,
                            const ShardedOptions& opts,
                            std::unique_ptr<index::VarIndex>* out);

/// Fixed-key twin of MakeVarIndexFromSpec.
Status MakeFixedIndexFromSpec(const std::string& spec,
                              const ShardedOptions& opts,
                              std::unique_ptr<index::KVIndex>* out);

}  // namespace engine
}  // namespace fptree
