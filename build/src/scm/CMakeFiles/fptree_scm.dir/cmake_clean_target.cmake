file(REMOVE_RECURSE
  "libfptree_scm.a"
)
