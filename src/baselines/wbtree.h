// Copyright (c) FPTree reproduction authors.
//
// wBTree (Chen & Jin, PVLDB'15), re-implemented as the paper's §6.1 does:
// a persistent B+-Tree residing ENTIRELY in SCM (inner nodes included), with
// unsorted nodes, validity bitmaps as the p-atomic commit word, and sorted
// indirection slot arrays enabling binary search. As in the paper's
// re-implementation, the original undo-redo logs are replaced with the more
// lightweight FPTree-style micro-logs (one per tree level, plus a root log).
//
// Design notes mirroring the original:
//  * every node modification invalidates the node's slot array first, then
//    commits via the bitmap, then rebuilds the slot array — the extra SCM
//    writes are the price of binary search (log2(m) key probes, Fig. 4);
//  * searches fall back to a linear bitmap scan whenever the slot array is
//    invalid (e.g. right after a crash) and rebuild it opportunistically;
//  * inner routing entries are (max-key-of-subtree, child) pairs; a lookup
//    follows the smallest entry key >= the probe (or the largest entry);
//  * the paper notes the original wBTree is oblivious to persistent memory
//    leaks and node reclamation; we keep that behaviour faithfully: emptied
//    leaves stay allocated (and are reported by the memory benchmark).

#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/tree_stats.h"
#include "scm/alloc.h"
#include "scm/crash.h"
#include "scm/pmem.h"
#include "scm/pool.h"
#include "util/timer.h"

namespace fptree {
namespace baselines {

/// \brief Single-threaded wBTree. Default node sizes per paper Table 1:
/// inner 32, leaf 64.
template <typename Value = uint64_t, size_t kLeafCap = 64,
          size_t kInnerCap = 32>
class WBTree {
  static_assert(kLeafCap >= 2 && kLeafCap <= 64);
  static_assert(kInnerCap >= 4 && kInnerCap <= 64);
  static_assert(std::is_trivially_copyable_v<Value>);

 public:
  using Key = uint64_t;

  static constexpr uint64_t kMaxLevels = 16;

  /// Common persistent node header: level 0 = leaf.
  struct NodeHeader {
    uint64_t level;
    uint64_t bitmap;
    uint64_t n_slots;  ///< 0 => slot array invalid, rebuild lazily
  };

  struct alignas(64) LeafNode {
    NodeHeader hdr;
    scm::PPtr<LeafNode> next;
    uint8_t slots[kLeafCap];
    Key keys[kLeafCap];
    Value values[kLeafCap];
  };

  struct alignas(64) InnerNode {
    NodeHeader hdr;
    uint64_t reserved[2];
    uint8_t slots[kInnerCap];
    Key keys[kInnerCap];
    scm::VoidPPtr children[kInnerCap];
  };

  struct alignas(64) SplitLog {
    scm::VoidPPtr p_current;
    scm::VoidPPtr p_new;
    uint64_t split_key;
    uint64_t old_max;
  };

  struct alignas(64) RootLog {
    scm::PPtr<InnerNode> p_new_root;
  };

  struct alignas(64) PRoot {
    static constexpr uint64_t kMagic = 0xF97EE000000003ULL;

    uint64_t magic;
    scm::VoidPPtr root;  ///< root node (leaf when tree has one level)
    scm::PPtr<LeafNode> head;
    RootLog root_log;
    SplitLog split_logs[kMaxLevels];
  };

  explicit WBTree(scm::Pool* pool) : pool_(pool) { AttachOrInit(); }

  WBTree(const WBTree&) = delete;
  WBTree& operator=(const WBTree&) = delete;

  bool Find(Key key, Value* value) {
    ++stats_.finds;
    LeafNode* leaf = DescendToLeaf(key, nullptr);
    int idx = SearchLeaf(leaf, key);
    if (idx < 0) return false;
    scm::ReadScm(&leaf->values[idx], sizeof(Value));
    *value = leaf->values[idx];
    return true;
  }

  bool Insert(Key key, const Value& value) {
    bool inserted = false;
    return InsertChecked(key, value, &inserted).ok() && inserted;
  }

  /// Status-propagating insert (DESIGN.md §12): ResourceExhausted means an
  /// allocation in the split cascade failed; the cascade was unwound and
  /// the tree is unchanged (completed sibling splits excepted — those are
  /// independent consistent transformations).
  Status InsertChecked(Key key, const Value& value, bool* inserted) {
    *inserted = false;
    DescentPath path;
    LeafNode* leaf = DescendToLeaf(key, &path, /*raise_bound=*/true);
    if (SearchLeaf(leaf, key) >= 0) return Status::OK();
    // The post-split re-descent can land on a sibling leaf that is itself
    // full (when the key range was re-routed by ancestor fix-ups), so split
    // until the owning leaf has room.
    while (NodeCount(&leaf->hdr) == kLeafCap) {
      leaf = SplitLeafAndRoute(leaf, key, &path);
      if (leaf == nullptr) return NoSpace();
    }
    InsertIntoLeaf(leaf, key, value);
    ++size_;
    *inserted = true;
    return Status::OK();
  }

  bool Update(Key key, const Value& value) {
    bool updated = false;
    return UpdateChecked(key, value, &updated).ok() && updated;
  }

  /// Status-propagating update; on ResourceExhausted the old value remains
  /// intact and readable.
  Status UpdateChecked(Key key, const Value& value, bool* updated) {
    *updated = false;
    LeafNode* leaf = DescendToLeaf(key, nullptr);
    int prev = SearchLeaf(leaf, key);
    if (prev < 0) return Status::OK();
    if (NodeCount(&leaf->hdr) == kLeafCap) {
      // Out-of-place update needs one free slot; split if full.
      DescentPath path;
      leaf = DescendToLeaf(key, &path);
      leaf = SplitLeafAndRoute(leaf, key, &path);
      if (leaf == nullptr) return NoSpace();
      prev = SearchLeaf(leaf, key);
      assert(prev >= 0);
    }
    int slot = FindFreeEntry(&leaf->hdr, kLeafCap);
    assert(slot >= 0);
    InvalidateSlots(&leaf->hdr);
    scm::pmem::Store(&leaf->keys[slot], key);
    scm::pmem::Store(&leaf->values[slot], value);
    scm::pmem::Persist(&leaf->keys[slot]);
    scm::pmem::Persist(&leaf->values[slot]);
    uint64_t bmp = leaf->hdr.bitmap;
    bmp &= ~(uint64_t{1} << prev);
    bmp |= uint64_t{1} << slot;
    scm::pmem::StorePersist(&leaf->hdr.bitmap, bmp);
    SCM_CRASH_POINT("wbtree.update.committed");
    RebuildLeafSlots(leaf);
    *updated = true;
    return Status::OK();
  }

  static Status NoSpace() {
    return Status::ResourceExhausted(
        "wbtree: pool out of space (split allocation failed)");
  }

  bool Erase(Key key) {
    LeafNode* leaf = DescendToLeaf(key, nullptr);
    int idx = SearchLeaf(leaf, key);
    if (idx < 0) return false;
    InvalidateSlots(&leaf->hdr);
    scm::pmem::StorePersist(&leaf->hdr.bitmap,
                            leaf->hdr.bitmap & ~(uint64_t{1} << idx));
    SCM_CRASH_POINT("wbtree.erase.committed");
    RebuildLeafSlots(leaf);
    // Faithful to the original: emptied leaves are not reclaimed.
    --size_;
    return true;
  }

  void RangeScan(Key start, size_t limit,
                 std::vector<std::pair<Key, Value>>* out) {
    out->clear();
    LeafNode* leaf = DescendToLeaf(start, nullptr);
    while (leaf != nullptr && out->size() < limit) {
      scm::ReadScm(leaf, sizeof(NodeHeader) + sizeof(leaf->next) + kLeafCap);
      std::vector<std::pair<Key, Value>> in_leaf;
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (!TestBit(&leaf->hdr, i)) continue;
        scm::ReadScm(&leaf->keys[i], sizeof(Key));
        if (leaf->keys[i] >= start) {
          scm::ReadScm(&leaf->values[i], sizeof(Value));
          in_leaf.emplace_back(leaf->keys[i], leaf->values[i]);
        }
      }
      std::sort(in_leaf.begin(), in_leaf.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (auto& p : in_leaf) {
        if (out->size() >= limit) break;
        out->push_back(p);
      }
      leaf = leaf->next.get();
    }
  }

  size_t Size() const { return size_; }
  ~WBTree() { core::FlushTreeStats(stats_); }

  core::TreeOpStats& stats() { return stats_; }
  const core::TreeOpStats& stats() const { return stats_; }
  /// Fully SCM-resident: no DRAM footprint beyond the handle itself.
  uint64_t DramBytes() const { return 0; }
  uint64_t ScmBytes() const { return pool_->allocator()->heap_used_bytes(); }
  uint64_t last_recovery_nanos() const { return recovery_nanos_; }

  /// Test/debug hook: prints the node structure to stderr.
  void DebugDump() { DumpNode(static_cast<NodeHeader*>(proot_->root.get()), 0); }

  bool CheckConsistency(std::string* why) const {
    LeafNode* leaf = proot_->head.get();
    Key prev_max = 0;
    bool first = true;
    size_t total = 0;
    while (leaf != nullptr) {
      Key mn = ~Key{0}, mx = 0;
      size_t cnt = 0;
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (!TestBit(&leaf->hdr, i)) continue;
        ++cnt;
        mn = std::min(mn, leaf->keys[i]);
        mx = std::max(mx, leaf->keys[i]);
      }
      if (cnt > 0) {
        if (!first && mn <= prev_max) {
          *why = "leaf list out of order";
          return false;
        }
        prev_max = mx;
        first = false;
      }
      total += cnt;
      leaf = leaf->next.get();
    }
    if (total != size_) {
      *why = "size mismatch: counted " + std::to_string(total) + " vs " +
             std::to_string(size_);
      return false;
    }
    return true;
  }

  /// Full invariant sweep (DESIGN.md §8): structural consistency, sorted
  /// slot-array soundness on every node, level monotonicity, every live
  /// key findable via the tree's own descent (the functional routing
  /// invariant — separator keys themselves may go stale by design),
  /// leaf-chain/tree agreement, and the persistent-leak audit.
  bool CheckInvariants(std::string* why) {
    if (!CheckConsistency(why)) return false;
    std::unordered_set<uint64_t> reachable;
    reachable.insert(pool_->root().offset);
    std::unordered_set<uint64_t> tree_leaves;
    if (!CheckNodeInvariants(static_cast<NodeHeader*>(proot_->root.get()),
                             &reachable, &tree_leaves, why)) {
      return false;
    }
    // The leaf chain and the routed leaf set must agree exactly (emptied
    // leaves stay both linked and routed, faithful to the original), and
    // every live key must route back to the leaf holding it.
    size_t chain = 0;
    for (LeafNode* leaf = proot_->head.get(); leaf != nullptr;
         leaf = leaf->next.get()) {
      if (tree_leaves.count(pool_->ToPPtr(leaf).offset) == 0) {
        *why = "linked leaf unreachable from the root";
        return false;
      }
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (!TestBit(&leaf->hdr, i)) continue;
        if (DescendToLeaf(leaf->keys[i], nullptr) != leaf) {
          *why = "key " + std::to_string(leaf->keys[i]) +
                 " does not route to the leaf holding it";
          return false;
        }
      }
      ++chain;
    }
    if (chain != tree_leaves.size()) {
      *why = "routed leaves missing from the leaf chain: " +
             std::to_string(tree_leaves.size()) + " routed vs " +
             std::to_string(chain) + " linked";
      return false;
    }
    if (!proot_->root_log.p_new_root.IsNull()) {
      reachable.insert(proot_->root_log.p_new_root.offset);
    }
    for (size_t i = 0; i < kMaxLevels; ++i) {
      const SplitLog& log = proot_->split_logs[i];
      if (!log.p_current.IsNull()) reachable.insert(log.p_current.offset);
      if (!log.p_new.IsNull()) reachable.insert(log.p_new.offset);
    }
    for (uint64_t off : pool_->allocator()->AllocatedPayloadOffsets()) {
      if (reachable.count(off) == 0) {
        *why = "leaked block at offset " + std::to_string(off);
        return false;
      }
    }
    return true;
  }

 private:
  /// Slot-array soundness for one node: a valid (non-zero) n_slots is
  /// exactly the bitmap population, lists each valid entry once, and walks
  /// the keys in sorted order.
  template <typename NodeT>
  bool CheckSlotArray(const NodeT* node, size_t cap, std::string* why) {
    const NodeHeader* h = &node->hdr;
    if (h->n_slots == 0) return true;  // invalidated: rebuilt lazily
    size_t n = NodeCount(h);
    if (h->n_slots != n) {
      *why = "slot array count " + std::to_string(h->n_slots) +
             " != bitmap population " + std::to_string(n);
      return false;
    }
    uint64_t seen = 0;
    Key prev = 0;
    for (size_t j = 0; j < n; ++j) {
      uint8_t s = node->slots[j];
      if (s >= cap || !TestBit(h, s)) {
        *why = "slot array references invalid entry " + std::to_string(s);
        return false;
      }
      if ((seen >> s) & 1) {
        *why = "slot array references entry " + std::to_string(s) + " twice";
        return false;
      }
      seen |= uint64_t{1} << s;
      if (j > 0 && node->keys[s] < prev) {
        *why = "slot array out of sorted order";
        return false;
      }
      prev = node->keys[s];
    }
    return true;
  }

  /// Recursive node audit: slot arrays, level monotonicity, null children.
  /// Separator keys are upper bounds only in spirit — the largest entry of
  /// a node legitimately goes stale (a split morphs the historical-max
  /// separator down to the split key, and step-2 insertion can tie entry
  /// keys), so there is no per-entry bound to assert structurally; instead
  /// CheckInvariants verifies routing functionally, key by key, through
  /// DescendToLeaf.
  bool CheckNodeInvariants(NodeHeader* h,
                           std::unordered_set<uint64_t>* reachable,
                           std::unordered_set<uint64_t>* tree_leaves,
                           std::string* why) {
    reachable->insert(pool_->ToPPtr(h).offset);
    if (h->level == 0) {
      LeafNode* leaf = reinterpret_cast<LeafNode*>(h);
      tree_leaves->insert(pool_->ToPPtr(h).offset);
      return CheckSlotArray(leaf, kLeafCap, why);
    }
    InnerNode* node = reinterpret_cast<InnerNode*>(h);
    if (!CheckSlotArray(node, kInnerCap, why)) return false;
    for (size_t i = 0; i < kInnerCap; ++i) {
      if (!TestBit(h, i)) continue;
      NodeHeader* ch = static_cast<NodeHeader*>(node->children[i].get());
      if (ch == nullptr) {
        *why = "inner entry with null child";
        return false;
      }
      if (ch->level + 1 != h->level) {
        *why = "child level " + std::to_string(ch->level) +
               " under inner level " + std::to_string(h->level);
        return false;
      }
      if (!CheckNodeInvariants(ch, reachable, tree_leaves, why)) return false;
    }
    return true;
  }

  void DumpNode(NodeHeader* h, int d) {
    if (h->level == 0) {
      LeafNode* l = reinterpret_cast<LeafNode*>(h);
      std::fprintf(stderr, "%*sLEAF %lx:", d * 2, "",
                   static_cast<unsigned long>(pool_->ToPPtr(l).offset));
      for (size_t i = 0; i < kLeafCap; ++i) {
        if ((h->bitmap >> i) & 1) std::fprintf(stderr, " %lu", l->keys[i]);
      }
      std::fprintf(stderr, "\n");
      return;
    }
    InnerNode* n = reinterpret_cast<InnerNode*>(h);
    std::fprintf(stderr, "%*sINNER %lx lvl=%lu:", d * 2, "",
                 static_cast<unsigned long>(pool_->ToPPtr(n).offset),
                 h->level);
    for (size_t i = 0; i < kInnerCap; ++i) {
      if ((h->bitmap >> i) & 1) {
        std::fprintf(stderr, " [%lu->%lx]", n->keys[i],
                     static_cast<unsigned long>(n->children[i].offset));
      }
    }
    std::fprintf(stderr, "\n");
    for (size_t i = 0; i < kInnerCap; ++i) {
      if ((h->bitmap >> i) & 1) {
        DumpNode(static_cast<NodeHeader*>(n->children[i].get()), d + 1);
      }
    }
  }

  struct DescentPath {
    InnerNode* nodes[kMaxLevels];
    uint32_t depth = 0;
  };

  // --- Node primitives -----------------------------------------------------

  static bool TestBit(const NodeHeader* h, size_t i) {
    return (h->bitmap >> i) & 1;
  }
  static size_t NodeCount(const NodeHeader* h) {
    return static_cast<size_t>(__builtin_popcountll(h->bitmap));
  }
  static int FindFreeEntry(const NodeHeader* h, size_t cap) {
    uint64_t inv = ~h->bitmap;
    if (cap < 64) inv &= (uint64_t{1} << cap) - 1;
    return inv == 0 ? -1 : __builtin_ctzll(inv);
  }

  static void InvalidateSlots(NodeHeader* h) {
    if (h->n_slots == 0) return;
    scm::pmem::StorePersist(&h->n_slots, uint64_t{0});
  }

  void RebuildLeafSlots(LeafNode* leaf) {
    uint8_t tmp[kLeafCap];
    size_t n = 0;
    for (size_t i = 0; i < kLeafCap; ++i) {
      if (TestBit(&leaf->hdr, i)) tmp[n++] = static_cast<uint8_t>(i);
    }
    std::sort(tmp, tmp + n, [&](uint8_t a, uint8_t b) {
      return leaf->keys[a] < leaf->keys[b];
    });
    scm::pmem::StoreBytes(leaf->slots, tmp, n);
    scm::pmem::Persist(leaf->slots, n);
    scm::pmem::StorePersist(&leaf->hdr.n_slots, static_cast<uint64_t>(n));
  }

  void RebuildInnerSlots(InnerNode* node) {
    uint8_t tmp[kInnerCap];
    size_t n = 0;
    for (size_t i = 0; i < kInnerCap; ++i) {
      if (TestBit(&node->hdr, i)) tmp[n++] = static_cast<uint8_t>(i);
    }
    std::sort(tmp, tmp + n, [&](uint8_t a, uint8_t b) {
      return node->keys[a] < node->keys[b];
    });
    scm::pmem::StoreBytes(node->slots, tmp, n);
    scm::pmem::Persist(node->slots, n);
    scm::pmem::StorePersist(&node->hdr.n_slots, static_cast<uint64_t>(n));
  }

  // --- Search --------------------------------------------------------------

  /// Routes to the child for `key`: the entry with the smallest key >= key,
  /// or the entry with the largest key when key exceeds all separators.
  /// When `raise_bound` is set (insert descents), the fallback case
  /// p-atomically raises the chosen entry's key to `key`, maintaining the
  /// invariant "entry key >= every key in the subtree" — without it, the
  /// right-most subtree at each level accumulates content above its
  /// separator and splits that trust the separators strand those keys.
  InnerNode* ChildEntry(InnerNode* node, Key key, int* entry_idx,
                        bool raise_bound = false) {
    InnerNode* r = ChildEntryImpl(node, key, entry_idx);
    if (raise_bound && *entry_idx >= 0 && node->keys[*entry_idx] < key) {
      scm::pmem::StorePersist(&node->keys[*entry_idx], key);
      // The raised entry was the largest, so the sorted slot array remains
      // valid.
    }
    return r;
  }

  InnerNode* ChildEntryImpl(InnerNode* node, Key key, int* entry_idx) {
    scm::ReadScm(node, sizeof(NodeHeader) + 16 + kInnerCap);
    size_t n = NodeCount(&node->hdr);
    if (node->hdr.n_slots == n && n > 0) {
      // Binary search over the sorted indirection array.
      size_t lo = 0, hi = n;
      while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        scm::ReadScm(&node->keys[node->slots[mid]], sizeof(Key));
        if (node->keys[node->slots[mid]] < key) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      size_t pick = lo == n ? n - 1 : lo;
      *entry_idx = node->slots[pick];
      return node;
    }
    // Linear fallback (slot array invalid): smallest key >= key, else max.
    // ctz iteration visits exactly the valid entries, ascending — same
    // probes and SCM charges as the TestBit loop.
    int best = -1, max_e = -1;
    Key best_key = 0, max_key = 0;
    uint64_t valid = node->hdr.bitmap;
    if constexpr (kInnerCap < 64) valid &= (uint64_t{1} << kInnerCap) - 1;
    while (valid != 0) {
      size_t i = static_cast<size_t>(__builtin_ctzll(valid));
      valid &= valid - 1;
      scm::ReadScm(&node->keys[i], sizeof(Key));
      Key k = node->keys[i];
      if (k >= key && (best < 0 || k < best_key)) {
        best = static_cast<int>(i);
        best_key = k;
      }
      if (max_e < 0 || k > max_key) {
        max_e = static_cast<int>(i);
        max_key = k;
      }
    }
    RebuildInnerSlots(node);  // opportunistic repair
    *entry_idx = best >= 0 ? best : max_e;
    return node;
  }

  LeafNode* DescendToLeaf(Key key, DescentPath* path,
                          bool raise_bound = false) {
    if (path != nullptr) path->depth = 0;
    scm::VoidPPtr cur = proot_->root;
    for (;;) {
      NodeHeader* h = static_cast<NodeHeader*>(cur.get());
      scm::ReadScm(h, sizeof(NodeHeader));
      if (h->level == 0) return static_cast<LeafNode*>(cur.get());
      InnerNode* node = static_cast<InnerNode*>(cur.get());
      if (path != nullptr) path->nodes[path->depth++] = node;
      int e = -1;
      ChildEntry(node, key, &e, raise_bound);
      assert(e >= 0);
      cur = node->children[e];
    }
  }

  /// Binary search in a leaf via the slot array (log2(m) key probes — the
  /// paper's Fig. 4 series for the wBTree); linear fallback when invalid.
  int SearchLeaf(LeafNode* leaf, Key key) {
    scm::ReadScm(leaf, sizeof(NodeHeader) + sizeof(leaf->next) + kLeafCap);
    size_t n = NodeCount(&leaf->hdr);
    if (n == 0) return -1;
    if (leaf->hdr.n_slots == n) {
      size_t lo = 0, hi = n;
      while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        ++stats_.key_probes;
        scm::ReadScm(&leaf->keys[leaf->slots[mid]], sizeof(Key));
        if (leaf->keys[leaf->slots[mid]] < key) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo == n) return -1;
      int idx = leaf->slots[lo];
      ++stats_.key_probes;
      scm::ReadScm(&leaf->keys[idx], sizeof(Key));
      return leaf->keys[idx] == key ? idx : -1;
    }
    // Linear fallback: ctz iteration over the validity bitmap probes the
    // same valid slots, in the same ascending order, as the TestBit loop.
    int found = -1;
    uint64_t valid = leaf->hdr.bitmap;
    if constexpr (kLeafCap < 64) valid &= (uint64_t{1} << kLeafCap) - 1;
    while (valid != 0) {
      size_t i = static_cast<size_t>(__builtin_ctzll(valid));
      valid &= valid - 1;
      ++stats_.key_probes;
      scm::ReadScm(&leaf->keys[i], sizeof(Key));
      if (leaf->keys[i] == key) {
        found = static_cast<int>(i);
        break;
      }
    }
    RebuildLeafSlots(leaf);
    return found;
  }

  // --- Mutation ------------------------------------------------------------

  void InsertIntoLeaf(LeafNode* leaf, Key key, const Value& value) {
    int slot = FindFreeEntry(&leaf->hdr, kLeafCap);
    assert(slot >= 0);
    InvalidateSlots(&leaf->hdr);
    scm::pmem::Store(&leaf->keys[slot], key);
    scm::pmem::Store(&leaf->values[slot], value);
    scm::pmem::Persist(&leaf->keys[slot]);
    scm::pmem::Persist(&leaf->values[slot]);
    SCM_CRASH_POINT("wbtree.insert.before_bitmap");
    scm::pmem::StorePersist(&leaf->hdr.bitmap,
                            leaf->hdr.bitmap | (uint64_t{1} << slot));
    SCM_CRASH_POINT("wbtree.insert.after_bitmap");
    RebuildLeafSlots(leaf);
  }

  void InsertIntoInner(InnerNode* node, Key key, scm::VoidPPtr child) {
    int slot = FindFreeEntry(&node->hdr, kInnerCap);
    assert(slot >= 0);
    InvalidateSlots(&node->hdr);
    scm::pmem::Store(&node->keys[slot], key);
    scm::pmem::StorePPtr(&node->children[slot], child);
    scm::pmem::Persist(&node->keys[slot]);
    scm::pmem::Persist(&node->children[slot]);
    scm::pmem::StorePersist(&node->hdr.bitmap,
                            node->hdr.bitmap | (uint64_t{1} << slot));
    SCM_CRASH_POINT("wbtree.inner_insert.committed");
    RebuildInnerSlots(node);
  }

  Key MaxKeyOf(NodeHeader* h) {
    Key mx = 0;
    if (h->level == 0) {
      LeafNode* leaf = reinterpret_cast<LeafNode*>(h);
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (TestBit(h, i)) mx = std::max(mx, leaf->keys[i]);
      }
    } else {
      InnerNode* node = reinterpret_cast<InnerNode*>(h);
      for (size_t i = 0; i < kInnerCap; ++i) {
        if (TestBit(h, i)) mx = std::max(mx, node->keys[i]);
      }
    }
    return mx;
  }

  /// Splits `leaf` (micro-logged), fixes parent routing (possibly splitting
  /// ancestors), then re-descends for `key` and returns the leaf that now
  /// owns it. The obvious shortcut — return the `key > sk` half directly —
  /// is wrong when the fix-up cascades: the morph lowers separators to `sk`
  /// before the new entry lands, so after ancestor splits the new leaf's
  /// entry may sit in a node where it is not the largest, and a pending
  /// `key > old_max` placed into that half would be stranded above a
  /// separator that can never be raised. A fresh bound-raising descent is
  /// the only placement that preserves the routing invariant.
  /// Returns nullptr when any allocation in the cascade fails; the data
  /// move is rolled back (see UnwindSplitDataMove) and the log reset.
  LeafNode* SplitLeafAndRoute(LeafNode* leaf, Key key, DescentPath* path) {
    SplitLog* log = &proot_->split_logs[0];
    Key old_max = MaxKeyOf(&leaf->hdr);
    Key sk = LeafSplitKey(leaf);
    BeginSplitLog(log, pool_->ToPPtr(leaf).template Cast<void>(), sk, old_max);
    SCM_CRASH_POINT("wbtree.split.logged");
    Status s = pool_->allocator()->Allocate(&log->p_new, sizeof(LeafNode));
    if (!s.ok()) {
      ResetSplitLog(log);
      return nullptr;
    }
    ++stats_.leaf_splits;
    SCM_CRASH_POINT("wbtree.split.allocated");
    FinishLeafSplitData(log);
    if (!FixParentAfterSplit(log, /*level=*/0, path)) {
      UnwindSplitDataMove(log, /*level=*/0);
      ResetSplitLog(log);
      return nullptr;
    }
    ResetSplitLog(log);
    return DescendToLeaf(key, path, /*raise_bound=*/true);
  }

  void BeginSplitLog(SplitLog* log, scm::VoidPPtr current, Key sk,
                     Key old_max) {
    scm::pmem::StorePPtr(&log->p_current, current);
    scm::pmem::Store(&log->split_key, sk);
    scm::pmem::Store(&log->old_max, old_max);
    scm::pmem::Persist(log, sizeof(*log));
  }

  void ResetSplitLog(SplitLog* log) {
    scm::pmem::StorePPtr(&log->p_current, scm::VoidPPtr::Null());
    scm::pmem::StorePPtr(&log->p_new, scm::VoidPPtr::Null());
    scm::pmem::Persist(log, sizeof(*log));
  }

  Key LeafSplitKey(LeafNode* leaf) {
    Key keys[kLeafCap];
    size_t n = 0;
    for (size_t i = 0; i < kLeafCap; ++i) {
      if (TestBit(&leaf->hdr, i)) keys[n++] = leaf->keys[i];
    }
    size_t h = n / 2;
    std::nth_element(keys, keys + (h - 1), keys + n);
    return keys[h - 1];
  }

  /// Moves the upper half of the logged leaf into the (already allocated)
  /// new leaf: copy, commit new bitmap, halve old bitmap, link. Idempotent.
  void FinishLeafSplitData(SplitLog* log) {
    LeafNode* leaf = static_cast<LeafNode*>(log->p_current.get());
    LeafNode* nl = static_cast<LeafNode*>(log->p_new.get());
    Key sk = log->split_key;
    scm::pmem::StoreBytes(nl, leaf, sizeof(LeafNode));
    uint64_t upper = 0;
    for (size_t i = 0; i < kLeafCap; ++i) {
      if (TestBit(&leaf->hdr, i) && leaf->keys[i] > sk) {
        upper |= uint64_t{1} << i;
      }
    }
    scm::pmem::Store(&nl->hdr.level, uint64_t{0});
    scm::pmem::Store(&nl->hdr.n_slots, uint64_t{0});
    scm::pmem::Store(&nl->hdr.bitmap, upper);
    scm::pmem::Persist(nl, sizeof(LeafNode));
    SCM_CRASH_POINT("wbtree.split.new_ready");
    InvalidateSlots(&leaf->hdr);
    scm::pmem::StorePersist(&leaf->hdr.bitmap, leaf->hdr.bitmap & ~upper);
    SCM_CRASH_POINT("wbtree.split.old_bitmap");
    scm::pmem::StorePPtrPersist(&leaf->next, log->p_new.template Cast<LeafNode>());
    SCM_CRASH_POINT("wbtree.split.linked");
    RebuildLeafSlots(leaf);
    RebuildLeafSlots(nl);
  }

  /// Splits inner `node` at `level` (its own micro-log), then fixes ITS
  /// parent. After the call the entries of `node` are halved. Returns
  /// false (with the node restored and the log reset) when an allocation
  /// anywhere in the nested cascade fails.
  bool SplitInner(InnerNode* node, uint64_t level, DescentPath* path) {
    SplitLog* log = &proot_->split_logs[level];
    Key old_max = MaxKeyOf(&node->hdr);
    Key sk = InnerSplitKey(node);
    BeginSplitLog(log, pool_->ToPPtr(node).template Cast<void>(), sk,
                  old_max);
    Status s = pool_->allocator()->Allocate(&log->p_new, sizeof(InnerNode));
    if (!s.ok()) {
      ResetSplitLog(log);
      return false;
    }
    SCM_CRASH_POINT("wbtree.inner_split.allocated");
    FinishInnerSplitData(log);
    if (!FixParentAfterSplit(log, level, path)) {
      UnwindSplitDataMove(log, level);
      ResetSplitLog(log);
      return false;
    }
    ResetSplitLog(log);
    return true;
  }

  Key InnerSplitKey(InnerNode* node) {
    Key keys[kInnerCap];
    size_t n = 0;
    for (size_t i = 0; i < kInnerCap; ++i) {
      if (TestBit(&node->hdr, i)) keys[n++] = node->keys[i];
    }
    size_t h = n / 2;
    std::nth_element(keys, keys + (h - 1), keys + n);
    return keys[h - 1];
  }

  void FinishInnerSplitData(SplitLog* log) {
    InnerNode* node = static_cast<InnerNode*>(log->p_current.get());
    InnerNode* nn = static_cast<InnerNode*>(log->p_new.get());
    Key sk = log->split_key;
    scm::pmem::StoreBytes(nn, node, sizeof(InnerNode));
    uint64_t upper = 0;
    for (size_t i = 0; i < kInnerCap; ++i) {
      if (TestBit(&node->hdr, i) && node->keys[i] > sk) {
        upper |= uint64_t{1} << i;
      }
    }
    scm::pmem::Store(&nn->hdr.level, node->hdr.level);
    scm::pmem::Store(&nn->hdr.n_slots, uint64_t{0});
    scm::pmem::Store(&nn->hdr.bitmap, upper);
    scm::pmem::Persist(nn, sizeof(InnerNode));
    SCM_CRASH_POINT("wbtree.inner_split.new_ready");
    InvalidateSlots(&node->hdr);
    scm::pmem::StorePersist(&node->hdr.bitmap, node->hdr.bitmap & ~upper);
    SCM_CRASH_POINT("wbtree.inner_split.old_bitmap");
    RebuildInnerSlots(node);
    RebuildInnerSlots(nn);
  }

  /// After the node logged in `log` split: ensure the parent (a) has an
  /// entry (split_key -> old node) and (b) routes old_max to the new node.
  /// Creates a new root when the split node was the root. Idempotent —
  /// recovery re-runs it verbatim. Returns false when an allocation in the
  /// (possibly nested) fix-up fails; the caller unwinds its data move.
  bool FixParentAfterSplit(SplitLog* log, uint64_t level, DescentPath* path) {
    scm::VoidPPtr old_node = log->p_current;
    scm::VoidPPtr new_node = log->p_new;
    Key sk = log->split_key;
    Key old_max = log->old_max;

    if (proot_->root == old_node) {
      // Root split: build a fresh root (own micro-log for leak safety).
      RootLog* rlog = &proot_->root_log;
      Status s =
          pool_->allocator()->Allocate(&rlog->p_new_root, sizeof(InnerNode));
      if (!s.ok()) return false;
      SCM_CRASH_POINT("wbtree.rootsplit.allocated");
      InnerNode* root = rlog->p_new_root.get();
      InnerNode fresh{};
      fresh.hdr.level = level + 1;
      fresh.hdr.bitmap = 3;  // entries 0 and 1
      fresh.hdr.n_slots = 2;
      fresh.slots[0] = 0;
      fresh.slots[1] = 1;
      fresh.keys[0] = sk;
      fresh.children[0] = old_node;
      fresh.keys[1] = old_max;
      fresh.children[1] = new_node;
      scm::pmem::StoreBytes(root, &fresh, sizeof(fresh));
      scm::pmem::Persist(root, sizeof(*root));
      SCM_CRASH_POINT("wbtree.rootsplit.ready");
      scm::pmem::StorePPtrPersist(&proot_->root,
                                  rlog->p_new_root.template Cast<void>());
      SCM_CRASH_POINT("wbtree.rootsplit.swung");
      scm::pmem::StorePPtrPersist(&rlog->p_new_root,
                                  scm::PPtr<InnerNode>::Null());
      return true;
    }

    // Locate the parent: prefer the recorded descent path; fall back to a
    // fresh descent (recovery has no path).
    InnerNode* parent = nullptr;
    if (path != nullptr && path->depth > 0) {
      parent = path->nodes[path->depth - 1 -
                           static_cast<uint32_t>(level)];
    } else {
      parent = DescendToLevel(sk, level + 1);
    }
    assert(parent != nullptr);

    // At steady state each node is routed by exactly one parent entry
    // (K0 -> old). K0 is the subtree's HISTORICAL max: for the right-most
    // subtree it can be stale — even smaller than sk — because keys beyond
    // all separators route to the largest entry. Target state:
    //     {(sk -> old), (old_max -> new)}.
    // Step 1: morph the existing (K0 -> old) entry into (sk -> old) with a
    // single p-atomic key overwrite (no extra slot, never empties a node).
    // Step 2: insert (old_max -> new) where old_max routes. Each step is
    // persistent-atomic and the procedure is idempotent under recovery.
    int have_sk_old = -1, have_obsolete = -1;
    for (size_t i = 0; i < kInnerCap; ++i) {
      if (!TestBit(&parent->hdr, i)) continue;
      if (parent->children[i] == old_node) {
        if (parent->keys[i] == sk) {
          have_sk_old = static_cast<int>(i);
        } else {
          have_obsolete = static_cast<int>(i);
        }
      }
    }
    if (have_obsolete >= 0 && have_sk_old < 0) {
      InvalidateSlots(&parent->hdr);
      scm::pmem::StorePersist(&parent->keys[have_obsolete], sk);
      RebuildInnerSlots(parent);
      SCM_CRASH_POINT("wbtree.split.parent_lower");
    } else if (have_sk_old < 0) {
      // No routing entry for the old node here (a prior attempt crashed
      // mid-way); insert one, splitting the parent on overflow.
      if (NodeCount(&parent->hdr) == kInnerCap) {
        if (!SplitInner(parent, parent->hdr.level, nullptr)) return false;
        return FixParentAfterSplit(log, level, nullptr);
      }
      InsertIntoInner(parent, sk, old_node);
      SCM_CRASH_POINT("wbtree.split.parent_lower");
    }

    // Step 2: route the upper half where old_max NOW routes. Note that the
    // step-1 morph may have re-routed (sk, K0] to an arbitrary sibling
    // subtree, which can itself be full — keep splitting and re-descending
    // until there is room (each split strictly reduces fullness).
    for (;;) {
      InnerNode* q = DescendToLevel(old_max, level + 1);
      bool have_max_new = false;
      for (size_t i = 0; i < kInnerCap; ++i) {
        if (TestBit(&q->hdr, i) && q->children[i] == new_node &&
            q->keys[i] == old_max) {
          have_max_new = true;
          break;
        }
      }
      if (have_max_new) break;
      if (NodeCount(&q->hdr) < kInnerCap) {
        InsertIntoInner(q, old_max, new_node);
        SCM_CRASH_POINT("wbtree.split.parent_upper");
        break;
      }
      if (!SplitInner(q, q->hdr.level, nullptr)) return false;
    }
    return true;
  }

  /// Rolls back FinishLeaf/InnerSplitData after the parent fix-up failed
  /// for lack of space: the upper half moves back into the old node, the
  /// new node is freed, and a separator the fix-up lowered to split_key is
  /// raised back to old_max (>= the subtree's true max, so routing stays
  /// correct). Completed sibling splits performed while attempting the
  /// fix-up are kept — each is an independent consistent transformation.
  void UnwindSplitDataMove(SplitLog* log, uint64_t level) {
    Key sk = log->split_key;
    Key old_max = log->old_max;
    scm::VoidPPtr old_node = log->p_current;
    if (level == 0) {
      LeafNode* leaf = static_cast<LeafNode*>(log->p_current.get());
      LeafNode* nl = static_cast<LeafNode*>(log->p_new.get());
      InvalidateSlots(&leaf->hdr);
      scm::pmem::StorePersist(&leaf->hdr.bitmap,
                              leaf->hdr.bitmap | nl->hdr.bitmap);
      scm::pmem::StorePPtrPersist(&leaf->next, nl->next);
      RebuildLeafSlots(leaf);
    } else {
      InnerNode* node = static_cast<InnerNode*>(log->p_current.get());
      InnerNode* nn = static_cast<InnerNode*>(log->p_new.get());
      InvalidateSlots(&node->hdr);
      scm::pmem::StorePersist(&node->hdr.bitmap,
                              node->hdr.bitmap | nn->hdr.bitmap);
      RebuildInnerSlots(node);
    }
    InnerNode* parent = DescendToLevel(sk, level + 1);
    if (parent != nullptr) {
      for (size_t i = 0; i < kInnerCap; ++i) {
        if (TestBit(&parent->hdr, i) && parent->children[i] == old_node &&
            parent->keys[i] == sk) {
          InvalidateSlots(&parent->hdr);
          scm::pmem::StorePersist(&parent->keys[i], old_max);
          RebuildInnerSlots(parent);
          break;
        }
      }
    }
    pool_->allocator()->Deallocate(&log->p_new);
  }

  InnerNode* DescendToLevel(Key key, uint64_t level) {
    scm::VoidPPtr cur = proot_->root;
    for (;;) {
      NodeHeader* h = static_cast<NodeHeader*>(cur.get());
      if (h->level == level) return static_cast<InnerNode*>(cur.get());
      if (h->level == 0) return nullptr;
      InnerNode* node = static_cast<InnerNode*>(cur.get());
      int e = -1;
      // Entry-insertion descents must also maintain the bound invariant.
      ChildEntry(node, key, &e, /*raise_bound=*/true);
      cur = node->children[e];
    }
  }

  // --- Initialization & recovery -------------------------------------------

  void AttachOrInit() {
    uint64_t t0 = NowNanos();
    if (pool_->root().IsNull()) {
      Status s =
          pool_->allocator()->Allocate(&pool_->header()->root, sizeof(PRoot));
      assert(s.ok());
      (void)s;
    }
    proot_ = static_cast<PRoot*>(pool_->root().get());
    if (proot_->magic != PRoot::kMagic) {
      PRoot zero{};
      zero.magic = PRoot::kMagic;
      scm::pmem::StoreBytes(proot_, &zero, sizeof(zero));
      scm::pmem::Persist(proot_, sizeof(*proot_));
    }
    RecoverRootLog();
    // Highest level first: a crash inside a nested ancestor split leaves
    // both the leaf-level log and an inner-level log armed. Replaying the
    // leaf log re-runs its parent fix-up, which may call SplitInner on the
    // still-full parent — and SplitInner's Allocate(&log->p_new) would
    // overwrite (and so leak) the block the armed inner log already holds.
    // Draining inner logs first leaves every log the lower-level replay can
    // reach in the idle state.
    for (uint64_t level = kMaxLevels; level-- > 0;) {
      RecoverSplitLog(level);
    }
    if (proot_->root.IsNull()) {
      Status s =
          pool_->allocator()->Allocate(&proot_->head, sizeof(LeafNode));
      assert(s.ok());
      (void)s;
      LeafNode* leaf = proot_->head.get();
      LeafNode fresh{};
      scm::pmem::StoreBytes(leaf, &fresh, sizeof(fresh));
      scm::pmem::Persist(leaf, sizeof(*leaf));
      scm::pmem::StorePPtrPersist(&proot_->root,
                                  proot_->head.template Cast<void>());
    }
    // The size counter is transient; recount (the paper's wBTree stores
    // everything in SCM, so "recovery" is just log replay + this count).
    size_ = 0;
    for (LeafNode* l = proot_->head.get(); l != nullptr; l = l->next.get()) {
      size_ += NodeCount(&l->hdr);
    }
    if (!pool_->root_initialized()) pool_->SetRootInitialized();
    recovery_nanos_ = NowNanos() - t0;
  }

  void RecoverRootLog() {
    RootLog* rlog = &proot_->root_log;
    if (rlog->p_new_root.IsNull()) return;
    InnerNode* nr = rlog->p_new_root.get();
    if (proot_->root.get() == static_cast<void*>(nr)) {
      // Swing completed; just clear the log.
      scm::pmem::StorePPtrPersist(&rlog->p_new_root,
                                  scm::PPtr<InnerNode>::Null());
    } else {
      // New root never installed: reclaim it.
      pool_->allocator()->Deallocate(&rlog->p_new_root);
    }
  }

  void RecoverSplitLog(uint64_t level) {
    SplitLog* log = &proot_->split_logs[level];
    if (log->p_current.IsNull()) {
      ResetSplitLog(log);
      return;
    }
    if (log->p_new.IsNull()) {
      ResetSplitLog(log);
      return;
    }
    // Redo the data movement — but only if the old node is still full; if
    // its bitmap was already halved, re-copying would wipe the moved upper
    // half (the new node's bitmap became durable before the halving).
    if (level == 0) {
      LeafNode* leaf = static_cast<LeafNode*>(log->p_current.get());
      if (NodeCount(&leaf->hdr) == kLeafCap) {
        FinishLeafSplitData(log);
      } else if (!(leaf->next == log->p_new.template Cast<LeafNode>())) {
        scm::pmem::StorePPtrPersist(&leaf->next,
                                    log->p_new.template Cast<LeafNode>());
      }
    } else {
      InnerNode* node = static_cast<InnerNode*>(log->p_current.get());
      if (NodeCount(&node->hdr) == kInnerCap) {
        FinishInnerSplitData(log);
      }
    }
    if (!FixParentAfterSplit(log, level, nullptr)) {
      // Pool exhausted during recovery replay: roll the split back instead
      // of leaving a half-routed tree behind.
      UnwindSplitDataMove(log, level);
    }
    ResetSplitLog(log);
  }

  scm::Pool* pool_;
  PRoot* proot_ = nullptr;
  size_t size_ = 0;
  uint64_t recovery_nanos_ = 0;
  core::TreeOpStats stats_;
};

}  // namespace baselines
}  // namespace fptree
