#include "scm/latency.h"

#include <chrono>
#include <cstring>
#include <memory>

namespace fptree {
namespace scm {

std::atomic<uint64_t> LatencyModel::read_extra_ns_{0};
std::atomic<uint64_t> LatencyModel::write_ns_{0};

namespace {

// Calibrates how many pause-loop iterations one nanosecond costs. Runs once
// per process; the result is cached in an atomic.
double CalibrateIterationsPerNano() {
  using Clock = std::chrono::steady_clock;
  // Warm up.
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;

  constexpr uint64_t kIters = 1000 * 1000;
  auto start = Clock::now();
  for (uint64_t i = 0; i < kIters; ++i) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    asm volatile("" ::: "memory");
#endif
  }
  auto end = Clock::now();
  double ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
  if (ns <= 0) ns = 1;
  double ipn = static_cast<double>(kIters) / ns;
  if (ipn < 0.01) ipn = 0.01;
  return ipn;
}

double IterationsPerNano() {
  static const double ipn = CalibrateIterationsPerNano();
  return ipn;
}

}  // namespace

void LatencyModel::Calibrate() { (void)IterationsPerNano(); }

void LatencyModel::SpinFor(uint64_t ns) {
  if (ns == 0) return;
  uint64_t iters = static_cast<uint64_t>(static_cast<double>(ns) *
                                         IterationsPerNano());
  for (uint64_t i = 0; i < iters; ++i) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    asm volatile("" ::: "memory");
#endif
  }
}

namespace {
struct TagArray {
  std::unique_ptr<uint64_t[]> tags{new uint64_t[ThreadScmCache::kNumSlots]()};
};
thread_local TagArray tls_tags;
}  // namespace

uint64_t* ThreadScmCache::Tags() { return tls_tags.tags.get(); }

void ThreadScmCache::Clear() {
  std::memset(tls_tags.tags.get(), 0, kNumSlots * sizeof(uint64_t));
}

}  // namespace scm
}  // namespace fptree
