// Ablations of the FPTree's design choices (DESIGN.md §4):
//   1. Fingerprints on/off      — FPTree vs PTree family (§4.2).
//   2. Leaf groups on/off       — amortized persistent allocation (§4.3):
//                                 insert throughput and allocator calls.
//   3. HTM backend              — TL2 speculative transactions vs a global
//                                 lock (what Selective Concurrency buys).

#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "core/fptree.h"
#include "core/fptree_concurrent.h"
#include "core/ptree.h"
#include "scm/stats.h"
#include "util/threading.h"

namespace fptree {
namespace bench {
namespace {

template <typename TreeT>
double InsertMops(uint64_t n, uint64_t* allocations) {
  ScopedPool pool(size_t{4} << 30);
  TreeT tree(pool.get());
  auto keys = ShuffledRange(n, 17);
  scm::ClearThreadStats();
  Stopwatch sw;
  for (uint64_t k : keys) tree.Insert(k, k);
  double mops = static_cast<double>(n) / sw.ElapsedSeconds() / 1e6;
  *allocations = scm::ThreadStats().allocations;
  return mops;
}

template <typename TreeT>
double FindMops(uint64_t n) {
  ScopedPool pool(size_t{4} << 30);
  TreeT tree(pool.get());
  for (uint64_t k : ShuffledRange(n, 17)) tree.Insert(k, k);
  auto probe = ShuffledRange(n, 18);
  Stopwatch sw;
  uint64_t v;
  for (uint64_t k : probe) tree.Find(k, &v);
  return static_cast<double>(n) / sw.ElapsedSeconds() / 1e6;
}

double ConcurrentMixedMops(htm::Backend backend, uint64_t warm, uint64_t ops,
                           uint32_t threads) {
  ScopedPool pool(size_t{4} << 30);
  core::ConcurrentFPTree<> tree(pool.get(), backend);
  for (uint64_t k = 0; k < warm; ++k) tree.Insert(k, k);
  SpinBarrier barrier(threads + 1);
  ThreadGroup tg;
  uint64_t per_thread = ops / threads;
  tg.Spawn(threads, [&](uint32_t id) {
    Random64 rng(id);
    barrier.Wait();
    for (uint64_t i = 0; i < per_thread; ++i) {
      uint64_t v;
      if (rng.Bernoulli(0.5)) {
        tree.Find(rng.Uniform(warm), &v);
      } else {
        tree.Insert(warm + id * per_thread + i, i);
      }
    }
    barrier.Wait();
  });
  barrier.Wait();
  Stopwatch sw;
  barrier.Wait();
  double mops =
      static_cast<double>(per_thread * threads) / sw.ElapsedSeconds() / 1e6;
  tg.Join();
  return mops;
}

}  // namespace
}  // namespace bench
}  // namespace fptree

int main(int argc, char** argv) {
  using namespace fptree;
  using namespace fptree::bench;
  Flags flags = Flags::Parse(argc, argv);
  scm::LatencyModel::Calibrate();
  uint64_t n = flags.quick ? 50000 : flags.keys;
  SetLatency(flags.latency != 0 ? flags.latency : 450);

  PrintHeader("Ablation 1: fingerprints (FPTree vs PTree, find Mops/s)");
  std::printf("  with fingerprints   : %7.2f\n",
              FindMops<core::FPTree<>>(n));
  std::printf("  without (PTree)     : %7.2f\n", FindMops<core::PTree<>>(n));

  PrintHeader("Ablation 2: leaf groups (insert Mops/s, persistent allocs)");
  uint64_t alloc_g = 0, alloc_ng = 0;
  double with_groups = InsertMops<core::FPTree<>>(n, &alloc_g);
  double without = InsertMops<core::FPTree<uint64_t, 56, 4096, false>>(
      n, &alloc_ng);
  std::printf("  with leaf groups    : %7.2f Mops/s, %8llu allocations\n",
              with_groups, static_cast<unsigned long long>(alloc_g));
  std::printf("  without             : %7.2f Mops/s, %8llu allocations\n",
              without, static_cast<unsigned long long>(alloc_ng));

  PrintHeader("Ablation 3: HTM backend (concurrent mixed Mops/s)");
  uint32_t threads =
      flags.threads != 0 ? flags.threads : std::thread::hardware_concurrency();
  SetLatency(90);
  std::printf("  TL2 (speculative)   : %7.2f  (%u threads)\n",
              ConcurrentMixedMops(htm::Backend::kTl2, n, n, threads),
              threads);
  std::printf("  global lock         : %7.2f  (%u threads)\n",
              ConcurrentMixedMops(htm::Backend::kGlobalLock, n, n, threads),
              threads);
  scm::LatencyModel::Disable();
  EmitMetricsJson("ablation");
  return 0;
}
