file(REMOVE_RECURSE
  "libfptree_minidb.a"
)
