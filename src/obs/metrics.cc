#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "core/recovery.h"
#include "core/tree_stats.h"
#include "fault/fault.h"
#include "htm/htm.h"
#include "scm/stats.h"

namespace fptree {
namespace obs {

namespace {

void AppendKey(std::string* out, const std::string& key) {
  out->push_back('"');
  *out += key;
  *out += "\":";
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendHistogram(std::string* out, const HistogramSummary& h) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%" PRIu64 ",\"avg_ns\":%.1f,\"min_ns\":%" PRIu64
                ",\"p50_ns\":%" PRIu64 ",\"p95_ns\":%" PRIu64
                ",\"p99_ns\":%" PRIu64 ",\"max_ns\":%" PRIu64 "}",
                h.count, h.avg_ns, h.min_ns, h.p50_ns, h.p95_ns, h.p99_ns,
                h.max_ns);
  *out += buf;
}

// Groups dotted names ("scm.fences") into nested objects; bare names go to
// the top level. Values are pre-serialized JSON fragments.
void AppendGrouped(std::string* out,
                   const std::vector<std::pair<std::string, std::string>>& kv,
                   bool* first_out) {
  std::map<std::string, std::vector<std::pair<std::string, std::string>>>
      groups;
  for (const auto& [name, value] : kv) {
    size_t dot = name.find('.');
    if (dot == std::string::npos) {
      groups[""].emplace_back(name, value);
    } else {
      groups[name.substr(0, dot)].emplace_back(name.substr(dot + 1), value);
    }
  }
  for (const auto& [group, entries] : groups) {
    if (group.empty()) {
      for (const auto& [leaf, value] : entries) {
        if (!*first_out) out->push_back(',');
        *first_out = false;
        AppendKey(out, leaf);
        *out += value;
      }
      continue;
    }
    if (!*first_out) out->push_back(',');
    *first_out = false;
    AppendKey(out, group);
    out->push_back('{');
    bool first_in_group = true;
    for (const auto& [leaf, value] : entries) {
      if (!first_in_group) out->push_back(',');
      first_in_group = false;
      AppendKey(out, leaf);
      *out += value;
    }
    out->push_back('}');
  }
}

}  // namespace

HistogramSummary HistogramSummary::From(const Histogram& h) {
  HistogramSummary s;
  s.count = h.count();
  s.sum_ns = h.sum();
  s.avg_ns = h.Average();
  s.min_ns = h.min();
  s.p50_ns = h.Percentile(50);
  s.p95_ns = h.Percentile(95);
  s.p99_ns = h.Percentile(99);
  s.max_ns = h.max();
  return s;
}

Snapshot Snapshot::DeltaSince(const Snapshot& base) const {
  Snapshot d = *this;
  for (auto& [name, v] : d.counters) {
    auto it = base.counters.find(name);
    if (it != base.counters.end()) v = v >= it->second ? v - it->second : 0;
  }
  for (auto& [name, h] : d.histograms) {
    auto it = base.histograms.find(name);
    if (it == base.histograms.end()) continue;
    h.count = h.count >= it->second.count ? h.count - it->second.count : 0;
    h.sum_ns =
        h.sum_ns >= it->second.sum_ns ? h.sum_ns - it->second.sum_ns : 0;
    h.avg_ns = h.count == 0 ? 0.0
                            : static_cast<double>(h.sum_ns) /
                                  static_cast<double>(h.count);
  }
  return d;
}

std::string Snapshot::ToJson(const std::string& tag) const {
  std::string out = "{";
  bool first = true;
  if (!tag.empty()) {
    AppendKey(&out, "bench");
    out.push_back('"');
    out += tag;
    out += "\"";
    first = false;
  }

  std::vector<std::pair<std::string, std::string>> kv;
  for (const auto& [name, v] : counters) {
    std::string s;
    AppendU64(&s, v);
    kv.emplace_back(name, s);
  }
  // Gauges and counters share the numeric namespace; suffix nothing, they
  // are disjoint by convention (gauges are size/bytes style names).
  for (const auto& [name, v] : gauges) {
    std::string s;
    AppendU64(&s, v);
    kv.emplace_back(name, s);
  }
  for (const auto& [name, h] : histograms) {
    std::string s;
    AppendHistogram(&s, h);
    kv.emplace_back("latency." + name, s);
  }
  std::sort(kv.begin(), kv.end());
  AppendGrouped(&out, kv, &first);
  out.push_back('}');
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* g = new MetricsRegistry;
  return *g;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

void MetricsRegistry::SetGauge(const std::string& name,
                               std::function<uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = std::move(fn);
}

void MetricsRegistry::RemoveGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_.erase(name);
}

Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
    for (const auto& [name, fn] : gauges_) snap.gauges[name] = fn();
    for (const auto& [name, h] : histograms_) {
      snap.histograms[name] = HistogramSummary::From(h->Snap());
    }
  }

  // Absorbed subsystem telemetry.
  scm::StatsCounters s = scm::AggregatedStats();
  snap.counters["scm.read_misses"] = s.scm_read_misses;
  snap.counters["scm.read_hits"] = s.scm_read_hits;
  snap.counters["scm.prefetched_lines"] = s.prefetched_lines;
  snap.counters["scm.flushed_lines"] = s.flushed_lines;
  snap.counters["scm.fences"] = s.fences;
  snap.counters["scm.allocations"] = s.allocations;
  snap.counters["scm.deallocations"] = s.deallocations;

  htm::HtmStatsSnapshot h = htm::GlobalHtmStats();
  snap.counters["htm.commits"] = h.commits;
  snap.counters["htm.aborts"] = h.aborts;
  snap.counters["htm.aborts_conflict"] = h.aborts_conflict;
  snap.counters["htm.aborts_capacity"] = h.aborts_capacity;
  snap.counters["htm.aborts_explicit"] = h.aborts_explicit;
  snap.counters["htm.fallbacks"] = h.fallbacks;

  fault::FaultInjector& fi = fault::FaultInjector::Instance();
  snap.counters["fault.injected"] = fi.TotalFires();
  for (const auto& [site, fires] : fi.LifetimeFires()) {
    snap.counters["fault." + site] = fires;
  }

  core::TreeOpStats t = core::GlobalTreeStats().Snapshot();
  snap.counters["tree.finds"] = t.finds;
  snap.counters["tree.key_probes"] = t.key_probes;
  snap.counters["tree.leaf_splits"] = t.leaf_splits;
  snap.counters["tree.leaf_deletes"] = t.leaf_deletes;
  snap.counters["tree.rebuilds"] = t.rebuilds;

  // Last tree recovery (gauges: most recent attach, not monotonic).
  snap.gauges["tree.recovery_nanos"] = core::LastRecoveryNanos();
  snap.gauges["tree.recover_threads"] = core::LastRecoverThreads();
  return snap;
}

void MetricsRegistry::ResetAll() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, c] : counters_) c->Reset();
    for (auto& [name, h] : histograms_) h->Reset();
  }
  scm::ResetAggregatedStats();
  htm::ResetGlobalHtmStats();
  core::GlobalTreeStats().Clear();
}

void SetSampleInterval(uint32_t interval) {
  uint32_t mask;
  if (interval == 0) {
    mask = UINT32_MAX;
  } else {
    uint32_t pow2 = 1;
    while (pow2 < interval && pow2 < (1u << 30)) pow2 <<= 1;
    mask = pow2 - 1;
  }
  SamplingMaskWord().store(mask, std::memory_order_relaxed);
}

uint32_t SampleInterval() {
  uint32_t mask = SamplingMaskWord().load(std::memory_order_relaxed);
  return mask == UINT32_MAX ? 0 : mask + 1;
}

std::string GlobalJson(const std::string& tag) {
  return MetricsRegistry::Global().TakeSnapshot().ToJson(tag);
}

}  // namespace obs
}  // namespace fptree
