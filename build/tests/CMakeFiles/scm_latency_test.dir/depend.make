# Empty dependencies file for scm_latency_test.
# This may be replaced when dependencies are built.
