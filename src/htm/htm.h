// Copyright (c) FPTree reproduction authors.
//
// Hardware Transactional Memory substitute (paper §4.4, Selective
// Concurrency). The paper uses Intel TSX: a speculative lock around the
// DRAM-resident critical section, with cache-line-granular conflict
// detection and a global-lock fallback after repeated aborts.
//
// This container has no guaranteed TSX, so the default backend is a TL2-style
// software transactional memory that provides the same semantics:
//
//  * transactions buffer writes and keep a versioned read set;
//  * conflicts are detected by validating a versioned-lock table (the analog
//    of cache-line granularity: addresses hash to lock-table entries);
//  * after kMaxAttempts speculative aborts a transaction acquires the global
//    fallback lock — and, exactly like lock elision, every speculative
//    transaction subscribes to the fallback word and aborts when it changes.
//
// Contract with tree code (what makes optimistic reads memory-safe):
//  * All transactionally-tracked fields are 8-byte-aligned uint64_t slots
//    accessed only through Tx::Load/Tx::Store (atomic, tear-free).
//  * Pointers stored in tracked slots must point into arenas that are never
//    unmapped (the DRAM node arena and the SCM pools), so a stale pointer
//    read by a doomed transaction dereferences mapped memory; validation
//    aborts the transaction before its results are used.
//  * A doomed transaction's loads return garbage; callers must check
//    Tx::ok() in loop conditions and bail out promptly.
//
// A plain global-lock backend (every transaction takes one mutex) is kept
// for debugging and as an ablation point ("what HTM buys", DESIGN.md §4).

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace fptree {
namespace htm {

enum class Backend {
  kTl2,        ///< software transactional memory with lock-elision semantics
  kGlobalLock  ///< every transaction takes one global mutex (ablation)
};

/// Why a speculative attempt aborted (mirrors the TSX abort-status causes
/// the paper's §6.3 evaluation breaks down).
enum class AbortCause {
  kConflict,  ///< read-set validation / lock-table conflict / fallback engaged
  kCapacity,  ///< tracked read+write set exceeded the transactional buffer
  kExplicit   ///< programmer UserAbort() (e.g. leaf already locked)
};

/// Engine statistics (monotonic, relaxed). `aborts` is the total;
/// the three cause counters partition it.
struct HtmStats {
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> aborts{0};
  std::atomic<uint64_t> aborts_conflict{0};
  std::atomic<uint64_t> aborts_capacity{0};
  std::atomic<uint64_t> aborts_explicit{0};
  std::atomic<uint64_t> fallbacks{0};

  void Clear() {
    commits.store(0, std::memory_order_relaxed);
    aborts.store(0, std::memory_order_relaxed);
    aborts_conflict.store(0, std::memory_order_relaxed);
    aborts_capacity.store(0, std::memory_order_relaxed);
    aborts_explicit.store(0, std::memory_order_relaxed);
    fallbacks.store(0, std::memory_order_relaxed);
  }
};

/// Plain-value copy of HtmStats, summable across engines.
struct HtmStatsSnapshot {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t aborts_conflict = 0;
  uint64_t aborts_capacity = 0;
  uint64_t aborts_explicit = 0;
  uint64_t fallbacks = 0;

  void Add(const HtmStats& s) {
    commits += s.commits.load(std::memory_order_relaxed);
    aborts += s.aborts.load(std::memory_order_relaxed);
    aborts_conflict += s.aborts_conflict.load(std::memory_order_relaxed);
    aborts_capacity += s.aborts_capacity.load(std::memory_order_relaxed);
    aborts_explicit += s.aborts_explicit.load(std::memory_order_relaxed);
    fallbacks += s.fallbacks.load(std::memory_order_relaxed);
  }
};

/// Sum over every live HtmEngine plus engines already destroyed. This is
/// what obs::MetricsRegistry snapshots report as htm.* counters.
HtmStatsSnapshot GlobalHtmStats();

/// Zeroes the process-wide HTM totals (retired totals and live engines).
void ResetGlobalHtmStats();

class Tx;

/// \brief One speculative-lock domain (one per concurrent tree).
class HtmEngine {
 public:
  /// Number of versioned locks. Power of two. Addresses hash here, which is
  /// the software analog of cache-line-granular conflict detection.
  static constexpr size_t kTableSize = 1 << 20;
  /// Speculative attempts before taking the fallback lock (the paper lets a
  /// TSX transaction "retry a few times").
  static constexpr int kMaxAttempts = 16;
  /// Tracked read+write entries before an attempt aborts with
  /// AbortCause::kCapacity — the software analog of TSX's L1-bounded
  /// transactional buffer. Tree operations touch a few dozen slots; this
  /// bound only fires on runaway transactions.
  static constexpr size_t kMaxTracked = 1 << 16;

  explicit HtmEngine(Backend backend = Backend::kTl2);
  ~HtmEngine();

  HtmEngine(const HtmEngine&) = delete;
  HtmEngine& operator=(const HtmEngine&) = delete;

  Backend backend() const { return backend_; }
  HtmStats& stats() { return stats_; }
  const HtmStats& stats() const { return stats_; }

 private:
  friend class Tx;

  std::atomic<uint64_t>& LockFor(const void* addr) {
    // Mix the address; ignore low 3 bits (8-byte slots). Distinct 64-byte
    // lines land in distinct entries with high probability.
    uintptr_t a = reinterpret_cast<uintptr_t>(addr) >> 3;
    a ^= a >> 17;
    a *= 0x9E3779B97F4A7C15ULL;
    return table_[(a >> 24) & (kTableSize - 1)];
  }

  Backend backend_;
  // Versioned locks: bit0 = write-locked, upper bits = version.
  std::vector<std::atomic<uint64_t>> table_;
  std::atomic<uint64_t> clock_{2};
  // Fallback word: bit0 = held, upper bits bump on every acquire/release.
  std::atomic<uint64_t> fallback_word_{0};
  std::mutex fallback_mu_;
  std::atomic<uint64_t> inflight_commits_{0};
  HtmStats stats_;
};

/// \brief One transaction attempt sequence for one logical operation.
///
/// Usage mirrors the paper's pseudo-code:
///
///   Tx tx(&engine);
///   for (;;) {
///     tx.Begin();                                  // speculative_lock.acquire()
///     uint64_t l = tx.Load(&leaf->lock_word);
///     if (!tx.ok()) continue;                      // doomed: retry
///     if (l == 1) { tx.UserAbort(); continue; }    // speculative_lock.abort()
///     tx.Store(&leaf->lock_word, 1);
///     if (tx.Commit()) break;                      // speculative_lock.release()
///   }
///
/// Attempt counting persists across Begin() calls; after kMaxAttempts the
/// transaction runs under the global fallback lock and cannot fail.
class Tx {
 public:
  explicit Tx(HtmEngine* engine) : eng_(engine) {}
  ~Tx();

  Tx(const Tx&) = delete;
  Tx& operator=(const Tx&) = delete;

  /// Starts (or restarts) the transaction attempt.
  void Begin();

  /// True while the current attempt has not been doomed by a conflict.
  bool ok() const { return !doomed_; }

  /// Transactional load of an 8-byte tracked slot.
  uint64_t Load(const uint64_t* addr);

  /// Transactional load of a pointer-valued tracked slot.
  template <typename T>
  T* LoadPtr(T* const* addr) {
    return reinterpret_cast<T*>(
        Load(reinterpret_cast<const uint64_t*>(addr)));
  }

  /// Transactional (buffered) store to an 8-byte tracked slot.
  void Store(uint64_t* addr, uint64_t value);

  template <typename T>
  void StorePtr(T** addr, T* value) {
    Store(reinterpret_cast<uint64_t*>(addr),
          reinterpret_cast<uint64_t>(value));
  }

  /// Explicit programmer abort (leaf already locked, etc.). Discards the
  /// attempt; the caller's retry loop calls Begin() again.
  void UserAbort();

  /// Attempts to commit. On success returns true. On validation failure
  /// returns false and the caller retries from Begin().
  bool Commit();

  /// True if this attempt is running under the global fallback lock.
  bool in_fallback() const { return in_fallback_; }

 private:
  struct ReadEntry {
    const std::atomic<uint64_t>* lock;
    uint64_t version;
  };
  struct WriteEntry {
    uint64_t* addr;
    uint64_t value;
  };

  void ResetSets();
  void Doom(AbortCause cause);  // internal conflict: mark attempt dead
  void CountAbort(AbortCause cause);
  void ReleaseFallbackIfHeld();
  bool ValidateReads() const;

  HtmEngine* eng_;
  std::vector<ReadEntry> reads_;
  std::vector<WriteEntry> writes_;
  uint64_t rv_ = 0;             // read version (clock at Begin)
  uint64_t fb_seen_ = 0;        // fallback word at Begin
  int attempts_ = 0;
  bool active_ = false;
  bool doomed_ = false;
  bool in_fallback_ = false;
  AbortCause doom_cause_ = AbortCause::kConflict;
};

}  // namespace htm
}  // namespace fptree
