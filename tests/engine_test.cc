// Sharded multi-pool engine tests (DESIGN.md §10): the engine must be
// observationally identical to a single-shard oracle — every op returns the
// same answer and the merged RangeScan is bit-identical — plus cursor
// semantics (early close, batch-refill boundaries, scan-vs-delete), spec
// parsing, checked-registry errors, per-shard stats and shard-parallel
// recovery.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "crash_test_util.h"
#include "engine/sharded_index.h"
#include "index/kv_index.h"
#include "scm/latency.h"
#include "scm/pool.h"
#include "util/random.h"

namespace fptree {
namespace engine {
namespace {

using index::KVIndex;
using index::VarIndex;
using testutil::TestPath;
using testutil::VarKey;

void DestroyShardFiles(const std::string& prefix, size_t shards) {
  for (size_t i = 0; i < shards; ++i) {
    scm::Pool::Destroy(prefix + "." + std::to_string(i)).ok();
  }
}

/// Engine + shard-file lifetime for one test. Distinct `base_id`s let two
/// engines (e.g. engine-under-test and oracle) coexist in one process.
template <typename Engine>
class Scoped {
 public:
  Scoped(const std::string& tag, const std::string& inner, size_t shards,
         uint64_t base_id)
      : prefix_(TestPath("eng_" + tag)), shards_(shards), base_id_(base_id) {
    DestroyShardFiles(prefix_, shards_);
    Status s = Engine::Make(inner, Options(/*fresh=*/true), &index_);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  /// Closes every shard pool and re-attaches (shard-parallel recovery).
  void Reopen(const std::string& inner) {
    index_.reset();
    Status s = Engine::Make(inner, Options(/*fresh=*/false), &index_);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  ~Scoped() {
    index_.reset();
    DestroyShardFiles(prefix_, shards_);
  }

  Engine* get() { return index_.get(); }
  Engine* operator->() { return index_.get(); }

 private:
  ShardedOptions Options(bool fresh) const {
    ShardedOptions o;
    o.shards = shards_;
    o.path_prefix = prefix_;
    o.shard_bytes = fresh ? (size_t{64} << 20) : 0;
    o.base_pool_id = base_id_;
    o.locked = true;
    o.randomize_base = true;
    return o;
  }

  std::string prefix_;
  size_t shards_;
  uint64_t base_id_;
  std::unique_ptr<Engine> index_;
};

std::vector<std::pair<uint64_t, uint64_t>> DrainKV(KVIndex* idx,
                                                   uint64_t start,
                                                   size_t limit) {
  std::vector<std::pair<uint64_t, uint64_t>> rows;
  auto cursor = idx->OpenScan(start, limit);
  uint64_t k, v;
  while (cursor->Next(&k, &v)) rows.emplace_back(k, v);
  cursor->Close();
  return rows;
}

std::vector<std::pair<std::string, uint64_t>> DrainVar(VarIndex* idx,
                                                       std::string_view start,
                                                       size_t limit) {
  std::vector<std::pair<std::string, uint64_t>> rows;
  auto cursor = idx->OpenScan(start, limit);
  std::string k;
  uint64_t v;
  while (cursor->Next(&k, &v)) rows.emplace_back(std::move(k), v);
  cursor->Close();
  return rows;
}

// --- oracle differentials ---------------------------------------------------

TEST(ShardedEngineTest, FixedMatchesSingleShardOracle) {
  scm::LatencyModel::Disable();
  Scoped<ShardedKVIndex> sharded("fix_s", "fptree", 5, /*base_id=*/10);
  Scoped<ShardedKVIndex> oracle("fix_o", "fptree", 1, /*base_id=*/20);

  Random64 rng(42);
  for (int i = 0; i < 4000; ++i) {
    uint64_t key = rng.Uniform(600);
    uint64_t val = rng.Next();
    switch (rng.Uniform(4)) {
      case 0:
        ASSERT_EQ(sharded->Insert(key, val), oracle->Insert(key, val));
        break;
      case 1:
        ASSERT_EQ(sharded->Update(key, val), oracle->Update(key, val));
        break;
      case 2:
        ASSERT_EQ(sharded->Upsert(key, val), oracle->Upsert(key, val));
        break;
      default:
        ASSERT_EQ(sharded->Erase(key), oracle->Erase(key));
        break;
    }
    uint64_t a = 0, b = 0;
    uint64_t probe = rng.Uniform(600);
    ASSERT_EQ(sharded->Find(probe, &a), oracle->Find(probe, &b));
    ASSERT_EQ(a, b);
  }
  ASSERT_EQ(sharded->Size(), oracle->Size());

  // The merged scan must be bit-identical to the single-shard oracle —
  // full range, offset starts and tight limits.
  EXPECT_EQ(DrainKV(sharded.get(), 0, 1 << 20),
            DrainKV(oracle.get(), 0, 1 << 20));
  EXPECT_EQ(DrainKV(sharded.get(), 300, 1 << 20),
            DrainKV(oracle.get(), 300, 1 << 20));
  EXPECT_EQ(DrainKV(sharded.get(), 123, 37), DrainKV(oracle.get(), 123, 37));

  std::string why;
  EXPECT_TRUE(sharded->CheckInvariants(&why)) << why;
}

TEST(ShardedEngineTest, VarMatchesSingleShardOracle) {
  scm::LatencyModel::Disable();
  Scoped<ShardedVarIndex> sharded("var_s", "fptree-var", 4, /*base_id=*/10);
  Scoped<ShardedVarIndex> oracle("var_o", "fptree-var", 1, /*base_id=*/20);

  Random64 rng(7);
  for (int i = 0; i < 3000; ++i) {
    std::string key = VarKey(rng.Uniform(500));
    uint64_t val = rng.Next();
    switch (rng.Uniform(4)) {
      case 0:
        ASSERT_EQ(sharded->Insert(key, val), oracle->Insert(key, val));
        break;
      case 1:
        ASSERT_EQ(sharded->Update(key, val), oracle->Update(key, val));
        break;
      case 2:
        ASSERT_EQ(sharded->Upsert(key, val), oracle->Upsert(key, val));
        break;
      default:
        ASSERT_EQ(sharded->Erase(key), oracle->Erase(key));
        break;
    }
  }
  ASSERT_EQ(sharded->Size(), oracle->Size());
  EXPECT_EQ(DrainVar(sharded.get(), "", 1 << 20),
            DrainVar(oracle.get(), "", 1 << 20));
  EXPECT_EQ(DrainVar(sharded.get(), VarKey(250), 1 << 20),
            DrainVar(oracle.get(), VarKey(250), 1 << 20));
  EXPECT_EQ(DrainVar(sharded.get(), VarKey(100), 13),
            DrainVar(oracle.get(), VarKey(100), 13));

  std::string why;
  EXPECT_TRUE(sharded->CheckInvariants(&why)) << why;
}

TEST(ShardedEngineTest, CallbackScanMatchesCursorAndHonorsEarlyStop) {
  Scoped<ShardedKVIndex> eng("cbscan", "fptree", 3, /*base_id=*/10);
  for (uint64_t k = 0; k < 200; ++k) ASSERT_TRUE(eng->Insert(k, k * 3));

  std::vector<uint64_t> keys;
  size_t n = eng->RangeScan(50, 1 << 20, [&](uint64_t k, uint64_t v) {
    EXPECT_EQ(v, k * 3);
    keys.push_back(k);
    return true;
  });
  ASSERT_EQ(n, 150u);
  ASSERT_EQ(keys.size(), 150u);
  for (size_t i = 0; i < keys.size(); ++i) EXPECT_EQ(keys[i], 50 + i);

  // Callback returning false stops the merged scan mid-flight.
  size_t seen = 0;
  eng->RangeScan(0, 1 << 20, [&](uint64_t, uint64_t) {
    return ++seen < 10;
  });
  EXPECT_EQ(seen, 10u);
}

TEST(ShardedEngineTest, ScanHandlesEmptyAndSparseShards) {
  Scoped<ShardedVarIndex> eng("sparse", "fptree-var", 8, /*base_id=*/10);
  // Empty engine: cursor reports done immediately.
  EXPECT_TRUE(DrainVar(eng.get(), "", 100).empty());

  // Three keys across eight shards — most shard cursors are empty.
  for (uint64_t k : {11u, 12u, 13u}) ASSERT_TRUE(eng->Insert(VarKey(k), k));
  auto rows = DrainVar(eng.get(), "", 100);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].first, VarKey(11));
  EXPECT_EQ(rows[2].first, VarKey(13));
}

// --- cursor semantics -------------------------------------------------------

TEST(ScanCursorTest, EarlyCloseIsSafeAndIdempotent) {
  Scoped<ShardedKVIndex> eng("close", "fptree", 4, /*base_id=*/10);
  for (uint64_t k = 0; k < 500; ++k) ASSERT_TRUE(eng->Insert(k, k));

  auto cursor = eng->OpenScan(0, 1 << 20);
  uint64_t k, v;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(cursor->Next(&k, &v));
  cursor->Close();
  EXPECT_FALSE(cursor->Next(&k, &v));  // closed cursor stays exhausted
  cursor->Close();                     // double close is a no-op
  cursor.reset();                      // destruction after close is safe

  // Dropping a cursor without Close must release everything too.
  { auto abandoned = eng->OpenScan(0, 1 << 20); }
  EXPECT_EQ(DrainKV(eng.get(), 0, 1 << 20).size(), 500u);
}

TEST(ScanCursorTest, BatchRefillCrossesBoundariesExactly) {
  // A plain registered index exercises the default batch-refill cursor
  // (internal::kScanCursorBatch = 128).
  std::string path = TestPath("eng_batch");
  scm::Pool::Destroy(path).ok();
  scm::Pool::Options popts{.size = 64u << 20, .randomize_base = true};
  std::unique_ptr<scm::Pool> pool;
  ASSERT_TRUE(scm::Pool::Create(path, 30, popts, &pool).ok());
  auto idx = index::MakeFixedIndex("fptree", pool.get());
  ASSERT_NE(idx, nullptr);

  // Sizes straddling the refill boundary: one short batch, exactly one
  // batch, one key into the second batch, several batches.
  for (size_t total : {127u, 128u, 129u, 300u}) {
    while (idx->Size() < total) {
      ASSERT_TRUE(idx->Insert(idx->Size() * 2, idx->Size()));
    }
    auto rows = DrainKV(idx.get(), 0, 1 << 20);
    ASSERT_EQ(rows.size(), total);
    for (size_t i = 0; i < total; ++i) {
      ASSERT_EQ(rows[i].first, i * 2);
      ASSERT_EQ(rows[i].second, i);
    }
    // A limit below/at/above the batch size is honored exactly.
    EXPECT_EQ(DrainKV(idx.get(), 0, 100).size(), std::min<size_t>(total, 100));
    EXPECT_EQ(DrainKV(idx.get(), 0, 128).size(), std::min<size_t>(total, 128));
    EXPECT_EQ(DrainKV(idx.get(), 0, 129).size(), std::min<size_t>(total, 129));
  }

  idx.reset();
  pool.reset();
  scm::Pool::Destroy(path).ok();
}

TEST(ScanCursorTest, BatchRefillSurvivesMaxKey) {
  // The fixed-key resume position is last_key + 1; a batch ending at
  // UINT64_MAX must terminate instead of wrapping around.
  std::string path = TestPath("eng_maxkey");
  scm::Pool::Destroy(path).ok();
  scm::Pool::Options popts{.size = 64u << 20, .randomize_base = true};
  std::unique_ptr<scm::Pool> pool;
  ASSERT_TRUE(scm::Pool::Create(path, 30, popts, &pool).ok());
  auto idx = index::MakeFixedIndex("fptree", pool.get());
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  ASSERT_TRUE(idx->Insert(kMax - 1, 1));
  ASSERT_TRUE(idx->Insert(kMax, 2));
  auto rows = DrainKV(idx.get(), kMax - 1, 100);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1].first, kMax);
  rows = DrainKV(idx.get(), kMax, 100);
  ASSERT_EQ(rows.size(), 1u);
  idx.reset();
  pool.reset();
  scm::Pool::Destroy(path).ok();
}

TEST(ScanCursorTest, CursorToleratesDeletesBetweenBatches) {
  // Deleting not-yet-visited keys between Next() calls must never surface
  // a deleted key twice, break global order, or crash; keys deleted ahead
  // of the cursor may or may not appear (they race with the refill), but
  // keys behind it are settled.
  Scoped<ShardedKVIndex> eng("scandel", "fptree", 4, /*base_id=*/10);
  constexpr uint64_t kTotal = 600;
  for (uint64_t k = 0; k < kTotal; ++k) ASSERT_TRUE(eng->Insert(k, k));

  auto cursor = eng->OpenScan(0, 1 << 20);
  std::vector<uint64_t> seen;
  uint64_t k, v;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cursor->Next(&k, &v));
    seen.push_back(k);
  }
  // Kill every third key ahead of the cursor, then keep draining.
  for (uint64_t d = seen.back() + 1; d < kTotal; d += 3) eng->Erase(d);
  while (cursor->Next(&k, &v)) seen.push_back(k);
  cursor->Close();

  for (size_t i = 1; i < seen.size(); ++i) {
    ASSERT_LT(seen[i - 1], seen[i]) << "scan order broken at " << i;
  }
  // Everything still present must have been seen exactly once.
  ASSERT_GE(seen.size(), eng->Size());
}

// --- upsert, stats, recovery ------------------------------------------------

TEST(ShardedEngineTest, UpsertReportsInsertedVsReplaced) {
  Scoped<ShardedVarIndex> eng("upsert", "fptree-c-var", 3, /*base_id=*/10);
  EXPECT_TRUE(eng->Upsert("alpha", 1));   // fresh -> inserted
  EXPECT_FALSE(eng->Upsert("alpha", 2));  // existing -> replaced
  uint64_t v = 0;
  ASSERT_TRUE(eng->Find("alpha", &v));
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(eng->Size(), 1u);
}

TEST(ShardedEngineTest, StatsAggregateWithPerShardGauges) {
  Scoped<ShardedKVIndex> eng("stats", "fptree", 4, /*base_id=*/10);
  for (uint64_t k = 0; k < 100; ++k) ASSERT_TRUE(eng->Insert(k, k));
  obs::Snapshot snap = eng->Stats();
  EXPECT_EQ(snap.gauges.at("engine.shards"), 4u);
  for (size_t i = 0; i < 4; ++i) {
    std::string prefix = "shard." + std::to_string(i) + ".";
    EXPECT_TRUE(snap.gauges.count(prefix + "tree.recovery_nanos"))
        << "missing per-shard recovery gauge for shard " << i;
  }
  EXPECT_TRUE(snap.gauges.count("index.recovery_nanos"));
}

TEST(ShardedEngineTest, ShardParallelRecoveryKeepsEverything) {
  scm::LatencyModel::Disable();
  Scoped<ShardedVarIndex> eng("recover", "fptree-var", 4, /*base_id=*/10);
  std::map<std::string, uint64_t> model;
  Random64 rng(99);
  for (int i = 0; i < 2000; ++i) {
    std::string key = VarKey(rng.Uniform(800));
    uint64_t val = rng.Next();
    eng->Upsert(key, val);
    model[key] = val;
  }
  size_t before = eng->Size();
  ASSERT_EQ(before, model.size());

  eng.Reopen("fptree-var");  // closes all shard pools, reopens concurrently
  EXPECT_GT(eng->RecoveryNanos(), 0u);
  ASSERT_EQ(eng->Size(), before);
  for (const auto& [k2, v2] : model) {
    uint64_t got = 0;
    ASSERT_TRUE(eng->Find(k2, &got)) << "lost key " << k2;
    ASSERT_EQ(got, v2);
  }
  auto rows = DrainVar(eng.get(), "", 1 << 20);
  ASSERT_EQ(rows.size(), model.size());
  auto it = model.begin();
  for (const auto& [k2, v2] : rows) {
    ASSERT_EQ(k2, it->first);
    ASSERT_EQ(v2, it->second);
    ++it;
  }
  std::string why;
  EXPECT_TRUE(eng->CheckInvariants(&why)) << why;
}

// --- spec parsing & checked registry ---------------------------------------

TEST(ShardedSpecTest, ParsesWellFormedSpecs) {
  std::string inner;
  size_t shards = 0;
  Status err;
  ASSERT_TRUE(ParseShardedSpec("sharded(fptree-var,4)", &inner, &shards, &err));
  EXPECT_TRUE(err.ok());
  EXPECT_EQ(inner, "fptree-var");
  EXPECT_EQ(shards, 4u);

  // A plain tree name is not a sharded spec (and not an error).
  err = Status::OK();
  EXPECT_FALSE(ParseShardedSpec("fptree-var", &inner, &shards, &err));
  EXPECT_TRUE(err.ok());
}

TEST(ShardedSpecTest, RejectsMalformedSpecs) {
  std::string inner;
  size_t shards = 0;
  for (const char* bad : {"sharded(fptree-var)", "sharded(fptree-var,0)",
                          "sharded(fptree-var,33)", "sharded(fptree-var,x)",
                          "sharded(fptree-var,4", "sharded(,4)"}) {
    Status err;
    EXPECT_TRUE(ParseShardedSpec(bad, &inner, &shards, &err))
        << bad << " should be recognized as a sharded spec";
    EXPECT_FALSE(err.ok()) << bad << " should be rejected";
  }
}

TEST(ShardedSpecTest, MakeFromSpecOverridesShardCount) {
  std::string prefix = TestPath("eng_spec");
  DestroyShardFiles(prefix, 3);
  ShardedOptions opts;
  opts.shards = 1;  // the spec's N wins
  opts.path_prefix = prefix;
  opts.shard_bytes = 64u << 20;
  opts.locked = true;
  std::unique_ptr<VarIndex> idx;
  Status s = MakeVarIndexFromSpec("sharded(fptree-var,3)", opts, &idx);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(idx->Insert("k", 1));
  EXPECT_EQ(idx->Stats().gauges.at("engine.shards"), 3u);
  idx.reset();
  DestroyShardFiles(prefix, 3);
}

TEST(CheckedRegistryTest, UnknownNamesSurfaceRegisteredList) {
  std::unique_ptr<KVIndex> fixed;
  Status s = index::MakeFixedIndexChecked("nope", nullptr, false, &fixed);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("nope"), std::string::npos);
  EXPECT_NE(s.ToString().find("fptree"), std::string::npos) << s.ToString();

  std::unique_ptr<VarIndex> var;
  s = index::MakeVarIndexChecked("nope", nullptr, false, &var);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("fptree-var"), std::string::npos)
      << s.ToString();

  // The engine surfaces the same status for unknown inner names.
  ShardedOptions opts;
  opts.shards = 2;
  opts.path_prefix = TestPath("eng_badinner");
  std::unique_ptr<ShardedVarIndex> eng;
  s = ShardedVarIndex::Make("nope", opts, &eng);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("nope"), std::string::npos);
  DestroyShardFiles(TestPath("eng_badinner"), 2);
}

TEST(CheckedRegistryTest, ShardCountBoundsAreEnforced) {
  ShardedOptions opts;
  opts.path_prefix = TestPath("eng_bounds");
  std::unique_ptr<ShardedKVIndex> eng;
  opts.shards = 0;
  EXPECT_FALSE(ShardedKVIndex::Make("fptree", opts, &eng).ok());
  opts.shards = 33;
  EXPECT_FALSE(ShardedKVIndex::Make("fptree", opts, &eng).ok());
}

}  // namespace
}  // namespace engine
}  // namespace fptree
