// Copyright (c) FPTree reproduction authors.
//
// The DRAM-resident inner-node index used by the single-threaded hybrid
// trees (FPTree, PTree and their variable-key variants). Inner nodes have a
// "classical main memory structure with sorted keys" (paper §4, Fig. 2a):
// they are transient, rebuilt on recovery from the persistent leaves, and
// need no special consistency effort.
//
// Routing invariant: keys[i] is the maximum key of subtree i, so descent
// takes child lower_bound(k) (first i with k <= keys[i], else the last
// child). BulkBuild() constructs the index bottom-up from sorted
// (max_key, leaf) pairs, which is exactly the paper's recovery procedure.

#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "util/simd.h"

namespace fptree {
namespace core {

/// \brief Transient sorted inner index over opaque leaf pointers.
///
/// \tparam Key       totally ordered, trivially copyable key type
/// \tparam kInnerCap maximum keys per inner node
template <typename Key, size_t kInnerCap>
class InnerIndex {
 public:
  struct Node {
    uint32_t n_keys = 0;
    bool leaf_children = false;
    Key keys[kInnerCap];
    void* children[kInnerCap + 1];
  };

  /// Maximum tree height supported by the fixed-size descent path. With
  /// fan-out >= 2 this is unreachable in practice.
  static constexpr size_t kMaxHeight = 32;

  /// Descent record: the nodes and child slots visited root-to-parent.
  struct Path {
    Node* nodes[kMaxHeight];
    uint32_t slots[kMaxHeight];
    uint32_t depth = 0;

    Node* parent() const { return depth == 0 ? nullptr : nodes[depth - 1]; }
  };

  InnerIndex() = default;
  ~InnerIndex() { Clear(); }

  InnerIndex(const InnerIndex&) = delete;
  InnerIndex& operator=(const InnerIndex&) = delete;

  bool empty() const { return root_ == nullptr; }

  /// Frees all inner nodes (leaves are not owned).
  void Clear() {
    if (root_ != nullptr) {
      FreeRecursive(root_);
      root_ = nullptr;
    }
  }

  /// Descends to the leaf responsible for `key`; records the path.
  void* FindLeaf(const Key& key, Path* path) const {
    path->depth = 0;
    if (root_ == nullptr) return nullptr;
    Node* n = root_;
    for (;;) {
      uint32_t slot = ChildSlot(n, key);
      path->nodes[path->depth] = n;
      path->slots[path->depth] = slot;
      ++path->depth;
      if (n->leaf_children) return n->children[slot];
      n = static_cast<Node*>(n->children[slot]);
    }
  }

  /// The left-most leaf (for full scans); nullptr when empty.
  void* FirstLeaf() const {
    if (root_ == nullptr) return nullptr;
    Node* n = root_;
    while (!n->leaf_children) n = static_cast<Node*>(n->children[0]);
    return n->children[0];
  }

  /// Installs the one-leaf tree (tree bootstrap).
  void InitSingleLeaf(void* leaf) {
    assert(root_ == nullptr);
    root_ = NewNode();
    root_->leaf_children = true;
    root_->n_keys = 0;
    root_->children[0] = leaf;
  }

  /// After the leaf at `path` split with separator `split_key` and new right
  /// sibling `new_leaf`, threads the separator up the recorded path,
  /// splitting inner nodes as needed.
  void InsertSplit(const Path& path, const Key& split_key, void* new_leaf) {
    Key key = split_key;
    void* right = new_leaf;
    for (int level = static_cast<int>(path.depth) - 1; level >= 0; --level) {
      Node* n = path.nodes[level];
      uint32_t slot = path.slots[level];
      if (n->n_keys < kInnerCap) {
        InsertAt(n, slot, key, right);
        return;
      }
      // Split this inner node; middle key moves up.
      Node* sibling = NewNode();
      sibling->leaf_children = n->leaf_children;
      uint32_t mid = n->n_keys / 2;
      Key up_key = n->keys[mid];
      sibling->n_keys = n->n_keys - mid - 1;
      std::copy(n->keys + mid + 1, n->keys + n->n_keys, sibling->keys);
      std::copy(n->children + mid + 1, n->children + n->n_keys + 1,
                sibling->children);
      n->n_keys = mid;
      // Insert the pending (key, right) into the correct half.
      if (slot <= mid) {
        InsertAt(n, slot, key, right);
      } else {
        InsertAt(sibling, slot - mid - 1, key, right);
      }
      key = up_key;
      right = sibling;
    }
    // Root split: grow the tree by one level.
    Node* new_root = NewNode();
    new_root->leaf_children = false;
    new_root->n_keys = 1;
    new_root->keys[0] = key;
    new_root->children[0] = root_;
    new_root->children[1] = right;
    root_ = new_root;
  }

  /// Removes the leaf at `path` from its parent (the leaf became empty and
  /// is being deleted). Collapses empty ancestors and shrinks the root.
  void RemoveLeaf(const Path& path) {
    RemoveChild(path, static_cast<int>(path.depth) - 1);
  }

  /// Rebuilds the index from (max_key, leaf) pairs sorted by key — the
  /// paper's recovery path ("this step is similar to how inner nodes are
  /// built in a bulk-load operation", Alg. 9).
  void BulkBuild(const std::vector<std::pair<Key, void*>>& sorted_leaves) {
    Clear();
    if (sorted_leaves.empty()) return;
    // Level 0: pack leaves under parents. Separator between leaf i and i+1
    // is max_key(leaf i).
    std::vector<std::pair<Key, Node*>> level;
    {
      size_t i = 0;
      const size_t n = sorted_leaves.size();
      while (i < n) {
        Node* node = NewNode();
        node->leaf_children = true;
        size_t take = std::min(n - i, kInnerCap + 1);
        for (size_t j = 0; j < take; ++j) {
          node->children[j] = sorted_leaves[i + j].second;
          if (j + 1 < take) node->keys[j] = sorted_leaves[i + j].first;
        }
        node->n_keys = static_cast<uint32_t>(take - 1);
        level.emplace_back(sorted_leaves[i + take - 1].first, node);
        i += take;
      }
    }
    while (level.size() > 1) {
      std::vector<std::pair<Key, Node*>> next;
      size_t i = 0;
      const size_t n = level.size();
      while (i < n) {
        Node* node = NewNode();
        node->leaf_children = false;
        size_t take = std::min(n - i, kInnerCap + 1);
        for (size_t j = 0; j < take; ++j) {
          node->children[j] = level[i + j].second;
          if (j + 1 < take) node->keys[j] = level[i + j].first;
        }
        node->n_keys = static_cast<uint32_t>(take - 1);
        next.emplace_back(level[i + take - 1].first, node);
        i += take;
      }
      level.swap(next);
    }
    root_ = level[0].second;
  }

  /// Approximate DRAM footprint of the inner index in bytes.
  uint64_t MemoryBytes() const { return node_count_ * sizeof(Node); }

  uint64_t node_count() const { return node_count_; }

  /// Depth of the inner index (0 when empty).
  uint32_t Height() const {
    uint32_t h = 0;
    Node* n = root_;
    while (n != nullptr) {
      ++h;
      n = n->leaf_children ? nullptr : static_cast<Node*>(n->children[0]);
    }
    return h;
  }

 private:
  /// Child slot = lower_bound over the sorted separator array. For 8-byte
  /// integer keys this runs branchless (cmov halving + compare-and-sum,
  /// vectorized where available — util/simd.h): inner descent is the hot
  /// loop of every operation and a mispredicted binary-search compare costs
  /// more than the extra compares the unrolled tail does. Other key types
  /// (e.g. the var-trees' std::string separators) keep std::lower_bound.
  static uint32_t ChildSlot(const Node* n, const Key& key) {
    if constexpr (std::is_same_v<Key, uint64_t>) {
      return static_cast<uint32_t>(simd::LowerBoundU64(n->keys, n->n_keys,
                                                       key));
    } else {
      const Key* begin = n->keys;
      const Key* end = n->keys + n->n_keys;
      return static_cast<uint32_t>(std::lower_bound(begin, end, key) - begin);
    }
  }

  static void InsertAt(Node* n, uint32_t slot, const Key& key, void* right) {
    std::copy_backward(n->keys + slot, n->keys + n->n_keys,
                       n->keys + n->n_keys + 1);
    std::copy_backward(n->children + slot + 1, n->children + n->n_keys + 1,
                       n->children + n->n_keys + 2);
    n->keys[slot] = key;
    n->children[slot + 1] = right;
    ++n->n_keys;
  }

  void RemoveChild(const Path& path, int level) {
    if (level < 0) {
      // The root lost its last child (already freed by the caller).
      root_ = nullptr;
      return;
    }
    Node* n = path.nodes[level];
    uint32_t slot = path.slots[level];
    if (n->n_keys == 0) {
      // Node held a single child; remove the node itself from its parent.
      FreeNode(n);
      RemoveChild(path, level - 1);
      return;
    }
    // Remove children[slot] and the adjacent separator.
    uint32_t key_slot = slot == n->n_keys ? slot - 1 : slot;
    std::copy(n->keys + key_slot + 1, n->keys + n->n_keys, n->keys + key_slot);
    std::copy(n->children + slot + 1, n->children + n->n_keys + 1,
              n->children + slot);
    --n->n_keys;
    // A keyless non-leaf-parent node holds a single subtree: splice the
    // child upward (into the parent slot, or as the new root). Keyless
    // leaf parents are kept — a leaf cannot take an inner node's place.
    if (n->n_keys == 0 && !n->leaf_children) {
      Node* child = static_cast<Node*>(n->children[0]);
      if (level == 0) {
        root_ = child;
      } else {
        path.nodes[level - 1]->children[path.slots[level - 1]] = child;
      }
      FreeNode(n);
    }
  }

  Node* NewNode() {
    ++node_count_;
    return new Node();
  }

  void FreeNode(Node* n) {
    --node_count_;
    delete n;
  }

  void FreeRecursive(Node* n) {
    if (!n->leaf_children) {
      for (uint32_t i = 0; i <= n->n_keys; ++i) {
        FreeRecursive(static_cast<Node*>(n->children[i]));
      }
    }
    FreeNode(n);
  }

  Node* root_ = nullptr;
  uint64_t node_count_ = 0;
};

}  // namespace core
}  // namespace fptree
