file(REMOVE_RECURSE
  "CMakeFiles/fptree_htm.dir/htm.cc.o"
  "CMakeFiles/fptree_htm.dir/htm.cc.o.d"
  "libfptree_htm.a"
  "libfptree_htm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fptree_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
