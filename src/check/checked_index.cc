// Copyright (c) FPTree reproduction authors.

#include "check/checked_index.h"

namespace fptree {
namespace check {

std::unique_ptr<index::KVIndex> Checked(std::unique_ptr<index::KVIndex> inner,
                                        HistoryRecorder* recorder) {
  return std::make_unique<CheckedKVIndex>(std::move(inner), recorder);
}

std::unique_ptr<index::VarIndex> Checked(std::unique_ptr<index::VarIndex> inner,
                                         HistoryRecorder* recorder) {
  return std::make_unique<CheckedVarIndex>(std::move(inner), recorder);
}

std::unique_ptr<index::KVIndex> CheckedBorrowed(index::KVIndex* inner,
                                                HistoryRecorder* recorder) {
  return std::make_unique<CheckedKVIndex>(inner, recorder);
}

std::unique_ptr<index::VarIndex> CheckedBorrowed(index::VarIndex* inner,
                                                 HistoryRecorder* recorder) {
  return std::make_unique<CheckedVarIndex>(inner, recorder);
}

bool ParseCheckedSpec(const std::string& spec, std::string* inner) {
  constexpr const char* kPrefix = "checked(";
  const size_t prefix_len = 8;
  if (spec.size() < prefix_len + 1) return false;
  if (spec.compare(0, prefix_len, kPrefix) != 0) return false;
  if (spec.back() != ')') return false;
  *inner = spec.substr(prefix_len, spec.size() - prefix_len - 1);
  return !inner->empty();
}

}  // namespace check
}  // namespace fptree
