// Copyright (c) FPTree reproduction authors.

#include "check/checker.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>
#include <unordered_set>
#include <vector>

namespace fptree {
namespace check {

namespace {

// One per-key operation after decomposition. `required()` ops completed
// and must appear in any accepting linearization; pending ops are
// optional (apply-or-skip).
struct Node {
  uint64_t t_inv = 0;
  uint64_t t_resp = kPendingTime;
  uint64_t arg = 0;
  uint64_t result = 0;
  OpKind kind = OpKind::kGet;
  Outcome outcome = Outcome::kTrue;
  bool from_scan = false;
  bool recovered_read = false;
  bool required() const { return outcome != Outcome::kPending; }
};

// The single-value register each key models.
struct RegState {
  bool present = false;
  uint64_t value = 0;
  bool operator==(const RegState& o) const {
    return present == o.present && (!present || value == o.value);
  }
  bool operator<(const RegState& o) const {
    if (present != o.present) return present < o.present;
    return present && value < o.value;
  }
};

const char* KindName(OpKind k) {
  switch (k) {
    case OpKind::kGet: return "get";
    case OpKind::kInsert: return "insert";
    case OpKind::kUpdate: return "update";
    case OpKind::kErase: return "erase";
    case OpKind::kUpsert: return "upsert";
    case OpKind::kScan: return "scan";
  }
  return "?";
}

const char* OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kFalse: return "false";
    case Outcome::kTrue: return "true";
    case Outcome::kUnknown: return "unknown";
    case Outcome::kPending: return "pending";
    case Outcome::kNoop: return "noop";
  }
  return "?";
}

// Transition of a *completed* op: false when the recorded outcome is
// inconsistent with state `s` (this linearization order is impossible).
bool ApplyRequired(const Node& nd, RegState* s) {
  switch (nd.kind) {
    case OpKind::kGet:
      if (nd.outcome == Outcome::kTrue) {
        return s->present && s->value == nd.result;
      }
      if (nd.outcome == Outcome::kFalse) return !s->present;
      return true;  // unreachable: reads always report found/not-found
    case OpKind::kInsert:
      if (nd.outcome == Outcome::kTrue) {
        if (s->present) return false;
        s->present = true;
        s->value = nd.arg;
        return true;
      }
      return s->present;  // kFalse: key already existed, value untouched
    case OpKind::kUpdate:
      if (nd.outcome == Outcome::kTrue) {
        if (!s->present) return false;
        s->value = nd.arg;
        return true;
      }
      return !s->present;
    case OpKind::kErase:
      if (nd.outcome == Outcome::kTrue) {
        if (!s->present) return false;
        s->present = false;
        return true;
      }
      return !s->present;
    case OpKind::kUpsert:
      if (nd.outcome == Outcome::kTrue && s->present) return false;
      if (nd.outcome == Outcome::kFalse && !s->present) return false;
      // kUnknown (wire PUT: ack without the inserted flag) constrains
      // nothing about the prior state.
      s->present = true;
      s->value = nd.arg;
      return true;
    case OpKind::kScan:
      return true;  // scans were decomposed; never reach the solver
  }
  return true;
}

// Possible effect of a pending op when a branch chooses to apply it.
// False when the op could not have taken effect from state `s` (the
// branch that skips it forever is explored separately).
bool ApplyEffect(const Node& nd, RegState* s) {
  switch (nd.kind) {
    case OpKind::kInsert:
      if (s->present) return false;
      s->present = true;
      s->value = nd.arg;
      return true;
    case OpKind::kUpdate:
      if (!s->present) return false;
      s->value = nd.arg;
      return true;
    case OpKind::kErase:
      if (!s->present) return false;
      s->present = false;
      return true;
    case OpKind::kUpsert:
      s->present = true;
      s->value = nd.arg;
      return true;
    case OpKind::kGet:
      // Pending reads that still constrain (rows observed by a crashed
      // scan) are modeled as required; a plain pending read has no
      // effect and is dropped at decomposition.
      return false;
    case OpKind::kScan:
      return false;
  }
  return false;
}

// Memoized Wing–Gong DFS over one cluster. Collects the set of register
// states a complete linearization of the cluster can end in; an empty
// set means no accepting order exists.
class ClusterSolver {
 public:
  ClusterSolver(const Node* nodes, size_t n, uint64_t* dfs_budget,
                CheckStats* stats)
      : nodes_(nodes),
        n_(n),
        words_((n + 63) / 64),
        bits_(words_, 0),
        dfs_budget_(dfs_budget),
        stats_(stats) {
    for (size_t i = 0; i < n_; ++i) {
      if (nodes_[i].required()) ++total_required_;
    }
  }

  bool budget_hit() const { return budget_hit_; }

  std::vector<RegState> Solve(const std::vector<RegState>& starts) {
    for (const RegState& s : starts) {
      std::fill(bits_.begin(), bits_.end(), 0);
      done_required_ = 0;
      num_linearized_ = 0;
      Dfs(s);
      if (budget_hit_) break;
    }
    return std::vector<RegState>(ends_.begin(), ends_.end());
  }

 private:
  bool Linearized(size_t i) const {
    return (bits_[i >> 6] >> (i & 63)) & 1;
  }
  void SetBit(size_t i) { bits_[i >> 6] |= uint64_t{1} << (i & 63); }
  void ClearBit(size_t i) { bits_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }

  std::string MemoKey(const RegState& s) const {
    std::string k;
    k.resize(words_ * 8 + 9);
    char* p = k.data();
    for (size_t w = 0; w < words_; ++w) {
      uint64_t v = bits_[w];
      for (int b = 0; b < 8; ++b) p[w * 8 + b] = static_cast<char>(v >> (8 * b));
    }
    p += words_ * 8;
    p[0] = s.present ? 1 : 0;
    uint64_t v = s.present ? s.value : 0;
    for (int b = 0; b < 8; ++b) p[1 + b] = static_cast<char>(v >> (8 * b));
    return k;
  }

  void Dfs(const RegState& s) {
    if (budget_hit_) return;
    if (*dfs_budget_ == 0) {
      budget_hit_ = true;
      return;
    }
    --*dfs_budget_;
    ++stats_->dfs_nodes;
    if (done_required_ == total_required_) ends_.insert(s);
    if (num_linearized_ == n_) return;
    if (!memo_.insert(MemoKey(s)).second) return;
    // Wing–Gong candidate rule: an op may linearize next iff no
    // unlinearized *completed* op's response strictly precedes its
    // invocation.
    uint64_t min_resp = kPendingTime;
    for (size_t i = 0; i < n_; ++i) {
      if (!Linearized(i) && nodes_[i].required()) {
        min_resp = std::min(min_resp, nodes_[i].t_resp);
      }
    }
    for (size_t i = 0; i < n_; ++i) {
      if (Linearized(i)) continue;
      const Node& nd = nodes_[i];
      if (min_resp < nd.t_inv) continue;
      RegState ns = s;
      if (nd.required()) {
        if (!ApplyRequired(nd, &ns)) continue;
      } else {
        if (!ApplyEffect(nd, &ns)) continue;
      }
      SetBit(i);
      ++num_linearized_;
      if (nd.required()) ++done_required_;
      // Linearizing `nd` moves the cut past every pending op whose
      // response it strictly follows: those can no longer take effect in
      // this branch (a completed op's real-time order pins them).
      skip_stack_.clear();
      for (size_t j = 0; j < n_; ++j) {
        if (!Linearized(j) && !nodes_[j].required() &&
            nodes_[j].t_resp < nd.t_inv) {
          SetBit(j);
          ++num_linearized_;
          skip_stack_.push_back(static_cast<uint32_t>(j));
        }
      }
      std::vector<uint32_t> skipped;
      skipped.swap(skip_stack_);
      Dfs(ns);
      for (uint32_t j : skipped) {
        ClearBit(j);
        --num_linearized_;
      }
      ClearBit(i);
      --num_linearized_;
      if (nd.required()) --done_required_;
    }
  }

  const Node* nodes_;
  size_t n_;
  size_t words_;
  std::vector<uint64_t> bits_;
  size_t total_required_ = 0;
  size_t done_required_ = 0;
  size_t num_linearized_ = 0;
  std::set<RegState> ends_;
  std::unordered_set<std::string> memo_;
  std::vector<uint32_t> skip_stack_;
  uint64_t* dfs_budget_;
  CheckStats* stats_;
  bool budget_hit_ = false;
};

// --- key-space plumbing (fixed uint64 keys vs var string keys) --------------

std::string PrintKey(uint64_t key) {
  std::ostringstream os;
  os << key;
  return os.str();
}

std::string PrintKey(const std::string& key) {
  std::string out = "\"";
  for (char c : key) {
    if (std::isprint(static_cast<unsigned char>(c))) {
      out += c;
    } else {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\x%02x",
                    static_cast<unsigned char>(c));
      out += buf;
    }
    if (out.size() > 40) {
      out += "...";
      break;
    }
  }
  out += "\"";
  return out;
}

template <typename KeyT>
struct Space {
  std::map<KeyT, std::vector<Node>> per_key;
  struct ScanRec {
    KeyT start;
    std::vector<KeyT> row_keys;  // sorted
    bool exhausted = false;
    uint64_t t_inv = 0;
    uint64_t t_resp = kPendingTime;
    bool pending = false;
  };
  std::vector<ScanRec> scans;
};

// Turns one captured event into per-key nodes. Shared between the two
// key spaces via the KeyT-specific `key_of` / row extraction lambdas.
template <typename KeyT, typename KeyOfFn, typename RowFn>
void AddEvent(const History& h, const Event& ev, Space<KeyT>* sp,
              const KeyOfFn& key_of, const RowFn& row_of,
              CheckStats* stats) {
  if (ev.outcome == Outcome::kNoop) return;
  if (ev.kind != OpKind::kScan) {
    if (ev.kind == OpKind::kGet && ev.outcome == Outcome::kPending) return;
    Node nd;
    nd.t_inv = ev.t_inv;
    nd.t_resp = ev.t_resp;
    nd.arg = ev.arg;
    nd.result = ev.result;
    nd.kind = ev.kind;
    nd.outcome = ev.outcome;
    sp->per_key[key_of(ev)].push_back(nd);
    return;
  }
  // Scan: each delivered row is a completed read of (key -> value) whose
  // interval is the scan's. Rows observed by a scan that never returned
  // (crash mid-scan) were still truly read — they stay required, with the
  // response widened to +inf.
  typename Space<KeyT>::ScanRec rec;
  rec.start = key_of(ev);
  rec.exhausted = ev.scan_exhausted;
  rec.t_inv = ev.t_inv;
  rec.t_resp = ev.t_resp;
  rec.pending = ev.outcome == Outcome::kPending;
  rec.row_keys.reserve(ev.rows_n);
  for (uint32_t i = 0; i < ev.rows_n; ++i) {
    KeyT rkey;
    uint64_t rval;
    row_of(ev, i, &rkey, &rval);
    Node nd;
    nd.t_inv = ev.t_inv;
    nd.t_resp = ev.t_resp;
    nd.kind = OpKind::kGet;
    nd.outcome = Outcome::kTrue;
    nd.result = rval;
    nd.from_scan = true;
    sp->per_key[rkey].push_back(nd);
    rec.row_keys.push_back(std::move(rkey));
    ++stats->scan_reads;
  }
  std::sort(rec.row_keys.begin(), rec.row_keys.end());
  sp->scans.push_back(std::move(rec));
  (void)h;
}

// Absence witnesses: a completed scan that listed rows covers the window
// [start, last row] — or [start, +inf) when it ran dry below its limit —
// and every universe key inside the window it did *not* list was read as
// absent. Scans with zero rows witness nothing: an unordered index
// legitimately returns no rows, and treating that as "everything absent"
// would be unsound.
template <typename KeyT>
void AddAbsenceWitnesses(Space<KeyT>* sp, CheckStats* stats) {
  for (const auto& rec : sp->scans) {
    if (rec.pending || rec.row_keys.empty()) continue;
    auto it = sp->per_key.lower_bound(rec.start);
    auto rows_it = rec.row_keys.begin();
    const KeyT& last = rec.row_keys.back();
    for (; it != sp->per_key.end(); ++it) {
      if (!rec.exhausted && last < it->first) break;
      while (rows_it != rec.row_keys.end() && *rows_it < it->first) ++rows_it;
      if (rows_it != rec.row_keys.end() && *rows_it == it->first) continue;
      Node nd;
      nd.t_inv = rec.t_inv;
      nd.t_resp = rec.t_resp;
      nd.kind = OpKind::kGet;
      nd.outcome = Outcome::kFalse;
      nd.from_scan = true;
      it->second.push_back(nd);
      ++stats->scan_reads;
    }
  }
}

template <typename KeyT>
std::string DescribeCluster(const KeyT& key, const Node* nodes, size_t n) {
  std::ostringstream os;
  os << "key " << PrintKey(key) << ": no linearization of " << n
     << " overlapping op(s):";
  size_t show = std::min<size_t>(n, 16);
  for (size_t i = 0; i < show; ++i) {
    const Node& nd = nodes[i];
    os << "\n  " << KindName(nd.kind) << "(arg=" << nd.arg
       << ") -> " << OutcomeName(nd.outcome);
    if (nd.kind == OpKind::kGet && nd.outcome == Outcome::kTrue) {
      os << " value=" << nd.result;
    }
    if (nd.recovered_read) os << " [recovered state]";
    if (nd.from_scan) os << " [scan witness]";
    os << " @[" << nd.t_inv << ", ";
    if (nd.t_resp == kPendingTime) {
      os << "pending";
    } else {
      os << nd.t_resp;
    }
    os << "]";
  }
  if (show < n) os << "\n  ... " << (n - show) << " more";
  return os.str();
}

template <typename KeyT>
bool CheckKey(const KeyT& key, std::vector<Node>* nodes, RegState init,
              const CheckOptions& opts, uint64_t* dfs_budget,
              CheckResult* res) {
  std::stable_sort(nodes->begin(), nodes->end(),
                   [](const Node& a, const Node& b) {
                     if (a.t_inv != b.t_inv) return a.t_inv < b.t_inv;
                     return a.t_resp < b.t_resp;
                   });
  ++res->stats.keys;
  res->stats.ops += nodes->size();
  std::vector<RegState> frontier{init};
  size_t i = 0;
  const size_t n = nodes->size();
  while (i < n) {
    // Grow the cluster until a quiescent cut: every op so far responded
    // strictly before the next invocation.
    uint64_t max_resp = (*nodes)[i].t_resp;
    size_t j = i + 1;
    while (j < n && !(max_resp < (*nodes)[j].t_inv)) {
      max_resp = std::max(max_resp, (*nodes)[j].t_resp);
      ++j;
    }
    const size_t len = j - i;
    ++res->stats.clusters;
    res->stats.largest_cluster =
        std::max<uint64_t>(res->stats.largest_cluster, len);
    if (len > opts.max_cluster_ops) {
      res->decided = false;
      res->why = "cluster of " + std::to_string(len) + " ops on key " +
                 PrintKey(key) + " exceeds max_cluster_ops";
      return false;
    }
    ClusterSolver solver(nodes->data() + i, len, dfs_budget, &res->stats);
    frontier = solver.Solve(frontier);
    if (solver.budget_hit()) {
      res->decided = false;
      res->why = "dfs budget exhausted on key " + PrintKey(key);
      return false;
    }
    if (frontier.empty()) {
      res->ok = false;
      res->why = DescribeCluster(key, nodes->data() + i, len);
      return false;
    }
    if (frontier.size() > opts.max_frontier_states) {
      res->decided = false;
      res->why = "frontier of " + std::to_string(frontier.size()) +
                 " states on key " + PrintKey(key) +
                 " exceeds max_frontier_states";
      return false;
    }
    i = j;
  }
  return true;
}

template <typename KeyT>
bool CheckSpace(Space<KeyT>* sp, const std::map<KeyT, uint64_t>& initial,
                const std::map<KeyT, uint64_t>& recovered,
                const CheckOptions& opts, uint64_t* dfs_budget,
                CheckResult* res) {
  // The universe must cover keys that only appear in the initial or
  // recovered state: an unexplained appearance/disappearance is a
  // violation only if the key gets its required recovered read.
  for (const auto& kv : initial) sp->per_key[kv.first];
  if (opts.durable) {
    for (const auto& kv : recovered) sp->per_key[kv.first];
  }
  AddAbsenceWitnesses(sp, &res->stats);
  if (opts.durable) {
    for (auto& kv : sp->per_key) {
      Node nd;
      nd.kind = OpKind::kGet;
      nd.t_inv = kPendingTime - 1;
      nd.t_resp = kPendingTime - 1;
      nd.recovered_read = true;
      auto it = recovered.find(kv.first);
      if (it != recovered.end()) {
        nd.outcome = Outcome::kTrue;
        nd.result = it->second;
      } else {
        nd.outcome = Outcome::kFalse;
      }
      kv.second.push_back(nd);
    }
  }
  for (auto& kv : sp->per_key) {
    RegState init;
    auto it = initial.find(kv.first);
    if (it != initial.end()) {
      init.present = true;
      init.value = it->second;
    }
    if (!CheckKey(kv.first, &kv.second, init, opts, dfs_budget, res)) {
      return false;
    }
  }
  return true;
}

}  // namespace

CheckResult CheckHistory(const History& h, const CheckOptions& opts) {
  CheckResult res;
  uint64_t dfs_budget = opts.max_dfs_nodes;

  Space<uint64_t> fixed;
  Space<std::string> var;
  auto fixed_key = [](const Event& ev) { return ev.key; };
  auto fixed_row = [&h](const Event& ev, uint32_t i, uint64_t* key,
                        uint64_t* val) {
    *key = h.words[ev.rows_off + 2 * i];
    *val = h.words[ev.rows_off + 2 * i + 1];
  };
  auto var_key = [&h](const Event& ev) {
    return std::string(h.KeyOf(ev));
  };
  auto var_row = [&h](const Event& ev, uint32_t i, std::string* key,
                      uint64_t* val) {
    uint64_t off = h.words[ev.rows_off + 3 * i];
    uint64_t len = h.words[ev.rows_off + 3 * i + 1];
    key->assign(h.chars.data() + off, len);
    *val = h.words[ev.rows_off + 3 * i + 2];
  };
  for (const Event& ev : h.events) {
    if (ev.var_key) {
      AddEvent(h, ev, &var, var_key, var_row, &res.stats);
    } else {
      AddEvent(h, ev, &fixed, fixed_key, fixed_row, &res.stats);
    }
  }

  if (!CheckSpace(&fixed, opts.initial_fixed, opts.recovered_fixed, opts,
                  &dfs_budget, &res)) {
    return res;
  }
  CheckSpace(&var, opts.initial_var, opts.recovered_var, opts, &dfs_budget,
             &res);
  return res;
}

}  // namespace check
}  // namespace fptree
