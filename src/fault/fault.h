// Copyright (c) FPTree reproduction authors.
//
// Deterministic fault injection (DESIGN.md §12). CrashSim (scm/crash.h)
// proves the tree survives crashes; this layer proves the whole stack
// degrades gracefully under the *non-crash* faults a production deployment
// sees: SCM pool exhaustion, pathological HTM abort streams, and flaky
// network peers. The design mirrors CrashSim's site registry:
//
//  * Code declares named injection sites with FPTREE_FAULT_POINT("name");
//    when nothing is armed this compiles to a single relaxed-atomic load
//    and branch, so sites are safe on hot paths.
//  * Tests (or the FPTREE_FAULTS environment variable) arm a site with a
//    FaultSpec combining four deterministic, seed-reproducible triggers:
//    skip the first `after` evaluations, then fire every `every`-th
//    evaluation or with `probability` per evaluation (per-site SplitMix64
//    stream derived from the global seed and the site name), stopping
//    after `max_fires` fires. A spec with neither `every` nor
//    `probability` fires on every evaluation past the countdown — the
//    "fail the very next Allocate" one-shot when combined with max_fires.
//  * Every fire bumps obs counters `fault.<site>` and `fault.injected`,
//    so harnesses can assert from METRICS_JSON that an injection actually
//    happened (a fault test that never injects is vacuous).
//
// What each armed site makes the callee do:
//
//   scm.alloc.oom      Allocator::Allocate returns ResourceExhausted
//                      before touching any persistent state.
//   htm.abort          the speculative HTM attempt is doomed (counts as a
//                      conflict abort); at 100% every operation is forced
//                      through the global-lock fallback path.
//   net.accept.drop    the server closes an accepted connection instantly.
//   net.read.err       the server treats the next readable event as a
//                      fatal socket error and drops the connection.
//   net.write.err      same for the flush path.
//   net.write.partial  the flush writes at most one byte, then yields
//                      (exercises EPOLLOUT re-arm / short-write handling).
//   net.stall          the server skips flushing queued responses (a
//                      stalled peer from the client's point of view).
//
// Reproduction: every run is a pure function of (seed, arming specs,
// evaluation order). Single-threaded tests are exactly reproducible;
// concurrent tests are distribution-reproducible per seed.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace fptree {
namespace fault {

/// How an armed site decides whether an evaluation fires. Triggers
/// compose: the first `after` evaluations never fire; afterwards `every`
/// (if set) wins over `probability`; `max_fires` caps the total.
struct FaultSpec {
  double probability = 0.0;  ///< chance per evaluation in [0, 1]
  uint64_t after = 0;        ///< countdown: pass the first N evaluations
  uint64_t every = 0;        ///< fire on every Nth post-countdown evaluation
  uint64_t max_fires = 0;    ///< stop after this many fires (0 = unlimited)
};

/// Process-wide injection-site registry. All methods are thread-safe.
class FaultInjector {
 public:
  /// The singleton. First use parses FPTREE_FAULT_SEED / FPTREE_FAULTS
  /// from the environment (malformed specs abort the process: a chaos run
  /// with a silently-ignored fault plan would report vacuous success).
  static FaultInjector& Instance();

  /// Arms (or re-arms) a site, resetting its evaluation/fire counts and
  /// reseeding its RNG stream from the current global seed.
  void Arm(std::string_view site, const FaultSpec& spec);

  /// Disarms one site / every site. Counters keep their values.
  void Disarm(std::string_view site);
  void DisarmAll();

  /// Sets the global seed; affects sites armed afterwards.
  void SetSeed(uint64_t seed);
  uint64_t seed() const { return seed_.load(std::memory_order_relaxed); }

  /// Full decision for one evaluation of `site`. Callers go through
  /// FPTREE_FAULT_POINT, which short-circuits when nothing is armed.
  bool ShouldFail(const char* site);

  /// Times the site fired / was evaluated since it was last armed.
  uint64_t Fires(std::string_view site) const;
  uint64_t Evals(std::string_view site) const;

  /// Total fires across all sites since process start (monotonic; survives
  /// re-arming). Reported as the `fault.injected` obs counter.
  uint64_t TotalFires() const;

  /// Per-site lifetime fire counts, for the obs snapshot absorption
  /// (`fault.<site>` counters) — the same pattern scm.*/htm.* use.
  std::vector<std::pair<std::string, uint64_t>> LifetimeFires() const;

  /// Parses an arming plan: `site=trigger:value[,trigger:value...]`
  /// clauses separated by `;`. Triggers: `p` (probability), `every`,
  /// `after`, `max`. Example:
  ///   scm.alloc.oom=every:5,max:3;htm.abort=p:1.0
  Status Configure(std::string_view plan);

  /// True while at least one site is armed (the macro fast path).
  bool enabled() const {
    return armed_.load(std::memory_order_acquire) != 0;
  }

 private:
  struct Site;

  FaultInjector();
  Site* FindOrCreate(std::string_view site);
  const Site* Find(std::string_view site) const;

  std::atomic<int> armed_{0};
  std::atomic<uint64_t> seed_{0x46505472656531ULL};  // "FPTree1"
  // Sites live forever once created (the set is tiny and names are static
  // string literals), so ShouldFail can use a pointer without holding the
  // registry lock. Declared via pimpl-ish vector in fault.cc.
  struct Impl;
  Impl* impl_;
};

/// Macro target: one branch when nothing is armed anywhere.
inline bool ShouldInject(const char* site) {
  FaultInjector& f = FaultInjector::Instance();
  if (!f.enabled()) return false;
  return f.ShouldFail(site);
}

}  // namespace fault
}  // namespace fptree

/// Evaluates to true when the named fault site fires. Usable inside any
/// expression; no-op (single branch) unless a test armed something.
#define FPTREE_FAULT_POINT(site) (::fptree::fault::ShouldInject(site))
