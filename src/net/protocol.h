// Copyright (c) FPTree reproduction authors.
//
// Wire protocol of the FPTree KV server (DESIGN.md §9): compact
// little-endian length-prefixed frames, designed for pipelining — a client
// may write any number of request frames back-to-back and the server emits
// exactly one response frame per request, strictly in request order, so no
// request ids are needed.
//
//   Request:  [u32 body_len][u8 op][payload...]      (body_len = 1 + payload)
//     PUT  (1): [u32 klen][key bytes][u64 value]     upsert, always OK
//     GET  (2): [u32 klen][key bytes]
//     DEL  (3): [u32 klen][key bytes]
//     SCAN (4): [u32 klen][start key][u32 limit]     ordered, ascending
//     UPSERT(5):[u32 klen][key bytes][u64 value]     like PUT, but the OK
//               response reports whether the key was inserted or replaced
//   Response: [u32 body_len][u8 status][payload...]
//     status: 0 OK, 1 NOT_FOUND, 2 BAD_REQUEST
//     GET OK:  [u64 value]
//     UPSERT OK: [u64 inserted]   (1 = newly inserted, 0 = replaced)
//     SCAN OK: [u32 count] then count * ([u32 klen][key bytes][u64 value])
//
// Decoders are incremental (kNeedMore on a partial frame) and defensive:
// any frame violating the body/key/limit bounds decodes to kError and the
// server answers BAD_REQUEST, then closes the connection.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fptree {
namespace net {

enum class Op : uint8_t {
  kPut = 1,
  kGet = 2,
  kDel = 3,
  kScan = 4,
  kUpsert = 5,
};

enum class RespStatus : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kBadRequest = 2,
};

/// Upper bound on one frame body; anything larger is a protocol error.
constexpr size_t kMaxFrameBody = size_t{1} << 20;
/// Upper bound on one key.
constexpr size_t kMaxKeyLen = 4096;
/// Server-side cap on a single SCAN's row count.
constexpr uint32_t kMaxScanLimit = 4096;

/// Parsed request; `key` views into the caller's receive buffer and is only
/// valid until that buffer is mutated.
struct Request {
  Op op = Op::kGet;
  std::string_view key;
  uint64_t value = 0;      // PUT payload
  uint32_t scan_limit = 0; // SCAN row cap (pre-clamped to kMaxScanLimit)
};

/// Parsed response (client side). `scan` is only filled for SCAN.
struct Response {
  RespStatus status = RespStatus::kOk;
  uint64_t value = 0;
  std::vector<std::pair<std::string, uint64_t>> scan;
};

enum class DecodeStatus {
  kNeedMore,  // buffer holds a partial frame; read more bytes
  kOk,        // one frame decoded; *consumed bytes were used
  kError,     // malformed frame; the connection should be dropped
};

// --- little-endian primitives ----------------------------------------------

inline void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

inline void PutU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

inline uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// --- request encoding (client) ---------------------------------------------

inline void EncodePut(std::string* out, std::string_view key, uint64_t value) {
  PutU32(out, static_cast<uint32_t>(1 + 4 + key.size() + 8));
  out->push_back(static_cast<char>(Op::kPut));
  PutU32(out, static_cast<uint32_t>(key.size()));
  out->append(key.data(), key.size());
  PutU64(out, value);
}

inline void EncodeUpsert(std::string* out, std::string_view key,
                         uint64_t value) {
  PutU32(out, static_cast<uint32_t>(1 + 4 + key.size() + 8));
  out->push_back(static_cast<char>(Op::kUpsert));
  PutU32(out, static_cast<uint32_t>(key.size()));
  out->append(key.data(), key.size());
  PutU64(out, value);
}

inline void EncodeGet(std::string* out, std::string_view key) {
  PutU32(out, static_cast<uint32_t>(1 + 4 + key.size()));
  out->push_back(static_cast<char>(Op::kGet));
  PutU32(out, static_cast<uint32_t>(key.size()));
  out->append(key.data(), key.size());
}

inline void EncodeDel(std::string* out, std::string_view key) {
  PutU32(out, static_cast<uint32_t>(1 + 4 + key.size()));
  out->push_back(static_cast<char>(Op::kDel));
  PutU32(out, static_cast<uint32_t>(key.size()));
  out->append(key.data(), key.size());
}

inline void EncodeScan(std::string* out, std::string_view start,
                       uint32_t limit) {
  PutU32(out, static_cast<uint32_t>(1 + 4 + start.size() + 4));
  out->push_back(static_cast<char>(Op::kScan));
  PutU32(out, static_cast<uint32_t>(start.size()));
  out->append(start.data(), start.size());
  PutU32(out, limit);
}

// --- request decoding (server) ---------------------------------------------

inline DecodeStatus DecodeRequest(const char* data, size_t len, Request* req,
                                  size_t* consumed) {
  if (len < 4) return DecodeStatus::kNeedMore;
  uint32_t body = LoadU32(data);
  if (body < 1 + 4 || body > kMaxFrameBody) return DecodeStatus::kError;
  if (len < 4 + body) return DecodeStatus::kNeedMore;
  const char* p = data + 4;
  uint8_t op = static_cast<uint8_t>(*p);
  uint32_t klen = LoadU32(p + 1);
  if (klen > kMaxKeyLen || 1 + 4 + static_cast<size_t>(klen) > body) {
    return DecodeStatus::kError;
  }
  req->key = std::string_view(p + 1 + 4, klen);
  size_t tail = body - 1 - 4 - klen;  // bytes after the key
  switch (op) {
    case static_cast<uint8_t>(Op::kPut):
    case static_cast<uint8_t>(Op::kUpsert):
      if (tail != 8) return DecodeStatus::kError;
      req->op = static_cast<Op>(op);
      req->value = LoadU64(p + 1 + 4 + klen);
      break;
    case static_cast<uint8_t>(Op::kGet):
    case static_cast<uint8_t>(Op::kDel):
      if (tail != 0) return DecodeStatus::kError;
      req->op = static_cast<Op>(op);
      break;
    case static_cast<uint8_t>(Op::kScan): {
      if (tail != 4) return DecodeStatus::kError;
      req->op = Op::kScan;
      uint32_t limit = LoadU32(p + 1 + 4 + klen);
      req->scan_limit = limit > kMaxScanLimit ? kMaxScanLimit : limit;
      break;
    }
    default:
      return DecodeStatus::kError;
  }
  *consumed = 4 + body;
  return DecodeStatus::kOk;
}

// --- response encoding (server) --------------------------------------------

/// Status-only response (PUT, DEL, errors).
inline void EncodeStatusResponse(std::string* out, RespStatus st) {
  PutU32(out, 1);
  out->push_back(static_cast<char>(st));
}

/// GET response carrying a value.
inline void EncodeValueResponse(std::string* out, uint64_t value) {
  PutU32(out, 1 + 8);
  out->push_back(static_cast<char>(RespStatus::kOk));
  PutU64(out, value);
}

/// SCAN response. `rows` are (key, value) in ascending key order.
inline void EncodeScanResponse(
    std::string* out,
    const std::vector<std::pair<std::string, uint64_t>>& rows) {
  size_t body = 1 + 4;
  for (const auto& [k, v] : rows) body += 4 + k.size() + 8;
  PutU32(out, static_cast<uint32_t>(body));
  out->push_back(static_cast<char>(RespStatus::kOk));
  PutU32(out, static_cast<uint32_t>(rows.size()));
  for (const auto& [k, v] : rows) {
    PutU32(out, static_cast<uint32_t>(k.size()));
    out->append(k);
    PutU64(out, v);
  }
}

// --- response decoding (client) --------------------------------------------

inline DecodeStatus DecodeResponse(const char* data, size_t len,
                                   Response* resp, size_t* consumed) {
  if (len < 4) return DecodeStatus::kNeedMore;
  uint32_t body = LoadU32(data);
  if (body < 1 || body > kMaxFrameBody) return DecodeStatus::kError;
  if (len < 4 + body) return DecodeStatus::kNeedMore;
  const char* p = data + 4;
  resp->status = static_cast<RespStatus>(*p);
  resp->value = 0;
  resp->scan.clear();
  if (body == 1 + 8) {
    resp->value = LoadU64(p + 1);
  } else if (body >= 1 + 4) {
    uint32_t count = LoadU32(p + 1);
    const char* q = p + 1 + 4;
    const char* end = p + body;
    resp->scan.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      if (q + 4 > end) return DecodeStatus::kError;
      uint32_t klen = LoadU32(q);
      if (klen > kMaxKeyLen || q + 4 + klen + 8 > end) {
        return DecodeStatus::kError;
      }
      resp->scan.emplace_back(std::string(q + 4, klen),
                              LoadU64(q + 4 + klen));
      q += 4 + klen + 8;
    }
  }
  *consumed = 4 + body;
  return DecodeStatus::kOk;
}

}  // namespace net
}  // namespace fptree
