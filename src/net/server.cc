// Copyright (c) FPTree reproduction authors.
//
// Epoll server implementation. See server.h and DESIGN.md §9 for the
// architecture; the invariants that matter here:
//
//  * A connection is owned by one worker forever: all Conn state is
//    worker-local, no locks.
//  * Responses are appended to the connection's output queue in request
//    order before any flush, so pipelining needs no sequencing metadata.
//  * The output queue is bounded: crossing Options::max_output_bytes
//    pauses both the socket reads AND request execution for that
//    connection; nothing is dropped, the queue just stops growing.
//  * Index writes happen strictly before their response bytes exist, so
//    any response the client ever observes ("acked") is durably applied —
//    the drain path relies on this for zero lost acked writes.

#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "fault/fault.h"
#include "net/conn.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "util/timer.h"

namespace fptree {
namespace net {

namespace {

/// Registry pointers fetched once; shared by every server in the process.
struct NetMetrics {
  obs::Counter* accepted;
  obs::Counter* closed;
  obs::Counter* bad_frames;
  obs::Counter* no_space;
  obs::Counter* backpressure_stalls;
  obs::Counter* drain_discarded_bytes;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  obs::Counter* ops_get;
  obs::Counter* ops_put;
  obs::Counter* ops_del;
  obs::Counter* ops_scan;
  obs::Counter* ops_upsert;
  obs::Counter* ops_mget;
  obs::Counter* ops_mput;
  obs::LatencyHistogram* lat_get;
  obs::LatencyHistogram* lat_put;
  obs::LatencyHistogram* lat_del;
  obs::LatencyHistogram* lat_scan;
  obs::LatencyHistogram* lat_upsert;
  obs::LatencyHistogram* lat_mget;
  obs::LatencyHistogram* lat_mput;
  obs::LatencyHistogram* queue_depth;

  static const NetMetrics& Get() {
    static const NetMetrics m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      NetMetrics n;
      n.accepted = r.GetCounter("net.accepted");
      n.closed = r.GetCounter("net.closed");
      n.bad_frames = r.GetCounter("net.bad_frames");
      n.no_space = r.GetCounter("net.no_space");
      n.backpressure_stalls = r.GetCounter("net.backpressure_stalls");
      n.drain_discarded_bytes = r.GetCounter("net.drain_discarded_bytes");
      n.bytes_in = r.GetCounter("net.bytes_in");
      n.bytes_out = r.GetCounter("net.bytes_out");
      n.ops_get = r.GetCounter("net.ops.get");
      n.ops_put = r.GetCounter("net.ops.put");
      n.ops_del = r.GetCounter("net.ops.del");
      n.ops_scan = r.GetCounter("net.ops.scan");
      n.ops_upsert = r.GetCounter("net.ops.upsert");
      n.ops_mget = r.GetCounter("net.ops.mget");
      n.ops_mput = r.GetCounter("net.ops.mput");
      n.lat_get = r.GetHistogram("latency.net.get");
      n.lat_put = r.GetHistogram("latency.net.put");
      n.lat_del = r.GetHistogram("latency.net.del");
      n.lat_scan = r.GetHistogram("latency.net.scan");
      n.lat_upsert = r.GetHistogram("latency.net.upsert");
      n.lat_mget = r.GetHistogram("latency.net.mget");
      n.lat_mput = r.GetHistogram("latency.net.mput");
      n.queue_depth = r.GetHistogram("net.queue_depth");
      return n;
    }();
    return m;
  }
};

/// Per-wakeup cap on unprocessed input buffered for one connection, so a
/// firehose peer cannot starve the worker's other connections.
constexpr size_t kMaxBufferedIn = 256 * 1024;

}  // namespace

namespace internal {

/// One IO worker: epoll set, wakeup eventfd, accept inbox, owned conns.
struct Worker {
  Server* server = nullptr;
  uint32_t id = 0;
  int epfd = -1;
  int event_fd = -1;
  std::mutex inbox_mu;
  std::vector<int> inbox;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;
  bool drain_started = false;
  uint64_t drain_deadline_ns = 0;
  uint32_t next_rr = 0;  // round-robin accept target (worker 0 only)

  // Worker is the Server's friend; these let the file-local helpers touch
  // the server-wide counters without widening the friendship.
  void NoteConnClosed();
  void NoteAcked(uint64_t n);

  ~Worker() {
    for (auto& [fd, c] : conns) ::close(fd);
    if (event_fd >= 0) ::close(event_fd);
    if (epfd >= 0) ::close(epfd);
  }
};

void Worker::NoteConnClosed() {
  server->connections_.fetch_sub(1, std::memory_order_relaxed);
}

void Worker::NoteAcked(uint64_t n) {
  server->acked_ops_.fetch_add(n, std::memory_order_relaxed);
}

}  // namespace internal

using internal::Worker;

Server::Server(index::VarIndex* index, const Options& options)
    : index_(index), options_(options) {}

Server::~Server() {
  Shutdown();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Status Server::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Status::IOError("socket: " + std::string(strerror(errno)));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IOError("bind: " + std::string(strerror(errno)));
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    return Status::IOError("listen: " + std::string(strerror(errno)));
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);

  uint32_t n = options_.io_threads == 0 ? 1 : options_.io_threads;
  for (uint32_t i = 0; i < n; ++i) {
    auto w = std::make_unique<Worker>();
    w->server = this;
    w->id = i;
    w->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    w->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (w->epfd < 0 || w->event_fd < 0) {
      return Status::IOError("epoll/eventfd: " + std::string(strerror(errno)));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = w->event_fd;
    ::epoll_ctl(w->epfd, EPOLL_CTL_ADD, w->event_fd, &ev);
    if (i == 0) {
      ev.data.fd = listen_fd_;
      ::epoll_ctl(w->epfd, EPOLL_CTL_ADD, listen_fd_, &ev);
    }
    workers_.push_back(std::move(w));
  }
  obs::MetricsRegistry::Global().SetGauge(
      "net.connections", [this] { return connections(); });
  // Force the net.* counter/histogram registrations now, on this thread:
  // the first worker may not be scheduled for a while, and METRICS_JSON
  // consumers (and the metrics-key golden test) expect the full key set
  // to exist as soon as Start() returns.
  NetMetrics::Get();
  started_ = true;
  for (uint32_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerMain(i); });
  }
  return Status::OK();
}

void Server::BeginDrain() {
  // Async-signal-safe: one atomic store plus eventfd writes.
  if (!started_) return;
  drain_.store(true, std::memory_order_release);
  uint64_t wake = 1;
  for (auto& w : workers_) {
    ssize_t ignored = ::write(w->event_fd, &wake, sizeof(wake));
    (void)ignored;
  }
}

void Server::Join() {
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  if (started_ && !joined_) {
    obs::MetricsRegistry::Global().RemoveGauge("net.connections");
    joined_ = true;
  }
}

void Server::Shutdown() {
  BeginDrain();
  Join();
}

// --- worker internals -------------------------------------------------------

namespace {

void UpdateInterest(Worker* w, Conn* c, const Server::Options& opts) {
  const NetMetrics& m = NetMetrics::Get();
  bool pause = c->pending_out() >= opts.max_output_bytes;
  if (pause && !c->paused_read) m.backpressure_stalls->Add(1);
  if (!pause && c->paused_read &&
      c->pending_out() >= opts.resume_output_bytes) {
    pause = true;  // hysteresis: stay paused until below the low watermark
  }
  c->paused_read = pause;
  uint32_t want = 0;
  if (!pause && !c->peer_closed) want |= EPOLLIN;
  if (c->pending_out() > 0) want |= EPOLLOUT;
  if (want != c->events) {
    epoll_event ev{};
    ev.events = want;
    ev.data.fd = c->fd;
    ::epoll_ctl(w->epfd, EPOLL_CTL_MOD, c->fd, &ev);
    c->events = want;
  }
}

void CloseConn(Worker* w, Conn* c) {
  const NetMetrics& m = NetMetrics::Get();
  int fd = c->fd;
  ::epoll_ctl(w->epfd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  w->conns.erase(fd);
  w->NoteConnClosed();
  m.closed->Add(1);
}

/// Writes as much of the output queue as the socket accepts. Returns false
/// when the connection died mid-write (already closed).
bool FlushConn(Worker* w, Conn* c) {
  const NetMetrics& m = NetMetrics::Get();
  if (c->pending_out() > 0) {
    // Fault injection (DESIGN.md §12): a hard write error kills the
    // connection exactly like a peer that vanished; a stall models a peer
    // whose receive window is shut — nothing is sent, EPOLLOUT stays
    // armed, and the next flush retries.
    if (FPTREE_FAULT_POINT("net.write.err")) {
      CloseConn(w, c);
      return false;
    }
    if (FPTREE_FAULT_POINT("net.stall")) return true;
  }
  // A partial-write fault clamps every send of this flush to one byte,
  // exercising the out_pos bookkeeping against short writes.
  const bool short_writes =
      c->pending_out() > 1 && FPTREE_FAULT_POINT("net.write.partial");
  while (c->pending_out() > 0) {
    // MSG_NOSIGNAL: a peer that vanished mid-write yields EPIPE, not a
    // process-wide SIGPIPE.
    size_t chunk = short_writes ? 1 : c->pending_out();
    ssize_t wr = ::send(c->fd, c->out.data() + c->out_pos, chunk,
                        MSG_NOSIGNAL);
    if (wr > 0) {
      c->out_pos += static_cast<size_t>(wr);
      m.bytes_out->Add(static_cast<uint64_t>(wr));
    } else if (wr < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    } else if (wr < 0 && errno == EINTR) {
      continue;
    } else {
      CloseConn(w, c);
      return false;
    }
  }
  if (c->pending_out() == 0 && c->unflushed_responses > 0) {
    w->NoteAcked(c->unflushed_responses);
    c->unflushed_responses = 0;
  }
  c->Compact();
  return true;
}

}  // namespace

void Server::WorkerMain(uint32_t id) {
  Worker* w = workers_[id].get();
  const NetMetrics& m = NetMetrics::Get();

  auto execute = [&](const Request& req, Conn* c) {
    bool sample = obs::ShouldSample();
    uint64_t t0 = sample ? NowNanos() : 0;
    switch (req.op) {
      case Op::kPut: {
        // Checked write path (DESIGN.md §12): a full pool degrades this
        // connection's writes to NO_SPACE responses while reads, deletes
        // and scans below keep being served.
        bool inserted = false;
        Status s = index_->UpsertChecked(req.key, req.value, &inserted);
        if (s.ok()) {
          EncodeStatusResponse(&c->out, RespStatus::kOk);
        } else {
          EncodeStatusResponse(&c->out, RespStatus::kNoSpace);
          m.no_space->Add(1);
        }
        m.ops_put->Add(1);
        if (sample) m.lat_put->Record(NowNanos() - t0);
        break;
      }
      case Op::kUpsert: {
        bool inserted = false;
        Status s = index_->UpsertChecked(req.key, req.value, &inserted);
        if (s.ok()) {
          EncodeValueResponse(&c->out, inserted ? 1 : 0);
        } else {
          EncodeStatusResponse(&c->out, RespStatus::kNoSpace);
          m.no_space->Add(1);
        }
        m.ops_upsert->Add(1);
        if (sample) m.lat_upsert->Record(NowNanos() - t0);
        break;
      }
      case Op::kGet: {
        uint64_t v = 0;
        if (index_->Find(req.key, &v)) {
          EncodeValueResponse(&c->out, v);
        } else {
          EncodeStatusResponse(&c->out, RespStatus::kNotFound);
        }
        m.ops_get->Add(1);
        if (sample) m.lat_get->Record(NowNanos() - t0);
        break;
      }
      case Op::kDel: {
        EncodeStatusResponse(&c->out, index_->Erase(req.key)
                                          ? RespStatus::kOk
                                          : RespStatus::kNotFound);
        m.ops_del->Add(1);
        if (sample) m.lat_del->Record(NowNanos() - t0);
        break;
      }
      case Op::kScan: {
        // Served through the pull cursor (API v3): on the sharded engine
        // this is the k-way merge over per-shard cursors directly.
        std::vector<std::pair<std::string, uint64_t>> rows;
        if (req.scan_limit > 0) {
          rows.reserve(req.scan_limit);
          auto cursor = index_->OpenScan(req.key, req.scan_limit);
          std::string k;
          uint64_t v;
          while (rows.size() < req.scan_limit && cursor->Next(&k, &v)) {
            rows.emplace_back(std::move(k), v);
          }
          cursor->Close();
        }
        EncodeScanResponse(&c->out, rows);
        m.ops_scan->Add(1);
        if (sample) m.lat_scan->Record(NowNanos() - t0);
        break;
      }
      case Op::kMget: {
        // One hop into the index's native batch path (interleaved
        // prefetched descents / per-shard fan-out happen below us).
        const uint32_t cnt = static_cast<uint32_t>(req.keys.size());
        std::vector<uint64_t> vals(cnt, 0);
        std::vector<uint8_t> found(cnt, 0);
        if (cnt > 0) {
          index_->MultiGet(req.keys.data(), cnt, vals.data(), found.data());
        }
        EncodeMgetResponse(&c->out, found.data(), vals.data(), cnt);
        m.ops_mget->Add(1);
        if (sample) m.lat_mget->Record(NowNanos() - t0);
        break;
      }
      case Op::kMput: {
        // Per-key upsert semantics (like PUT). The checked batch stops at
        // the first failure, so a NO_SPACE answer means a strict input
        // prefix was applied durably; the client treats the batch as not
        // acked and may retry it wholesale (upserts are idempotent).
        const uint32_t cnt = static_cast<uint32_t>(req.keys.size());
        std::vector<uint8_t> ins(cnt, 0);
        size_t applied = 0;
        Status s = Status::OK();
        if (cnt > 0) {
          s = index_->MultiUpsertChecked(req.keys.data(), req.values.data(),
                                         cnt, ins.data(), &applied);
        }
        if (s.ok()) {
          EncodeMputResponse(&c->out, ins.data(), cnt);
        } else {
          EncodeStatusResponse(&c->out, RespStatus::kNoSpace);
          m.no_space->Add(1);
        }
        m.ops_mput->Add(1);
        if (sample) m.lat_mput->Record(NowNanos() - t0);
        break;
      }
    }
    ++c->unflushed_responses;
  };

  // Parse and execute every complete frame buffered on the connection
  // (request batching per wakeup), respecting the output-queue bound and
  // the drain cutoff, then flush once and re-arm interest.
  auto process = [&](Conn* c) {
    // Outer loop: a flush can free output budget with complete frames still
    // buffered in `in` and no further epoll event coming (the peer already
    // sent everything) — parsing must resume here, not wait for the kernel.
    for (;;) {
      bool stopped_on_bound = false;
      for (;;) {
        if (c->pending_out() >= options_.max_output_bytes) {
          stopped_on_bound = true;
          break;
        }
        size_t parse_end = c->draining ? c->drain_cutoff : c->in.size();
        if (c->in_pos >= parse_end) break;
        Request req;
        size_t consumed = 0;
        DecodeStatus st =
            DecodeRequest(c->in.data() + c->in_pos, parse_end - c->in_pos,
                          &req, &consumed);
        if (st == DecodeStatus::kNeedMore) break;
        if (st == DecodeStatus::kError) {
          m.bad_frames->Add(1);
          EncodeStatusResponse(&c->out, RespStatus::kBadRequest);
          c->close_after_flush = true;
          break;
        }
        c->in_pos += consumed;
        execute(req, c);
      }
      if (obs::ShouldSample()) {
        m.queue_depth->Record(c->pending_out());
      }
      size_t before = c->pending_out();
      if (!FlushConn(w, c)) return;  // connection died
      // Re-parse only when the bound stopped us and the flush made room;
      // a full queue against a clogged socket exits with EPOLLOUT armed.
      if (!stopped_on_bound ||
          c->pending_out() >= options_.max_output_bytes ||
          c->pending_out() == before) {
        break;
      }
    }
    // Close / half-close bookkeeping once the queue is empty.
    if (c->pending_out() == 0) {
      bool served_everything =
          c->in_pos >= (c->draining ? c->drain_cutoff : c->in.size());
      if (c->peer_closed || c->close_after_flush) {
        CloseConn(w, c);
        return;
      }
      if (c->draining && served_everything && !c->half_closed) {
        // All acked responses are on the wire: half-close and wait for the
        // peer's EOF so the kernel never RSTs away unread responses.
        ::shutdown(c->fd, SHUT_WR);
        c->half_closed = true;
      }
    }
    UpdateInterest(w, c, options_);
  };

  auto on_readable = [&](Conn* c) {
    // Injected read error: behaves exactly like read() returning a fatal
    // errno — connection dropped, unacked requests vanish with it.
    if (FPTREE_FAULT_POINT("net.read.err")) {
      CloseConn(w, c);
      return;
    }
    char buf[64 * 1024];
    for (;;) {
      if (c->pending_in() >= kMaxBufferedIn) break;
      ssize_t r = ::read(c->fd, buf, sizeof(buf));
      if (r > 0) {
        m.bytes_in->Add(static_cast<uint64_t>(r));
        if (c->draining) {
          // Past the drain cutoff: the request is never processed and
          // never acked; discard so the peer can reach EOF.
          m.drain_discarded_bytes->Add(static_cast<uint64_t>(r));
        } else {
          c->in.append(buf, static_cast<size_t>(r));
        }
      } else if (r == 0) {
        c->peer_closed = true;
        break;
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      } else if (errno == EINTR) {
        continue;
      } else {
        CloseConn(w, c);
        return;
      }
    }
    process(c);
  };

  auto register_conn = [&](int fd) {
    auto c = std::make_unique<Conn>();
    c->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(w->epfd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      return;
    }
    c->events = EPOLLIN;
    w->conns.emplace(fd, std::move(c));
    connections_.fetch_add(1, std::memory_order_relaxed);
  };

  auto accept_loop = [&] {
    for (;;) {
      int fd = ::accept4(listen_fd_, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN or a transient error; epoll re-signals
      }
      // Injected accept failure: the connection is closed before it is
      // ever registered — the client sees an immediate EOF/RST and must
      // reconnect (ConnectWithRetry's backoff path).
      if (FPTREE_FAULT_POINT("net.accept.drop")) {
        ::close(fd);
        continue;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      if (options_.sndbuf_bytes > 0) {
        ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                     sizeof(options_.sndbuf_bytes));
      }
      m.accepted->Add(1);
      uint32_t target = w->next_rr++ % static_cast<uint32_t>(workers_.size());
      if (target == w->id) {
        register_conn(fd);
      } else {
        Worker* t = workers_[target].get();
        {
          std::lock_guard<std::mutex> l(t->inbox_mu);
          t->inbox.push_back(fd);
        }
        uint64_t wake = 1;
        ssize_t ignored = ::write(t->event_fd, &wake, sizeof(wake));
        (void)ignored;
      }
    }
  };

  auto drain_inbox = [&] {
    std::vector<int> fds;
    {
      std::lock_guard<std::mutex> l(w->inbox_mu);
      fds.swap(w->inbox);
    }
    for (int fd : fds) {
      if (drain_.load(std::memory_order_acquire)) {
        ::close(fd);  // never served, nothing acked
        continue;
      }
      register_conn(fd);
    }
  };

  auto start_drain = [&] {
    w->drain_started = true;
    w->drain_deadline_ns =
        NowNanos() + uint64_t{options_.drain_grace_ms} * 1000000;
    if (w->id == 0 && listen_fd_ >= 0) {
      ::epoll_ctl(w->epfd, EPOLL_CTL_DEL, listen_fd_, nullptr);
    }
    // Snapshot the cutoff on every conn, then serve + flush each one.
    std::vector<Conn*> cs;
    cs.reserve(w->conns.size());
    for (auto& [fd, c] : w->conns) cs.push_back(c.get());
    for (Conn* c : cs) {
      c->draining = true;
      c->drain_cutoff = c->in.size();
      process(c);
    }
  };

  epoll_event evs[64];
  for (;;) {
    int timeout_ms = w->drain_started ? 20 : -1;
    int n = ::epoll_wait(w->epfd, evs, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = evs[i].data.fd;
      if (fd == w->event_fd) {
        uint64_t junk;
        while (::read(w->event_fd, &junk, sizeof(junk)) > 0) {
        }
        drain_inbox();
        continue;
      }
      if (w->id == 0 && fd == listen_fd_ && !w->drain_started) {
        accept_loop();
        continue;
      }
      auto it = w->conns.find(fd);
      if (it == w->conns.end()) continue;
      Conn* c = it->second.get();
      if (evs[i].events & (EPOLLHUP | EPOLLERR)) {
        // Flush whatever still fits, then drop.
        FlushConn(w, c);
        if (w->conns.count(fd)) CloseConn(w, c);
        continue;
      }
      if (evs[i].events & EPOLLIN) {
        on_readable(c);
        if (!w->conns.count(fd)) continue;
      }
      if (evs[i].events & EPOLLOUT) {
        process(c);
      }
    }
    if (!w->drain_started && drain_.load(std::memory_order_acquire)) {
      start_drain();
    }
    if (w->drain_started) {
      if (NowNanos() > w->drain_deadline_ns) {
        // Grace expired: force-close stragglers.
        std::vector<int> fds;
        for (auto& [fd, c] : w->conns) fds.push_back(fd);
        for (int fd : fds) CloseConn(w, w->conns[fd].get());
      }
      if (w->conns.empty()) break;
    }
  }
  if (w->id == 0 && listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

// --- signal plumbing --------------------------------------------------------

namespace {
std::atomic<Server*> g_drain_target{nullptr};

void DrainSignalHandler(int) {
  Server* s = g_drain_target.load(std::memory_order_acquire);
  if (s != nullptr) s->BeginDrain();
}
}  // namespace

void InstallDrainOnSignal(Server* server, int signo) {
  g_drain_target.store(server, std::memory_order_release);
  struct sigaction sa{};
  if (server != nullptr) {
    sa.sa_handler = DrainSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
  } else {
    sa.sa_handler = SIG_DFL;
  }
  ::sigaction(signo, &sa, nullptr);
}

}  // namespace net
}  // namespace fptree
