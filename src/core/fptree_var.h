// Copyright (c) FPTree reproduction authors.
//
// FPTreeVar: the variable-size-key FPTree (paper §5 "Variable-size keys"
// and Appendix C). Leaves store persistent pointers to out-of-line KeyBlobs
// — so every in-leaf key probe dereferences into SCM (a cache miss), which
// is why fingerprints pay off most for string keys (§4.2). Inserting or
// deleting a key allocates/deallocates its blob through the leak-safe
// allocator protocol; updates alias the blob pointer into the new slot and
// make both changes visible with one p-atomic bitmap store (Alg. 16).
//
// Crash-induced key leaks (alloc before bitmap-commit, or bitmap-commit
// before dealloc) are swept during recovery: a global mark phase collects
// every blob referenced by a VALID slot, then unreferenced allocations are
// reclaimed — a strengthened version of Alg. 17's per-leaf check that also
// handles blobs aliased across a split.
//
// Substitution note (DESIGN.md): the paper keeps virtual pointers to keys
// in the DRAM inner nodes; we keep DRAM *copies* of the separator keys
// (std::string), which removes a dereference on inner comparisons but
// preserves the leaf-probe cost structure the paper analyzes.

#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "core/inner_index.h"
#include "core/tree_stats.h"
#include "core/var_key.h"
#include "scm/alloc.h"
#include "scm/crash.h"
#include "scm/pmem.h"
#include "scm/pool.h"
#include "util/hash.h"
#include "util/simd.h"
#include "util/timer.h"

namespace fptree {
namespace core {

/// \brief Single-threaded variable-size-key FPTree. Default sizes per paper
/// Table 1 (FPTreeVar: inner 2048, leaf 56).
///
/// With kUseFingerprints = false this is the paper's PTreeVar: same
/// selective persistence and unsorted leaves, but every valid slot is
/// probed — i.e. every probe dereferences a key blob in SCM, which is the
/// cost fingerprints remove (§4.2).
template <typename Value = uint64_t, size_t kLeafCap = 56,
          size_t kInnerCap = 2048, bool kUseFingerprints = true>
class FPTreeVar {
  static_assert(kLeafCap >= 2 && kLeafCap <= 64);
  static_assert(std::is_trivially_copyable_v<Value>);

 public:
  struct KV {
    scm::PPtr<KeyBlob> pkey;
    Value value;
  };

  struct alignas(64) LeafNode {
    uint8_t fingerprints[kLeafCap];
    uint64_t bitmap;
    scm::PPtr<LeafNode> next;
    uint64_t lock_word;
    KV kv[kLeafCap];

    bool IsFull() const {
      return static_cast<size_t>(__builtin_popcountll(bitmap)) == kLeafCap;
    }
    bool TestBit(size_t i) const { return (bitmap >> i) & 1; }
    int FindFirstZero() const {
      uint64_t inv = ~bitmap;
      if constexpr (kLeafCap < 64) inv &= (uint64_t{1} << kLeafCap) - 1;
      return inv == 0 ? -1 : __builtin_ctzll(inv);
    }
  };

  struct alignas(64) SplitLog {
    scm::PPtr<LeafNode> p_current;
    scm::PPtr<LeafNode> p_new;
  };

  struct alignas(64) DeleteLog {
    scm::PPtr<LeafNode> p_current;
    scm::PPtr<LeafNode> p_prev;
  };

  struct alignas(64) PRoot {
    static constexpr uint64_t kMagic = 0xF97EE000000006ULL;

    uint64_t magic;
    scm::PPtr<LeafNode> head;
    SplitLog split_log;
    DeleteLog delete_log;
    scm::PPtr<KeyBlob> gc_slot;  ///< scratch for leak-sweep deallocations
  };

  explicit FPTreeVar(scm::Pool* pool) : pool_(pool) { AttachOrInit(); }

  FPTreeVar(const FPTreeVar&) = delete;
  FPTreeVar& operator=(const FPTreeVar&) = delete;

  bool Find(std::string_view key, Value* value) {
    ++stats_.finds;
    Path path;
    LeafNode* leaf = FindLeaf(key, &path);
    int slot = FindInLeaf(leaf, key);
    if (slot < 0) return false;
    *value = leaf->kv[slot].value;
    return true;
  }

  /// Paper Alg. 14 (single-threaded): allocate the key blob leak-safely,
  /// then publish value + fingerprint via the bitmap.
  bool Insert(std::string_view key, const Value& value) {
    bool inserted = false;
    return InsertChecked(key, value, &inserted).ok() && inserted;
  }

  /// Status-propagating insert (DESIGN.md §12): ResourceExhausted means the
  /// pool could not hold the split leaf or the key blob; the op was not
  /// applied and the tree is untouched.
  Status InsertChecked(std::string_view key, const Value& value,
                       bool* inserted) {
    *inserted = false;
    Path path;
    LeafNode* leaf = FindLeaf(key, &path);
    if (FindInLeaf(leaf, key) >= 0) return Status::OK();
    LeafNode* target = leaf;
    if (leaf->IsFull()) {
      std::string split_key;
      LeafNode* new_leaf = SplitLeaf(leaf, &split_key);
      if (new_leaf == nullptr) return NoSpace();
      if (key > split_key) target = new_leaf;
      bool staged = InsertKV(target, key, value);
      inner_.InsertSplit(path, split_key, new_leaf);
      if (!staged) return NoSpace();
    } else {
      if (!InsertKV(target, key, value)) return NoSpace();
    }
    ++size_;
    *inserted = true;
    return Status::OK();
  }

  /// Paper Alg. 16: the new slot aliases the existing key blob; one bitmap
  /// store publishes insert+delete; then the old slot's pointer is reset so
  /// each blob is referenced exactly once.
  bool Update(std::string_view key, const Value& value) {
    bool updated = false;
    return UpdateChecked(key, value, &updated).ok() && updated;
  }

  /// Status-propagating update: on ResourceExhausted the old value remains
  /// intact and readable.
  Status UpdateChecked(std::string_view key, const Value& value,
                       bool* updated) {
    *updated = false;
    Path path;
    LeafNode* leaf = FindLeaf(key, &path);
    int prev_slot = FindInLeaf(leaf, key);
    if (prev_slot < 0) return Status::OK();
    if (leaf->IsFull()) {
      std::string split_key;
      LeafNode* new_leaf = SplitLeaf(leaf, &split_key);
      if (new_leaf == nullptr) return NoSpace();
      inner_.InsertSplit(path, split_key, new_leaf);
      if (key > split_key) leaf = new_leaf;
      prev_slot = FindInLeaf(leaf, key);
      assert(prev_slot >= 0);
    }
    int slot = leaf->FindFirstZero();
    assert(slot >= 0);
    scm::pmem::StorePPtr(&leaf->kv[slot].pkey, leaf->kv[prev_slot].pkey);
    scm::pmem::Store(&leaf->kv[slot].value, value);
    scm::pmem::Store(&leaf->fingerprints[slot], Fingerprint(key));
    scm::pmem::Persist(&leaf->kv[slot]);
    scm::pmem::Persist(&leaf->fingerprints[slot], 1);
    SCM_CRASH_POINT("fptreevar.update.before_bitmap");
    uint64_t bmp = leaf->bitmap;
    bmp &= ~(uint64_t{1} << prev_slot);
    bmp |= uint64_t{1} << slot;
    scm::pmem::StorePersist(&leaf->bitmap, bmp);
    SCM_CRASH_POINT("fptreevar.update.aliased");
    scm::pmem::StorePPtrPersist(&leaf->kv[prev_slot].pkey,
                                scm::PPtr<KeyBlob>::Null());
    SCM_CRASH_POINT("fptreevar.update.old_reset");
    *updated = true;
    return Status::OK();
  }

  /// Insert-or-update in one descent (index API v3): one
  /// FindLeaf/FindInLeaf probe picks the Alg. 14 insert tail or the Alg. 16
  /// aliasing update tail. Returns true when newly inserted.
  bool Upsert(std::string_view key, const Value& value) {
    bool inserted = false;
    UpsertChecked(key, value, &inserted);
    return inserted;
  }

  /// Status-propagating upsert; on ResourceExhausted nothing was applied.
  Status UpsertChecked(std::string_view key, const Value& value,
                       bool* inserted) {
    *inserted = false;
    Path path;
    LeafNode* leaf = FindLeaf(key, &path);
    int prev_slot = FindInLeaf(leaf, key);

    if (prev_slot < 0) {  // Alg. 14 insert tail
      LeafNode* target = leaf;
      if (leaf->IsFull()) {
        std::string split_key;
        LeafNode* new_leaf = SplitLeaf(leaf, &split_key);
        if (new_leaf == nullptr) return NoSpace();
        if (key > split_key) target = new_leaf;
        bool staged = InsertKV(target, key, value);
        inner_.InsertSplit(path, split_key, new_leaf);
        if (!staged) return NoSpace();
      } else {
        if (!InsertKV(target, key, value)) return NoSpace();
      }
      ++size_;
      *inserted = true;
      return Status::OK();
    }

    // Alg. 16 update tail: alias the existing key blob into the new slot.
    if (leaf->IsFull()) {
      std::string split_key;
      LeafNode* new_leaf = SplitLeaf(leaf, &split_key);
      if (new_leaf == nullptr) return NoSpace();
      inner_.InsertSplit(path, split_key, new_leaf);
      if (key > split_key) leaf = new_leaf;
      prev_slot = FindInLeaf(leaf, key);
      assert(prev_slot >= 0);
    }
    int slot = leaf->FindFirstZero();
    assert(slot >= 0);
    scm::pmem::StorePPtr(&leaf->kv[slot].pkey, leaf->kv[prev_slot].pkey);
    scm::pmem::Store(&leaf->kv[slot].value, value);
    scm::pmem::Store(&leaf->fingerprints[slot], Fingerprint(key));
    scm::pmem::Persist(&leaf->kv[slot]);
    scm::pmem::Persist(&leaf->fingerprints[slot], 1);
    SCM_CRASH_POINT("fptreevar.update.before_bitmap");
    uint64_t bmp = leaf->bitmap;
    bmp &= ~(uint64_t{1} << prev_slot);
    bmp |= uint64_t{1} << slot;
    scm::pmem::StorePersist(&leaf->bitmap, bmp);
    SCM_CRASH_POINT("fptreevar.update.aliased");
    scm::pmem::StorePPtrPersist(&leaf->kv[prev_slot].pkey,
                                scm::PPtr<KeyBlob>::Null());
    SCM_CRASH_POINT("fptreevar.update.old_reset");
    return Status::OK();
  }

  /// Paper Alg. 15: bitmap-clear then blob deallocation.
  bool Erase(std::string_view key) {
    Path path;
    LeafNode* prev = nullptr;
    LeafNode* leaf = FindLeafAndPrev(key, &path, &prev);
    int slot = FindInLeaf(leaf, key);
    if (slot < 0) return false;
    bool last_in_leaf = __builtin_popcountll(leaf->bitmap) == 1;
    bool only_leaf = proot_->head.get() == leaf && leaf->next.IsNull();
    scm::pmem::StorePersist(&leaf->bitmap,
                            leaf->bitmap & ~(uint64_t{1} << slot));
    SCM_CRASH_POINT("fptreevar.erase.after_bitmap");
    pool_->allocator()->Deallocate(&leaf->kv[slot].pkey);
    SCM_CRASH_POINT("fptreevar.erase.key_freed");
    if (last_in_leaf && !only_leaf) {
      DeleteLeaf(leaf, prev);
      inner_.RemoveLeaf(path);
    }
    --size_;
    return true;
  }

  void RangeScan(std::string_view start, size_t limit,
                 std::vector<std::pair<std::string, Value>>* out) {
    out->clear();
    Path path;
    LeafNode* leaf = FindLeaf(start, &path);
    std::vector<std::pair<std::string, Value>> in_leaf;
    while (leaf != nullptr && out->size() < limit) {
      in_leaf.clear();
      scm::ReadScm(leaf, sizeof(leaf->fingerprints) + sizeof(leaf->bitmap));
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (!leaf->TestBit(i)) continue;
        const KeyBlob* blob = leaf->kv[i].pkey.get();
        if (CompareBlob(blob, start) >= 0) {
          in_leaf.emplace_back(std::string(blob->view()),
                               leaf->kv[i].value);
        }
      }
      std::sort(in_leaf.begin(), in_leaf.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (auto& p : in_leaf) {
        if (out->size() >= limit) break;
        out->push_back(std::move(p));
      }
      leaf = leaf->next.get();
    }
  }

  /// Keys per staged descent group in MultiGet (batch pipeline, DESIGN.md
  /// §11). Bounds the stack footprint of the staging arrays.
  static constexpr size_t kBatchChunk = 64;

  /// Batched point lookups with interleaved prefetched descents. Results
  /// are bit-identical to a loop of Find(): resolution runs through the
  /// unchanged FindInLeaf probe. The staging rounds only pre-install the
  /// modeled-cache tags (and issue the hardware prefetches) for the leaf
  /// header lines, the candidate KV slots, and their out-of-line key
  /// blobs, so the resolving probes overlap their SCM misses instead of
  /// serializing them. values[i] is untouched when found[i] == 0.
  void MultiGet(const std::string_view* keys, size_t n, Value* values,
                uint8_t* found) {
    LeafNode* leaves[kBatchChunk];
    for (size_t base = 0; base < n; base += kBatchChunk) {
      size_t m = std::min(kBatchChunk, n - base);
      scm::ReadBatch rb;
      for (size_t i = 0; i < m; ++i) {
        Path path;
        leaves[i] = FindLeaf(keys[base + i], &path);
        if (leaves[i] != nullptr) {
          rb.Add(leaves[i],
                 sizeof(leaves[i]->fingerprints) + sizeof(leaves[i]->bitmap));
        }
      }
      rb.Issue();
#if !defined(FPTREE_NO_PREFETCH)
      // Second staging round: the fingerprint filter is now modeled-cache
      // resident, so compute each key's candidate set and stage the KV
      // slots plus the key blobs they point to (the var-key cache miss of
      // §4.2 — the dominant cost fingerprints leave behind).
      for (size_t i = 0; i < m; ++i) {
        LeafNode* leaf = leaves[i];
        if (leaf == nullptr) continue;
        uint64_t cand = leaf->bitmap;
        if constexpr (kUseFingerprints) {
          cand &= simd::MatchByte(leaf->fingerprints, kLeafCap,
                                  Fingerprint(keys[base + i]));
        }
        while (cand != 0) {
          size_t s = static_cast<size_t>(__builtin_ctzll(cand));
          cand &= cand - 1;
          rb.Add(&leaf->kv[s], sizeof(KV));
          const KeyBlob* blob = leaf->kv[s].pkey.get();
          if (blob != nullptr) {
            uint64_t len = scm::pmem::Load(&blob->len);
            if (len <= kMaxVarKeyLen) rb.Add(blob, sizeof(uint64_t) + len);
          }
        }
      }
      rb.Issue();
#endif
      for (size_t i = 0; i < m; ++i) {
        ++stats_.finds;
        int slot = FindInLeaf(leaves[i], keys[base + i]);
        if (slot >= 0) values[base + i] = leaves[i]->kv[slot].value;
        found[base + i] = slot >= 0 ? 1 : 0;
      }
    }
  }

  /// Batched Insert with group persistence: runs of consecutive keys that
  /// land in the same leaf share one flush fence and one bitmap publish
  /// (see BatchWriter). inserted[i] (when non-null) gets 1 iff the key was
  /// newly inserted; semantics match a loop of Insert() exactly, including
  /// duplicate keys within the batch (first one wins).
  void MultiPut(const std::string_view* keys, const Value* values, size_t n,
                uint8_t* inserted) {
    BatchWriter w(this);
    for (size_t i = 0; i < n; ++i) {
      bool ok = w.Insert(keys[i], values[i]);
      if (inserted != nullptr) inserted[i] = ok ? 1 : 0;
    }
    w.Flush();
  }

  /// Batched Upsert; inserted[i] mirrors Upsert()'s return (1 = newly
  /// inserted). Duplicate keys within the batch behave last-wins, matching
  /// the loop oracle.
  void MultiUpsert(const std::string_view* keys, const Value* values,
                   size_t n, uint8_t* inserted) {
    BatchWriter w(this);
    for (size_t i = 0; i < n; ++i) {
      bool ok = w.Upsert(keys[i], values[i]);
      if (inserted != nullptr) inserted[i] = ok ? 1 : 0;
    }
    w.Flush();
  }

  size_t Size() const { return size_; }
  ~FPTreeVar() { FlushTreeStats(stats_); }

  TreeOpStats& stats() { return stats_; }
  const TreeOpStats& stats() const { return stats_; }
  uint64_t ScmBytes() const { return pool_->allocator()->heap_used_bytes(); }
  uint64_t last_recovery_nanos() const { return recovery_nanos_; }

  uint64_t DramBytes() const {
    return inner_.MemoryBytes() + inner_key_bytes_;
  }

  bool CheckConsistency(std::string* why) const {
    LeafNode* leaf = proot_->head.get();
    std::string prev_max;
    bool first = true;
    size_t total = 0;
    while (leaf != nullptr) {
      std::string mn, mx;
      size_t cnt = 0;
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (!leaf->TestBit(i)) continue;
        const KeyBlob* blob = leaf->kv[i].pkey.get();
        if (blob == nullptr) {
          *why = "valid slot with null key pointer";
          return false;
        }
        std::string k(blob->view());
        if (cnt == 0 || k < mn) mn = k;
        if (cnt == 0 || k > mx) mx = k;
        if (kUseFingerprints &&
            leaf->fingerprints[i] != Fingerprint(blob->view())) {
          *why = "stale fingerprint";
          return false;
        }
        ++cnt;
      }
      if (cnt > 0) {
        if (!first && mn <= prev_max) {
          *why = "leaf list out of order";
          return false;
        }
        prev_max = mx;
        first = false;
      }
      total += cnt;
      leaf = leaf->next.get();
    }
    if (total != size_) {
      *why = "size mismatch";
      return false;
    }
    return true;
  }

  /// Leak check: every allocated block is the root, a leaf, or a blob
  /// referenced by exactly one valid slot.
  bool CheckNoLeaks(std::string* why) const {
    std::unordered_set<uint64_t> reachable;
    reachable.insert(pool_->root().offset);
    for (LeafNode* leaf = proot_->head.get(); leaf != nullptr;
         leaf = leaf->next.get()) {
      reachable.insert(pool_->ToPPtr(leaf).offset);
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (!leaf->TestBit(i)) continue;
        if (!reachable.insert(leaf->kv[i].pkey.offset).second) {
          *why = "blob referenced twice";
          return false;
        }
      }
    }
    for (uint64_t off : pool_->allocator()->AllocatedPayloadOffsets()) {
      if (reachable.count(off) == 0) {
        *why = "leaked block at offset " + std::to_string(off);
        return false;
      }
    }
    return true;
  }

  /// Full invariant sweep (DESIGN.md §8): structural consistency, leaf-list
  /// vs. inner-index routing agreement, and the key-blob leak audit.
  bool CheckInvariants(std::string* why) {
    if (!CheckConsistency(why)) return false;
    for (LeafNode* leaf = proot_->head.get(); leaf != nullptr;
         leaf = leaf->next.get()) {
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (!leaf->TestBit(i)) continue;
        Path path;
        if (FindLeaf(leaf->kv[i].pkey.get()->view(), &path) != leaf) {
          *why = "inner index routes key to the wrong leaf";
          return false;
        }
      }
    }
    return CheckNoLeaks(why);
  }

 private:
  using Inner = InnerIndex<std::string, kInnerCap>;
  using Path = typename Inner::Path;

  LeafNode* FindLeaf(std::string_view key, Path* path) {
    return static_cast<LeafNode*>(inner_.FindLeaf(std::string(key), path));
  }

  LeafNode* FindLeafAndPrev(std::string_view key, Path* path,
                            LeafNode** prev) {
    LeafNode* leaf = FindLeaf(key, path);
    *prev = nullptr;
    for (int level = static_cast<int>(path->depth) - 1; level >= 0; --level) {
      typename Inner::Node* n = path->nodes[level];
      uint32_t slot = path->slots[level];
      if (slot > 0) {
        void* sub = n->children[slot - 1];
        bool leaf_level = n->leaf_children;
        while (!leaf_level) {
          typename Inner::Node* in = static_cast<typename Inner::Node*>(sub);
          sub = in->children[in->n_keys];
          leaf_level = in->leaf_children;
        }
        *prev = static_cast<LeafNode*>(sub);
        break;
      }
    }
    return leaf;
  }

  /// Fingerprint-filtered probe; each surviving probe dereferences the key
  /// blob in SCM (the var-key cache miss of §4.2). The fingerprint filter is
  /// evaluated byte-parallel over the whole line (simd::MatchByte) and ANDed
  /// with the bitmap; for PTreeVar (kUseFingerprints = false) the candidate
  /// set is the bitmap alone. Either way the surviving slots are probed in
  /// the same ascending order as the scalar loop, so probe counts match.
  int FindInLeaf(LeafNode* leaf, std::string_view key) {
    if (leaf == nullptr) return -1;
    scm::ReadScm(leaf, sizeof(leaf->fingerprints) + sizeof(leaf->bitmap));
    uint64_t candidates = leaf->bitmap;
    if constexpr (kUseFingerprints) {
      candidates &= simd::MatchByte(leaf->fingerprints, kLeafCap,
                                    Fingerprint(key));
    }
    while (candidates != 0) {
      size_t i = static_cast<size_t>(__builtin_ctzll(candidates));
      candidates &= candidates - 1;
      ++stats_.key_probes;
      scm::ReadScm(&leaf->kv[i], sizeof(KV));
      const KeyBlob* blob = leaf->kv[i].pkey.get();
      if (blob != nullptr && CompareBlob(blob, key) == 0) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  static Status NoSpace() {
    return Status::ResourceExhausted(
        "fptree-var: pool out of space (allocation failed)");
  }

  /// Returns false when the key-blob allocation fails; in that case nothing
  /// was published (no bitmap flip, no slot holding a null blob pointer).
  bool InsertKV(LeafNode* leaf, std::string_view key, const Value& value) {
    int slot = leaf->FindFirstZero();
    assert(slot >= 0);
    Status s = AllocateKeyBlob(pool_, &leaf->kv[slot].pkey, key);
    if (!s.ok()) return false;
    SCM_CRASH_POINT("fptreevar.insert.key_allocated");
    scm::pmem::Store(&leaf->kv[slot].value, value);
    scm::pmem::Store(&leaf->fingerprints[slot], Fingerprint(key));
    scm::pmem::Persist(&leaf->kv[slot]);
    scm::pmem::Persist(&leaf->fingerprints[slot], 1);
    SCM_CRASH_POINT("fptreevar.insert.before_bitmap");
    scm::pmem::StorePersist(&leaf->bitmap,
                            leaf->bitmap | (uint64_t{1} << slot));
    SCM_CRASH_POINT("fptreevar.insert.after_bitmap");
    return true;
  }

  /// \brief Open write run used by MultiPut/MultiUpsert (group persistence,
  /// DESIGN.md §11), var-key variant of FPTree::BatchWriter.
  ///
  /// Consecutive batch ops that land in the same leaf are staged into free
  /// slots and published with ONE PersistBatch commit (covering every
  /// staged KV + fingerprint range) followed by ONE p-atomic bitmap store —
  /// where the looped path fences per operation. The bitmap flip stays the
  /// sole publish point, so a crash leaves exactly the already-flushed runs
  /// durable: runs are contiguous in batch order, hence the durable set is
  /// always a strict prefix of the input and no leaf is ever torn.
  ///
  /// Var-key specifics: staged inserts allocate their key blobs up front
  /// (the allocator's own persistence protocol is unchanged; a crash before
  /// the run publishes leaves blobs referenced only by invalid slots, which
  /// the recovery leak sweep reclaims — the same window as single-op
  /// Alg. 14). Staged updates alias the previous slot's blob (Alg. 16) and
  /// defer the old-pointer reset until after the run's bitmap publish; the
  /// resets for the whole run then share one more batched fence. A crash
  /// between publish and reset leaves stale pointers in invalid slots,
  /// which the recovery sweep nulls — the same window as the single-op
  /// update tail.
  ///
  /// A run breaks (Flush) when: the next key routes to a different leaf,
  /// the same key appears again in the batch (Upsert republishes so
  /// last-wins holds), or the leaf has no free slot left (the op falls back
  /// to the single-op path, which may split).
  class BatchWriter {
   public:
    explicit BatchWriter(FPTreeVar* t) : t_(t) {}
    ~BatchWriter() { Flush(); }

    bool Insert(std::string_view key, const Value& value) {
      Path path;
      LeafNode* leaf = t_->FindLeaf(key, &path);
      if (leaf != leaf_) Flush();
      if (PendingHas(key)) return false;  // duplicate within the batch
      if (t_->FindInLeaf(leaf, key) >= 0) return false;
      int slot = FreeSlotIn(leaf);
      if (slot < 0) {  // full: publish the run, take the split path
        Flush();
        return t_->Insert(key, value);
      }
      if (!StageInsert(leaf, slot, key, value)) {
        Flush();  // blob alloc failed: nothing staged for this op
        return t_->Insert(key, value);
      }
      ++t_->size_;
      return true;
    }

    bool Upsert(std::string_view key, const Value& value) {
      for (;;) {
        Path path;
        LeafNode* leaf = t_->FindLeaf(key, &path);
        if (leaf != leaf_) Flush();
        if (PendingHas(key)) {
          // Same key staged earlier in this run: publish it, then re-run
          // this op as an update of it (last-wins, like the loop oracle).
          Flush();
          continue;
        }
        int prev = t_->FindInLeaf(leaf, key);
        int slot = FreeSlotIn(leaf);
        if (slot < 0) {
          Flush();
          return t_->Upsert(key, value);
        }
        if (prev >= 0) {
          StageUpdate(leaf, slot, prev, key, value);
          return false;
        }
        if (!StageInsert(leaf, slot, key, value)) {
          Flush();
          return t_->Upsert(key, value);
        }
        ++t_->size_;
        return true;
      }
    }

    /// Publishes the open run: one batched fence for all staged ranges,
    /// the p-atomic bitmap flip, then the old-pointer resets for staged
    /// updates under one more batched fence.
    void Flush() {
      if (leaf_ == nullptr) return;
      pb_.Commit();
      SCM_CRASH_POINT("fptreevar.multiput.before_bitmap");
      scm::pmem::StorePersist(&leaf_->bitmap,
                              (leaf_->bitmap & ~clear_) | set_);
      SCM_CRASH_POINT("fptreevar.multiput.after_bitmap");
      for (size_t i = 0; i < old_n_; ++i) {
        scm::pmem::StorePPtr(&leaf_->kv[old_slots_[i]].pkey,
                             scm::PPtr<KeyBlob>::Null());
        pb_.Add(&leaf_->kv[old_slots_[i]].pkey);
      }
      pb_.Commit();
      SCM_CRASH_POINT("fptreevar.multiput.old_reset");
      leaf_ = nullptr;
      set_ = 0;
      clear_ = 0;
      pend_n_ = 0;
      old_n_ = 0;
    }

   private:
    bool PendingHas(std::string_view key) const {
      for (size_t i = 0; i < pend_n_; ++i) {
        if (pend_keys_[i] == key) return true;
      }
      return false;
    }

    /// First slot free in both the durable bitmap and the staged set; -1
    /// when the leaf (plus this run's stages) is full.
    int FreeSlotIn(LeafNode* leaf) const {
      uint64_t used = leaf->bitmap | set_;
      if constexpr (kLeafCap < 64) used |= ~((uint64_t{1} << kLeafCap) - 1);
      return used == ~uint64_t{0} ? -1 : __builtin_ctzll(~used);
    }

    /// Returns false (staging nothing) when the key blob cannot be
    /// allocated; the caller falls back to the single-op path, which
    /// reports the exhaustion.
    bool StageInsert(LeafNode* leaf, int slot, std::string_view key,
                     const Value& value) {
      Status s = AllocateKeyBlob(t_->pool_, &leaf->kv[slot].pkey, key);
      if (!s.ok()) return false;
      SCM_CRASH_POINT("fptreevar.insert.key_allocated");
      scm::pmem::Store(&leaf->kv[slot].value, value);
      scm::pmem::Store(&leaf->fingerprints[slot], Fingerprint(key));
      Stage(leaf, slot, key);
      return true;
    }

    void StageUpdate(LeafNode* leaf, int slot, int prev, std::string_view key,
                     const Value& value) {
      scm::pmem::StorePPtr(&leaf->kv[slot].pkey, leaf->kv[prev].pkey);
      scm::pmem::Store(&leaf->kv[slot].value, value);
      scm::pmem::Store(&leaf->fingerprints[slot], Fingerprint(key));
      Stage(leaf, slot, key);
      clear_ |= uint64_t{1} << prev;
      old_slots_[old_n_++] = static_cast<uint8_t>(prev);
    }

    void Stage(LeafNode* leaf, int slot, std::string_view key) {
      leaf_ = leaf;
      pb_.Add(&leaf->kv[slot]);
      pb_.Add(&leaf->fingerprints[slot], 1);
      set_ |= uint64_t{1} << slot;
      pend_keys_[pend_n_++] = key;
    }

    FPTreeVar* t_;
    LeafNode* leaf_ = nullptr;
    uint64_t set_ = 0;    ///< staged slots, published with the next Flush
    uint64_t clear_ = 0;  ///< previous slots of staged updates
    // Views into the caller's batch; they outlive the writer by contract.
    std::string_view pend_keys_[kLeafCap];
    size_t pend_n_ = 0;
    uint8_t old_slots_[kLeafCap];  ///< slots needing post-publish resets
    size_t old_n_ = 0;
    scm::pmem::PersistBatch pb_;
  };

  /// Returns nullptr when the new leaf cannot be allocated; the split log
  /// is reset so recovery sees no in-flight split and the tree is unchanged.
  LeafNode* SplitLeaf(LeafNode* leaf, std::string* split_key) {
    SplitLog* log = &proot_->split_log;
    scm::pmem::StorePPtrPersist(&log->p_current, pool_->ToPPtr(leaf));
    SCM_CRASH_POINT("fptreevar.split.logged");
    Status s = pool_->allocator()->Allocate(&log->p_new, sizeof(LeafNode));
    if (!s.ok()) {
      ResetSplitLog(log);
      return nullptr;
    }
    ++stats_.leaf_splits;
    SCM_CRASH_POINT("fptreevar.split.allocated");
    LeafNode* new_leaf = log->p_new.get();
    *split_key = FinishSplitFromCopy(log);
    return new_leaf;
  }

  std::string FinishSplitFromCopy(SplitLog* log) {
    LeafNode* leaf = log->p_current.get();
    LeafNode* new_leaf = log->p_new.get();
    scm::pmem::StoreBytes(new_leaf, leaf, sizeof(LeafNode));
    scm::pmem::Persist(new_leaf, sizeof(LeafNode));
    SCM_CRASH_POINT("fptreevar.split.copied");
    std::string sk = ComputeSplitKey(leaf);
    uint64_t upper = 0;
    for (size_t i = 0; i < kLeafCap; ++i) {
      if (leaf->TestBit(i) &&
          CompareBlob(leaf->kv[i].pkey.get(), sk) > 0) {
        upper |= uint64_t{1} << i;
      }
    }
    scm::pmem::StorePersist(&new_leaf->bitmap, upper);
    SCM_CRASH_POINT("fptreevar.split.new_bitmap");
    scm::pmem::StorePersist(&leaf->bitmap, leaf->bitmap & ~upper);
    SCM_CRASH_POINT("fptreevar.split.old_bitmap");
    scm::pmem::StorePPtrPersist(&leaf->next, log->p_new);
    SCM_CRASH_POINT("fptreevar.split.linked");
    ResetSplitLog(log);
    inner_key_bytes_ += sk.size();
    return sk;
  }

  void FinishSplitFromInverse(SplitLog* log) {
    LeafNode* leaf = log->p_current.get();
    LeafNode* new_leaf = log->p_new.get();
    uint64_t mask =
        kLeafCap == 64 ? ~uint64_t{0} : ((uint64_t{1} << kLeafCap) - 1);
    scm::pmem::StorePersist(&leaf->bitmap, ~new_leaf->bitmap & mask);
    scm::pmem::StorePPtrPersist(&leaf->next, log->p_new);
    ResetSplitLog(log);
  }

  void ResetSplitLog(SplitLog* log) {
    scm::pmem::StorePPtr(&log->p_current, scm::PPtr<LeafNode>::Null());
    scm::pmem::StorePPtr(&log->p_new, scm::PPtr<LeafNode>::Null());
    scm::pmem::Persist(log, sizeof(*log));
  }

  std::string ComputeSplitKey(LeafNode* leaf) {
    std::vector<std::string> keys;
    keys.reserve(kLeafCap);
    for (size_t i = 0; i < kLeafCap; ++i) {
      if (leaf->TestBit(i)) {
        keys.emplace_back(leaf->kv[i].pkey.get()->view());
      }
    }
    size_t h = keys.size() / 2;
    std::nth_element(keys.begin(), keys.begin() + (h - 1), keys.end());
    return keys[h - 1];
  }

  void DeleteLeaf(LeafNode* leaf, LeafNode* prev) {
    ++stats_.leaf_deletes;
    DeleteLog* log = &proot_->delete_log;
    scm::pmem::StorePPtrPersist(&log->p_current, pool_->ToPPtr(leaf));
    SCM_CRASH_POINT("fptreevar.delete.logged");
    if (proot_->head.get() == leaf) {
      scm::pmem::StorePPtrPersist(&proot_->head, leaf->next);
    } else {
      assert(prev != nullptr);
      scm::pmem::StorePPtrPersist(&log->p_prev, pool_->ToPPtr(prev));
      scm::pmem::StorePPtrPersist(&prev->next, leaf->next);
      SCM_CRASH_POINT("fptreevar.delete.unlinked");
    }
    scm::pmem::StorePersist(&leaf->bitmap, uint64_t{0});
    pool_->allocator()->Deallocate(&log->p_current);
    ResetDeleteLog(log);
  }

  void ResetDeleteLog(DeleteLog* log) {
    scm::pmem::StorePPtr(&log->p_current, scm::PPtr<LeafNode>::Null());
    scm::pmem::StorePPtr(&log->p_prev, scm::PPtr<LeafNode>::Null());
    scm::pmem::Persist(log, sizeof(*log));
  }

  // --- Initialization & recovery -------------------------------------------

  void AttachOrInit() {
    uint64_t t0 = NowNanos();
    if (pool_->root().IsNull()) {
      Status s =
          pool_->allocator()->Allocate(&pool_->header()->root, sizeof(PRoot));
      assert(s.ok());
      (void)s;
    }
    proot_ = static_cast<PRoot*>(pool_->root().get());
    if (proot_->magic != PRoot::kMagic) {
      PRoot zero{};
      zero.magic = PRoot::kMagic;
      scm::pmem::StoreBytes(proot_, &zero, sizeof(zero));
      scm::pmem::Persist(proot_, sizeof(*proot_));
    }
    RecoverSplit();
    RecoverDelete();
    if (!proot_->gc_slot.IsNull()) {
      pool_->allocator()->Deallocate(&proot_->gc_slot);
    }
    if (proot_->head.IsNull()) {
      Status s =
          pool_->allocator()->Allocate(&proot_->head, sizeof(LeafNode));
      assert(s.ok());
      (void)s;
      LeafNode* first = proot_->head.get();
      scm::pmem::StorePersist(&first->bitmap, uint64_t{0});
      scm::pmem::StorePPtrPersist(&first->next, scm::PPtr<LeafNode>::Null());
      for (size_t i = 0; i < kLeafCap; ++i) {
        scm::pmem::StorePPtr(&first->kv[i].pkey, scm::PPtr<KeyBlob>::Null());
      }
      scm::pmem::Persist(first, sizeof(*first));
    }
    RebuildTransientStateAndSweepLeaks();
    if (!pool_->root_initialized()) pool_->SetRootInitialized();
    recovery_nanos_ = NowNanos() - t0;
  }

  void RecoverSplit() {
    SplitLog* log = &proot_->split_log;
    if (log->p_current.IsNull() || log->p_new.IsNull()) {
      ResetSplitLog(log);
      return;
    }
    if (log->p_current.get()->IsFull()) {
      FinishSplitFromCopy(log);
    } else {
      FinishSplitFromInverse(log);
    }
  }

  void RecoverDelete() {
    DeleteLog* log = &proot_->delete_log;
    if (log->p_current.IsNull()) {
      ResetDeleteLog(log);
      return;
    }
    LeafNode* leaf = log->p_current.get();
    LeafNode* head = proot_->head.get();
    if (!log->p_prev.IsNull()) {
      scm::pmem::StorePPtrPersist(&log->p_prev.get()->next, leaf->next);
      FinishDeleteRecovery(log);
    } else if (leaf == head) {
      scm::pmem::StorePPtrPersist(&proot_->head, leaf->next);
      FinishDeleteRecovery(log);
    } else if (leaf->next.get() == head) {
      FinishDeleteRecovery(log);
    } else {
      ResetDeleteLog(log);
    }
  }

  void FinishDeleteRecovery(DeleteLog* log) {
    scm::pmem::StorePersist(&log->p_current.get()->bitmap, uint64_t{0});
    pool_->allocator()->Deallocate(&log->p_current);
    ResetDeleteLog(log);
  }

  /// Rebuilds the inner nodes (paper Alg. 9/17) and sweeps leaked key
  /// blobs: mark every blob referenced by a valid slot, then reclaim
  /// allocations that are neither leaves nor marked blobs. This subsumes
  /// Alg. 17's per-leaf alias check and also handles blob copies left in
  /// invalid slots by leaf splits.
  void RebuildTransientStateAndSweepLeaks() {
    inner_.Clear();
    inner_key_bytes_ = 0;
    size_ = 0;
    std::unordered_set<uint64_t> used;
    used.insert(pool_->root().offset);
    std::vector<std::pair<std::string, void*>> live;
    LeafNode* head = proot_->head.get();
    for (LeafNode* leaf = head; leaf != nullptr; leaf = leaf->next.get()) {
      scm::pmem::StoreVolatile(&leaf->lock_word, uint64_t{0});
      used.insert(pool_->ToPPtr(leaf).offset);
      std::string max_key;
      size_t cnt = 0;
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (!leaf->TestBit(i)) continue;
        used.insert(leaf->kv[i].pkey.offset);
        std::string k(leaf->kv[i].pkey.get()->view());
        if (cnt == 0 || k > max_key) max_key = k;
        ++cnt;
      }
      size_ += cnt;
      if (cnt > 0) live.emplace_back(std::move(max_key), leaf);
    }
    // Sweep: anything allocated but unused is a crash leak (Alg. 17).
    for (uint64_t off : pool_->allocator()->AllocatedPayloadOffsets()) {
      if (used.count(off) != 0) continue;
      scm::pmem::StorePPtrPersist(&proot_->gc_slot,
                                  scm::PPtr<KeyBlob>{pool_->id(), off});
      pool_->allocator()->Deallocate(&proot_->gc_slot);
    }
    // Also reset stale pointers in invalid slots so future leak checks and
    // recoveries start clean.
    for (LeafNode* leaf = head; leaf != nullptr; leaf = leaf->next.get()) {
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (!leaf->TestBit(i) && !leaf->kv[i].pkey.IsNull()) {
          scm::pmem::StorePPtrPersist(&leaf->kv[i].pkey,
                                      scm::PPtr<KeyBlob>::Null());
        }
      }
    }
    if (!live.empty()) {
      std::sort(live.begin(), live.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (auto& [k, l] : live) inner_key_bytes_ += k.size();
      inner_.BulkBuild(live);
    } else if (head != nullptr) {
      inner_.InitSingleLeaf(head);
    }
  }

  scm::Pool* pool_;
  PRoot* proot_ = nullptr;
  Inner inner_;
  size_t size_ = 0;
  uint64_t inner_key_bytes_ = 0;
  uint64_t recovery_nanos_ = 0;
  TreeOpStats stats_;
};

}  // namespace core
}  // namespace fptree
