#include "scm/crash.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "scm/layout.h"

namespace fptree {
namespace scm {

namespace {

struct UndoRecord {
  char* addr;
  std::vector<unsigned char> old_bytes;
  std::thread::id tid;  ///< thread that issued the store (attribution)
};

struct SimState {
  std::mutex mu;
  std::deque<UndoRecord> pending;  // oldest first, all threads interleaved
  std::unordered_map<std::string, int> armed;  // name -> countdown
  bool recording = false;
  bool tear_mode = false;
  std::vector<std::string> visited;
  // Crash barrier: tripped marks the global power-loss instant; crash_tid
  // is the thread whose armed point fired (it unwinds via the original
  // CrashException and must not be re-frozen while doing so).
  bool barrier_mode = false;
  bool barrier_tripped = false;
  std::thread::id crash_tid;
};

SimState& State() {
  static SimState* s = new SimState();
  return *s;
}

}  // namespace

void CrashSim::Enable() {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  enabled_flag_.store(true, std::memory_order_relaxed);
}

void CrashSim::Disable() {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  enabled_flag_.store(false, std::memory_order_relaxed);
  s.pending.clear();
  s.armed.clear();
  s.recording = false;
  s.visited.clear();
  s.barrier_mode = false;
  s.barrier_tripped = false;
}

void CrashSim::LogStore(void* addr, size_t n) {
  if (n == 0) return;
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  if (s.barrier_tripped &&
      std::this_thread::get_id() != s.crash_tid) {
    // Sibling thread reached its next pmem store after the crash instant:
    // the store never executes. (The crashing thread itself is exempt so
    // stray stores during its unwind cannot throw from a destructor.)
    throw CrashException(kBarrierPoint);
  }
  UndoRecord rec;
  rec.addr = static_cast<char*>(addr);
  rec.old_bytes.resize(n);
  std::memcpy(rec.old_bytes.data(), addr, n);
  rec.tid = std::this_thread::get_id();
  s.pending.push_back(std::move(rec));
}

void CrashSim::NotifyPersist(const void* addr, size_t n) {
  if (n == 0) return;
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  // After the power-loss instant no cache line can reach the medium any
  // more. The crashing thread's persists are dead letters (it is already
  // unwinding and must not throw again); a sibling attempting a flush
  // freezes exactly as it would at a store — otherwise it could complete
  // and acknowledge an operation whose stores the crash then reverts.
  if (s.barrier_tripped) {
    if (std::this_thread::get_id() != s.crash_tid) {
      throw CrashException(kBarrierPoint);
    }
    return;
  }
  // Flushing is cache-line granular: everything within the covered lines
  // becomes durable.
  uintptr_t lo = reinterpret_cast<uintptr_t>(addr) & ~(kCacheLineSize - 1);
  uintptr_t hi = (reinterpret_cast<uintptr_t>(addr) + n + kCacheLineSize - 1) &
                 ~(kCacheLineSize - 1);
  std::deque<UndoRecord> kept;
  for (auto& rec : s.pending) {
    uintptr_t b = reinterpret_cast<uintptr_t>(rec.addr);
    uintptr_t e = b + rec.old_bytes.size();
    if (e <= lo || b >= hi) {
      kept.push_back(std::move(rec));  // untouched
      continue;
    }
    // Keep only the portions outside the flushed line range. A record can
    // straddle the range start and/or end; split accordingly.
    if (b < lo) {
      UndoRecord head;
      head.addr = rec.addr;
      head.old_bytes.assign(rec.old_bytes.begin(),
                            rec.old_bytes.begin() + (lo - b));
      head.tid = rec.tid;
      kept.push_back(std::move(head));
    }
    if (e > hi) {
      UndoRecord tail;
      tail.addr = rec.addr + (hi - b);
      tail.old_bytes.assign(rec.old_bytes.begin() + (hi - b),
                            rec.old_bytes.end());
      tail.tid = rec.tid;
      kept.push_back(std::move(tail));
    }
    // Fully covered portion is durable: dropped.
  }
  s.pending = std::move(kept);
}

void CrashSim::SimulateCrash() {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  bool tore = false;
  // Revert newest first so overlapping stores unwind to the original bytes.
  // The deque interleaves every thread's stores in issue order, so one
  // newest-first pass is the coherent machine-wide revert.
  for (auto it = s.pending.rbegin(); it != s.pending.rend(); ++it) {
    size_t n = it->old_bytes.size();
    size_t keep = 0;
    if (s.tear_mode && !tore && n > kPAtomicSize) {
      // Partial write: a durable prefix of whole 8-byte words survives.
      uintptr_t a = reinterpret_cast<uintptr_t>(it->addr);
      size_t first_word = (kPAtomicSize - (a % kPAtomicSize)) % kPAtomicSize;
      keep = first_word + ((n - first_word) / kPAtomicSize / 2) * kPAtomicSize;
      tore = true;
    }
    std::memcpy(it->addr + keep, it->old_bytes.data() + keep, n - keep);
  }
  s.pending.clear();
  s.armed.clear();
  s.barrier_tripped = false;
}

void CrashSim::CommitAll() {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  s.pending.clear();
}

size_t CrashSim::PendingRecords() {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  return s.pending.size();
}

size_t CrashSim::PendingThreads() {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  std::unordered_set<std::thread::id> tids;
  for (const auto& rec : s.pending) tids.insert(rec.tid);
  return tids.size();
}

size_t CrashSim::PendingRecordsForCurrentThread() {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  size_t n = 0;
  for (const auto& rec : s.pending) {
    if (rec.tid == std::this_thread::get_id()) ++n;
  }
  return n;
}

void CrashSim::SetTearMode(bool on) {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  s.tear_mode = on;
}

void CrashSim::ArmCrashPoint(const std::string& name, int countdown) {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  s.armed[name] = countdown;
}

void CrashSim::DisarmAll() {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  s.armed.clear();
}

void CrashSim::Point(const char* name) {
  auto& s = State();
  std::unique_lock<std::mutex> l(s.mu);
  if (s.barrier_tripped &&
      std::this_thread::get_id() != s.crash_tid) {
    l.unlock();
    throw CrashException(kBarrierPoint);
  }
  if (s.recording) s.visited.emplace_back(name);
  auto it = s.armed.find(name);
  if (it != s.armed.end()) {
    if (--it->second <= 0) {
      s.armed.erase(it);
      if (s.barrier_mode) {
        s.barrier_tripped = true;
        s.crash_tid = std::this_thread::get_id();
      }
      l.unlock();
      throw CrashException(name);
    }
  }
}

void CrashSim::StartRecordingPoints() {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  s.recording = true;
  s.visited.clear();
}

std::vector<std::string> CrashSim::StopRecordingPoints() {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  s.recording = false;
  return std::move(s.visited);
}

void CrashSim::SetCrashBarrier(bool on) {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  s.barrier_mode = on;
  if (!on) s.barrier_tripped = false;
}

bool CrashSim::BarrierTripped() {
  auto& s = State();
  std::lock_guard<std::mutex> l(s.mu);
  return s.barrier_tripped;
}

}  // namespace scm
}  // namespace fptree
