// Copyright (c) FPTree reproduction authors.
//
// PTree (paper §5): "a light version of the FPTree that implements only
// selective persistence and unsorted leaves. Contrary to the FPTree and the
// wBTree, it keeps keys and values in separate arrays for better data
// locality when linearly scanning the keys." No fingerprints, no leaf
// groups (leaves are allocated one-by-one through the persistent
// allocator). PTree is both a paper baseline and the natural
// "fingerprinting off" ablation for the FPTree.

#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/inner_index.h"
#include "core/tree_stats.h"
#include "scm/alloc.h"
#include "scm/crash.h"
#include "scm/pmem.h"
#include "scm/pool.h"
#include "util/timer.h"

namespace fptree {
namespace core {

/// \brief Single-threaded PTree. Default leaf size 32 (paper Table 1).
template <typename Value = uint64_t, size_t kLeafCap = 32,
          size_t kInnerCap = 4096>
class PTree {
  static_assert(kLeafCap >= 2 && kLeafCap <= 64);
  static_assert(std::is_trivially_copyable_v<Value>);

 public:
  using Key = uint64_t;

  /// Leaf layout: keys and values in separate arrays (better locality for
  /// the linear key scan), validity bitmap, persistent next pointer.
  struct alignas(64) LeafNode {
    uint64_t bitmap;
    scm::PPtr<LeafNode> next;
    uint64_t lock_word;
    uint64_t reserved[4];
    Key keys[kLeafCap];
    Value values[kLeafCap];

    bool IsFull() const {
      return static_cast<size_t>(__builtin_popcountll(bitmap)) == kLeafCap;
    }
    bool TestBit(size_t i) const { return (bitmap >> i) & 1; }
    int FindFirstZero() const {
      uint64_t inv = ~bitmap;
      if constexpr (kLeafCap < 64) inv &= (uint64_t{1} << kLeafCap) - 1;
      return inv == 0 ? -1 : __builtin_ctzll(inv);
    }
  };

  struct alignas(64) SplitLog {
    scm::PPtr<LeafNode> p_current;
    scm::PPtr<LeafNode> p_new;
  };

  struct alignas(64) DeleteLog {
    scm::PPtr<LeafNode> p_current;
    scm::PPtr<LeafNode> p_prev;
  };

  struct alignas(64) PRoot {
    static constexpr uint64_t kMagic = 0xF97EE000000002ULL;

    uint64_t magic;
    scm::PPtr<LeafNode> head;
    SplitLog split_log;
    DeleteLog delete_log;
  };

  explicit PTree(scm::Pool* pool) : pool_(pool) { AttachOrInit(); }

  PTree(const PTree&) = delete;
  PTree& operator=(const PTree&) = delete;

  bool Find(Key key, Value* value) {
    ++stats_.finds;
    Path path;
    LeafNode* leaf = FindLeaf(key, &path);
    int slot = FindInLeaf(leaf, key);
    if (slot < 0) return false;
    scm::ReadScm(&leaf->values[slot], sizeof(Value));
    *value = leaf->values[slot];
    return true;
  }

  bool Insert(Key key, const Value& value) {
    Path path;
    LeafNode* leaf = FindLeaf(key, &path);
    if (FindInLeaf(leaf, key) >= 0) return false;
    LeafNode* target = leaf;
    if (leaf->IsFull()) {
      Key split_key;
      LeafNode* new_leaf = SplitLeaf(leaf, &split_key);
      if (key > split_key) target = new_leaf;
      InsertKV(target, key, value);
      inner_.InsertSplit(path, split_key, new_leaf);
    } else {
      InsertKV(target, key, value);
    }
    ++size_;
    return true;
  }

  bool Update(Key key, const Value& value) {
    Path path;
    LeafNode* leaf = FindLeaf(key, &path);
    int prev_slot = FindInLeaf(leaf, key);
    if (prev_slot < 0) return false;
    if (leaf->IsFull()) {
      Key split_key;
      LeafNode* new_leaf = SplitLeaf(leaf, &split_key);
      inner_.InsertSplit(path, split_key, new_leaf);
      if (key > split_key) leaf = new_leaf;
      prev_slot = FindInLeaf(leaf, key);
      assert(prev_slot >= 0);
    }
    int slot = leaf->FindFirstZero();
    assert(slot >= 0);
    scm::pmem::Store(&leaf->keys[slot], key);
    scm::pmem::Store(&leaf->values[slot], value);
    scm::pmem::Persist(&leaf->keys[slot]);
    scm::pmem::Persist(&leaf->values[slot]);
    uint64_t bmp = leaf->bitmap;
    bmp &= ~(uint64_t{1} << prev_slot);
    bmp |= uint64_t{1} << slot;
    scm::pmem::StorePersist(&leaf->bitmap, bmp);
    return true;
  }

  bool Erase(Key key) {
    Path path;
    LeafNode* prev = nullptr;
    LeafNode* leaf = FindLeafAndPrev(key, &path, &prev);
    int slot = FindInLeaf(leaf, key);
    if (slot < 0) return false;
    bool last_in_leaf = __builtin_popcountll(leaf->bitmap) == 1;
    bool only_leaf = proot_->head.get() == leaf && leaf->next.IsNull();
    if (last_in_leaf && !only_leaf) {
      DeleteLeaf(leaf, prev);
      inner_.RemoveLeaf(path);
    } else {
      scm::pmem::StorePersist(&leaf->bitmap,
                              leaf->bitmap & ~(uint64_t{1} << slot));
    }
    --size_;
    return true;
  }

  void RangeScan(Key start, size_t limit,
                 std::vector<std::pair<Key, Value>>* out) {
    out->clear();
    Path path;
    LeafNode* leaf = FindLeaf(start, &path);
    std::vector<std::pair<Key, Value>> in_leaf;
    while (leaf != nullptr && out->size() < limit) {
      in_leaf.clear();
      scm::ReadScm(leaf->keys, sizeof(leaf->keys));
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (leaf->TestBit(i) && leaf->keys[i] >= start) {
          scm::ReadScm(&leaf->values[i], sizeof(Value));
          in_leaf.emplace_back(leaf->keys[i], leaf->values[i]);
        }
      }
      std::sort(in_leaf.begin(), in_leaf.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (auto& p : in_leaf) {
        if (out->size() >= limit) break;
        out->push_back(p);
      }
      leaf = leaf->next.get();
    }
  }

  size_t Size() const { return size_; }
  ~PTree() { FlushTreeStats(stats_); }

  TreeOpStats& stats() { return stats_; }
  const TreeOpStats& stats() const { return stats_; }
  uint64_t DramBytes() const { return inner_.MemoryBytes(); }
  uint64_t ScmBytes() const { return pool_->allocator()->heap_used_bytes(); }
  uint64_t last_recovery_nanos() const { return recovery_nanos_; }

  bool CheckConsistency(std::string* why) const {
    LeafNode* leaf = proot_->head.get();
    Key prev_max = 0;
    bool first = true;
    size_t total = 0;
    while (leaf != nullptr) {
      Key mn = ~Key{0}, mx = 0;
      size_t cnt = 0;
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (!leaf->TestBit(i)) continue;
        ++cnt;
        mn = std::min(mn, leaf->keys[i]);
        mx = std::max(mx, leaf->keys[i]);
      }
      if (cnt > 0) {
        if (!first && mn <= prev_max) {
          *why = "leaf list out of order";
          return false;
        }
        prev_max = mx;
        first = false;
      }
      total += cnt;
      leaf = leaf->next.get();
    }
    if (total != size_) {
      *why = "size mismatch";
      return false;
    }
    return true;
  }

  /// Leak check: every allocated block is the root struct, a linked leaf,
  /// or referenced from an in-flight micro-log.
  bool CheckNoLeaks(std::string* why) const {
    std::unordered_set<uint64_t> reachable;
    reachable.insert(pool_->root().offset);
    for (LeafNode* leaf = proot_->head.get(); leaf != nullptr;
         leaf = leaf->next.get()) {
      reachable.insert(pool_->ToPPtr(leaf).offset);
    }
    if (!proot_->split_log.p_current.IsNull()) {
      reachable.insert(proot_->split_log.p_current.offset);
    }
    if (!proot_->split_log.p_new.IsNull()) {
      reachable.insert(proot_->split_log.p_new.offset);
    }
    for (uint64_t off : pool_->allocator()->AllocatedPayloadOffsets()) {
      if (reachable.count(off) == 0) {
        *why = "leaked block at offset " + std::to_string(off);
        return false;
      }
    }
    return true;
  }

  /// Full invariant sweep (DESIGN.md §8): structural consistency, leaf-list
  /// vs. inner-index routing agreement, and the persistent-leak audit.
  bool CheckInvariants(std::string* why) {
    if (!CheckConsistency(why)) return false;
    for (LeafNode* leaf = proot_->head.get(); leaf != nullptr;
         leaf = leaf->next.get()) {
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (!leaf->TestBit(i)) continue;
        Path path;
        if (FindLeaf(leaf->keys[i], &path) != leaf) {
          *why = "inner index routes key " + std::to_string(leaf->keys[i]) +
                 " to the wrong leaf";
          return false;
        }
      }
    }
    return CheckNoLeaks(why);
  }

 private:
  using Inner = InnerIndex<Key, kInnerCap>;
  using Path = typename Inner::Path;

  LeafNode* FindLeaf(Key key, Path* path) {
    return static_cast<LeafNode*>(inner_.FindLeaf(key, path));
  }

  LeafNode* FindLeafAndPrev(Key key, Path* path, LeafNode** prev) {
    LeafNode* leaf = FindLeaf(key, path);
    *prev = nullptr;
    for (int level = static_cast<int>(path->depth) - 1; level >= 0; --level) {
      typename Inner::Node* n = path->nodes[level];
      uint32_t slot = path->slots[level];
      if (slot > 0) {
        void* sub = n->children[slot - 1];
        bool leaf_level = n->leaf_children;
        while (!leaf_level) {
          typename Inner::Node* in = static_cast<typename Inner::Node*>(sub);
          sub = in->children[in->n_keys];
          leaf_level = in->leaf_children;
        }
        *prev = static_cast<LeafNode*>(sub);
        break;
      }
    }
    return leaf;
  }

  /// Linear scan over the (dense) key array — no fingerprint filter. Every
  /// valid key is probed until a match (paper: the PTree's key arrays give
  /// locality, but all keys in the scan path are touched).
  int FindInLeaf(LeafNode* leaf, Key key) {
    if (leaf == nullptr) return -1;
    scm::ReadScm(leaf, 64);  // header line (bitmap etc.)
    scm::ReadScm(leaf->keys, sizeof(leaf->keys));
    // ctz iteration over the validity bitmap: probes exactly the valid
    // slots, in ascending order, like the scalar TestBit loop did.
    uint64_t valid = leaf->bitmap;
    while (valid != 0) {
      size_t i = static_cast<size_t>(__builtin_ctzll(valid));
      valid &= valid - 1;
      ++stats_.key_probes;
      if (leaf->keys[i] == key) return static_cast<int>(i);
    }
    return -1;
  }

  void InsertKV(LeafNode* leaf, Key key, const Value& value) {
    int slot = leaf->FindFirstZero();
    assert(slot >= 0);
    scm::pmem::Store(&leaf->keys[slot], key);
    scm::pmem::Store(&leaf->values[slot], value);
    scm::pmem::Persist(&leaf->keys[slot]);
    scm::pmem::Persist(&leaf->values[slot]);
    SCM_CRASH_POINT("ptree.insert.before_bitmap");
    scm::pmem::StorePersist(&leaf->bitmap,
                            leaf->bitmap | (uint64_t{1} << slot));
  }

  LeafNode* SplitLeaf(LeafNode* leaf, Key* split_key) {
    ++stats_.leaf_splits;
    SplitLog* log = &proot_->split_log;
    scm::pmem::StorePPtrPersist(&log->p_current, pool_->ToPPtr(leaf));
    Status s = pool_->allocator()->Allocate(&log->p_new, sizeof(LeafNode));
    assert(s.ok());
    (void)s;
    SCM_CRASH_POINT("ptree.split.allocated");
    LeafNode* new_leaf = log->p_new.get();
    *split_key = FinishSplitFromCopy(log);
    return new_leaf;
  }

  Key FinishSplitFromCopy(SplitLog* log) {
    LeafNode* leaf = log->p_current.get();
    LeafNode* new_leaf = log->p_new.get();
    scm::pmem::StoreBytes(new_leaf, leaf, sizeof(LeafNode));
    scm::pmem::Persist(new_leaf, sizeof(LeafNode));
    SCM_CRASH_POINT("ptree.split.copied");
    Key sk = ComputeSplitKey(leaf);
    uint64_t upper = 0;
    for (size_t i = 0; i < kLeafCap; ++i) {
      if (leaf->TestBit(i) && leaf->keys[i] > sk) upper |= uint64_t{1} << i;
    }
    scm::pmem::StorePersist(&new_leaf->bitmap, upper);
    scm::pmem::StorePersist(&leaf->bitmap, leaf->bitmap & ~upper);
    SCM_CRASH_POINT("ptree.split.old_bitmap");
    FinishSplitTail(log);
    return sk;
  }

  void FinishSplitFromInverse(SplitLog* log) {
    LeafNode* leaf = log->p_current.get();
    LeafNode* new_leaf = log->p_new.get();
    uint64_t mask =
        kLeafCap == 64 ? ~uint64_t{0} : ((uint64_t{1} << kLeafCap) - 1);
    scm::pmem::StorePersist(&leaf->bitmap, ~new_leaf->bitmap & mask);
    FinishSplitTail(log);
  }

  void FinishSplitTail(SplitLog* log) {
    LeafNode* leaf = log->p_current.get();
    scm::pmem::StorePPtrPersist(&leaf->next, log->p_new);
    ResetSplitLog(log);
  }

  void ResetSplitLog(SplitLog* log) {
    scm::pmem::StorePPtr(&log->p_current, scm::PPtr<LeafNode>::Null());
    scm::pmem::StorePPtr(&log->p_new, scm::PPtr<LeafNode>::Null());
    scm::pmem::Persist(log, sizeof(*log));
  }

  Key ComputeSplitKey(LeafNode* leaf) const {
    Key keys[kLeafCap];
    size_t n = 0;
    for (size_t i = 0; i < kLeafCap; ++i) {
      if (leaf->TestBit(i)) keys[n++] = leaf->keys[i];
    }
    size_t h = n / 2;
    std::nth_element(keys, keys + (h - 1), keys + n);
    return keys[h - 1];
  }

  void DeleteLeaf(LeafNode* leaf, LeafNode* prev) {
    ++stats_.leaf_deletes;
    DeleteLog* log = &proot_->delete_log;
    scm::pmem::StorePPtrPersist(&log->p_current, pool_->ToPPtr(leaf));
    SCM_CRASH_POINT("ptree.delete.logged");
    if (proot_->head.get() == leaf) {
      scm::pmem::StorePPtrPersist(&proot_->head, leaf->next);
    } else {
      assert(prev != nullptr);
      scm::pmem::StorePPtrPersist(&log->p_prev, pool_->ToPPtr(prev));
      scm::pmem::StorePPtrPersist(&prev->next, leaf->next);
      SCM_CRASH_POINT("ptree.delete.unlinked");
    }
    scm::pmem::StorePersist(&leaf->bitmap, uint64_t{0});
    pool_->allocator()->Deallocate(&log->p_current);
    ResetDeleteLog(log);
  }

  void ResetDeleteLog(DeleteLog* log) {
    scm::pmem::StorePPtr(&log->p_current, scm::PPtr<LeafNode>::Null());
    scm::pmem::StorePPtr(&log->p_prev, scm::PPtr<LeafNode>::Null());
    scm::pmem::Persist(log, sizeof(*log));
  }

  void AttachOrInit() {
    uint64_t t0 = NowNanos();
    if (pool_->root().IsNull()) {
      Status s =
          pool_->allocator()->Allocate(&pool_->header()->root, sizeof(PRoot));
      assert(s.ok());
      (void)s;
    }
    proot_ = static_cast<PRoot*>(pool_->root().get());
    if (proot_->magic != PRoot::kMagic) {
      PRoot zero{};
      zero.magic = PRoot::kMagic;
      scm::pmem::StoreBytes(proot_, &zero, sizeof(zero));
      scm::pmem::Persist(proot_, sizeof(*proot_));
    }
    RecoverSplit();
    RecoverDelete();
    RebuildTransientState();
    if (proot_->head.IsNull()) {
      Status s =
          pool_->allocator()->Allocate(&proot_->head, sizeof(LeafNode));
      assert(s.ok());
      (void)s;
      LeafNode* first = proot_->head.get();
      scm::pmem::StorePersist(&first->bitmap, uint64_t{0});
      scm::pmem::StorePPtrPersist(&first->next, scm::PPtr<LeafNode>::Null());
      inner_.Clear();
      inner_.InitSingleLeaf(first);
      size_ = 0;
    }
    if (!pool_->root_initialized()) pool_->SetRootInitialized();
    recovery_nanos_ = NowNanos() - t0;
  }

  void RecoverSplit() {
    SplitLog* log = &proot_->split_log;
    if (log->p_current.IsNull() || log->p_new.IsNull()) {
      ResetSplitLog(log);
      return;
    }
    if (log->p_current.get()->IsFull()) {
      FinishSplitFromCopy(log);
    } else {
      FinishSplitFromInverse(log);
    }
  }

  void RecoverDelete() {
    DeleteLog* log = &proot_->delete_log;
    if (log->p_current.IsNull()) {
      ResetDeleteLog(log);
      return;
    }
    LeafNode* leaf = log->p_current.get();
    LeafNode* head = proot_->head.get();
    if (!log->p_prev.IsNull()) {
      LeafNode* prev = log->p_prev.get();
      scm::pmem::StorePPtrPersist(&prev->next, leaf->next);
      FinishDeleteRecovery(log);
    } else if (leaf == head) {
      scm::pmem::StorePPtrPersist(&proot_->head, leaf->next);
      FinishDeleteRecovery(log);
    } else if (leaf->next.get() == head) {
      FinishDeleteRecovery(log);
    } else {
      ResetDeleteLog(log);
    }
  }

  void FinishDeleteRecovery(DeleteLog* log) {
    LeafNode* leaf = log->p_current.get();
    scm::pmem::StorePersist(&leaf->bitmap, uint64_t{0});
    pool_->allocator()->Deallocate(&log->p_current);
    ResetDeleteLog(log);
  }

  void RebuildTransientState() {
    inner_.Clear();
    size_ = 0;
    std::vector<std::pair<Key, void*>> live;
    LeafNode* head = proot_->head.get();
    for (LeafNode* leaf = head; leaf != nullptr; leaf = leaf->next.get()) {
      scm::pmem::StoreVolatile(&leaf->lock_word, uint64_t{0});
      scm::ReadScm(leaf, 64);
      scm::ReadScm(leaf->keys, sizeof(leaf->keys));
      // Seed max_key from the first live slot — Key{0} is not a safe
      // identity for arbitrary key types.
      Key max_key{};
      size_t cnt = 0;
      for (size_t i = 0; i < kLeafCap; ++i) {
        if (!leaf->TestBit(i)) continue;
        max_key = cnt == 0 ? leaf->keys[i] : std::max(max_key, leaf->keys[i]);
        ++cnt;
      }
      size_ += cnt;
      if (cnt > 0) live.emplace_back(max_key, leaf);
    }
    if (!live.empty()) {
      std::sort(live.begin(), live.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      inner_.BulkBuild(live);
    } else if (head != nullptr) {
      inner_.InitSingleLeaf(head);
    }
  }

  scm::Pool* pool_;
  PRoot* proot_ = nullptr;
  Inner inner_;
  size_t size_ = 0;
  uint64_t recovery_nanos_ = 0;
  TreeOpStats stats_;
};

}  // namespace core
}  // namespace fptree
