// Copyright (c) FPTree reproduction authors.
//
// Crash simulation (substitute for pulling the plug on the paper's
// evaluation machine). Implements exactly the failure model the paper's
// recovery algorithms are written against (§2):
//
//  * a store to SCM is durable only once a Persist() covering its cache
//    lines has executed;
//  * stores of at most 8 aligned bytes are p-atomic; larger stores may be
//    torn at an 8-byte boundary by a crash.
//
// When the simulator is enabled, every store issued through the pmem::*
// helpers logs an undo record with the previous bytes. Persist() retires the
// covered portions of pending records. SimulateCrash() rolls back everything
// still pending — i.e. everything that would have been lost in the CPU
// cache — optionally tearing one large pending store. Afterwards the test
// harness closes and re-opens the pool at a randomized base address and runs
// the data structure's recovery procedure.
//
// Crash points: recovery algorithms are tested by arming named points
// (e.g. "fptree.split.after_alloc") that throw CrashException mid-operation.
//
// Thread-coherent crashes (DESIGN.md §8): every undo record is attributed
// to the thread that issued the store. In CrashBarrier mode, the moment an
// armed point fires in one worker the whole process is considered to have
// lost power: sibling threads are frozen at their next pmem store or crash
// point (the store never executes; CrashException unwinds them), and
// post-instant Persist() calls retire nothing. SimulateCrash() then reverts
// the unpersisted stores of *all* threads, newest first, yielding exactly
// the SCM image an instantaneous machine-wide power loss would leave.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <string>
#include <thread>
#include <vector>

namespace fptree {
namespace scm {

/// \brief Thrown by an armed crash point; unwinds out of the operation under
/// test. The harness then calls CrashSim::SimulateCrash().
class CrashException : public std::exception {
 public:
  explicit CrashException(std::string point) : point_(std::move(point)) {}
  const char* what() const noexcept override { return point_.c_str(); }
  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

class CrashSim {
 public:
  /// Pseudo-point name carried by the CrashException that freezes sibling
  /// threads once a CrashBarrier has tripped.
  static constexpr const char* kBarrierPoint = "crash.barrier";

  /// Starts shadow-logging all pmem stores. Idempotent.
  static void Enable();

  /// Stops logging and drops all pending records (clean-shutdown semantics).
  /// Also clears barrier mode and any tripped barrier.
  static void Disable();

  static bool enabled() {
    return enabled_flag_.load(std::memory_order_relaxed);
  }

  /// Records that `n` bytes at `addr` are about to be overwritten, tagged
  /// with the calling thread. Called by pmem::Store* before the actual
  /// write. When a CrashBarrier has tripped in another thread, throws
  /// CrashException(kBarrierPoint) instead of logging — the store never
  /// executes, freezing this thread at the crash instant.
  static void LogStore(void* addr, size_t n);

  /// Records that [addr, addr+n) was flushed: the covered cache lines become
  /// durable and the covered portions of pending records are retired. After
  /// a barrier trips nothing is retired (no flush can happen after the
  /// power-loss instant): the crashing thread's persists are silently
  /// dropped, while a sibling thread is frozen with
  /// CrashException(kBarrierPoint) just as at a store — it must not run on
  /// and acknowledge an operation whose stores the crash will revert.
  static void NotifyPersist(const void* addr, size_t n);

  /// The crash: reverts every pending (un-persisted) store of every thread,
  /// newest first. If tear mode is on, one pending multi-word store keeps a
  /// durable prefix (simulating a partial write). Also disarms all crash
  /// points and resets a tripped barrier.
  static void SimulateCrash();

  /// Retires all pending records without reverting (orderly shutdown).
  static void CommitAll();

  /// Number of pending (not-yet-durable) undo records; test introspection.
  static size_t PendingRecords();

  /// Number of distinct threads with pending undo records (per-thread
  /// attribution introspection for the concurrent crash tests).
  static size_t PendingThreads();

  /// Pending undo records attributed to the calling thread.
  static size_t PendingRecordsForCurrentThread();

  /// When on, SimulateCrash() tears the newest pending store larger than 8
  /// bytes at an 8-byte boundary instead of reverting it entirely.
  static void SetTearMode(bool on);

  // --- Crash points -------------------------------------------------------

  /// Arms `name`: the countdown-th future visit of that point throws.
  static void ArmCrashPoint(const std::string& name, int countdown = 1);

  static void DisarmAll();

  /// Marks a named point in an operation; throws CrashException when armed.
  /// Call through the SCM_CRASH_POINT macro so the check compiles to a
  /// single predictable branch when the simulator is off. When a
  /// CrashBarrier tripped in another thread, throws
  /// CrashException(kBarrierPoint) — a frozen sibling observes the crash at
  /// its next crash point even if it never stores again.
  static void Point(const char* name);

  /// When recording, Point() also appends every visited name; tests use this
  /// to enumerate the crash windows of an operation before arming each.
  static void StartRecordingPoints();
  static std::vector<std::string> StopRecordingPoints();

  // --- Thread-coherent crash barrier --------------------------------------

  /// When on, the first armed point that fires marks the global crash
  /// instant: all other threads are frozen at their next pmem store or
  /// crash point (CrashException(kBarrierPoint) unwinds them) and further
  /// persists retire nothing. The mode is sticky across SimulateCrash();
  /// Disable() clears it.
  static void SetCrashBarrier(bool on);

  /// True between an armed point firing in barrier mode and the following
  /// SimulateCrash()/Disable().
  static bool BarrierTripped();

 private:
  // Single flag read on the store hot path. Atomic (not volatile): it is
  // written under the state mutex but read without it from every pmem
  // store, which the previous volatile qualifier left a formal data race.
  static inline std::atomic<bool> enabled_flag_{false};
};

}  // namespace scm
}  // namespace fptree

/// Marks a crash window; no-op (one branch) unless the simulator is enabled.
#define SCM_CRASH_POINT(name)                              \
  do {                                                     \
    if (::fptree::scm::CrashSim::enabled()) {              \
      ::fptree::scm::CrashSim::Point(name);                \
    }                                                      \
  } while (0)
