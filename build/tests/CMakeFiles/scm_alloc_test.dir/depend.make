# Empty dependencies file for scm_alloc_test.
# This may be replaced when dependencies are built.
