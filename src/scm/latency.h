// Copyright (c) FPTree reproduction authors.
//
// SCM latency emulation (substitute for the paper's BIOS-configurable
// emulation platform, §6.1). The paper dials the latency of a DRAM region
// between 90 ns and 650 ns. We reproduce the effect in software:
//
//  * every SCM cache-line read that misses the modeled last-level cache is
//    charged (scm_latency - dram_latency) via a calibrated spin;
//  * every Persist() (CLFLUSH+fence equivalent) is charged scm_write_latency
//    per flushed line, since a flush stalls until the line reaches the
//    device's durability domain.
//
// The modeled LLC is a per-thread direct-mapped tag array: re-touching a
// recently-read line is free (a real cache hit), and Persist() evicts the
// line (CLFLUSH semantics). This is what makes Fingerprinting measurable:
// probing one extra key in a leaf touches one extra SCM line.

#pragma once

#include <atomic>
#include <cstdint>

#include "scm/layout.h"
#include "scm/stats.h"
#include "util/simd.h"

namespace fptree {
namespace scm {

/// \brief Global latency configuration. All knobs are in nanoseconds.
struct LatencyConfig {
  /// Emulated SCM read latency. The paper sweeps {90, 250, 450, 650}.
  uint64_t scm_read_ns = 90;
  /// Emulated SCM write/flush latency (charged per flushed line). The paper
  /// treats one latency knob; asymmetric writes can be modeled by raising
  /// this independently.
  uint64_t scm_write_ns = 90;
  /// Baseline DRAM latency of the host; the read charge is the *excess*
  /// over this (the host pays the DRAM part natively).
  uint64_t dram_ns = 90;
};

class LatencyModel {
 public:
  /// Sets both read and write SCM latency to `ns` (the paper's single knob).
  static void SetScmLatency(uint64_t ns) {
    read_extra_ns_.store(ns > Config().dram_ns ? ns - Config().dram_ns : 0,
                         std::memory_order_relaxed);
    write_ns_.store(ns, std::memory_order_relaxed);
  }

  /// Sets read and write latencies separately.
  static void SetScmLatency(uint64_t read_ns, uint64_t write_ns) {
    read_extra_ns_.store(
        read_ns > Config().dram_ns ? read_ns - Config().dram_ns : 0,
        std::memory_order_relaxed);
    write_ns_.store(write_ns, std::memory_order_relaxed);
  }

  /// Disables all injected delays (pure-DRAM behaviour); used by unit tests.
  static void Disable() {
    read_extra_ns_.store(0, std::memory_order_relaxed);
    write_ns_.store(0, std::memory_order_relaxed);
  }

  static uint64_t read_extra_ns() {
    return read_extra_ns_.load(std::memory_order_relaxed);
  }
  static uint64_t write_ns() {
    return write_ns_.load(std::memory_order_relaxed);
  }

  /// Busy-waits for approximately `ns` nanoseconds. Public so that the
  /// application layer (e.g. the kvcache network throttle) can reuse the
  /// calibrated spin.
  static void SpinFor(uint64_t ns);

  /// Forces the one-time spin-loop calibration now (it otherwise runs
  /// lazily inside the first SpinFor, distorting that first measurement).
  /// Benchmarks call this before the timed region.
  static void Calibrate();

  /// Charges the read-latency penalty for touching `lines` SCM cache lines
  /// that missed the modeled cache.
  static void ChargeReadMiss(size_t lines) {
    uint64_t extra = read_extra_ns();
    if (extra != 0 && lines != 0) SpinFor(extra * lines);
  }

  /// Charges the write/flush penalty for flushing `lines` cache lines.
  static void ChargeFlush(size_t lines) {
    uint64_t w = write_ns_.load(std::memory_order_relaxed);
    if (w != 0 && lines != 0) SpinFor(w * lines);
  }

  static LatencyConfig& Config() {
    static LatencyConfig cfg;
    return cfg;
  }

 private:
  static std::atomic<uint64_t> read_extra_ns_;
  static std::atomic<uint64_t> write_ns_;
};

/// \brief Per-thread modeled cache of SCM lines (direct-mapped tag array).
///
/// ReadTouch() returns true when the access missed (and must be charged);
/// Evict() models CLFLUSH evicting a line.
class ThreadScmCache {
 public:
  // 4096 lines * 64 B = 256 KiB modeled per-thread cache share. The paper's
  // machine has a 20 MiB LLC shared by 8 cores against 50M-key trees
  // (~1.6 GB), i.e. leaf accesses essentially always miss; our benchmarks
  // run at container scale, so the modeled cache is scaled down to keep the
  // tree-size : cache-size ratio in the same regime.
  static constexpr size_t kNumSlots = 4096;

  /// Records a read of the line containing `addr`; returns true on miss.
  static bool ReadTouch(const void* addr) {
    uint64_t line = reinterpret_cast<uintptr_t>(addr) / kCacheLineSize;
    uint64_t& slot = Tags()[line & (kNumSlots - 1)];
    if (slot == line) return false;
    slot = line;
    return true;
  }

  /// Evicts the line containing `addr` (CLFLUSH semantics).
  static void Evict(const void* addr) {
    uint64_t line = reinterpret_cast<uintptr_t>(addr) / kCacheLineSize;
    uint64_t& slot = Tags()[line & (kNumSlots - 1)];
    if (slot == line) slot = 0;
  }

  /// Drops all modeled cache contents for this thread.
  static void Clear();

 private:
  static uint64_t* Tags();
};

/// \brief Declares that the calling thread is reading `n` bytes at `addr`
/// from SCM. Charges the latency model for every line that misses the
/// modeled cache. Trees call this at every SCM touch point (fingerprint
/// array, key probe, leaf header, ...).
inline void ReadScm(const void* addr, size_t n) {
  if (n == 0) return;
  const char* p = static_cast<const char*>(addr);
  const char* end = p + n;
  size_t misses = 0;
  for (const char* line = p; line < end;
       line += kCacheLineSize - (reinterpret_cast<uintptr_t>(line) %
                                 kCacheLineSize)) {
    if (ThreadScmCache::ReadTouch(line)) {
      ++misses;
      ++ThreadStats().scm_read_misses;
    } else {
      ++ThreadStats().scm_read_hits;
    }
  }
  if (misses != 0) LatencyModel::ChargeReadMiss(misses);
}

/// Modeled memory-level parallelism of a batched descent: how many SCM line
/// fills the staged prefetches keep in flight at once. Real hardware bounds
/// this with its line-fill buffers (~10 on the paper's machines); the
/// emulation charges ceil(misses / kMemoryLevelParallelism) serial miss
/// latencies for a ReadBatch instead of `misses`.
constexpr size_t kMemoryLevelParallelism = 8;

/// \brief A group of SCM reads staged together (batch pipeline, DESIGN.md
/// §11). Add() collects ranges; Issue() prefetches every collected line,
/// installs the modeled-cache tags, and charges the latency model under the
/// kMemoryLevelParallelism overlap model — after which the per-key ReadScm
/// calls that resolve the batch hit the modeled cache and cost nothing.
///
/// Under FPTREE_NO_PREFETCH both calls are complete no-ops (no tags, no
/// charge, no hardware prefetch): the resolving ReadScm calls then pay the
/// exact serial cost of the unbatched path, so results are identical and
/// only the timing differs.
class ReadBatch {
 public:
#if defined(FPTREE_NO_PREFETCH)
  void Add(const void* addr, size_t n) {
    (void)addr;
    (void)n;
  }
  void Issue() {}
#else
  void Add(const void* addr, size_t n) {
    if (n == 0) return;
    const char* p = static_cast<const char*>(addr);
    const char* end = p + n;
    for (const char* line = p; line < end;
         line += kCacheLineSize - (reinterpret_cast<uintptr_t>(line) %
                                   kCacheLineSize)) {
      simd::PrefetchLines(line, 1);
      if (ThreadScmCache::ReadTouch(line)) {
        ++misses_;
        ++ThreadStats().scm_read_misses;
        ++ThreadStats().prefetched_lines;
      } else {
        ++ThreadStats().scm_read_hits;
      }
    }
  }

  /// Charges all collected misses as overlapping line fills and resets the
  /// batch for reuse.
  void Issue() {
    if (misses_ == 0) return;
    size_t rounds = (misses_ + kMemoryLevelParallelism - 1) /
                    kMemoryLevelParallelism;
    LatencyModel::ChargeReadMiss(rounds);
    misses_ = 0;
  }

 private:
  size_t misses_ = 0;
#endif
};

}  // namespace scm
}  // namespace fptree
