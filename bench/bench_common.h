// Copyright (c) FPTree reproduction authors.
//
// Shared benchmark scaffolding: flag parsing, pool lifecycle, timing
// helpers and row printing. Every bench binary reproduces one table or
// figure of the paper (see DESIGN.md §3) and prints the same series the
// paper plots. Scale knobs: --keys=N --ops=N --threads=N --latency=NS.

#pragma once

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/recovery.h"
#include "engine/sharded_index.h"
#include "index/kv_index.h"
#include "obs/metrics.h"
#include "scm/latency.h"
#include "scm/pool.h"
#include "util/random.h"
#include "util/timer.h"

namespace fptree {
namespace bench {

struct Flags {
  uint64_t keys = 100000;
  uint64_t ops = 100000;
  uint32_t threads = 0;  // 0 = sweep
  uint64_t latency = 0;  // 0 = sweep
  std::string tree;      // restrict to one tree; "all" = every registered
  uint32_t sample = 64;  // latency sampling interval; 0 disables
  uint64_t metrics_every = 0;  // periodic app metrics dump; 0 disables
  uint32_t recover_threads = 0;  // recovery scan width; 0 = hw concurrency
  uint32_t batch = 1;    // keys per MultiGet/MultiPut/MGET/MPUT frame;
                         // 1 = scalar ops (existing series stay comparable)
  bool restart = false;
  bool quick = false;

  static Flags Parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--batch=", 8) == 0) f.batch = std::strtoul(a + 8, nullptr, 10);
      if (std::strncmp(a, "--keys=", 7) == 0) f.keys = std::strtoull(a + 7, nullptr, 10);
      if (std::strncmp(a, "--ops=", 6) == 0) f.ops = std::strtoull(a + 6, nullptr, 10);
      if (std::strncmp(a, "--threads=", 10) == 0) f.threads = std::strtoul(a + 10, nullptr, 10);
      if (std::strncmp(a, "--latency=", 10) == 0) f.latency = std::strtoull(a + 10, nullptr, 10);
      if (std::strncmp(a, "--tree=", 7) == 0) f.tree = a + 7;
      if (std::strncmp(a, "--sample=", 9) == 0) f.sample = std::strtoul(a + 9, nullptr, 10);
      if (std::strncmp(a, "--metrics-every=", 16) == 0) f.metrics_every = std::strtoull(a + 16, nullptr, 10);
      if (std::strncmp(a, "--recover-threads=", 18) == 0) f.recover_threads = std::strtoul(a + 18, nullptr, 10);
      if (std::strcmp(a, "--restart") == 0) f.restart = true;
      if (std::strcmp(a, "--quick") == 0) f.quick = true;
    }
    if (f.batch == 0) f.batch = 1;
    obs::SetSampleInterval(f.sample);
    core::SetRecoverThreads(f.recover_threads);
    // Host stanza: every METRICS_JSON line records the run's batch size
    // (and core count) so downstream plots can group by configuration.
    obs::MetricsRegistry::Global().SetGauge(
        "host.batch_size", [b = f.batch] { return b; });
    obs::MetricsRegistry::Global().SetGauge("host.hardware_concurrency", [] {
      return static_cast<uint64_t>(std::thread::hardware_concurrency());
    });
    return f;
  }

  /// Resolves --tree against the registered fixed-key index names:
  /// unset -> `defaults`, "all" -> every registered name, else that name
  /// (which must be registered — unknown names exit with the valid list).
  std::vector<std::string> FixedTrees(
      std::initializer_list<const char*> defaults) const {
    return ResolveTrees(index::ListFixedIndexNames(), defaults,
                        /*var=*/false);
  }

  /// Same for var-key index names.
  std::vector<std::string> VarTrees(
      std::initializer_list<const char*> defaults) const {
    return ResolveTrees(index::ListVarIndexNames(), defaults, /*var=*/true);
  }

 private:
  std::vector<std::string> ResolveTrees(
      std::vector<std::string> registered,
      std::initializer_list<const char*> defaults, bool var) const {
    if (tree == "all") return registered;
    if (!tree.empty()) {
      for (const std::string& name : registered) {
        if (name == tree) return {tree};
      }
      // Unknown name: surface the checked registry Status (API v3), which
      // carries the registered-name list, and exit non-zero.
      Status st;
      if (var) {
        std::unique_ptr<index::VarIndex> probe;
        st = index::MakeVarIndexChecked(tree, nullptr, false, &probe);
      } else {
        std::unique_ptr<index::KVIndex> probe;
        st = index::MakeFixedIndexChecked(tree, nullptr, false, &probe);
      }
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      std::exit(2);
    }
    return std::vector<std::string>(defaults.begin(), defaults.end());
  }
};

/// Fresh pool for one tree instance; destroyed (file removed) on scope end.
class ScopedPool {
 public:
  explicit ScopedPool(size_t size = size_t{2} << 30, uint64_t id = 1)
      : path_("/tmp/fptree_bench_" + std::to_string(::getpid()) + "_" +
              std::to_string(id) + "_" + std::to_string(counter_++)) {
    scm::Pool::Destroy(path_).ok();
    scm::Pool::Options opts{.size = size, .randomize_base = false};
    Status s = scm::Pool::Create(path_, id, opts, &pool_);
    if (!s.ok()) {
      std::fprintf(stderr, "pool create failed: %s\n", s.ToString().c_str());
      std::abort();
    }
  }

  /// Closes and reopens the pool (randomized base), e.g. to time recovery.
  void Reopen() {
    uint64_t id = pool_->id();
    pool_.reset();
    scm::Pool::Options opts{.size = 0, .randomize_base = true};
    Status s = scm::Pool::Open(path_, id, opts, &pool_);
    if (!s.ok()) {
      std::fprintf(stderr, "pool reopen failed: %s\n", s.ToString().c_str());
      std::abort();
    }
  }

  ~ScopedPool() {
    pool_.reset();
    scm::Pool::Destroy(path_).ok();
  }

  scm::Pool* get() { return pool_.get(); }

 private:
  static inline int counter_ = 0;
  std::string path_;
  std::unique_ptr<scm::Pool> pool_;
};

/// Fresh sharded engine over temp pool files `<prefix>.0..N-1`; indexes
/// and files are torn down on scope end. Fatal on construction failure
/// (the checked Status carries the registered-name list).
class ScopedShardedVar {
 public:
  ScopedShardedVar(const std::string& inner, size_t shards,
                   size_t shard_bytes = size_t{1} << 28, bool locked = true)
      : prefix_("/tmp/fptree_bench_shard_" + std::to_string(::getpid()) +
                "_" + std::to_string(counter_++)),
        shards_(shards) {
    DestroyFiles();
    engine::ShardedOptions opts;
    opts.shards = shards;
    opts.path_prefix = prefix_;
    opts.shard_bytes = shard_bytes;
    opts.locked = locked;
    opts.randomize_base = false;
    Status s = engine::ShardedVarIndex::Make(inner, opts, &index_);
    if (!s.ok()) {
      std::fprintf(stderr, "sharded engine construction failed: %s\n",
                   s.ToString().c_str());
      std::exit(2);
    }
  }

  /// Closes every shard pool and reopens the engine (shard-parallel
  /// recovery); times nothing itself — read RecoveryNanos() after.
  void Reopen(const std::string& inner) {
    index_.reset();
    engine::ShardedOptions opts;
    opts.shards = shards_;
    opts.path_prefix = prefix_;
    opts.shard_bytes = 0;  // existing files keep their size
    opts.randomize_base = true;
    opts.locked = true;
    Status s = engine::ShardedVarIndex::Make(inner, opts, &index_);
    if (!s.ok()) {
      std::fprintf(stderr, "sharded engine reopen failed: %s\n",
                   s.ToString().c_str());
      std::exit(2);
    }
  }

  ~ScopedShardedVar() {
    index_.reset();
    DestroyFiles();
  }

  engine::ShardedVarIndex* get() { return index_.get(); }

 private:
  void DestroyFiles() {
    for (size_t i = 0; i < shards_; ++i) {
      scm::Pool::Destroy(prefix_ + "." + std::to_string(i)).ok();
    }
  }

  static inline int counter_ = 0;
  std::string prefix_;
  size_t shards_;
  std::unique_ptr<engine::ShardedVarIndex> index_;
};

inline void SetLatency(uint64_t ns) {
  scm::LatencyModel::Config().dram_ns = 90;
  scm::LatencyModel::SetScmLatency(ns);
}

inline std::string MakeVarKey(uint64_t i) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llu",
                static_cast<unsigned long long>(i));
  return std::string(buf, 16);
}

/// Prevents the optimizer from discarding a benchmarked computation.
template <typename T>
inline void DoNotOptimize(T& value) {
  asm volatile("" : "+m"(value) : : "memory");
}

/// Runs fn over n items and returns average ns/op. When `hist` is non-null
/// and sampling is enabled, every sampling-interval-th op is individually
/// timed into the named registry histogram; with sampling off the loop is
/// identical to the unsampled one (the interval check happens once, here).
template <typename Fn>
double TimeOps(uint64_t n, Fn fn, const char* hist = nullptr) {
  obs::LatencyHistogram* h =
      hist == nullptr || obs::SampleInterval() == 0
          ? nullptr
          : obs::MetricsRegistry::Global().GetHistogram(hist);
  Stopwatch sw;
  if (h == nullptr) {
    for (uint64_t i = 0; i < n; ++i) fn(i);
  } else {
    uint32_t mask = obs::SampleInterval() - 1;
    Histogram local;  // merge once at the end; keeps the loop lock-free
    for (uint64_t i = 0; i < n; ++i) {
      if ((i & mask) == 0) {
        uint64_t t0 = NowNanos();
        fn(i);
        local.Add(NowNanos() - t0);
      } else {
        fn(i);
      }
    }
    h->Merge(local);
  }
  return static_cast<double>(sw.ElapsedNanos()) / static_cast<double>(n);
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

/// Prints the process-wide metrics snapshot as one machine-readable JSON
/// line (prefixed METRICS_JSON so plot scripts can grep it out of the
/// figure output). Every bench binary calls this once before exiting.
inline void EmitMetricsJson(const char* bench_name) {
  std::printf("\nMETRICS_JSON %s\n", obs::GlobalJson(bench_name).c_str());
}

}  // namespace bench
}  // namespace fptree
