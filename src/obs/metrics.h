// Copyright (c) FPTree reproduction authors.
//
// Unified observability: one process-wide registry of named counters,
// gauges, and latency histograms, exportable as JSON snapshots.
//
// Design rules (ROADMAP "production-scale" discipline):
//  * Counters are monotonic, relaxed atomics — cheap enough for hot paths.
//  * Gauges are pull-based callbacks sampled at snapshot time (sizes,
//    byte totals), so idle registries cost nothing.
//  * Latency histograms are mutex-guarded util/histogram.h instances fed by
//    *sampled* operations: the per-op cost is a single branch on a cached
//    sampling mask when sampling is off (see ShouldSample()).
//  * TakeSnapshot() folds in the subsystem telemetry that predates this
//    registry — scm::AggregatedStats() (scm.*), htm::GlobalHtmStats()
//    (htm.*) and core::GlobalTreeStats() (tree.*) — so one call yields the
//    whole observable state of the process.
//
// Names use dotted paths ("scm.flushed_lines", "latency.find"); JSON output
// nests on the first dot.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "util/histogram.h"

namespace fptree {
namespace obs {

/// Monotonic counter. Pointer-stable once created in a registry: fetch it
/// once, keep the pointer, Add() from any thread.
class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Thread-safe wrapper around the log-bucketed Histogram. Callers only reach
/// here for sampled operations, so a mutex is fine.
class LatencyHistogram {
 public:
  void Record(uint64_t ns) {
    std::lock_guard<std::mutex> lock(mu_);
    h_.Add(ns);
  }
  void Merge(const Histogram& other) {
    std::lock_guard<std::mutex> lock(mu_);
    h_.Merge(other);
  }
  Histogram Snap() const {
    std::lock_guard<std::mutex> lock(mu_);
    return h_;
  }
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    h_.Clear();
  }

 private:
  mutable std::mutex mu_;
  Histogram h_;
};

/// Fixed-size digest of a histogram, cheap to copy into snapshots.
struct HistogramSummary {
  uint64_t count = 0;
  uint64_t sum_ns = 0;
  double avg_ns = 0.0;
  uint64_t min_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p95_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t max_ns = 0;

  static HistogramSummary From(const Histogram& h);
};

/// Point-in-time copy of every metric. Counters and histograms support
/// subtraction (DeltaSince) for per-phase reporting; gauges are
/// instantaneous and taken from the newer snapshot as-is.
struct Snapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, uint64_t> gauges;
  std::map<std::string, HistogramSummary> histograms;

  /// Counters: this - base (clamped at 0). Gauges: from this. Histograms:
  /// count/sum subtracted; percentiles kept from this (log-bucket
  /// percentiles do not subtract meaningfully).
  Snapshot DeltaSince(const Snapshot& base) const;

  /// One-line JSON object, nested on the first dot of each metric name.
  /// `tag` (if non-empty) is emitted as a leading "bench" field.
  std::string ToJson(const std::string& tag = "") const;
};

/// The process-wide metrics registry.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Finds or creates. Returned pointers stay valid for process lifetime.
  Counter* GetCounter(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  /// Registers (or replaces) a pull-based gauge.
  void SetGauge(const std::string& name, std::function<uint64_t()> fn);
  void RemoveGauge(const std::string& name);

  /// Copies every metric, including the scm.*, htm.* and tree.* subsystem
  /// totals this registry absorbs.
  Snapshot TakeSnapshot() const;

  /// Zeroes counters and histograms here and in the absorbed subsystems
  /// (scm thread stats, HTM engines, global tree counters). Gauges are
  /// untouched. Call at quiescent points only.
  void ResetAll();

 private:
  MetricsRegistry() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
  std::map<std::string, std::function<uint64_t()>> gauges_;
};

// ---------------------------------------------------------------------------
// Sampling control for latency recording.
//
// The interval is global and rounded up to a power of two so the hot path is
// `(n++ & mask) == 0`. Interval 0 disables sampling entirely: ShouldSample()
// is then a single predictable branch on a relaxed load.

/// Sets the sampling interval: every `interval`-th operation is timed.
/// 0 disables sampling; other values round up to a power of two.
void SetSampleInterval(uint32_t interval);

/// Current (rounded) interval; 0 when disabled.
uint32_t SampleInterval();

inline std::atomic<uint32_t>& SamplingMaskWord() {
  static std::atomic<uint32_t> mask{63};  // default: every 64th op
  return mask;
}

/// True if this operation should be timed. One relaxed load + one branch
/// when sampling is off.
inline bool ShouldSample() {
  uint32_t mask = SamplingMaskWord().load(std::memory_order_relaxed);
  if (mask == UINT32_MAX) return false;  // disabled
  static thread_local uint32_t n = 0;
  return (n++ & mask) == 0;
}

/// Convenience: snapshot the global registry and serialize.
std::string GlobalJson(const std::string& tag = "");

}  // namespace obs
}  // namespace fptree
