file(REMOVE_RECURSE
  "CMakeFiles/inner_index_test.dir/inner_index_test.cc.o"
  "CMakeFiles/inner_index_test.dir/inner_index_test.cc.o.d"
  "inner_index_test"
  "inner_index_test.pdb"
  "inner_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inner_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
