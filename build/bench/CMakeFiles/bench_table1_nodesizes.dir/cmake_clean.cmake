file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_nodesizes.dir/bench_table1_nodesizes.cc.o"
  "CMakeFiles/bench_table1_nodesizes.dir/bench_table1_nodesizes.cc.o.d"
  "bench_table1_nodesizes"
  "bench_table1_nodesizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_nodesizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
