// Copyright (c) FPTree reproduction authors.
//
// Shared benchmark scaffolding: flag parsing, pool lifecycle, timing
// helpers and row printing. Every bench binary reproduces one table or
// figure of the paper (see DESIGN.md §3) and prints the same series the
// paper plots. Scale knobs: --keys=N --ops=N --threads=N --latency=NS.

#pragma once

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "scm/latency.h"
#include "scm/pool.h"
#include "util/random.h"
#include "util/timer.h"

namespace fptree {
namespace bench {

struct Flags {
  uint64_t keys = 100000;
  uint64_t ops = 100000;
  uint32_t threads = 0;  // 0 = sweep
  uint64_t latency = 0;  // 0 = sweep
  bool restart = false;
  bool quick = false;

  static Flags Parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--keys=", 7) == 0) f.keys = std::strtoull(a + 7, nullptr, 10);
      if (std::strncmp(a, "--ops=", 6) == 0) f.ops = std::strtoull(a + 6, nullptr, 10);
      if (std::strncmp(a, "--threads=", 10) == 0) f.threads = std::strtoul(a + 10, nullptr, 10);
      if (std::strncmp(a, "--latency=", 10) == 0) f.latency = std::strtoull(a + 10, nullptr, 10);
      if (std::strcmp(a, "--restart") == 0) f.restart = true;
      if (std::strcmp(a, "--quick") == 0) f.quick = true;
    }
    return f;
  }
};

/// Fresh pool for one tree instance; destroyed (file removed) on scope end.
class ScopedPool {
 public:
  explicit ScopedPool(size_t size = size_t{2} << 30, uint64_t id = 1)
      : path_("/tmp/fptree_bench_" + std::to_string(::getpid()) + "_" +
              std::to_string(id) + "_" + std::to_string(counter_++)) {
    scm::Pool::Destroy(path_).ok();
    scm::Pool::Options opts{.size = size, .randomize_base = false};
    Status s = scm::Pool::Create(path_, id, opts, &pool_);
    if (!s.ok()) {
      std::fprintf(stderr, "pool create failed: %s\n", s.ToString().c_str());
      std::abort();
    }
  }

  /// Closes and reopens the pool (randomized base), e.g. to time recovery.
  void Reopen() {
    uint64_t id = pool_->id();
    pool_.reset();
    scm::Pool::Options opts{.size = 0, .randomize_base = true};
    Status s = scm::Pool::Open(path_, id, opts, &pool_);
    if (!s.ok()) {
      std::fprintf(stderr, "pool reopen failed: %s\n", s.ToString().c_str());
      std::abort();
    }
  }

  ~ScopedPool() {
    pool_.reset();
    scm::Pool::Destroy(path_).ok();
  }

  scm::Pool* get() { return pool_.get(); }

 private:
  static inline int counter_ = 0;
  std::string path_;
  std::unique_ptr<scm::Pool> pool_;
};

inline void SetLatency(uint64_t ns) {
  scm::LatencyModel::Config().dram_ns = 90;
  scm::LatencyModel::SetScmLatency(ns);
}

inline std::string MakeVarKey(uint64_t i) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llu",
                static_cast<unsigned long long>(i));
  return std::string(buf, 16);
}

/// Prevents the optimizer from discarding a benchmarked computation.
template <typename T>
inline void DoNotOptimize(T& value) {
  asm volatile("" : "+m"(value) : : "memory");
}

/// Runs fn over n items and returns average ns/op.
template <typename Fn>
double TimeOps(uint64_t n, Fn fn) {
  Stopwatch sw;
  for (uint64_t i = 0; i < n; ++i) fn(i);
  return static_cast<double>(sw.ElapsedNanos()) / static_cast<double>(n);
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace bench
}  // namespace fptree
