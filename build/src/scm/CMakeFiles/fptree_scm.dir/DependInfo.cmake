
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scm/alloc.cc" "src/scm/CMakeFiles/fptree_scm.dir/alloc.cc.o" "gcc" "src/scm/CMakeFiles/fptree_scm.dir/alloc.cc.o.d"
  "/root/repo/src/scm/crash.cc" "src/scm/CMakeFiles/fptree_scm.dir/crash.cc.o" "gcc" "src/scm/CMakeFiles/fptree_scm.dir/crash.cc.o.d"
  "/root/repo/src/scm/latency.cc" "src/scm/CMakeFiles/fptree_scm.dir/latency.cc.o" "gcc" "src/scm/CMakeFiles/fptree_scm.dir/latency.cc.o.d"
  "/root/repo/src/scm/pool.cc" "src/scm/CMakeFiles/fptree_scm.dir/pool.cc.o" "gcc" "src/scm/CMakeFiles/fptree_scm.dir/pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
