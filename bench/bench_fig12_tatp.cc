// Figure 12: (a) TATP read-only throughput of the prototype database with
// each tree as dictionary/lookup index, vs SCM latency; (b) database
// restart time (--restart): sanity-check SCM columns + rebuild DRAM data,
// where persistent trees recover and the STXTree is fully rebuilt.

#include <cstdio>

#include "apps/minidb/minidb.h"
#include "apps/minidb/tatp.h"
#include "bench_common.h"

namespace fptree {
namespace bench {
namespace {

struct DbRun {
  double tx_per_sec = 0;
  double restart_ms = 0;
};

DbRun RunDb(const std::string& kind, uint64_t subscribers, uint64_t n_tx,
            uint32_t clients, bool restart, uint64_t metrics_every) {
  ScopedPool data_pool(size_t{4} << 30, 1);
  ScopedPool index_pool(size_t{4} << 30, 2);
  apps::MiniDb::Options options;
  options.index_kind = kind;
  options.subscribers = subscribers;
  DbRun out;
  {
    bool needs_load = false;
    apps::MiniDb db(data_pool.get(), index_pool.get(), options, &needs_load);
    if (needs_load) db.Load();
    apps::TatpWorkload workload(&db);
    out.tx_per_sec = workload.Run(n_tx, clients, metrics_every).TxPerSecond();
  }
  if (restart) {
    data_pool.Reopen();
    index_pool.Reopen();
    Stopwatch sw;
    bool needs_load = false;
    apps::MiniDb db(data_pool.get(), index_pool.get(), options, &needs_load);
    db.SanityCheckColumns();
    out.restart_ms = sw.ElapsedMillis();
  }
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace fptree

int main(int argc, char** argv) {
  using namespace fptree;
  using namespace fptree::bench;
  Flags flags = Flags::Parse(argc, argv);
  scm::LatencyModel::Calibrate();

  uint64_t subs = flags.quick ? 20000 : flags.keys / 2;
  uint64_t n_tx = flags.quick ? 100000 : flags.ops * 2;
  uint32_t clients = flags.threads != 0 ? flags.threads : 8;

  PrintHeader("Figure 12: TATP on the prototype DB (read-only queries)");
  std::printf("%llu subscribers, %llu transactions, %u clients\n",
              static_cast<unsigned long long>(subs),
              static_cast<unsigned long long>(n_tx), clients);
  std::printf("%8s %-10s %14s", "lat(ns)", "index", "tx/s");
  if (flags.restart) std::printf(" %14s", "restart(ms)");
  std::printf("\n");

  std::vector<std::string> kinds =
      flags.FixedTrees({"fptree", "ptree", "nvtree", "wbtree", "stx"});
  std::vector<uint64_t> latencies =
      flags.latency != 0 ? std::vector<uint64_t>{flags.latency}
                         : std::vector<uint64_t>{160, 450, 650};
  double stx_base = 0;
  for (uint64_t lat : latencies) {
    for (const std::string& kind : kinds) {
      SetLatency(lat);
      DbRun r = RunDb(kind, subs, n_tx, clients, flags.restart,
                      flags.metrics_every);
      scm::LatencyModel::Disable();
      std::printf("%8llu %-10s %14.0f",
                  static_cast<unsigned long long>(lat), kind.c_str(),
                  r.tx_per_sec);
      if (flags.restart) std::printf(" %14.2f", r.restart_ms);
      if (std::string(kind) == "stx") {
        stx_base = r.tx_per_sec;
      } else if (stx_base > 0) {
        // overhead vs transient STXTree printed after its row appears
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf(
      "Paper shape (Fig. 12a): FPTree within ~9-13%% of the transient "
      "STXTree; PTree ~17%%;\nNV-Tree and wBTree 24-52%% behind. (12b with "
      "--restart): persistent trees restart 8-40x\nfaster than the full "
      "STX rebuild; wBTree near-instant index recovery.\n");
  EmitMetricsJson("fig12_tatp");
  return 0;
}
