file(REMOVE_RECURSE
  "CMakeFiles/fptree_kvcache.dir/kvcache.cc.o"
  "CMakeFiles/fptree_kvcache.dir/kvcache.cc.o.d"
  "libfptree_kvcache.a"
  "libfptree_kvcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fptree_kvcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
