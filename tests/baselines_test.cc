// Baseline trees (STXTree, wBTree, NV-Tree, PTree): base operations,
// differential tests, recovery, and their paper-documented idiosyncrasies
// (wBTree slot arrays, NV-Tree append-only semantics and rebuilds).

#include <gtest/gtest.h>
#include <unistd.h>

#include <map>

#include "baselines/nvtree.h"
#include "baselines/stxtree.h"
#include "baselines/wbtree.h"
#include "core/ptree.h"
#include "scm/latency.h"
#include "util/random.h"
#include "util/threading.h"

namespace fptree {
namespace {

using scm::Pool;

std::string TestPath(const std::string& name) {
  return "/tmp/fptree_test_" + std::to_string(::getpid()) + "_" + name;
}

// ---------------- STXTree ---------------------------------------------------

TEST(STXTree, BasicOps) {
  baselines::STXTree<uint64_t, uint64_t, 8, 8> t;
  uint64_t v;
  EXPECT_FALSE(t.Find(1, &v));
  EXPECT_TRUE(t.Insert(1, 10));
  EXPECT_FALSE(t.Insert(1, 11));
  EXPECT_TRUE(t.Find(1, &v));
  EXPECT_EQ(v, 10u);
  EXPECT_TRUE(t.Update(1, 12));
  EXPECT_TRUE(t.Find(1, &v));
  EXPECT_EQ(v, 12u);
  EXPECT_TRUE(t.Erase(1));
  EXPECT_FALSE(t.Find(1, &v));
}

TEST(STXTree, DifferentialVsStdMap) {
  baselines::STXTree<uint64_t, uint64_t, 8, 8> t;
  std::map<uint64_t, uint64_t> model;
  Random64 rng(42);
  for (int i = 0; i < 30000; ++i) {
    uint64_t key = rng.Uniform(1500);
    switch (rng.Uniform(4)) {
      case 0:
        EXPECT_EQ(t.Insert(key, i), model.emplace(key, i).second);
        break;
      case 1: {
        bool up = t.Update(key, i);
        EXPECT_EQ(up, model.count(key) == 1);
        if (up) model[key] = i;
        break;
      }
      case 2:
        EXPECT_EQ(t.Erase(key), model.erase(key) == 1);
        break;
      default: {
        uint64_t v;
        bool f = t.Find(key, &v);
        auto it = model.find(key);
        ASSERT_EQ(f, it != model.end());
        if (f) EXPECT_EQ(v, it->second);
      }
    }
  }
  EXPECT_EQ(t.Size(), model.size());
  std::string why;
  EXPECT_TRUE(t.CheckConsistency(&why)) << why;
}

TEST(STXTree, RangeScan) {
  baselines::STXTree<uint64_t, uint64_t, 8, 8> t;
  for (uint64_t k : ShuffledRange(300, 3)) t.Insert(k * 3, k);
  std::vector<std::pair<uint64_t, uint64_t>> out;
  t.RangeScan(10, 15, &out);
  ASSERT_EQ(out.size(), 15u);
  uint64_t expect = 12;
  for (auto& [k, v] : out) {
    EXPECT_EQ(k, expect);
    expect += 3;
  }
}

TEST(STXTree, BulkLoad) {
  baselines::STXTree<uint64_t, uint64_t, 16, 16> t;
  std::vector<std::pair<uint64_t, uint64_t>> sorted;
  for (uint64_t k = 0; k < 10000; ++k) sorted.emplace_back(k, k * 2);
  t.BulkLoad(sorted);
  EXPECT_EQ(t.Size(), 10000u);
  uint64_t v;
  for (uint64_t k = 0; k < 10000; k += 97) {
    ASSERT_TRUE(t.Find(k, &v));
    EXPECT_EQ(v, k * 2);
  }
  std::string why;
  EXPECT_TRUE(t.CheckConsistency(&why)) << why;
}

// ---------------- Pool-backed fixtures --------------------------------------

template <typename TreeT>
class PoolTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scm::LatencyModel::Disable();
    path_ = TestPath("baseline");
    Pool::Destroy(path_).ok();
    Pool::Options opts{.size = 256u << 20, .randomize_base = true};
    ASSERT_TRUE(Pool::Create(path_, 1, opts, &pool_).ok());
    tree_ = std::make_unique<TreeT>(pool_.get());
  }

  void TearDown() override {
    tree_.reset();
    pool_.reset();
    Pool::Destroy(path_).ok();
  }

  void Reopen() {
    tree_.reset();
    pool_.reset();
    Pool::Options opts{.size = 256u << 20, .randomize_base = true};
    ASSERT_TRUE(Pool::Open(path_, 1, opts, &pool_).ok());
    tree_ = std::make_unique<TreeT>(pool_.get());
  }

  std::string path_;
  std::unique_ptr<Pool> pool_;
  std::unique_ptr<TreeT> tree_;
};

using SmallWBTree = baselines::WBTree<uint64_t, 8, 4>;
using SmallNVTree = baselines::NVTree<uint64_t, 8, 4, 8>;
using SmallPTree = core::PTree<uint64_t, 8, 8>;

template <typename T>
using BaselineTest = PoolTreeTest<T>;
using BaselineTypes = ::testing::Types<SmallWBTree, SmallNVTree, SmallPTree>;

template <typename T>
struct BName;
template <>
struct BName<SmallWBTree> {
  static constexpr const char* kName = "WBTree";
};
template <>
struct BName<SmallNVTree> {
  static constexpr const char* kName = "NVTree";
};
template <>
struct BName<SmallPTree> {
  static constexpr const char* kName = "PTree";
};
class BNameGen {
 public:
  template <typename T>
  static std::string GetName(int) {
    return BName<T>::kName;
  }
};

TYPED_TEST_SUITE(BaselineTest, BaselineTypes, BNameGen);

TYPED_TEST(BaselineTest, BasicOps) {
  uint64_t v;
  EXPECT_FALSE(this->tree_->Find(1, &v));
  EXPECT_TRUE(this->tree_->Insert(1, 10));
  EXPECT_FALSE(this->tree_->Insert(1, 11));
  ASSERT_TRUE(this->tree_->Find(1, &v));
  EXPECT_EQ(v, 10u);
  EXPECT_TRUE(this->tree_->Update(1, 12));
  ASSERT_TRUE(this->tree_->Find(1, &v));
  EXPECT_EQ(v, 12u);
  EXPECT_FALSE(this->tree_->Update(2, 5));
  EXPECT_TRUE(this->tree_->Erase(1));
  EXPECT_FALSE(this->tree_->Find(1, &v));
  EXPECT_FALSE(this->tree_->Erase(1));
}

TYPED_TEST(BaselineTest, SplitsPreserveKeys) {
  std::map<uint64_t, uint64_t> model;
  for (uint64_t k : ShuffledRange(500, 11)) {
    ASSERT_TRUE(this->tree_->Insert(k, k * 3)) << k;
    model[k] = k * 3;
  }
  EXPECT_EQ(this->tree_->Size(), model.size());
  for (auto& [k, val] : model) {
    uint64_t v;
    ASSERT_TRUE(this->tree_->Find(k, &v)) << k;
    EXPECT_EQ(v, val);
  }
  std::string why;
  EXPECT_TRUE(this->tree_->CheckConsistency(&why)) << why;
}

TYPED_TEST(BaselineTest, DifferentialVsStdMap) {
  std::map<uint64_t, uint64_t> model;
  Random64 rng(77);
  for (int i = 0; i < 20000; ++i) {
    uint64_t key = rng.Uniform(800);
    switch (rng.Uniform(4)) {
      case 0: {
        bool ins = this->tree_->Insert(key, i);
        EXPECT_EQ(ins, model.emplace(key, i).second);
        break;
      }
      case 1: {
        bool up = this->tree_->Update(key, i);
        EXPECT_EQ(up, model.count(key) == 1);
        if (up) model[key] = i;
        break;
      }
      case 2:
        EXPECT_EQ(this->tree_->Erase(key), model.erase(key) == 1);
        break;
      default: {
        uint64_t v;
        bool f = this->tree_->Find(key, &v);
        auto it = model.find(key);
        ASSERT_EQ(f, it != model.end()) << key;
        if (f) EXPECT_EQ(v, it->second);
      }
    }
  }
  EXPECT_EQ(this->tree_->Size(), model.size());
  std::string why;
  EXPECT_TRUE(this->tree_->CheckConsistency(&why)) << why;
}

TYPED_TEST(BaselineTest, ContentsSurviveReopen) {
  std::map<uint64_t, uint64_t> model;
  for (uint64_t k : ShuffledRange(600, 13)) {
    ASSERT_TRUE(this->tree_->Insert(k, k ^ 0xFF));
    model[k] = k ^ 0xFF;
  }
  for (uint64_t k = 0; k < 600; k += 4) {
    ASSERT_TRUE(this->tree_->Erase(k));
    model.erase(k);
  }
  this->Reopen();
  EXPECT_EQ(this->tree_->Size(), model.size());
  for (auto& [k, val] : model) {
    uint64_t v;
    ASSERT_TRUE(this->tree_->Find(k, &v)) << k;
    EXPECT_EQ(v, val);
  }
  // Still writable after recovery.
  ASSERT_TRUE(this->tree_->Insert(100000, 1));
  uint64_t v;
  EXPECT_TRUE(this->tree_->Find(100000, &v));
}

TYPED_TEST(BaselineTest, RangeScanSorted) {
  for (uint64_t k : ShuffledRange(200, 17)) {
    ASSERT_TRUE(this->tree_->Insert(k * 2, k));
  }
  std::vector<std::pair<uint64_t, uint64_t>> out;
  this->tree_->RangeScan(50, 10, &out);
  ASSERT_EQ(out.size(), 10u);
  uint64_t expect = 50;
  for (auto& [k, v] : out) {
    EXPECT_EQ(k, expect);
    expect += 2;
  }
}

// ---------------- NV-Tree specifics -----------------------------------------

class NVTreeTest : public PoolTreeTest<SmallNVTree> {};

TEST_F(NVTreeTest, UpdatesAppendNewVersions) {
  ASSERT_TRUE(tree_->Insert(5, 1));
  ASSERT_TRUE(tree_->Update(5, 2));
  ASSERT_TRUE(tree_->Update(5, 3));
  uint64_t v;
  ASSERT_TRUE(tree_->Find(5, &v));
  EXPECT_EQ(v, 3u) << "reverse scan must return the most recent version";
}

TEST_F(NVTreeTest, DeleteInsertsResurrect) {
  ASSERT_TRUE(tree_->Insert(5, 1));
  ASSERT_TRUE(tree_->Erase(5));
  uint64_t v;
  EXPECT_FALSE(tree_->Find(5, &v));
  ASSERT_TRUE(tree_->Insert(5, 9));
  ASSERT_TRUE(tree_->Find(5, &v));
  EXPECT_EQ(v, 9u);
}

TEST_F(NVTreeTest, RebuildsHappenUnderSequentialInsertion) {
  // Sequential insertion hammers the right-most LP; with tiny LPs this
  // forces repeated full rebuilds (the §6.4 pathology).
  for (uint64_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(tree_->Insert(k, k));
  }
  EXPECT_GT(tree_->stats().rebuilds, 0u);
  uint64_t v;
  for (uint64_t k = 0; k < 2000; k += 37) {
    ASSERT_TRUE(tree_->Find(k, &v));
    EXPECT_EQ(v, k);
  }
}

// ---------------- Concurrent NV-Tree ----------------------------------------

TEST(ConcurrentNVTree, ParallelInsertsAllLand) {
  scm::LatencyModel::Disable();
  std::string path = TestPath("nvtreec");
  Pool::Destroy(path).ok();
  Pool::Options opts{.size = 256u << 20, .randomize_base = true};
  std::unique_ptr<Pool> pool;
  ASSERT_TRUE(Pool::Create(path, 1, opts, &pool).ok());
  {
    baselines::ConcurrentNVTree<uint64_t, 16, 16, 32> tree(pool.get());
    constexpr uint32_t kThreads = 8;
    constexpr uint64_t kPerThread = 3000;
    ThreadGroup tg;
    tg.Spawn(kThreads, [&](uint32_t id) {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t key = id * kPerThread + i;
        ASSERT_TRUE(tree.Insert(key, key * 2));
      }
    });
    tg.Join();
    EXPECT_EQ(tree.Size(), kThreads * kPerThread);
    uint64_t v;
    for (uint64_t k = 0; k < kThreads * kPerThread; k += 101) {
      ASSERT_TRUE(tree.Find(k, &v)) << k;
      EXPECT_EQ(v, k * 2);
    }
  }
  pool.reset();
  Pool::Destroy(path).ok();
}

}  // namespace
}  // namespace fptree
