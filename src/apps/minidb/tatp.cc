#include "apps/minidb/tatp.h"

#include <atomic>
#include <cstdio>

#include "util/random.h"
#include "util/threading.h"
#include "util/timer.h"

namespace fptree {
namespace apps {

TatpResult TatpWorkload::Run(uint64_t n_tx, uint32_t clients,
                             uint64_t metrics_dump_every) {
  std::atomic<uint64_t> hits{0};
  const uint64_t n_sub = db_->subscribers();
  const uint64_t per_client = n_tx / clients;
  SpinBarrier barrier(clients + 1);
  ThreadGroup tg;
  tg.Spawn(clients, [&](uint32_t id) {
    Random64 rng(id * 104729 + 7);
    uint64_t local_hits = 0;
    barrier.Wait();
    for (uint64_t i = 0; i < per_client; ++i) {
      uint64_t s_id = rng.Uniform(n_sub);
      uint64_t pick = rng.Uniform(80);  // 35/10/35 mix
      if (pick < 35) {
        MiniDb::SubscriberRow row;
        local_hits += db_->GetSubscriberData(s_id, &row);
      } else if (pick < 45) {
        uint64_t number;
        local_hits += db_->GetNewDestination(s_id, rng.Uniform(4),
                                             8 * rng.Uniform(3),
                                             1 + rng.Uniform(24), &number);
      } else {
        uint64_t data;
        local_hits += db_->GetAccessData(s_id, rng.Uniform(4), &data);
      }
      if (metrics_dump_every != 0 && id == 0 &&
          (i + 1) % metrics_dump_every == 0) {
        std::fprintf(stderr, "METRICS_JSON %s\n", db_->MetricsJson().c_str());
      }
    }
    hits.fetch_add(local_hits, std::memory_order_relaxed);
    barrier.Wait();
  });

  barrier.Wait();  // release the clients
  Stopwatch sw;
  barrier.Wait();  // all clients done
  TatpResult result;
  result.seconds = sw.ElapsedSeconds();
  result.transactions = per_client * clients;
  result.hits = hits.load();
  tg.Join();
  return result;
}

}  // namespace apps
}  // namespace fptree
