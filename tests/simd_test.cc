// util/simd.h: equivalence of the dispatched vectorized primitives against
// their portable scalar references, plus the leaf-scan property the trees
// rely on — (MatchByte & bitmap) visits exactly the valid matching slots in
// ascending ctz order. The same binary runs under FPTREE_NO_SIMD=ON (the
// `nosimd` ctest label), where MatchByte IS the scalar path and the fuzz
// doubles as a self-check of the SWAR fallback, and under the default
// build, where it proves the SSE2/AVX2 paths agree with the reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/random.h"
#include "util/simd.h"

namespace fptree {
namespace {

/// Trivial per-byte oracle (independent of the SWAR reference).
uint64_t MatchByteNaive(const uint8_t* bytes, size_t cap, uint8_t needle) {
  uint64_t mask = 0;
  for (size_t i = 0; i < cap; ++i) {
    mask |= static_cast<uint64_t>(bytes[i] == needle) << i;
  }
  return mask;
}

TEST(MatchByte, AllCapacitiesExhaustiveSmallAlphabet) {
  // A 4-symbol alphabet forces dense fingerprint collisions; every leaf
  // capacity the trees can instantiate (2..64) is covered.
  Random64 rng(42);
  alignas(64) uint8_t buf[64];
  for (size_t cap = 2; cap <= 64; ++cap) {
    for (int round = 0; round < 200; ++round) {
      for (auto& b : buf) b = static_cast<uint8_t>(rng.Next() % 4);
      uint8_t needle = static_cast<uint8_t>(rng.Next() % 4);
      uint64_t expect = MatchByteNaive(buf, cap, needle);
      EXPECT_EQ(simd::MatchByte(buf, cap, needle), expect)
          << "cap=" << cap << " needle=" << int{needle};
      EXPECT_EQ(simd::MatchByteScalar(buf, cap, needle), expect)
          << "cap=" << cap << " needle=" << int{needle};
    }
  }
}

TEST(MatchByte, RandomBytesFullRange) {
  Random64 rng(7);
  alignas(64) uint8_t buf[64];
  for (int round = 0; round < 5000; ++round) {
    for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
    size_t cap = 2 + rng.Next() % 63;
    uint8_t needle =
        (round % 2 == 0) ? buf[rng.Next() % cap]  // guaranteed present
                         : static_cast<uint8_t>(rng.Next());
    uint64_t expect = MatchByteNaive(buf, cap, needle);
    EXPECT_EQ(simd::MatchByte(buf, cap, needle), expect);
    EXPECT_EQ(simd::MatchByteScalar(buf, cap, needle), expect);
  }
}

TEST(MatchByte, EdgePatterns) {
  alignas(64) uint8_t buf[64];
  // All-match, no-match, and single-match at every position.
  std::memset(buf, 0xAB, sizeof(buf));
  EXPECT_EQ(simd::MatchByte(buf, 64, 0xAB), ~uint64_t{0});
  EXPECT_EQ(simd::MatchByte(buf, 64, 0xCD), uint64_t{0});
  EXPECT_EQ(simd::MatchByte(buf, 17, 0xAB), (uint64_t{1} << 17) - 1);
  for (size_t pos = 0; pos < 64; ++pos) {
    std::memset(buf, 0x00, sizeof(buf));
    buf[pos] = 0xFF;
    EXPECT_EQ(simd::MatchByte(buf, 64, 0xFF), uint64_t{1} << pos);
    if (pos >= 1) {
      // Below-capacity match must be masked off.
      EXPECT_EQ(simd::MatchByte(buf, pos, 0xFF), uint64_t{0});
    }
  }
  // needle == 0 must match zero bytes (a SWAR-specific edge: the zero-byte
  // test runs against an all-zero pattern).
  std::memset(buf, 0x00, sizeof(buf));
  buf[3] = 1;
  EXPECT_EQ(simd::MatchByte(buf, 8, 0), 0xF7ULL);
  EXPECT_EQ(simd::MatchByteScalar(buf, 8, 0), 0xF7ULL);
}

/// The tree-side property: ANDing the match mask with a validity bitmap and
/// iterating via ctz probes exactly the valid matching slots, ascending —
/// the probe sequence bench_fig4_probes counts.
TEST(MatchByte, CandidateIterationMatchesScalarProbeLoop) {
  Random64 rng(1234);
  alignas(64) uint8_t fps[64];
  for (int round = 0; round < 3000; ++round) {
    size_t cap = 2 + rng.Next() % 63;
    for (auto& b : fps) b = static_cast<uint8_t>(rng.Next() % 8);
    uint64_t bitmap = rng.Next();
    if (cap < 64) bitmap &= (uint64_t{1} << cap) - 1;
    uint8_t fp = static_cast<uint8_t>(rng.Next() % 8);

    std::vector<size_t> scalar_probes;
    for (size_t i = 0; i < cap; ++i) {
      if (((bitmap >> i) & 1) != 0 && fps[i] == fp) scalar_probes.push_back(i);
    }

    std::vector<size_t> simd_probes;
    uint64_t candidates = simd::MatchByte(fps, cap, fp) & bitmap;
    while (candidates != 0) {
      simd_probes.push_back(static_cast<size_t>(__builtin_ctzll(candidates)));
      candidates &= candidates - 1;
    }
    ASSERT_EQ(simd_probes, scalar_probes) << "cap=" << cap;
  }
}

TEST(LowerBoundU64, MatchesStdLowerBound) {
  Random64 rng(99);
  for (int round = 0; round < 2000; ++round) {
    size_t n = rng.Next() % 300;
    std::vector<uint64_t> a(n);
    for (auto& v : a) {
      // Mix full-range values (sign-bit bias coverage for the AVX2 signed
      // compare) with small ones (duplicate coverage).
      v = (rng.Next() % 2 == 0) ? rng.Next() : rng.Next() % 16;
    }
    std::sort(a.begin(), a.end());
    for (int probe = 0; probe < 8; ++probe) {
      uint64_t key;
      switch (probe) {
        case 0: key = 0; break;
        case 1: key = ~uint64_t{0}; break;
        case 2: key = uint64_t{1} << 63; break;
        default:
          key = n > 0 && probe % 2 == 0 ? a[rng.Next() % n] : rng.Next();
      }
      size_t expect = static_cast<size_t>(
          std::lower_bound(a.begin(), a.end(), key) - a.begin());
      EXPECT_EQ(simd::LowerBoundU64(a.data(), n, key), expect)
          << "n=" << n << " key=" << key;
      EXPECT_EQ(simd::LowerBoundU64Scalar(a.data(), n, key), expect);
    }
  }
}

TEST(LowerBoundU64, InnerNodeShapedArrays) {
  // The exact shapes InnerIndex::ChildSlot sees: sorted separators at the
  // paper's inner capacities, probed with hits, misses and boundary keys.
  Random64 rng(5);
  for (size_t cap : {4u, 32u, 128u, 2048u, 4096u}) {
    std::vector<uint64_t> keys(cap);
    uint64_t k = 0;
    for (auto& v : keys) v = (k += 1 + rng.Next() % 1000);
    for (size_t probes = 0; probes < 200; ++probes) {
      uint64_t key = rng.Next() % (k + 2);
      size_t expect = static_cast<size_t>(
          std::lower_bound(keys.begin(), keys.end(), key) - keys.begin());
      EXPECT_EQ(simd::LowerBoundU64(keys.data(), keys.size(), key), expect);
    }
    // Every element and its neighbours.
    for (size_t i = 0; i < cap; ++i) {
      for (uint64_t key : {keys[i] - 1, keys[i], keys[i] + 1}) {
        size_t expect = static_cast<size_t>(
            std::lower_bound(keys.begin(), keys.end(), key) - keys.begin());
        ASSERT_EQ(simd::LowerBoundU64(keys.data(), keys.size(), key), expect);
      }
    }
  }
}

}  // namespace
}  // namespace fptree
