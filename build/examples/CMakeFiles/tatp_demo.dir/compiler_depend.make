# Empty compiler generated dependencies file for tatp_demo.
# This may be replaced when dependencies are built.
